// Fixture: protocol code reaching up into the serving engine.
#include "serve/engine.h"
#include "util/check.h"

namespace baton {

int Reach() { return 1; }

}  // namespace baton
