// Fixture: protocol code depending only on its allowed lower layers.
#include "baton/types.h"
#include "net/message.h"
#include "util/check.h"

namespace baton {

int Layered() { return 1; }

}  // namespace baton
