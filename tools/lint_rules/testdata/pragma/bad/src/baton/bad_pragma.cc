// Fixture: suppressions must name a real rule and carry a reason.
#include <unordered_map>  // lint: allow(unordered-iteration)

namespace baton {

// lint: allow(no-such-rule) -- typo'd rule names must not silently no-op
int Value() {
  std::unordered_map<int, int> m;  // lint: allow(unordered-iteration) -- fixture: reasoned suppression passes
  return static_cast<int>(m.size());
}

}  // namespace baton
