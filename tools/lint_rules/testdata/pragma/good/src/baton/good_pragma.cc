// Fixture: a reasoned suppression of a real rule is completely clean.
#include <unordered_map>  // lint: allow(unordered-iteration) -- fixture: demonstrates the sanctioned escape hatch

namespace baton {

int Value() {
  // lint: allow(unordered-iteration) -- fixture: pragma on the preceding line also works
  std::unordered_map<int, int> m;
  return static_cast<int>(m.size());
}

}  // namespace baton
