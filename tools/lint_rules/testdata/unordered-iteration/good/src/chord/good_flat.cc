// Fixture: ordered/deterministic containers pass, and a recorded-baseline
// exception survives behind an allow() pragma with a reason (the
// recruit-directory pattern).
#include <map>
#include <unordered_set>  // lint: allow(unordered-iteration) -- ablation figures were recorded against hash enumeration order

namespace baton {

int SumValues() {
  std::map<int, int> dir;
  dir[1] = 2;
  int sum = 0;
  for (const auto& kv : dir) sum += kv.second;
  return sum;
}

}  // namespace baton
