// Fixture: hash containers in protocol code, both the include and the use.
#include <unordered_map>

namespace baton {

int SumValues() {
  std::unordered_map<int, int> dir;
  dir[1] = 2;
  int sum = 0;
  for (const auto& kv : dir) sum += kv.second;  // order-dependent
  return sum;
}

}  // namespace baton
