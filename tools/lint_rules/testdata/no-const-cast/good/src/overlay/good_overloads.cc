// Fixture: proper const/non-const overload pair.
namespace baton {

struct Overlay {
  int state = 0;
};

int& Backend(Overlay& ov) { return ov.state; }
const int& Backend(const Overlay& ov) { return ov.state; }

}  // namespace baton
