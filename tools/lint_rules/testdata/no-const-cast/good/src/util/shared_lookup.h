// Fixture: util/ containers may const_cast over their own storage to share
// one lookup implementation between const and non-const accessors.
#ifndef FIXTURE_UTIL_SHARED_LOOKUP_H_
#define FIXTURE_UTIL_SHARED_LOOKUP_H_

namespace baton {

struct Slot {
  int value = 0;
  const int* Find() const { return &value; }
  int* Find() { return const_cast<int*>(static_cast<const Slot*>(this)->Find()); }
};

}  // namespace baton

#endif  // FIXTURE_UTIL_SHARED_LOOKUP_H_
