// Fixture: the const_cast downcast pattern this rule exists to kill.
namespace baton {

struct Overlay {
  int state = 0;
};

const int& Backend(const Overlay& ov) {
  return const_cast<Overlay&>(ov).state;
}

}  // namespace baton
