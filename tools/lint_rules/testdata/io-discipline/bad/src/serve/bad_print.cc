// Fixture: stdout writes from protocol code.
#include <cstdio>
#include <iostream>

namespace baton {

void Report(int depth) {
  std::cout << "queue depth " << depth << "\n";
  std::printf("depth=%d\n", depth);
  std::fprintf(stdout, "depth=%d\n", depth);
}

}  // namespace baton
