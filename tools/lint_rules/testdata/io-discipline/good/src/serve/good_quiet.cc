// Fixture: stderr diagnostics and string formatting are fine.
#include <cstdio>

namespace baton {

void Report(int depth, char* buf, unsigned len) {
  std::fprintf(stderr, "queue depth %d\n", depth);
  std::snprintf(buf, len, "depth=%d", depth);
}

}  // namespace baton
