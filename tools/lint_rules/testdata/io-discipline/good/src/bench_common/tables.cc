// Fixture: the bench harness owns stdout -- printf is allowed here.
#include <cstdio>

namespace baton {

void EmitRow(int n) { std::printf("N=%d\n", n); }

}  // namespace baton
