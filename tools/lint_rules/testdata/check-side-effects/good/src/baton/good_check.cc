// Fixture: pure debug checks, and side-effecting conditions routed
// through the always-evaluated macro.
#include <cassert>
#include <vector>

namespace baton {

struct Queue {
  int head = 0;
  bool Pop(int* out) {
    *out = head;
    return ++head < 8;
  }
};

void Good(Queue& q, const std::vector<int>& v, int n, unsigned count) {
  BATON_DCHECK(n > 0);
  BATON_DCHECK(v.size() == count);  // whitelisted pure accessor
  assert(!v.empty() && v.front() <= v.back());
  int x = 0;
  BATON_CHECK(q.Pop(&x));  // side effect, but always evaluated
  // static_assert is compile-time only and never matches the rule.
  static_assert(sizeof(int) >= 2, "sane platform");
}

}  // namespace baton
