// Fixture: debug-only checks whose arguments mutate state -- the program
// behaves differently under NDEBUG.
#include <cassert>

namespace baton {

struct Queue {
  int head = 0;
  bool Pop(int* out) {
    *out = head;
    return ++head < 8;
  }
};

int Advance(int* cursor) { return ++*cursor; }

void Bad(Queue& q, int n) {
  int x = 0;
  BATON_DCHECK(q.Pop(&x));      // the pop vanishes in release builds
  int i = 0;
  BATON_DCHECK(++i < n);        // increment lost under NDEBUG
  int cursor = 0;
  assert(Advance(&cursor) > 0);  // call with side effects
  BATON_DCHECK((i += 2) < n);    // compound assignment
}

}  // namespace baton
