// Fixture: every banned ambient-entropy source, one per line.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace baton {

unsigned Draw() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  unsigned a = static_cast<unsigned>(rand());
  std::random_device rd;
  std::mt19937 unseeded;
  auto t = std::chrono::steady_clock::now();
  const char* env = getenv("BATON_MODE");
  (void)t;
  (void)env;
  return a + rd() + unseeded();
}

}  // namespace baton
