// Fixture: explicit seeding and virtual time are fine; so is prose that
// merely *mentions* rand() or std::random_device in a comment, and code
// whose identifiers merely end in "time".
#include <cstdint>
#include <random>

namespace baton {

uint64_t Draw(uint64_t seed) {
  std::mt19937_64 engine(seed);  // explicitly seeded: deterministic
  const char* label = "fallback to rand() is forbidden";
  uint64_t service_time(3);  // paren-init identifier ending in "time"
  return engine() + service_time + static_cast<uint64_t>(label[0]);
}

}  // namespace baton
