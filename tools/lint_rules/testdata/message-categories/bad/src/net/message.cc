#include "net/message.h"

namespace baton {
namespace net {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kAlpha: return "Alpha";
    case MsgType::kBeta: return "Beta";
    default: break;
  }
  return "Unknown";
}

MsgCategory CategoryOf(MsgType t) {
  switch (t) {
    case MsgType::kAlpha:
      return MsgCategory::kQuery;
    default:
      break;  // kBeta silently falls into kOther -- the bug this rule catches
  }
  return MsgCategory::kOther;
}

}  // namespace net
}  // namespace baton
