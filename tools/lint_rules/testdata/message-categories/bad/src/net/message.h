// Fixture: kBeta is declared but unmapped in message.cc's CategoryOf.
#ifndef FIXTURE_NET_MESSAGE_H_
#define FIXTURE_NET_MESSAGE_H_

namespace baton {
namespace net {

enum class MsgType : unsigned short {
  kAlpha = 0,
  kBeta,        // new type someone forgot to categorize
  kNumTypes,
};

enum class MsgCategory : unsigned char { kQuery, kOther };

const char* MsgTypeName(MsgType t);
MsgCategory CategoryOf(MsgType t);

}  // namespace net
}  // namespace baton

#endif  // FIXTURE_NET_MESSAGE_H_
