#include "net/message.h"

namespace baton {
namespace net {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kAlpha: return "Alpha";
    case MsgType::kBeta: return "Beta";
    case MsgType::kNumTypes: break;
  }
  return "Unknown";
}

MsgCategory CategoryOf(MsgType t) {
  switch (t) {
    case MsgType::kAlpha:
    case MsgType::kBeta:
      return MsgCategory::kQuery;
    case MsgType::kNumTypes:
      break;
  }
  return MsgCategory::kOther;
}

}  // namespace net
}  // namespace baton
