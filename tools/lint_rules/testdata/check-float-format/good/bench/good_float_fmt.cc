// Fixture: explicit precision everywhere, prose percent signs left alone.
#include <cstdio>

int main() {
  double rate = 0.123456;
  std::printf("rate %.2f\n", rate);            // explicit precision
  std::printf("padded %8.3f %.*f\n", rate, 2, rate);
  char buf[32];
  std::snprintf(buf, sizeof buf, "theta %.2g", rate);
  std::printf("done: 100%% full, %d found\n", 3);  // %% and ints are fine
  return 0;
}
