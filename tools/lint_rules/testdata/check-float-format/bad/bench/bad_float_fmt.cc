// Fixture: every float reaching bench output here is formatted wrong.
#include <cstdio>
#include <iostream>

int main() {
  double rate = 0.123456;
  std::printf("rate %f\n", rate);                  // bare %f: six digits today
  char buf[32];
  std::snprintf(buf, sizeof buf, "theta %g", rate);  // bare %g
  std::printf("wide %8e\n", rate);                 // width is not precision
  std::cout << "cast " << static_cast<double>(7) << "\n";  // locale-dependent
  std::cout << "lit " << 3.14 << "\n";             // float literal streamed
  return 0;
}
