"""Rejects std::unordered_map / std::unordered_set in src/.

Hash-container enumeration order is implementation-defined, so any protocol
decision, message emission or table row derived from iterating one can vary
across standard libraries -- silently breaking the byte-identical-tables
contract. Protocol code uses util::FlatMap64/FlatSet64 (deterministic
insertion-conscious probing) or ordered containers instead.

The one historical exception is BATON's recruit directory, whose
lightest-leaf tie-break was *recorded against* unordered_map enumeration in
the ablation figures; it carries an explicit allow() pragma.
"""

import re

from . import grep

NAME = "unordered-iteration"
DESCRIPTION = ("bans std::unordered_{map,set} in src/ (iteration order is "
               "implementation-defined)")

_PATTERN = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b"
                      r"|#\s*include\s*<unordered_(?:map|set)>")


def check(tree):
    from . import Finding

    for path in tree.files():
        if not path.startswith("src/"):
            continue
        for lineno, _ in grep(tree, path, _PATTERN):
            yield Finding(
                NAME, path, lineno,
                "unordered container in protocol code: iteration order is "
                "implementation-defined; use util::FlatMap64/FlatSet64 or "
                "an ordered container")
