"""Enforces the src/ layering DAG via #include hygiene.

Each src/ subdirectory may only include headers from the layers below it
(e.g. protocol code must never reach up into the serving engine or the
bench harness). The allowed-dependency map *is* the architecture document;
a PR that needs a new edge changes this file in the same diff, which makes
the layering decision reviewable instead of accidental.

baton <-> replication is a known, deliberate cycle: replication mirrors
BATON KeyBags, and BATON's lifecycle calls back into the manager through
baton/replicate.cc. Both edges are listed.
"""

import re

NAME = "include-layering"
DESCRIPTION = "src/<dir> may only #include from its allowed lower layers"

# dir -> set of other src/ dirs it may include from. util is the bottom.
ALLOWED = {
    "util": set(),
    "sim": {"util"},
    "net": {"sim", "util"},
    "obs": {"net", "util"},
    "fault": {"net", "sim", "util"},
    "cache": {"net", "util"},
    "baton": {"net", "replication", "util"},
    "replication": {"baton", "net", "util"},
    "chord": {"baton", "net", "util"},
    "d3tree": {"baton", "net", "util"},
    "multiway": {"baton", "net", "util"},
    "overlay": {"baton", "cache", "chord", "d3tree", "fault", "multiway",
                "net", "obs", "sim", "util"},
    "workload": {"baton", "fault", "net", "obs", "overlay", "util"},
    "serve": {"fault", "net", "obs", "overlay", "sim", "util", "workload"},
    "bench_common": {"baton", "cache", "chord", "d3tree", "fault", "multiway",
                     "net", "obs", "overlay", "replication", "sim", "util",
                     "workload"},
}

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([a-z_0-9]+)/[^"]+"')


def check(tree):
    from . import Finding

    for path in tree.files():
        if not path.startswith("src/"):
            continue
        parts = path.split("/")
        if len(parts) < 3:
            continue  # stray file directly under src/
        layer = parts[1]
        allowed = ALLOWED.get(layer)
        if allowed is None:
            yield Finding(
                NAME, path, 1,
                "directory src/%s/ has no entry in the layering map "
                "(tools/lint_rules/include_layering.py); declare its "
                "allowed dependencies" % layer)
            continue
        # Raw lines, not masked ones: the include path *is* a string
        # literal, which the comment/string masker would blank out.
        for lineno, line in enumerate(tree.lines(path), start=1):
            m = _INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1)
            if target == layer or target in allowed:
                continue
            yield Finding(
                NAME, path, lineno,
                "src/%s/ may not include src/%s/ (allowed: %s); if this "
                "edge is intentional, add it to the layering map in the "
                "same PR" % (layer, target,
                             ", ".join(sorted(allowed)) or "none"))
