"""Rejects const_cast in src/ (everywhere but util/).

The overlay layer used to implement its const Backend() downcasts and the
const network() accessor by const_cast-ing away and calling the non-const
path -- which compiles fine right up until someone mutates through a
reference the caller believed was read-only. Proper const overloads cost
four lines each; this rule keeps the pattern from growing back.

util/ is exempt: low-level containers legitimately use const_cast to share
one lookup implementation between const/non-const accessors over their own
private storage.
"""

import re

from . import grep

NAME = "no-const-cast"
DESCRIPTION = "bans const_cast in src/ outside util/"

_PATTERN = re.compile(r"\bconst_cast\s*<")


def check(tree):
    from . import Finding

    for path in tree.files():
        if not path.startswith("src/") or path.startswith("src/util/"):
            continue
        for lineno, _ in grep(tree, path, _PATTERN):
            yield Finding(
                NAME, path, lineno,
                "const_cast in protocol/overlay code: write a const "
                "overload instead of casting constness away")
