"""Rejects ambient-entropy sources in library code (src/).

Every random draw must flow from an explicitly seeded util::Rng (or a seed
passed in by the caller) and every timestamp from the sim/ virtual clock,
or two runs of the same bench stop producing byte-identical tables. Wall
clocks are legitimate only in bench/ timing loops, which this rule does
not scan.
"""

import re

from . import grep

NAME = "nondeterminism"
DESCRIPTION = ("bans rand()/srand()/time()/std::random_device/wall clocks/"
               "default-seeded std engines in src/")

_PATTERNS = [
    (re.compile(r"\bs?rand\s*\("),
     "C rand()/srand(): draw from an explicitly seeded util::Rng"),
    (re.compile(r"(?<!\w)(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time(): wall-clock entropy; thread a seed or use sim:: ticks"),
    (re.compile(r"std::random_device"),
     "std::random_device: nondeterministic seed source"),
    (re.compile(r"(?:system_clock|steady_clock|high_resolution_clock)\s*::"
                r"\s*now\s*\("),
     "wall-clock read in library code; timing belongs in bench/"),
    (re.compile(r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
                r")\s+\w+\s*(?:;|\{\s*\})"),
     "default-constructed std engine: pass an explicit seed (or use "
     "util::Rng)"),
    (re.compile(r"\bgetenv\s*\("),
     "getenv(): environment-dependent behaviour; make it a flag or config"),
]


def check(tree):
    from . import Finding

    for path in tree.files():
        if not path.startswith("src/"):
            continue
        for pattern, why in _PATTERNS:
            for lineno, _ in grep(tree, path, pattern):
                yield Finding(NAME, path, lineno, why)
