"""Rule registry for tools/lint.py.

Each rule module defines:
  NAME         kebab-case identifier (used by --rules and allow() pragmas)
  DESCRIPTION  one line for --list-rules
  check(tree)  generator of Finding tuples over a SourceTree

Add a rule: drop a module here, import it below, append to ALL_RULES, and
add a bad/ + good/ fixture pair under testdata/<name>/ (the selftest
refuses to pass without one).
"""

import collections
import os
import re

Finding = collections.namedtuple("Finding", ["rule", "path", "line", "message"])

_CPP_EXTS = (".cc", ".h")
_SCAN_DIRS = ("src", "bench", "tests", "examples")

# // and /* */ comments plus string literals are masked before pattern
# rules run, so prose like "uses rand()" in a comment never trips a rule.
_COMMENT_OR_STRING_RE = re.compile(
    r'//[^\n]*|/\*.*?\*/|"(?:[^"\\\n]|\\.)*"', re.DOTALL)


def _mask(match):
    return "".join(c if c == "\n" else " " for c in match.group(0))


class SourceTree(object):
    """Lazy file-content cache over the scanned directories of one root."""

    def __init__(self, root):
        self.root = root
        self._raw = {}
        self._code = {}
        self._paths = None

    def files(self):
        """Repo-relative paths of every C++ file under the scan dirs,
        sorted for deterministic output."""
        if self._paths is None:
            paths = []
            for top in _SCAN_DIRS:
                top_abs = os.path.join(self.root, top)
                for dirpath, _, names in os.walk(top_abs):
                    for name in names:
                        if name.endswith(_CPP_EXTS):
                            full = os.path.join(dirpath, name)
                            paths.append(
                                os.path.relpath(full, self.root))
            self._paths = sorted(paths)
        return self._paths

    def text(self, path):
        if path not in self._raw:
            with open(os.path.join(self.root, path),
                      encoding="utf-8", errors="replace") as fh:
                self._raw[path] = fh.read()
        return self._raw[path]

    def code(self, path):
        """File text with comments and string literals blanked out
        (newlines preserved, so line numbers survive)."""
        if path not in self._code:
            self._code[path] = _COMMENT_OR_STRING_RE.sub(
                _mask, self.text(path))
        return self._code[path]

    def lines(self, path):
        return self.text(path).split("\n")

    def code_lines(self, path):
        return self.code(path).split("\n")


def grep(tree, path, pattern, masked=True):
    """Yields (lineno, line) for every line of `path` matching `pattern`
    (over comment/string-masked code by default)."""
    lines = tree.code_lines(path) if masked else tree.lines(path)
    for lineno, line in enumerate(lines, start=1):
        if pattern.search(line):
            yield lineno, line


from . import nondeterminism     # noqa: E402
from . import unordered_iteration  # noqa: E402
from . import io_discipline      # noqa: E402
from . import message_categories  # noqa: E402
from . import include_layering   # noqa: E402
from . import no_const_cast      # noqa: E402
from . import check_side_effects  # noqa: E402
from . import check_float_format  # noqa: E402

ALL_RULES = [
    nondeterminism,
    unordered_iteration,
    io_discipline,
    message_categories,
    include_layering,
    no_const_cast,
    check_side_effects,
    check_float_format,
]
