"""Audits BATON_DCHECK / assert arguments for side effects.

BATON_DCHECK and assert compile to nothing under NDEBUG: an argument that
mutates state -- BATON_DCHECK(queue.Pop(&x)), assert(++cursor < n) -- runs
in debug builds and silently vanishes in release, so the two build modes
execute different programs. That is both a correctness bug and a
determinism bug (the repo's byte-identity contract spans build modes).
Checks whose outcome the program depends on belong in BATON_CHECK, which
always evaluates.

The rule extracts each macro's balanced-paren argument from the masked
code (comments/strings blanked, so prose never trips it) and flags
increments, decrements, assignments, and calls to functions outside a
whitelist of known-pure accessors (size, empty, ok, valid, ...). Calls to
anything else -- including project functions the rule cannot see into --
are flagged conservatively: a pure helper can be suppressed with the
allow() pragma, while a hidden Pop() cannot hide.
"""

import re

NAME = "check-side-effects"
DESCRIPTION = "flags BATON_DCHECK/assert arguments with side effects"

_MACRO_RE = re.compile(r"\b(BATON_DCHECK|assert)\s*\(")

# ++ / -- anywhere in the argument.
_INCDEC_RE = re.compile(r"\+\+|--")

# Assignment: compound ops, or a bare `=` that is not part of a comparison
# (==, !=, <=, >=) or lambda capture default.
_COMPOUND_RE = re.compile(r"(?:[+\-*/%&|^]|<<|>>)=")
_BARE_ASSIGN_RE = re.compile(r"(?<![=!<>+\-*/%&|^])=(?!=)")

# Known-pure accessor / query names whose calls are allowed inside a
# debug-only check. Everything else is treated as potentially mutating.
_PURE_CALLS = frozenset([
    "ok", "size", "empty", "count", "has_value", "valid", "front", "back",
    "begin", "end", "find", "contains", "min", "max", "abs", "get", "value",
    "name", "capacity", "length", "data", "c_str", "first", "second",
    "is_open", "good", "has", "at", "top", "IsAlive", "InOverlay",
    "Supports", "Members", "Contains", "ToString",
])

_CALL_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(")


def _argument(code, open_paren):
    """Returns (argument-text, ok) for the balanced-paren span starting at
    code[open_paren] == '('; ok is False when the file ends unbalanced."""
    depth = 0
    for i in range(open_paren, len(code)):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1:i], True
    return "", False


def _side_effect(arg):
    """Describes the first side effect found in a check argument, or None."""
    if _INCDEC_RE.search(arg):
        return "increments/decrements its operand"
    if _COMPOUND_RE.search(arg) or _BARE_ASSIGN_RE.search(arg):
        return "assigns to its operand"
    for m in _CALL_RE.finditer(arg):
        callee = m.group(1)
        if callee in _PURE_CALLS or callee == "sizeof":
            continue
        return "calls %s(), which the rule cannot prove pure" % callee
    return None


def check(tree):
    from . import Finding

    for path in tree.files():
        # The macro definitions themselves (and the NDEBUG plumbing around
        # them) legitimately mention the bare argument.
        if path.endswith("util/check.h"):
            continue
        code = tree.code(path)
        for m in _MACRO_RE.finditer(code):
            arg, balanced = _argument(code, m.end() - 1)
            if not balanced:
                continue
            effect = _side_effect(arg)
            if effect is None:
                continue
            lineno = code.count("\n", 0, m.start()) + 1
            yield Finding(
                NAME, path, lineno,
                "%s argument %s: the check vanishes under NDEBUG, so "
                "debug and release builds run different programs -- use "
                "BATON_CHECK (always evaluated) or hoist the effect out"
                % (m.group(1), effect))
