"""Cross-checks the net::MsgType enum against message.cc's switches.

Every message type must have a human-readable name (MsgTypeName) and a
backend-neutral category (CategoryOf): the figure benches aggregate by
category, so an unmapped type falls into kOther and silently vanishes from
the join/maintenance/query columns. C++'s -Wswitch only fires when the
switch has no default *and* the translation unit recompiles; this check
holds at lint time regardless, and gives the fix location. A new
kD3*-style type can't land uncategorized.
"""

import re

NAME = "message-categories"
DESCRIPTION = ("every net::MsgType enumerator must appear in both "
               "MsgTypeName and CategoryOf (src/net/message.cc)")

_HEADER = "src/net/message.h"
_IMPL = "src/net/message.cc"

_ENUM_RE = re.compile(r"enum\s+class\s+MsgType[^{]*\{(.*?)\}", re.DOTALL)
_ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\b", re.MULTILINE)
_CASE_RE = re.compile(r"case\s+MsgType::(k\w+)")


def _function_body(code, name):
    """Text from `name`'s definition to the next brace in column 0."""
    m = re.search(r"\b%s\s*\(" % re.escape(name), code)
    if m is None:
        return None
    end = code.find("\n}", m.end())
    return code[m.start():end if end != -1 else len(code)]


def check(tree):
    from . import Finding

    files = set(tree.files())
    if _HEADER not in files or _IMPL not in files:
        # Mini source trees (fixtures) without a message layer: nothing to
        # check rather than an error, so other rules' fixtures stay small.
        return

    header = tree.code(_HEADER)
    enum_m = _ENUM_RE.search(header)
    if enum_m is None:
        yield Finding(NAME, _HEADER, 1, "cannot locate enum class MsgType")
        return
    enumerators = [e for e in _ENUMERATOR_RE.findall(enum_m.group(1))
                   if e != "kNumTypes"]

    impl = tree.code(_IMPL)
    for fn in ("MsgTypeName", "CategoryOf"):
        body = _function_body(impl, fn)
        if body is None:
            yield Finding(NAME, _IMPL, 1, "cannot locate %s()" % fn)
            continue
        covered = set(_CASE_RE.findall(body))
        for e in enumerators:
            if e not in covered:
                # Point at the enumerator's declaration so the finding
                # lands next to the line the author just added.
                line = 1
                for lineno, text in enumerate(tree.lines(_HEADER), start=1):
                    if re.search(r"\b%s\b" % e, text):
                        line = lineno
                        break
                yield Finding(
                    NAME, _HEADER, line,
                    "MsgType::%s has no case in %s() -- add it to "
                    "%s" % (e, fn, _IMPL))
