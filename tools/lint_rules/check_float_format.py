"""Requires explicit precision when formatting floats in bench output.

Bench tables and their JSON mirrors are diffed byte-for-byte across PRs,
so every float that reaches them must be formatted with an explicit
precision: "%f" silently means six digits today and whatever the format
implementation decides tomorrow, and iostream's operator<< on a double
obeys the global locale and stream precision state. Two checks over the
output paths (bench/, src/bench_common/, util/table_printer):

  * printf-family float conversions (%f %e %g and friends) inside string
    literals must carry a '.'-precision ("%.2f", "%5.1f", "%.*f");
  * streaming a float literal or a static_cast<double/float> result with
    operator<< is rejected outright -- route it through TablePrinter::Num
    or snprintf instead. (Streaming a named double can't be told apart
    from streaming a string syntactically; the conventions above keep
    such values out of the output paths in the first place.)
"""

import re

NAME = "check-float-format"
DESCRIPTION = ("bench output paths must format floats with explicit "
               "precision (no bare %f/%g, no operator<< on doubles)")

_OUTPUT_PREFIXES = (
    "bench/",
    "src/bench_common/",
    "src/util/table_printer",
)

# String literals of a raw line (the comment/string masker would blank the
# format strings this rule exists to inspect).
_STRING_RE = re.compile(r'"(?:[^"\\\n]|\\.)*"')

# One printf conversion ending in a float specifier: flags, optional
# width, optional precision. %% never matches; the space flag is omitted
# so prose like "50% full" inside a literal can't trip the rule.
_FLOAT_CONV_RE = re.compile(
    r"%(?!%)[-+#0]*(?:\d+|\*)?(?P<prec>\.(?:\d+|\*))?[fFeEgG]")

# operator<< fed a float literal or an explicit cast to a float type.
_STREAM_FLOAT_RE = re.compile(
    r"<<\s*(?:static_cast<\s*(?:double|float)\s*>|\d+\.\d+)")


def check(tree):
    from . import Finding

    for path in tree.files():
        if not any(path.startswith(p) for p in _OUTPUT_PREFIXES):
            continue
        for lineno, line in enumerate(tree.lines(path), start=1):
            for literal in _STRING_RE.finditer(line):
                for conv in _FLOAT_CONV_RE.finditer(literal.group(0)):
                    if conv.group("prec"):
                        continue
                    yield Finding(
                        NAME, path, lineno,
                        "float conversion '%s' without explicit precision; "
                        "write e.g. '%%.2%s' (or use TablePrinter::Num)"
                        % (conv.group(0), conv.group(0)[-1]))
        for lineno, line in enumerate(tree.code_lines(path), start=1):
            if _STREAM_FLOAT_RE.search(line):
                yield Finding(
                    NAME, path, lineno,
                    "operator<< on a floating value is locale- and "
                    "stream-state-dependent; format it with "
                    "TablePrinter::Num or snprintf + explicit precision")
