"""Rejects stdout writes from library code.

Bench tables are diffed byte-for-byte across PRs, so the only code allowed
to write to stdout is the bench harness itself (src/bench_common/, which
owns table emission), the bench/example binaries, and util/logging (whose
sink is configurable and defaults to stderr). A stray std::cout in a
protocol path would interleave with -- and corrupt -- the table stream.
stderr diagnostics (fprintf(stderr, ...), BATON_CHECK) are fine.
"""

import re

from . import grep

NAME = "io-discipline"
DESCRIPTION = ("bans std::cout/printf/puts in src/ outside bench_common "
               "and util/logging")

_ALLOWED_PREFIXES = (
    "src/bench_common/",
    "src/util/logging",
)

_PATTERN = re.compile(
    r"std::cout\b"                 # iostream stdout
    r"|(?<![\w])printf\s*\("       # printf( but not snprintf/fprintf/sprintf
    r"|\bputs\s*\("
    r"|\bfprintf\s*\(\s*stdout\b"
    r"|\bstd::puts\s*\(")


def check(tree):
    from . import Finding

    for path in tree.files():
        if not path.startswith("src/"):
            continue
        if any(path.startswith(p) for p in _ALLOWED_PREFIXES):
            continue
        for lineno, _ in grep(tree, path, _PATTERN):
            yield Finding(
                NAME, path, lineno,
                "stdout write outside the bench harness: route through "
                "util/logging or return data to the caller")
