#!/usr/bin/env python3
"""BATON determinism & layering lint.

Walks the C++ tree and rejects constructions that would silently break the
repo's core reproducibility contract: identical inputs must produce
byte-identical bench tables on every machine, every run, at every thread
count. The compiler cannot enforce that -- this lint can.

Usage:
  tools/lint.py [--root=DIR] [--rules=a,b,...] [--list-rules] [--selftest]

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.

Rules live in tools/lint_rules/ (one module per rule); each declares NAME,
DESCRIPTION and a check(tree) generator yielding Finding tuples. A finding
on line L is suppressed when line L or L-1 carries the pragma

    // lint: allow(<rule-name>) -- <reason>

The reason is mandatory: a suppression without `--` text is itself a
finding. See tools/lint_rules/testdata/ for one positive and one negative
fixture per rule (run via --selftest, registered in ctest as
lint_selftest).
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from lint_rules import ALL_RULES, SourceTree  # noqa: E402  (sys.path setup)

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z0-9_-]+)\)(\s*--\s*\S.*)?")


def suppressed(tree, finding):
    """True when the finding's line (or the one above) allows its rule."""
    lines = tree.lines(finding.path)
    for lineno in (finding.line, finding.line - 1):
        if 1 <= lineno <= len(lines):
            m = ALLOW_RE.search(lines[lineno - 1])
            if m and m.group(1) == finding.rule:
                return True
    return False


def check_pragmas(tree, rule_names):
    """Pragma hygiene: every allow() must name a real rule and give a
    reason, so suppressions stay auditable."""
    from lint_rules import Finding

    for path in tree.files():
        for lineno, line in enumerate(tree.lines(path), start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            if m.group(1) not in rule_names:
                yield Finding(
                    "pragma", path, lineno,
                    "allow() names unknown rule '%s'" % m.group(1))
            elif not m.group(2):
                yield Finding(
                    "pragma", path, lineno,
                    "allow(%s) needs a reason: '-- <why>'" % m.group(1))


def run_rules(root, rules):
    tree = SourceTree(root)
    findings = []
    for rule in rules:
        for f in rule.check(tree):
            if not suppressed(tree, f):
                findings.append(f)
    all_names = {r.NAME for r in ALL_RULES}
    findings.extend(check_pragmas(tree, all_names))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def selftest(repo_root):
    """Runs every rule over its fixture corpus: the bad/ mini-tree must
    produce at least one finding of that rule, the good/ mini-tree none."""
    testdata = os.path.join(repo_root, "tools", "lint_rules", "testdata")
    failures = []
    for rule in ALL_RULES:
        for kind, want in (("bad", True), ("good", False)):
            fixture = os.path.join(testdata, rule.NAME, kind)
            if not os.path.isdir(fixture):
                failures.append("%s: missing fixture %s/" % (rule.NAME, kind))
                continue
            found = [f for f in run_rules(fixture, [rule])
                     if f.rule == rule.NAME]
            if want and not found:
                failures.append(
                    "%s: bad/ fixture produced no finding" % rule.NAME)
            elif not want and found:
                failures.append(
                    "%s: good/ fixture produced findings: %s"
                    % (rule.NAME, ["%s:%d" % (f.path, f.line) for f in found]))
    # Pragma machinery has its own fixture pair (suppression + bad pragma).
    pragma_dir = os.path.join(testdata, "pragma")
    bad = run_rules(os.path.join(pragma_dir, "bad"), ALL_RULES)
    if not any(f.rule == "pragma" for f in bad):
        failures.append("pragma: bad/ fixture produced no pragma finding")
    good = run_rules(os.path.join(pragma_dir, "good"), ALL_RULES)
    if good:
        failures.append(
            "pragma: good/ fixture (valid suppression) produced findings: %s"
            % ["%s:%d %s" % (f.path, f.line, f.rule) for f in good])
    if failures:
        for msg in failures:
            print("SELFTEST FAIL: %s" % msg)
        return 1
    print("lint selftest: %d rules + pragma machinery OK" % len(ALL_RULES))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--rules", default=None,
                        help="comma list restricting which rules run")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--selftest", action="store_true")
    args = parser.parse_args(argv)

    repo_root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.list_rules:
        for rule in ALL_RULES:
            print("%-22s %s" % (rule.NAME, rule.DESCRIPTION))
        return 0
    if args.selftest:
        return selftest(args.root or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))

    rules = ALL_RULES
    if args.rules:
        wanted = set(args.rules.split(","))
        known = {r.NAME for r in ALL_RULES}
        unknown = wanted - known
        if unknown:
            print("unknown rule(s): %s (have: %s)"
                  % (",".join(sorted(unknown)), ",".join(sorted(known))))
            return 2
        rules = [r for r in ALL_RULES if r.NAME in wanted]

    findings = run_rules(repo_root, rules)
    for f in findings:
        print("%s:%d: [%s] %s" % (f.path, f.line, f.rule, f.message))
    if findings:
        print("\n%d finding(s). Suppress a deliberate exception with\n"
              "  // lint: allow(<rule>) -- <reason>\n"
              "on (or directly above) the flagged line." % len(findings))
        return 1
    print("lint: clean (%d rules over %s)" % (len(rules), repo_root))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
