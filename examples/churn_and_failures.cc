// Churn and failure drill (sections III-B/C/D): peers join and leave
// continuously, some crash without warning, queries keep routing around the
// holes, and parent-driven recovery repairs the tree. Demonstrates the
// paper's fault-tolerance claims end to end -- plus the replication
// subsystem (src/replication/): with two replicas per node, every crashed
// peer's keys are restored from the freshest copy instead of being lost.
//
//   $ ./examples/churn_and_failures
#include <algorithm>
#include <cstdio>

#include "baton/baton.h"

int main() {
  using namespace baton;

  net::Network net;
  BatonConfig cfg;
  cfg.replication.factor = 2;  // set to 0 for the paper's lossy behaviour
  BatonNetwork overlay(cfg, &net, /*seed=*/99);
  Rng rng(17);

  std::vector<PeerId> peers{overlay.Bootstrap()};
  while (peers.size() < 300) {
    peers.push_back(overlay.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  for (int i = 0; i < 15000; ++i) {
    overlay.Insert(peers[rng.NextBelow(peers.size())],
                   rng.UniformInt(1, 999999999))
        .ToString();
  }
  std::printf("start: %zu peers, %llu keys, height %d\n", overlay.size(),
              static_cast<unsigned long long>(overlay.total_keys()),
              overlay.Height());

  uint64_t joins = 0, leaves = 0, crashes = 0, queries = 0, detoured = 0;
  for (int round = 1; round <= 10; ++round) {
    // -- churn: 10 joins, 10 graceful leaves, 3 crashes per round.
    for (int i = 0; i < 10; ++i) {
      auto joined =
          overlay.Join(peers[rng.NextBelow(peers.size())]);
      if (joined.ok()) {
        peers.push_back(joined.value());
        ++joins;
      }
    }
    for (int i = 0; i < 10; ++i) {
      size_t idx = rng.NextBelow(peers.size());
      if (overlay.Leave(peers[idx]).ok()) {
        peers.erase(peers.begin() + static_cast<long>(idx));
        ++leaves;
      }
    }
    std::vector<PeerId> victims;
    for (int i = 0; i < 3; ++i) {
      size_t idx = rng.NextBelow(peers.size());
      if (net.IsAlive(peers[idx])) {
        victims.push_back(peers[idx]);
        overlay.Fail(peers[idx]);
        ++crashes;
      }
    }

    // -- queries race the failures: they detour around dead peers (III-D).
    auto before = net.Snapshot();
    int ok_count = 0;
    for (int q = 0; q < 200; ++q) {
      PeerId from;
      do {
        from = peers[rng.NextBelow(peers.size())];
      } while (!net.IsAlive(from));
      auto r = overlay.ExactSearch(from, rng.UniformInt(1, 999999999));
      if (r.ok()) ++ok_count;
      ++queries;
    }
    auto after = net.Snapshot();
    uint64_t timeouts = net::Network::DeltaOfType(before, after,
                                                  net::MsgType::kDeadProbe);
    detoured += timeouts;

    // -- recovery: the parents repair the failed positions (III-C).
    Status rec = overlay.RecoverAllFailures();
    for (PeerId v : victims) {
      peers.erase(std::remove(peers.begin(), peers.end(), v), peers.end());
    }
    overlay.RepairReplicas();  // background anti-entropy
    overlay.CheckInvariants();
    std::printf(
        "round %2d: %3d/200 queries ok, %3llu timeouts detoured, "
        "recovery=%s, %zu peers, height %d, keys lost/recovered %llu/%llu\n",
        round, ok_count, static_cast<unsigned long long>(timeouts),
        rec.ok() ? "ok" : rec.ToString().c_str(), overlay.size(),
        overlay.Height(),
        static_cast<unsigned long long>(overlay.lost_keys()),
        static_cast<unsigned long long>(overlay.recovered_keys()));
  }

  std::printf(
      "\ntotals: %llu joins, %llu leaves, %llu crashes, %llu queries, "
      "%llu dead-peer timeouts -- structure still balanced and consistent\n",
      static_cast<unsigned long long>(joins),
      static_cast<unsigned long long>(leaves),
      static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(detoured));
  std::printf(
      "durability: %llu keys lost, %llu restored from replicas "
      "(r=%d; the paper's index would have lost them all)\n",
      static_cast<unsigned long long>(overlay.lost_keys()),
      static_cast<unsigned long long>(overlay.recovered_keys()),
      cfg.replication.factor);
  return 0;
}
