// Quickstart: build a small BATON overlay, insert keys, run exact-match and
// range queries, and watch a node leave -- the 60-second tour of the API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "baton/baton.h"

int main() {
  using namespace baton;

  // The physical network records every message; the overlay executes the
  // paper's protocols on top of it.
  net::Network net;
  BatonConfig config;  // key domain defaults to [1, 10^9)
  BatonNetwork overlay(config, &net, /*seed=*/42);

  // Bootstrap the first peer, then join nine more through random contacts.
  Rng rng(7);
  std::vector<PeerId> peers;
  peers.push_back(overlay.Bootstrap());
  for (int i = 1; i < 10; ++i) {
    PeerId contact = peers[rng.NextBelow(peers.size())];
    peers.push_back(overlay.Join(contact).value());
  }
  std::printf("overlay has %zu peers, tree height %d\n", overlay.size(),
              overlay.Height());

  // Insert a handful of keys from arbitrary origins.
  for (Key k : {42, 1000000, 555555555, 999999998, 123456789}) {
    Status s = overlay.Insert(peers[rng.NextBelow(peers.size())], k);
    std::printf("insert %lld: %s\n", static_cast<long long>(k),
                s.ToString().c_str());
  }

  // Exact-match query (section IV-A): O(log N) hops.
  auto hit = overlay.ExactSearch(peers[3], 123456789).value();
  std::printf("exact 123456789: found=%d in %d hops at peer %u\n",
              hit.found, hit.hops, hit.node);

  // Range query (section IV-B): the tree preserves key order, so this is a
  // first-intersection search plus an adjacent-link scan.
  auto range = overlay.RangeSearch(peers[0], 1000, 600000000).value();
  std::printf("range [1000, 6e8): %llu keys across %zu nodes, %d hops\n",
              static_cast<unsigned long long>(range.matches),
              range.nodes.size(), range.hops);

  // A peer departs gracefully; its content moves, nothing is lost.
  overlay.Leave(peers[5]).ToString();
  std::printf("after leave: %zu peers, %llu keys still indexed\n",
              overlay.size(),
              static_cast<unsigned long long>(overlay.total_keys()));

  // The simulator can audit the structure at any time.
  overlay.CheckInvariants();
  std::printf("invariants OK; total messages exchanged: %llu\n",
              static_cast<unsigned long long>(net.total_messages()));
  return 0;
}
