// Load balancing under skew (section IV-D): a Zipf(1.0) insert stream hammers
// the bottom of the key space; watch adjacent-node balancing and remote
// recruiting (with forced restructuring) keep per-node loads flat.
//
//   $ ./examples/load_balancing_demo
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baton/baton.h"
#include "workload/workload.h"

namespace {

void PrintLoadSketch(const baton::BatonNetwork& overlay) {
  // A coarse text histogram over the in-order member sequence.
  std::vector<size_t> loads;
  for (auto p : overlay.Members()) loads.push_back(overlay.node(p).data.size());
  size_t maxload = *std::max_element(loads.begin(), loads.end());
  const size_t buckets = 16;
  std::printf("  load across the key space (each cell = %zu peers):\n  [",
              loads.size() / buckets + 1);
  for (size_t b = 0; b < buckets; ++b) {
    size_t from = b * loads.size() / buckets;
    size_t to = (b + 1) * loads.size() / buckets;
    double avg = 0;
    for (size_t i = from; i < to; ++i) avg += static_cast<double>(loads[i]);
    avg /= static_cast<double>(to - from);
    int bar = maxload == 0 ? 0
                           : static_cast<int>(9.0 * avg /
                                              static_cast<double>(maxload));
    std::printf("%d", bar);
  }
  std::printf("]  (0..9 = relative load, max=%zu keys)\n", maxload);
}

}  // namespace

int main() {
  using namespace baton;

  Rng rng(23);
  workload::ZipfKeys zipf(1, 1000000000, /*theta=*/1.0);

  // One overlay with the paper's load balancing, one without, same stream.
  for (bool balanced : {false, true}) {
    net::Network net;
    BatonConfig cfg;
    cfg.enable_load_balance = balanced;
    cfg.overload_factor = 2.2;
    BatonNetwork overlay(cfg, &net, /*seed=*/555);
    Rng grow_rng(29);
    std::vector<PeerId> peers{overlay.Bootstrap()};
    while (peers.size() < 200) {
      peers.push_back(
          overlay.Join(peers[grow_rng.NextBelow(peers.size())]).value());
    }

    Rng stream(31);
    for (int i = 0; i < 40000; ++i) {
      overlay.Insert(peers[stream.NextBelow(peers.size())], zipf.Next(&stream))
          .ToString();
    }
    overlay.CheckInvariants();

    size_t max_load = 0;
    for (auto p : overlay.Members()) {
      max_load = std::max(max_load, overlay.node(p).data.size());
    }
    double avg = static_cast<double>(overlay.total_keys()) /
                 static_cast<double>(overlay.size());
    std::printf("\n%s load balancing: max %zu keys vs %.0f average (%.1fx)\n",
                balanced ? "WITH" : "WITHOUT", max_load, avg,
                static_cast<double>(max_load) / avg);
    PrintLoadSketch(overlay);
    if (balanced) {
      std::printf(
          "  %llu balancing ops; restructuring shift sizes (Fig 8(h)):\n%s",
          static_cast<unsigned long long>(overlay.load_balance_ops()),
          overlay.shift_sizes().ToString(8).c_str());
    }
  }
  return 0;
}
