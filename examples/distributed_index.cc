// Distributed range index: the database-flavoured scenario from the paper's
// introduction. A fleet of peers indexes order records by timestamp; the
// application runs point lookups and time-window scans and compares BATON's
// message costs with a Chord DHT, which cannot answer the window queries at
// all ("hashing destroys the ordering of data").
//
//   $ ./examples/distributed_index
#include <cstdio>

#include "baton/baton.h"
#include "chord/chord_network.h"
#include "workload/workload.h"

namespace {

// Keys are milliseconds-since-midnight: fine-grained enough that a hot
// minute can still be split across many peers.
constexpr baton::Key kDayStart = 0;
constexpr baton::Key kDayEnd = 86400000;

}  // namespace

int main() {
  using namespace baton;

  net::Network baton_net;
  BatonConfig cfg;
  cfg.domain_lo = kDayStart;
  cfg.domain_hi = kDayEnd;
  cfg.enable_load_balance = true;
  cfg.overload_factor = 2.2;  // overloaded = 2.2x the fleet average
  BatonNetwork index(cfg, &baton_net, /*seed=*/2026);

  net::Network chord_net;
  chord::ChordNetwork dht(&chord_net, /*seed=*/2026);

  // 200 storage peers join each system.
  Rng rng(11);
  std::vector<PeerId> peers{index.Bootstrap()};
  std::vector<PeerId> dht_peers{dht.Bootstrap()};
  for (int i = 1; i < 200; ++i) {
    peers.push_back(index.Join(peers[rng.NextBelow(peers.size())]).value());
    dht_peers.push_back(
        dht.Join(dht_peers[rng.NextBelow(dht_peers.size())]).value());
  }

  // Ingest 40k order timestamps: business hours are hot (skewed load), which
  // exercises the paper's load balancing.
  Rng data_rng(13);
  ZipfGenerator peak(240, 1.0);  // minutes-from-9am popularity
  auto next_ts = [&]() {
    Key minute = 9 * 60 + static_cast<Key>(peak.Sample(&data_rng)) - 1;
    return minute * 60000 + data_rng.UniformInt(0, 59999);
  };
  for (int i = 0; i < 40000; ++i) {
    Key ts = next_ts();
    PeerId from = peers[data_rng.NextBelow(peers.size())];
    Status s = index.Insert(from, ts);
    if (!s.ok()) std::printf("insert failed: %s\n", s.ToString().c_str());
    dht.Insert(dht_peers[data_rng.NextBelow(dht_peers.size())], ts)
        .ToString();
  }
  index.CheckInvariants();
  std::printf("ingested %llu orders across %zu peers (LB ops: %llu)\n",
              static_cast<unsigned long long>(index.total_keys()),
              index.size(),
              static_cast<unsigned long long>(index.load_balance_ops()));

  // Point lookups: both systems answer in O(log N).
  auto b0 = baton_net.Snapshot();
  auto c0 = chord_net.Snapshot();
  int found = 0;
  for (int q = 0; q < 500; ++q) {
    Key ts = next_ts();
    if (index.ExactSearch(peers[data_rng.NextBelow(peers.size())], ts)
            .value()
            .found) {
      ++found;
    }
    dht.Lookup(dht_peers[data_rng.NextBelow(dht_peers.size())], ts).value();
  }
  double baton_pt =
      static_cast<double>(net::Network::Delta(b0, baton_net.Snapshot())) / 500;
  double chord_pt =
      static_cast<double>(net::Network::Delta(c0, chord_net.Snapshot())) / 500;
  std::printf("point lookups: %.2f msgs (BATON) vs %.2f msgs (Chord DHT), "
              "%d hits\n",
              baton_pt, chord_pt, found);

  // Time-window scans: only the tree can do this without flooding.
  b0 = baton_net.Snapshot();
  uint64_t rows = 0;
  for (int q = 0; q < 100; ++q) {
    Key lo = (9 * 60 + data_rng.UniformInt(0, 200)) * 60000;
    Key hi = lo + 30 * 60000;  // a 30-minute window
    rows += index.RangeSearch(peers[data_rng.NextBelow(peers.size())], lo, hi)
                .value()
                .matches;
  }
  double baton_rq =
      static_cast<double>(net::Network::Delta(b0, baton_net.Snapshot())) / 100;
  std::printf("30-minute window scans: %.2f msgs avg, %llu rows returned; "
              "Chord: unsupported\n",
              baton_rq, static_cast<unsigned long long>(rows));

  // Show the fairness property: the busiest peer holds only a small multiple
  // of the average load despite the rush-hour skew.
  size_t max_load = 0;
  for (PeerId p : index.Members()) {
    max_load = std::max(max_load, index.node(p).data.size());
  }
  std::printf("load: avg %.1f keys/peer, max %zu keys (%.1fx average)\n",
              static_cast<double>(index.total_keys()) /
                  static_cast<double>(index.size()),
              max_load,
              static_cast<double>(max_load) * static_cast<double>(index.size()) /
                  static_cast<double>(index.total_keys()));
  return 0;
}
