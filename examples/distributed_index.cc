// Distributed range index: the database-flavoured scenario from the paper's
// introduction. A fleet of peers indexes order records by timestamp; the
// application runs point lookups and time-window scans and compares BATON's
// message costs with a Chord DHT, which cannot answer the window queries at
// all ("hashing destroys the ordering of data").
//
// Both systems are driven through the generic overlay::Overlay interface:
// the application code is written once and pointed at two backends built by
// overlay::Make; capabilities() tells it (rather than a crash) that the DHT
// cannot scan ranges.
//
//   $ ./examples/distributed_index
#include <cstdio>

#include "overlay/baton_overlay.h"
#include "overlay/registry.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

// Keys are milliseconds-since-midnight: fine-grained enough that a hot
// minute can still be split across many peers.
constexpr baton::Key kDayStart = 0;
constexpr baton::Key kDayEnd = 86400000;

}  // namespace

int main() {
  using namespace baton;

  overlay::Config cfg;
  cfg.seed = 2026;
  cfg.baton.domain_lo = kDayStart;
  cfg.baton.domain_hi = kDayEnd;
  cfg.baton.enable_load_balance = true;
  cfg.baton.overload_factor = 2.2;  // overloaded = 2.2x the fleet average

  auto index = overlay::Make("baton", cfg);
  auto dht = overlay::Make("chord", cfg);

  // 200 storage peers join each system -- same driver code for both.
  Rng rng(11);
  std::vector<overlay::PeerId> peers{index->Bootstrap()};
  std::vector<overlay::PeerId> dht_peers{dht->Bootstrap()};
  for (int i = 1; i < 200; ++i) {
    auto b = index->Join(peers[rng.NextBelow(peers.size())]);
    BATON_CHECK(b.ok()) << b.status.ToString();
    peers.push_back(b.peer);
    auto c = dht->Join(dht_peers[rng.NextBelow(dht_peers.size())]);
    BATON_CHECK(c.ok()) << c.status.ToString();
    dht_peers.push_back(c.peer);
  }

  // Ingest 40k order timestamps: business hours are hot (skewed load), which
  // exercises the paper's load balancing.
  Rng data_rng(13);
  ZipfGenerator peak(240, 1.0);  // minutes-from-9am popularity
  auto next_ts = [&]() {
    Key minute = 9 * 60 + static_cast<Key>(peak.Sample(&data_rng)) - 1;
    return minute * 60000 + data_rng.UniformInt(0, 59999);
  };
  for (int i = 0; i < 40000; ++i) {
    Key ts = next_ts();
    auto st = index->Insert(peers[data_rng.NextBelow(peers.size())], ts);
    if (!st.ok()) std::printf("insert failed: %s\n", st.status.ToString().c_str());
    auto dst = dht->Insert(dht_peers[data_rng.NextBelow(dht_peers.size())], ts);
    if (!dst.ok()) {
      std::printf("dht insert failed: %s\n", dst.status.ToString().c_str());
    }
  }
  index->CheckInvariants();
  std::printf("ingested %llu orders across %zu peers (LB ops: %llu)\n",
              static_cast<unsigned long long>(index->total_keys()),
              index->size(),
              static_cast<unsigned long long>(
                  overlay::BatonBackend(*index).load_balance_ops()));

  // Point lookups: both systems answer in O(log N), and OpStats carries the
  // per-query message cost directly.
  uint64_t baton_msgs = 0, chord_msgs = 0;
  int found = 0;
  for (int q = 0; q < 500; ++q) {
    Key ts = next_ts();
    auto b = index->ExactSearch(peers[data_rng.NextBelow(peers.size())], ts);
    if (b.found) ++found;
    baton_msgs += b.messages;
    chord_msgs +=
        dht->ExactSearch(dht_peers[data_rng.NextBelow(dht_peers.size())], ts)
            .messages;
  }
  std::printf("point lookups: %.2f msgs (BATON) vs %.2f msgs (Chord DHT), "
              "%d hits\n",
              static_cast<double>(baton_msgs) / 500,
              static_cast<double>(chord_msgs) / 500, found);

  // Time-window scans: only the order-preserving tree can do this without
  // flooding -- the DHT declares it via capabilities().
  uint64_t rows = 0, scan_msgs = 0;
  for (int q = 0; q < 100; ++q) {
    Key lo = (9 * 60 + data_rng.UniformInt(0, 200)) * 60000;
    Key hi = lo + 30 * 60000;  // a 30-minute window
    auto st =
        index->RangeSearch(peers[data_rng.NextBelow(peers.size())], lo, hi);
    rows += st.matches;
    scan_msgs += st.messages;
  }
  std::printf("30-minute window scans: %.2f msgs avg, %llu rows returned; "
              "%s: %s\n",
              static_cast<double>(scan_msgs) / 100,
              static_cast<unsigned long long>(rows), dht->name().c_str(),
              dht->Supports(overlay::kRangeSearch) ? "supported"
                                                   : "unsupported");

  // Show the fairness property: the busiest peer holds only a small multiple
  // of the average load despite the rush-hour skew.
  const BatonNetwork& tree = overlay::BatonBackend(*index);
  size_t max_load = 0;
  for (overlay::PeerId p : index->Members()) {
    max_load = std::max(max_load, tree.node(p).data.size());
  }
  std::printf("load: avg %.1f keys/peer, max %zu keys (%.1fx average)\n",
              static_cast<double>(index->total_keys()) /
                  static_cast<double>(index->size()),
              max_load,
              static_cast<double>(max_load) * static_cast<double>(index->size()) /
                  static_cast<double>(index->total_keys()));
  return 0;
}
