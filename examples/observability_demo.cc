// Observability walkthrough: attach an obs::Observer to an overlay, run a
// small churn + query workload through the unified overlay::Overlay API,
// then interrogate the metrics registry (global counters, per-operation
// histograms, per-node load families) and export the causal trace as Chrome
// trace-event JSON -- open observability_demo_trace.json in Perfetto
// (https://ui.perfetto.dev) to see one span per operation with its message
// deliveries nested underneath.
//
//   $ ./examples/observability_demo
#include <cstdio>
#include <fstream>

#include "obs/observer.h"
#include "obs/trace.h"
#include "overlay/registry.h"
#include "sim/event_queue.h"
#include "sim/latency.h"
#include "util/check.h"
#include "util/rng.h"

int main() {
  using namespace baton;

  auto overlay = overlay::Make("baton");
  Rng rng(42);
  std::vector<net::PeerId> members{overlay->Bootstrap()};
  while (members.size() < 200) {
    auto joined = overlay->Join(members[rng.NextBelow(members.size())]);
    if (joined.ok()) members.push_back(joined.peer);
  }
  for (int i = 0; i < 2000; ++i) {
    BATON_CHECK(overlay
                    ->Insert(members[rng.NextBelow(members.size())],
                             rng.UniformInt(1, 999999999))
                    .ok());
  }

  // Attach AFTER the build, exactly like AttachLatency: only the workload
  // below is observed. The sim kernel gives the trace real (simulated)
  // timestamps; without it, ticks fall back to the global message index,
  // which is still causally ordered.
  sim::EventQueue queue;
  sim::UniformLatency link(5, 20);
  overlay->AttachLatency(&queue, &link, /*seed=*/7);
  obs::Observer observer(/*tracing=*/true);
  overlay->AttachObserver(&observer);

  for (int q = 0; q < 500; ++q) {
    BATON_CHECK(overlay
                    ->ExactSearch(members[rng.NextBelow(members.size())],
                                  rng.UniformInt(1, 999999999))
                    .ok());
  }
  for (int q = 0; q < 50; ++q) {
    Key lo = rng.UniformInt(1, 999000000);
    BATON_CHECK(overlay
                    ->RangeSearch(members[rng.NextBelow(members.size())], lo,
                                  lo + 1000000)
                    .ok());
  }
  for (int q = 0; q < 20; ++q) {
    BATON_CHECK(
        overlay->Join(members[rng.NextBelow(members.size())]).ok());
  }

  // ---- The registry answers "what happened?" after the fact ---------------
  const obs::Registry& m = observer.metrics();
  std::printf("messages observed:   %llu (maintenance %llu, query %llu)\n",
              static_cast<unsigned long long>(m.CounterValue("net.messages")),
              static_cast<unsigned long long>(
                  m.CounterValue("net.msgs.maintenance")),
              static_cast<unsigned long long>(m.CounterValue("net.msgs.query")));
  if (const obs::LogHistogram* h = m.FindHist("op.exact.latency_ticks")) {
    std::printf("exact search ticks:  mean %.1f  p50 %llu  p99 %llu\n",
                h->Mean(), static_cast<unsigned long long>(h->Quantile(0.5)),
                static_cast<unsigned long long>(h->Quantile(0.99)));
  }
  // Per-node load distribution: is the message load balanced, or do a few
  // hot nodes carry the tree? (The paper's load-balance claim, measurable.)
  obs::LogHistogram load = m.NodeLoad("node.msgs_in", overlay->size());
  std::printf("per-node msgs_in:    mean %.1f  p99 %llu  max %llu  (skew "
              "%.2fx)\n",
              load.Mean(), static_cast<unsigned long long>(load.Quantile(0.99)),
              static_cast<unsigned long long>(load.max()),
              load.Mean() > 0
                  ? static_cast<double>(load.max()) / load.Mean()
                  : 0.0);

  // ---- The trace answers "in what order, caused by what?" -----------------
  std::ofstream out("observability_demo_trace.json");
  obs::WriteChromeTrace(out, {{"baton N=200", observer.trace()}});
  std::printf("%zu op spans, %zu message events -> "
              "observability_demo_trace.json\n",
              observer.trace()->span_count(),
              observer.trace()->message_count());
  return 0;
}
