// Event-driven latency study: attaches the discrete-event kernel (src/sim)
// to the overlay's network so hop counts become simulated wall-clock
// latencies. Query arrivals are scheduled on one event queue; a second
// queue, attached via net::Network::AttachSim, timestamps every message the
// protocol sends and yields each query's critical-path time (sequential
// hops add, parallel fan-out takes the max over branches). The run reports
// the latency distribution alongside the message counts the paper plots.
//
//   $ ./examples/event_driven_sim
#include <cstdio>

#include "baton/baton.h"
#include "sim/event_queue.h"
#include "sim/latency.h"
#include "util/histogram.h"

int main() {
  using namespace baton;

  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, /*seed=*/7);
  Rng rng(3);
  std::vector<PeerId> peers{overlay.Bootstrap()};
  while (peers.size() < 500) {
    peers.push_back(overlay.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  for (int i = 0; i < 25000; ++i) {
    overlay.Insert(peers[rng.NextBelow(peers.size())],
                   rng.UniformInt(1, 999999999))
        .ToString();
  }

  // Wide-area-ish links: 20-80 ms per hop. Attached after the build so only
  // the queries below are timed.
  sim::UniformLatency link(20, 80);
  sim::EventQueue deliveries;  // link-level kernel behind Network::Count
  net.AttachSim(&deliveries, &link, /*seed=*/11);

  sim::EventQueue arrivals;  // workload-level clock: when queries are issued
  Histogram latency_ms;
  Histogram hops_hist;

  // Poisson-ish arrivals: one query every ~5 ms for 2000 queries.
  sim::Time t = 0;
  for (int q = 0; q < 2000; ++q) {
    t += rng.NextBelow(10) + 1;
    arrivals.ScheduleAt(t, [&overlay, &net, &rng, &link, &latency_ms,
                            &hops_hist, &peers] {
      PeerId from = peers[rng.NextBelow(peers.size())];
      Key k = rng.UniformInt(1, 999999999);
      net.BeginOpWindow();
      auto r = overlay.ExactSearch(from, k);
      sim::Time total = net.EndOpWindow();  // critical path of the routing
      if (!r.ok()) return;
      hops_hist.Add(r.value().hops);
      // The answer itself travels one (long) path back to the origin.
      total += link.Sample(&rng);
      latency_ms.Add(static_cast<int64_t>(total));
    });
  }
  arrivals.RunUntilIdle();

  std::printf("%llu queries over %llu virtual ms\n",
              static_cast<unsigned long long>(latency_ms.total_count()),
              static_cast<unsigned long long>(arrivals.now()));
  std::printf("hops:    mean %.2f  p50 %lld  p99 %lld\n", hops_hist.Mean(),
              static_cast<long long>(hops_hist.Percentile(0.5)),
              static_cast<long long>(hops_hist.Percentile(0.99)));
  std::printf("latency: mean %.1f ms  p50 %lld ms  p99 %lld ms\n",
              latency_ms.Mean(),
              static_cast<long long>(latency_ms.Percentile(0.5)),
              static_cast<long long>(latency_ms.Percentile(0.99)));
  std::printf("messages on the wire: %llu\n",
              static_cast<unsigned long long>(net.total_messages()));
  return 0;
}
