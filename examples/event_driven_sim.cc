// Event-driven latency study: puts the discrete-event kernel (src/sim) under
// the overlay to turn hop counts into wall-clock latencies. Each query is
// scheduled as an event; every hop costs a sampled link latency; the run
// reports the latency distribution alongside the message counts the paper
// plots.
//
//   $ ./examples/event_driven_sim
#include <cstdio>

#include "baton/baton.h"
#include "sim/event_queue.h"
#include "sim/latency.h"
#include "util/histogram.h"

int main() {
  using namespace baton;

  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, /*seed=*/7);
  Rng rng(3);
  std::vector<PeerId> peers{overlay.Bootstrap()};
  while (peers.size() < 500) {
    peers.push_back(overlay.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  for (int i = 0; i < 25000; ++i) {
    overlay.Insert(peers[rng.NextBelow(peers.size())],
                   rng.UniformInt(1, 999999999))
        .ToString();
  }

  // Wide-area-ish links: 20-80 ms per hop.
  sim::UniformLatency link(20, 80);
  sim::EventQueue events;
  Histogram latency_ms;
  Histogram hops_hist;

  // Poisson-ish arrivals: one query every ~5 ms for 2000 queries.
  sim::Time t = 0;
  for (int q = 0; q < 2000; ++q) {
    t += rng.NextBelow(10) + 1;
    events.ScheduleAt(t, [&overlay, &rng, &link, &latency_ms, &hops_hist,
                          &peers, &events] {
      PeerId from = peers[rng.NextBelow(peers.size())];
      Key k = rng.UniformInt(1, 999999999);
      auto r = overlay.ExactSearch(from, k);
      if (!r.ok()) return;
      // Hop count -> end-to-end latency under the link model.
      sim::Time total = 0;
      for (int h = 0; h < r.value().hops; ++h) total += link.Sample(&rng);
      hops_hist.Add(r.value().hops);
      // The answer itself travels one (long) path back to the origin.
      total += link.Sample(&rng);
      latency_ms.Add(static_cast<int64_t>(total));
      (void)events;
    });
  }
  events.RunUntilIdle();

  std::printf("%llu queries over %llu virtual ms\n",
              static_cast<unsigned long long>(latency_ms.total_count()),
              static_cast<unsigned long long>(events.now()));
  std::printf("hops:    mean %.2f  p50 %lld  p99 %lld\n", hops_hist.Mean(),
              static_cast<long long>(hops_hist.Percentile(0.5)),
              static_cast<long long>(hops_hist.Percentile(0.99)));
  std::printf("latency: mean %.1f ms  p50 %lld ms  p99 %lld ms\n",
              latency_ms.Mean(),
              static_cast<long long>(latency_ms.Percentile(0.5)),
              static_cast<long long>(latency_ms.Percentile(0.99)));
  std::printf("messages on the wire: %llu\n",
              static_cast<unsigned long long>(net.total_messages()));
  return 0;
}
