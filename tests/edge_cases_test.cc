// Edge cases across all three systems: tiny networks, ring wrap-around,
// degenerate fan-out, the stabilisation pass, the recruit directory
// extension, and handshake gating.
#include <gtest/gtest.h>

#include "baton/baton.h"
#include "chord/chord_network.h"
#include "multiway/multiway_network.h"

namespace baton {
namespace {

// ---------------- BATON ----------------

TEST(EdgeBaton, RepairAllLinksIsNoOpWhenConsistent) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 1);
  Rng rng(1);
  std::vector<PeerId> peers{overlay.Bootstrap()};
  for (int i = 1; i < 40; ++i) {
    peers.push_back(overlay.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(overlay
                    .Insert(peers[rng.NextBelow(peers.size())],
                            rng.UniformInt(1, 999999999))
                    .ok());
  }
  overlay.CheckInvariants();
  uint64_t msgs_before = net.total_messages();
  overlay.RepairAllLinks();  // anti-entropy on a healthy overlay
  overlay.CheckInvariants();
  EXPECT_EQ(net.total_messages(), msgs_before) << "repair is uncharged";
}

TEST(EdgeBaton, RecruitDirectoryFlattensDeepHotspot) {
  // With the footnote-2 directory on, a hot stream cannot pile keys on one
  // node even when its neighbour tables have no light leaves.
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_factor = 2.0;
  cfg.enable_recruit_directory = true;
  net::Network net;
  BatonNetwork overlay(cfg, &net, 5);
  Rng rng(5);
  std::vector<PeerId> peers{overlay.Bootstrap()};
  for (int i = 1; i < 96; ++i) {
    peers.push_back(overlay.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  for (int i = 0; i < 12000; ++i) {
    ASSERT_TRUE(overlay
                    .Insert(peers[rng.NextBelow(peers.size())],
                            rng.UniformInt(1000000, 9000000))  // hot range
                    .ok());
  }
  overlay.CheckInvariants();
  size_t max_load = 0;
  for (PeerId m : overlay.Members()) {
    max_load = std::max(max_load, overlay.node(m).data.size());
  }
  double avg = 12000.0 / 96.0;
  EXPECT_LE(static_cast<double>(max_load), 6.0 * avg)
      << "directory recruiting must cap the hot node";
}

TEST(EdgeBaton, TwoNodeLeaveRejoinCycle) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 7);
  PeerId a = overlay.Bootstrap();
  for (int round = 0; round < 20; ++round) {
    auto b = overlay.Join(a);
    ASSERT_TRUE(b.ok());
    overlay.CheckInvariants();
    ASSERT_TRUE(overlay.Leave(b.value()).ok());
    overlay.CheckInvariants();
  }
  EXPECT_EQ(overlay.size(), 1u);
}

TEST(EdgeBaton, RebootstrapAfterEmpty) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 9);
  PeerId a = overlay.Bootstrap();
  ASSERT_TRUE(overlay.Insert(a, 500).ok());
  ASSERT_TRUE(overlay.Leave(a).ok());
  EXPECT_EQ(overlay.size(), 0u);
  PeerId b = overlay.Bootstrap();  // the overlay can restart
  EXPECT_TRUE(overlay.Insert(b, 600).ok());
  EXPECT_EQ(overlay.total_keys(), 1u);
  overlay.CheckInvariants();
}

TEST(EdgeBaton, QueryFromEveryNodeOnThreeNodeTree) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 11);
  PeerId a = overlay.Bootstrap();
  PeerId b = overlay.Join(a).value();
  PeerId c = overlay.Join(a).value();
  ASSERT_TRUE(overlay.Insert(a, 1).ok());
  ASSERT_TRUE(overlay.Insert(a, 500000000).ok());
  ASSERT_TRUE(overlay.Insert(a, 999999998).ok());
  for (PeerId from : {a, b, c}) {
    for (Key k : {Key{1}, Key{500000000}, Key{999999998}}) {
      auto r = overlay.ExactSearch(from, k);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(r.value().found) << "key " << k << " from " << from;
    }
  }
  overlay.CheckInvariants();
}

TEST(EdgeBaton, NarrowDomainStopsAcceptingGracefully) {
  // Domain of width 8 can host at most ~4 nodes (ranges must be splittable);
  // further joins must wander, not corrupt. We only assert invariants and
  // that successful joins stay consistent.
  BatonConfig cfg;
  cfg.domain_lo = 0;
  cfg.domain_hi = 8;
  net::Network net;
  BatonNetwork overlay(cfg, &net, 13);
  Rng rng(13);
  std::vector<PeerId> peers{overlay.Bootstrap()};
  for (int i = 0; i < 3; ++i) {
    auto joined = overlay.Join(peers[rng.NextBelow(peers.size())]);
    ASSERT_TRUE(joined.ok());
    peers.push_back(joined.value());
    overlay.CheckInvariants();
  }
  EXPECT_EQ(overlay.size(), 4u);
}

TEST(EdgeBaton, HandshakeGateOnlyBitesUnderChurn) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 15);
  Rng rng(15);
  std::vector<PeerId> peers{overlay.Bootstrap()};
  for (int i = 1; i < 30; ++i) {
    peers.push_back(overlay.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  // On a quiescent overlay every leave goes through on the first try.
  while (overlay.size() > 1) {
    std::vector<PeerId> ms = overlay.Members();
    ASSERT_TRUE(overlay.Leave(ms[rng.NextBelow(ms.size())]).ok())
        << "handshake must always succeed without churn";
  }
}

// ---------------- Chord ----------------

TEST(EdgeChord, TwoNodeRing) {
  net::Network net;
  chord::ChordNetwork ring(&net, 17);
  PeerId a = ring.Bootstrap();
  PeerId b = ring.Join(a).value();
  ring.CheckInvariants();
  ASSERT_TRUE(ring.Insert(a, 777).ok());
  auto r = ring.Lookup(b, 777);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().found);
  ASSERT_TRUE(ring.Leave(b).ok());
  ring.CheckInvariants();
  EXPECT_EQ(ring.total_keys(), 1u);
}

TEST(EdgeChord, ShrinkToOneKeepsAllKeys) {
  net::Network net;
  chord::ChordNetwork ring(&net, 19);
  Rng rng(19);
  std::vector<PeerId> members{ring.Bootstrap()};
  for (int i = 1; i < 30; ++i) {
    members.push_back(ring.Join(members[rng.NextBelow(members.size())]).value());
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(ring.Insert(members[rng.NextBelow(members.size())],
                            rng.UniformInt(1, 999999999))
                    .ok());
  }
  while (ring.size() > 1) {
    size_t idx = rng.NextBelow(ring.members().size());
    ASSERT_TRUE(ring.Leave(ring.members()[idx]).ok());
    ring.CheckInvariants();
  }
  EXPECT_EQ(ring.total_keys(), 300u);
}

TEST(EdgeChord, LookupFromOwnerIsCheap) {
  net::Network net;
  chord::ChordNetwork ring(&net, 23);
  Rng rng(23);
  std::vector<PeerId> members{ring.Bootstrap()};
  for (int i = 1; i < 64; ++i) {
    members.push_back(ring.Join(members.back()).value());
  }
  ASSERT_TRUE(ring.Insert(members[0], 123).ok());
  auto r = ring.Lookup(members[0], 123);
  ASSERT_TRUE(r.ok());
  // Hashing may or may not land the key on members[0]; hop count still must
  // be bounded by the ring's O(log N).
  EXPECT_LE(r.value().hops, 16);
}

// ---------------- Multiway ----------------

TEST(EdgeMultiway, FanoutOneBecomesAChain) {
  // The degenerate structure the paper warns about: "in the worst case, the
  // tree structure can become a linear linked list".
  net::Network net;
  multiway::MultiwayConfig cfg;
  cfg.max_fanout = 1;
  multiway::MultiwayNetwork tree(cfg, &net, 29);
  Rng rng(29);
  std::vector<PeerId> peers{tree.Bootstrap()};
  for (int i = 1; i < 24; ++i) {
    peers.push_back(tree.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  tree.CheckInvariants();
  EXPECT_GE(tree.Depth(), 8) << "fanout 1 must degenerate toward a chain";
  // Searches still work, just expensively.
  ASSERT_TRUE(tree.Insert(peers[0], 555).ok());
  auto r = tree.ExactSearch(peers.back(), 555);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().found);
}

TEST(EdgeMultiway, RootLeaveHandsOverEverything) {
  net::Network net;
  multiway::MultiwayNetwork tree(multiway::MultiwayConfig{}, &net, 31);
  Rng rng(31);
  std::vector<PeerId> peers{tree.Bootstrap()};
  PeerId root = peers[0];
  for (int i = 1; i < 20; ++i) {
    peers.push_back(tree.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Insert(peers[rng.NextBelow(peers.size())],
                            rng.UniformInt(1, 999999999))
                    .ok());
  }
  ASSERT_TRUE(tree.Leave(root).ok());
  tree.CheckInvariants();
  EXPECT_EQ(tree.total_keys(), 200u);
  EXPECT_EQ(tree.size(), 19u);
}

TEST(EdgeMultiway, ExtentInvariantSurvivesDeepChurn) {
  net::Network net;
  multiway::MultiwayConfig cfg;
  cfg.max_fanout = 3;
  multiway::MultiwayNetwork tree(cfg, &net, 37);
  Rng rng(37);
  std::vector<PeerId> peers{tree.Bootstrap()};
  for (int i = 1; i < 50; ++i) {
    peers.push_back(tree.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  for (int round = 0; round < 60; ++round) {
    if (rng.NextBool(0.5) && tree.size() > 5) {
      auto ms = tree.Members();
      ASSERT_TRUE(tree.Leave(ms[rng.NextBelow(ms.size())]).ok());
    } else {
      auto ms = tree.Members();
      ASSERT_TRUE(tree.Join(ms[rng.NextBelow(ms.size())]).ok());
    }
    tree.CheckInvariants();  // includes the extent-partition check
  }
}

}  // namespace
}  // namespace baton
