// Tests for the hot-path caching subsystem (src/cache/): Manager interval
// semantics (wrap-aware containment, wrapped-interval splitting, the LRU
// capacity bound, invalidation), and the overlay-level contract on every
// registered backend -- cached answers identical to uncached ones, exact
// message accounting, stale routes repaired after leave/fail churn,
// deterministic hit sequences, and byte-identical behaviour once detached.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "overlay/baton_overlay.h"
#include "overlay/chord_overlay.h"
#include "overlay/registry.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace baton {
namespace {

using overlay::Capability;
using overlay::Config;
using overlay::Make;
using overlay::OpStats;
using overlay::Overlay;

constexpr Key kDomainHi = 1000000000;

// ---- Manager unit tests ----------------------------------------------------

TEST(CacheRange, ContainsConventions) {
  // Plain half-open interval.
  EXPECT_TRUE(cache::RangeContains(10, 20, 10));
  EXPECT_TRUE(cache::RangeContains(10, 20, 19));
  EXPECT_FALSE(cache::RangeContains(10, 20, 20));
  EXPECT_FALSE(cache::RangeContains(10, 20, 9));
  // lo == hi covers everything.
  EXPECT_TRUE(cache::RangeContains(7, 7, 0));
  EXPECT_TRUE(cache::RangeContains(7, 7, ~0ull));
  // hi < lo wraps past the end of the space.
  EXPECT_TRUE(cache::RangeContains(100, 5, 100));
  EXPECT_TRUE(cache::RangeContains(100, 5, 4));
  EXPECT_FALSE(cache::RangeContains(100, 5, 50));
}

TEST(CacheManager, LearnLookupAndWrapSplit) {
  cache::Manager m;
  cache::RouteEntry e;
  EXPECT_EQ(m.Lookup(1, 500, &e), -1);  // cold cache misses

  m.Learn(/*node=*/1, /*lo=*/100, /*hi=*/200, /*owner=*/42, /*cost=*/5);
  ASSERT_GE(m.Lookup(1, 150, &e), 0);
  EXPECT_EQ(e.owner, 42u);
  EXPECT_EQ(e.cost, 5);
  EXPECT_EQ(m.Lookup(1, 200, &e), -1);  // half-open: hi excluded
  EXPECT_EQ(m.Lookup(2, 150, &e), -1);  // per-node caches are private

  // A wrapped (ring) interval is stored as two plain entries.
  m.Learn(1, 900, 50, 7, 3);
  ASSERT_GE(m.Lookup(1, 950, &e), 0);
  EXPECT_EQ(e.owner, 7u);
  ASSERT_GE(m.Lookup(1, 10, &e), 0);
  EXPECT_EQ(e.owner, 7u);
  EXPECT_EQ(m.Lookup(1, 500, &e), -1);

  // Relearning an overlapping interval supersedes the old owner.
  m.Learn(1, 120, 260, 99, 2);
  ASSERT_GE(m.Lookup(1, 150, &e), 0);
  EXPECT_EQ(e.owner, 99u);
}

TEST(CacheManager, CapacityBoundAndLru) {
  cache::Config cfg;
  cfg.capacity = 4;
  cache::Manager m(cfg);
  for (uint64_t i = 0; i < 32; ++i) {
    m.Learn(1, i * 100, i * 100 + 50, /*owner=*/i + 2, /*cost=*/2);
    EXPECT_LE(m.EntriesFor(1), cfg.capacity);
  }
  EXPECT_EQ(m.EntriesFor(1), cfg.capacity);
  EXPECT_GT(m.stats().evictions, 0u);
  // The most recently learned entry survived; the oldest did not.
  cache::RouteEntry e;
  EXPECT_GE(m.Lookup(1, 3120, &e), 0);
  EXPECT_EQ(m.Lookup(1, 20, &e), -1);
}

TEST(CacheManager, InvalidatePeerAndRange) {
  cache::Manager m;
  m.Learn(1, 100, 200, 42, 2);
  m.Learn(1, 300, 400, 43, 2);
  m.Learn(2, 100, 200, 42, 2);
  m.InvalidatePeer(42);  // every node's entries for that owner drop
  cache::RouteEntry e;
  EXPECT_EQ(m.Lookup(1, 150, &e), -1);
  EXPECT_EQ(m.Lookup(2, 150, &e), -1);
  ASSERT_GE(m.Lookup(1, 350, &e), 0);
  m.InvalidateRange(350, 360);  // any intersection kills the entry
  EXPECT_EQ(m.Lookup(1, 350, &e), -1);
  EXPECT_GT(m.stats().invalidations, 0u);
}

// ---- Overlay-level contract, on every registered backend -------------------

struct Built {
  std::unique_ptr<Overlay> ov;
  std::vector<net::PeerId> members;
};

Built Grow(const std::string& name, size_t n, uint64_t seed) {
  Config cfg;
  cfg.seed = seed;
  Built b;
  b.ov = Make(name, cfg);
  BATON_CHECK(b.ov != nullptr) << "unknown backend " << name;
  Rng rng(Mix64(seed));
  b.members.push_back(b.ov->Bootstrap());
  while (b.members.size() < n) {
    auto st = b.ov->Join(b.members[rng.NextBelow(b.members.size())]);
    BATON_CHECK(st.ok()) << st.status.ToString();
    b.members.push_back(st.peer);
  }
  return b;
}

std::vector<Key> SomeKeys(uint64_t seed, int count) {
  workload::UniformKeys gen(1, kDomainHi);
  Rng rng(Mix64(seed ^ 0x7a3e));
  std::vector<Key> keys;
  for (int i = 0; i < count; ++i) keys.push_back(gen.Next(&rng));
  return keys;
}

/// Replays `keys` with a fresh origin stream; returns (peer, found) pairs.
std::vector<std::pair<net::PeerId, bool>> Answers(Built* b,
                                                  const std::vector<Key>& keys,
                                                  uint64_t seed) {
  std::vector<std::pair<net::PeerId, bool>> out;
  Rng org(Mix64(seed ^ 0x0b51));
  for (Key k : keys) {
    net::PeerId from = b->members[org.NextBelow(b->members.size())];
    OpStats st = b->ov->ExactSearch(from, k);
    EXPECT_TRUE(st.ok()) << st.status.ToString();
    out.emplace_back(st.peer, st.found);
  }
  return out;
}

// Cached answers (cold and warm) must equal uncached answers, and the warm
// pass must actually hit.
TEST(CacheOverlay, AnswerSetsIdenticalOnAllBackends) {
  for (const std::string& name : overlay::RegisteredNames()) {
    SCOPED_TRACE(name);
    auto b = Grow(name, 96, 17);
    std::vector<Key> keys = SomeKeys(17, 120);
    Rng ins(Mix64(17 ^ 0xdead));
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(b.ov->Insert(b.members[ins.NextBelow(b.members.size())],
                               keys[static_cast<size_t>(i)])
                      .ok());
    }
    auto reference = Answers(&b, keys, 17);
    cache::Manager mgr;
    b.ov->AttachCache(&mgr);
    auto cold = Answers(&b, keys, 17);
    auto warm = Answers(&b, keys, 17);
    b.ov->AttachCache(nullptr);
    EXPECT_EQ(cold, reference);
    EXPECT_EQ(warm, reference);
    EXPECT_GT(mgr.stats().hits, 0u) << "warm pass never hit the cache";
  }
}

// OpStats::messages must equal the raw counter delta with the cache
// attached too -- probes and refreshes are billed, not smuggled.
TEST(CacheOverlay, MessagesMatchRawCounterDelta) {
  for (const std::string& name : overlay::RegisteredNames()) {
    SCOPED_TRACE(name);
    auto b = Grow(name, 48, 23);
    cache::Manager mgr;
    b.ov->AttachCache(&mgr);
    std::vector<Key> keys = SomeKeys(23, 80);
    Rng org(Mix64(23 ^ 0x0b51));
    for (Key k : keys) {
      net::PeerId from = b.members[org.NextBelow(b.members.size())];
      auto before = b.ov->network()->Snapshot();
      OpStats st = b.ov->ExactSearch(from, k);
      uint64_t raw =
          net::Network::Delta(before, b.ov->network()->Snapshot());
      EXPECT_TRUE(st.ok());
      EXPECT_EQ(st.messages, raw);
    }
    EXPECT_GT(mgr.stats().hits + mgr.stats().misses, 0u);
    b.ov->AttachCache(nullptr);
  }
}

// Stale routes are repaired: learned owners that leave (or fail, where
// supported) never produce wrong answers, only evictions and relearns.
TEST(CacheOverlay, StaleRoutesRepairedAfterLeaveAndFail) {
  for (const std::string& name : overlay::RegisteredNames()) {
    SCOPED_TRACE(name);
    auto b = Grow(name, 64, 29);
    cache::Manager mgr;
    b.ov->AttachCache(&mgr);
    std::vector<Key> keys = SomeKeys(29, 40);
    Answers(&b, keys, 29);  // learn routes
    // Churn: leave a handful of members (the leave hooks invalidate), with
    // the occasional fail/recover where the backend supports it.
    Rng rng(Mix64(29 ^ 0xc4a7));
    for (int i = 0; i < 8; ++i) {
      size_t idx = rng.NextBelow(b.members.size());
      ASSERT_TRUE(b.ov->Leave(b.members[idx]).ok());
      // A departure request can be fulfilled by a replacement (BATON moves
      // a leaf into an internal slot), so the peer that actually left may
      // not be the one we picked: re-read ground truth instead of erasing.
      b.members = b.ov->Members();
      ASSERT_FALSE(b.members.empty());
    }
    if (b.ov->Supports(Capability::kFailRecovery)) {
      size_t idx = rng.NextBelow(b.members.size());
      ASSERT_TRUE(b.ov->Fail(b.members[idx]).ok());
      ASSERT_TRUE(b.ov->RecoverAllFailures().ok());
      b.members = b.ov->Members();
    }
    // Replay against a never-cached twin at the same membership state: the
    // possibly-stale cache must still produce identical answers.
    auto cached = Answers(&b, keys, 31);
    b.ov->AttachCache(nullptr);
    auto plain = Answers(&b, keys, 31);
    EXPECT_EQ(cached, plain);
    EXPECT_GT(mgr.stats().invalidations + mgr.stats().stale, 0u)
        << "churn should have invalidated or refuted something";
    b.ov->CheckInvariants();
  }
}

// Same seed, same build, same trace => byte-identical hit sequence.
TEST(CacheOverlay, DeterministicHitSequence) {
  for (const std::string& name : overlay::RegisteredNames()) {
    SCOPED_TRACE(name);
    std::vector<Key> keys = SomeKeys(37, 60);
    auto run = [&]() {
      auto b = Grow(name, 48, 37);
      cache::Manager mgr;
      b.ov->AttachCache(&mgr);
      std::vector<int> hits;
      Rng org(Mix64(37 ^ 0x0b51));
      for (Key k : keys) {
        net::PeerId from = b.members[org.NextBelow(b.members.size())];
        OpStats st = b.ov->ExactSearch(from, k);
        hits.push_back(st.cache_hits);
      }
      return hits;
    };
    EXPECT_EQ(run(), run());
  }
}

// Attach-then-detach must behave exactly like never-attached: one null
// check, identical hops and message bills.
TEST(CacheOverlay, DetachedIsByteIdentical) {
  for (const std::string& name : overlay::RegisteredNames()) {
    SCOPED_TRACE(name);
    std::vector<Key> keys = SomeKeys(41, 50);
    auto trace = [&](bool attach_first) {
      auto b = Grow(name, 48, 41);
      if (attach_first) {
        cache::Manager mgr;
        b.ov->AttachCache(&mgr);
        Answers(&b, keys, 41);  // populate, then detach
        b.ov->AttachCache(nullptr);
      }
      std::vector<std::pair<int, uint64_t>> out;
      Rng org(Mix64(41 ^ 0x0b51));
      for (Key k : keys) {
        net::PeerId from = b.members[org.NextBelow(b.members.size())];
        OpStats st = b.ov->ExactSearch(from, k);
        out.emplace_back(st.hops, st.messages);
        EXPECT_EQ(st.cache_hits, 0);
      }
      return out;
    };
    EXPECT_EQ(trace(false), trace(true));
  }
}

}  // namespace
}  // namespace baton
