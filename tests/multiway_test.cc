// Multiway-tree baseline: structure, search correctness, churn.
#include <gtest/gtest.h>

#include "multiway/multiway_network.h"
#include "util/rng.h"

namespace baton {
namespace multiway {
namespace {

MultiwayConfig TestConfig(int fanout = 4) {
  MultiwayConfig cfg;
  cfg.max_fanout = fanout;
  return cfg;
}

TEST(Multiway, BootstrapAndGrow) {
  net::Network net;
  MultiwayNetwork tree(TestConfig(), &net, 5);
  PeerId root = tree.Bootstrap();
  std::vector<PeerId> peers{root};
  for (int i = 1; i < 50; ++i) {
    auto joined = tree.Join(peers[static_cast<size_t>(i) % peers.size()]);
    ASSERT_TRUE(joined.ok());
    peers.push_back(joined.value());
    tree.CheckInvariants();
  }
  EXPECT_EQ(tree.size(), 50u);
}

TEST(Multiway, SearchFindsKeys) {
  net::Network net;
  MultiwayNetwork tree(TestConfig(), &net, 5);
  PeerId root = tree.Bootstrap();
  std::vector<PeerId> peers{root};
  for (int i = 1; i < 40; ++i) peers.push_back(tree.Join(peers.back()).value());
  Rng rng(9);
  std::vector<Key> keys;
  for (int i = 0; i < 1000; ++i) {
    Key k = rng.UniformInt(1, 999999999);
    keys.push_back(k);
    ASSERT_TRUE(tree.Insert(peers[rng.NextBelow(peers.size())], k).ok());
  }
  tree.CheckInvariants();
  for (int i = 0; i < 200; ++i) {
    Key k = keys[rng.NextBelow(keys.size())];
    auto res = tree.ExactSearch(peers[rng.NextBelow(peers.size())], k);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.value().found) << "key " << k;
  }
  auto rr = tree.RangeSearch(root, 400000000, 500000000);
  ASSERT_TRUE(rr.ok());
  uint64_t expect = 0;
  for (Key k : keys) {
    if (k >= 400000000 && k < 500000000) ++expect;
  }
  EXPECT_EQ(rr.value().matches, expect);
}

TEST(Multiway, ChurnKeepsInvariants) {
  net::Network net;
  MultiwayNetwork tree(TestConfig(3), &net, 21);
  PeerId root = tree.Bootstrap();
  std::vector<PeerId> peers{root};
  Rng rng(4);
  for (int i = 1; i < 60; ++i) {
    peers.push_back(tree.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(tree.Insert(peers[rng.NextBelow(peers.size())],
                            rng.UniformInt(1, 999999999))
                    .ok());
  }
  for (int round = 0; round < 40; ++round) {
    auto members = tree.Members();
    PeerId victim = members[rng.NextBelow(members.size())];
    ASSERT_TRUE(tree.Leave(victim).ok());
    tree.CheckInvariants();
    members = tree.Members();
    peers.assign(members.begin(), members.end());
    peers.push_back(tree.Join(peers[rng.NextBelow(peers.size())]).value());
    tree.CheckInvariants();
  }
  EXPECT_EQ(tree.total_keys(), 600u);
}

TEST(Multiway, InternalLeaveCostsMoreThanLeafLeave) {
  // The paper's qualitative claim (section V-A): a departing internal node
  // "needs to get information from all of its children to select a
  // replacement node", so its departure costs far more than a leaf's.
  net::Network net;
  MultiwayNetwork tree(TestConfig(8), &net, 33);
  PeerId root = tree.Bootstrap();
  std::vector<PeerId> peers{root};
  Rng rng(8);
  for (int i = 1; i < 200; ++i) {
    peers.push_back(tree.Join(peers[rng.NextBelow(peers.size())]).value());
  }
  uint64_t internal_msgs = 0, leaf_msgs = 0;
  int internals = 0, leafs = 0;
  for (int i = 0; i < 100; ++i) {
    auto members = tree.Members();
    PeerId internal = kNullPeer, leaf = kNullPeer;
    for (PeerId m : members) {
      if (tree.node(m).children.size() >= 4 && internal == kNullPeer) {
        internal = m;
      }
      if (tree.node(m).children.empty() && leaf == kNullPeer) leaf = m;
    }
    if (internal != kNullPeer) {
      auto before = net.Snapshot();
      ASSERT_TRUE(tree.Leave(internal).ok());
      internal_msgs += net::Network::Delta(before, net.Snapshot());
      ++internals;
    }
    if (leaf != kNullPeer) {
      auto before = net.Snapshot();
      ASSERT_TRUE(tree.Leave(leaf).ok());
      leaf_msgs += net::Network::Delta(before, net.Snapshot());
      ++leafs;
    }
    if (tree.size() < 20) break;
    tree.CheckInvariants();
  }
  ASSERT_GT(internals, 0);
  ASSERT_GT(leafs, 0);
  EXPECT_GT(internal_msgs / static_cast<uint64_t>(internals),
            leaf_msgs / static_cast<uint64_t>(leafs));
}

}  // namespace
}  // namespace multiway
}  // namespace baton
