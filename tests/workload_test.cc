// Workload generators: key distributions and trace construction.
#include <gtest/gtest.h>

#include <map>

#include "workload/workload.h"

namespace baton {
namespace workload {
namespace {

TEST(UniformKeysTest, StaysInDomain) {
  Rng rng(1);
  UniformKeys gen(100, 200);
  for (int i = 0; i < 1000; ++i) {
    Key k = gen.Next(&rng);
    EXPECT_GE(k, 100);
    EXPECT_LT(k, 200);
  }
}

TEST(UniformKeysTest, RoughlyUniformAcrossHalves) {
  Rng rng(2);
  UniformKeys gen(0, 1000000);
  int low = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (gen.Next(&rng) < 500000) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / kN, 0.5, 0.03);
}

TEST(ZipfKeysTest, StaysInDomain) {
  Rng rng(3);
  ZipfKeys gen(1, 1000000000, 1.0);
  for (int i = 0; i < 2000; ++i) {
    Key k = gen.Next(&rng);
    EXPECT_GE(k, 1);
    EXPECT_LT(k, 1000000000);
  }
}

TEST(ZipfKeysTest, MassConcentratesAtLowKeys) {
  Rng rng(4);
  ZipfKeys gen(1, 1000000000, 1.0);
  int bottom = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (gen.Next(&rng) < 10000000) ++bottom;  // lowest 1% of the domain
  }
  // Under Zipf(1.0) over 2^20 ranks, the lowest 1% of buckets carry far more
  // than 1% of the mass.
  EXPECT_GT(bottom, kN / 10);
}

TEST(ZipfKeysTest, HigherThetaMoreConcentrated) {
  Rng rng(5);
  ZipfKeys mild(1, 1000000000, 0.6);
  ZipfKeys heavy(1, 1000000000, 1.2);
  int mild_bottom = 0, heavy_bottom = 0;
  for (int i = 0; i < 10000; ++i) {
    if (mild.Next(&rng) < 10000000) ++mild_bottom;
    if (heavy.Next(&rng) < 10000000) ++heavy_bottom;
  }
  EXPECT_GT(heavy_bottom, mild_bottom);
}

TEST(MixedTrace, CountsAndShuffle) {
  Rng rng(6);
  UniformKeys gen(1, 1000);
  auto trace = MakeMixedTrace(&rng, &gen, 10, 5, 7, 3, 50);
  EXPECT_EQ(trace.size(), 25u);
  std::map<OpType, int> counts;
  for (const Op& op : trace) ++counts[op.type];
  EXPECT_EQ(counts[OpType::kInsert], 10);
  EXPECT_EQ(counts[OpType::kDelete], 5);
  EXPECT_EQ(counts[OpType::kExact], 7);
  EXPECT_EQ(counts[OpType::kRange], 3);
  for (const Op& op : trace) {
    if (op.type == OpType::kRange) {
      EXPECT_EQ(op.key_hi, op.key + 50);
    }
  }
}

TEST(MixedTrace, DeterministicForSeed) {
  Rng a(7), b(7);
  UniformKeys ga(1, 1000), gb(1, 1000);
  auto ta = MakeMixedTrace(&a, &ga, 20, 0, 0, 0, 0);
  auto tb = MakeMixedTrace(&b, &gb, 20, 0, 0, 0, 0);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
  }
}

}  // namespace
}  // namespace workload
}  // namespace baton
