// Regression tests for the O(1) incrementally maintained Height(): it sits
// inside every routing hop budget (max_hops_factor * (height + 1)), so it
// must track the true maximum occupied level exactly through every kind of
// structural transition -- joins, graceful leaves (including replacement
// protocols and vacancy-fill restructuring), abrupt failures with recovery,
// load-balancing forced joins, and full shrink-to-empty.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baton/baton.h"

namespace baton {
namespace {

struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed, BatonConfig cfg = {}) {
    overlay = std::make_unique<BatonNetwork>(cfg, &net, seed);
    members.push_back(overlay->Bootstrap());
  }
  void Grow(size_t n, Rng* rng) {
    while (members.size() < n) {
      PeerId contact = members[rng->NextBelow(members.size())];
      auto joined = overlay->Join(contact);
      ASSERT_TRUE(joined.ok()) << joined.status().ToString();
      members.push_back(joined.value());
    }
  }
};

/// Ground truth: the maximum occupied level, recomputed from scratch.
int BruteHeight(const BatonNetwork& bn) {
  int h = -1;
  for (PeerId m : bn.Members()) {
    h = std::max(h, static_cast<int>(bn.node(m).pos.level));
  }
  return h;
}

TEST(Height, TracksJoins) {
  Overlay o(1);
  EXPECT_EQ(o.overlay->Height(), 0);
  Rng rng(1);
  for (size_t n = 2; n <= 128; ++n) {
    o.Grow(n, &rng);
    ASSERT_EQ(o.overlay->Height(), BruteHeight(*o.overlay)) << "n=" << n;
  }
}

TEST(Height, TracksLeavesDownToEmpty) {
  Overlay o(2);
  Rng rng(2);
  o.Grow(100, &rng);
  while (o.overlay->size() > 1) {
    std::vector<PeerId> ms = o.overlay->Members();
    PeerId victim = ms[rng.NextBelow(ms.size())];
    ASSERT_TRUE(o.overlay->Leave(victim).ok());
    ASSERT_EQ(o.overlay->Height(), BruteHeight(*o.overlay))
        << "size=" << o.overlay->size();
  }
  EXPECT_EQ(o.overlay->Height(), 0);
  // The final departure empties the overlay: height returns to the
  // bootstrap-less sentinel.
  ASSERT_TRUE(o.overlay->Leave(o.overlay->Members()[0]).ok());
  EXPECT_EQ(o.overlay->size(), 0u);
  EXPECT_EQ(o.overlay->Height(), -1);
}

TEST(Height, TracksJoinLeaveChurn) {
  Overlay o(3);
  Rng rng(3);
  o.Grow(64, &rng);
  for (int round = 0; round < 300; ++round) {
    if (rng.NextBool(0.5)) {
      auto joined =
          o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
      ASSERT_TRUE(joined.ok());
      o.members.push_back(joined.value());
    } else if (o.overlay->size() > 4) {
      std::vector<PeerId> ms = o.overlay->Members();
      ASSERT_TRUE(o.overlay->Leave(ms[rng.NextBelow(ms.size())]).ok());
      o.members = o.overlay->Members();
    }
    ASSERT_EQ(o.overlay->Height(), BruteHeight(*o.overlay))
        << "round " << round;
  }
  o.overlay->CheckInvariants();
}

TEST(Height, TracksFailureRecovery) {
  Overlay o(4);
  Rng rng(4);
  o.Grow(48, &rng);
  for (int round = 0; round < 20; ++round) {
    std::vector<PeerId> ms = o.overlay->Members();
    o.overlay->Fail(ms[rng.NextBelow(ms.size())]);
    ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
    ASSERT_EQ(o.overlay->Height(), BruteHeight(*o.overlay))
        << "round " << round;
    // Keep the overlay from shrinking away.
    auto joined = o.overlay->Join(o.overlay->Members()[0]);
    ASSERT_TRUE(joined.ok());
    ASSERT_EQ(o.overlay->Height(), BruteHeight(*o.overlay));
  }
  o.overlay->CheckInvariants();
}

TEST(Height, TracksLoadBalanceRestructuring) {
  // Forced joins / vacancy chains relocate whole runs of occupants
  // (RelocateNodes unindexes and reindexes every mover); the level counts
  // must survive the round trip.
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_threshold = 60;
  Overlay o(5, cfg);
  Rng rng(5);
  o.Grow(32, &rng);
  uint64_t before = o.overlay->shift_sizes().total_count();
  // Hammer one narrow region so adjacent balancing and forced joins fire.
  for (int i = 0; i < 3000; ++i) {
    Key k = 500000000 + rng.UniformInt(0, 20000);
    ASSERT_TRUE(
        o.overlay->Insert(o.members[rng.NextBelow(o.members.size())], k).ok());
    if (i % 50 == 0) {
      ASSERT_EQ(o.overlay->Height(), BruteHeight(*o.overlay)) << "i=" << i;
    }
  }
  EXPECT_GT(o.overlay->shift_sizes().total_count(), before)
      << "test must actually exercise restructuring";
  ASSERT_EQ(o.overlay->Height(), BruteHeight(*o.overlay));
  o.overlay->CheckInvariants();
}

}  // namespace
}  // namespace baton
