// Replication subsystem (src/replication/): replica placement, incremental
// push, restore-on-failure durability, anti-entropy repair, and the r = 0
// regression guarantee (replication off must not perturb the paper's message
// accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baton/baton.h"

namespace baton {
namespace {

struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed, BatonConfig cfg = {}) {
    overlay = std::make_unique<BatonNetwork>(cfg, &net, seed);
    members.push_back(overlay->Bootstrap());
  }
  void Grow(size_t n, Rng* rng) {
    while (members.size() < n) {
      auto joined = overlay->Join(members[rng->NextBelow(members.size())]);
      ASSERT_TRUE(joined.ok());
      members.push_back(joined.value());
    }
  }
  std::vector<Key> InsertUniform(size_t count, Rng* rng) {
    std::vector<Key> keys;
    for (size_t i = 0; i < count; ++i) {
      Key k = rng->UniformInt(1, 999999999);
      EXPECT_TRUE(
          overlay->Insert(members[rng->NextBelow(members.size())], k).ok());
      keys.push_back(k);
    }
    return keys;
  }
  void RemoveMember(PeerId p) {
    members.erase(std::find(members.begin(), members.end(), p));
  }
  std::vector<PeerId> Alive() const {
    std::vector<PeerId> out;
    for (PeerId m : members) {
      if (net.IsAlive(m)) out.push_back(m);
    }
    return out;
  }
};

BatonConfig WithReplication(int r) {
  BatonConfig cfg;
  cfg.replication.factor = r;
  return cfg;
}

uint64_t ReplicaMessages(const net::Network& net) {
  // Derived from the category mapping so new replica message types are
  // counted automatically.
  uint64_t sum = 0;
  for (int i = 0; i < net::kNumMsgTypes; ++i) {
    auto t = static_cast<net::MsgType>(i);
    if (net::CategoryOf(t) == net::MsgCategory::kReplication) {
      sum += net.MessagesOfType(t);
    }
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Placement and incremental push.
// ---------------------------------------------------------------------------

TEST(Replication, EveryNodeGetsRHolders) {
  Overlay o(1, WithReplication(2));
  Rng rng(1);
  o.Grow(64, &rng);
  // A node that joined a sparse neighbourhood may start under-replicated;
  // one anti-entropy pass recruits the missing holders.
  o.overlay->RepairReplicas();
  for (PeerId m : o.members) {
    EXPECT_EQ(o.overlay->replication_manager().replica_count(m), 2u)
        << "node " << m << " under-replicated";
    for (PeerId h : o.overlay->replication_manager().HoldersOf(m)) {
      EXPECT_NE(h, m) << "a node must not hold its own replica";
      EXPECT_TRUE(o.net.IsAlive(h));
    }
  }
}

TEST(Replication, EagerPushKeepsReplicasExact) {
  Overlay o(2, WithReplication(2));
  Rng rng(2);
  o.Grow(32, &rng);
  o.InsertUniform(640, &rng);
  // CheckInvariants includes the replica-consistency check.
  o.overlay->CheckInvariants();
  const auto& mgr = o.overlay->replication_manager();
  for (PeerId m : o.members) {
    const KeyBag& primary = o.overlay->node(m).data;
    for (PeerId h : mgr.HoldersOf(m)) {
      const KeyBag* copy = mgr.ReplicaAt(m, h);
      ASSERT_NE(copy, nullptr);
      EXPECT_EQ(copy->SortedKeys(), primary.SortedKeys());
    }
  }
  EXPECT_EQ(mgr.total_replica_keys(), 2 * o.overlay->total_keys());
}

TEST(Replication, DeletesPropagateToReplicas) {
  Overlay o(3, WithReplication(1));
  Rng rng(3);
  o.Grow(16, &rng);
  std::vector<Key> keys = o.InsertUniform(200, &rng);
  for (size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(
        o.overlay->Delete(o.members[rng.NextBelow(o.members.size())], keys[i])
            .ok());
  }
  o.overlay->CheckInvariants();
  EXPECT_EQ(o.overlay->replication_manager().total_replica_keys(),
            o.overlay->total_keys());
}

TEST(Replication, HoldersRehomedAfterGracefulDeparture) {
  Overlay o(4, WithReplication(2));
  Rng rng(4);
  o.Grow(48, &rng);
  o.InsertUniform(480, &rng);
  for (int i = 0; i < 12; ++i) {
    PeerId leaver = o.members[rng.NextBelow(o.members.size())];
    if (!o.overlay->Leave(leaver).ok()) continue;
    o.RemoveMember(leaver);
  }
  o.overlay->CheckInvariants();
  for (PeerId m : o.members) {
    EXPECT_EQ(o.overlay->replication_manager().replica_count(m), 2u);
    for (PeerId h : o.overlay->replication_manager().HoldersOf(m)) {
      EXPECT_TRUE(o.net.IsAlive(h)) << "stale dead holder survived departure";
    }
  }
}

// ---------------------------------------------------------------------------
// Durability: failures restore keys from replicas.
// ---------------------------------------------------------------------------

TEST(Replication, SingleFailureLosesNothing) {
  Overlay o(5, WithReplication(1));
  Rng rng(5);
  o.Grow(80, &rng);
  o.InsertUniform(800, &rng);
  uint64_t before = o.overlay->total_keys();

  PeerId victim = o.members[17];
  size_t victim_keys = o.overlay->node(victim).data.size();
  ASSERT_GT(victim_keys, 0u);
  o.overlay->Fail(victim);
  ASSERT_TRUE(o.overlay->RecoverFailure(victim).ok());
  o.RemoveMember(victim);

  EXPECT_EQ(o.overlay->total_keys(), before);
  EXPECT_EQ(o.overlay->lost_keys(), 0u);
  EXPECT_EQ(o.overlay->recovered_keys(), victim_keys);
  EXPECT_GE(o.net.MessagesOfType(net::MsgType::kReplicaRestore), 1u);
  EXPECT_GE(o.net.MessagesOfType(net::MsgType::kReplicaRestoreReply), 1u);
  o.overlay->CheckInvariants();
}

// Property: after k random failures with r > k, no key is lost and every key
// remains findable. k failures can kill at most k of a victim's r holders,
// so a live replica always survives.
class ZeroLossProperty : public ::testing::TestWithParam<int> {};

TEST_P(ZeroLossProperty, KRandomFailuresWithRGreaterThanK) {
  int k = GetParam();
  int r = k + 1;
  Overlay o(100 + static_cast<uint64_t>(k), WithReplication(r));
  Rng rng(200 + static_cast<uint64_t>(k));
  o.Grow(150, &rng);
  std::vector<Key> inserted = o.InsertUniform(1500, &rng);
  uint64_t before = o.overlay->total_keys();

  // k simultaneous abrupt failures.
  std::vector<PeerId> pool = o.members;
  rng.Shuffle(&pool);
  std::vector<PeerId> victims(pool.begin(), pool.begin() + k);
  for (PeerId v : victims) o.overlay->Fail(v);
  ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
  for (PeerId v : victims) o.RemoveMember(v);

  EXPECT_EQ(o.overlay->lost_keys(), 0u) << "r > k must guarantee zero loss";
  EXPECT_EQ(o.overlay->total_keys(), before);
  o.overlay->CheckInvariants();

  // Every key inserted before the failures is still findable.
  std::set<Key> unique(inserted.begin(), inserted.end());
  for (Key key : unique) {
    auto res = o.overlay->ExactSearch(o.members[0], key);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.value().found) << "key " << key << " vanished";
  }
}

INSTANTIATE_TEST_SUITE_P(FailureCounts, ZeroLossProperty,
                         ::testing::Values(1, 2, 3));

TEST(Replication, ChildRecoveredWhileParentStillDeadLosesNothing) {
  // Regression: the child's recovery hands its restored keys to its (dead)
  // parent; the parent's replicas must be synced on its behalf, or the
  // parent's own later recovery would restore a stale copy and re-lose them.
  Overlay o(1, WithReplication(2));
  Rng rng(1);
  o.Grow(48, &rng);
  o.InsertUniform(480, &rng);
  uint64_t before = o.overlay->total_keys();

  // Pick a leaf that (a) is safely removable, so its recovery takes the
  // direct handover-to-parent path, and (b) has an adjacent other than its
  // parent, so a live initiator exists while the parent is down.
  PeerId leaf = kNullPeer, parent = kNullPeer;
  for (PeerId m : o.members) {
    const BatonNode& n = o.overlay->node(m);
    if (!n.IsLeaf() || !n.parent.valid()) continue;
    bool removable = true;
    for (const RoutingTable* rt : {&n.left_rt, &n.right_rt}) {
      for (int i = 0; i < rt->size(); ++i) {
        if (rt->entry(i).valid() && rt->entry(i).HasChild()) removable = false;
      }
    }
    if (!removable) continue;
    bool live_initiator =
        (n.left_adj.valid() && n.left_adj.peer != n.parent.peer) ||
        (n.right_adj.valid() && n.right_adj.peer != n.parent.peer);
    if (!live_initiator) continue;
    leaf = m;
    parent = n.parent.peer;
    break;
  }
  ASSERT_NE(leaf, kNullPeer);
  o.overlay->Fail(parent);
  o.overlay->Fail(leaf);
  // Recover the child first: an adjacent initiates, the restored keys are
  // absorbed into the still-dead parent's range.
  ASSERT_TRUE(o.overlay->RecoverFailure(leaf).ok());
  o.RemoveMember(leaf);
  o.overlay->CheckInvariants();  // the dead parent's replicas must match

  ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
  o.RemoveMember(parent);
  EXPECT_EQ(o.overlay->lost_keys(), 0u)
      << "keys recovered into a dead parent were re-lost";
  EXPECT_EQ(o.overlay->total_keys(), before);
  o.overlay->CheckInvariants();
}

TEST(Replication, ChurnWithInterleavedFailuresLosesNothing) {
  Overlay o(6, WithReplication(2));
  Rng rng(6);
  o.Grow(120, &rng);
  o.InsertUniform(1200, &rng);
  uint64_t inserted = o.overlay->total_keys();
  uint64_t added = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 4; ++i) {
      auto joined = o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
      ASSERT_TRUE(joined.ok());
      o.members.push_back(joined.value());
    }
    for (int i = 0; i < 4; ++i) {
      PeerId leaver = o.members[rng.NextBelow(o.members.size())];
      if (o.overlay->Leave(leaver).ok()) o.RemoveMember(leaver);
    }
    PeerId victim = o.members[rng.NextBelow(o.members.size())];
    o.overlay->Fail(victim);
    ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
    o.RemoveMember(victim);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(o.overlay
                      ->Insert(o.members[rng.NextBelow(o.members.size())],
                               rng.UniformInt(1, 999999999))
                      .ok());
      ++added;
    }
    o.overlay->RepairReplicas();
  }
  EXPECT_EQ(o.overlay->lost_keys(), 0u);
  EXPECT_EQ(o.overlay->total_keys(), inserted + added);
  o.overlay->CheckInvariants();
}

TEST(Replication, InsertsDuringHolderOutageRecruitNewHolder) {
  // Regression: with r=1, a primary whose sole holder is down must recruit a
  // live replacement on its next insert -- otherwise every key inserted in
  // the outage window (and the whole bag, if the primary fails before the
  // holder recovers) is unprotected.
  Overlay o(12, WithReplication(1));
  Rng rng(12);
  o.Grow(60, &rng);
  o.InsertUniform(600, &rng);
  const auto& mgr = o.overlay->replication_manager();
  // Pick a pair whose failures are independent: the holder's own replica
  // must not sit on the primary, or failing both is a k=2 > r=1 scenario
  // where loss is legitimate.
  PeerId primary = kNullPeer, holder = kNullPeer;
  for (PeerId m : o.members) {
    auto hs = mgr.HoldersOf(m);
    if (hs.size() != 1) continue;
    auto holder_hs = mgr.HoldersOf(hs[0]);
    if (holder_hs.size() == 1 && holder_hs[0] == m) continue;
    primary = m;
    holder = hs[0];
    break;
  }
  ASSERT_NE(primary, kNullPeer);
  uint64_t before = o.overlay->total_keys();

  o.overlay->Fail(holder);
  ASSERT_EQ(mgr.live_replica_count(primary), 0u);
  // Inserts into the primary's range while its holder is down.
  Range range = o.overlay->node(primary).range;
  auto origin = [&]() {
    PeerId p;
    do {
      p = o.members[rng.NextBelow(o.members.size())];
    } while (!o.net.IsAlive(p));
    return p;
  };
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        o.overlay->Insert(origin(), rng.UniformInt(range.lo, range.hi - 1))
            .ok());
  }
  EXPECT_GE(mgr.live_replica_count(primary), 1u)
      << "insert must have recruited a live replacement holder";

  // The primary fails while its original holder is still down: the
  // replacement holder must cover the full bag, outage-window keys included.
  o.overlay->Fail(primary);
  ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
  o.RemoveMember(primary);
  o.RemoveMember(holder);
  EXPECT_EQ(o.overlay->lost_keys(), 0u);
  EXPECT_EQ(o.overlay->total_keys(), before + 10);
  o.overlay->CheckInvariants();
}

TEST(Replication, HolderLeavingWhilePrimaryDeadHandsOffReplica) {
  // Regression: with r=1, the sole holder of a dead (unrecovered) primary
  // departs gracefully before recovery runs. The departing holder must hand
  // its copy -- the only surviving one -- to a fresh holder, or the
  // primary's later recovery has nothing to restore from.
  Overlay o(14, WithReplication(1));
  Rng rng(14);
  o.Grow(60, &rng);
  o.InsertUniform(600, &rng);
  uint64_t before = o.overlay->total_keys();
  const auto& mgr = o.overlay->replication_manager();

  // Try (primary, holder) pairs until the holder's graceful Leave succeeds
  // while the primary is down (a Leave near the failure can legitimately be
  // refused and retried; the test needs one that goes through).
  bool exercised = false;
  for (PeerId primary : std::vector<PeerId>(o.members)) {
    auto hs = mgr.HoldersOf(primary);
    if (hs.size() != 1) continue;
    PeerId holder = hs[0];
    size_t primary_keys = o.overlay->node(primary).data.size();
    if (primary_keys == 0) continue;
    o.overlay->Fail(primary);
    if (!o.overlay->Leave(holder).ok()) {
      // Undo and try another pair: recover the primary before moving on.
      EXPECT_TRUE(o.overlay->RecoverAllFailures().ok());
      o.RemoveMember(primary);
      continue;
    }
    o.RemoveMember(holder);
    ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
    o.RemoveMember(primary);
    exercised = true;
    break;
  }
  ASSERT_TRUE(exercised) << "no pair exercised the hand-off path";
  EXPECT_EQ(o.overlay->lost_keys(), 0u)
      << "the departing holder must hand off the only surviving copy";
  EXPECT_EQ(o.overlay->total_keys(), before);
  o.overlay->CheckInvariants();
}

// ---------------------------------------------------------------------------
// Anti-entropy.
// ---------------------------------------------------------------------------

TEST(Replication, LazyModeGoesStaleAndAntiEntropyHeals) {
  BatonConfig cfg = WithReplication(2);
  cfg.replication.eager_push = false;  // mutations leave replicas stale
  Overlay o(7, cfg);
  Rng rng(7);
  o.Grow(40, &rng);
  o.InsertUniform(400, &rng);  // replicas now lag their primaries

  auto stats = o.overlay->RepairReplicas();
  EXPECT_GT(stats.probed, 0u);
  EXPECT_GT(stats.healed, 0u) << "stale replicas must be detected";
  // After healing, every replica is exact again.
  o.overlay->CheckInvariants();
  const auto& mgr = o.overlay->replication_manager();
  for (PeerId m : o.members) {
    for (PeerId h : mgr.HoldersOf(m)) {
      EXPECT_EQ(mgr.ReplicaAt(m, h)->SortedKeys(),
                o.overlay->node(m).data.SortedKeys());
    }
  }
  // A second pass finds nothing to heal.
  EXPECT_EQ(o.overlay->RepairReplicas().healed, 0u);
}

TEST(Replication, LazyModeLosesUnsyncedKeysOnFailure) {
  BatonConfig cfg = WithReplication(1);
  cfg.replication.eager_push = false;
  Overlay o(8, cfg);
  Rng rng(8);
  o.Grow(30, &rng);
  o.InsertUniform(300, &rng);
  o.overlay->RepairReplicas();  // checkpoint: replicas now exact

  // New inserts after the checkpoint are not replicated in lazy mode.
  PeerId victim = o.members[11];
  size_t synced = o.overlay->node(victim).data.size();
  Range range = o.overlay->node(victim).range;
  size_t fresh = 0;
  for (int i = 0; i < 2000 && fresh < 5; ++i) {
    Key k = rng.UniformInt(range.lo, range.hi - 1);
    if (!range.Contains(k)) continue;
    ASSERT_TRUE(o.overlay->Insert(o.members[0], k).ok());
    ++fresh;
  }
  ASSERT_EQ(o.overlay->node(victim).data.size(), synced + fresh);

  o.overlay->Fail(victim);
  ASSERT_TRUE(o.overlay->RecoverFailure(victim).ok());
  o.RemoveMember(victim);
  EXPECT_EQ(o.overlay->lost_keys(), fresh)
      << "exactly the unsynced keys are lost";
  EXPECT_EQ(o.overlay->recovered_keys(), synced);
  o.overlay->CheckInvariants();
}

// ---------------------------------------------------------------------------
// Satellite: lost-key accounting with replication disabled.
// ---------------------------------------------------------------------------

TEST(Replication, LostKeysTrackedWithoutReplication) {
  Overlay o(9);  // default config: r = 0
  Rng rng(9);
  o.Grow(60, &rng);
  o.InsertUniform(600, &rng);
  uint64_t before = o.overlay->total_keys();

  PeerId victim = o.members[23];
  size_t victim_keys = o.overlay->node(victim).data.size();
  o.overlay->Fail(victim);
  ASSERT_TRUE(o.overlay->RecoverFailure(victim).ok());
  o.RemoveMember(victim);

  EXPECT_EQ(o.overlay->lost_keys(), victim_keys)
      << "silent key loss must be accounted";
  EXPECT_EQ(o.overlay->recovered_keys(), 0u);
  EXPECT_EQ(o.overlay->total_keys(), before - victim_keys);
}

// ---------------------------------------------------------------------------
// Regression: r = 0 must reproduce the pre-replication message accounting.
// ---------------------------------------------------------------------------

// Runs one deterministic churn-and-recovery scenario and returns the final
// counter snapshot.
net::CounterSnapshot RunRecoveryScenario(const BatonConfig& cfg,
                                         uint64_t* lost_out = nullptr) {
  Overlay o(77, cfg);
  Rng rng(77);
  // Deterministic, identical op sequence regardless of cfg: the inputs below
  // consume the same rng draws in the same order.
  while (o.members.size() < 90) {
    auto joined = o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
    EXPECT_TRUE(joined.ok());
    o.members.push_back(joined.value());
  }
  for (int i = 0; i < 900; ++i) {
    EXPECT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1, 999999999))
                    .ok());
  }
  for (int round = 0; round < 5; ++round) {
    PeerId victim = o.members[rng.NextBelow(o.members.size())];
    o.overlay->Fail(victim);
    EXPECT_TRUE(o.overlay->RecoverAllFailures().ok());
    o.RemoveMember(victim);
    for (int q = 0; q < 50; ++q) {
      o.overlay->ExactSearch(o.Alive()[rng.NextBelow(o.Alive().size())],
                             rng.UniformInt(1, 999999999))
          .ok();
    }
  }
  o.overlay->CheckInvariants();
  if (lost_out != nullptr) *lost_out = o.overlay->lost_keys();
  return o.net.Snapshot();
}

TEST(Replication, RecoveryChargingUnchangedByReplication) {
  // The recovery protocol's own message types must be charged identically
  // whether replication is off (r = 0, the paper's behaviour) or on (r = 2):
  // replication only ever *adds* kReplica* traffic.
  auto base = RunRecoveryScenario(BatonConfig{});
  auto with_repl = RunRecoveryScenario(WithReplication(2));
  for (net::MsgType t :
       {net::MsgType::kDeadProbe, net::MsgType::kRecoveryProbe,
        net::MsgType::kRecoveryReply, net::MsgType::kFailureReport,
        net::MsgType::kJoinForward, net::MsgType::kReplacementForward,
        net::MsgType::kExactQuery}) {
    EXPECT_EQ(base.by_type[static_cast<size_t>(t)],
              with_repl.by_type[static_cast<size_t>(t)])
        << "replication perturbed " << net::MsgTypeName(t) << " charging";
  }
}

TEST(Replication, FactorZeroIsExactNoOp) {
  // An explicit r = 0 config must be bit-identical in accounting to the
  // default config: same totals, every counter equal, zero replica traffic.
  uint64_t lost_default = 0, lost_r0 = 0;
  auto base = RunRecoveryScenario(BatonConfig{}, &lost_default);
  BatonConfig r0;
  r0.replication.factor = 0;
  r0.replication.eager_push = false;  // must not matter at r = 0
  auto explicit_r0 = RunRecoveryScenario(r0, &lost_r0);
  EXPECT_EQ(base.total, explicit_r0.total);
  for (int i = 0; i < net::kNumMsgTypes; ++i) {
    EXPECT_EQ(base.by_type[static_cast<size_t>(i)],
              explicit_r0.by_type[static_cast<size_t>(i)])
        << net::MsgTypeName(static_cast<net::MsgType>(i));
  }
  EXPECT_GT(lost_default, 0u) << "the scenario must actually lose keys";
  EXPECT_EQ(lost_default, lost_r0);
}

TEST(Replication, NoReplicaTrafficWhenDisabled) {
  Overlay o(10);
  Rng rng(10);
  o.Grow(50, &rng);
  o.InsertUniform(500, &rng);
  PeerId victim = o.members[7];
  o.overlay->Fail(victim);
  ASSERT_TRUE(o.overlay->RecoverFailure(victim).ok());
  o.RemoveMember(victim);
  o.overlay->RepairReplicas();  // no-op when disabled
  EXPECT_EQ(ReplicaMessages(o.net), 0u);
  EXPECT_EQ(o.overlay->replication_manager().total_replica_keys(), 0u);
}

}  // namespace
}  // namespace baton
