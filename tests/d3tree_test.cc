// D3-Tree backend tests: protocol-level invariants (cluster size bounds,
// backbone weight balance, deterministic rebuilds), failure recovery, full
// determinism, and the cross-backend differential property against BATON
// (identical exact/range answer sets over the same replayed trace -- the
// contract the unified overlay API exists for).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "d3tree/d3tree_network.h"
#include "net/network.h"
#include "overlay/d3tree_overlay.h"
#include "overlay/registry.h"
#include "util/rng.h"
#include "workload/replay.h"
#include "workload/workload.h"

namespace baton {
namespace {

using d3tree::BucketId;
using d3tree::D3Config;
using d3tree::D3TreeNetwork;
using d3tree::kNullBucket;

struct Sim {
  net::Network net;
  D3TreeNetwork tree;
  std::vector<net::PeerId> members;

  explicit Sim(const D3Config& cfg = {}) : tree(cfg, &net) {}

  void Grow(size_t n, Rng* rng) {
    if (members.empty()) members.push_back(tree.Bootstrap());
    while (members.size() < n) {
      auto r = tree.Join(members[rng->NextBelow(members.size())]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      members.push_back(r.value());
    }
  }

  void LeaveRandom(Rng* rng) {
    size_t idx = rng->NextBelow(members.size());
    ASSERT_TRUE(tree.Leave(members[idx]).ok());
    members.erase(members.begin() + static_cast<long>(idx));
  }
};

/// Asserts the protocol's *tight* balance bounds -- valid whenever the
/// bucket target is pinned by config (the adaptive target can drift between
/// rebuilds, which is why CheckInvariants itself uses slack).
void ExpectTightBalance(const D3TreeNetwork& tree) {
  size_t target = tree.EffectiveTarget();
  auto order = tree.BucketsInOrder();
  for (BucketId bid : order) {
    const d3tree::D3Bucket& b = tree.bucket(bid);
    EXPECT_LE(b.members.size(), 2 * target) << "bucket " << bid;
    if (order.size() > 1) {
      EXPECT_GE(b.members.size(), std::max<size_t>(1, target / 2))
          << "bucket " << bid;
    }
    uint64_t wl = b.left != kNullBucket ? tree.bucket(b.left).weight : 0;
    uint64_t wr = b.right != kNullBucket ? tree.bucket(b.right).weight : 0;
    if (wl != 0 || wr != 0) {
      EXPECT_LE(std::max(wl, wr), 2 * std::min(wl, wr) + 2 * target)
          << "weight imbalance at bucket " << bid;
    }
  }
}

TEST(D3TreeBasics, BootstrapInsertSearchRange) {
  Sim sim;
  Rng rng(7);
  sim.Grow(40, &rng);
  sim.tree.CheckInvariants();

  std::multiset<Key> reference;
  workload::UniformKeys keys(1, 1000000000);
  for (int i = 0; i < 500; ++i) {
    Key k = keys.Next(&rng);
    reference.insert(k);
    ASSERT_TRUE(
        sim.tree.Insert(sim.members[rng.NextBelow(sim.members.size())], k)
            .ok());
  }
  sim.tree.CheckInvariants();
  EXPECT_EQ(sim.tree.total_keys(), 500u);

  // Exact queries agree with the reference set, from any origin.
  for (Key k : {*reference.begin(), *reference.rbegin()}) {
    auto r = sim.tree.ExactSearch(sim.members[5], k);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().found);
  }
  auto miss = sim.tree.ExactSearch(sim.members[0], 999999999);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss.value().found, reference.count(999999999) > 0);

  // Range queries count exactly the reference keys in [lo, hi).
  for (int i = 0; i < 50; ++i) {
    Key lo = keys.Next(&rng);
    Key hi = lo + 40000000;
    auto r = sim.tree.RangeSearch(
        sim.members[rng.NextBelow(sim.members.size())], lo, hi);
    ASSERT_TRUE(r.ok());
    size_t expect = std::distance(reference.lower_bound(lo),
                                  reference.lower_bound(hi));
    EXPECT_EQ(r.value().matches, expect);
  }

  // Deletes drain the index.
  for (Key k : reference) {
    ASSERT_TRUE(
        sim.tree.Delete(sim.members[rng.NextBelow(sim.members.size())], k)
            .ok());
  }
  EXPECT_EQ(sim.tree.total_keys(), 0u);
  EXPECT_FALSE(sim.tree.Delete(sim.members[0], 123).ok());
  sim.tree.CheckInvariants();
}

TEST(D3TreeBasics, MembersMatchesAdjacencyAndBucketOrder) {
  Sim sim;
  Rng rng(11);
  sim.Grow(200, &rng);
  std::vector<net::PeerId> members = sim.tree.Members();
  ASSERT_EQ(members.size(), 200u);
  // In-order members have strictly increasing, contiguous ranges.
  for (size_t i = 0; i + 1 < members.size(); ++i) {
    EXPECT_EQ(sim.tree.node(members[i]).range.hi,
              sim.tree.node(members[i + 1]).range.lo);
  }
  // Every member is reachable through BucketsInOrder exactly once.
  size_t count = 0;
  for (BucketId bid : sim.tree.BucketsInOrder()) {
    count += sim.tree.bucket(bid).members.size();
  }
  EXPECT_EQ(count, 200u);
}

TEST(D3TreeBasics, DrainToEmptyAndRebootstrap) {
  Sim sim;
  Rng rng(3);
  sim.Grow(25, &rng);
  while (sim.members.size() > 1) {
    sim.LeaveRandom(&rng);
    sim.tree.CheckInvariants();
  }
  ASSERT_TRUE(sim.tree.Leave(sim.members[0]).ok());
  sim.members.clear();
  EXPECT_EQ(sim.tree.size(), 0u);
  EXPECT_EQ(sim.tree.bucket_count(), 0u);
  sim.tree.CheckInvariants();

  // A drained overlay can bootstrap again.
  sim.Grow(10, &rng);
  EXPECT_EQ(sim.tree.size(), 10u);
  sim.tree.CheckInvariants();
}

TEST(D3TreeInvariants, TightBoundsUnderChurnWithPinnedTarget) {
  D3Config cfg;
  cfg.bucket_target = 8;  // pinned: the tight window must hold throughout
  Sim sim(cfg);
  Rng rng(42);
  sim.Grow(400, &rng);
  sim.tree.CheckInvariants();
  ExpectTightBalance(sim.tree);

  workload::UniformKeys keys(1, 1000000000);
  for (int round = 0; round < 400; ++round) {
    if (rng.NextBool(0.5)) {
      auto r = sim.tree.Join(
          sim.members[rng.NextBelow(sim.members.size())]);
      ASSERT_TRUE(r.ok());
      sim.members.push_back(r.value());
    } else if (sim.members.size() > 4) {
      sim.LeaveRandom(&rng);
    }
    ASSERT_TRUE(sim.tree
                    .Insert(sim.members[rng.NextBelow(sim.members.size())],
                            keys.Next(&rng))
                    .ok());
    if (round % 25 == 0) {
      sim.tree.CheckInvariants();
      ExpectTightBalance(sim.tree);
    }
  }
  sim.tree.CheckInvariants();
  ExpectTightBalance(sim.tree);
  // Churn at this scale must have exercised the deterministic balancer.
  EXPECT_GT(sim.tree.rebuild_ops(), 0u);
  EXPECT_GT(sim.tree.rebuild_moves(), 0u);
}

TEST(D3TreeInvariants, AdaptiveTargetKeepsBackboneLogarithmic) {
  Sim sim;
  Rng rng(5);
  sim.Grow(1000, &rng);
  sim.tree.CheckInvariants();
  // target ~ log2(N), so the backbone has ~N/log N buckets and the
  // weight-balance trigger keeps its height within a small multiple of
  // log2(#buckets).
  size_t buckets = sim.tree.bucket_count();
  EXPECT_GT(buckets, 1u);
  int log2b = 0;
  while ((1u << log2b) < buckets) ++log2b;
  EXPECT_LE(sim.tree.BackboneHeight(), 3 * log2b + 4);

  // Exact-search hop counts stay logarithmic-ish end to end.
  workload::UniformKeys keys(1, 1000000000);
  int worst = 0;
  for (int q = 0; q < 200; ++q) {
    auto r = sim.tree.ExactSearch(
        sim.members[rng.NextBelow(sim.members.size())], keys.Next(&rng));
    ASSERT_TRUE(r.ok());
    worst = std::max(worst, r.value().hops);
  }
  EXPECT_LE(worst, 6 * log2b + 8);
}

TEST(D3TreeInvariants, AdaptiveTargetSurvivesMassShrink) {
  // The adaptive target falls as N falls; buckets sized for the old target
  // must be reabsorbed by underflow rebuilds without tripping any
  // invariant. Shrink 2000 -> 40 with continuous validation.
  Sim sim;
  Rng rng(31);
  sim.Grow(2000, &rng);
  sim.tree.CheckInvariants();
  int ops = 0;
  while (sim.members.size() > 40) {
    sim.LeaveRandom(&rng);
    if (++ops % 100 == 0) sim.tree.CheckInvariants();
  }
  sim.tree.CheckInvariants();
  EXPECT_EQ(sim.tree.size(), 40u);
}

TEST(D3TreeFailure, RecoveryReclaimsRangeAndCountsLostKeys) {
  Sim sim;
  Rng rng(19);
  sim.Grow(60, &rng);
  workload::UniformKeys keys(1, 1000000000);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(sim.tree
                    .Insert(sim.members[rng.NextBelow(sim.members.size())],
                            keys.Next(&rng))
                    .ok());
  }
  net::PeerId victim = sim.members[17];
  uint64_t victim_keys = sim.tree.node(victim).data.size();
  uint64_t before_total = sim.tree.total_keys();

  sim.tree.Fail(victim);
  EXPECT_FALSE(sim.net.IsAlive(victim));
  EXPECT_EQ(sim.tree.pending_failures().size(), 1u);

  ASSERT_TRUE(sim.tree.RecoverAllFailures().ok());
  sim.members.erase(sim.members.begin() + 17);
  EXPECT_EQ(sim.tree.size(), 59u);
  EXPECT_EQ(sim.tree.lost_keys(), victim_keys);
  EXPECT_EQ(sim.tree.total_keys(), before_total - victim_keys);
  sim.tree.CheckInvariants();

  // The reclaimed range answers queries again.
  for (int q = 0; q < 100; ++q) {
    ASSERT_TRUE(sim.tree
                    .ExactSearch(sim.members[rng.NextBelow(sim.members.size())],
                                 keys.Next(&rng))
                    .ok());
  }
}

TEST(D3TreeFailure, MultipleFailuresBeforeOneRecovery) {
  Sim sim;
  Rng rng(23);
  sim.Grow(80, &rng);
  // Fail three peers -- including two in-order neighbours if possible --
  // before any recovery runs, then repair everything in one pass.
  std::vector<net::PeerId> order = sim.tree.Members();
  sim.tree.Fail(order[10]);
  sim.tree.Fail(order[11]);
  sim.tree.Fail(order[40]);
  ASSERT_TRUE(sim.tree.RecoverAllFailures().ok());
  EXPECT_EQ(sim.tree.size(), 77u);
  EXPECT_TRUE(sim.tree.pending_failures().empty());
  sim.tree.CheckInvariants();
}

TEST(D3TreeFailure, GracefulLeaveBesideDeadPeerKeepsLeaverKeys) {
  // Regression: the leaver's receiver preference must skip a pending
  // (unrecovered) failed neighbour, or the gracefully departing keys get
  // absorbed into the dead peer's bag and counted lost at recovery.
  Sim sim;
  Rng rng(29);
  sim.Grow(50, &rng);
  workload::UniformKeys keys(1, 1000000000);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(sim.tree
                    .Insert(sim.members[rng.NextBelow(sim.members.size())],
                            keys.Next(&rng))
                    .ok());
  }
  // A mid-chain in-order pair (leaver, right neighbour) in the same bucket:
  // the old preference order handed the leaver's content to the right
  // neighbour unconditionally.
  std::vector<net::PeerId> order = sim.tree.Members();
  net::PeerId leaver = net::kNullPeer, victim = net::kNullPeer;
  for (size_t i = 1; i + 1 < order.size(); ++i) {
    if (sim.tree.node(order[i]).bucket == sim.tree.node(order[i + 1]).bucket) {
      leaver = order[i];
      victim = order[i + 1];
      break;
    }
  }
  ASSERT_NE(leaver, net::kNullPeer);
  uint64_t victim_keys = sim.tree.node(victim).data.size();
  uint64_t total_before = sim.tree.total_keys();

  sim.tree.Fail(victim);
  ASSERT_TRUE(sim.tree.Leave(leaver).ok());
  ASSERT_TRUE(sim.tree.RecoverAllFailures().ok());
  sim.tree.CheckInvariants();
  // Only the victim's own keys are lost; the leaver's survived the detour.
  EXPECT_EQ(sim.tree.lost_keys(), victim_keys);
  EXPECT_EQ(sim.tree.total_keys(), total_before - victim_keys);
}

TEST(D3TreeBasics, SaturatedDomainRefusesJoinCleanly) {
  // Regression: with every peer managing a single value the donor walk must
  // scan both directions and the join must fail with Exhausted, not crash.
  d3tree::D3Config cfg;
  cfg.domain_lo = 1;
  cfg.domain_hi = 10;  // at most 9 width-1 peers
  Sim sim(cfg);
  Rng rng(13);
  sim.members.push_back(sim.tree.Bootstrap());
  int joined = 1;
  for (int i = 0; i < 20; ++i) {
    auto r = sim.tree.Join(sim.members[rng.NextBelow(sim.members.size())]);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kExhausted);
      break;
    }
    sim.members.push_back(r.value());
    ++joined;
  }
  EXPECT_EQ(joined, 9);
  sim.tree.CheckInvariants();
  // A saturated overlay still serves queries.
  auto q = sim.tree.ExactSearch(sim.members[0], 5);
  ASSERT_TRUE(q.ok());
}

TEST(D3TreeDeterminism, IdenticalRunsProduceIdenticalTreesAndCounters) {
  auto run = [](uint64_t seed) {
    auto sim = std::make_unique<Sim>();
    Rng rng(seed);
    sim->Grow(300, &rng);
    workload::UniformKeys keys(1, 1000000000);
    for (int i = 0; i < 300; ++i) {
      EXPECT_TRUE(
          sim->tree
              .Insert(sim->members[rng.NextBelow(sim->members.size())],
                      keys.Next(&rng))
              .ok());
    }
    for (int i = 0; i < 50; ++i) sim->LeaveRandom(&rng);
    return std::make_pair(sim->net.total_messages(), sim->tree.Members());
  };
  auto a = run(9001);
  auto b = run(9001);
  // The protocol itself draws no randomness: same driver stream, same
  // tree, same message bill.
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// The differential property against the reference backend: BATON and
// D3-Tree driven through the same trace (same seed, same rng stream) must
// agree on every query answer -- found/not-found per exact query and match
// count per range query -- and end with identical key totals.
TEST(D3TreeDifferential, BatonAndD3TreeAgreeOnAllAnswers) {
  constexpr size_t kN = 48;
  constexpr uint64_t kSeed = 77;

  auto make_trace = [&](Rng* rng, workload::KeyGenerator* gen) {
    workload::ChurnMix mix;
    mix.joins = 10;
    mix.leaves = 10;
    mix.inserts = 300;
    mix.exacts = 200;
    mix.ranges = 40;
    mix.range_width = 50000000;
    return workload::MakeChurnTrace(rng, gen, mix);
  };

  workload::ReplayOptions opts;
  opts.record_answers = true;

  std::vector<workload::ReplayResult> results;
  std::vector<uint64_t> key_totals;
  for (const std::string name : {"baton", "d3tree"}) {
    SCOPED_TRACE(name);
    overlay::Config cfg;
    cfg.seed = kSeed;
    auto ov = overlay::Make(name, cfg);
    ASSERT_NE(ov, nullptr);
    Rng grow_rng(Mix64(kSeed));
    std::vector<net::PeerId> members{ov->Bootstrap()};
    while (members.size() < kN) {
      auto st = ov->Join(members[grow_rng.NextBelow(members.size())]);
      ASSERT_TRUE(st.ok()) << st.status.ToString();
      members.push_back(st.peer);
    }
    Rng load_rng(123);
    workload::UniformKeys load_keys(1, 1000000000);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(ov->Insert(members[load_rng.NextBelow(members.size())],
                             load_keys.Next(&load_rng))
                      .ok());
    }
    Rng trace_rng(999);
    workload::UniformKeys gen(1, 1000000000);
    auto trace = make_trace(&trace_rng, &gen);
    Rng replay_rng(31337);
    results.push_back(
        workload::Replay(*ov, trace, &replay_rng, &members, opts));
    ov->CheckInvariants();
    key_totals.push_back(ov->total_keys());
  }

  const auto& baton_res = results[0];
  const auto& d3_res = results[1];
  ASSERT_EQ(baton_res.exact_found.size(), 200u);
  ASSERT_EQ(d3_res.exact_found.size(), 200u);
  EXPECT_EQ(baton_res.exact_found, d3_res.exact_found);
  ASSERT_EQ(baton_res.range_matches.size(), 40u);
  EXPECT_EQ(baton_res.range_matches, d3_res.range_matches);
  EXPECT_EQ(key_totals[0], key_totals[1]);
  // Sanity: the trace exercised both hit and miss paths.
  EXPECT_GT(std::count(baton_res.exact_found.begin(),
                       baton_res.exact_found.end(), false),
            0);
}

TEST(D3TreeOverlayAdapter, RegisteredWithExpectedCapabilities) {
  auto ov = overlay::Make("d3tree");
  ASSERT_NE(ov, nullptr);
  EXPECT_TRUE(ov->Supports(overlay::kRangeSearch));
  EXPECT_TRUE(ov->Supports(overlay::kOrderedGrowth));
  EXPECT_TRUE(ov->Supports(overlay::kLoadBalance));
  EXPECT_TRUE(ov->Supports(overlay::kFailRecovery));
  EXPECT_FALSE(ov->Supports(overlay::kReplication));
  ov->Bootstrap();
  EXPECT_EQ(ov->size(), 1u);
  // The checked downcast reaches backend-specific introspection.
  EXPECT_EQ(overlay::D3TreeBackend(*ov).bucket_count(), 1u);

  // Config plumbing: d3tree section reaches the backend.
  overlay::Config cfg;
  cfg.d3tree.domain_lo = 100;
  cfg.d3tree.domain_hi = 200;
  cfg.d3tree.bucket_target = 5;
  auto custom = overlay::Make("d3tree", cfg);
  EXPECT_EQ(overlay::D3TreeBackend(*custom).config().domain_lo, 100);
  EXPECT_EQ(overlay::D3TreeBackend(*custom).EffectiveTarget(), 5u);
}

}  // namespace
}  // namespace baton
