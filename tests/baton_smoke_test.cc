// End-to-end smoke tests: grow an overlay, insert keys, query, shrink.
#include <gtest/gtest.h>

#include "baton/baton.h"

namespace baton {
namespace {

TEST(BatonSmoke, BootstrapSingleNode) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 1);
  PeerId root = overlay.Bootstrap();
  EXPECT_EQ(overlay.size(), 1u);
  EXPECT_EQ(overlay.root(), root);
  overlay.CheckInvariants();
}

TEST(BatonSmoke, GrowTo64AndQuery) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 7);
  PeerId root = overlay.Bootstrap();
  std::vector<PeerId> peers{root};
  for (int i = 1; i < 64; ++i) {
    auto joined = overlay.Join(peers[static_cast<size_t>(i) % peers.size()]);
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    peers.push_back(joined.value());
    overlay.CheckInvariants();
  }
  EXPECT_EQ(overlay.size(), 64u);

  Rng rng(99);
  std::vector<Key> keys;
  for (int i = 0; i < 2000; ++i) {
    Key k = rng.UniformInt(1, 999999999);
    keys.push_back(k);
    ASSERT_TRUE(overlay.Insert(peers[rng.NextBelow(peers.size())], k).ok());
  }
  overlay.CheckInvariants();
  for (int i = 0; i < 200; ++i) {
    Key k = keys[rng.NextBelow(keys.size())];
    auto res = overlay.ExactSearch(peers[rng.NextBelow(peers.size())], k);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.value().found) << "key " << k;
  }
  auto rr = overlay.RangeSearch(root, 100000000, 200000000);
  ASSERT_TRUE(rr.ok());
  uint64_t expect = 0;
  for (Key k : keys) {
    if (k >= 100000000 && k < 200000000) ++expect;
  }
  EXPECT_EQ(rr.value().matches, expect);
}

TEST(BatonSmoke, GrowAndShrink) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 3);
  PeerId root = overlay.Bootstrap();
  std::vector<PeerId> peers{root};
  for (int i = 1; i < 40; ++i) {
    auto joined = overlay.Join(peers.back());
    ASSERT_TRUE(joined.ok());
    peers.push_back(joined.value());
  }
  overlay.CheckInvariants();
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(overlay.Insert(peers[rng.NextBelow(peers.size())],
                               rng.UniformInt(1, 999999999))
                    .ok());
  }
  // Shrink back down to one node, checking invariants along the way.
  while (overlay.size() > 1) {
    std::vector<PeerId> members = overlay.Members();
    PeerId victim = members[rng.NextBelow(members.size())];
    ASSERT_TRUE(overlay.Leave(victim).ok());
    overlay.CheckInvariants();
  }
  EXPECT_EQ(overlay.total_keys(), 1000u);
}

}  // namespace
}  // namespace baton
