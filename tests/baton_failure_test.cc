// Failure handling (sections III-C/III-D): abrupt failures, fault-tolerant
// routing around dead peers, parent-driven recovery, and mass failures.
#include <gtest/gtest.h>

#include <cmath>

#include "baton/baton.h"

namespace baton {
namespace {

struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed, BatonConfig cfg = {}) {
    overlay = std::make_unique<BatonNetwork>(cfg, &net, seed);
    members.push_back(overlay->Bootstrap());
  }
  void Grow(size_t n, Rng* rng) {
    while (members.size() < n) {
      auto joined = overlay->Join(members[rng->NextBelow(members.size())]);
      ASSERT_TRUE(joined.ok());
      members.push_back(joined.value());
    }
  }
  void RemoveMember(PeerId p) {
    members.erase(std::find(members.begin(), members.end(), p));
  }
  std::vector<PeerId> Alive() const {
    std::vector<PeerId> out;
    for (PeerId m : members) {
      if (net.IsAlive(m)) out.push_back(m);
    }
    return out;
  }
};

TEST(Failure, RoutingDetoursAroundDeadPeer) {
  Overlay o(1);
  Rng rng(1);
  o.Grow(64, &rng);
  for (int i = 0; i < 640; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1, 999999999))
                    .ok());
  }
  // Fail a random leaf (its range's keys are lost; others stay reachable).
  PeerId victim = kNullPeer;
  for (PeerId m : o.members) {
    if (o.overlay->node(m).IsLeaf()) {
      victim = m;
      break;
    }
  }
  ASSERT_NE(victim, kNullPeer);
  Range dead_range = o.overlay->node(victim).range;
  o.overlay->Fail(victim);

  int routed = 0, attempted = 0;
  for (PeerId from : o.Alive()) {
    for (int q = 0; q < 5; ++q) {
      Key k = rng.UniformInt(1, 999999999);
      if (dead_range.Contains(k)) continue;  // unowned while unrecovered
      ++attempted;
      auto r = o.overlay->ExactSearch(from, k);
      if (r.ok()) ++routed;
    }
  }
  EXPECT_EQ(routed, attempted)
      << "queries outside the failed range must still route";
}

TEST(Failure, DeadProbesAreCharged) {
  Overlay o(2);
  Rng rng(2);
  o.Grow(64, &rng);
  PeerId victim = o.members[20];
  Range dead_range = o.overlay->node(victim).range;
  o.overlay->Fail(victim);
  auto before = o.net.Snapshot();
  int hits = 0;
  for (int q = 0; q < 200; ++q) {
    Key k = rng.UniformInt(1, 999999999);
    if (dead_range.Contains(k)) continue;
    auto r = o.overlay->ExactSearch(
        o.Alive()[rng.NextBelow(o.Alive().size())], k);
    if (r.ok()) ++hits;
  }
  EXPECT_GT(hits, 0);
  // At least some queries should have paid a timeout against the dead peer.
  EXPECT_GT(net::Network::DeltaOfType(before, o.net.Snapshot(),
                                      net::MsgType::kDeadProbe),
            0u);
}

TEST(Failure, RecoveryRestoresInvariants) {
  Overlay o(3);
  Rng rng(3);
  o.Grow(100, &rng);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1, 999999999))
                    .ok());
  }
  PeerId victim = o.members[37];
  size_t victim_keys = o.overlay->node(victim).data.size();
  o.overlay->Fail(victim);
  ASSERT_TRUE(o.overlay->RecoverFailure(victim).ok());
  o.RemoveMember(victim);
  EXPECT_EQ(o.overlay->size(), 99u);
  EXPECT_EQ(o.overlay->total_keys(), 1000u - victim_keys)
      << "only the failed node's keys are lost";
  o.overlay->CheckInvariants();
}

TEST(Failure, RootFailureRecovers) {
  Overlay o(4);
  Rng rng(4);
  o.Grow(50, &rng);
  PeerId root = o.overlay->root();
  o.overlay->Fail(root);
  ASSERT_TRUE(o.overlay->RecoverFailure(root).ok());
  o.RemoveMember(root);
  EXPECT_NE(o.overlay->root(), kNullPeer);
  o.overlay->CheckInvariants();
}

TEST(Failure, LeafFailureRecovers) {
  Overlay o(5);
  Rng rng(5);
  o.Grow(40, &rng);
  PeerId leaf = kNullPeer;
  for (PeerId m : o.members) {
    if (o.overlay->node(m).IsLeaf()) leaf = m;
  }
  ASSERT_NE(leaf, kNullPeer);
  o.overlay->Fail(leaf);
  ASSERT_TRUE(o.overlay->RecoverFailure(leaf).ok());
  o.RemoveMember(leaf);
  o.overlay->CheckInvariants();
}

TEST(Failure, MultipleSimultaneousFailuresRecoverable) {
  Overlay o(6);
  Rng rng(6);
  o.Grow(200, &rng);
  // Fail 10% of the network at once.
  std::vector<PeerId> victims;
  for (int i = 0; i < 20; ++i) {
    PeerId v;
    do {
      v = o.members[rng.NextBelow(o.members.size())];
    } while (std::find(victims.begin(), victims.end(), v) != victims.end());
    victims.push_back(v);
  }
  for (PeerId v : victims) o.overlay->Fail(v);
  EXPECT_EQ(o.overlay->pending_failures().size(), 20u);
  ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
  for (PeerId v : victims) o.RemoveMember(v);
  EXPECT_EQ(o.overlay->size(), 180u);
  o.overlay->CheckInvariants();
}

TEST(Failure, SameLevelMassFailureDoesNotPartition) {
  // "even if all nodes at the same level fail, the tree is not partitioned
  // since adjacency links can be used to route across the gap."
  Overlay o(7);
  Rng rng(7);
  o.Grow(127, &rng);  // roughly a full tree of height 6
  int target_level = 3;
  std::vector<PeerId> victims;
  for (PeerId m : o.members) {
    if (static_cast<int>(o.overlay->node(m).pos.level) == target_level) {
      victims.push_back(m);
    }
  }
  ASSERT_FALSE(victims.empty());
  std::vector<Range> dead_ranges;
  for (PeerId v : victims) {
    dead_ranges.push_back(o.overlay->node(v).range);
    o.overlay->Fail(v);
  }
  // Queries for keys owned by live nodes must still succeed from any origin.
  int ok_count = 0, attempts = 0;
  for (int q = 0; q < 300; ++q) {
    Key k = rng.UniformInt(1, 999999999);
    bool dead = false;
    for (const Range& r : dead_ranges) {
      if (r.Contains(k)) dead = true;
    }
    if (dead) continue;
    ++attempts;
    auto res = o.overlay->ExactSearch(
        o.Alive()[rng.NextBelow(o.Alive().size())], k);
    if (res.ok()) ++ok_count;
  }
  ASSERT_GT(attempts, 0);
  EXPECT_EQ(ok_count, attempts);
  // And the whole level is recoverable.
  ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
  for (PeerId v : victims) o.RemoveMember(v);
  o.overlay->CheckInvariants();
}

TEST(Failure, RecoveryCostIsLogarithmic) {
  Overlay o(8);
  Rng rng(8);
  o.Grow(512, &rng);
  double logn = std::log2(512.0);
  for (int i = 0; i < 20; ++i) {
    PeerId victim = o.members[rng.NextBelow(o.members.size())];
    o.overlay->Fail(victim);
    auto before = o.net.Snapshot();
    ASSERT_TRUE(o.overlay->RecoverFailure(victim).ok());
    o.RemoveMember(victim);
    uint64_t cost = net::Network::Delta(before, o.net.Snapshot());
    EXPECT_LE(cost, static_cast<uint64_t>(20 * logn))
        << "repair must stay O(log N)";
  }
}

TEST(Failure, FailWholeNetworkAndRecover) {
  Overlay o(9);
  Rng rng(9);
  o.Grow(16, &rng);
  // Fail half the members including possibly internal chains.
  for (int i = 0; i < 8; ++i) {
    PeerId v = o.Alive()[rng.NextBelow(o.Alive().size())];
    o.overlay->Fail(v);
  }
  ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
  o.members = o.overlay->Members();
  EXPECT_EQ(o.overlay->size(), 8u);
  o.overlay->CheckInvariants();
}

// Parameterized: recovery under different failure fractions.
class FailureFraction : public ::testing::TestWithParam<int> {};

TEST_P(FailureFraction, RecoverAllRestoresStructure) {
  Overlay o(21);
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  o.Grow(150, &rng);
  int to_fail = 150 * GetParam() / 100;
  std::vector<PeerId> pool = o.members;
  rng.Shuffle(&pool);
  for (int i = 0; i < to_fail; ++i) o.overlay->Fail(pool[static_cast<size_t>(i)]);
  ASSERT_TRUE(o.overlay->RecoverAllFailures().ok());
  EXPECT_EQ(o.overlay->size(), 150u - static_cast<size_t>(to_fail));
  o.overlay->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Fractions, FailureFraction,
                         ::testing::Values(5, 10, 20, 35));

}  // namespace
}  // namespace baton
