// Load balancing (section IV-D) and network restructuring (section III-E):
// adjacent-node balancing, remote recruiting with forced joins, shift-size
// behaviour, and data conservation through every mechanism.
#include <gtest/gtest.h>

#include <algorithm>

#include "baton/baton.h"
#include "util/zipf.h"

namespace baton {
namespace {

struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed, BatonConfig cfg = {}) {
    overlay = std::make_unique<BatonNetwork>(cfg, &net, seed);
    members.push_back(overlay->Bootstrap());
  }
  void Grow(size_t n, Rng* rng) {
    while (members.size() < n) {
      auto joined = overlay->Join(members[rng->NextBelow(members.size())]);
      ASSERT_TRUE(joined.ok());
      members.push_back(joined.value());
    }
  }
};

BatonConfig LbConfig(size_t threshold) {
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_threshold = threshold;
  return cfg;
}

TEST(LoadBalance, DisabledByDefault) {
  Overlay o(1);
  Rng rng(1);
  o.Grow(16, &rng);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(o.overlay->Insert(o.members[0], 10 + i % 50).ok());
  }
  EXPECT_EQ(o.overlay->load_balance_ops(), 0u);
  o.overlay->CheckInvariants();
}

TEST(LoadBalance, AdjacentBalanceSplitsLoad) {
  Overlay o(2, LbConfig(100));
  Rng rng(2);
  o.Grow(16, &rng);
  // Hammer one node's range; adjacent balancing must spread the keys.
  PeerId target = o.overlay->Members()[8];
  Range r = o.overlay->node(target).range;
  for (int i = 0; i < 400; ++i) {
    Key k = r.lo + rng.UniformInt(0, r.Width() - 1);
    ASSERT_TRUE(
        o.overlay->Insert(o.members[rng.NextBelow(o.members.size())], k).ok());
  }
  EXPECT_GT(o.overlay->load_balance_ops(), 0u);
  EXPECT_EQ(o.overlay->total_keys(), 400u) << "balancing moves, never drops";
  o.overlay->CheckInvariants();
}

TEST(LoadBalance, SkewTriggersMoreThanUniform) {
  // Threshold well above the uniform average (6000/64 ~ 94): only the skewed
  // stream should trip it regularly.
  uint64_t uniform_ops = 0, zipf_ops = 0;
  for (bool zipf : {false, true}) {
    Overlay o(3, LbConfig(250));
    Rng rng(3);
    o.Grow(64, &rng);
    ZipfGenerator z(1 << 16, 1.0);
    for (int i = 0; i < 6000; ++i) {
      Key k = zipf ? static_cast<Key>(z.Sample(&rng)) * 15000
                   : rng.UniformInt(1, 999999999);
      k = std::max<Key>(1, std::min<Key>(k, 999999998));
      ASSERT_TRUE(
          o.overlay->Insert(o.members[rng.NextBelow(o.members.size())], k)
              .ok());
    }
    o.overlay->CheckInvariants();
    (zipf ? zipf_ops : uniform_ops) = o.overlay->load_balance_ops();
  }
  EXPECT_GT(zipf_ops, uniform_ops)
      << "skewed data must trigger load balancing more often";
}

TEST(LoadBalance, BoundsMaxLoadUnderSkew) {
  Overlay o(4, LbConfig(80));
  Rng rng(4);
  o.Grow(64, &rng);
  // All inserts hit one narrow hot range.
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1000, 2000))
                    .ok());
  }
  size_t max_load = 0;
  for (PeerId m : o.overlay->Members()) {
    max_load = std::max(max_load, o.overlay->node(m).data.size());
  }
  // Without balancing one node would hold ~4000 keys.
  EXPECT_LT(max_load, 1000u) << "hot range must be spread across recruits";
  EXPECT_GT(o.overlay->load_balance_ops(), 5u);
  o.overlay->CheckInvariants();
}

TEST(LoadBalance, RestructuresRecordShiftSizes) {
  Overlay o(5, LbConfig(50));
  Rng rng(5);
  o.Grow(64, &rng);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1000, 5000))
                    .ok());
  }
  const Histogram& h = o.overlay->shift_sizes();
  ASSERT_GT(h.total_count(), 0u) << "hot range must force recruits";
  EXPECT_GE(h.Min(), 1);
  o.overlay->CheckInvariants();
}

TEST(LoadBalance, ShiftSizesDecayRoughlyExponentially) {
  // Fig 8(h): most shifts are short; the tail decays fast. Check that the
  // median shift stays small and the mass at or below it dominates.
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_factor = 2.2;
  Overlay o(6, cfg);
  Rng rng(6);
  o.Grow(128, &rng);
  ZipfGenerator z(1 << 16, 1.0);
  for (int i = 0; i < 16000; ++i) {
    Key k = static_cast<Key>(z.Sample(&rng)) * 15000 + 1;
    ASSERT_TRUE(
        o.overlay->Insert(o.members[rng.NextBelow(o.members.size())], k).ok());
  }
  const Histogram& h = o.overlay->shift_sizes();
  ASSERT_GT(h.total_count(), 10u);
  EXPECT_LE(h.Percentile(0.5), 12)
      << "typical shifts must stay far below the network size";
  EXPECT_LE(h.Percentile(0.9), 3 * h.Percentile(0.5) + 8)
      << "the tail must decay quickly";
  o.overlay->CheckInvariants();
}

TEST(LoadBalance, AdaptiveThresholdFollowsAverage) {
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_factor = 2.0;
  Overlay o(7, cfg);
  Rng rng(7);
  o.Grow(32, &rng);
  // Uniform stream: loads track the growing average, few LB ops.
  for (int i = 0; i < 6400; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1, 999999999))
                    .ok());
  }
  size_t max_load = 0;
  for (PeerId m : o.overlay->Members()) {
    max_load = std::max(max_load, o.overlay->node(m).data.size());
  }
  double avg = 6400.0 / 32.0;
  EXPECT_LE(static_cast<double>(max_load), 3.0 * avg);
  o.overlay->CheckInvariants();
}

TEST(LoadBalance, NoKeysLostThroughRecruiting) {
  Overlay o(8, LbConfig(30));
  Rng rng(8);
  o.Grow(48, &rng);
  uint64_t inserted = 0;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(100000, 200000))  // hot range
                    .ok());
    ++inserted;
  }
  EXPECT_EQ(o.overlay->total_keys(), inserted);
  // Every inserted key remains findable.
  for (int i = 0; i < 200; ++i) {
    Key k = rng.UniformInt(100000, 200000);
    auto r = o.overlay->ExactSearch(
        o.overlay->Members()[0], k);
    ASSERT_TRUE(r.ok());
  }
  o.overlay->CheckInvariants();
}

TEST(LoadBalance, PureDuplicateHotspotDoesNotCrash) {
  // 101 distinct values hammered 5000 times: ranges cannot be subdivided
  // below value granularity; load balancing must give up gracefully rather
  // than corrupt the structure.
  Overlay o(28, LbConfig(30));
  Rng rng(28);
  o.Grow(48, &rng);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(100, 200))
                    .ok());
  }
  EXPECT_EQ(o.overlay->total_keys(), 5000u);
  o.overlay->CheckInvariants();
}

TEST(LoadBalance, ChurnDuringLoadBalancingKeepsInvariants) {
  Overlay o(9, LbConfig(50));
  Rng rng(9);
  o.Grow(64, &rng);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE(o.overlay
                      ->Insert(o.members[rng.NextBelow(o.members.size())],
                               rng.UniformInt(1000, 9000))
                      .ok());
    }
    // Interleave churn.
    auto joined =
        o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
    ASSERT_TRUE(joined.ok());
    o.members.push_back(joined.value());
    std::vector<PeerId> ms = o.overlay->Members();
    PeerId victim = ms[rng.NextBelow(ms.size())];
    ASSERT_TRUE(o.overlay->Leave(victim).ok());
    o.members = o.overlay->Members();
    o.overlay->CheckInvariants();
  }
}

// Parameterized: different thresholds all preserve structure + data.
class LbThresholdTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LbThresholdTest, StructureSurvivesHotRange) {
  Overlay o(10 + GetParam(), LbConfig(GetParam()));
  Rng rng(GetParam());
  o.Grow(48, &rng);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(50000, 60000))
                    .ok());
  }
  EXPECT_EQ(o.overlay->total_keys(), 3000u);
  o.overlay->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Thresholds, LbThresholdTest,
                         ::testing::Values(20, 40, 80, 160));

}  // namespace
}  // namespace baton
