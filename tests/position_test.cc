// Unit tests for tree positions and routing-table slot arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baton/node.h"
#include "baton/position.h"

namespace baton {
namespace {

TEST(Position, RootProperties) {
  Position r = Position::Root();
  EXPECT_TRUE(r.IsRoot());
  EXPECT_EQ(r.level, 0u);
  EXPECT_EQ(r.number, 1u);
  EXPECT_EQ(r.LevelWidth(), 1u);
}

TEST(Position, ChildParentRoundTrip) {
  Position p{5, 17};
  EXPECT_EQ(p.LeftChild().Parent(), p);
  EXPECT_EQ(p.RightChild().Parent(), p);
  EXPECT_EQ(p.LeftChild().Sibling(), p.RightChild());
  EXPECT_EQ(p.RightChild().Sibling(), p.LeftChild());
}

TEST(Position, ChildNumbers) {
  Position p{3, 5};
  EXPECT_EQ(p.LeftChild().level, 4u);
  EXPECT_EQ(p.LeftChild().number, 9u);
  EXPECT_EQ(p.RightChild().number, 10u);
  EXPECT_TRUE(p.LeftChild().IsLeftChild());
  EXPECT_FALSE(p.RightChild().IsLeftChild());
}

TEST(Position, InOrderKeyMatchesTraversal) {
  // Build the full tree of depth 4 and check that sorting by InOrderKey
  // reproduces a recursive in-order traversal.
  std::vector<Position> in_order;
  std::function<void(Position, int)> walk = [&](Position p, int depth) {
    if (depth > 0) walk(p.LeftChild(), depth - 1);
    in_order.push_back(p);
    if (depth > 0) walk(p.RightChild(), depth - 1);
  };
  walk(Position::Root(), 4);
  for (size_t i = 0; i + 1 < in_order.size(); ++i) {
    EXPECT_LT(in_order[i].InOrderKey(), in_order[i + 1].InOrderKey())
        << in_order[i] << " vs " << in_order[i + 1];
    EXPECT_TRUE(InOrderBefore(in_order[i], in_order[i + 1]));
  }
}

TEST(Position, InOrderKeyUniqueAcrossLevels) {
  std::vector<uint64_t> keys;
  for (uint32_t level = 0; level <= 10; ++level) {
    for (uint64_t num = 1; num <= (uint64_t{1} << level); ++num) {
      keys.push_back(Position{level, num}.InOrderKey());
    }
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(Position, PackedIsUniqueAndUnpackable) {
  Position p{9, 300};
  uint64_t packed = p.Packed();
  EXPECT_EQ(packed >> 52, 9u);
  EXPECT_EQ(packed & ((uint64_t{1} << 52) - 1), 300u);
  EXPECT_NE(Position({9, 301}).Packed(), packed);
  EXPECT_NE(Position({10, 300}).Packed(), packed);
}

TEST(Position, DeepLevelsDoNotOverflow) {
  Position deep{40, (uint64_t{1} << 40)};
  EXPECT_GT(deep.InOrderKey(), 0u);
  EXPECT_EQ(deep.Parent().level, 39u);
}

// ---------- RoutingTable slot math ----------

TEST(RoutingTable, NumSlotsLeftEdge) {
  // Leftmost node of a level has no left slots.
  EXPECT_EQ(RoutingTable::NumSlots(Position{5, 1}, true), 0);
  // and the full set of right slots: 1+1, 1+2, 1+4, 1+8, 1+16 <= 32.
  EXPECT_EQ(RoutingTable::NumSlots(Position{5, 1}, false), 5);
}

TEST(RoutingTable, NumSlotsRightEdge) {
  EXPECT_EQ(RoutingTable::NumSlots(Position{5, 32}, false), 0);
  EXPECT_EQ(RoutingTable::NumSlots(Position{5, 32}, true), 5);
}

TEST(RoutingTable, NumSlotsMiddle) {
  // number 12 at level 5: left reaches 12-1,12-2,12-4,12-8 (>=1): 4 slots;
  // right reaches 12+1,...,12+16 <= 32: 5 slots.
  EXPECT_EQ(RoutingTable::NumSlots(Position{5, 12}, true), 4);
  EXPECT_EQ(RoutingTable::NumSlots(Position{5, 12}, false), 5);
}

TEST(RoutingTable, SlotPositionsArePowersOfTwoAway) {
  Position p{6, 30};
  for (bool left : {true, false}) {
    int slots = RoutingTable::NumSlots(p, left);
    for (int i = 0; i < slots; ++i) {
      Position q = RoutingTable::SlotPosition(p, left, i);
      EXPECT_EQ(q.level, p.level);
      uint64_t d = q.number > p.number ? q.number - p.number
                                       : p.number - q.number;
      EXPECT_EQ(d, uint64_t{1} << i);
    }
  }
}

TEST(RoutingTable, SlotForDistance) {
  EXPECT_EQ(RoutingTable::SlotForDistance(1), 0);
  EXPECT_EQ(RoutingTable::SlotForDistance(2), 1);
  EXPECT_EQ(RoutingTable::SlotForDistance(8), 3);
  EXPECT_EQ(RoutingTable::SlotForDistance(3), -1);
  EXPECT_EQ(RoutingTable::SlotForDistance(0), -1);
}

TEST(RoutingTable, ResetDimensionsAndEmptiness) {
  RoutingTable rt;
  rt.Reset(Position{4, 7}, /*left=*/true);
  EXPECT_EQ(rt.size(), RoutingTable::NumSlots(Position{4, 7}, true));
  // Empty slots still count as a table that is NOT full (positions exist).
  EXPECT_FALSE(rt.IsFull());
  for (int i = 0; i < rt.size(); ++i) {
    rt.entry(i).peer = 1;
  }
  EXPECT_TRUE(rt.IsFull());
}

TEST(RoutingTable, ZeroSlotTableIsVacuouslyFull) {
  RoutingTable rt;
  rt.Reset(Position::Root(), true);
  EXPECT_EQ(rt.size(), 0);
  EXPECT_TRUE(rt.IsFull());
}

// ---------- Range ----------

TEST(Range, ContainsAndIntersects) {
  Range r{10, 20};
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_FALSE(r.Contains(9));
  EXPECT_TRUE(r.Intersects(19, 25));
  EXPECT_FALSE(r.Intersects(20, 25));
  EXPECT_TRUE(r.Intersects(0, 11));
  EXPECT_FALSE(r.Intersects(0, 10));
}

TEST(Range, WidthAndMid) {
  Range r{10, 20};
  EXPECT_EQ(r.Width(), 10);
  EXPECT_EQ(r.Mid(), 15);
  EXPECT_FALSE(r.Empty());
  EXPECT_TRUE((Range{5, 5}).Empty());
}

}  // namespace
}  // namespace baton
