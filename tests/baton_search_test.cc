// Index operations (section IV): exact-match and range queries, insert and
// delete, hop bounds, domain expansion at the edges, duplicate keys, and an
// exhaustive all-origins sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baton/baton.h"

namespace baton {
namespace {

struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed, BatonConfig cfg = {}) {
    overlay = std::make_unique<BatonNetwork>(cfg, &net, seed);
    members.push_back(overlay->Bootstrap());
  }
  void Grow(size_t n, Rng* rng) {
    while (members.size() < n) {
      auto joined = overlay->Join(members[rng->NextBelow(members.size())]);
      ASSERT_TRUE(joined.ok());
      members.push_back(joined.value());
    }
  }
};

TEST(Search, SingleNodeAnswersEverything) {
  Overlay o(1);
  ASSERT_TRUE(o.overlay->Insert(o.members[0], 77).ok());
  auto r = o.overlay->ExactSearch(o.members[0], 77);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().found);
  EXPECT_EQ(r.value().hops, 0);
  auto miss = o.overlay->ExactSearch(o.members[0], 78);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().found);
}

TEST(Search, ExhaustiveAllOriginsAllOwners) {
  // Every node searches for a key owned by every other node: the search must
  // land on the right owner with a bounded hop count.
  Overlay o(2);
  Rng rng(2);
  o.Grow(64, &rng);
  int height = o.overlay->Height();
  for (PeerId from : o.members) {
    for (PeerId target : o.members) {
      Key probe = o.overlay->node(target).range.lo;
      auto r = o.overlay->ExactSearch(from, probe);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value().node, target)
          << "searching " << probe << " from " << o.overlay->node(from).pos;
      EXPECT_LE(r.value().hops, 3 * (height + 1));
    }
  }
}

TEST(Search, FindsEveryInsertedKey) {
  Overlay o(3);
  Rng rng(3);
  o.Grow(100, &rng);
  std::vector<Key> keys;
  for (int i = 0; i < 3000; ++i) {
    Key k = rng.UniformInt(1, 999999999);
    keys.push_back(k);
    ASSERT_TRUE(
        o.overlay->Insert(o.members[rng.NextBelow(o.members.size())], k).ok());
  }
  for (Key k : keys) {
    auto r = o.overlay->ExactSearch(o.members[rng.NextBelow(o.members.size())], k);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().found) << k;
  }
}

TEST(Search, HopCountLogarithmic) {
  Overlay o(4);
  Rng rng(4);
  o.Grow(1024, &rng);
  double total = 0;
  const int kQ = 500;
  for (int i = 0; i < kQ; ++i) {
    auto r = o.overlay->ExactSearch(o.members[rng.NextBelow(o.members.size())],
                                    rng.UniformInt(1, 999999999));
    ASSERT_TRUE(r.ok());
    total += r.value().hops;
  }
  EXPECT_LE(total / kQ, 1.44 * std::log2(1024.0) + 2)
      << "average search must stay within the height bound";
}

TEST(Search, DuplicateKeysAllCounted) {
  Overlay o(5);
  Rng rng(5);
  o.Grow(16, &rng);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(o.overlay->Insert(o.members[0], 123456789).ok());
  }
  auto rr = o.overlay->RangeSearch(o.members[3], 123456789, 123456790);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr.value().matches, 5u);
}

TEST(RangeSearch, MatchesBruteForce) {
  Overlay o(6);
  Rng rng(6);
  o.Grow(80, &rng);
  std::vector<Key> keys;
  for (int i = 0; i < 2000; ++i) {
    Key k = rng.UniformInt(1, 999999999);
    keys.push_back(k);
    ASSERT_TRUE(
        o.overlay->Insert(o.members[rng.NextBelow(o.members.size())], k).ok());
  }
  for (int q = 0; q < 50; ++q) {
    Key lo = rng.UniformInt(1, 900000000);
    Key hi = lo + rng.UniformInt(1, 90000000);
    auto rr = o.overlay->RangeSearch(
        o.members[rng.NextBelow(o.members.size())], lo, hi);
    ASSERT_TRUE(rr.ok());
    uint64_t expect = 0;
    for (Key k : keys) {
      if (k >= lo && k < hi) ++expect;
    }
    EXPECT_EQ(rr.value().matches, expect) << "[" << lo << "," << hi << ")";
  }
}

TEST(RangeSearch, VisitedNodesAreContiguous) {
  Overlay o(7);
  Rng rng(7);
  o.Grow(64, &rng);
  auto rr = o.overlay->RangeSearch(o.members[0], 100000000, 600000000);
  ASSERT_TRUE(rr.ok());
  ASSERT_GT(rr.value().nodes.size(), 1u);
  for (size_t i = 0; i + 1 < rr.value().nodes.size(); ++i) {
    const BatonNode& a = o.overlay->node(rr.value().nodes[i]);
    const BatonNode& b = o.overlay->node(rr.value().nodes[i + 1]);
    EXPECT_EQ(a.range.hi, b.range.lo) << "scan must follow adjacent ranges";
  }
}

TEST(RangeSearch, CostIsLogNPlusCoveredNodes) {
  Overlay o(8);
  Rng rng(8);
  o.Grow(512, &rng);
  double logn = std::log2(512.0);
  for (int q = 0; q < 30; ++q) {
    Key lo = rng.UniformInt(1, 500000000);
    Key hi = lo + 300000000;
    auto before = o.net.Snapshot();
    auto rr = o.overlay->RangeSearch(
        o.members[rng.NextBelow(o.members.size())], lo, hi);
    ASSERT_TRUE(rr.ok());
    uint64_t msgs = net::Network::Delta(before, o.net.Snapshot());
    EXPECT_LE(msgs, static_cast<uint64_t>(3 * logn) + rr.value().nodes.size())
        << "O(log N + X) bound";
  }
}

TEST(RangeSearch, EmptyRangeRejected) {
  Overlay o(9);
  auto rr = o.overlay->RangeSearch(o.members[0], 10, 10);
  EXPECT_FALSE(rr.ok());
}

TEST(RangeSearch, WholeDomainCoversAllNodes) {
  Overlay o(10);
  Rng rng(10);
  o.Grow(32, &rng);
  auto rr = o.overlay->RangeSearch(o.members[5],
                                   o.overlay->config().domain_lo,
                                   o.overlay->config().domain_hi);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr.value().nodes.size(), 32u);
}

TEST(InsertDelete, RoundTrip) {
  Overlay o(11);
  Rng rng(11);
  o.Grow(40, &rng);
  std::vector<Key> keys;
  for (int i = 0; i < 500; ++i) {
    Key k = rng.UniformInt(1, 999999999);
    keys.push_back(k);
    ASSERT_TRUE(
        o.overlay->Insert(o.members[rng.NextBelow(o.members.size())], k).ok());
  }
  EXPECT_EQ(o.overlay->total_keys(), 500u);
  for (Key k : keys) {
    ASSERT_TRUE(
        o.overlay->Delete(o.members[rng.NextBelow(o.members.size())], k).ok());
  }
  EXPECT_EQ(o.overlay->total_keys(), 0u);
  o.overlay->CheckInvariants();
}

TEST(InsertDelete, DeleteMissingKeyIsNotFound) {
  Overlay o(12);
  Rng rng(12);
  o.Grow(8, &rng);
  Status s = o.overlay->Delete(o.members[0], 42);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(InsertDelete, LeftEdgeExpansion) {
  // Inserting below the domain expands the leftmost node's range and
  // triggers the "additional log N" range-update broadcast (section IV-C).
  BatonConfig cfg;
  cfg.domain_lo = 1000;
  cfg.domain_hi = 2000;
  Overlay o(13, cfg);
  Rng rng(13);
  o.Grow(16, &rng);
  auto before = o.net.Snapshot();
  ASSERT_TRUE(o.overlay->Insert(o.members[5], 50).ok());
  EXPECT_GT(net::Network::DeltaOfType(before, o.net.Snapshot(),
                                      net::MsgType::kRangeUpdate),
            0u);
  auto r = o.overlay->ExactSearch(o.members[3], 50);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().found);
  o.overlay->CheckInvariants();
}

TEST(InsertDelete, RightEdgeExpansion) {
  BatonConfig cfg;
  cfg.domain_lo = 1000;
  cfg.domain_hi = 2000;
  Overlay o(14, cfg);
  Rng rng(14);
  o.Grow(16, &rng);
  ASSERT_TRUE(o.overlay->Insert(o.members[2], 5000).ok());
  auto r = o.overlay->ExactSearch(o.members[7], 5000);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().found);
  o.overlay->CheckInvariants();
}

TEST(Search, NeverRoutesThroughRootUnlessDelivering) {
  // The paper: the root processes queries only when it owns the value (or is
  // on a short delivery path) -- it must not be a relay hot spot. Load
  // balancing (section IV-D) is what keeps ranges data-proportional, so it
  // is enabled here as in the paper's experiments.
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_factor = 2.0;
  Overlay o(15, cfg);
  Rng rng(15);
  o.Grow(256, &rng);
  for (int i = 0; i < 2560; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1, 999999999))
                    .ok());
  }
  o.net.ResetPerPeerCounters();
  const int kQ = 2560;
  for (int i = 0; i < kQ; ++i) {
    auto r = o.overlay->ExactSearch(o.members[rng.NextBelow(o.members.size())],
                                    rng.UniformInt(1, 999999999));
    ASSERT_TRUE(r.ok());
  }
  uint64_t total = 0;
  for (PeerId m : o.members) {
    total += o.net.ProcessedBy(m, net::MsgCategory::kQuery);
  }
  double avg = static_cast<double>(total) / static_cast<double>(o.members.size());
  uint64_t root_load =
      o.net.ProcessedBy(o.overlay->root(), net::MsgCategory::kQuery);
  EXPECT_LE(static_cast<double>(root_load), 8 * avg + 16)
      << "root must not be a relay hot spot";
}

// Parameterized sweep: correctness across sizes.
class SearchSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SearchSweep, BoundaryKeysRouteToOwners) {
  Overlay o(GetParam());
  Rng rng(GetParam() * 31 + 1);
  o.Grow(GetParam(), &rng);
  for (PeerId m : o.overlay->Members()) {
    const BatonNode& n = o.overlay->node(m);
    // First and last key of every node's range route back to it.
    for (Key probe : {n.range.lo, n.range.hi - 1}) {
      auto r = o.overlay->ExactSearch(
          o.members[rng.NextBelow(o.members.size())], probe);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value().node, m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SearchSweep,
                         ::testing::Values(2, 3, 5, 9, 17, 33, 65, 129));

}  // namespace
}  // namespace baton
