// Tests for the obs/ observability subsystem wired through the overlay
// stack: registry bookkeeping, observer message/op accounting, the
// span-count == executed-ops contract, per-backend trace determinism, the
// zero-overhead detached default, and the zero-op replay aggregates
// (capability-filtered traces must read as 0 everywhere, never divide).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "obs/trace.h"
#include "overlay/registry.h"
#include "sim/event_queue.h"
#include "sim/latency.h"
#include "util/rng.h"
#include "workload/replay.h"
#include "workload/workload.h"

namespace baton {
namespace {

using obs::LogHistogram;
using obs::Observer;
using obs::Registry;
using overlay::Overlay;
using workload::OpType;

constexpr Key kDomainHi = 1000000000;

struct Built {
  std::unique_ptr<Overlay> ov;
  std::vector<net::PeerId> members;
};

Built Grow(const std::string& name, size_t n, uint64_t seed) {
  overlay::Config cfg;
  cfg.seed = seed;
  Built b;
  b.ov = overlay::Make(name, cfg);
  BATON_CHECK(b.ov != nullptr) << "unknown backend " << name;
  Rng rng(Mix64(seed));
  workload::UniformKeys keys(1, kDomainHi);
  b.members.push_back(b.ov->Bootstrap());
  while (b.members.size() < n) {
    auto st = b.ov->Join(b.members[rng.NextBelow(b.members.size())]);
    BATON_CHECK(st.ok()) << st.status.ToString();
    b.members.push_back(st.peer);
    for (int i = 0; i < 5; ++i) {
      BATON_CHECK(b.ov
                      ->Insert(b.members[rng.NextBelow(b.members.size())],
                               keys.Next(&rng))
                      .ok());
    }
  }
  return b;
}

workload::Trace MixedTrace(uint64_t seed, size_t n) {
  workload::ChurnMix mix;
  mix.joins = n / 10;
  mix.leaves = n / 10;
  mix.inserts = 50;
  mix.exacts = 50;
  mix.ranges = 10;
  mix.range_width = kDomainHi / 1000;
  Rng rng(Mix64(seed ^ 0xc03a));
  workload::UniformKeys keys(1, kDomainHi);
  return workload::MakeChurnTrace(&rng, &keys, mix);
}

TEST(Registry, CountersGaugesHistsAndPerNode) {
  Registry r;
  ++r.Counter("a");
  r.Counter("a") += 4;
  r.Gauge("g") = -7;
  r.Hist("h").Add(3);
  r.Hist("h").Add(300);
  auto& fam = r.PerNode("node.load");
  Registry::IncNode(&fam, 2, 10);
  Registry::IncNode(&fam, 5);

  EXPECT_EQ(r.CounterValue("a"), 5u);
  EXPECT_EQ(r.CounterValue("never-written"), 0u);
  EXPECT_EQ(r.GaugeValue("g"), -7);
  ASSERT_NE(r.FindHist("h"), nullptr);
  EXPECT_EQ(r.FindHist("h")->count(), 2u);
  EXPECT_EQ(r.FindHist("missing"), nullptr);
  ASSERT_NE(r.FindPerNode("node.load"), nullptr);
  EXPECT_EQ((*r.FindPerNode("node.load"))[2], 10u);

  // NodeLoad turns the family into a distribution over [0, n): absent
  // nodes count as zero-load samples.
  LogHistogram load = r.NodeLoad("node.load", 6);
  EXPECT_EQ(load.count(), 6u);
  EXPECT_EQ(load.sum(), 11u);
  EXPECT_EQ(load.max(), 10u);
  EXPECT_EQ(load.Quantile(0.5), 0u);  // 4 of 6 nodes saw nothing
}

TEST(Registry, MergeIsAdditiveAcrossEveryKind) {
  Registry a, b;
  a.Counter("c") = 3;
  b.Counter("c") = 4;
  b.Counter("only-b") = 1;
  a.Gauge("g") = 10;
  b.Gauge("g") = -2;
  a.Hist("h").Add(1);
  b.Hist("h").Add(1u << 20);
  Registry::IncNode(&a.PerNode("f"), 1, 5);
  Registry::IncNode(&b.PerNode("f"), 3, 7);

  a.Merge(b);
  EXPECT_EQ(a.CounterValue("c"), 7u);
  EXPECT_EQ(a.CounterValue("only-b"), 1u);
  EXPECT_EQ(a.GaugeValue("g"), 8);
  EXPECT_EQ(a.FindHist("h")->count(), 2u);
  EXPECT_EQ(a.FindHist("h")->max(), 1u << 20);
  const auto& fam = *a.FindPerNode("f");
  EXPECT_EQ(fam[1], 5u);
  EXPECT_EQ(fam[3], 7u);
}

TEST(Observer, CountsEveryMessageTheNetworkCounts) {
  Built b = Grow("baton", 64, 11);
  Observer obs;
  b.ov->AttachObserver(&obs);
  auto before = b.ov->network()->Snapshot();
  Rng rng(5);
  for (int q = 0; q < 200; ++q) {
    auto st = b.ov->ExactSearch(b.members[rng.NextBelow(b.members.size())],
                                rng.UniformInt(1, kDomainHi));
    ASSERT_TRUE(st.ok()) << st.status.ToString();
  }
  uint64_t net_delta =
      net::Network::Delta(before, b.ov->network()->Snapshot());
  const Registry& m = obs.metrics();
  // Every message the network counted while attached hit the observer.
  EXPECT_EQ(m.CounterValue("net.messages"), net_delta);
  EXPECT_GT(net_delta, 0u);
  EXPECT_EQ(m.CounterValue("op.exact.count"), 200u);
  EXPECT_EQ(m.CounterValue("op.exact.ok"), 200u);
  ASSERT_NE(m.FindHist("op.exact.hops"), nullptr);
  EXPECT_EQ(m.FindHist("op.exact.hops")->count(), 200u);
  // Per-node receive counts partition the global message counter.
  const auto* in = m.FindPerNode("node.msgs_in");
  ASSERT_NE(in, nullptr);
  uint64_t in_sum = std::accumulate(in->begin(), in->end(), uint64_t{0});
  EXPECT_EQ(in_sum, net_delta);
}

TEST(Observer, SpanCountEqualsExecutedOps) {
  // The acceptance contract: one span per executed public operation.
  // Skipped / capability-filtered ops never touch the overlay, so they must
  // not produce spans; each recovered failure adds one extra "recover" span
  // on top of its "fail" span.
  for (const std::string& name : {std::string("baton"), std::string("chord"),
                                  std::string("d3tree")}) {
    Built b = Grow(name, 48, 17);
    Observer obs(/*tracing=*/true);
    b.ov->AttachObserver(&obs);
    workload::Trace trace = MixedTrace(17, 48);
    Rng rng(Mix64(uint64_t{17} ^ 0x5eed));
    workload::ReplayResult res =
        workload::Replay(*b.ov, trace, &rng, &b.members);
    uint64_t executed = 0;
    for (const auto& agg : res.per_op) executed += agg.count;
    ASSERT_NE(obs.trace(), nullptr);
    EXPECT_EQ(obs.trace()->span_count(), executed) << name;
    EXPECT_GT(executed, 0u) << name;
    // Message events inherit causally ordered ticks: deliver >= send, span
    // end >= span begin.
    for (const auto& e : obs.trace()->messages()) {
      ASSERT_GE(e.deliver, e.send);
    }
    for (const auto& s : obs.trace()->spans()) {
      ASSERT_GE(s.end, s.begin);
    }
  }
}

TEST(Observer, RecoveredFailuresAddOneSpanEach) {
  Built b = Grow("baton", 48, 23);
  Observer obs(/*tracing=*/true);
  b.ov->AttachObserver(&obs);
  workload::ChurnMix mix;
  mix.failures = 6;
  mix.exacts = 10;
  Rng trng(Mix64(23 ^ 0xfa11));
  workload::UniformKeys keys(1, kDomainHi);
  workload::Trace trace = workload::MakeChurnTrace(&trng, &keys, mix);
  Rng rng(Mix64(23));
  workload::ReplayResult res = workload::Replay(*b.ov, trace, &rng, &b.members);
  uint64_t executed = 0;
  for (const auto& agg : res.per_op) executed += agg.count;
  // Replay runs RecoverAllFailures after every successful Fail; the
  // recovery is merged into the kFail aggregate but is its own span.
  uint64_t expected = executed + res.of(OpType::kFail).ok;
  EXPECT_EQ(obs.trace()->span_count(), expected);
  EXPECT_EQ(obs.metrics().CounterValue("op.recover.count"),
            res.of(OpType::kFail).ok);
}

TEST(Observer, TraceIsByteIdenticalAcrossRunsPerBackend) {
  // Same seed => byte-identical Chrome trace JSON, for every registered
  // backend, with the sim kernel attached (real ticks) -- the determinism
  // guarantee that makes traces diffable artifacts.
  for (const std::string& name : overlay::RegisteredNames()) {
    std::string runs[2];
    for (int run = 0; run < 2; ++run) {
      Built b = Grow(name, 32, 7);
      sim::EventQueue queue;
      sim::UniformLatency link(5, 20);
      b.ov->AttachLatency(&queue, &link, 13);
      Observer obs(/*tracing=*/true);
      b.ov->AttachObserver(&obs);
      workload::Trace trace = MixedTrace(7, 32);
      Rng rng(Mix64(uint64_t{7} ^ 0x5eed));
      workload::Replay(*b.ov, trace, &rng, &b.members);
      std::ostringstream out;
      obs::WriteChromeTrace(out, {{name + " N=32 seed=0", obs.trace()}});
      runs[run] = out.str();
    }
    EXPECT_EQ(runs[0], runs[1]) << name;
    EXPECT_GT(runs[0].size(), 2u) << name;
  }
}

TEST(Observer, DetachedRunIsIndistinguishable) {
  // The zero-overhead default: an unobserved run and an observed run make
  // identical protocol decisions -- same per-op message bills, same hops,
  // same final counters. (Bench byte-identity rides on this.)
  auto run = [](bool observed) {
    Built b = Grow("baton", 48, 31);
    Observer obs(/*tracing=*/true);
    if (observed) b.ov->AttachObserver(&obs);
    workload::Trace trace = MixedTrace(31, 48);
    Rng rng(Mix64(uint64_t{31} ^ 0x5eed));
    workload::ReplayResult res =
        workload::Replay(*b.ov, trace, &rng, &b.members);
    std::vector<uint64_t> sig;
    for (const auto& agg : res.per_op) {
      sig.push_back(agg.count);
      sig.push_back(agg.messages);
      sig.push_back(agg.hops);
    }
    sig.push_back(b.ov->network()->total_messages());
    return sig;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Replay, ZeroOpAggregatesReadAsZeroEverywhere) {
  // A Chord replay of a range-only trace executes nothing: every op is
  // capability-filtered before touching the overlay. All derived stats must
  // be total functions -- 0, not a division by zero or an empty-histogram
  // walk.
  Built b = Grow("chord", 32, 3);
  workload::Trace trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back({OpType::kRange, Key{1000} * (i + 1),
                     Key{1000} * (i + 1) + 500});
  }
  Rng rng(Mix64(3));
  workload::ReplayResult res = workload::Replay(*b.ov, trace, &rng, &b.members);
  const workload::OpAggregate& agg = res.of(OpType::kRange);
  EXPECT_EQ(agg.count, 0u);
  EXPECT_EQ(agg.unsupported, 40u);
  EXPECT_DOUBLE_EQ(agg.MeanMessages(), 0.0);
  EXPECT_DOUBLE_EQ(agg.MeanHops(), 0.0);
  EXPECT_DOUBLE_EQ(agg.MeanLatency(), 0.0);
  EXPECT_EQ(agg.hops_hist.Quantile(0.5), 0u);
  EXPECT_EQ(agg.latency_hist.Quantile(0.99), 0u);
  EXPECT_EQ(res.total_messages, 0u);
  // Merging empty aggregates stays empty (the cross-seed rollup path).
  workload::OpAggregate merged;
  merged.Merge(agg);
  merged.Merge(agg);
  EXPECT_EQ(merged.count, 0u);
  EXPECT_EQ(merged.unsupported, 80u);
  EXPECT_DOUBLE_EQ(merged.MeanMessages(), 0.0);
}

TEST(Replay, AggregateHistogramsMatchTheTotals) {
  Built b = Grow("baton", 48, 5);
  workload::Trace trace = MixedTrace(5, 48);
  Rng rng(Mix64(uint64_t{5} ^ 0x5eed));
  workload::ReplayResult res = workload::Replay(*b.ov, trace, &rng, &b.members);
  for (const auto& agg : res.per_op) {
    EXPECT_EQ(agg.hops_hist.count(), agg.count);
    EXPECT_EQ(agg.messages_hist.count(), agg.count);
    EXPECT_EQ(agg.latency_hist.count(), agg.count);
    EXPECT_EQ(agg.hops_hist.sum(), agg.hops);
    EXPECT_EQ(agg.messages_hist.sum(), agg.messages);
    EXPECT_EQ(agg.latency_hist.sum(), agg.latency);
  }
}

TEST(Trace, ChromeJsonShape) {
  obs::TraceRecorder rec;
  rec.BeginSpan("exact", 10);
  rec.AddMessage(1, 2, 0, 10, 12);
  rec.AddMessage(2, 3, 0, 12, 15);
  rec.EndSpan(15, true, 3, 2, 2, 5);
  std::ostringstream out;
  obs::WriteChromeTrace(out, {{"test N=1", &rec}});
  std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"exact\""), std::string::npos);
  EXPECT_EQ(rec.span_count(), 1u);
  EXPECT_EQ(rec.message_count(), 2u);
}

}  // namespace
}  // namespace baton
