// Correctness tests for obs::LogHistogram: randomized differential of the
// log-bucket quantile estimate against a sorted-vector ground truth, merge
// associativity / commutativity, and the empty-histogram edge cases the
// zero-op replay aggregates rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/log_histogram.h"
#include "util/rng.h"

namespace baton {
namespace {

using obs::LogHistogram;

uint64_t TrueQuantile(std::vector<uint64_t> sorted, double q) {
  // Same rank convention as LogHistogram::Quantile: the smallest value with
  // at least ceil(q * count) samples <= it.
  std::sort(sorted.begin(), sorted.end());
  size_t n = sorted.size();
  auto rank = static_cast<size_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

TEST(LogHistogram, EmptyReadsAsZeroEverywhere) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
}

TEST(LogHistogram, SingleValue) {
  LogHistogram h;
  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 42u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 42u) << "q=" << q;
  }
}

TEST(LogHistogram, ExactBelowTheUnitBucketLimit) {
  // Every value below kExactLimit has its own bucket, so quantiles there
  // must be EXACT, not approximate.
  LogHistogram h;
  std::vector<uint64_t> vals;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NextBelow(LogHistogram::kExactLimit);
    vals.push_back(v);
    h.Add(v);
  }
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), TrueQuantile(vals, q)) << "q=" << q;
  }
}

TEST(LogHistogram, RandomizedDifferentialAgainstSortedVector) {
  // Mixed magnitudes: small exact values, mid-range, and huge 2^k-bucket
  // values. The estimate must land in the same power-of-two bucket as the
  // true order statistic: exact below 128, within a factor of 2 above, and
  // always clamped into [min, max].
  Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    LogHistogram h;
    std::vector<uint64_t> vals;
    size_t n = 1 + rng.NextBelow(400);
    for (size_t i = 0; i < n; ++i) {
      int shift = static_cast<int>(rng.NextBelow(50));
      uint64_t v = rng.NextBelow(uint64_t{1} << shift);
      vals.push_back(v);
      h.Add(v);
    }
    EXPECT_EQ(h.count(), vals.size());
    for (double q : {0.0, 0.05, 0.5, 0.9, 0.99, 1.0}) {
      uint64_t truth = TrueQuantile(vals, q);
      uint64_t est = h.Quantile(q);
      EXPECT_GE(est, h.min());
      EXPECT_LE(est, h.max());
      if (truth < LogHistogram::kExactLimit) {
        EXPECT_EQ(est, truth) << "trial=" << trial << " q=" << q;
      } else {
        // Same bucket: est in [truth/2, 2*truth] is implied by the shared
        // power-of-two bucket (and clamping only tightens it).
        EXPECT_GE(est, truth / 2) << "trial=" << trial << " q=" << q;
        EXPECT_LE(est, truth * 2) << "trial=" << trial << " q=" << q;
      }
    }
  }
}

TEST(LogHistogram, WeightedAddMatchesRepeatedAdd) {
  LogHistogram a, b;
  a.Add(17, 1000);
  a.Add(100000, 3);
  for (int i = 0; i < 1000; ++i) b.Add(17);
  for (int i = 0; i < 3; ++i) b.Add(100000);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.count(), 1003u);
  EXPECT_EQ(a.sum(), 17u * 1000 + 100000u * 3);
}

TEST(LogHistogram, MergeIsAssociativeAndCommutative) {
  Rng rng(99);
  LogHistogram parts[3];
  LogHistogram all;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 200; ++i) {
      uint64_t v = rng.NextBelow(uint64_t{1} << rng.NextBelow(40));
      parts[p].Add(v);
      all.Add(v);
    }
  }
  // (a + b) + c
  LogHistogram left = parts[0];
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  // a + (b + c)
  LogHistogram bc = parts[1];
  bc.Merge(parts[2]);
  LogHistogram right = parts[0];
  right.Merge(bc);
  // c + b + a
  LogHistogram rev = parts[2];
  rev.Merge(parts[1]);
  rev.Merge(parts[0]);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left, rev);
  // Merging per-part histograms is indistinguishable from one histogram
  // that saw every sample -- the cross-seed/cross-task aggregation contract.
  EXPECT_EQ(left, all);
  EXPECT_EQ(left.count(), 600u);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram h, empty;
  h.Add(5);
  h.Add(1u << 20);
  LogHistogram copy = h;
  h.Merge(empty);
  EXPECT_EQ(h, copy);
  empty.Merge(h);
  EXPECT_EQ(empty, h);
}

TEST(LogHistogram, ClearResetsToEmpty) {
  LogHistogram h;
  h.Add(3);
  h.Add(uint64_t{1} << 40);
  h.Clear();
  EXPECT_EQ(h, LogHistogram{});
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(LogHistogram, BucketEdges) {
  // Unit buckets up to the limit, then one bucket per power of two; the
  // last bucket absorbs the top of the u64 range.
  EXPECT_EQ(LogHistogram::BucketLow(0), 0u);
  EXPECT_EQ(LogHistogram::BucketLow(127), 127u);
  EXPECT_EQ(LogHistogram::BucketLow(128), 128u);
  EXPECT_EQ(LogHistogram::BucketLow(129), 256u);
  LogHistogram h;
  h.Add(UINT64_MAX);
  h.Add(uint64_t{1} << 63);
  EXPECT_EQ(h.bucket_count(LogHistogram::kNumBuckets - 1), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.Quantile(1.0), UINT64_MAX);  // clamped to observed max
}

}  // namespace
}  // namespace baton
