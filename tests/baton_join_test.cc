// Join protocol (section III-A): placement, balance, message bounds,
// adjacency and table construction. Parameterized sweeps check the
// structural invariants at many sizes and seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "baton/baton.h"

namespace baton {
namespace {

struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed, BatonConfig cfg = {}) {
    overlay = std::make_unique<BatonNetwork>(cfg, &net, seed);
    members.push_back(overlay->Bootstrap());
  }
  void Grow(size_t n, Rng* rng) {
    while (members.size() < n) {
      PeerId contact = members[rng->NextBelow(members.size())];
      auto joined = overlay->Join(contact);
      ASSERT_TRUE(joined.ok()) << joined.status().ToString();
      members.push_back(joined.value());
    }
  }
};

TEST(Join, SecondNodeBecomesChildOfRoot) {
  Overlay o(1);
  Rng rng(1);
  o.Grow(2, &rng);
  const BatonNode& root = o.overlay->node(o.overlay->root());
  EXPECT_TRUE(root.left_child.valid() != root.right_child.valid() ||
              root.HasBothChildren());
  o.overlay->CheckInvariants();
}

TEST(Join, SplitsRangeWithChild) {
  Overlay o(2);
  Rng rng(2);
  o.Grow(2, &rng);
  const BatonNode& a = o.overlay->node(o.members[0]);
  const BatonNode& b = o.overlay->node(o.members[1]);
  // The two ranges partition the domain.
  Key lo = std::min(a.range.lo, b.range.lo);
  Key hi = std::max(a.range.hi, b.range.hi);
  EXPECT_EQ(lo, o.overlay->config().domain_lo);
  EXPECT_EQ(hi, o.overlay->config().domain_hi);
  EXPECT_EQ(a.range.Width() + b.range.Width(), hi - lo);
}

TEST(Join, SplitsContentByMedian) {
  Overlay o(3);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(o.overlay->Insert(o.members[0], i * 1000).ok());
  }
  o.Grow(2, &rng);
  const BatonNode& a = o.overlay->node(o.members[0]);
  const BatonNode& b = o.overlay->node(o.members[1]);
  EXPECT_EQ(a.data.size() + b.data.size(), 100u);
  EXPECT_NEAR(static_cast<double>(a.data.size()), 50.0, 1.0);
}

TEST(Join, JoinerAlwaysBecomesLeaf) {
  Overlay o(4);
  Rng rng(4);
  for (int i = 1; i < 50; ++i) {
    auto joined = o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
    ASSERT_TRUE(joined.ok());
    o.members.push_back(joined.value());
    EXPECT_TRUE(o.overlay->node(joined.value()).IsLeaf());
  }
}

TEST(Join, AcceptorHadFullTables) {
  // Theorem 1 precondition: every accepting parent has full tables at accept
  // time; verify post hoc that parents of all nodes satisfy Theorem 1.
  Overlay o(5);
  Rng rng(5);
  o.Grow(128, &rng);
  for (PeerId m : o.members) {
    const BatonNode& n = o.overlay->node(m);
    if (n.left_child.valid() || n.right_child.valid()) {
      EXPECT_TRUE(n.TablesFull()) << n.pos;
    }
  }
}

TEST(Join, HeightStaysWithinBalancedBound) {
  Overlay o(6);
  Rng rng(6);
  for (size_t target : {16u, 64u, 256u, 1024u}) {
    o.Grow(target, &rng);
    double bound = 1.44 * std::log2(static_cast<double>(target) + 1) + 2;
    EXPECT_LE(o.overlay->Height(), static_cast<int>(bound)) << target;
  }
  o.overlay->CheckInvariants();
}

TEST(Join, SearchCostIsLogarithmic) {
  Overlay o(7);
  Rng rng(7);
  o.Grow(1024, &rng);
  auto before = o.net.Snapshot();
  auto joined = o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
  ASSERT_TRUE(joined.ok());
  uint64_t find_msgs = net::Network::DeltaOfType(before, o.net.Snapshot(),
                                                 net::MsgType::kJoinForward);
  // The paper: much lower than O(log N) = 10; allow generous slack.
  EXPECT_LE(find_msgs, 20u);
}

TEST(Join, UpdateCostWithinPaperBound) {
  // "the maximum number of messages required for updating routing tables is
  // 2L1 + 2L2 + 2L2 + 1 < 6logN".
  Overlay o(8);
  Rng rng(8);
  o.Grow(512, &rng);
  double logn = std::log2(512.0);
  for (int i = 0; i < 50; ++i) {
    auto before = o.net.Snapshot();
    auto joined = o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
    ASSERT_TRUE(joined.ok());
    o.members.push_back(joined.value());
    auto after = o.net.Snapshot();
    uint64_t update = net::Network::Delta(before, after) -
                      net::Network::DeltaOfType(before, after,
                                                net::MsgType::kJoinForward);
    EXPECT_LE(update, static_cast<uint64_t>(8 * logn))
        << "join update cost should stay O(log N)";
  }
}

TEST(Join, NewNodeTablesMatchOccupancy) {
  Overlay o(9);
  Rng rng(9);
  o.Grow(200, &rng);
  // CheckInvariants already validates all tables; spot-check the last joiner
  // explicitly for readability.
  const BatonNode& y = o.overlay->node(o.members.back());
  for (bool left : {true, false}) {
    const RoutingTable& rt = left ? y.left_rt : y.right_rt;
    for (int i = 0; i < rt.size(); ++i) {
      Position q = RoutingTable::SlotPosition(y.pos, left, i);
      PeerId occ = o.overlay->OccupantOf(q);
      EXPECT_EQ(rt.entry(i).valid(), occ != kNullPeer) << q;
      if (occ != kNullPeer) {
        EXPECT_EQ(rt.entry(i).peer, occ);
      }
    }
  }
  o.overlay->CheckInvariants();
}

TEST(Join, InvalidContactRejected) {
  Overlay o(10);
  auto r = o.overlay->Join(static_cast<PeerId>(12345));
  EXPECT_FALSE(r.ok());
}

TEST(Join, AdjacencyChainGrowsCorrectly) {
  Overlay o(11);
  Rng rng(11);
  o.Grow(64, &rng);
  // Members() sorts by in-order position; the adjacency chain must agree and
  // ranges must ascend (verified fully by CheckInvariants).
  std::vector<PeerId> order = o.overlay->Members();
  Key prev_hi = o.overlay->config().domain_lo;
  for (PeerId m : order) {
    EXPECT_EQ(o.overlay->node(m).range.lo, prev_hi);
    prev_hi = o.overlay->node(m).range.hi;
  }
  EXPECT_EQ(prev_hi, o.overlay->config().domain_hi);
}

// Parameterized: growth with per-step invariant checking across seeds.
class JoinGrowthTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinGrowthTest, InvariantsHoldThroughoutGrowth) {
  Overlay o(GetParam());
  Rng rng(Mix64(GetParam()));
  for (int i = 1; i < 150; ++i) {
    auto joined = o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
    ASSERT_TRUE(joined.ok());
    o.members.push_back(joined.value());
    if (i % 10 == 0) o.overlay->CheckInvariants();
  }
  o.overlay->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinGrowthTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Parameterized: sequential join patterns (always-same-contact) that stress
// the forwarding logic.
class JoinPatternTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(JoinPatternTest, ContactPatternsKeepBalance) {
  auto [pattern, seed] = GetParam();
  Overlay o(seed);
  Rng rng(seed);
  for (int i = 1; i < 100; ++i) {
    PeerId contact = o.members[0];
    switch (pattern) {
      case 0: contact = o.members[0]; break;                       // root
      case 1: contact = o.members.back(); break;                   // newest
      case 2: contact = o.members[rng.NextBelow(o.members.size())]; break;
      default: break;
    }
    auto joined = o.overlay->Join(contact);
    ASSERT_TRUE(joined.ok());
    o.members.push_back(joined.value());
  }
  o.overlay->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, JoinPatternTest,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(3u, 7u)));

}  // namespace
}  // namespace baton
