// Tests for latency-weighted OpStats: the sim/ event kernel attached to an
// overlay's network via Overlay::AttachLatency, the critical-path contract
// (sequential hops add, parallel fan-out takes the max), determinism, the
// zero-latency regression guarding bench byte-identity, and the replay
// aggregates built on top.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "overlay/registry.h"
#include "sim/event_queue.h"
#include "sim/latency.h"
#include "util/rng.h"
#include "workload/replay.h"
#include "workload/workload.h"

namespace baton {
namespace {

using overlay::Config;
using overlay::Make;
using overlay::OpStats;
using overlay::Overlay;

constexpr Key kDomainHi = 1000000000;

// Grows an overlay to n members and inserts keys_per_node keys per member,
// mirroring the bench builder (bench_common is not linked into tests).
struct Built {
  std::unique_ptr<Overlay> ov;
  std::vector<net::PeerId> members;
};

Built Grow(const std::string& name, size_t n, uint64_t seed,
           size_t keys_per_node = 0) {
  Config cfg;
  cfg.seed = seed;
  Built b;
  b.ov = Make(name, cfg);
  BATON_CHECK(b.ov != nullptr) << "unknown backend " << name;
  Rng rng(Mix64(seed));
  workload::UniformKeys keys(1, kDomainHi);
  b.members.push_back(b.ov->Bootstrap());
  while (b.members.size() < n) {
    for (size_t i = 0; i < keys_per_node; ++i) {
      auto st = b.ov->Insert(b.members[rng.NextBelow(b.members.size())],
                             keys.Next(&rng));
      BATON_CHECK(st.ok()) << st.status.ToString();
    }
    auto st = b.ov->Join(b.members[rng.NextBelow(b.members.size())]);
    BATON_CHECK(st.ok()) << st.status.ToString();
    b.members.push_back(st.peer);
  }
  return b;
}

TEST(OverlayLatency, ZeroWithoutModelAttached) {
  // Regression guarding bench byte-identity: with no latency model
  // configured every operation must report latency_ticks == 0 (and behave
  // exactly as before the sim wiring existed).
  Built b = Grow("baton", 32, 1, 5);
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    OpStats st = b.ov->ExactSearch(
        b.members[rng.NextBelow(b.members.size())], rng.UniformInt(1, kDomainHi));
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.latency_ticks, 0u);
  }
  OpStats rs = b.ov->RangeSearch(b.members[0], 1, kDomainHi);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.latency_ticks, 0u);
}

TEST(OverlayLatency, ZeroTickModelReportsZeroLatency) {
  // A model that samples 0 ticks must behave like free links: delivery
  // events still flow, but the critical path is 0.
  Built b = Grow("baton", 32, 2, 5);
  sim::EventQueue q;
  sim::ConstantLatency lat(0);
  b.ov->AttachLatency(&q, &lat, 1);
  OpStats st = b.ov->ExactSearch(b.members[5], 123456789);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.latency_ticks, 0u);
  EXPECT_GT(b.ov->network()->sim_delivered(), 0u);
}

TEST(OverlayLatency, ConstOneExactSearchLatencyEqualsHops) {
  // Exact-match routing is purely sequential: with one tick per link the
  // critical path of each search equals its hop count.
  Built b = Grow("baton", 100, 3, 5);
  sim::EventQueue q;
  sim::ConstantLatency lat(1);
  b.ov->AttachLatency(&q, &lat, 1);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    OpStats st = b.ov->ExactSearch(
        b.members[rng.NextBelow(b.members.size())],
        rng.UniformInt(1, kDomainHi));
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.latency_ticks, static_cast<uint64_t>(st.hops));
  }
}

TEST(OverlayLatency, RangeQueryFanOutBeatsSequentialHops) {
  // The critical-path contract: BATON disseminates a wide range scan as a
  // delegation tree (one message per covered node, forwarded in parallel
  // branches), so with one tick per link the simulated latency must be
  // strictly below the sequential sum of hops -- the distinction message
  // counts alone cannot make.
  Built b = Grow("baton", 128, 4, 5);
  sim::EventQueue q;
  sim::ConstantLatency lat(1);
  b.ov->AttachLatency(&q, &lat, 1);
  Rng rng(17);
  uint64_t total_lat = 0, total_hops = 0;
  for (int i = 0; i < 10; ++i) {
    Key lo = rng.UniformInt(1, kDomainHi / 4);
    OpStats st = b.ov->RangeSearch(
        b.members[rng.NextBelow(b.members.size())], lo, lo + kDomainHi / 2);
    ASSERT_TRUE(st.ok());
    ASSERT_GT(st.nodes, 8u) << "range too narrow to exercise fan-out";
    EXPECT_GT(st.latency_ticks, 0u);
    EXPECT_LE(st.latency_ticks, static_cast<uint64_t>(st.hops));
    total_lat += st.latency_ticks;
    total_hops += static_cast<uint64_t>(st.hops);
  }
  EXPECT_LT(total_lat, total_hops)
      << "wide range scans must show parallelism under the frontier clock";
}

TEST(OverlayLatency, DeterministicAcrossRuns) {
  // Same seed, same latency model, same query stream => identical
  // latency_ticks, run after run.
  auto run = [](uint64_t sim_seed) {
    Built b = Grow("baton", 64, 5, 5);
    sim::EventQueue q;
    sim::UniformLatency lat(1, 9);
    b.ov->AttachLatency(&q, &lat, sim_seed);
    Rng rng(19);
    std::vector<uint64_t> ticks;
    for (int i = 0; i < 30; ++i) {
      OpStats st = b.ov->ExactSearch(
          b.members[rng.NextBelow(b.members.size())],
          rng.UniformInt(1, kDomainHi));
      BATON_CHECK(st.ok());
      ticks.push_back(st.latency_ticks);
    }
    return ticks;
  };
  EXPECT_EQ(run(23), run(23));
  EXPECT_NE(run(23), run(24));
}

TEST(OverlayLatency, EveryBackendReportsLatencyThroughTheSameWrapper) {
  // The timing is derived from the Count() stream in the base-class
  // wrapper, so backends need no code of their own to be timed.
  for (const std::string& name : overlay::RegisteredNames()) {
    Built b = Grow(name, 48, 6);
    sim::EventQueue q;
    sim::ConstantLatency lat(1);
    b.ov->AttachLatency(&q, &lat, 1);
    Rng rng(29);
    for (int i = 0; i < 20; ++i) {
      OpStats st = b.ov->ExactSearch(
          b.members[rng.NextBelow(b.members.size())],
          rng.UniformInt(1, kDomainHi));
      ASSERT_TRUE(st.ok()) << name;
      if (st.messages > 0) {
        EXPECT_GT(st.latency_ticks, 0u) << name;
      }
      // The critical path can never exceed the number of messages (each
      // message adds at most one tick at const:1).
      EXPECT_LE(st.latency_ticks, st.messages) << name;
    }
  }
}

// ---------- workload::Replay latency aggregation ----------

TEST(ReplayLatency, AggregatesMatchPerOpTotals) {
  Built b = Grow("baton", 64, 7, 5);
  sim::EventQueue q;
  sim::ConstantLatency lat(1);
  b.ov->AttachLatency(&q, &lat, 1);

  workload::Trace trace;
  Rng keygen(31);
  for (int i = 0; i < 50; ++i) {
    trace.push_back({workload::OpType::kExact,
                     keygen.UniformInt(1, kDomainHi), 0});
  }
  Rng rng(37);
  workload::ReplayResult res = workload::Replay(*b.ov, trace, &rng, &b.members);
  const workload::OpAggregate& agg = res.of(workload::OpType::kExact);
  EXPECT_EQ(agg.count, 50u);
  // const:1 and purely sequential routing: aggregate latency == aggregate
  // hops, and the result-wide total matches the per-op sum.
  EXPECT_EQ(agg.latency, agg.hops);
  EXPECT_EQ(res.total_latency, agg.latency);
  EXPECT_DOUBLE_EQ(agg.MeanLatency(), agg.MeanHops());
  EXPECT_GT(agg.MeanLatency(), 0.0);
}

// Minimal backend stub whose searches report a negative hop sentinel, as a
// failing backend might; only the pieces Replay touches are implemented.
class NegativeHopsOverlay : public Overlay {
 public:
  NegativeHopsOverlay() { net_.Register(); }

  const std::string& name() const override {
    static const std::string kName = "negative-hops-stub";
    return kName;
  }
  uint32_t capabilities() const override { return 0; }
  net::Network* network() override { return &net_; }
  const net::Network* network() const override { return &net_; }
  size_t size() const override { return 1; }
  std::vector<net::PeerId> Members() const override { return {0}; }
  uint64_t total_keys() const override { return 0; }
  void CheckInvariants() const override {}
  uint64_t build_salt() const override { return 0; }

 protected:
  net::PeerId DoBootstrap() override { return 0; }
  void DoJoin(net::PeerId, OpStats*) override {}
  void DoLeave(net::PeerId, OpStats*) override {}
  void DoInsert(net::PeerId, Key, OpStats*) override {}
  void DoDelete(net::PeerId, Key, OpStats*) override {}
  void DoExactSearch(net::PeerId, Key, OpStats* st) override {
    st->hops = -1;  // "no route" sentinel
  }

 private:
  net::Network net_;
};

TEST(ReplayLatency, NegativeHopSentinelsAreClampedNotWrapped) {
  // Regression: Accumulate used to cast the signed hops field straight to
  // uint64_t, so one -1 turned the aggregate into ~2^64.
  NegativeHopsOverlay ov;
  std::vector<net::PeerId> members = {0};
  workload::Trace trace(5, {workload::OpType::kExact, 42, 0});
  Rng rng(41);
  workload::ReplayResult res = workload::Replay(ov, trace, &rng, &members);
  const workload::OpAggregate& agg = res.of(workload::OpType::kExact);
  EXPECT_EQ(agg.count, 5u);
  EXPECT_EQ(agg.hops, 0u);
  EXPECT_EQ(agg.MeanHops(), 0.0);
}

}  // namespace
}  // namespace baton
