// Tests for the fault-injection subsystem and the overlay resilience
// policy: deterministic fault plans (same seed, same schedule), the
// no-fault byte-identity guard (an all-zero plan changes nothing), drop
// recovery through bounded retry on every backend, duplicate-delivery
// idempotence, stall/outage windows on the op clock, RetryOrigin
// contracts, correlated-failure traces, straggler service overrides, and
// the fault.* metrics the measured wrapper publishes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "net/message.h"
#include "net/network.h"
#include "obs/observer.h"
#include "overlay/registry.h"
#include "serve/engine.h"
#include "serve/node_model.h"
#include "sim/event_queue.h"
#include "sim/latency.h"
#include "util/rng.h"
#include "workload/replay.h"
#include "workload/workload.h"

namespace baton {
namespace {

using fault::LinkFaults;
using fault::Plan;
using fault::PlanConfig;
using fault::Policy;
using overlay::Capability;
using overlay::Make;
using overlay::OpStats;
using overlay::Overlay;
using workload::Op;
using workload::OpType;

constexpr Key kDomainHi = 1000000;

// Grows an overlay to n members via random contacts (bench_common is not
// linked into tests) and preloads a deterministic key per node.
struct Built {
  std::unique_ptr<Overlay> ov;
  std::vector<net::PeerId> members;
  std::vector<Key> keys;
};

Built Grow(const std::string& name, size_t n, uint64_t seed) {
  overlay::Config cfg;
  cfg.seed = seed;
  Built b;
  b.ov = Make(name, cfg);
  BATON_CHECK(b.ov != nullptr) << "unknown backend " << name;
  Rng rng(Mix64(seed));
  b.members.push_back(b.ov->Bootstrap());
  while (b.members.size() < n) {
    auto st = b.ov->Join(b.members[rng.NextBelow(b.members.size())]);
    BATON_CHECK(st.ok()) << st.status.ToString();
    b.members.push_back(st.peer);
  }
  for (size_t i = 0; i < 4 * n; ++i) {
    Key k = 1 + rng.NextBelow(kDomainHi);
    auto st = b.ov->Insert(b.members[rng.NextBelow(n)], k);
    BATON_CHECK(st.ok()) << st.status.ToString();
    b.keys.push_back(k);
  }
  return b;
}

std::vector<std::string> AllBackends() {
  return {"baton", "chord", "multiway", "d3tree"};
}

// ---------- Plan determinism ----------

TEST(FaultPlan, SameSeedSameSchedule) {
  PlanConfig cfg;
  cfg.seed = 42;
  cfg.all.drop = 0.1;
  cfg.all.duplicate = 0.05;
  cfg.all.delay = 0.2;
  cfg.all.delay_ticks = 7;
  Plan a(cfg), b(cfg);
  Rng msgs(1);
  for (int i = 0; i < 10000; ++i) {
    auto from = static_cast<net::PeerId>(msgs.NextBelow(64));
    auto to = static_cast<net::PeerId>(msgs.NextBelow(64));
    auto t = static_cast<net::MsgType>(msgs.NextBelow(4));
    auto da = a.OnMessage(from, to, t);
    auto db = b.OnMessage(from, to, t);
    ASSERT_EQ(da.drop, db.drop);
    ASSERT_EQ(da.duplicates, db.duplicates);
    ASSERT_EQ(da.extra_delay, db.extra_delay);
  }
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_GT(a.dropped(), 0u);
  EXPECT_GT(a.duplicated(), 0u);
  EXPECT_GT(a.delayed(), 0u);
}

TEST(FaultPlan, DifferentSeedDifferentSchedule) {
  PlanConfig cfg;
  cfg.seed = 42;
  cfg.all.drop = 0.1;
  Plan a(cfg);
  cfg.seed = 43;
  Plan b(cfg);
  Rng msgs(1);
  bool any_diff = false;
  for (int i = 0; i < 10000 && !any_diff; ++i) {
    auto from = static_cast<net::PeerId>(msgs.NextBelow(64));
    auto to = static_cast<net::PeerId>(msgs.NextBelow(64));
    auto t = static_cast<net::MsgType>(msgs.NextBelow(4));
    if (a.OnMessage(from, to, t).drop != b.OnMessage(from, to, t).drop) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, PeerOverrideWinsOverCategoryAndBaseline) {
  PlanConfig cfg;
  cfg.seed = 7;
  cfg.all.drop = 1.0;
  Plan plan(cfg);
  LinkFaults none;  // all-zero override shields the peer's links
  plan.SetPeerFaults(3, none);
  // Baseline drops everything...
  EXPECT_TRUE(plan.OnMessage(1, 2, static_cast<net::MsgType>(0)).drop);
  // ...except messages touching the overridden peer, either direction.
  EXPECT_FALSE(plan.OnMessage(3, 2, static_cast<net::MsgType>(0)).drop);
  EXPECT_FALSE(plan.OnMessage(1, 3, static_cast<net::MsgType>(0)).drop);
}

// ---------- Zero-fault attachment is a no-op ----------

TEST(FaultPlan, AllZeroPlanChangesNothing) {
  for (const std::string& name : AllBackends()) {
    Built base = Grow(name, 40, 11);
    Built faulted = Grow(name, 40, 11);
    Plan plan(PlanConfig{});  // every probability zero, no windows
    faulted.ov->AttachFaults(&plan);

    Rng ra(Mix64(99)), rb(Mix64(99));
    for (int i = 0; i < 200; ++i) {
      Key k = 1 + ra.NextBelow(kDomainHi);
      net::PeerId fa = base.members[ra.NextBelow(base.members.size())];
      Key k2 = 1 + rb.NextBelow(kDomainHi);
      net::PeerId fb =
          faulted.members[rb.NextBelow(faulted.members.size())];
      ASSERT_EQ(k, k2);
      ASSERT_EQ(fa, fb);
      OpStats a = base.ov->ExactSearch(fa, k);
      OpStats b = faulted.ov->ExactSearch(fb, k);
      ASSERT_EQ(a.ok(), b.ok()) << name;
      ASSERT_EQ(a.found, b.found) << name;
      ASSERT_EQ(a.peer, b.peer) << name;
      ASSERT_EQ(a.messages, b.messages) << name;
      ASSERT_EQ(b.retries, 0) << name;
      ASSERT_FALSE(b.degraded) << name;
      ASSERT_EQ(b.dropped_msgs, 0u) << name;
    }
    EXPECT_EQ(plan.dropped(), 0u);
    faulted.ov->AttachFaults(nullptr);
  }
}

// ---------- Retry recovers dropped operations ----------

// Success counts over the same query workload at a fixed retry budget.
struct LossRun {
  int ok = 0;
  int gave_up = 0;
  uint64_t retries = 0;
};

LossRun RunLossy(const std::string& name, int max_retries) {
  Built b = Grow(name, 60, 17);
  PlanConfig pcfg;
  pcfg.seed = 23;
  Plan plan(pcfg);
  LinkFaults lf;
  lf.drop = 0.15;  // heavy loss on query traffic only
  plan.SetCategoryFaults(net::MsgCategory::kQuery, lf);
  Policy pol;
  pol.max_retries = max_retries;
  b.ov->SetResilience(pol);
  b.ov->AttachFaults(&plan);

  LossRun out;
  Rng rng(Mix64(5));
  for (int i = 0; i < 300; ++i) {
    net::PeerId from = b.members[rng.NextBelow(b.members.size())];
    OpStats st = b.ov->ExactSearch(from, b.keys[i % b.keys.size()]);
    if (st.ok()) {
      ++out.ok;
      EXPECT_TRUE(st.found);  // preloaded keys must still be found
    } else {
      ++out.gave_up;
      EXPECT_TRUE(st.gave_up);
      EXPECT_TRUE(st.degraded);
      EXPECT_EQ(st.status.code(), StatusCode::kUnavailable);
    }
    out.retries += static_cast<uint64_t>(st.retries);
  }
  b.ov->AttachFaults(nullptr);
  return out;
}

TEST(Resilience, RetryBudgetRecoversDroppedQueriesOnEveryBackend) {
  for (const std::string& name : AllBackends()) {
    LossRun none = RunLossy(name, 0);
    LossRun some = RunLossy(name, 4);
    EXPECT_GT(none.gave_up, 0) << name << ": drop rate too low to bite";
    EXPECT_EQ(none.retries, 0u) << name;
    EXPECT_GT(some.retries, 0u) << name;
    EXPECT_GT(some.ok, none.ok)
        << name << ": a retry budget must buy back success";
  }
}

TEST(Resilience, MutatingOpsAbsorbDropsAsDegraded) {
  Built b = Grow("baton", 40, 29);
  PlanConfig pcfg;
  pcfg.seed = 31;
  pcfg.all.drop = 0.25;  // every category, so membership ops lose messages
  Plan plan(pcfg);
  Policy pol;
  pol.max_retries = 3;
  b.ov->SetResilience(pol);
  b.ov->AttachFaults(&plan);

  Rng rng(Mix64(7));
  int degraded = 0;
  for (int i = 0; i < 30; ++i) {
    auto st = b.ov->Join(b.members[rng.NextBelow(b.members.size())]);
    ASSERT_TRUE(st.ok()) << "mutating ops never give up";
    EXPECT_EQ(st.retries, 0) << "mutating ops are not retried";
    EXPECT_FALSE(st.gave_up);
    if (st.degraded) {
      ++degraded;
      EXPECT_GT(st.dropped_msgs, 0u);
    }
    b.members.push_back(st.peer);
  }
  EXPECT_GT(degraded, 0) << "25% loss must degrade some joins";
  b.ov->AttachFaults(nullptr);
}

// ---------- Duplicate delivery is idempotent ----------

TEST(Resilience, DuplicateDeliveryPreservesAnswers) {
  Built clean = Grow("baton", 50, 37);
  Built dup = Grow("baton", 50, 37);
  PlanConfig pcfg;
  pcfg.seed = 41;
  Plan plan(pcfg);
  LinkFaults lf;
  lf.duplicate = 1.0;  // every query message delivered twice
  plan.SetCategoryFaults(net::MsgCategory::kQuery, lf);
  dup.ov->AttachFaults(&plan);

  Rng ra(Mix64(3)), rb(Mix64(3));
  uint64_t clean_msgs = 0, dup_msgs = 0;
  for (int i = 0; i < 200; ++i) {
    Key k = clean.keys[static_cast<size_t>(i) % clean.keys.size()];
    OpStats a =
        clean.ov->ExactSearch(clean.members[ra.NextBelow(50)], k);
    OpStats b = dup.ov->ExactSearch(dup.members[rb.NextBelow(50)], k);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.found, b.found);
    ASSERT_EQ(a.peer, b.peer);  // duplicates must not change the answer
    // Ops that touched the wire know they absorbed faults; origin-local
    // answers (zero messages) have nothing to duplicate.
    ASSERT_EQ(b.degraded, b.messages > 0);
    clean_msgs += a.messages;
    dup_msgs += b.messages;
  }
  EXPECT_EQ(dup_msgs, 2 * clean_msgs);  // every copy is billed
  EXPECT_GT(plan.duplicated(), 0u);
  dup.ov->AttachFaults(nullptr);
}

// ---------- Windowed faults on the op clock ----------

TEST(FaultPlan, OutageWindowDropsThenRecovers) {
  Built b = Grow("baton", 50, 43);
  PlanConfig pcfg;
  pcfg.seed = 47;
  Plan plan(pcfg);
  // Every member dark for ops [0, 5): all traffic drops, then heals.
  plan.AddOutage(b.members, 0, 5);
  Policy pol;  // zero budget: losses are fatal to reads
  b.ov->SetResilience(pol);
  b.ov->AttachFaults(&plan);

  Rng rng(Mix64(9));
  int routed = 0;
  for (int i = 0; i < 5; ++i) {
    OpStats st = b.ov->ExactSearch(b.members[rng.NextBelow(50)],
                                   b.keys[static_cast<size_t>(i)]);
    // Origin-local answers (zero messages) never touch the dark links;
    // everything that routed must have failed.
    if (st.messages == 0) continue;
    ++routed;
    EXPECT_FALSE(st.ok()) << "queries routed inside the outage must fail";
    EXPECT_GT(st.dropped_msgs, 0u);
  }
  EXPECT_GT(routed, 0) << "workload never exercised the outage";
  EXPECT_GT(plan.outage_drops(), 0u);
  EXPECT_EQ(plan.op_clock(), 5u);

  for (int i = 0; i < 5; ++i) {
    OpStats st = b.ov->ExactSearch(b.members[rng.NextBelow(50)],
                                   b.keys[static_cast<size_t>(i)]);
    EXPECT_TRUE(st.ok()) << "queries after the window must succeed";
    EXPECT_EQ(st.dropped_msgs, 0u);
  }
  b.ov->AttachFaults(nullptr);
}

TEST(FaultPlan, StallWindowAddsLatency) {
  Built b = Grow("baton", 50, 53);
  sim::EventQueue q;
  sim::ConstantLatency lat(2);
  b.ov->AttachLatency(&q, &lat, 71);

  Rng rng(Mix64(13));
  net::PeerId from = b.members[rng.NextBelow(50)];
  Key k = b.keys[0];
  OpStats before = b.ov->ExactSearch(from, k);
  ASSERT_TRUE(before.ok());

  PlanConfig pcfg;
  pcfg.seed = 59;
  pcfg.stall_delay_ticks = 100;
  Plan plan(pcfg);
  plan.AddStall(before.peer, 0, 1000);  // gray-fail the answering node
  b.ov->AttachFaults(&plan);
  OpStats during = b.ov->ExactSearch(from, k);
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during.peer, before.peer);
  EXPECT_GT(during.latency_ticks, before.latency_ticks)
      << "messages touching a stalled peer must be slower";
  EXPECT_GT(plan.stall_delays(), 0u);
  b.ov->AttachFaults(nullptr);
}

// ---------- Backoff and timeout accounting ----------

TEST(Resilience, BackoffChargesLatencyDeterministically) {
  Policy pol;
  pol.backoff_ticks = 4;
  EXPECT_EQ(pol.BackoffFor(0), 0u);
  EXPECT_EQ(pol.BackoffFor(1), 4u);
  EXPECT_EQ(pol.BackoffFor(2), 8u);
  EXPECT_EQ(pol.BackoffFor(3), 16u);
  Policy none;
  EXPECT_EQ(none.BackoffFor(5), 0u);
}

TEST(Resilience, TimeoutRetriesSlowAttempts) {
  Built b = Grow("baton", 50, 61);
  sim::EventQueue q;
  sim::ConstantLatency lat(10);
  b.ov->AttachLatency(&q, &lat, 73);

  PlanConfig pcfg;
  pcfg.seed = 67;
  Plan plan(pcfg);  // no drops: only the timeout can trigger retries
  Policy pol;
  pol.max_retries = 2;
  pol.timeout_ticks = 1;  // every attempt overruns (const 10/hop)
  b.ov->SetResilience(pol);
  b.ov->AttachFaults(&plan);

  OpStats st = b.ov->ExactSearch(b.members[7], b.keys[0]);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.gave_up);
  EXPECT_EQ(st.retries, 2);
  EXPECT_EQ(st.timeouts, 3);  // every attempt, the last included
  b.ov->AttachFaults(nullptr);
}

// ---------- RetryOrigin contracts ----------

TEST(Resilience, RetryOriginReturnsLiveMembersOnEveryBackend) {
  for (const std::string& name : AllBackends()) {
    Built b = Grow(name, 40, 79);
    for (net::PeerId origin : b.members) {
      for (int attempt = 1; attempt <= 4; ++attempt) {
        net::PeerId r = b.ov->RetryOrigin(origin, attempt);
        EXPECT_NE(r, net::kNullPeer) << name;
        EXPECT_TRUE(std::count(b.members.begin(), b.members.end(), r) > 0)
            << name << ": retry origin must be a current member";
      }
    }
  }
}

// ---------- Correlated-failure traces ----------

TEST(Workload, CorrelatedFailTraceShapesAndShuffles) {
  workload::CorrelatedFailMix mix;
  mix.bursts = 3;
  mix.burst_width = 5;
  mix.exacts = 10;
  mix.inserts = 4;
  workload::UniformKeys gen(1, kDomainHi);
  Rng rng(Mix64(83));
  workload::Trace t = workload::MakeCorrelatedFailTrace(&rng, &gen, mix);
  ASSERT_EQ(t.size(), 17u);
  size_t bursts = 0;
  for (const Op& op : t) {
    if (op.type == OpType::kFailRegion) {
      ++bursts;
      EXPECT_EQ(op.key_hi, 5u);  // burst width rides in key_hi
    }
  }
  EXPECT_EQ(bursts, 3u);
}

TEST(Workload, FailRegionReplayFailsConsecutiveCanonicalMembers) {
  Built b = Grow("baton", 40, 89);
  workload::Trace t;
  t.push_back({OpType::kFailRegion, 0, 4});
  t.push_back({OpType::kFailRegion, 0, 4});
  Rng rng(Mix64(97));
  size_t before = b.members.size();
  workload::ReplayResult rr =
      workload::Replay(*b.ov, t, &rng, &b.members);
  const workload::OpAggregate& fr = rr.of(OpType::kFailRegion);
  EXPECT_EQ(fr.count, 2u);
  EXPECT_EQ(b.members.size(), before - 2 * 4)
      << "each burst removes burst_width members";
  EXPECT_EQ(b.ov->size(), before - 2 * 4);
  EXPECT_GT(fr.messages, 0u);
  b.ov->CheckInvariants();
}

TEST(Workload, FailRegionUnsupportedOnChord) {
  Built b = Grow("chord", 20, 101);
  workload::Trace t;
  t.push_back({OpType::kFailRegion, 0, 3});
  Rng rng(Mix64(103));
  workload::ReplayResult rr =
      workload::Replay(*b.ov, t, &rng, &b.members);
  EXPECT_EQ(rr.of(OpType::kFailRegion).unsupported, 1u);
  EXPECT_EQ(b.members.size(), 20u);
}

// ---------- Straggler service overrides ----------

TEST(NodeModel, PerNodeServiceOverride) {
  serve::NodeModel nm(2);
  nm.SetNodeServiceTicks(1, 10);
  EXPECT_EQ(nm.node_service_ticks(0), 2u);
  EXPECT_EQ(nm.node_service_ticks(1), 10u);
  auto fast = nm.Admit(0, 0, 0);
  auto slow = nm.Admit(1, 0, 0);
  EXPECT_EQ(fast.done, 2u);
  EXPECT_EQ(slow.done, 10u);
  // Back-to-back arrivals queue behind the straggler's longer occupancy.
  auto slow2 = nm.Admit(1, 0, 0);
  EXPECT_EQ(slow2.start, 10u);
  EXPECT_EQ(slow2.done, 20u);
}

TEST(Engine, StragglerOverridesStretchTheRun) {
  Built a = Grow("baton", 30, 107);
  Built b = Grow("baton", 30, 107);
  workload::Trace t;
  Rng krng(Mix64(109));
  for (int i = 0; i < 100; ++i) {
    t.push_back(
        {OpType::kExact, static_cast<Key>(1 + krng.NextBelow(kDomainHi)), 0});
  }
  serve::EngineConfig fast_cfg;
  fast_cfg.service_ticks = 1;
  serve::EngineConfig slow_cfg = fast_cfg;
  for (net::PeerId p : b.members) {
    slow_cfg.node_service_overrides.emplace_back(p, 8);
  }
  serve::Engine fast(a.ov.get(), &a.members, fast_cfg);
  serve::Engine slow(b.ov.get(), &b.members, slow_cfg);
  Rng ra(Mix64(113)), rb(Mix64(113));
  serve::EngineResult fr = fast.RunClosedLoop(t, &ra);
  serve::EngineResult sr = slow.RunClosedLoop(t, &rb);
  EXPECT_EQ(fr.completed, sr.completed);
  EXPECT_GT(sr.makespan, fr.makespan)
      << "slower servers must stretch the same workload";
}

// ---------- fault.* metrics ----------

TEST(Metrics, ResilienceWrapperPublishesFaultCounters) {
  Built b = Grow("baton", 50, 127);
  obs::Observer obs;
  b.ov->AttachObserver(&obs);
  PlanConfig pcfg;
  pcfg.seed = 131;
  Plan plan(pcfg);
  LinkFaults lf;
  lf.drop = 0.2;
  plan.SetCategoryFaults(net::MsgCategory::kQuery, lf);
  Policy pol;
  pol.max_retries = 2;
  b.ov->SetResilience(pol);
  b.ov->AttachFaults(&plan);

  Rng rng(Mix64(137));
  for (int i = 0; i < 200; ++i) {
    (void)b.ov->ExactSearch(b.members[rng.NextBelow(50)],
                            b.keys[static_cast<size_t>(i) % b.keys.size()]);
  }
  b.ov->AttachFaults(nullptr);
  b.ov->AttachObserver(nullptr);

  const obs::Registry& reg = obs.metrics();
  EXPECT_GT(reg.CounterValue(fault::kMetricDrops), 0u);
  EXPECT_GT(reg.CounterValue(fault::kMetricRetries), 0u);
  EXPECT_GT(reg.CounterValue(fault::kMetricDegraded), 0u);
  EXPECT_EQ(reg.CounterValue(fault::kMetricDrops), plan.dropped());
}

TEST(Metrics, EngineTimeoutsLandInFaultNamespace) {
  Built b = Grow("baton", 30, 139);
  workload::Trace t;
  Rng krng(Mix64(149));
  for (int i = 0; i < 50; ++i) {
    t.push_back(
        {OpType::kExact, static_cast<Key>(1 + krng.NextBelow(kDomainHi)), 0});
  }
  obs::Registry reg;
  serve::EngineConfig cfg;
  cfg.service_ticks = 50;
  cfg.timeout_ticks = 1;  // every multi-hop op overruns
  serve::Engine eng(b.ov.get(), &b.members, cfg, &reg);
  Rng rng(Mix64(151));
  serve::EngineResult res = eng.RunClosedLoop(t, &rng);
  ASSERT_GT(res.timed_out, 0u);
  EXPECT_EQ(reg.CounterValue(fault::kMetricTimeouts), res.timed_out);
  EXPECT_EQ(reg.CounterValue("serve.ops_timed_out"), res.timed_out);
}

}  // namespace
}  // namespace baton
