// The invariant checker itself is load-bearing for every other test, so
// verify it actually *detects* corruption: each death test injects one
// specific fault into an otherwise healthy overlay and expects the checker
// to abort with a message naming the violated property.
#include <gtest/gtest.h>

#include "baton/baton.h"

namespace baton {
namespace {

// Builds a healthy 32-node overlay. The test then mutates one node through
// the (test-only) const_cast window and runs CheckInvariants.
struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed) {
    overlay = std::make_unique<BatonNetwork>(BatonConfig{}, &net, seed);
    members.push_back(overlay->Bootstrap());
    Rng rng(seed);
    while (members.size() < 32) {
      members.push_back(
          overlay->Join(members[rng.NextBelow(members.size())]).value());
    }
    for (int i = 0; i < 320; ++i) {
      Status s = overlay->Insert(members[rng.NextBelow(members.size())],
                                 rng.UniformInt(1, 999999999));
      BATON_CHECK(s.ok());
    }
  }

  BatonNode* Mutable(PeerId p) {
    return const_cast<BatonNode*>(&overlay->node(p));
  }
  PeerId SomeLeaf() {
    for (PeerId m : members) {
      if (overlay->node(m).IsLeaf()) return m;
    }
    return kNullPeer;
  }
  PeerId SomeInternal() {
    for (PeerId m : members) {
      if (!overlay->node(m).IsLeaf()) return m;
    }
    return kNullPeer;
  }
};

using InvariantCheckerDeathTest = ::testing::Test;

TEST(InvariantCheckerDeathTest, HealthyOverlayPasses) {
  Overlay o(1);
  o.overlay->CheckInvariants();  // must not die
}

TEST(InvariantCheckerDeathTest, DetectsRangeGap) {
  Overlay o(2);
  PeerId leaf = o.SomeLeaf();
  EXPECT_DEATH(
      {
        o.Mutable(leaf)->range.lo += 1;  // opens a 1-key gap
        o.overlay->CheckInvariants();
      },
      "range");
}

TEST(InvariantCheckerDeathTest, DetectsStaleCachedRange) {
  Overlay o(3);
  PeerId leaf = o.SomeLeaf();
  EXPECT_DEATH(
      {
        BatonNode* n = o.Mutable(leaf);
        NodeRef* adj = n->left_adj.valid() ? &n->left_adj : &n->right_adj;
        adj->range.hi += 12345;  // cache no longer matches the target
        o.overlay->CheckInvariants();
      },
      "adjacent");
}

TEST(InvariantCheckerDeathTest, DetectsBrokenAdjacencyChain) {
  Overlay o(4);
  PeerId internal = o.SomeInternal();
  EXPECT_DEATH(
      {
        BatonNode* n = o.Mutable(internal);
        // Point the right-adjacent link at the wrong peer.
        n->right_adj = n->parent.valid() ? n->parent : n->left_child;
        o.overlay->CheckInvariants();
      },
      "adjacent");
}

TEST(InvariantCheckerDeathTest, DetectsStaleChildBitInTable) {
  Overlay o(5);
  // Find a node with a populated routing table entry.
  for (PeerId m : o.members) {
    BatonNode* n = o.Mutable(m);
    for (RoutingTable* rt : {&n->left_rt, &n->right_rt}) {
      for (int i = 0; i < rt->size(); ++i) {
        if (rt->entry(i).valid()) {
          EXPECT_DEATH(
              {
                rt->entry(i).has_left = !rt->entry(i).has_left;
                o.overlay->CheckInvariants();
              },
              "child bit");
          return;
        }
      }
    }
  }
  FAIL() << "no populated routing entry found";
}

TEST(InvariantCheckerDeathTest, DetectsMisplacedKey) {
  Overlay o(6);
  PeerId leaf = o.SomeLeaf();
  EXPECT_DEATH(
      {
        BatonNode* n = o.Mutable(leaf);
        // Insert a key outside the node's range, bypassing routing.
        n->data.Insert(n->range.hi + 100);
        o.overlay->CheckInvariants();
      },
      "");
}

TEST(InvariantCheckerDeathTest, DetectsKeyAccountingDrift) {
  Overlay o(7);
  PeerId leaf = o.SomeLeaf();
  EXPECT_DEATH(
      {
        BatonNode* n = o.Mutable(leaf);
        if (!n->data.empty()) {
          Key k = n->data.Min();
          n->data.Erase(k);  // vanishes a key without the bookkeeping
        } else {
          n->data.Insert(n->range.lo);
        }
        o.overlay->CheckInvariants();
      },
      "key accounting");
}

TEST(InvariantCheckerDeathTest, DetectsClearedTableEntry) {
  Overlay o(8);
  for (PeerId m : o.members) {
    BatonNode* n = o.Mutable(m);
    for (RoutingTable* rt : {&n->left_rt, &n->right_rt}) {
      for (int i = 0; i < rt->size(); ++i) {
        if (rt->entry(i).valid()) {
          EXPECT_DEATH(
              {
                rt->entry(i).Clear();  // a link the occupancy says must exist
                o.overlay->CheckInvariants();
              },
              "missing table entry");
          return;
        }
      }
    }
  }
  FAIL() << "no populated routing entry found";
}

TEST(InvariantCheckerDeathTest, DetectsPendingDeferredUpdates) {
  Overlay o(9);
  EXPECT_DEATH(
      {
        o.net.SetDeferUpdates(true);
        auto joined = o.overlay->Join(o.members[0]);
        (void)joined;
        o.overlay->CheckInvariants();  // must refuse while updates in flight
      },
      "flush");
}

}  // namespace
}  // namespace baton
