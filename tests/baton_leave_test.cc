// Departure protocol (section III-B): safe leaves, Algorithm 2 replacement,
// content preservation, message bounds, and shrink-to-empty edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "baton/baton.h"

namespace baton {
namespace {

struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed, BatonConfig cfg = {}) {
    overlay = std::make_unique<BatonNetwork>(cfg, &net, seed);
    members.push_back(overlay->Bootstrap());
  }
  void Grow(size_t n, Rng* rng) {
    while (members.size() < n) {
      auto joined =
          overlay->Join(members[rng->NextBelow(members.size())]);
      ASSERT_TRUE(joined.ok());
      members.push_back(joined.value());
    }
  }
  void RemoveMember(PeerId p) {
    members.erase(std::find(members.begin(), members.end(), p));
  }
};

TEST(Leave, LastNodeLeavesEmptyOverlay) {
  Overlay o(1);
  EXPECT_TRUE(o.overlay->Leave(o.members[0]).ok());
  EXPECT_EQ(o.overlay->size(), 0u);
}

TEST(Leave, TwoNodesChildLeaves) {
  Overlay o(2);
  Rng rng(2);
  o.Grow(2, &rng);
  ASSERT_TRUE(o.overlay->Insert(o.members[0], 500).ok());
  PeerId child = o.members[1];
  EXPECT_TRUE(o.overlay->Leave(child).ok());
  EXPECT_EQ(o.overlay->size(), 1u);
  // The survivor owns the whole domain and all data.
  const BatonNode& root = o.overlay->node(o.overlay->root());
  EXPECT_EQ(root.range.lo, o.overlay->config().domain_lo);
  EXPECT_EQ(root.range.hi, o.overlay->config().domain_hi);
  EXPECT_EQ(o.overlay->total_keys(), 1u);
  o.overlay->CheckInvariants();
}

TEST(Leave, RootLeavesViaReplacement) {
  Overlay o(3);
  Rng rng(3);
  o.Grow(20, &rng);
  PeerId old_root = o.overlay->root();
  EXPECT_TRUE(o.overlay->Leave(old_root).ok());
  EXPECT_EQ(o.overlay->size(), 19u);
  EXPECT_NE(o.overlay->root(), kNullPeer);
  EXPECT_NE(o.overlay->root(), old_root);
  o.overlay->CheckInvariants();
}

TEST(Leave, InternalNodeReplacedKeepsData) {
  Overlay o(4);
  Rng rng(4);
  o.Grow(30, &rng);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1, 999999999))
                    .ok());
  }
  // Pick an internal node.
  PeerId internal = kNullPeer;
  for (PeerId m : o.members) {
    if (!o.overlay->node(m).IsLeaf()) {
      internal = m;
      break;
    }
  }
  ASSERT_NE(internal, kNullPeer);
  EXPECT_TRUE(o.overlay->Leave(internal).ok());
  EXPECT_EQ(o.overlay->total_keys(), 300u) << "graceful leave loses no data";
  o.overlay->CheckInvariants();
}

TEST(Leave, DepartedPeerIsUnreachable) {
  Overlay o(5);
  Rng rng(5);
  o.Grow(10, &rng);
  PeerId leaver = o.members[5];
  ASSERT_TRUE(o.overlay->Leave(leaver).ok());
  EXPECT_FALSE(o.overlay->InOverlay(leaver));
  EXPECT_FALSE(o.net.IsAlive(leaver));
  auto r = o.overlay->ExactSearch(leaver, 5);
  EXPECT_FALSE(r.ok());
}

TEST(Leave, ReplacementSearchDescends) {
  // Algorithm 2 "always goes down": replacement hop count stays below the
  // paper's O(log N) bound.
  Overlay o(6);
  Rng rng(6);
  o.Grow(512, &rng);
  double logn = std::log2(512.0);
  for (int i = 0; i < 40; ++i) {
    // Leave an internal node to force a replacement.
    PeerId internal = kNullPeer;
    for (PeerId m : o.members) {
      if (!o.overlay->node(m).IsLeaf()) {
        internal = m;
        break;
      }
    }
    ASSERT_NE(internal, kNullPeer);
    auto before = o.net.Snapshot();
    ASSERT_TRUE(o.overlay->Leave(internal).ok());
    o.RemoveMember(internal);
    uint64_t search = net::Network::DeltaOfType(
        before, o.net.Snapshot(), net::MsgType::kReplacementForward);
    EXPECT_LE(search, static_cast<uint64_t>(3 * logn));
  }
  o.overlay->CheckInvariants();
}

TEST(Leave, TotalCostWithinPaperBound) {
  // "the maximum number of messages required to update routing tables to
  // reflect changes is 8 log N" (plus the replacement search).
  Overlay o(7);
  Rng rng(7);
  o.Grow(256, &rng);
  double logn = std::log2(256.0);
  for (int i = 0; i < 50; ++i) {
    size_t idx = rng.NextBelow(o.members.size());
    auto before = o.net.Snapshot();
    ASSERT_TRUE(o.overlay->Leave(o.members[idx]).ok());
    o.members.erase(o.members.begin() + static_cast<long>(idx));
    uint64_t total = net::Network::Delta(before, o.net.Snapshot());
    EXPECT_LE(total, static_cast<uint64_t>(14 * logn))
        << "leave cost must stay O(log N)";
  }
}

TEST(Leave, ShrinkToSingleNodePreservesAllKeys) {
  Overlay o(8);
  Rng rng(8);
  o.Grow(64, &rng);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1, 999999999))
                    .ok());
  }
  while (o.overlay->size() > 1) {
    std::vector<PeerId> ms = o.overlay->Members();
    PeerId victim = ms[rng.NextBelow(ms.size())];
    ASSERT_TRUE(o.overlay->Leave(victim).ok());
  }
  EXPECT_EQ(o.overlay->total_keys(), 500u);
  PeerId last = o.overlay->Members()[0];
  EXPECT_EQ(o.overlay->node(last).data.size(), 500u);
}

TEST(Leave, DoubleLeaveRejected) {
  Overlay o(9);
  Rng rng(9);
  o.Grow(5, &rng);
  PeerId v = o.members[3];
  ASSERT_TRUE(o.overlay->Leave(v).ok());
  EXPECT_FALSE(o.overlay->Leave(v).ok());
}

// Parameterized churn: alternating joins and leaves at several ratios.
class ChurnTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ChurnTest, InvariantsSurviveChurn) {
  auto [leave_pct, seed] = GetParam();
  Overlay o(seed);
  Rng rng(Mix64(seed ^ 0xc0));
  o.Grow(100, &rng);
  for (int i = 0; i < 300; ++i) {
    bool leave = rng.NextBool(leave_pct / 100.0) && o.overlay->size() > 4;
    if (leave) {
      size_t idx = rng.NextBelow(o.members.size());
      ASSERT_TRUE(o.overlay->Leave(o.members[idx]).ok());
      o.members.erase(o.members.begin() + static_cast<long>(idx));
    } else {
      auto joined =
          o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
      ASSERT_TRUE(joined.ok());
      o.members.push_back(joined.value());
    }
    if (i % 25 == 0) o.overlay->CheckInvariants();
  }
  o.overlay->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Mix, ChurnTest,
    ::testing::Combine(::testing::Values(30, 50, 70),
                       ::testing::Values(11u, 22u)));

}  // namespace
}  // namespace baton
