// Network dynamics (Fig 8(i) machinery): deferred update propagation, stale
// routing state, fault-tolerant detours, and convergence after the flush.
#include <gtest/gtest.h>

#include "baton/baton.h"

namespace baton {
namespace {

struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed, BatonConfig cfg = {}) {
    overlay = std::make_unique<BatonNetwork>(cfg, &net, seed);
    members.push_back(overlay->Bootstrap());
  }
  void Grow(size_t n, Rng* rng) {
    while (members.size() < n) {
      auto joined = overlay->Join(members[rng->NextBelow(members.size())]);
      ASSERT_TRUE(joined.ok());
      members.push_back(joined.value());
    }
  }
};

TEST(Dynamics, DeferredJoinLeavesStaleCachesUntilFlush) {
  Overlay o(1);
  Rng rng(1);
  o.Grow(32, &rng);
  o.net.SetDeferUpdates(true);
  auto joined = o.overlay->Join(o.members[5]);
  ASSERT_TRUE(joined.ok());
  EXPECT_GT(o.net.deferred_pending(), 0u)
      << "third-party cache updates must be queued";
  o.net.FlushDeferred();
  o.net.SetDeferUpdates(false);
  o.members.push_back(joined.value());
  o.overlay->CheckInvariants();
}

TEST(Dynamics, QueriesSucceedDuringChurnWindow) {
  Overlay o(2);
  Rng rng(2);
  o.Grow(200, &rng);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1, 999999999))
                    .ok());
  }
  o.net.SetDeferUpdates(true);
  // Apply a churn batch with notifications in flight.
  for (int i = 0; i < 30; ++i) {
    if (rng.NextBool(0.5)) {
      auto joined =
          o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
      if (joined.ok()) o.members.push_back(joined.value());
    } else {
      size_t idx = rng.NextBelow(o.members.size());
      if (o.overlay->Leave(o.members[idx]).ok()) {
        o.members.erase(o.members.begin() + static_cast<long>(idx));
      }
    }
  }
  int ok_count = 0;
  const int kQ = 300;
  for (int i = 0; i < kQ; ++i) {
    auto r = o.overlay->ExactSearch(
        o.members[rng.NextBelow(o.members.size())],
        rng.UniformInt(1, 999999999));
    if (r.ok()) ++ok_count;
  }
  // Most queries must still route (the paper's point is the EXTRA cost, not
  // unavailability); with 15% of the network in flight, some routes starve.
  EXPECT_GT(ok_count, kQ / 2);
  o.net.FlushDeferred();
  o.net.SetDeferUpdates(false);
  o.overlay->RepairAllLinks();  // the stabilisation pass converges the rest
  for (int i = 0; i < 100; ++i) {
    auto r = o.overlay->ExactSearch(
        o.members[rng.NextBelow(o.members.size())],
        rng.UniformInt(1, 999999999));
    EXPECT_TRUE(r.ok()) << "after repair every query must route";
  }
}

TEST(Dynamics, ChurnWindowCostsExtraMessages) {
  auto run = [](int churn) {
    Overlay o(3);
    Rng rng(3);
    o.Grow(300, &rng);
    o.net.SetDeferUpdates(true);
    for (int i = 0; i < churn; ++i) {
      size_t idx = rng.NextBelow(o.members.size());
      if (o.overlay->Leave(o.members[idx]).ok()) {
        o.members.erase(o.members.begin() + static_cast<long>(idx));
      }
    }
    auto before = o.net.Snapshot();
    int done = 0;
    double msgs = 0;
    for (int i = 0; i < 400; ++i) {
      auto r = o.overlay->ExactSearch(
          o.members[rng.NextBelow(o.members.size())],
          rng.UniformInt(1, 999999999));
      if (r.ok()) ++done;
    }
    msgs = static_cast<double>(
        net::Network::Delta(before, o.net.Snapshot()));
    o.net.FlushDeferred();
    return msgs / std::max(done, 1);
  };
  double calm = run(0);
  double stormy = run(60);
  EXPECT_GT(stormy, calm) << "stale state must cost extra messages";
}

TEST(Dynamics, ApplyRefUpdateDropsMismatchedSlots) {
  // A deferred table update whose slot no longer matches (the holder moved)
  // must be dropped, not misapplied. Exercise via a join whose reverse
  // updates flush after the target left.
  Overlay o(4);
  Rng rng(4);
  o.Grow(64, &rng);
  o.net.SetDeferUpdates(true);
  auto joined = o.overlay->Join(o.members[10]);
  ASSERT_TRUE(joined.ok());
  o.members.push_back(joined.value());
  // Remove a node that was referenced by in-flight updates.
  for (int i = 0; i < 10; ++i) {
    size_t idx = rng.NextBelow(o.members.size());
    if (o.overlay->Leave(o.members[idx]).ok()) {
      o.members.erase(o.members.begin() + static_cast<long>(idx));
    }
  }
  // Flushing stale updates must not corrupt anyone (defensive apply).
  o.net.FlushDeferred();
  o.net.SetDeferUpdates(false);
  o.overlay->RepairAllLinks();
  // The overlay may be transiently unbalanced after heavy churn, but all
  // queries must still work and caches converge for the current members.
  int ok_count = 0;
  for (int i = 0; i < 100; ++i) {
    auto r = o.overlay->ExactSearch(
        o.members[rng.NextBelow(o.members.size())],
        rng.UniformInt(1, 999999999));
    if (r.ok()) ++ok_count;
  }
  EXPECT_EQ(ok_count, 100);
}

TEST(Dynamics, RepeatedChurnRoundsConverge) {
  Overlay o(5);
  Rng rng(5);
  o.Grow(100, &rng);
  for (int round = 0; round < 10; ++round) {
    o.net.SetDeferUpdates(true);
    for (int i = 0; i < 10; ++i) {
      if (rng.NextBool(0.5)) {
        auto joined =
            o.overlay->Join(o.members[rng.NextBelow(o.members.size())]);
        if (joined.ok()) o.members.push_back(joined.value());
      } else if (o.overlay->size() > 8) {
        size_t idx = rng.NextBelow(o.members.size());
        if (o.overlay->Leave(o.members[idx]).ok()) {
          o.members.erase(o.members.begin() + static_cast<long>(idx));
        }
      }
    }
    o.net.FlushDeferred();
    o.net.SetDeferUpdates(false);
    o.overlay->RepairAllLinks();
    // After each quiet period, queries route normally from everywhere.
    for (int i = 0; i < 50; ++i) {
      auto r = o.overlay->ExactSearch(
          o.members[rng.NextBelow(o.members.size())],
          rng.UniformInt(1, 999999999));
      EXPECT_TRUE(r.ok());
    }
  }
}

}  // namespace
}  // namespace baton
