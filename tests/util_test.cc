// Unit tests for util: rng, zipf, histogram, running stats, table printer,
// status/result.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/zipf.h"

namespace baton {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(17);
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(Rng, Mix64IsStable) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
}

// ---------- Zipf ----------

TEST(Zipf, RanksWithinBounds) {
  Rng rng(29);
  ZipfGenerator zipf(1000, 1.0);
  for (int i = 0; i < 5000; ++i) {
    uint64_t r = zipf.Sample(&rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 1000u);
  }
}

TEST(Zipf, SingleElementDomain) {
  Rng rng(31);
  ZipfGenerator zipf(1, 1.0);
  EXPECT_EQ(zipf.Sample(&rng), 1u);
}

TEST(Zipf, RankOneIsMostPopular) {
  Rng rng(37);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, Theta1MatchesHarmonicLaw) {
  // P(rank=k) ~ 1/k for theta=1: count(1)/count(4) should be ~4.
  Rng rng(41);
  ZipfGenerator zipf(1000, 1.0);
  std::vector<int> counts(1001, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Sample(&rng)];
  double ratio = static_cast<double>(counts[1]) / counts[4];
  EXPECT_NEAR(ratio, 4.0, 1.0);
}

TEST(Zipf, LargerThetaIsMoreSkewed) {
  Rng rng(43);
  ZipfGenerator mild(1000, 0.5), heavy(1000, 1.5);
  int mild_top = 0, heavy_top = 0;
  for (int i = 0; i < 20000; ++i) {
    if (mild.Sample(&rng) <= 10) ++mild_top;
    if (heavy.Sample(&rng) <= 10) ++heavy_top;
  }
  EXPECT_GT(heavy_top, mild_top);
}

TEST(Zipf, HugeDomainSamplesInBounds) {
  Rng rng(47);
  ZipfGenerator zipf(1ull << 40, 1.0);
  for (int i = 0; i < 1000; ++i) {
    uint64_t r = zipf.Sample(&rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 1ull << 40);
  }
}

// ---------- Histogram ----------

TEST(Histogram, BasicStats) {
  Histogram h;
  h.Add(1, 3);
  h.Add(5);
  h.Add(10);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 10);
  EXPECT_DOUBLE_EQ(h.Mean(), (3 * 1 + 5 + 10) / 5.0);
  EXPECT_EQ(h.CountAt(1), 3u);
  EXPECT_EQ(h.CountAt(7), 0u);
}

TEST(Histogram, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.Percentile(0.5), 50);
  EXPECT_EQ(h.Percentile(0.99), 99);
  EXPECT_EQ(h.Percentile(1.0), 100);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.Add(1, 2);
  b.Add(1, 3);
  b.Add(2);
  a.Merge(b);
  EXPECT_EQ(a.CountAt(1), 5u);
  EXPECT_EQ(a.CountAt(2), 1u);
  EXPECT_EQ(a.total_count(), 6u);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

// ---------- RunningStat ----------

TEST(RunningStat, MeanMinMax) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, Variance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);  // sample variance
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

// ---------- TablePrinter ----------

TEST(TablePrinter, TextAlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"1", "2"});
  std::string out = t.ToText();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(TablePrinter, CsvFormat) {
  TablePrinter t({"x", "y"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "x,y\n1,2\n");
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Int(42), "42");
}

// ---------- Status / Result ----------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::NotFound("key 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.ToString().find("key 7"), std::string::npos);
}

TEST(Result, HoldsValue) {
  Result<int> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(r.value_or(9), 5);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::Unavailable("down"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(9), 9);
}

}  // namespace
}  // namespace baton
