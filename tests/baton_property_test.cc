// Property-based testing: long random operation sequences (joins, leaves,
// failures+recovery, inserts, deletes, queries, with and without load
// balancing) against a reference model, validating the full invariant suite
// along the way. Parameterized over seeds (TEST_P) for coverage.
#include <gtest/gtest.h>

#include <set>

#include "baton/baton.h"

namespace baton {
namespace {

// Reference model: a sorted multiset of keys. The overlay must agree with it
// except for keys lost to injected failures (tracked conservatively).
class ModelCheckedOverlay {
 public:
  explicit ModelCheckedOverlay(uint64_t seed, BatonConfig cfg)
      : overlay_(cfg, &net_, seed), rng_(Mix64(seed ^ 0x9999)) {
    members_.push_back(overlay_.Bootstrap());
  }

  void RandomOp() {
    int pick = static_cast<int>(rng_.NextBelow(100));
    if (pick < 18) {
      DoJoin();
    } else if (pick < 30 && overlay_.size() > 4) {
      DoLeave();
    } else if (pick < 36 && overlay_.size() > 8) {
      DoFailAndRecover();
    } else if (pick < 66) {
      DoInsert();
    } else if (pick < 76) {
      DoDelete();
    } else if (pick < 92) {
      DoExact();
    } else {
      DoRange();
    }
  }

  void Check() {
    overlay_.CheckInvariants();
    EXPECT_EQ(overlay_.total_keys(), model_.size());
  }

  size_t ops_done() const { return ops_; }

 private:
  PeerId RandomMember() { return members_[rng_.NextBelow(members_.size())]; }

  void DoJoin() {
    auto joined = overlay_.Join(RandomMember());
    ASSERT_TRUE(joined.ok());
    members_.push_back(joined.value());
    ++ops_;
  }

  void DoLeave() {
    size_t idx = rng_.NextBelow(members_.size());
    ASSERT_TRUE(overlay_.Leave(members_[idx]).ok());
    members_.erase(members_.begin() + static_cast<long>(idx));
    ++ops_;
  }

  void DoFailAndRecover() {
    size_t idx = rng_.NextBelow(members_.size());
    PeerId victim = members_[idx];
    // The victim's keys are lost: drop them from the model too.
    Range r = overlay_.node(victim).range;
    auto lo = model_.lower_bound(r.lo);
    auto hi = model_.lower_bound(r.hi);
    model_.erase(lo, hi);
    overlay_.Fail(victim);
    ASSERT_TRUE(overlay_.RecoverFailure(victim).ok());
    members_.erase(members_.begin() + static_cast<long>(idx));
    ++ops_;
  }

  void DoInsert() {
    Key k = rng_.UniformInt(1, 999999999);
    ASSERT_TRUE(overlay_.Insert(RandomMember(), k).ok());
    model_.insert(k);
    ++ops_;
  }

  void DoDelete() {
    if (model_.empty() || rng_.NextBool(0.3)) {
      // Delete a key that (very likely) does not exist.
      Key k = rng_.UniformInt(1, 999999999);
      bool in_model = model_.count(k) > 0;
      Status s = overlay_.Delete(RandomMember(), k);
      EXPECT_EQ(s.ok(), in_model);
      if (in_model) model_.erase(model_.find(k));
    } else {
      // Delete an existing key.
      auto it = model_.begin();
      std::advance(it, static_cast<long>(rng_.NextBelow(model_.size())));
      Key k = *it;
      ASSERT_TRUE(overlay_.Delete(RandomMember(), k).ok());
      model_.erase(it);
    }
    ++ops_;
  }

  void DoExact() {
    Key k;
    bool expect_found;
    if (!model_.empty() && rng_.NextBool(0.6)) {
      auto it = model_.begin();
      std::advance(it, static_cast<long>(rng_.NextBelow(model_.size())));
      k = *it;
      expect_found = true;
    } else {
      k = rng_.UniformInt(1, 999999999);
      expect_found = model_.count(k) > 0;
    }
    auto r = overlay_.ExactSearch(RandomMember(), k);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().found, expect_found) << "key " << k;
    ++ops_;
  }

  void DoRange() {
    Key lo = rng_.UniformInt(1, 900000000);
    Key hi = lo + rng_.UniformInt(1, 50000000);
    auto r = overlay_.RangeSearch(RandomMember(), lo, hi);
    ASSERT_TRUE(r.ok());
    uint64_t expect = static_cast<uint64_t>(
        std::distance(model_.lower_bound(lo), model_.lower_bound(hi)));
    EXPECT_EQ(r.value().matches, expect) << "[" << lo << "," << hi << ")";
    ++ops_;
  }

  net::Network net_;
  BatonNetwork overlay_;
  Rng rng_;
  std::vector<PeerId> members_;
  std::multiset<Key> model_;
  size_t ops_ = 0;
};

class PropertySoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySoak, RandomOpsMatchModel) {
  ModelCheckedOverlay m(GetParam(), BatonConfig{});
  for (int i = 0; i < 600; ++i) {
    m.RandomOp();
    if (testing::Test::HasFatalFailure()) return;
    if (i % 50 == 49) m.Check();
  }
  m.Check();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySoak,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

class PropertySoakWithLb : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySoakWithLb, RandomOpsMatchModelUnderLoadBalancing) {
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_factor = 2.0;
  ModelCheckedOverlay m(GetParam(), cfg);
  for (int i = 0; i < 600; ++i) {
    m.RandomOp();
    if (testing::Test::HasFatalFailure()) return;
    if (i % 50 == 49) m.Check();
  }
  m.Check();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySoakWithLb,
                         ::testing::Range(uint64_t{50}, uint64_t{58}));

}  // namespace
}  // namespace baton
