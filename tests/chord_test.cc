// Chord baseline: ring construction, finger correctness, lookups, churn.
#include <gtest/gtest.h>

#include "chord/chord_network.h"
#include "util/rng.h"

namespace baton {
namespace chord {
namespace {

TEST(Chord, BootstrapAndSingleLookup) {
  net::Network net;
  ChordNetwork ring(&net, 11);
  PeerId a = ring.Bootstrap();
  ring.CheckInvariants();
  ASSERT_TRUE(ring.Insert(a, 12345).ok());
  auto res = ring.Lookup(a, 12345);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().found);
  EXPECT_EQ(res.value().node, a);
}

TEST(Chord, GrowRingAndCheckFingers) {
  net::Network net;
  ChordNetwork ring(&net, 17);
  PeerId a = ring.Bootstrap();
  std::vector<PeerId> members{a};
  for (int i = 1; i < 100; ++i) {
    auto joined = ring.Join(members[static_cast<size_t>(i - 1)]);
    ASSERT_TRUE(joined.ok());
    members.push_back(joined.value());
    if (i % 10 == 0) ring.CheckInvariants();
  }
  ring.CheckInvariants();
  EXPECT_EQ(ring.size(), 100u);
}

TEST(Chord, LookupsFindInsertedKeys) {
  net::Network net;
  ChordNetwork ring(&net, 23);
  PeerId a = ring.Bootstrap();
  std::vector<PeerId> members{a};
  for (int i = 1; i < 64; ++i) {
    members.push_back(ring.Join(members.back()).value());
  }
  Rng rng(7);
  std::vector<Key> keys;
  for (int i = 0; i < 1000; ++i) {
    Key k = rng.UniformInt(1, 999999999);
    keys.push_back(k);
    ASSERT_TRUE(ring.Insert(members[rng.NextBelow(members.size())], k).ok());
  }
  ring.CheckInvariants();
  for (int i = 0; i < 200; ++i) {
    Key k = keys[rng.NextBelow(keys.size())];
    auto res = ring.Lookup(members[rng.NextBelow(members.size())], k);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.value().found) << "key " << k;
  }
}

TEST(Chord, LookupHopsAreLogarithmic) {
  net::Network net;
  ChordNetwork ring(&net, 29);
  PeerId a = ring.Bootstrap();
  std::vector<PeerId> members{a};
  for (int i = 1; i < 256; ++i) {
    members.push_back(ring.Join(members.back()).value());
  }
  Rng rng(13);
  double total_hops = 0;
  const int kQueries = 500;
  for (int i = 0; i < kQueries; ++i) {
    auto res = ring.Lookup(members[rng.NextBelow(members.size())],
                           rng.UniformInt(1, 999999999));
    ASSERT_TRUE(res.ok());
    total_hops += res.value().hops;
  }
  // Expected ~ (1/2) log2 N = 4; allow generous slack but catch linear scans.
  EXPECT_LT(total_hops / kQueries, 3 * 8.0);
  EXPECT_GT(total_hops / kQueries, 1.0);
}

TEST(Chord, ChurnKeepsInvariants) {
  net::Network net;
  ChordNetwork ring(&net, 31);
  PeerId a = ring.Bootstrap();
  std::vector<PeerId> members{a};
  Rng rng(3);
  for (int i = 1; i < 80; ++i) {
    members.push_back(ring.Join(members[rng.NextBelow(members.size())]).value());
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        ring.Insert(members[rng.NextBelow(members.size())], rng.UniformInt(1, 999999999))
            .ok());
  }
  for (int round = 0; round < 40; ++round) {
    size_t idx = rng.NextBelow(members.size());
    PeerId victim = members[idx];
    ASSERT_TRUE(ring.Leave(victim).ok());
    members.erase(members.begin() + static_cast<long>(idx));
    ring.CheckInvariants();
    members.push_back(ring.Join(members[rng.NextBelow(members.size())]).value());
    ring.CheckInvariants();
  }
  EXPECT_EQ(ring.total_keys(), 500u);
}

}  // namespace
}  // namespace chord
}  // namespace baton
