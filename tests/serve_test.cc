// Tests for the serving engine: arrival processes, the FIFO node model's
// Lindley recursion, open-loop queueing behaviour, overload accounting
// (drops, timeouts), and the differential anchor -- closed-loop engine
// replay matches workload::Replay aggregates exactly on every backend.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/trail.h"
#include "overlay/registry.h"
#include "serve/arrivals.h"
#include "serve/engine.h"
#include "serve/node_model.h"
#include "sim/latency.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/replay.h"
#include "workload/workload.h"

namespace baton {
namespace {

using serve::Engine;
using serve::EngineConfig;
using serve::EngineResult;
using serve::NodeModel;
using workload::Op;
using workload::OpType;

// ---------- Arrivals ----------

TEST(Arrivals, FixedRateEmitsEvenGaps) {
  serve::FixedArrivals a(0.5);  // one request every 2 ticks
  for (sim::Time expect : {0u, 2u, 4u, 6u, 8u}) {
    EXPECT_EQ(a.Next(), expect);
  }
}

TEST(Arrivals, FixedRateAccumulatesFractionalGaps) {
  // Gap 2.5 ticks: individual emissions round down to the containing tick,
  // but the accumulator must not drift -- 100 gaps still span ~250 ticks.
  serve::FixedArrivals a(0.4);
  sim::Time t = 0;
  for (int i = 0; i <= 100; ++i) t = a.Next();
  EXPECT_GE(t, 248u);
  EXPECT_LE(t, 250u);
}

TEST(Arrivals, PoissonIsDeterministicPerSeedAndNonDecreasing) {
  serve::PoissonArrivals a(0.1, 7), b(0.1, 7), c(0.1, 8);
  sim::Time prev = 0;
  bool any_diff = false;
  for (int i = 0; i < 200; ++i) {
    sim::Time t = a.Next();
    EXPECT_EQ(t, b.Next());  // same seed, same schedule
    if (t != c.Next()) any_diff = true;
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_TRUE(any_diff);  // different seed, different schedule
  // 200 draws at mean gap 10: the long-run rate should be in the ballpark.
  EXPECT_GT(prev, 1000u);
  EXPECT_LT(prev, 4000u);
}

TEST(Arrivals, TraceReplaysAndExtendsWithTailGap) {
  serve::TraceArrivals a({5, 5, 8, 20});
  EXPECT_EQ(a.Next(), 5u);
  EXPECT_EQ(a.Next(), 5u);
  EXPECT_EQ(a.Next(), 8u);
  EXPECT_EQ(a.Next(), 20u);
  // Beyond the schedule: the final gap (20 - 8 = 12) repeats.
  EXPECT_EQ(a.Next(), 32u);
  EXPECT_EQ(a.Next(), 44u);
}

TEST(ArrivalsDeathTest, TraceRejectsDecreasingTimes) {
  EXPECT_DEATH(serve::TraceArrivals({5, 3}), "non-decreasing");
}

// ---------- NodeModel ----------

TEST(NodeModel, LindleyRecursionQueuesFifo) {
  NodeModel nm(10);
  auto a = nm.Admit(0, 0, 0);  // idle: starts immediately
  EXPECT_EQ(a.start, 0u);
  EXPECT_EQ(a.done, 10u);
  EXPECT_EQ(a.ahead, 0u);
  auto b = nm.Admit(0, 0, 0);  // behind a
  EXPECT_EQ(b.start, 10u);
  EXPECT_EQ(b.done, 20u);
  EXPECT_EQ(b.ahead, 1u);
  auto c = nm.Admit(0, 5, 0);  // behind a (in service) and b
  EXPECT_EQ(c.start, 20u);
  EXPECT_EQ(c.ahead, 2u);
  auto d = nm.Admit(0, 100, 0);  // node drained long ago
  EXPECT_EQ(d.start, 100u);
  EXPECT_EQ(d.ahead, 0u);
  // Independent nodes do not interact.
  auto e = nm.Admit(3, 0, 0);
  EXPECT_EQ(e.start, 0u);
  EXPECT_EQ(nm.served(0), 4u);
  EXPECT_EQ(nm.served(3), 1u);
  EXPECT_EQ(nm.peak_depth(0), 2u);
  EXPECT_EQ(nm.max_served(), 4u);
  EXPECT_EQ(nm.max_peak_depth(), 2u);
  EXPECT_EQ(nm.total_served(), 5u);
  EXPECT_EQ(nm.total_busy_ticks(), 50u);
}

TEST(NodeModel, QueueBoundRefusesWithoutSideEffects) {
  NodeModel nm(10);
  nm.Admit(0, 0, 2);
  nm.Admit(0, 0, 2);  // ahead=1, admitted (bound is 2)
  auto refused = nm.Admit(0, 0, 2);  // ahead=2 >= bound
  EXPECT_FALSE(refused.accepted);
  EXPECT_EQ(nm.served(0), 2u);   // state untouched by the refusal
  EXPECT_EQ(nm.total_served(), 2u);
  // The refused message consumed no capacity: the next admission after the
  // backlog drains starts exactly when the two admitted messages finish.
  auto later = nm.Admit(0, 20, 2);
  EXPECT_TRUE(later.accepted);
  EXPECT_EQ(later.start, 20u);
}

TEST(NodeModel, ZeroServiceTicksIsNullModel) {
  NodeModel nm(0);
  auto a = nm.Admit(0, 7, 0);
  auto b = nm.Admit(0, 7, 0);
  EXPECT_EQ(a.done, 7u);
  EXPECT_EQ(b.start, 7u);
  EXPECT_EQ(b.ahead, 0u);  // nothing ever waits
}

// ---------- Engine ----------

struct Built {
  std::unique_ptr<overlay::Overlay> ov;
  std::vector<net::PeerId> members;
};

/// Grows an overlay to n members via random contacts (bench_common is not
/// linked into tests).
Built Grow(const std::string& name, size_t n, uint64_t seed) {
  overlay::Config cfg;
  cfg.seed = seed;
  Built b;
  b.ov = overlay::Make(name, cfg);
  BATON_CHECK(b.ov != nullptr) << "unknown backend " << name;
  Rng rng(Mix64(seed));
  b.members.push_back(b.ov->Bootstrap());
  while (b.members.size() < n) {
    auto st = b.ov->Join(b.members[rng.NextBelow(b.members.size())]);
    BATON_CHECK(st.ok()) << st.status.ToString();
    b.members.push_back(st.peer);
  }
  return b;
}

workload::Trace ExactTrace(size_t ops, workload::KeyGenerator* gen,
                           uint64_t seed) {
  Rng rng(Mix64(seed));
  workload::Trace trace;
  trace.reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    trace.push_back({OpType::kExact, gen->Next(&rng), 0});
  }
  return trace;
}

void ExpectAggregatesEqual(const workload::ReplayResult& a,
                           const workload::ReplayResult& b) {
  for (size_t i = 0; i < static_cast<size_t>(workload::kNumOpTypes); ++i) {
    const workload::OpAggregate& x = a.per_op[i];
    const workload::OpAggregate& y = b.per_op[i];
    EXPECT_EQ(x.count, y.count) << "op " << i;
    EXPECT_EQ(x.ok, y.ok) << "op " << i;
    EXPECT_EQ(x.found, y.found) << "op " << i;
    EXPECT_EQ(x.skipped, y.skipped) << "op " << i;
    EXPECT_EQ(x.unsupported, y.unsupported) << "op " << i;
    EXPECT_EQ(x.messages, y.messages) << "op " << i;
    EXPECT_EQ(x.hops, y.hops) << "op " << i;
    EXPECT_EQ(x.latency, y.latency) << "op " << i;
    EXPECT_EQ(x.hops_hist, y.hops_hist) << "op " << i;
    EXPECT_EQ(x.messages_hist, y.messages_hist) << "op " << i;
    EXPECT_EQ(x.latency_hist, y.latency_hist) << "op " << i;
  }
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_latency, b.total_latency);
  EXPECT_EQ(a.exact_found, b.exact_found);
  EXPECT_EQ(a.range_matches, b.range_matches);
}

/// The differential anchor: the engine's closed-loop mode must reproduce
/// workload::Replay's aggregates EXACTLY -- same rng discipline, same
/// member bookkeeping, same OpStats -- on every registered backend. A mixed
/// trace (with membership churn woven in) exercises every ApplyOp path.
TEST(Engine, ClosedLoopMatchesReplayOnAllBackends) {
  for (const std::string& name : overlay::RegisteredNames()) {
    SCOPED_TRACE(name);
    Built ground = Grow(name, 40, 11);
    Built served = Grow(name, 40, 11);

    Rng trng(Mix64(99));
    workload::UniformKeys gen(1, 100000);
    workload::Trace trace =
        MakeMixedTrace(&trng, &gen, 30, 10, 40, 10, 500);
    // Weave membership churn through the query mix.
    trace.insert(trace.begin() + 5, {OpType::kJoin, 0, 0});
    trace.insert(trace.begin() + 25, {OpType::kLeave, 0, 0});
    trace.insert(trace.begin() + 45, {OpType::kJoin, 0, 0});

    workload::ReplayOptions ropts;
    ropts.record_answers = true;

    Rng r1(42);
    workload::ReplayResult expected =
        workload::Replay(*ground.ov, trace, &r1, &ground.members, ropts);

    EngineConfig cfg;
    cfg.replay = ropts;
    Engine engine(served.ov.get(), &served.members, cfg);
    Rng r2(42);
    EngineResult got = engine.RunClosedLoop(trace, &r2);

    ExpectAggregatesEqual(got.replay, expected);
    EXPECT_EQ(ground.members, served.members);
    uint64_t not_run = 0;
    for (int i = 0; i < workload::kNumOpTypes; ++i) {
      not_run += got.replay.per_op[static_cast<size_t>(i)].skipped +
                 got.replay.per_op[static_cast<size_t>(i)].unsupported;
    }
    EXPECT_EQ(got.admitted + not_run, trace.size());
    EXPECT_EQ(got.completed, got.admitted);  // nothing drops in closed loop
    EXPECT_EQ(got.dropped, 0u);
  }
}

TEST(Engine, SlowOpenLoopMatchesClosedLoopSojourns) {
  // Arrivals far slower than any op's drain time mean zero contention: the
  // open loop IS the closed loop on a stretched timeline, so the sojourn
  // distribution must match exactly.
  Built a = Grow("baton", 50, 3);
  Built b = Grow("baton", 50, 3);
  workload::UniformKeys gen(1, 100000);
  workload::Trace trace = ExactTrace(200, &gen, 5);

  EngineConfig cfg;
  Engine closed(a.ov.get(), &a.members, cfg);
  Rng r1(7);
  EngineResult base = closed.RunClosedLoop(trace, &r1);

  Engine open(b.ov.get(), &b.members, cfg);
  serve::FixedArrivals slow(0.0005);  // one op per 2000 ticks
  Rng r2(7);
  EngineResult res = open.Run(trace, &slow, &r2);

  EXPECT_EQ(res.completed, base.completed);
  EXPECT_EQ(res.sojourn, base.sojourn);
  EXPECT_EQ(res.peak_queue_depth, 0u);
}

TEST(Engine, FasterArrivalsQueueMore) {
  Built a = Grow("baton", 50, 3);
  Built b = Grow("baton", 50, 3);
  workload::UniformKeys gen(1, 100000);
  workload::Trace trace = ExactTrace(300, &gen, 5);

  EngineConfig cfg;
  cfg.service_ticks = 4;
  Engine slow_e(a.ov.get(), &a.members, cfg);
  serve::FixedArrivals slow(0.001);
  Rng r1(7);
  EngineResult uncontended = slow_e.Run(trace, &slow, &r1);

  Engine fast_e(b.ov.get(), &b.members, cfg);
  serve::FixedArrivals fast(2.0);
  Rng r2(7);
  EngineResult contended = fast_e.Run(trace, &fast, &r2);

  EXPECT_EQ(contended.completed, uncontended.completed);
  EXPECT_GT(contended.sojourn.Mean(), uncontended.sojourn.Mean());
  EXPECT_GT(contended.peak_queue_depth, uncontended.peak_queue_depth);
}

TEST(Engine, ZipfSkewQueuesWorseThanUniformAtEqualLoad) {
  // Same arrival schedule, same overlay shape; only which keys the queries
  // ask for differs. The skewed stream hammers the popular keys' owners,
  // so queueing delay -- not hop count -- drives its sojourn tail up.
  Built a = Grow("baton", 60, 13);
  Built b = Grow("baton", 60, 13);
  workload::UniformKeys uni(1, 100000000);
  workload::ZipfKeys zipf(1, 100000000, 0.99);
  workload::Trace ut = ExactTrace(400, &uni, 21);
  workload::Trace zt = ExactTrace(400, &zipf, 21);

  EngineConfig cfg;
  cfg.service_ticks = 2;
  double rate = 1.0;  // ops/tick, well past the hot node's capacity
  Engine ue(a.ov.get(), &a.members, cfg);
  serve::FixedArrivals ua(rate);
  Rng r1(7);
  EngineResult ur = ue.Run(ut, &ua, &r1);

  Engine ze(b.ov.get(), &b.members, cfg);
  serve::FixedArrivals za(rate);
  Rng r2(7);
  EngineResult zr = ze.Run(zt, &za, &r2);

  EXPECT_GT(zr.sojourn.Mean(), ur.sojourn.Mean());
  EXPECT_GT(zr.peak_queue_depth, ur.peak_queue_depth);
}

TEST(Engine, BoundedQueuesShedLoad) {
  Built a = Grow("baton", 40, 17);
  workload::UniformKeys gen(1, 100000);
  workload::Trace trace = ExactTrace(300, &gen, 9);

  EngineConfig cfg;
  cfg.service_ticks = 4;
  cfg.max_queue = 2;
  Engine engine(a.ov.get(), &a.members, cfg);
  serve::FixedArrivals burst(4.0);  // far past capacity
  Rng rng(7);
  EngineResult res = engine.Run(trace, &burst, &rng);

  EXPECT_GT(res.dropped, 0u);
  EXPECT_EQ(res.completed + res.dropped, res.admitted);
  // A message is refused once `max_queue` are already waiting, so no node's
  // backlog can exceed the bound.
  EXPECT_LE(res.peak_queue_depth, 2u);
}

TEST(Engine, DeadlinesTimeOutUnderOverload) {
  Built a = Grow("baton", 40, 17);
  workload::UniformKeys gen(1, 100000);
  workload::Trace trace = ExactTrace(300, &gen, 9);

  EngineConfig cfg;
  cfg.service_ticks = 4;
  cfg.timeout_ticks = 30;  // unbounded queues: sojourns grow past any deadline
  Engine engine(a.ov.get(), &a.members, cfg);
  serve::FixedArrivals burst(4.0);
  Rng rng(7);
  EngineResult res = engine.Run(trace, &burst, &rng);

  EXPECT_EQ(res.dropped, 0u);
  EXPECT_GT(res.timed_out, 0u);
  // Timed-out ops still completed (the deadline models client abandonment).
  EXPECT_EQ(res.completed, res.admitted);
  EXPECT_LE(res.timed_out, res.completed);
}

TEST(Engine, RestoresObserverChainAndFeedsIt) {
  // The engine splices its MessageTrail over whatever observer is already
  // attached; the original must keep seeing every message during the run
  // and be re-attached afterwards.
  Built a = Grow("baton", 30, 19);
  net::MessageTrail outer(nullptr);
  a.ov->network()->AttachObserver(&outer);
  size_t before = outer.hops().size();

  workload::UniformKeys gen(1, 100000);
  workload::Trace trace = ExactTrace(50, &gen, 9);
  EngineConfig cfg;
  Engine engine(a.ov.get(), &a.members, cfg);
  Rng rng(7);
  EngineResult res = engine.RunClosedLoop(trace, &rng);

  EXPECT_EQ(a.ov->network()->observer(), &outer);
  EXPECT_EQ(outer.hops().size(),
            before + res.replay.total_messages);  // chained through
}

TEST(Engine, ComposesWithAttachedSimKernel) {
  // With a latency model attached (the per-op critical-path machinery), the
  // engine must leave that kernel's queue alone -- and the per-op latency
  // aggregates must match what sequential Replay measures.
  Built ground = Grow("baton", 40, 23);
  Built served = Grow("baton", 40, 23);
  sim::EventQueue gq, sq;
  sim::ConstantLatency lat(3);
  ground.ov->AttachLatency(&gq, &lat, 77);
  served.ov->AttachLatency(&sq, &lat, 77);

  workload::UniformKeys gen(1, 100000);
  workload::Trace trace = ExactTrace(100, &gen, 9);

  Rng r1(7);
  workload::ReplayResult expected =
      workload::Replay(*ground.ov, trace, &r1, &ground.members, {});

  EngineConfig cfg;
  Engine engine(served.ov.get(), &served.members, cfg);
  Rng r2(7);
  EngineResult got = engine.RunClosedLoop(trace, &r2);

  ExpectAggregatesEqual(got.replay, expected);
  EXPECT_GT(got.replay.total_latency, 0u);  // the sim kernel kept measuring
}

TEST(Engine, PublishesServeMetrics) {
  Built a = Grow("baton", 30, 29);
  workload::UniformKeys gen(1, 100000);
  workload::Trace trace = ExactTrace(60, &gen, 9);

  obs::Registry reg;
  EngineConfig cfg;
  Engine engine(a.ov.get(), &a.members, cfg, &reg);
  serve::PoissonArrivals arrivals(0.2, 31);
  Rng rng(7);
  EngineResult res = engine.Run(trace, &arrivals, &rng);

  EXPECT_EQ(reg.CounterValue("serve.ops_admitted"), res.admitted);
  EXPECT_EQ(reg.CounterValue("serve.ops_completed"), res.completed);
  ASSERT_NE(reg.FindHist("serve.sojourn_ticks"), nullptr);
  EXPECT_EQ(reg.FindHist("serve.sojourn_ticks")->count(), res.completed);
  const std::vector<uint64_t>* served = reg.FindPerNode("serve.node.served");
  ASSERT_NE(served, nullptr);
  uint64_t sum = 0;
  for (uint64_t v : *served) sum += v;
  EXPECT_EQ(sum, res.replay.total_messages);
}

}  // namespace
}  // namespace baton
