// Network restructuring (section III-E), driven through the load balancer's
// forced joins and departures: chain mechanics, order preservation, the "no
// data movement" claim, and behaviour at the edges of the tree.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baton/baton.h"

namespace baton {
namespace {

struct Overlay {
  net::Network net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<PeerId> members;

  explicit Overlay(uint64_t seed, BatonConfig cfg = {}) {
    overlay = std::make_unique<BatonNetwork>(cfg, &net, seed);
    members.push_back(overlay->Bootstrap());
  }
  void Grow(size_t n, Rng* rng) {
    while (members.size() < n) {
      auto joined = overlay->Join(members[rng->NextBelow(members.size())]);
      ASSERT_TRUE(joined.ok());
      members.push_back(joined.value());
    }
  }
};

BatonConfig Lb(size_t threshold) {
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_threshold = threshold;
  return cfg;
}

// Drives the network until at least one forced restructure happened.
void ForceRestructures(Overlay* o, Rng* rng, Key hot_lo, Key hot_hi,
                       int min_shifts) {
  int guard = 60000;
  while (o->overlay->shift_sizes().total_count() <
             static_cast<uint64_t>(min_shifts) &&
         guard-- > 0) {
    ASSERT_TRUE(o->overlay
                    ->Insert(o->members[rng->NextBelow(o->members.size())],
                             rng->UniformInt(hot_lo, hot_hi))
                    .ok());
  }
  ASSERT_GE(o->overlay->shift_sizes().total_count(),
            static_cast<uint64_t>(min_shifts))
      << "hot inserts must eventually force recruits";
}

TEST(Restructure, PreservesInOrderRanges) {
  Overlay o(1, Lb(40));
  Rng rng(1);
  o.Grow(48, &rng);
  ForceRestructures(&o, &rng, 5000, 90000, 5);
  // CheckInvariants validates contiguity + ordering; assert it explicitly
  // for the restructured network.
  o.overlay->CheckInvariants();
  std::vector<PeerId> order = o.overlay->Members();
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(o.overlay->node(order[i]).range.lo,
              o.overlay->node(order[i + 1]).range.lo);
  }
}

TEST(Restructure, NoDataMovedByShifting) {
  // "No data movement is required due to network restructuring": nodes carry
  // their bags; only the two endpoints of a recruit move keys. Verify that
  // the per-peer key multiset union is invariant across a burst of forced
  // restructures.
  Overlay o(2, Lb(40));
  Rng rng(2);
  o.Grow(48, &rng);
  ForceRestructures(&o, &rng, 5000, 90000, 3);
  uint64_t before_total = o.overlay->total_keys();
  std::map<Key, int> before;
  for (PeerId m : o.overlay->Members()) {
    for (Key k : o.overlay->node(m).data.SortedKeys()) ++before[k];
  }
  ForceRestructures(&o, &rng, 5000, 90000,
                    static_cast<int>(o.overlay->shift_sizes().total_count()) + 3);
  std::map<Key, int> after;
  for (PeerId m : o.overlay->Members()) {
    for (Key k : o.overlay->node(m).data.SortedKeys()) ++after[k];
  }
  EXPECT_GE(o.overlay->total_keys(), before_total);
  // Every key present before is still present (inserts only added).
  for (const auto& [k, c] : before) {
    EXPECT_GE(after[k], c) << "key " << k << " lost by restructuring";
  }
}

TEST(Restructure, RecruitEndsAdjacentToOverloadedNode) {
  // After a recruit, the moved peer must sit in-order right next to the
  // node it relieved (it took the lower half of its range).
  Overlay o(3, Lb(50));
  Rng rng(3);
  o.Grow(32, &rng);
  ForceRestructures(&o, &rng, 1000, 50000, 1);
  o.overlay->CheckInvariants();  // adjacency + range contiguity prove it
}

TEST(Restructure, HotLowEndOfDomain) {
  // Force restructuring toward the extreme left edge of the tree: chains
  // must terminate even when one walk direction runs off the end.
  Overlay o(4, Lb(30));
  Rng rng(4);
  o.Grow(40, &rng);
  ForceRestructures(&o, &rng, 1, 2000, 4);
  o.overlay->CheckInvariants();
}

TEST(Restructure, HotHighEndOfDomain) {
  Overlay o(5, Lb(30));
  Rng rng(5);
  o.Grow(40, &rng);
  ForceRestructures(&o, &rng, 999990000, 999999998, 4);
  o.overlay->CheckInvariants();
}

TEST(Restructure, TinyNetworkRecruit) {
  // Recruiting with only a handful of nodes exercises the degenerate chain
  // endpoints (no adjacent on one side, root in the chain).
  Overlay o(6, Lb(25));
  Rng rng(6);
  o.Grow(5, &rng);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(o.overlay
                    ->Insert(o.members[rng.NextBelow(o.members.size())],
                             rng.UniformInt(1000, 200000))
                    .ok());
  }
  o.overlay->CheckInvariants();
  EXPECT_EQ(o.overlay->total_keys(), 600u);
}

TEST(Restructure, BalanceHeldAfterEveryBurst) {
  Overlay o(7, Lb(35));
  Rng rng(7);
  o.Grow(64, &rng);
  for (int burst = 0; burst < 10; ++burst) {
    Key lo = rng.UniformInt(1, 900000000);
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(o.overlay
                      ->Insert(o.members[rng.NextBelow(o.members.size())],
                               lo + rng.UniformInt(0, 1000000))
                      .ok());
    }
    o.overlay->CheckInvariants();  // includes the Definition-1 balance check
  }
}

TEST(Restructure, ShiftMessagesStayLogarithmicPerMover) {
  // "For each such node, adjusting the routing table requires O(log N)
  // effort": total restructure traffic / total movers ~ O(log N).
  Overlay o(8, Lb(40));
  Rng rng(8);
  o.Grow(128, &rng);
  auto before = o.net.Snapshot();
  ForceRestructures(&o, &rng, 1000, 100000, 12);
  auto after = o.net.Snapshot();
  uint64_t movers = o.overlay->shift_sizes().total_count() *
                    static_cast<uint64_t>(o.overlay->shift_sizes().Mean());
  uint64_t shift_msgs =
      net::Network::DeltaOfType(before, after, net::MsgType::kTableUpdate) +
      net::Network::DeltaOfType(before, after,
                                net::MsgType::kRestructureShift);
  ASSERT_GT(movers, 0u);
  EXPECT_LE(shift_msgs / movers, static_cast<uint64_t>(
      6 * std::log2(static_cast<double>(o.overlay->size())) + 12));
}

}  // namespace
}  // namespace baton
