// Unit tests for the discrete-event kernel and the message-counting network.
#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/latency.h"

namespace baton {
namespace {

// ---------- EventQueue ----------

TEST(EventQueue, RunsInTimeOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(7, [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  sim::EventQueue q;
  int fired = 0;
  q.ScheduleAt(1, [&] {
    ++fired;
    q.ScheduleAfter(5, [&] { ++fired; });
  });
  q.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 6u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  sim::EventQueue q;
  int fired = 0;
  q.ScheduleAt(5, [&] { ++fired; });
  q.ScheduleAt(15, [&] { ++fired; });
  q.RunUntil(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockToDeadline) {
  // Regression: RunUntil used to leave now() at the last processed event,
  // so a subsequent ScheduleAfter(d) fired at last_event + d instead of
  // t_end + d.
  sim::EventQueue q;
  int fired = 0;
  q.ScheduleAt(5, [&] { ++fired; });
  q.RunUntil(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 10u);
  q.ScheduleAfter(3, [&] { ++fired; });
  q.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 13u);
}

TEST(EventQueue, RunUntilNeverMovesClockBackwards) {
  sim::EventQueue q;
  q.ScheduleAt(20, [] {});
  q.RunUntilIdle();
  EXPECT_EQ(q.now(), 20u);
  q.RunUntil(10);  // deadline in the past: nothing to run, clock stays
  EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, RunUntilOnEmptyQueueStillAdvances) {
  sim::EventQueue q;
  EXPECT_EQ(q.RunUntil(42), 0u);
  EXPECT_EQ(q.now(), 42u);
}

TEST(EventQueue, MaxEventsBudget) {
  sim::EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.ScheduleAt(static_cast<sim::Time>(i), [&] { ++fired; });
  EXPECT_EQ(q.RunUntilIdle(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ManyInterleavedChainsAreDeterministic) {
  // The serving-engine workload: many in-flight operation chains, each hop
  // rescheduling the next from inside its handler, all racing on one queue.
  // Two identical schedules must produce identical interleavings.
  auto run = [](int chains, int hops) {
    sim::EventQueue q;
    std::vector<std::pair<int, sim::Time>> log;
    std::function<void(int, int)> hop = [&](int chain, int remaining) {
      log.emplace_back(chain, q.now());
      if (remaining > 0) {
        // Stagger by chain id so chains repeatedly collide at equal ticks.
        q.ScheduleAfter(static_cast<sim::Time>(1 + chain % 3),
                        [&hop, chain, remaining] { hop(chain, remaining - 1); });
      }
    };
    for (int c = 0; c < chains; ++c) {
      q.ScheduleAt(static_cast<sim::Time>(c % 4),
                   [&hop, c, hops] { hop(c, hops); });
    }
    q.RunUntilIdle();
    return log;
  };
  auto a = run(25, 12);
  auto b = run(25, 12);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 25u * 13u);
  // Chronological, with same-tick events in schedule order.
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i].second, a[i - 1].second);
}

TEST(EventQueue, SameTickOrderingAcrossInFlightChains) {
  // Events scheduled for the SAME tick from different handlers run in the
  // order they were scheduled, even through heap reshuffles.
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.ScheduleAt(5, [&q, &order, i] {
      // All of these land on tick 9 -- insertion order must hold.
      q.ScheduleAfter(4, [&order, i] { order.push_back(i); });
    });
  }
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, ScheduleAfterZeroFromHandlerRunsSameTick) {
  // A handler may schedule a continuation at the CURRENT tick; it runs
  // after every previously scheduled same-tick event, before time advances.
  sim::EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3, [&] {
    order.push_back(1);
    q.ScheduleAfter(0, [&] { order.push_back(3); });
  });
  q.ScheduleAt(3, [&] { order.push_back(2); });
  q.ScheduleAt(4, [&] { order.push_back(4); });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.now(), 4u);
}

TEST(Latency, ConstantAndUniform) {
  Rng rng(1);
  sim::ConstantLatency c(5);
  EXPECT_EQ(c.Sample(&rng), 5u);
  sim::UniformLatency u(2, 4);
  for (int i = 0; i < 100; ++i) {
    sim::Time t = u.Sample(&rng);
    EXPECT_GE(t, 2u);
    EXPECT_LE(t, 4u);
  }
}

TEST(LatencyDeathTest, UniformRejectsInvertedBounds) {
  // Regression: hi < lo used to underflow hi - lo + 1 in Sample() and draw
  // from an astronomically large bound instead of failing fast.
  EXPECT_DEATH(sim::UniformLatency(5, 2), "inverted");
}

// ---------- Network ----------

TEST(Network, RegisterAndLiveness) {
  net::Network net;
  net::PeerId a = net.Register();
  net::PeerId b = net.Register();
  EXPECT_NE(a, b);
  EXPECT_TRUE(net.IsAlive(a));
  net.MarkDead(a);
  EXPECT_FALSE(net.IsAlive(a));
  EXPECT_EQ(net.num_alive(), 1u);
  net.MarkAlive(a);
  EXPECT_EQ(net.num_alive(), 2u);
}

TEST(Network, CountsByType) {
  net::Network net;
  net::PeerId a = net.Register(), b = net.Register();
  net.Count(a, b, net::MsgType::kExactQuery);
  net.Count(a, b, net::MsgType::kExactQuery);
  net.Count(b, a, net::MsgType::kInsert);
  EXPECT_EQ(net.total_messages(), 3u);
  EXPECT_EQ(net.MessagesOfType(net::MsgType::kExactQuery), 2u);
  EXPECT_EQ(net.MessagesOfType(net::MsgType::kInsert), 1u);
}

TEST(Network, SnapshotDeltas) {
  net::Network net;
  net::PeerId a = net.Register(), b = net.Register();
  auto s0 = net.Snapshot();
  net.Count(a, b, net::MsgType::kInsert);
  net.Count(a, b, net::MsgType::kDelete);
  auto s1 = net.Snapshot();
  EXPECT_EQ(net::Network::Delta(s0, s1), 2u);
  EXPECT_EQ(net::Network::DeltaOfType(s0, s1, net::MsgType::kInsert), 1u);
}

TEST(Network, PerPeerProcessedCounts) {
  net::Network net;
  net::PeerId a = net.Register(), b = net.Register();
  net.Count(a, b, net::MsgType::kExactQuery);
  net.Count(a, b, net::MsgType::kInsert);
  EXPECT_EQ(net.ProcessedBy(b, net::MsgCategory::kQuery), 1u);
  EXPECT_EQ(net.ProcessedBy(b, net::MsgCategory::kData), 1u);
  EXPECT_EQ(net.ProcessedBy(a, net::MsgCategory::kQuery), 0u);
  net.ResetPerPeerCounters();
  EXPECT_EQ(net.ProcessedBy(b, net::MsgCategory::kQuery), 0u);
  EXPECT_EQ(net.total_messages(), 2u);  // global totals survive
}

TEST(Network, DeadReceiverProcessesNothing) {
  net::Network net;
  net::PeerId a = net.Register(), b = net.Register();
  net.MarkDead(b);
  net.Count(a, b, net::MsgType::kExactQuery);
  EXPECT_EQ(net.total_messages(), 1u);  // the wasted message is still paid
  EXPECT_EQ(net.ProcessedBy(b, net::MsgCategory::kQuery), 0u);
}

TEST(Network, DeferQueuesAndFlushes) {
  net::Network net;
  int applied = 0;
  net.Apply([&] { ++applied; });
  EXPECT_EQ(applied, 1);  // immediate when not deferring

  net.SetDeferUpdates(true);
  net.Apply([&] { ++applied; });
  net.Apply([&] { ++applied; });
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(net.deferred_pending(), 2u);
  EXPECT_EQ(net.FlushDeferred(), 2u);
  EXPECT_EQ(applied, 3);
}

TEST(Network, FlushRunsInFifoOrder) {
  net::Network net;
  net.SetDeferUpdates(true);
  std::vector<int> order;
  net.Apply([&] { order.push_back(1); });
  net.Apply([&] { order.push_back(2); });
  net.FlushDeferred();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Network, FlushRunsFollowOnUpdates) {
  net::Network net;
  net.SetDeferUpdates(true);
  int applied = 0;
  net.Apply([&] {
    ++applied;
    net.Apply([&] { ++applied; });  // queued during flush
  });
  EXPECT_EQ(net.FlushDeferred(), 2u);
  EXPECT_EQ(applied, 2);
}

TEST(Network, CounterReportListsTypes) {
  net::Network net;
  net::PeerId a = net.Register(), b = net.Register();
  net.Count(a, b, net::MsgType::kJoinForward);
  std::string report = net.CounterReport();
  EXPECT_NE(report.find("JoinForward"), std::string::npos);
}

// ---------- Network + sim attachment (critical-path frontier) ----------

TEST(NetworkSim, SequentialHopsAdd) {
  net::Network net;
  net::PeerId a = net.Register(), b = net.Register(), c = net.Register();
  sim::EventQueue q;
  sim::ConstantLatency lat(2);
  net.AttachSim(&q, &lat, 1);

  net.BeginOpWindow();
  net.Count(a, b, net::MsgType::kExactQuery);  // b available at 2
  net.Count(b, c, net::MsgType::kExactQuery);  // departs 2, arrives 4
  EXPECT_EQ(net.EndOpWindow(), 4u);
  EXPECT_EQ(q.now(), 4u);  // the queue clock is the op's completion time
  EXPECT_EQ(net.sim_delivered(), 2u);
  EXPECT_EQ(net.total_messages(), 2u);  // counters are unaffected
}

TEST(NetworkSim, ParallelFanOutTakesMaxNotSum) {
  net::Network net;
  net::PeerId a = net.Register(), b = net.Register(), c = net.Register(),
              d = net.Register();
  sim::EventQueue q;
  sim::ConstantLatency lat(3);
  net.AttachSim(&q, &lat, 1);

  net.BeginOpWindow();
  // One sender, three branches: all departures share a's frontier (0), so
  // the critical path is one latency, not three (the naive per-message sum
  // would be 9).
  net.Count(a, b, net::MsgType::kExactQuery);
  net.Count(a, c, net::MsgType::kExactQuery);
  net.Count(a, d, net::MsgType::kExactQuery);
  EXPECT_EQ(net.EndOpWindow(), 3u);
}

TEST(NetworkSim, WindowsResetTheFrontierAndAdvanceTheClock) {
  net::Network net;
  net::PeerId a = net.Register(), b = net.Register();
  sim::EventQueue q;
  sim::ConstantLatency lat(5);
  net.AttachSim(&q, &lat, 1);

  net.BeginOpWindow();
  net.Count(a, b, net::MsgType::kInsert);
  EXPECT_EQ(net.EndOpWindow(), 5u);

  // A fresh window starts from a clean frontier (b is immediately
  // available again) but the virtual clock keeps accumulating.
  net.BeginOpWindow();
  net.Count(b, a, net::MsgType::kInsert);
  EXPECT_EQ(net.EndOpWindow(), 5u);
  EXPECT_EQ(q.now(), 10u);
}

TEST(NetworkSim, DetachedWindowsReportZero) {
  net::Network net;
  net::PeerId a = net.Register(), b = net.Register();
  EXPECT_FALSE(net.sim_attached());
  net.BeginOpWindow();
  net.Count(a, b, net::MsgType::kInsert);
  EXPECT_EQ(net.EndOpWindow(), 0u);
  EXPECT_EQ(net.total_messages(), 1u);
}

TEST(NetworkSim, UniformSamplingIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    net::Network net;
    net::PeerId a = net.Register(), b = net.Register();
    sim::EventQueue q;
    sim::UniformLatency lat(1, 100);
    net.AttachSim(&q, &lat, seed);
    net.BeginOpWindow();
    for (int i = 0; i < 10; ++i) net.Count(a, b, net::MsgType::kInsert);
    return net.EndOpWindow();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // virtually certain over 10 draws in [1,100]
}

TEST(MsgType, EveryTypeHasNameAndCategory) {
  for (int i = 0; i < net::kNumMsgTypes; ++i) {
    auto t = static_cast<net::MsgType>(i);
    EXPECT_STRNE(net::MsgTypeName(t), "Unknown") << i;
    (void)net::CategoryOf(t);  // must not crash
  }
}

}  // namespace
}  // namespace baton
