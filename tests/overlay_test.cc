// Tests for the generic overlay layer: the registry/factory, capability
// flags, the OpStats accounting contract (OpStats::messages == the raw
// net::Network counter delta for every operation, on every backend), and
// the cross-backend differential property: two order-preserving backends
// replaying the same trace return identical query answer sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "overlay/baton_overlay.h"
#include "overlay/chord_overlay.h"
#include "overlay/multiway_overlay.h"
#include "overlay/registry.h"
#include "util/rng.h"
#include "workload/replay.h"
#include "workload/workload.h"

namespace baton {
namespace {

using overlay::Capability;
using overlay::Config;
using overlay::Make;
using overlay::OpStats;
using overlay::Overlay;

// Grows an overlay to n members via random contacts, mirroring the bench
// builder (bench_common is not linked into tests).
struct Built {
  std::unique_ptr<Overlay> ov;
  std::vector<net::PeerId> members;
};

Built Grow(const std::string& name, size_t n, uint64_t seed) {
  Config cfg;
  cfg.seed = seed;
  Built b;
  b.ov = Make(name, cfg);
  BATON_CHECK(b.ov != nullptr) << "unknown backend " << name;
  Rng rng(Mix64(seed));
  b.members.push_back(b.ov->Bootstrap());
  while (b.members.size() < n) {
    auto st = b.ov->Join(b.members[rng.NextBelow(b.members.size())]);
    BATON_CHECK(st.ok()) << st.status.ToString();
    b.members.push_back(st.peer);
  }
  return b;
}

TEST(OverlayRegistry, BuiltinsRegistered) {
  auto names = overlay::RegisteredNames();
  EXPECT_TRUE(std::count(names.begin(), names.end(), "baton") == 1);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "chord") == 1);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "d3tree") == 1);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "multiway") == 1);
  for (const auto& name : names) {
    EXPECT_TRUE(overlay::IsRegistered(name));
    auto ov = Make(name);
    ASSERT_NE(ov, nullptr);
    EXPECT_EQ(ov->name(), name);
    EXPECT_EQ(ov->size(), 0u);
  }
  EXPECT_FALSE(overlay::IsRegistered("no-such-backend"));
  EXPECT_EQ(Make("no-such-backend"), nullptr);
}

TEST(OverlayRegistry, RegisterAddsBackend) {
  overlay::Register("baton-alias", [](const Config& cfg) {
    return std::make_unique<overlay::BatonOverlay>(cfg.baton, cfg.seed);
  });
  EXPECT_TRUE(overlay::IsRegistered("baton-alias"));
  auto ov = Make("baton-alias");
  ASSERT_NE(ov, nullptr);
  ov->Bootstrap();
  EXPECT_EQ(ov->size(), 1u);
}

TEST(OverlayRegistry, ConfigReachesBackend) {
  Config cfg;
  cfg.baton.domain_lo = 100;
  cfg.baton.domain_hi = 200;
  cfg.multiway.max_fanout = 7;
  auto ov = Make("baton", cfg);
  EXPECT_EQ(overlay::BatonBackend(*ov).config().domain_lo, 100);
  auto mw = Make("multiway", cfg);
  EXPECT_EQ(overlay::MultiwayBackend(*mw).size(), 0u);
}

TEST(OverlayCapabilities, MatchBackendFeatureSets) {
  auto b = Make("baton");
  EXPECT_TRUE(b->Supports(Capability::kRangeSearch));
  EXPECT_TRUE(b->Supports(Capability::kFailRecovery));
  EXPECT_TRUE(b->Supports(Capability::kLoadBalance));
  EXPECT_TRUE(b->Supports(Capability::kOrderedGrowth));
  EXPECT_FALSE(b->Supports(Capability::kReplication));  // r = 0 by default

  Config replicated;
  replicated.baton.replication.factor = 2;
  EXPECT_TRUE(Make("baton", replicated)->Supports(Capability::kReplication));

  auto c = Make("chord");
  EXPECT_FALSE(c->Supports(Capability::kRangeSearch));
  EXPECT_FALSE(c->Supports(Capability::kFailRecovery));
  EXPECT_FALSE(c->Supports(Capability::kOrderedGrowth));

  auto m = Make("multiway");
  EXPECT_TRUE(m->Supports(Capability::kRangeSearch));
  EXPECT_FALSE(m->Supports(Capability::kFailRecovery));
  EXPECT_TRUE(m->Supports(Capability::kOrderedGrowth));

  auto d = Make("d3tree");
  EXPECT_TRUE(d->Supports(Capability::kRangeSearch));
  EXPECT_TRUE(d->Supports(Capability::kFailRecovery));
  EXPECT_TRUE(d->Supports(Capability::kLoadBalance));
  EXPECT_TRUE(d->Supports(Capability::kOrderedGrowth));
  EXPECT_FALSE(d->Supports(Capability::kReplication));

  EXPECT_EQ(overlay::CapabilitiesToString(0), "-");
  EXPECT_EQ(overlay::CapabilitiesToString(Capability::kRangeSearch |
                                          Capability::kFailRecovery),
            "range,fail");
}

TEST(OverlayCapabilities, UnsupportedOpsFailCleanly) {
  auto c = Grow("chord", 16, 7);
  OpStats st = c.ov->RangeSearch(c.members[0], 10, 1000);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(st.messages, 0u);

  auto m = Grow("multiway", 16, 7);
  EXPECT_FALSE(m.ov->Fail(m.members[1]).ok());
  EXPECT_FALSE(m.ov->RecoverAllFailures().ok());
}

// The OpStats contract: `messages` equals the raw counter delta the caller
// would have measured by snapshotting the network around the operation --
// for every operation, on every backend.
TEST(OverlayOpStats, MessagesMatchRawCounterDelta) {
  for (const std::string& name : overlay::RegisteredNames()) {
    SCOPED_TRACE(name);
    auto b = Grow(name, 32, 11);
    Rng rng(42);
    workload::UniformKeys keys(1, 1000000000);
    auto origin = [&]() {
      return b.members[rng.NextBelow(b.members.size())];
    };
    auto check = [&](auto&& op) {
      auto before = b.ov->network()->Snapshot();
      OpStats st = op();
      uint64_t raw =
          net::Network::Delta(before, b.ov->network()->Snapshot());
      EXPECT_EQ(st.messages, raw);
      return st;
    };

    std::vector<Key> inserted;
    for (int i = 0; i < 50; ++i) {
      Key k = keys.Next(&rng);
      inserted.push_back(k);
      EXPECT_TRUE(check([&] { return b.ov->Insert(origin(), k); }).ok());
    }
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(
          check([&] { return b.ov->ExactSearch(origin(), keys.Next(&rng)); })
              .ok());
      if (b.ov->Supports(Capability::kRangeSearch)) {
        Key lo = keys.Next(&rng);
        EXPECT_TRUE(
            check([&] { return b.ov->RangeSearch(origin(), lo, lo + 1000000); })
                .ok());
      }
    }
    for (int i = 0; i < 10; ++i) {
      OpStats joined = check([&] { return b.ov->Join(origin()); });
      ASSERT_TRUE(joined.ok());
      b.members.push_back(joined.peer);

      size_t idx = rng.NextBelow(b.members.size());
      OpStats left = check([&] { return b.ov->Leave(b.members[idx]); });
      ASSERT_TRUE(left.ok());
      b.members.erase(b.members.begin() + static_cast<long>(idx));
    }
    for (Key k : inserted) {
      EXPECT_TRUE(check([&] { return b.ov->Delete(origin(), k); }).ok());
    }
    b.ov->CheckInvariants();
  }
}

TEST(OverlayOpStats, SearchReportsFoundAndDestination) {
  for (const std::string& name : overlay::RegisteredNames()) {
    SCOPED_TRACE(name);
    auto b = Grow(name, 24, 3);
    ASSERT_TRUE(b.ov->Insert(b.members[0], 123456789).ok());
    OpStats hit = b.ov->ExactSearch(b.members[5], 123456789);
    EXPECT_TRUE(hit.ok());
    EXPECT_TRUE(hit.found);
    EXPECT_NE(hit.peer, net::kNullPeer);
    OpStats miss = b.ov->ExactSearch(b.members[5], 987654321);
    EXPECT_TRUE(miss.ok());
    EXPECT_FALSE(miss.found);
  }
}

TEST(OverlayFailRecovery, BatonRecoversThroughGenericInterface) {
  auto b = Grow("baton", 24, 19);
  Rng rng(5);
  workload::UniformKeys keys(1, 1000000000);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        b.ov->Insert(b.members[rng.NextBelow(b.members.size())], keys.Next(&rng))
            .ok());
  }
  net::PeerId victim = b.members[7];
  EXPECT_TRUE(b.ov->Fail(victim).ok());
  OpStats rec = b.ov->RecoverAllFailures();
  EXPECT_TRUE(rec.ok());
  EXPECT_GT(rec.messages, 0u);
  b.members.erase(b.members.begin() + 7);
  b.ov->CheckInvariants();
  EXPECT_EQ(b.ov->size(), 23u);
}

// The differential property the unified API exists for: two
// order-preserving backends driven through the same trace (same seed, same
// rng stream) must agree on every query answer -- found/not-found per exact
// query and match count per range query. (Chord is excluded: its Lookup
// checks a *hashed* id, so answer sets are only comparable between
// order-preserving backends.)
TEST(OverlayDifferential, BatonAndMultiwayAgreeOnAllAnswers) {
  constexpr size_t kN = 48;
  constexpr uint64_t kSeed = 77;

  // Same trace for both: inserts, deletes, queries, ranges, churn.
  auto make_trace = [&](Rng* rng, workload::KeyGenerator* gen) {
    workload::ChurnMix mix;
    mix.joins = 10;
    mix.leaves = 10;
    mix.inserts = 300;
    mix.exacts = 200;
    mix.ranges = 40;
    mix.range_width = 50000000;
    return workload::MakeChurnTrace(rng, gen, mix);
  };

  workload::ReplayOptions opts;
  opts.record_answers = true;

  std::vector<workload::ReplayResult> results;
  std::vector<uint64_t> key_totals;
  for (const std::string name : {"baton", "multiway"}) {
    SCOPED_TRACE(name);
    auto b = Grow(name, kN, kSeed);
    // Seed the same data so the key sets match before the trace starts.
    Rng load_rng(123);
    workload::UniformKeys load_keys(1, 1000000000);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(b.ov->Insert(b.members[load_rng.NextBelow(b.members.size())],
                               load_keys.Next(&load_rng))
                      .ok());
    }
    Rng trace_rng(999);
    workload::UniformKeys gen(1, 1000000000);
    auto trace = make_trace(&trace_rng, &gen);
    Rng replay_rng(31337);
    results.push_back(
        workload::Replay(*b.ov, trace, &replay_rng, &b.members, opts));
    b.ov->CheckInvariants();
    key_totals.push_back(b.ov->total_keys());
  }

  const auto& baton_res = results[0];
  const auto& multiway_res = results[1];
  // Both executed every query (no skips), and answer sets are identical.
  ASSERT_EQ(baton_res.exact_found.size(), 200u);
  ASSERT_EQ(multiway_res.exact_found.size(), 200u);
  EXPECT_EQ(baton_res.exact_found, multiway_res.exact_found);
  ASSERT_EQ(baton_res.range_matches.size(), 40u);
  EXPECT_EQ(baton_res.range_matches, multiway_res.range_matches);
  // The data sets themselves stayed identical through the churn.
  EXPECT_EQ(key_totals[0], key_totals[1]);
  // Sanity: the trace exercised both hit and miss paths.
  EXPECT_GT(baton_res.of(workload::OpType::kExact).count, 0u);
  EXPECT_GT(std::count(baton_res.exact_found.begin(),
                       baton_res.exact_found.end(), false),
            0);
}

// Replay's aggregates are consistent with the raw network counters: the sum
// of all per-op message aggregates equals the total counter delta across
// the replay (nothing measured twice, nothing missed).
TEST(OverlayDifferential, ReplayAggregatesMatchNetworkTotals) {
  for (const std::string& name : overlay::RegisteredNames()) {
    SCOPED_TRACE(name);
    auto b = Grow(name, 32, 13);
    Rng trace_rng(7);
    workload::UniformKeys gen(1, 1000000000);
    workload::ChurnMix mix;
    mix.joins = 8;
    mix.leaves = 8;
    mix.failures = 4;
    mix.inserts = 100;
    mix.exacts = 50;
    mix.ranges = 10;
    mix.range_width = 10000000;
    auto trace = workload::MakeChurnTrace(&trace_rng, &gen, mix);

    Rng replay_rng(55);
    auto before = b.ov->network()->Snapshot();
    auto res = workload::Replay(*b.ov, trace, &replay_rng, &b.members);
    uint64_t raw = net::Network::Delta(before, b.ov->network()->Snapshot());
    EXPECT_EQ(res.total_messages, raw);

    uint64_t per_op_sum = 0;
    for (const auto& agg : res.per_op) per_op_sum += agg.messages;
    EXPECT_EQ(per_op_sum, raw);
    b.ov->CheckInvariants();
  }
}

}  // namespace
}  // namespace baton
