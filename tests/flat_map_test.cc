// Unit tests for util::FlatMap64 / util::FlatSet64, the open-addressing
// containers behind the position directory and the replication indexes:
// insert/find/erase semantics, rehash growth, tombstone reuse and in-place
// reclamation, plus a randomized differential test against
// std::unordered_map over mixed op sequences.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "util/flat_map.h"
#include "util/rng.h"

namespace baton {
namespace util {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap64<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(7), nullptr);
  EXPECT_TRUE(m.Insert(7, 70));
  EXPECT_FALSE(m.Insert(7, 71)) << "duplicate insert must be rejected";
  ASSERT_NE(m.Find(7), nullptr);
  EXPECT_EQ(*m.Find(7), 70) << "rejected insert must not overwrite";
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.Erase(7));
  EXPECT_FALSE(m.Erase(7));
  EXPECT_EQ(m.Find(7), nullptr);
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, GetOrInsertDefaultConstructs) {
  FlatMap64<std::vector<int>> m;
  m.GetOrInsert(3).push_back(1);
  m.GetOrInsert(3).push_back(2);
  ASSERT_NE(m.Find(3), nullptr);
  EXPECT_EQ(m.Find(3)->size(), 2u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GrowsThroughManyInserts) {
  FlatMap64<uint64_t> m;
  for (uint64_t k = 0; k < 10000; ++k) EXPECT_TRUE(m.Insert(k * 977, k));
  EXPECT_EQ(m.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(m.Find(k * 977), nullptr) << k;
    EXPECT_EQ(*m.Find(k * 977), k);
  }
  EXPECT_EQ(m.Find(977 * 10001), nullptr);
}

TEST(FlatMap, TombstoneSlotsAreReused) {
  FlatMap64<int> m;
  m.Reserve(64);
  size_t cap = m.Capacity();
  // Churn far more keys through the table than its capacity: erased slots
  // must be reused (directly or via in-place reclamation) without the value
  // set ever exceeding the reserved load.
  for (uint64_t k = 0; k < 10 * cap; ++k) {
    EXPECT_TRUE(m.Insert(k, static_cast<int>(k)));
    EXPECT_TRUE(m.Erase(k));
  }
  EXPECT_EQ(m.size(), 0u);
  // The table may have rehashed in place to purge tombstones, but must not
  // have ballooned: 10x capacity worth of dead keys fits in the same table.
  EXPECT_LE(m.Capacity(), cap) << "erase churn must not grow the table";
}

TEST(FlatMap, InsertReusesTombstoneOfErasedKey) {
  FlatMap64<int> m;
  m.Reserve(16);
  EXPECT_TRUE(m.Insert(5, 50));
  EXPECT_TRUE(m.Erase(5));
  EXPECT_EQ(m.TombstoneCount(), 1u);
  EXPECT_TRUE(m.Insert(5, 51));
  EXPECT_EQ(m.TombstoneCount(), 0u) << "re-insert must reclaim the tombstone";
  EXPECT_EQ(*m.Find(5), 51);
}

TEST(FlatMap, EraseDropsPayloadEagerly) {
  FlatMap64<std::vector<int>> m;
  m.GetOrInsert(1).assign(1000, 7);
  EXPECT_TRUE(m.Erase(1));
  // Re-inserting must see a fresh default value, not the stale payload.
  EXPECT_TRUE(m.GetOrInsert(1).empty());
}

TEST(FlatMap, ForEachVisitsExactlyLiveEntries) {
  FlatMap64<int> m;
  for (uint64_t k = 1; k <= 100; ++k) m.Insert(k, static_cast<int>(k));
  for (uint64_t k = 1; k <= 100; k += 2) m.Erase(k);  // drop odd keys
  uint64_t sum = 0;
  size_t count = 0;
  m.ForEach([&](uint64_t key, const int& v) {
    EXPECT_EQ(key % 2, 0u);
    EXPECT_EQ(static_cast<int>(key), v);
    sum += key;
    ++count;
  });
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(sum, 2550u);  // 2 + 4 + ... + 100
}

TEST(FlatMap, ReserveAvoidsRehash) {
  FlatMap64<int> m;
  m.Reserve(1000);
  size_t cap = m.Capacity();
  for (uint64_t k = 0; k < 1000; ++k) m.Insert(k, 1);
  EXPECT_EQ(m.Capacity(), cap);
}

TEST(FlatMap, DifferentialAgainstUnorderedMap) {
  Rng rng(0xf1a7);
  FlatMap64<uint64_t> m;
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int step = 0; step < 200000; ++step) {
    // Small key domain so inserts, re-inserts, hits and misses all occur.
    uint64_t key = rng.NextBelow(512);
    switch (rng.NextBelow(4)) {
      case 0: {
        uint64_t v = rng.Next();
        EXPECT_EQ(m.Insert(key, v), ref.emplace(key, v).second);
        break;
      }
      case 1:
        EXPECT_EQ(m.Erase(key), ref.erase(key) > 0);
        break;
      case 2: {
        auto it = ref.find(key);
        uint64_t* got = m.Find(key);
        if (it == ref.end()) {
          EXPECT_EQ(got, nullptr);
        } else {
          ASSERT_NE(got, nullptr);
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
      default:
        EXPECT_EQ(m.Contains(key), ref.count(key) > 0);
    }
    EXPECT_EQ(m.size(), ref.size());
  }
  // Final full-content comparison via ForEach.
  size_t seen = 0;
  m.ForEach([&](uint64_t key, const uint64_t& v) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
    ++seen;
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatSet, InsertContainsErase) {
  FlatSet64 s;
  EXPECT_TRUE(s.Insert(42));
  EXPECT_FALSE(s.Insert(42));
  EXPECT_TRUE(s.Contains(42));
  EXPECT_FALSE(s.Contains(43));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Erase(42));
  EXPECT_FALSE(s.Erase(42));
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, ForEach) {
  FlatSet64 s;
  for (uint64_t k = 0; k < 10; ++k) s.Insert(k);
  s.Erase(3);
  uint64_t sum = 0;
  s.ForEach([&](uint64_t k) { sum += k; });
  EXPECT_EQ(sum, 45u - 3u);
}

}  // namespace
}  // namespace util
}  // namespace baton
