// Unit tests for KeyBag (per-node key storage with order statistics).
#include <gtest/gtest.h>

#include "baton/key_bag.h"
#include "util/rng.h"

namespace baton {
namespace {

TEST(KeyBag, InsertContainsErase) {
  KeyBag bag;
  EXPECT_TRUE(bag.empty());
  bag.Insert(5);
  bag.Insert(3);
  bag.Insert(5);
  EXPECT_EQ(bag.size(), 3u);
  EXPECT_TRUE(bag.Contains(5));
  EXPECT_TRUE(bag.Contains(3));
  EXPECT_FALSE(bag.Contains(4));
  EXPECT_TRUE(bag.Erase(5));
  EXPECT_EQ(bag.size(), 2u);
  EXPECT_TRUE(bag.Contains(5));  // one duplicate left
  EXPECT_TRUE(bag.Erase(5));
  EXPECT_FALSE(bag.Contains(5));
  EXPECT_FALSE(bag.Erase(5));
}

TEST(KeyBag, MinMaxMedian) {
  KeyBag bag;
  for (Key k : {9, 1, 5, 7, 3}) bag.Insert(k);
  EXPECT_EQ(bag.Min(), 1);
  EXPECT_EQ(bag.Max(), 9);
  EXPECT_EQ(bag.Median(), 5);  // upper median of {1,3,5,7,9}
}

TEST(KeyBag, KthSmallest) {
  KeyBag bag;
  for (Key k : {40, 10, 30, 20}) bag.Insert(k);
  EXPECT_EQ(bag.Kth(0), 10);
  EXPECT_EQ(bag.Kth(1), 20);
  EXPECT_EQ(bag.Kth(3), 40);
}

TEST(KeyBag, CountInRange) {
  KeyBag bag;
  for (Key k = 0; k < 100; k += 10) bag.Insert(k);
  EXPECT_EQ(bag.CountInRange(0, 100), 10u);
  EXPECT_EQ(bag.CountInRange(10, 30), 2u);   // 10, 20
  EXPECT_EQ(bag.CountInRange(15, 15), 0u);
  EXPECT_EQ(bag.CountInRange(95, 200), 0u);
}

TEST(KeyBag, ExtractBelowSplitsExactly) {
  KeyBag bag;
  for (Key k = 1; k <= 10; ++k) bag.Insert(k);
  KeyBag low = bag.ExtractBelow(6);
  EXPECT_EQ(low.size(), 5u);
  EXPECT_EQ(low.Max(), 5);
  EXPECT_EQ(bag.Min(), 6);
  EXPECT_EQ(bag.size(), 5u);
}

TEST(KeyBag, ExtractAtLeast) {
  KeyBag bag;
  for (Key k = 1; k <= 10; ++k) bag.Insert(k);
  KeyBag high = bag.ExtractAtLeast(8);
  EXPECT_EQ(high.size(), 3u);
  EXPECT_EQ(high.Min(), 8);
  EXPECT_EQ(bag.Max(), 7);
}

TEST(KeyBag, ExtractBelowWithDuplicatesAtPivot) {
  KeyBag bag;
  for (Key k : {1, 2, 2, 2, 3}) bag.Insert(k);
  KeyBag low = bag.ExtractBelow(2);
  EXPECT_EQ(low.size(), 1u);  // only the 1; all 2s stay
  EXPECT_EQ(bag.Min(), 2);
}

TEST(KeyBag, ExtractLowestHighest) {
  KeyBag bag;
  for (Key k = 1; k <= 10; ++k) bag.Insert(k);
  KeyBag lo = bag.ExtractLowest(3);
  EXPECT_EQ(lo.SortedKeys(), (std::vector<Key>{1, 2, 3}));
  KeyBag hi = bag.ExtractHighest(2);
  EXPECT_EQ(hi.SortedKeys(), (std::vector<Key>{9, 10}));
  EXPECT_EQ(bag.size(), 5u);
}

TEST(KeyBag, ExtractMoreThanSizeTakesAll) {
  KeyBag bag;
  bag.Insert(1);
  KeyBag all = bag.ExtractLowest(100);
  EXPECT_EQ(all.size(), 1u);
  EXPECT_TRUE(bag.empty());
}

TEST(KeyBag, AbsorbMovesEverything) {
  KeyBag a, b;
  a.Insert(1);
  b.Insert(2);
  b.Insert(3);
  a.Absorb(&b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.SortedKeys(), (std::vector<Key>{1, 2, 3}));
}

TEST(KeyBag, LazyBufferFlushTransparency) {
  // Exercise the flush threshold: interleave inserts and reads past the
  // buffer size; results must match a reference multiset.
  KeyBag bag;
  Rng rng(3);
  std::multiset<Key> ref;
  for (int i = 0; i < 1000; ++i) {
    Key k = rng.UniformInt(0, 99);
    if (rng.NextBool(0.7)) {
      bag.Insert(k);
      ref.insert(k);
    } else {
      bool erased = bag.Erase(k);
      auto it = ref.find(k);
      EXPECT_EQ(erased, it != ref.end());
      if (it != ref.end()) ref.erase(it);
    }
    EXPECT_EQ(bag.size(), ref.size());
  }
  std::vector<Key> expect(ref.begin(), ref.end());
  EXPECT_EQ(bag.SortedKeys(), expect);
}

TEST(KeyBag, NegativeKeysSupported) {
  KeyBag bag;
  bag.Insert(-5);
  bag.Insert(5);
  EXPECT_EQ(bag.Min(), -5);
  EXPECT_EQ(bag.CountInRange(-10, 0), 1u);
}

}  // namespace
}  // namespace baton
