// Unit tests for KeyBag (per-node key storage with order statistics).
#include <gtest/gtest.h>

#include "baton/key_bag.h"
#include "util/rng.h"

namespace baton {
namespace {

TEST(KeyBag, InsertContainsErase) {
  KeyBag bag;
  EXPECT_TRUE(bag.empty());
  bag.Insert(5);
  bag.Insert(3);
  bag.Insert(5);
  EXPECT_EQ(bag.size(), 3u);
  EXPECT_TRUE(bag.Contains(5));
  EXPECT_TRUE(bag.Contains(3));
  EXPECT_FALSE(bag.Contains(4));
  EXPECT_TRUE(bag.Erase(5));
  EXPECT_EQ(bag.size(), 2u);
  EXPECT_TRUE(bag.Contains(5));  // one duplicate left
  EXPECT_TRUE(bag.Erase(5));
  EXPECT_FALSE(bag.Contains(5));
  EXPECT_FALSE(bag.Erase(5));
}

TEST(KeyBag, MinMaxMedian) {
  KeyBag bag;
  for (Key k : {9, 1, 5, 7, 3}) bag.Insert(k);
  EXPECT_EQ(bag.Min(), 1);
  EXPECT_EQ(bag.Max(), 9);
  EXPECT_EQ(bag.Median(), 5);  // upper median of {1,3,5,7,9}
}

TEST(KeyBag, KthSmallest) {
  KeyBag bag;
  for (Key k : {40, 10, 30, 20}) bag.Insert(k);
  EXPECT_EQ(bag.Kth(0), 10);
  EXPECT_EQ(bag.Kth(1), 20);
  EXPECT_EQ(bag.Kth(3), 40);
}

TEST(KeyBag, CountInRange) {
  KeyBag bag;
  for (Key k = 0; k < 100; k += 10) bag.Insert(k);
  EXPECT_EQ(bag.CountInRange(0, 100), 10u);
  EXPECT_EQ(bag.CountInRange(10, 30), 2u);   // 10, 20
  EXPECT_EQ(bag.CountInRange(15, 15), 0u);
  EXPECT_EQ(bag.CountInRange(95, 200), 0u);
}

TEST(KeyBag, ExtractBelowSplitsExactly) {
  KeyBag bag;
  for (Key k = 1; k <= 10; ++k) bag.Insert(k);
  KeyBag low = bag.ExtractBelow(6);
  EXPECT_EQ(low.size(), 5u);
  EXPECT_EQ(low.Max(), 5);
  EXPECT_EQ(bag.Min(), 6);
  EXPECT_EQ(bag.size(), 5u);
}

TEST(KeyBag, ExtractAtLeast) {
  KeyBag bag;
  for (Key k = 1; k <= 10; ++k) bag.Insert(k);
  KeyBag high = bag.ExtractAtLeast(8);
  EXPECT_EQ(high.size(), 3u);
  EXPECT_EQ(high.Min(), 8);
  EXPECT_EQ(bag.Max(), 7);
}

TEST(KeyBag, ExtractBelowWithDuplicatesAtPivot) {
  KeyBag bag;
  for (Key k : {1, 2, 2, 2, 3}) bag.Insert(k);
  KeyBag low = bag.ExtractBelow(2);
  EXPECT_EQ(low.size(), 1u);  // only the 1; all 2s stay
  EXPECT_EQ(bag.Min(), 2);
}

TEST(KeyBag, ExtractLowestHighest) {
  KeyBag bag;
  for (Key k = 1; k <= 10; ++k) bag.Insert(k);
  KeyBag lo = bag.ExtractLowest(3);
  EXPECT_EQ(lo.SortedKeys(), (std::vector<Key>{1, 2, 3}));
  KeyBag hi = bag.ExtractHighest(2);
  EXPECT_EQ(hi.SortedKeys(), (std::vector<Key>{9, 10}));
  EXPECT_EQ(bag.size(), 5u);
}

TEST(KeyBag, ExtractMoreThanSizeTakesAll) {
  KeyBag bag;
  bag.Insert(1);
  KeyBag all = bag.ExtractLowest(100);
  EXPECT_EQ(all.size(), 1u);
  EXPECT_TRUE(bag.empty());
}

TEST(KeyBag, AbsorbMovesEverything) {
  KeyBag a, b;
  a.Insert(1);
  b.Insert(2);
  b.Insert(3);
  a.Absorb(&b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.SortedKeys(), (std::vector<Key>{1, 2, 3}));
}

TEST(KeyBag, LazyBufferFlushTransparency) {
  // Exercise the flush threshold: interleave inserts and reads past the
  // buffer size; results must match a reference multiset.
  KeyBag bag;
  Rng rng(3);
  std::multiset<Key> ref;
  for (int i = 0; i < 1000; ++i) {
    Key k = rng.UniformInt(0, 99);
    if (rng.NextBool(0.7)) {
      bag.Insert(k);
      ref.insert(k);
    } else {
      bool erased = bag.Erase(k);
      auto it = ref.find(k);
      EXPECT_EQ(erased, it != ref.end());
      if (it != ref.end()) ref.erase(it);
    }
    EXPECT_EQ(bag.size(), ref.size());
  }
  std::vector<Key> expect(ref.begin(), ref.end());
  EXPECT_EQ(bag.SortedKeys(), expect);
}

TEST(KeyBag, NegativeKeysSupported) {
  KeyBag bag;
  bag.Insert(-5);
  bag.Insert(5);
  EXPECT_EQ(bag.Min(), -5);
  EXPECT_EQ(bag.CountInRange(-10, 0), 1u);
}

// ---------------------------------------------------------------------------
// Differential test: every mutating operation (Insert / Erase / the four
// Extract* splits / Absorb) against a std::multiset reference, interleaved
// randomly so extraction hits bags in every flush state (pending buffer
// empty, partially filled, just merged).
// ---------------------------------------------------------------------------

std::vector<Key> Sorted(const std::multiset<Key>& ref) {
  return std::vector<Key>(ref.begin(), ref.end());
}

TEST(KeyBag, DifferentialMixedOpsAgainstMultiset) {
  Rng rng(0xbead);
  KeyBag bag;
  std::multiset<Key> ref;
  for (int step = 0; step < 20000; ++step) {
    switch (rng.NextBelow(7)) {
      case 0: {  // insert (small domain => duplicates are common)
        Key k = rng.UniformInt(-50, 200);
        bag.Insert(k);
        ref.insert(k);
        break;
      }
      case 1: {  // erase one occurrence
        Key k = rng.UniformInt(-50, 200);
        bool erased = bag.Erase(k);
        auto it = ref.find(k);
        ASSERT_EQ(erased, it != ref.end());
        if (it != ref.end()) ref.erase(it);
        break;
      }
      case 2: {  // extract strictly-below pivot
        Key pivot = rng.UniformInt(-60, 210);
        KeyBag out = bag.ExtractBelow(pivot);
        std::multiset<Key> ref_out(ref.begin(), ref.lower_bound(pivot));
        ref.erase(ref.begin(), ref.lower_bound(pivot));
        ASSERT_EQ(out.SortedKeys(), Sorted(ref_out)) << "step " << step;
        break;
      }
      case 3: {  // extract at-least pivot
        Key pivot = rng.UniformInt(-60, 210);
        KeyBag out = bag.ExtractAtLeast(pivot);
        std::multiset<Key> ref_out(ref.lower_bound(pivot), ref.end());
        ref.erase(ref.lower_bound(pivot), ref.end());
        ASSERT_EQ(out.SortedKeys(), Sorted(ref_out)) << "step " << step;
        break;
      }
      case 4: {  // extract count smallest (count may exceed size)
        size_t count = rng.NextBelow(ref.size() + 4);
        KeyBag out = bag.ExtractLowest(count);
        std::multiset<Key> ref_out;
        for (size_t i = 0; i < count && !ref.empty(); ++i) {
          ref_out.insert(*ref.begin());
          ref.erase(ref.begin());
        }
        ASSERT_EQ(out.SortedKeys(), Sorted(ref_out)) << "step " << step;
        break;
      }
      case 5: {  // extract count largest (count may exceed size)
        size_t count = rng.NextBelow(ref.size() + 4);
        KeyBag out = bag.ExtractHighest(count);
        std::multiset<Key> ref_out;
        for (size_t i = 0; i < count && !ref.empty(); ++i) {
          auto it = std::prev(ref.end());
          ref_out.insert(*it);
          ref.erase(it);
        }
        ASSERT_EQ(out.SortedKeys(), Sorted(ref_out)) << "step " << step;
        break;
      }
      default: {  // absorb a freshly built bag (sometimes empty)
        KeyBag other;
        size_t extra = rng.NextBelow(40);
        for (size_t i = 0; i < extra; ++i) {
          Key k = rng.UniformInt(-50, 200);
          other.Insert(k);
          ref.insert(k);
        }
        bag.Absorb(&other);
        ASSERT_EQ(other.size(), 0u) << "absorb must drain the source";
        break;
      }
    }
    ASSERT_EQ(bag.size(), ref.size()) << "step " << step;
  }
  EXPECT_EQ(bag.SortedKeys(), Sorted(ref));
}

TEST(KeyBag, ExtractFromEmptyBag) {
  KeyBag bag;
  EXPECT_EQ(bag.ExtractBelow(10).size(), 0u);
  EXPECT_EQ(bag.ExtractAtLeast(10).size(), 0u);
  EXPECT_EQ(bag.ExtractLowest(5).size(), 0u);
  EXPECT_EQ(bag.ExtractHighest(5).size(), 0u);
  EXPECT_TRUE(bag.empty());
}

TEST(KeyBag, ExtractPivotOutsideRange) {
  // Pivot below every key: ExtractBelow takes nothing, ExtractAtLeast all.
  KeyBag bag;
  for (Key k : {10, 20, 30}) bag.Insert(k);
  EXPECT_EQ(bag.ExtractBelow(5).size(), 0u);
  EXPECT_EQ(bag.size(), 3u);
  KeyBag all = bag.ExtractAtLeast(5);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(bag.empty());

  // Pivot above every key: the mirror image.
  for (Key k : {10, 20, 30}) bag.Insert(k);
  EXPECT_EQ(bag.ExtractAtLeast(100).size(), 0u);
  EXPECT_EQ(bag.size(), 3u);
  KeyBag below = bag.ExtractBelow(100);
  EXPECT_EQ(below.size(), 3u);
  EXPECT_TRUE(bag.empty());

  // Count larger than the bag drains it without fault.
  for (Key k : {10, 20}) bag.Insert(k);
  EXPECT_EQ(bag.ExtractLowest(99).size(), 2u);
  for (Key k : {10, 20}) bag.Insert(k);
  EXPECT_EQ(bag.ExtractHighest(99).size(), 2u);
}

TEST(KeyBag, AbsorbIntoEmptyAndFromEmpty) {
  KeyBag a, b;
  b.Insert(3);
  b.Insert(1);
  a.Absorb(&b);  // empty destination takes the source wholesale
  EXPECT_EQ(a.SortedKeys(), (std::vector<Key>{1, 3}));
  EXPECT_TRUE(b.empty());
  a.Absorb(&b);  // absorbing an empty bag is a no-op
  EXPECT_EQ(a.size(), 2u);
}

}  // namespace
}  // namespace baton
