// Figure 8(h): distribution of the number of nodes involved in one
// load-balancing restructure ("how far did one have to shift to perform the
// forced insertion/deletion").
//
// Expected shape: strongly exponential decay -- most forced joins are
// absorbed after shifting only a couple of nodes; long chains are rare.
#include "bench_common/experiment.h"
#include "overlay/baton_overlay.h"

namespace baton {
namespace bench {
namespace {

void Run(const Options& opt) {
  const size_t n = opt.sizes.empty() ? 1000 : opt.sizes.front();
  Histogram hist;
  for (int s = 0; s < opt.seeds; ++s) {
    uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
    workload::UniformKeys preload(1, 1000000000);
    auto bi = BuildOverlay("baton", n, seed, BalancedOverlayConfig(),
                           opt.keys_per_node, &preload);
    Rng rng(Mix64(seed ^ 0x91));
    workload::ZipfKeys zipf(1, 1000000000, 1.0);
    uint64_t total = static_cast<uint64_t>(opt.keys_per_node) * n;
    for (uint64_t i = 0; i < total; ++i) {
      auto st = bi.overlay->Insert(
          bi.members[rng.NextBelow(bi.members.size())], zipf.Next(&rng));
      BATON_CHECK(st.ok()) << st.status.ToString();
    }
    bi.overlay->CheckInvariants();
    hist.Merge(overlay::BatonBackend(*bi.overlay).shift_sizes());
  }

  TablePrinter table({"nodes_shifted", "count", "fraction"});
  for (const auto& [value, count] : hist.Buckets()) {
    table.AddRow({TablePrinter::Int(value),
                  TablePrinter::Int(static_cast<int64_t>(count)),
                  TablePrinter::Num(static_cast<double>(count) /
                                        static_cast<double>(hist.total_count()),
                                    4)});
  }
  Emit("Fig 8(h): size of the load-balancing shift (Zipf(1.0), N=" +
           std::to_string(n) + ", " +
           std::to_string(hist.total_count()) + " restructures)",
       table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
