// Head-to-head comparison of every registered overlay backend under one
// identical workload, driven entirely through the generic overlay::Overlay
// interface + workload::Replay -- no per-backend wiring. This is the
// one-binary replacement for the comparison plumbing the fig8 benches used
// to duplicate: add a backend to overlay::Register and it shows up here.
//
// Per backend and network size the bench builds the overlay (preloading
// order-preserving backends while they grow), replays the same mixed
// churn + query trace, and reports search hops, per-operation message
// costs, and the maintenance (routing-table update) traffic the churn
// induced. Backends without a capability print "n/a" in that column.
//
// Every (backend, N, seed) run is an independent task with its own
// Instance and network, so --threads=N executes them on a worker pool;
// samples are aggregated sequentially in task order afterwards, making the
// output byte-identical to a --threads=1 run.
//
// With --latency=const:N|uniform:LO,HI the sim/ event kernel is attached
// and the search/range latency columns report simulated critical-path ticks
// (0 when no model is given; the message/hop columns are unaffected).
//
// The hops_p50/p99 and lat_p50/p99 columns come from mergeable log-bucket
// histograms filled during the same replay (one sample per exact search),
// and with --trace=PATH / --metrics=PATH each task additionally records a
// causal op/message trace (Chrome trace-event JSON, Perfetto-loadable) and
// a metrics snapshot.
//
//   ./bench_compare_overlays --sizes=200 --seeds=1
//   ./bench_compare_overlays --overlay=baton,chord,d3tree --sizes=1000
//   ./bench_compare_overlays --sizes=500 --latency=uniform:5,20 --threads=4
//   ./bench_compare_overlays --sizes=200 --trace=trace.json --metrics=m.json
#include <string>

#include "bench_common/experiment.h"
#include "util/stats.h"
#include "workload/replay.h"

namespace baton {
namespace bench {
namespace {

constexpr Key kDomainHi = 1000000000;

/// Samples from one (backend, N, seed) task.
struct SeedSample {
  double search_hops = 0, search_msgs = 0, search_lat = 0;
  double insert_msgs = 0, join_msgs = 0, leave_msgs = 0;
  double range_msgs = 0, range_lat = 0;
  bool range_supported = true;
  double maint = 0;
  bool has_maint = false;
  /// Full exact-search distributions (mergeable across seeds) behind the
  /// mean columns, so the table can report p50/p99 tails.
  obs::LogHistogram search_hops_hist, search_lat_hist;
  /// Per-task observability collector, kept alive past the Instance so
  /// --trace/--metrics can serialize it after all tasks finish (null when
  /// observability is off -- the zero-overhead default).
  std::unique_ptr<obs::Observer> observer;
};

SeedSample RunSeed(const std::string& name, size_t n, int s,
                   const Options& opt) {
  SeedSample out;
  uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
  workload::UniformKeys keys(1, kDomainHi);

  // Order-preserving backends preload while growing (ranges track the
  // content median); hash-partitioned ones are insensitive to load order
  // and get the same data afterwards from a dedicated rng, so the
  // trace/replay stream below is identical for every backend.
  overlay::Config cfg = BalancedOverlayConfig();
  Instance inst;
  if (overlay::Make(name, cfg)->Supports(overlay::kOrderedGrowth)) {
    inst = BuildOverlay(name, n, seed, cfg, opt.keys_per_node, &keys);
  } else {
    Rng load_rng(Mix64(seed ^ 0x10ad));
    inst = BuildOverlay(name, n, seed, cfg);
    LoadOverlay(&inst, opt.keys_per_node, &keys, &load_rng);
  }

  // Attach the sim kernel after the build: the replayed ops below are
  // timed, construction is not (and the protocol rng streams are
  // untouched either way).
  AttachLatency(&inst, opt.latency, seed);
  // Same post-build attachment for observability: spans/metrics cover the
  // replayed ops, not construction, and with neither --trace nor --metrics
  // the overlay runs with a null observer (no per-message work at all).
  if (opt.obs_enabled()) {
    AttachObserver(&inst, /*tracing=*/!opt.trace_path.empty());
  }

  workload::ChurnMix mix;
  mix.joins = n / 10;
  mix.leaves = n / 10;
  mix.inserts = static_cast<size_t>(opt.queries);
  mix.exacts = static_cast<size_t>(opt.queries);
  mix.ranges = static_cast<size_t>(opt.queries) / 10;
  mix.range_width = kDomainHi / 1000;  // 0.1% selectivity, as in Fig 8(e)
  Rng rng(Mix64(seed ^ 0xc03a));
  workload::Trace trace = workload::MakeChurnTrace(&rng, &keys, mix);

  auto before = inst.net()->Snapshot();
  workload::ReplayResult res =
      workload::Replay(*inst.overlay, trace, &rng, &inst.members);
  auto after = inst.net()->Snapshot();
  inst.overlay->CheckInvariants();

  using workload::OpType;
  out.search_hops = res.of(OpType::kExact).MeanHops();
  out.search_msgs = res.of(OpType::kExact).MeanMessages();
  out.search_lat = res.of(OpType::kExact).MeanLatency();
  out.insert_msgs = res.of(OpType::kInsert).MeanMessages();
  out.join_msgs = res.of(OpType::kJoin).MeanMessages();
  out.leave_msgs = res.of(OpType::kLeave).MeanMessages();
  if (!inst.overlay->Supports(overlay::kRangeSearch)) {
    out.range_supported = false;
  } else {
    out.range_msgs = res.of(OpType::kRange).MeanMessages();
    out.range_lat = res.of(OpType::kRange).MeanLatency();
  }
  uint64_t churn_ops =
      res.of(OpType::kJoin).count + res.of(OpType::kLeave).count;
  if (churn_ops > 0) {
    out.has_maint = true;
    out.maint = static_cast<double>(MaintenanceDelta(before, after)) /
                static_cast<double>(churn_ops);
  }
  out.search_hops_hist = res.of(OpType::kExact).hops_hist;
  out.search_lat_hist = res.of(OpType::kExact).latency_hist;
  out.observer = std::move(inst.observer);
  return out;
}

void Run(const Options& opt) {
  const std::vector<std::string> overlays = SelectedOverlays(opt);
  std::vector<SeedTask> tasks = SizeMajorTasks(opt, overlays);
  std::vector<SeedSample> results =
      RunTasks<SeedSample>(tasks, opt.threads, [&](const SeedTask& t) {
        return RunSeed(t.overlay, t.n, t.seed, opt);
      });

  TablePrinter table({"N", "overlay", "caps", "search_hops", "hops_p50",
                      "hops_p99", "search_msgs", "search_lat", "lat_p50",
                      "lat_p99", "range_msgs", "range_lat", "insert_msgs",
                      "join_msgs", "leave_msgs", "maint_per_churn"});
  size_t idx = 0;
  for (size_t n : opt.sizes) {
    for (const std::string& name : overlays) {
      struct {
        RunningStat search_hops, search_msgs, search_lat, range_msgs,
            range_lat;
        RunningStat insert_msgs, join_msgs, leave_msgs, maint_msgs;
        obs::LogHistogram hops_hist, lat_hist;
        bool range_supported = true;
      } st;
      for (int s = 0; s < opt.seeds; ++s) {
        const SeedSample& r = results[idx++];
        st.search_hops.Add(r.search_hops);
        st.search_msgs.Add(r.search_msgs);
        st.search_lat.Add(r.search_lat);
        st.hops_hist.Merge(r.search_hops_hist);
        st.lat_hist.Merge(r.search_lat_hist);
        st.insert_msgs.Add(r.insert_msgs);
        st.join_msgs.Add(r.join_msgs);
        st.leave_msgs.Add(r.leave_msgs);
        if (!r.range_supported) {
          st.range_supported = false;
        } else {
          st.range_msgs.Add(r.range_msgs);
          st.range_lat.Add(r.range_lat);
        }
        if (r.has_maint) st.maint_msgs.Add(r.maint);
      }
      uint32_t caps = overlay::Make(name)->capabilities();
      auto p = [](const obs::LogHistogram& h, double q) {
        return TablePrinter::Int(static_cast<int64_t>(h.Quantile(q)));
      };
      table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)), name,
                    overlay::CapabilitiesToString(caps),
                    TablePrinter::Num(st.search_hops.mean()),
                    p(st.hops_hist, 0.50), p(st.hops_hist, 0.99),
                    TablePrinter::Num(st.search_msgs.mean()),
                    TablePrinter::Num(st.search_lat.mean()),
                    p(st.lat_hist, 0.50), p(st.lat_hist, 0.99),
                    st.range_supported ? TablePrinter::Num(st.range_msgs.mean())
                                       : "n/a",
                    st.range_supported ? TablePrinter::Num(st.range_lat.mean())
                                       : "n/a",
                    TablePrinter::Num(st.insert_msgs.mean()),
                    TablePrinter::Num(st.join_msgs.mean()),
                    TablePrinter::Num(st.leave_msgs.mean()),
                    TablePrinter::Num(st.maint_msgs.mean())});
    }
  }
  Emit("Overlay comparison: same trace, every registered backend", table, opt);
  std::vector<const obs::Observer*> observers;
  observers.reserve(results.size());
  for (const SeedSample& r : results) observers.push_back(r.observer.get());
  WriteObsArtifacts(opt, tasks, observers);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
