// Head-to-head comparison of every registered overlay backend under one
// identical workload, driven entirely through the generic overlay::Overlay
// interface + workload::Replay -- no per-backend wiring. This is the
// one-binary replacement for the comparison plumbing the fig8 benches used
// to duplicate: add a backend to overlay::Register and it shows up here.
//
// Per backend and network size the bench builds the overlay (preloading
// order-preserving backends while they grow), replays the same mixed
// churn + query trace, and reports search hops, per-operation message
// costs, and the maintenance (routing-table update) traffic the churn
// induced. Backends without a capability print "n/a" in that column.
//
// With --latency=const:N|uniform:LO,HI the sim/ event kernel is attached
// and the search/range latency columns report simulated critical-path ticks
// (0 when no model is given; the message/hop columns are unaffected).
//
//   ./bench_compare_overlays --sizes=200 --seeds=1
//   ./bench_compare_overlays --overlay=baton,chord --sizes=1000
//   ./bench_compare_overlays --sizes=500 --latency=uniform:5,20
#include <string>

#include "bench_common/experiment.h"
#include "util/stats.h"
#include "workload/replay.h"

namespace baton {
namespace bench {
namespace {

constexpr Key kDomainHi = 1000000000;

struct SeriesStats {
  RunningStat search_hops, search_msgs, search_lat, range_msgs, range_lat;
  RunningStat insert_msgs, join_msgs, leave_msgs, maint_msgs;
  bool range_supported = true;
};

void RunBackend(const std::string& name, size_t n, const Options& opt,
                SeriesStats* out) {
  for (int s = 0; s < opt.seeds; ++s) {
    uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
    workload::UniformKeys keys(1, kDomainHi);

    // Order-preserving backends preload while growing (ranges track the
    // content median); hash-partitioned ones are insensitive to load order
    // and get the same data afterwards from a dedicated rng, so the
    // trace/replay stream below is identical for every backend.
    overlay::Config cfg = BalancedOverlayConfig();
    Instance inst;
    if (overlay::Make(name, cfg)->Supports(overlay::kOrderedGrowth)) {
      inst = BuildOverlay(name, n, seed, cfg, opt.keys_per_node, &keys);
    } else {
      Rng load_rng(Mix64(seed ^ 0x10ad));
      inst = BuildOverlay(name, n, seed, cfg);
      LoadOverlay(&inst, opt.keys_per_node, &keys, &load_rng);
    }

    // Attach the sim kernel after the build: the replayed ops below are
    // timed, construction is not (and the protocol rng streams are
    // untouched either way).
    AttachLatency(&inst, opt.latency, seed);

    workload::ChurnMix mix;
    mix.joins = n / 10;
    mix.leaves = n / 10;
    mix.inserts = static_cast<size_t>(opt.queries);
    mix.exacts = static_cast<size_t>(opt.queries);
    mix.ranges = static_cast<size_t>(opt.queries) / 10;
    mix.range_width = kDomainHi / 1000;  // 0.1% selectivity, as in Fig 8(e)
    Rng rng(Mix64(seed ^ 0xc03a));
    workload::Trace trace = workload::MakeChurnTrace(&rng, &keys, mix);

    auto before = inst.net()->Snapshot();
    workload::ReplayResult res =
        workload::Replay(*inst.overlay, trace, &rng, &inst.members);
    auto after = inst.net()->Snapshot();
    inst.overlay->CheckInvariants();

    using workload::OpType;
    out->search_hops.Add(res.of(OpType::kExact).MeanHops());
    out->search_msgs.Add(res.of(OpType::kExact).MeanMessages());
    out->search_lat.Add(res.of(OpType::kExact).MeanLatency());
    out->insert_msgs.Add(res.of(OpType::kInsert).MeanMessages());
    out->join_msgs.Add(res.of(OpType::kJoin).MeanMessages());
    out->leave_msgs.Add(res.of(OpType::kLeave).MeanMessages());
    if (!inst.overlay->Supports(overlay::kRangeSearch)) {
      out->range_supported = false;
    } else {
      out->range_msgs.Add(res.of(OpType::kRange).MeanMessages());
      out->range_lat.Add(res.of(OpType::kRange).MeanLatency());
    }
    uint64_t churn_ops = res.of(OpType::kJoin).count +
                         res.of(OpType::kLeave).count;
    if (churn_ops > 0) {
      out->maint_msgs.Add(
          static_cast<double>(MaintenanceDelta(before, after)) /
          static_cast<double>(churn_ops));
    }
  }
}

void Run(const Options& opt) {
  TablePrinter table({"N", "overlay", "caps", "search_hops", "search_msgs",
                      "search_lat", "range_msgs", "range_lat", "insert_msgs",
                      "join_msgs", "leave_msgs", "maint_per_churn"});
  for (size_t n : opt.sizes) {
    for (const std::string& name : SelectedOverlays(opt)) {
      SeriesStats st;
      RunBackend(name, n, opt, &st);
      uint32_t caps = overlay::Make(name)->capabilities();
      table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)), name,
                    overlay::CapabilitiesToString(caps),
                    TablePrinter::Num(st.search_hops.mean()),
                    TablePrinter::Num(st.search_msgs.mean()),
                    TablePrinter::Num(st.search_lat.mean()),
                    st.range_supported ? TablePrinter::Num(st.range_msgs.mean())
                                       : "n/a",
                    st.range_supported ? TablePrinter::Num(st.range_lat.mean())
                                       : "n/a",
                    TablePrinter::Num(st.insert_msgs.mean()),
                    TablePrinter::Num(st.join_msgs.mean()),
                    TablePrinter::Num(st.leave_msgs.mean()),
                    TablePrinter::Num(st.maint_msgs.mean())});
    }
  }
  Emit("Overlay comparison: same trace, every registered backend", table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
