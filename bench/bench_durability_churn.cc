// Durability under churn (replication subsystem; beyond the paper's Fig. 8):
// key-loss rate and replication message overhead vs. replication factor r.
//
// For each network size the same membership-churn trace (joins, graceful
// leaves, single abrupt failures recovered immediately, index traffic) runs
// at r = 0..3. Expected shape: r = 0 reproduces the paper's behaviour --
// every failed node's keys vanish; any r >= 1 restores them all (loss stays
// zero while one failure at a time is outstanding), paying a per-insert push
// and a per-failure restore whose cost the overhead columns quantify.
#include <cstdio>

#include "bench_common/experiment.h"
#include "overlay/baton_overlay.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

constexpr int kReplicationFactors[] = {0, 1, 2, 3};

uint64_t ReplicaDelta(const net::CounterSnapshot& before,
                      const net::CounterSnapshot& after) {
  return CategoryDelta(before, after, net::MsgCategory::kReplication);
}

void Run(const Options& opt) {
  TablePrinter table({"N", "r", "failures", "at_risk", "lost", "recovered",
                      "loss_pct", "repl_msgs", "repl_pct", "healed"});
  for (size_t n : opt.sizes) {
    for (int r : kReplicationFactors) {
      RunningStat at_risk_s, lost_s, recovered_s, repl_s, total_s, healed_s;
      RunningStat failures_s;  // failures actually executed (guards may skip)
      for (int s = 0; s < opt.seeds; ++s) {
        uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
        Rng rng(Mix64(seed ^ 0xd07a));
        workload::UniformKeys keys(1, 1000000000);
        overlay::Config cfg;
        cfg.baton = ReplicatedConfig(r);
        auto bi = BuildOverlay("baton", n, seed, cfg, opt.keys_per_node,
                               &keys);
        BatonNetwork& tree = overlay::BatonBackend(*bi.overlay);
        auto before = bi.net()->Snapshot();

        workload::ChurnMix mix;
        mix.joins = n / 20;
        mix.leaves = n / 20;
        mix.failures = n / 50;
        mix.inserts = n;
        mix.exacts = static_cast<size_t>(opt.queries);
        auto trace = workload::MakeChurnTrace(&rng, &keys, mix);

        auto live_member = [&]() {
          net::PeerId p;
          do {
            p = bi.members[rng.NextBelow(bi.members.size())];
          } while (!bi.net()->IsAlive(p));
          return p;
        };
        auto drop_member = [&](net::PeerId p) {
          for (size_t i = 0; i < bi.members.size(); ++i) {
            if (bi.members[i] == p) {
              bi.members.erase(bi.members.begin() + static_cast<long>(i));
              return;
            }
          }
        };

        uint64_t at_risk = 0, healed = 0, failures_run = 0;
        size_t ops = 0;
        for (const workload::Op& op : trace) {
          switch (op.type) {
            case workload::OpType::kJoin: {
              auto joined = bi.overlay->Join(live_member());
              if (joined.ok()) bi.members.push_back(joined.peer);
              break;
            }
            case workload::OpType::kLeave: {
              if (bi.overlay->size() <= 8) break;
              net::PeerId leaver = live_member();
              if (bi.overlay->Leave(leaver).ok()) drop_member(leaver);
              break;
            }
            case workload::OpType::kFail: {
              if (bi.overlay->size() <= 8) break;
              net::PeerId victim = live_member();
              at_risk += tree.node(victim).data.size();
              ++failures_run;
              BATON_CHECK(bi.overlay->Fail(victim).ok());
              // Single-failure trace: recovery completes before the next op.
              BATON_CHECK(bi.overlay->RecoverAllFailures().ok());
              drop_member(victim);
              break;
            }
            case workload::OpType::kInsert:
              BATON_CHECK(bi.overlay->Insert(live_member(), op.key).ok());
              break;
            case workload::OpType::kExact:
              // Single-failure trace + recovery-before-next-op above, so
              // routing never hits a dead node: OK status is guaranteed
              // (found/not-found is irrelevant to durability accounting).
              BATON_CHECK(
                  bi.overlay->ExactSearch(live_member(), op.key).ok());
              break;
            default:
              break;
          }
          // Background anti-entropy: periodic probe/heal pass.
          if (++ops % 512 == 0) {
            healed += tree.RepairReplicas().healed;
          }
        }
        bi.overlay->CheckInvariants();

        auto after = bi.net()->Snapshot();
        failures_s.Add(static_cast<double>(failures_run));
        at_risk_s.Add(static_cast<double>(at_risk));
        lost_s.Add(static_cast<double>(tree.lost_keys()));
        recovered_s.Add(static_cast<double>(tree.recovered_keys()));
        repl_s.Add(static_cast<double>(ReplicaDelta(before, after)));
        total_s.Add(static_cast<double>(net::Network::Delta(before, after)));
        healed_s.Add(static_cast<double>(healed));
      }
      double loss_pct = at_risk_s.mean() <= 0.0
                            ? 0.0
                            : 100.0 * lost_s.mean() / at_risk_s.mean();
      double repl_pct =
          total_s.mean() <= 0.0 ? 0.0 : 100.0 * repl_s.mean() / total_s.mean();
      table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                    TablePrinter::Int(r),
                    TablePrinter::Num(failures_s.mean(), 1),
                    TablePrinter::Num(at_risk_s.mean()),
                    TablePrinter::Num(lost_s.mean()),
                    TablePrinter::Num(recovered_s.mean()),
                    TablePrinter::Num(loss_pct),
                    TablePrinter::Num(repl_s.mean()),
                    TablePrinter::Num(repl_pct),
                    TablePrinter::Num(healed_s.mean())});
    }
  }
  Emit("Durability under churn: key loss and replication overhead vs r",
       table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
