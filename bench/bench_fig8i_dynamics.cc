// Figure 8(i): extra messages per exact-match query caused by concurrent
// joins/leaves. While a batch of K membership changes is "in flight" --
// their routing-table update notifications are withheld -- queries hit stale
// links, time out against departed peers and detour via the fault-tolerant
// paths of section III-D.
//
// Expected shape: extra messages grow with the number of concurrent changes.
#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

void Run(const Options& opt) {
  const size_t n = opt.sizes.empty() ? 2000 : opt.sizes.front();
  const std::vector<int> churn_levels = {0, 16, 32, 64, 128, 256, 512};
  TablePrinter table({"concurrent_ops", "msgs_per_query", "extra_per_query",
                      "failed_queries_pct"});

  std::vector<RunningStat> msgs(churn_levels.size());
  std::vector<RunningStat> fails(churn_levels.size());
  for (int s = 0; s < opt.seeds; ++s) {
    uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
    workload::UniformKeys keys(1, 1000000000);
    for (size_t ci = 0; ci < churn_levels.size(); ++ci) {
      int churn = churn_levels[ci];
      Rng rng(Mix64(seed ^ 0x92));
      auto bi = BuildOverlay("baton", n, seed, BalancedOverlayConfig(),
                             opt.keys_per_node, &keys);

      // Apply K membership changes whose remote notifications stay queued.
      bi.net()->SetDeferUpdates(true);
      int applied = 0;
      for (int i = 0; i < churn; ++i) {
        if (rng.NextBool(0.5)) {
          auto joined = bi.overlay->Join(
              bi.members[rng.NextBelow(bi.members.size())]);
          if (joined.ok()) {
            bi.members.push_back(joined.peer);
            ++applied;
          }
        } else {
          size_t idx = rng.NextBelow(bi.members.size());
          if (bi.overlay->Leave(bi.members[idx]).ok()) {
            bi.members.erase(bi.members.begin() + static_cast<long>(idx));
            ++applied;
          }
        }
      }
      (void)applied;

      // Queries race the in-flight updates.
      uint64_t query_msgs = 0;
      int failed = 0;
      auto before = bi.net()->Snapshot();
      for (int q = 0; q < opt.queries; ++q) {
        auto res = bi.overlay->ExactSearch(
            bi.members[rng.NextBelow(bi.members.size())], keys.Next(&rng));
        if (!res.ok()) ++failed;
      }
      query_msgs = net::Network::Delta(before, bi.net()->Snapshot());
      msgs[ci].Add(static_cast<double>(query_msgs) / opt.queries);
      fails[ci].Add(100.0 * failed / opt.queries);

      // Updates drain; the overlay converges again.
      bi.net()->FlushDeferred();
      bi.net()->SetDeferUpdates(false);
    }
  }

  double baseline = msgs[0].mean();
  for (size_t ci = 0; ci < churn_levels.size(); ++ci) {
    table.AddRow({TablePrinter::Int(churn_levels[ci]),
                  TablePrinter::Num(msgs[ci].mean()),
                  TablePrinter::Num(msgs[ci].mean() - baseline),
                  TablePrinter::Num(fails[ci].mean())});
  }
  Emit("Fig 8(i): extra query messages under concurrent joins/leaves (N=" +
           std::to_string(n) + ")",
       table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
