// Figure 8(f): access load (messages processed per node) by tree level,
// separately for an insertion workload and a search workload.
//
// Expected shape (the paper's key fairness claim): insertion load is almost
// constant across levels; search load is slightly *higher at the leaves*
// than at the root -- the tree does not overload nodes near the root,
// because routing runs sideways and through leaf levels, not through the
// root as in a centralized tree.
#include <map>

#include "bench_common/experiment.h"
#include "overlay/baton_overlay.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

void Run(const Options& opt) {
  const size_t n = opt.sizes.empty() ? 4000 : opt.sizes.back();
  TablePrinter table(
      {"level", "nodes", "insert_msgs_per_node", "search_msgs_per_node"});
  std::map<int, RunningStat> insert_load, search_load;
  std::map<int, uint64_t> level_nodes;

  for (int s = 0; s < opt.seeds; ++s) {
    uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
    Rng rng(Mix64(seed ^ 0x8f));
    workload::UniformKeys keys(1, 1000000000);
    auto bi = BuildOverlay("baton", n, seed, BalancedOverlayConfig(),
                           opt.keys_per_node, &keys);
    const BatonNetwork& tree = overlay::BatonBackend(*bi.overlay);

    // Insertion phase: keys_per_node additional keys per node on average.
    bi.net()->ResetPerPeerCounters();
    LoadOverlay(&bi, opt.keys_per_node, &keys, &rng);
    std::map<int, RunningStat> ins_this;
    for (net::PeerId p : bi.members) {
      int level = static_cast<int>(tree.node(p).pos.level);
      ins_this[level].Add(static_cast<double>(
          bi.net()->ProcessedBy(p, net::MsgCategory::kData)));
    }

    // Search phase: `queries` exact-match queries from random origins.
    bi.net()->ResetPerPeerCounters();
    for (int i = 0; i < 10 * opt.queries; ++i) {
      auto res = bi.overlay->ExactSearch(
          bi.members[rng.NextBelow(bi.members.size())], keys.Next(&rng));
      BATON_CHECK(res.ok());
    }
    for (net::PeerId p : bi.members) {
      int level = static_cast<int>(tree.node(p).pos.level);
      search_load[level].Add(static_cast<double>(
          bi.net()->ProcessedBy(p, net::MsgCategory::kQuery)));
      insert_load[level].Add(ins_this[level].mean());
      ++level_nodes[level];
    }
  }

  for (const auto& [level, stat] : insert_load) {
    table.AddRow({TablePrinter::Int(level),
                  TablePrinter::Int(static_cast<int64_t>(
                      level_nodes[level] / static_cast<uint64_t>(opt.seeds))),
                  TablePrinter::Num(stat.mean()),
                  TablePrinter::Num(search_load[level].mean())});
  }
  Emit("Fig 8(f): access load per node by tree level (N=" +
           std::to_string(n) + ")",
       table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
