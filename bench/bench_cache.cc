// Hot-path caching wins and costs, per backend: the bench src/cache/
// exists for (ROADMAP item 3).
//
// Per (backend, N, seed) the bench builds and preloads the overlay once,
// then replays identical exact-search traces (same keys, same origin rng
// stream) in three modes per key distribution: uncached (cache detached --
// the byte-identical baseline), cold (fresh cache attached: pays the
// fast-table refresh bill, learns routes) and warm (the same trace again
// over the now-populated cache). Zipf skew concentrates queries on a few
// owners, so warm hops/op collapses toward 1 as theta grows while the
// uniform row bounds the win at a given capacity. Every cached answer is
// checked against the uncached answer -- the cache may never change
// results, only the path taken to them.
//
// Three more tables probe the design's edges: a capacity sweep (hit rate
// vs route-cache size at zipf:0.9), a churn sweep (a cached and an
// identically-seeded uncached twin replay the same interleaved
// join/leave/query sequence; hit rate vs the stale-probe repair rate as
// invalidation and verify-on-hit clean up behind churn) and a fault
// composition cell (drops on query-category messages hit kCacheProbe too:
// a cached jump into a lossy link retries under the PR-9 fault::Policy
// exactly like a protocol walk, so ok% holds while retries absorb the
// loss).
//
// Everything is deterministic: same flags and --seed reproduce every table
// byte-for-byte. The JSON mirror defaults to BENCH_cache.json (this
// bench's primary artifact); --json=PATH overrides it.
//
//   ./bench_cache --sizes=200 --seeds=1
//   ./bench_cache --overlay=baton,chord --cache=512,3
//       --key-dist=uniform,zipf:0.9 --latency=const:1
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common/experiment.h"
#include "cache/cache.h"
#include "fault/fault.h"

namespace baton {
namespace bench {
namespace {

constexpr Key kDomainHi = 1000000000;

/// Route-cache capacities swept by the capacity table (zipf:0.9).
const size_t kCapacities[] = {16, 64, 256, 1024};

/// Churn cadences swept by the churn table: one join+leave pair every
/// `rate` queries.
const int kChurnRates[] = {16, 4};

/// One trace replay's outcomes, mergeable across seeds.
struct PassOutcome {
  uint64_t ops = 0;
  uint64_t ok = 0;
  uint64_t hops = 0;
  uint64_t messages = 0;
  uint64_t latency = 0;
  uint64_t cache_hits = 0;   // verified route-cache hits (OpStats)
  uint64_t cache_stale = 0;  // refuted probes (OpStats)
  uint64_t hops_saved = 0;
  uint64_t fast_hits = 0;    // manager delta: fast-table jumps
  uint64_t misses = 0;       // manager delta: consults with no entry
  uint64_t evictions = 0;    // manager delta: capacity + stale evictions
  uint64_t retries = 0;      // fault cells only
  uint64_t dropped = 0;
  uint64_t gave_up = 0;

  void Merge(const PassOutcome& o) {
    ops += o.ops;
    ok += o.ok;
    hops += o.hops;
    messages += o.messages;
    latency += o.latency;
    cache_hits += o.cache_hits;
    cache_stale += o.cache_stale;
    hops_saved += o.hops_saved;
    fast_hits += o.fast_hits;
    misses += o.misses;
    evictions += o.evictions;
    retries += o.retries;
    dropped += o.dropped;
    gave_up += o.gave_up;
  }
};

/// Per-op answers of a replay, for the differential checks: the cache must
/// never change which peer answers or whether the key is found.
using Answers = std::vector<std::pair<net::PeerId, bool>>;

/// One (distribution cell) = the three passes over the same trace.
struct DistOutcome {
  PassOutcome uncached;
  PassOutcome cold;
  PassOutcome warm;

  void Merge(const DistOutcome& o) {
    uncached.Merge(o.uncached);
    cold.Merge(o.cold);
    warm.Merge(o.warm);
  }
};

/// Churn cell: replay outcomes of the cached twin plus the join/leave bill.
struct ChurnOutcome {
  PassOutcome cached;
  uint64_t churn_pairs = 0;

  void Merge(const ChurnOutcome& o) {
    cached.Merge(o.cached);
    churn_pairs += o.churn_pairs;
  }
};

struct SeedResult {
  std::vector<DistOutcome> dists;        // [key-dist]
  std::vector<PassOutcome> capacities;   // [capacity], warm pass only
  std::vector<ChurnOutcome> churn;       // [churn rate]
  PassOutcome fault_uncached;            // drops attached, cache detached
  PassOutcome fault_warm;                // drops attached, warm cache
};

/// The distributions table 1 sweeps: --key-dist wins when given, otherwise
/// uniform plus a theta ladder showing the skew monotonicity.
std::vector<KeyDistSpec> DistLadder(const Options& opt) {
  if (!opt.key_dists.empty()) return opt.key_dists;
  std::vector<KeyDistSpec> out(5);
  out[0].kind = KeyDistSpec::Kind::kUniform;
  for (size_t i = 1; i < out.size(); ++i) {
    out[i].kind = KeyDistSpec::Kind::kZipf;
  }
  out[1].theta = 0.5;
  out[2].theta = 0.7;
  out[3].theta = 0.9;
  out[4].theta = 0.99;
  return out;
}

/// Builds one preloaded instance, the bench_faults way: order-preserving
/// backends preload during growth, the rest bulk-load afterwards.
Instance BuildLoaded(const std::string& name, size_t n, uint64_t seed,
                     const Options& opt) {
  workload::UniformKeys preload(1, kDomainHi);
  overlay::Config cfg = BalancedOverlayConfig();
  Instance inst;
  if (overlay::Make(name, cfg)->Supports(overlay::kOrderedGrowth)) {
    inst = BuildOverlay(name, n, seed, cfg, opt.keys_per_node, &preload);
  } else {
    Rng load_rng(Mix64(seed ^ 0x10ad));
    inst = BuildOverlay(name, n, seed, cfg);
    LoadOverlay(&inst, opt.keys_per_node, &preload, &load_rng);
  }
  AttachLatency(&inst, opt.latency, seed);
  return inst;
}

/// One exact-search trace: `queries` keys from `spec`, seeded off the task
/// seed so every cell of a task replays the identical keys.
std::vector<Key> MakeTrace(const KeyDistSpec& spec, int queries,
                           uint64_t seed) {
  std::unique_ptr<workload::KeyGenerator> gen =
      MakeKeyGenerator(spec, 1, kDomainHi);
  Rng krng(Mix64(seed ^ 0x7a3e));
  std::vector<Key> keys;
  keys.reserve(static_cast<size_t>(queries));
  for (int q = 0; q < queries; ++q) keys.push_back(gen->Next(&krng));
  return keys;
}

/// Replays `keys` from origins drawn with a fresh rng stream (identical
/// across passes); `mgr` non-null snapshots its stats around the pass.
/// Fills `*answers` when non-null, checks against `*expect` when non-null.
/// `origin_pool` > 0 restricts origins to the first that-many members --
/// the capacity sweep uses it to put real pressure on small route caches.
PassOutcome Replay(Instance* inst, const std::vector<Key>& keys,
                   uint64_t seed, const cache::Manager* mgr,
                   Answers* answers, const Answers* expect,
                   size_t origin_pool = 0) {
  PassOutcome out;
  cache::Stats before;
  if (mgr != nullptr) before = mgr->stats();
  size_t pool = inst->members.size();
  if (origin_pool > 0 && origin_pool < pool) pool = origin_pool;
  Rng org(Mix64(seed ^ 0x0b51));
  for (size_t q = 0; q < keys.size(); ++q) {
    net::PeerId from = inst->members[org.NextBelow(pool)];
    overlay::OpStats st = inst->overlay->ExactSearch(from, keys[q]);
    ++out.ops;
    if (st.ok()) ++out.ok;
    out.hops += static_cast<uint64_t>(st.hops > 0 ? st.hops : 0);
    out.messages += st.messages;
    out.latency += st.latency_ticks;
    out.cache_hits += static_cast<uint64_t>(st.cache_hits);
    out.cache_stale += static_cast<uint64_t>(st.cache_stale);
    out.hops_saved += static_cast<uint64_t>(st.hops_saved);
    if (answers != nullptr) answers->emplace_back(st.peer, st.found);
    if (expect != nullptr) {
      BATON_CHECK(st.peer == (*expect)[q].first &&
                  st.found == (*expect)[q].second)
          << inst->overlay->name() << " cached answer diverged at op " << q
          << ": peer " << st.peer << " vs " << (*expect)[q].first;
    }
  }
  if (mgr != nullptr) {
    const cache::Stats& after = mgr->stats();
    out.fast_hits = after.fast_hits - before.fast_hits;
    out.misses = after.misses - before.misses;
    out.evictions = after.evictions - before.evictions;
  }
  return out;
}

SeedResult RunSeed(const std::string& name, size_t n, int s,
                   const Options& opt) {
  uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
  Instance inst = BuildLoaded(name, n, seed, opt);
  overlay::Overlay* ov = inst.overlay.get();
  cache::Config ccfg;
  ccfg.capacity = opt.cache_capacity;
  ccfg.root_levels = opt.cache_levels;

  SeedResult out;

  // ---- Table 1: hop reduction vs key skew --------------------------------
  const std::vector<KeyDistSpec> dists = DistLadder(opt);
  for (const KeyDistSpec& spec : dists) {
    std::vector<Key> keys = MakeTrace(spec, opt.queries, seed);
    DistOutcome cell;
    Answers reference;
    ov->AttachCache(nullptr);
    cell.uncached = Replay(&inst, keys, seed, nullptr, &reference, nullptr);
    cache::Manager mgr(ccfg);
    ov->AttachCache(&mgr);
    cell.cold = Replay(&inst, keys, seed, &mgr, nullptr, &reference);
    cell.warm = Replay(&inst, keys, seed, &mgr, nullptr, &reference);
    ov->AttachCache(nullptr);
    out.dists.push_back(cell);
  }

  // ---- Table 2: warm hit rate vs capacity (zipf:0.9) ---------------------
  KeyDistSpec hot;
  hot.kind = KeyDistSpec::Kind::kZipf;
  hot.theta = 0.9;
  {
    std::vector<Key> keys = MakeTrace(hot, opt.queries, seed);
    // A few origins issue every query, so distinct-owner demand per origin
    // exceeds the small capacities and the LRU bound actually bites.
    const size_t kPool = 8;
    for (size_t cap : kCapacities) {
      cache::Config c = ccfg;
      c.capacity = cap;
      cache::Manager mgr(c);
      ov->AttachCache(&mgr);
      Replay(&inst, keys, seed, &mgr, nullptr, nullptr, kPool);  // populate
      out.capacities.push_back(
          Replay(&inst, keys, seed, &mgr, nullptr, nullptr, kPool));
      ov->AttachCache(nullptr);
    }
  }

  // ---- Table 4 state: drops over a warm cache ----------------------------
  // (Runs before the churn table so it sees the pristine membership; the
  // churn cells below build their own instances.)
  {
    std::vector<Key> keys = MakeTrace(hot, opt.queries, seed);
    fault::Policy pol;
    pol.max_retries = 3;
    pol.timeout_ticks = opt.timeout_ticks;
    pol.backoff_ticks = 4;
    fault::LinkFaults lf;
    lf.drop = 0.05;
    auto run_faulted = [&](PassOutcome* dst) {
      fault::PlanConfig pcfg;
      pcfg.seed = Mix64(seed ^ 0xfa11);
      fault::Plan plan(pcfg);
      plan.SetCategoryFaults(net::MsgCategory::kQuery, lf);
      ov->SetResilience(pol);
      ov->AttachFaults(&plan);
      Rng org(Mix64(seed ^ 0x0b51));
      for (Key key : keys) {
        net::PeerId from =
            inst.members[org.NextBelow(inst.members.size())];
        overlay::OpStats st = ov->ExactSearch(from, key);
        ++dst->ops;
        if (st.ok()) ++dst->ok;
        dst->messages += st.messages;
        dst->cache_hits += static_cast<uint64_t>(st.cache_hits);
        dst->cache_stale += static_cast<uint64_t>(st.cache_stale);
        dst->retries += static_cast<uint64_t>(st.retries > 0 ? st.retries : 0);
        dst->dropped += st.dropped_msgs;
        if (st.gave_up) ++dst->gave_up;
      }
      ov->AttachFaults(nullptr);
      ov->SetResilience(fault::Policy{});
    };
    run_faulted(&out.fault_uncached);
    cache::Manager mgr(ccfg);
    ov->AttachCache(&mgr);
    Replay(&inst, keys, seed, &mgr, nullptr, nullptr);  // warm it first
    cache::Stats fb = mgr.stats();
    run_faulted(&out.fault_warm);
    out.fault_warm.misses = mgr.stats().misses - fb.misses;
    ov->AttachCache(nullptr);
  }

  // ---- Table 3: churn (cached twin vs uncached twin) ---------------------
  // Both twins are built from the same seed and replay the same decision
  // stream, so they stay in lockstep; only the cache differs, and its
  // answers are checked op-by-op against the uncached twin's.
  for (int rate : kChurnRates) {
    KeyDistSpec spec = hot;
    std::vector<Key> keys = MakeTrace(spec, opt.queries, seed);
    Instance plain = BuildLoaded(name, n, seed, opt);
    Instance cached = BuildLoaded(name, n, seed, opt);
    cache::Manager mgr(ccfg);
    cached.overlay->AttachCache(&mgr);
    // One warm pass before churn starts, so the sweep measures how churn
    // degrades an established cache rather than cold-start misses.
    Replay(&cached, keys, seed, &mgr, nullptr, nullptr);

    ChurnOutcome cell;
    cache::Stats before = mgr.stats();
    Rng churn_rng(Mix64(seed ^ 0xc4a7));
    Rng org(Mix64(seed ^ 0x0b51));
    for (size_t q = 0; q < keys.size(); ++q) {
      if (rate > 0 && q % static_cast<size_t>(rate) == 0) {
        size_t contact = churn_rng.NextBelow(plain.members.size());
        auto j1 = plain.overlay->Join(plain.members[contact]);
        auto j2 = cached.overlay->Join(cached.members[contact]);
        BATON_CHECK(j1.ok() && j2.ok() && j1.peer == j2.peer)
            << name << " churn twins diverged on join";
        plain.members.push_back(j1.peer);
        cached.members.push_back(j2.peer);
        size_t victim = churn_rng.NextBelow(plain.members.size());
        auto l1 = plain.overlay->Leave(plain.members[victim]);
        auto l2 = cached.overlay->Leave(cached.members[victim]);
        BATON_CHECK(l1.ok() && l2.ok())
            << name << " churn twins diverged on leave";
        plain.members.erase(plain.members.begin() +
                            static_cast<long>(victim));
        cached.members.erase(cached.members.begin() +
                             static_cast<long>(victim));
        ++cell.churn_pairs;
      }
      net::PeerId from =
          plain.members[org.NextBelow(plain.members.size())];
      overlay::OpStats ref = plain.overlay->ExactSearch(from, keys[q]);
      overlay::OpStats st = cached.overlay->ExactSearch(from, keys[q]);
      BATON_CHECK(st.peer == ref.peer && st.found == ref.found)
          << name << " cached answer diverged under churn at op " << q;
      ++cell.cached.ops;
      if (st.ok()) ++cell.cached.ok;
      cell.cached.hops += static_cast<uint64_t>(st.hops > 0 ? st.hops : 0);
      cell.cached.messages += st.messages;
      cell.cached.cache_hits += static_cast<uint64_t>(st.cache_hits);
      cell.cached.cache_stale += static_cast<uint64_t>(st.cache_stale);
      cell.cached.hops_saved += static_cast<uint64_t>(st.hops_saved);
    }
    const cache::Stats& after = mgr.stats();
    cell.cached.misses = after.misses - before.misses;
    cell.cached.evictions = after.evictions - before.evictions;
    out.churn.push_back(cell);
  }
  return out;
}

std::string Pct(uint64_t num, uint64_t den) {
  if (den == 0) return "n/a";
  return TablePrinter::Num(100.0 * static_cast<double>(num) /
                           static_cast<double>(den));
}

std::string PerOp(uint64_t v, uint64_t ops) {
  if (ops == 0) return "n/a";
  return TablePrinter::Num(static_cast<double>(v) /
                           static_cast<double>(ops));
}

/// Warm-pass hit rate: verified hits over all route-cache consults.
std::string HitRate(const PassOutcome& p) {
  return Pct(p.cache_hits, p.cache_hits + p.misses + p.cache_stale);
}

void Run(const Options& opt) {
  const std::vector<std::string> overlays = SelectedOverlays(opt);
  const std::vector<KeyDistSpec> dists = DistLadder(opt);
  std::vector<SeedTask> tasks = SizeMajorTasks(opt, overlays);
  std::vector<SeedResult> results =
      RunTasks<SeedResult>(tasks, opt.threads, [&](const SeedTask& t) {
        return RunSeed(t.overlay, t.n, t.seed, opt);
      });

  TablePrinter skew({"N", "overlay", "dist", "hops_uc", "hops_cold",
                     "hops_warm", "warm_uc_pct", "hit_pct", "saved/op",
                     "msg_uc", "msg_warm", "lat_uc", "lat_warm"});
  TablePrinter caps({"N", "overlay", "capacity", "hops_warm", "hit_pct",
                     "evict/op", "msg_warm"});
  TablePrinter churn({"N", "overlay", "churn", "ok_pct", "hops/op",
                      "hit_pct", "stale/op", "evict/op", "msg/op"});
  TablePrinter faulted({"N", "overlay", "mode", "ok_pct", "gave_up",
                        "retr/op", "dropped", "msg/op", "hit_pct"});

  size_t idx = 0;
  for (size_t n : opt.sizes) {
    for (const std::string& name : overlays) {
      SeedResult merged;
      merged.dists.resize(dists.size());
      merged.capacities.resize(std::size(kCapacities));
      merged.churn.resize(std::size(kChurnRates));
      for (int s = 0; s < opt.seeds; ++s) {
        const SeedResult& r = results[idx++];
        for (size_t d = 0; d < dists.size(); ++d) {
          merged.dists[d].Merge(r.dists[d]);
        }
        for (size_t c = 0; c < merged.capacities.size(); ++c) {
          merged.capacities[c].Merge(r.capacities[c]);
        }
        for (size_t c = 0; c < merged.churn.size(); ++c) {
          merged.churn[c].Merge(r.churn[c]);
        }
        merged.fault_uncached.Merge(r.fault_uncached);
        merged.fault_warm.Merge(r.fault_warm);
      }

      for (size_t d = 0; d < dists.size(); ++d) {
        const DistOutcome& cell = merged.dists[d];
        skew.AddRow({TablePrinter::Int(static_cast<int64_t>(n)), name,
                     dists[d].Label(),
                     PerOp(cell.uncached.hops, cell.uncached.ops),
                     PerOp(cell.cold.hops, cell.cold.ops),
                     PerOp(cell.warm.hops, cell.warm.ops),
                     Pct(cell.warm.hops, cell.uncached.hops),
                     HitRate(cell.warm),
                     PerOp(cell.warm.hops_saved, cell.warm.ops),
                     PerOp(cell.uncached.messages, cell.uncached.ops),
                     PerOp(cell.warm.messages, cell.warm.ops),
                     PerOp(cell.uncached.latency, cell.uncached.ops),
                     PerOp(cell.warm.latency, cell.warm.ops)});
      }
      for (size_t c = 0; c < merged.capacities.size(); ++c) {
        const PassOutcome& p = merged.capacities[c];
        caps.AddRow({TablePrinter::Int(static_cast<int64_t>(n)), name,
                     TablePrinter::Int(static_cast<int64_t>(kCapacities[c])),
                     PerOp(p.hops, p.ops), HitRate(p),
                     PerOp(p.evictions, p.ops), PerOp(p.messages, p.ops)});
      }
      for (size_t c = 0; c < merged.churn.size(); ++c) {
        const ChurnOutcome& cc = merged.churn[c];
        char cadence[32];
        std::snprintf(cadence, sizeof cadence, "1/%d", kChurnRates[c]);
        churn.AddRow({TablePrinter::Int(static_cast<int64_t>(n)), name,
                      cadence, Pct(cc.cached.ok, cc.cached.ops),
                      PerOp(cc.cached.hops, cc.cached.ops),
                      HitRate(cc.cached),
                      PerOp(cc.cached.cache_stale, cc.cached.ops),
                      PerOp(cc.cached.evictions, cc.cached.ops),
                      PerOp(cc.cached.messages, cc.cached.ops)});
      }
      auto fault_row = [&](const char* mode, const PassOutcome& p) {
        faulted.AddRow({TablePrinter::Int(static_cast<int64_t>(n)), name,
                        mode, Pct(p.ok, p.ops),
                        TablePrinter::Int(static_cast<int64_t>(p.gave_up)),
                        PerOp(p.retries, p.ops),
                        TablePrinter::Int(static_cast<int64_t>(p.dropped)),
                        PerOp(p.messages, p.ops),
                        p.cache_hits + p.misses + p.cache_stale == 0
                            ? "n/a"
                            : HitRate(p)});
      };
      fault_row("uncached", merged.fault_uncached);
      fault_row("warm", merged.fault_warm);
    }
  }
  Emit("Exact-search hop reduction vs key skew (uncached / cold / warm)",
       skew, opt);
  Emit("Warm hit rate vs route-cache capacity (zipf:0.9)", caps, opt);
  Emit("Hit rate vs staleness repair under churn (zipf:0.9, warm cache)",
       churn, opt);
  Emit("Cached lookups under message loss (drop 0.05, retry budget 3)",
       faulted, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Options opt = baton::bench::ParseOptions(argc, argv);
  // The cache is this bench's subject: default it on at the documented
  // sizing (--cache=SIZE[,k] still overrides, SIZE > 0 required here).
  if (!opt.cache_enabled()) opt.cache_capacity = 256;
  // This bench's JSON table is its primary artifact: default the mirror on.
  if (opt.json_path.empty()) {
    opt.json_path = "BENCH_cache.json";
    baton::bench::SetJsonMirror(opt.json_path);
  }
  baton::bench::Run(opt);
  return 0;
}
