// Figure 8(a): average messages to find the destination node of a join and
// the replacement node of a leave, vs network size; BATON vs Chord vs the
// multiway tree, all driven through the generic overlay::Overlay API.
//
// Expected shape (paper section V-A): BATON's costs stay nearly flat and far
// below log N (requests hop between leaf levels, never through the root);
// Chord pays a full O(log N) lookup per join and grows with N; the multiway
// tree joins cheaply but pays heavily to leave (it polls all children).
#include <cstdio>

#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

constexpr int kChurnOps = 100;

/// JoinLeaveChurn with each phase's cost = the type-filtered delta of the
/// "find the join node" / "find the replacement" search messages.
void ChurnSeries(Instance* inst, Rng* rng,
                 std::initializer_list<net::MsgType> join_types,
                 std::initializer_list<net::MsgType> leave_types,
                 RunningStat* join_stat, RunningStat* leave_stat) {
  JoinLeaveChurn(
      inst, rng, kChurnOps,
      [&](const auto& a, const auto& b) { return SumTypes(a, b, join_types); },
      [&](const auto& a, const auto& b) { return SumTypes(a, b, leave_types); },
      join_stat, leave_stat);
}

void Run(const Options& opt) {
  TablePrinter table({"N", "baton_join", "baton_leave", "chord_join",
                      "chord_leave", "multiway_join", "multiway_leave"});
  for (size_t n : opt.sizes) {
    RunningStat bj, bl, cj, cl, mj, ml;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8a));

      workload::UniformKeys keys(1, 1000000000);
      {
        auto bi = BuildOverlay("baton", n, seed, BalancedOverlayConfig(),
                               opt.keys_per_node, &keys);
        ChurnSeries(&bi, &rng, {net::MsgType::kJoinForward},
                    {net::MsgType::kReplacementForward}, &bj, &bl);
      }
      {
        auto ci = BuildOverlay("chord", n, seed);
        // Chord's successor absorbs the leaver: no replacement search, so
        // the leave column stays 0 by construction.
        ChurnSeries(&ci, &rng, {net::MsgType::kChordLookup}, {}, &cj, &cl);
      }
      {
        auto mi = BuildOverlay("multiway", n, seed, {}, opt.keys_per_node,
                               &keys);
        ChurnSeries(&mi, &rng,
                    {net::MsgType::kMultiwayJoinForward,
                     net::MsgType::kMultiwayProbe},
                    {net::MsgType::kMultiwayChildPoll}, &mj, &ml);
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(bj.mean()), TablePrinter::Num(bl.mean()),
                  TablePrinter::Num(cj.mean()), TablePrinter::Num(cl.mean()),
                  TablePrinter::Num(mj.mean()), TablePrinter::Num(ml.mean())});
  }
  Emit("Fig 8(a): avg messages to find join node / replacement node", table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
