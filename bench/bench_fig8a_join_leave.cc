// Figure 8(a): average messages to find the destination node of a join and
// the replacement node of a leave, vs network size; BATON vs Chord vs the
// multiway tree.
//
// Expected shape (paper section V-A): BATON's costs stay nearly flat and far
// below log N (requests hop between leaf levels, never through the root);
// Chord pays a full O(log N) lookup per join and grows with N; the multiway
// tree joins cheaply but pays heavily to leave (it polls all children).
#include <cstdio>

#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

constexpr int kChurnOps = 100;

void Run(const Options& opt) {
  TablePrinter table({"N", "baton_join", "baton_leave", "chord_join",
                      "chord_leave", "multiway_join", "multiway_leave"});
  for (size_t n : opt.sizes) {
    RunningStat bj, bl, cj, cl, mj, ml;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8a));

      workload::UniformKeys keys(1, 1000000000);
      // --- BATON ---
      {
        auto bi = BuildBaton(n, seed, BalancedConfig(),
                             opt.keys_per_node, &keys);
        for (int i = 0; i < kChurnOps; ++i) {
          auto before = bi.net->Snapshot();
          auto joined = bi.overlay->Join(
              bi.members[rng.NextBelow(bi.members.size())]);
          BATON_CHECK(joined.ok());
          bi.members.push_back(joined.value());
          auto mid = bi.net->Snapshot();
          bj.Add(static_cast<double>(
              SumTypes(before, mid, {net::MsgType::kJoinForward})));

          size_t idx = rng.NextBelow(bi.members.size());
          net::PeerId victim = bi.members[idx];
          BATON_CHECK(bi.overlay->Leave(victim).ok());
          bi.members.erase(bi.members.begin() + static_cast<long>(idx));
          auto after = bi.net->Snapshot();
          bl.Add(static_cast<double>(
              SumTypes(mid, after, {net::MsgType::kReplacementForward})));
        }
      }
      // --- Chord ---
      {
        auto ci = BuildChord(n, seed);
        for (int i = 0; i < kChurnOps; ++i) {
          auto before = ci.net->Snapshot();
          auto joined =
              ci.ring->Join(ci.members[rng.NextBelow(ci.members.size())]);
          BATON_CHECK(joined.ok());
          ci.members.push_back(joined.value());
          auto mid = ci.net->Snapshot();
          cj.Add(static_cast<double>(
              SumTypes(before, mid, {net::MsgType::kChordLookup})));

          size_t idx = rng.NextBelow(ci.members.size());
          BATON_CHECK(ci.ring->Leave(ci.members[idx]).ok());
          ci.members.erase(ci.members.begin() + static_cast<long>(idx));
          // Chord's successor absorbs the leaver: no replacement search.
          cl.Add(0.0);
        }
      }
      // --- Multiway tree ---
      {
        auto mi = BuildMultiway(n, seed, 4, opt.keys_per_node, &keys);
        for (int i = 0; i < kChurnOps; ++i) {
          auto before = mi.net->Snapshot();
          auto joined =
              mi.tree->Join(mi.members[rng.NextBelow(mi.members.size())]);
          BATON_CHECK(joined.ok());
          mi.members.push_back(joined.value());
          auto mid = mi.net->Snapshot();
          mj.Add(static_cast<double>(SumTypes(
              before, mid,
              {net::MsgType::kMultiwayJoinForward,
               net::MsgType::kMultiwayProbe})));

          size_t idx = rng.NextBelow(mi.members.size());
          BATON_CHECK(mi.tree->Leave(mi.members[idx]).ok());
          mi.members.erase(mi.members.begin() + static_cast<long>(idx));
          auto after = mi.net->Snapshot();
          ml.Add(static_cast<double>(
              SumTypes(mid, after, {net::MsgType::kMultiwayChildPoll})));
        }
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(bj.mean()), TablePrinter::Num(bl.mean()),
                  TablePrinter::Num(cj.mean()), TablePrinter::Num(cl.mean()),
                  TablePrinter::Num(mj.mean()), TablePrinter::Num(ml.mean())});
  }
  Emit("Fig 8(a): avg messages to find join node / replacement node", table,
       opt.csv);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
