// Figure 8(d): average messages per exact-match query vs network size. One
// generic query loop serves every backend through overlay::Overlay.
//
// Expected shape: BATON ~log N, slightly above Chord (the 1.44 height
// factor); the multiway tree clearly worse (hop-by-hop, no sideways tables).
//
// --key-dist=zipf:THETA skews the query keys (first entry only; the stored
// data stays uniform). Default uniform matches the original output exactly.
#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

void QuerySeries(Instance* inst, Rng* rng, workload::KeyGenerator* keys,
                 int queries, RunningStat* stat) {
  for (int i = 0; i < queries; ++i) {
    auto st = inst->overlay->ExactSearch(
        inst->members[rng->NextBelow(inst->members.size())], keys->Next(rng));
    BATON_CHECK(st.ok());
    stat->Add(static_cast<double>(st.messages));
  }
}

void Run(const Options& opt) {
  // Queries draw from --key-dist's first entry (default uniform, whose
  // draws are identical to the preload generator's -- same table as before
  // the flag existed); the preload stays uniform either way.
  KeyDistSpec qdist = opt.key_dists.empty() ? KeyDistSpec{} : opt.key_dists[0];
  std::unique_ptr<workload::KeyGenerator> qkeys =
      MakeKeyGenerator(qdist, 1, 1000000000);

  TablePrinter table({"N", "baton", "chord", "multiway"});
  for (size_t n : opt.sizes) {
    RunningStat b, c, m;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8d));
      workload::UniformKeys keys(1, 1000000000);

      {
        auto bi = BuildOverlay("baton", n, seed, BalancedOverlayConfig(),
                               opt.keys_per_node, &keys);
        QuerySeries(&bi, &rng, qkeys.get(), opt.queries, &b);
      }
      {
        auto ci = BuildOverlay("chord", n, seed);
        LoadOverlay(&ci, opt.keys_per_node, &keys, &rng);
        QuerySeries(&ci, &rng, qkeys.get(), opt.queries, &c);
      }
      {
        auto mi = BuildOverlay("multiway", n, seed, {}, opt.keys_per_node,
                               &keys);
        QuerySeries(&mi, &rng, qkeys.get(), opt.queries, &m);
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(b.mean()), TablePrinter::Num(c.mean()),
                  TablePrinter::Num(m.mean())});
  }
  Emit("Fig 8(d): avg messages per exact-match query", table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
