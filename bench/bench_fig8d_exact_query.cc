// Figure 8(d): average messages per exact-match query vs network size.
//
// Expected shape: BATON ~log N, slightly above Chord (the 1.44 height
// factor); the multiway tree clearly worse (hop-by-hop, no sideways tables).
#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

void Run(const Options& opt) {
  TablePrinter table({"N", "baton", "chord", "multiway"});
  for (size_t n : opt.sizes) {
    RunningStat b, c, m;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8d));
      workload::UniformKeys keys(1, 1000000000);

      {
        auto bi = BuildBaton(n, seed, BalancedConfig(),
                             opt.keys_per_node, &keys);
        for (int i = 0; i < opt.queries; ++i) {
          auto before = bi.net->Snapshot();
          auto res = bi.overlay->ExactSearch(
              bi.members[rng.NextBelow(bi.members.size())], keys.Next(&rng));
          BATON_CHECK(res.ok());
          b.Add(static_cast<double>(
              net::Network::Delta(before, bi.net->Snapshot())));
        }
      }
      {
        auto ci = BuildChord(n, seed);
        LoadChord(&ci, opt.keys_per_node, &keys, &rng);
        for (int i = 0; i < opt.queries; ++i) {
          auto before = ci.net->Snapshot();
          auto res = ci.ring->Lookup(
              ci.members[rng.NextBelow(ci.members.size())], keys.Next(&rng));
          BATON_CHECK(res.ok());
          c.Add(static_cast<double>(
              net::Network::Delta(before, ci.net->Snapshot())));
        }
      }
      {
        auto mi = BuildMultiway(n, seed, 4, opt.keys_per_node, &keys);
        for (int i = 0; i < opt.queries; ++i) {
          auto before = mi.net->Snapshot();
          auto res = mi.tree->ExactSearch(
              mi.members[rng.NextBelow(mi.members.size())], keys.Next(&rng));
          BATON_CHECK(res.ok());
          m.Add(static_cast<double>(
              net::Network::Delta(before, mi.net->Snapshot())));
        }
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(b.mean()), TablePrinter::Num(c.mean()),
                  TablePrinter::Num(m.mean())});
  }
  Emit("Fig 8(d): avg messages per exact-match query", table, opt.csv);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
