// Ablation (section V-A discussion): the multiway-tree baseline's fan-out
// trade-off. "if a node can have many children, the cost of join operation
// is low but the cost of leave operation is high; if a node has only a few
// children, the cost of join operation is increased".
//
// Also reports search cost: more fan-out flattens the tree but adds child
// probes per level -- there is no good setting, which is BATON's point.
// The avg_children column shows a further structural weakness: because each
// accept carves half of the acceptor's *remaining* range, later child slots
// cover exponentially less key space, so data-driven joins rarely fill the
// configured fan-out and the tree stays nearly binary in practice.
#include "bench_common/experiment.h"
#include "overlay/multiway_overlay.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

void Run(const Options& opt) {
  const size_t n = opt.sizes.empty() ? 2000 : opt.sizes.front();
  TablePrinter table({"fanout", "depth", "avg_children", "join_msgs",
                      "leave_msgs", "search_msgs"});
  for (int fanout : {2, 4, 8, 16}) {
    RunningStat depth, join, leave, search, kids;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0xab2));
      workload::UniformKeys keys(1, 1000000000);
      overlay::Config cfg;
      cfg.multiway.max_fanout = fanout;
      auto mi = BuildOverlay("multiway", n, seed, cfg, opt.keys_per_node,
                             &keys);
      const multiway::MultiwayNetwork& tree =
          overlay::MultiwayBackend(*mi.overlay);
      depth.Add(tree.Depth());
      for (net::PeerId m : tree.Members()) {
        size_t c = tree.node(m).children.size();
        if (c > 0) kids.Add(static_cast<double>(c));
      }

      for (int i = 0; i < 50; ++i) {
        auto joined =
            mi.overlay->Join(mi.members[rng.NextBelow(mi.members.size())]);
        BATON_CHECK(joined.ok());
        mi.members.push_back(joined.peer);
        join.Add(static_cast<double>(joined.messages));

        // The paper's leave-cost claim concerns internal nodes (the leaver
        // polls all children): pick one when possible.
        size_t idx = rng.NextBelow(mi.members.size());
        for (size_t probe = 0; probe < mi.members.size(); ++probe) {
          size_t j = (idx + probe) % mi.members.size();
          if (!tree.node(mi.members[j]).children.empty()) {
            idx = j;
            break;
          }
        }
        auto left = mi.overlay->Leave(mi.members[idx]);
        BATON_CHECK(left.ok());
        mi.members.erase(mi.members.begin() + static_cast<long>(idx));
        leave.Add(static_cast<double>(left.messages));
      }
      for (int i = 0; i < opt.queries / 2; ++i) {
        auto r = mi.overlay->ExactSearch(
            mi.members[rng.NextBelow(mi.members.size())], keys.Next(&rng));
        BATON_CHECK(r.ok());
        search.Add(static_cast<double>(r.messages));
      }
    }
    table.AddRow({TablePrinter::Int(fanout), TablePrinter::Num(depth.mean(), 1),
                  TablePrinter::Num(kids.mean(), 2),
                  TablePrinter::Num(join.mean()),
                  TablePrinter::Num(leave.mean()),
                  TablePrinter::Num(search.mean())});
  }
  Emit("Ablation: multiway-tree fan-out trade-off (N=" + std::to_string(n) +
           ")",
       table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
