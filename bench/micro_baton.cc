// Micro benchmarks (google-benchmark) for the core data structures: position
// arithmetic, routing-table slot math, key storage, the flat position
// directory (vs std::unordered_map), the in-order member walk, end-to-end
// search on a prebuilt overlay, and the Zipf sampler.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "baton/baton.h"
#include "util/flat_map.h"
#include "util/zipf.h"
#include "workload/workload.h"

namespace baton {
namespace {

void BM_PositionInOrderKey(benchmark::State& state) {
  Position p{20, 12345};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.InOrderKey());
    p.number = (p.number % 100000) + 1;
  }
}
BENCHMARK(BM_PositionInOrderKey);

void BM_RoutingTableReset(benchmark::State& state) {
  Position p{static_cast<uint32_t>(state.range(0)), 1};
  p.number = p.LevelWidth() / 2 + 1;
  RoutingTable rt;
  for (auto _ : state) {
    rt.Reset(p, /*left=*/true);
    benchmark::DoNotOptimize(rt.size());
  }
}
BENCHMARK(BM_RoutingTableReset)->Arg(8)->Arg(16)->Arg(24);

void BM_KeyBagInsertErase(benchmark::State& state) {
  Rng rng(1);
  KeyBag bag;
  for (int i = 0; i < 1000; ++i) bag.Insert(rng.UniformInt(1, 1000000000));
  for (auto _ : state) {
    Key k = rng.UniformInt(1, 1000000000);
    bag.Insert(k);
    benchmark::DoNotOptimize(bag.Erase(k));
  }
}
BENCHMARK(BM_KeyBagInsertErase);

void BM_KeyBagCountInRange(benchmark::State& state) {
  Rng rng(2);
  KeyBag bag;
  for (int i = 0; i < 10000; ++i) bag.Insert(rng.UniformInt(1, 1000000000));
  for (auto _ : state) {
    Key lo = rng.UniformInt(1, 900000000);
    benchmark::DoNotOptimize(bag.CountInRange(lo, lo + 50000000));
  }
}
BENCHMARK(BM_KeyBagCountInRange);

// The directory probe sits inside every routing hop; compare the flat map
// against the node-based std::unordered_map it replaced, on a key set shaped
// like real position keys (Packed() of a dense balanced tree).
std::vector<uint64_t> PositionKeys(int count) {
  std::vector<uint64_t> keys;
  keys.reserve(static_cast<size_t>(count));
  Position pos = Position::Root();
  // Breadth-first over a full tree: levels fill left to right.
  for (int i = 0; i < count; ++i) {
    keys.push_back(pos.Packed());
    if (pos.number < pos.LevelWidth()) {
      ++pos.number;
    } else {
      pos = Position{pos.level + 1, 1};
    }
  }
  return keys;
}

void BM_FlatMapProbe(benchmark::State& state) {
  auto keys = PositionKeys(static_cast<int>(state.range(0)));
  util::FlatMap64<uint32_t> map;
  for (size_t i = 0; i < keys.size(); ++i) {
    map.Insert(keys[i], static_cast<uint32_t>(i));
  }
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(keys[rng.NextBelow(keys.size())]));
  }
}
BENCHMARK(BM_FlatMapProbe)->Arg(1024)->Arg(131072);

void BM_UnorderedMapProbe(benchmark::State& state) {
  auto keys = PositionKeys(static_cast<int>(state.range(0)));
  std::unordered_map<uint64_t, uint32_t> map;
  for (size_t i = 0; i < keys.size(); ++i) {
    map.emplace(keys[i], static_cast<uint32_t>(i));
  }
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[rng.NextBelow(keys.size())]));
  }
}
BENCHMARK(BM_UnorderedMapProbe)->Arg(1024)->Arg(131072);

void BM_FlatMapInsertErase(benchmark::State& state) {
  util::FlatMap64<uint32_t> map;
  auto keys = PositionKeys(4096);
  for (size_t i = 0; i < keys.size(); ++i) {
    map.Insert(keys[i], static_cast<uint32_t>(i));
  }
  Rng rng(8);
  for (auto _ : state) {
    uint64_t k = keys[rng.NextBelow(keys.size())];
    map.Erase(k);
    benchmark::DoNotOptimize(map.Insert(k, 1));
  }
}
BENCHMARK(BM_FlatMapInsertErase);

void BM_MembersInOrderWalk(benchmark::State& state) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 11);
  Rng rng(11);
  std::vector<net::PeerId> members{overlay.Bootstrap()};
  for (int i = 1; i < state.range(0); ++i) {
    members.push_back(
        overlay.Join(members[rng.NextBelow(members.size())]).value());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay.Members().size());
  }
}
BENCHMARK(BM_MembersInOrderWalk)->Arg(1024)->Arg(16384);

void BM_ExactSearch(benchmark::State& state) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 99);
  Rng rng(3);
  std::vector<net::PeerId> members{overlay.Bootstrap()};
  for (int i = 1; i < state.range(0); ++i) {
    members.push_back(
        overlay.Join(members[rng.NextBelow(members.size())]).value());
  }
  for (int i = 0; i < 10 * state.range(0); ++i) {
    Status s = overlay.Insert(members[rng.NextBelow(members.size())],
                              rng.UniformInt(1, 999999999));
    BATON_CHECK(s.ok());
  }
  for (auto _ : state) {
    auto res = overlay.ExactSearch(members[rng.NextBelow(members.size())],
                                   rng.UniformInt(1, 999999999));
    benchmark::DoNotOptimize(res.ok());
  }
}
BENCHMARK(BM_ExactSearch)->Arg(256)->Arg(1024)->Arg(4096);

void BM_JoinLeaveCycle(benchmark::State& state) {
  net::Network net;
  BatonNetwork overlay(BatonConfig{}, &net, 7);
  Rng rng(4);
  std::vector<net::PeerId> members{overlay.Bootstrap()};
  for (int i = 1; i < state.range(0); ++i) {
    members.push_back(
        overlay.Join(members[rng.NextBelow(members.size())]).value());
  }
  for (auto _ : state) {
    auto joined =
        overlay.Join(members[rng.NextBelow(members.size())]).value();
    members.push_back(joined);
    size_t idx = rng.NextBelow(members.size());
    BATON_CHECK(overlay.Leave(members[idx]).ok());
    members.erase(members.begin() + static_cast<long>(idx));
  }
}
BENCHMARK(BM_JoinLeaveCycle)->Arg(1024);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(5);
  ZipfGenerator zipf(1u << 20, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_UniformKeyGen(benchmark::State& state) {
  Rng rng(6);
  workload::UniformKeys gen(1, 1000000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(&rng));
  }
}
BENCHMARK(BM_UniformKeyGen);

}  // namespace
}  // namespace baton

BENCHMARK_MAIN();
