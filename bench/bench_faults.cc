// Graceful degradation under message loss, per backend: the resilience
// bench the fault subsystem (fault::Plan + fault::Policy) exists for.
//
// Per (backend, N, seed) the bench builds and preloads the overlay once,
// records a pure query trace (exact searches, plus range searches on
// backends that support them), then sweeps drop probability x retry budget
// over that identical state: each cell attaches a fresh seeded fault::Plan
// dropping (and optionally duplicating, --dup=P) query-category messages,
// installs a fault::Policy with the cell's retry budget, and replays the
// trace with the same origin rng stream -- cells differ ONLY in injected
// faults and recovery budget.
//
// The table shows the trade the policy buys: at retry budget 0 every
// dropped message kills its query (ok collapses as drop grows); budget
// r >= 1 re-issues lost queries from a rerouted origin (Overlay::
// RetryOrigin) and buys back success at the cost of extra messages and
// retries/op, with gave_up counting ops whose budget ran out anyway. A
// fault-free baseline row (drop 0, budget 0) anchors each backend. On
// backends with fail/recovery support a second table replays a
// workload::MakeCorrelatedFailTrace -- whole regions of consecutive
// canonical-order members crashing at once -- and reports how queries
// fare across the outage/recovery cycle.
//
// Everything is deterministic: same flags and --seed reproduce both tables
// byte-for-byte (plans are seeded per cell, origins per trace replay).
// The JSON mirror defaults to BENCH_faults.json (this bench's primary
// artifact); --json=PATH overrides it.
//
//   ./bench_faults --sizes=200 --seeds=1
//   ./bench_faults --overlay=baton,chord --drop=0.02,0.2 --retries=0,2
//       --dup=0.05 --latency=const:1
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common/experiment.h"
#include "fault/fault.h"
#include "workload/replay.h"

namespace baton {
namespace bench {
namespace {

constexpr Key kDomainHi = 1000000000;

/// One fault cell's outcomes over a query-trace replay, mergeable across
/// seeds.
struct CellOutcome {
  uint64_t ops = 0;
  uint64_t ok = 0;
  uint64_t gave_up = 0;
  uint64_t degraded = 0;
  uint64_t retries = 0;
  uint64_t dropped = 0;   // messages lost across all attempts
  uint64_t messages = 0;  // total message bill, retries included
  uint64_t latency = 0;   // total simulated ticks, backoff included

  void Merge(const CellOutcome& o) {
    ops += o.ops;
    ok += o.ok;
    gave_up += o.gave_up;
    degraded += o.degraded;
    retries += o.retries;
    dropped += o.dropped;
    messages += o.messages;
    latency += o.latency;
  }
};

/// Correlated-outage replay outcomes (kFailRecovery backends only).
struct BurstOutcome {
  bool supported = false;
  uint64_t bursts = 0;       // kFailRegion events executed
  uint64_t burst_msgs = 0;   // fail + recovery message bill
  uint64_t exact_ops = 0;
  uint64_t exact_ok = 0;
  uint64_t degraded = 0;     // ops that absorbed faults (burst rows)

  void Merge(const BurstOutcome& o) {
    supported = supported || o.supported;
    bursts += o.bursts;
    burst_msgs += o.burst_msgs;
    exact_ops += o.exact_ops;
    exact_ok += o.exact_ok;
    degraded += o.degraded;
  }
};

struct SeedResult {
  CellOutcome baseline;                         // faults detached
  std::vector<std::vector<CellOutcome>> cells;  // [drop][retry]
  BurstOutcome burst;
};

SeedResult RunSeed(const std::string& name, size_t n, int s,
                   const Options& opt) {
  uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
  workload::UniformKeys preload(1, kDomainHi);

  overlay::Config cfg = BalancedOverlayConfig();
  Instance inst;
  if (overlay::Make(name, cfg)->Supports(overlay::kOrderedGrowth)) {
    inst = BuildOverlay(name, n, seed, cfg, opt.keys_per_node, &preload);
  } else {
    Rng load_rng(Mix64(seed ^ 0x10ad));
    inst = BuildOverlay(name, n, seed, cfg);
    LoadOverlay(&inst, opt.keys_per_node, &preload, &load_rng);
  }
  AttachLatency(&inst, opt.latency, seed);
  overlay::Overlay* ov = inst.overlay.get();

  // One query trace replayed in every cell: exact searches plus (where
  // supported) range queries a few node-ranges wide. Queries mutate
  // nothing, so every cell sees the identical overlay.
  const bool ranges = ov->Supports(overlay::kRangeSearch);
  const Key range_width = static_cast<Key>(
      4 * (kDomainHi / static_cast<Key>(n == 0 ? 1 : n)));
  workload::Trace trace;
  {
    workload::UniformKeys gen(1, kDomainHi);
    Rng krng(Mix64(seed ^ 0x7a3e));
    trace.reserve(static_cast<size_t>(opt.queries));
    for (int q = 0; q < opt.queries; ++q) {
      if (ranges && q % 4 == 3) {
        Key lo = gen.Next(&krng);
        trace.push_back({workload::OpType::kRange, lo, lo + range_width});
      } else {
        trace.push_back({workload::OpType::kExact, gen.Next(&krng), 0});
      }
    }
  }

  // Replays the trace under the currently attached plan/policy. The origin
  // rng stream restarts identically per cell.
  auto run_cell = [&]() {
    CellOutcome out;
    Rng org(Mix64(seed ^ 0x0b51));
    for (const workload::Op& op : trace) {
      net::PeerId from = inst.members[org.NextBelow(inst.members.size())];
      overlay::OpStats st =
          op.type == workload::OpType::kRange
              ? ov->RangeSearch(from, op.key, op.key_hi)
              : ov->ExactSearch(from, op.key);
      ++out.ops;
      if (st.ok()) ++out.ok;
      if (st.gave_up) ++out.gave_up;
      if (st.degraded) ++out.degraded;
      out.retries += static_cast<uint64_t>(st.retries > 0 ? st.retries : 0);
      out.dropped += st.dropped_msgs;
      out.messages += st.messages;
      out.latency += st.latency_ticks;
    }
    return out;
  };

  SeedResult out;
  out.baseline = run_cell();  // faults detached: the byte-identical anchor
  out.cells.assign(opt.drop_rates.size(),
                   std::vector<CellOutcome>(opt.retry_budgets.size()));
  for (size_t d = 0; d < opt.drop_rates.size(); ++d) {
    for (size_t r = 0; r < opt.retry_budgets.size(); ++r) {
      fault::PlanConfig pcfg;
      pcfg.seed = Mix64(seed ^ (0xfad7u + (d << 8) + r));
      fault::Plan plan(pcfg);
      fault::LinkFaults lf;
      lf.drop = opt.drop_rates[d];
      lf.duplicate = opt.dup_rate;
      plan.SetCategoryFaults(net::MsgCategory::kQuery, lf);

      fault::Policy pol;
      pol.max_retries = opt.retry_budgets[r];
      pol.timeout_ticks = opt.timeout_ticks;
      pol.backoff_ticks = 4;
      ov->SetResilience(pol);
      ov->AttachFaults(&plan);
      out.cells[d][r] = run_cell();
      ov->AttachFaults(nullptr);
      ov->SetResilience(fault::Policy{});
    }
  }

  // Correlated regional outages (mutates the overlay: run last). The
  // replay fails bursts of consecutive canonical-order members, recovers
  // them, and interleaves queries -- the "subtree goes dark" scenario the
  // message-level sweep above cannot express.
  if (ov->Supports(overlay::kFailRecovery)) {
    out.burst.supported = true;
    workload::CorrelatedFailMix mix;
    mix.bursts = 3;
    mix.burst_width = 4;
    mix.exacts = static_cast<size_t>(opt.queries) / 4;
    mix.inserts = static_cast<size_t>(opt.queries) / 8;
    workload::UniformKeys gen(1, kDomainHi);
    Rng trng(Mix64(seed ^ 0xb0457));
    workload::Trace burst_trace =
        workload::MakeCorrelatedFailTrace(&trng, &gen, mix);
    Rng rrng(Mix64(seed ^ 0x4e91a));
    workload::ReplayResult rr =
        workload::Replay(*ov, burst_trace, &rrng, &inst.members);
    const workload::OpAggregate& fr =
        rr.of(workload::OpType::kFailRegion);
    const workload::OpAggregate& ex = rr.of(workload::OpType::kExact);
    out.burst.bursts = fr.count;
    out.burst.burst_msgs = fr.messages;
    out.burst.exact_ops = ex.count;
    out.burst.exact_ok = ex.ok;
    out.burst.degraded = fr.degraded + ex.degraded;
  }
  return out;
}

std::string Pct(uint64_t num, uint64_t den) {
  if (den == 0) return "n/a";
  return TablePrinter::Num(100.0 * static_cast<double>(num) /
                           static_cast<double>(den));
}

void Run(const Options& opt) {
  const std::vector<std::string> overlays = SelectedOverlays(opt);
  std::vector<SeedTask> tasks = SizeMajorTasks(opt, overlays);
  std::vector<SeedResult> results =
      RunTasks<SeedResult>(tasks, opt.threads, [&](const SeedTask& t) {
        return RunSeed(t.overlay, t.n, t.seed, opt);
      });

  TablePrinter table({"N", "overlay", "drop", "retries", "ops", "ok",
                      "ok_pct", "gave_up", "degraded", "retr/op", "dropped",
                      "msg/op", "lat/op"});
  auto add_row = [&](size_t n, const std::string& name,
                     const std::string& drop, const std::string& budget,
                     const CellOutcome& m) {
    auto per_op = [&](uint64_t v) {
      return m.ops == 0 ? "n/a"
                        : TablePrinter::Num(static_cast<double>(v) /
                                            static_cast<double>(m.ops));
    };
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)), name, drop,
                  budget, TablePrinter::Int(static_cast<int64_t>(m.ops)),
                  TablePrinter::Int(static_cast<int64_t>(m.ok)),
                  Pct(m.ok, m.ops),
                  TablePrinter::Int(static_cast<int64_t>(m.gave_up)),
                  TablePrinter::Int(static_cast<int64_t>(m.degraded)),
                  per_op(m.retries),
                  TablePrinter::Int(static_cast<int64_t>(m.dropped)),
                  per_op(m.messages), per_op(m.latency)});
  };

  TablePrinter bursts({"N", "overlay", "bursts", "width", "msg/burst",
                       "exact_ok_pct", "degraded"});
  bool any_burst = false;

  size_t idx = 0;
  for (size_t n : opt.sizes) {
    for (const std::string& name : overlays) {
      CellOutcome baseline;
      std::vector<std::vector<CellOutcome>> cells(
          opt.drop_rates.size(),
          std::vector<CellOutcome>(opt.retry_budgets.size()));
      BurstOutcome burst;
      for (int s = 0; s < opt.seeds; ++s) {
        const SeedResult& r = results[idx++];
        baseline.Merge(r.baseline);
        for (size_t d = 0; d < opt.drop_rates.size(); ++d) {
          for (size_t b = 0; b < opt.retry_budgets.size(); ++b) {
            cells[d][b].Merge(r.cells[d][b]);
          }
        }
        burst.Merge(r.burst);
      }
      add_row(n, name, "none", "0", baseline);
      for (size_t d = 0; d < opt.drop_rates.size(); ++d) {
        char drop[32];
        std::snprintf(drop, sizeof drop, "%.2f", opt.drop_rates[d]);
        for (size_t b = 0; b < opt.retry_budgets.size(); ++b) {
          char budget[32];
          std::snprintf(budget, sizeof budget, "%d", opt.retry_budgets[b]);
          add_row(n, name, drop, budget, cells[d][b]);
        }
      }
      if (burst.supported) {
        any_burst = true;
        auto per_burst =
            burst.bursts == 0
                ? std::string("n/a")
                : TablePrinter::Num(static_cast<double>(burst.burst_msgs) /
                                    static_cast<double>(burst.bursts));
        bursts.AddRow({TablePrinter::Int(static_cast<int64_t>(n)), name,
                       TablePrinter::Int(static_cast<int64_t>(burst.bursts)),
                       "4", per_burst,
                       Pct(burst.exact_ok, burst.exact_ops),
                       TablePrinter::Int(
                           static_cast<int64_t>(burst.degraded))});
      }
    }
  }
  Emit("Query success under message loss (drop rate x retry budget)", table,
       opt);
  if (any_burst) {
    Emit("Correlated regional outages (fail/recover bursts)", bursts, opt);
  }
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Options opt = baton::bench::ParseOptions(argc, argv);
  // This bench's JSON table is its primary artifact: default the mirror on.
  if (opt.json_path.empty()) {
    opt.json_path = "BENCH_faults.json";
    baton::bench::SetJsonMirror(opt.json_path);
  }
  baton::bench::Run(opt);
  return 0;
}
