// Figure 8(c): average messages per insert and delete operation vs network
// size, on a data-loaded network.
//
// Expected shape: BATON and Chord both ~log N, BATON slightly above Chord
// (tree height can reach 1.44 log2 N); the multiway tree clearly worse.
#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

void Run(const Options& opt) {
  TablePrinter table({"N", "baton_ins", "baton_del", "chord_ins", "chord_del",
                      "multiway_ins", "multiway_del"});
  for (size_t n : opt.sizes) {
    RunningStat bi_s, bd_s, ci_s, cd_s, mi_s, md_s;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8c));
      workload::UniformKeys keys(1, 1000000000);
      int ops = opt.queries;

      {
        auto bi = BuildBaton(n, seed, BalancedConfig(),
                             opt.keys_per_node, &keys);
        std::vector<Key> inserted;
        for (int i = 0; i < ops; ++i) {
          Key k = keys.Next(&rng);
          inserted.push_back(k);
          auto before = bi.net->Snapshot();
          BATON_CHECK(
              bi.overlay->Insert(bi.members[rng.NextBelow(bi.members.size())], k)
                  .ok());
          bi_s.Add(static_cast<double>(
              net::Network::Delta(before, bi.net->Snapshot())));
        }
        for (int i = 0; i < ops; ++i) {
          auto before = bi.net->Snapshot();
          BATON_CHECK(bi.overlay
                          ->Delete(bi.members[rng.NextBelow(bi.members.size())],
                                   inserted[static_cast<size_t>(i)])
                          .ok());
          bd_s.Add(static_cast<double>(
              net::Network::Delta(before, bi.net->Snapshot())));
        }
      }
      {
        auto ci = BuildChord(n, seed);
        LoadChord(&ci, opt.keys_per_node, &keys, &rng);
        std::vector<Key> inserted;
        for (int i = 0; i < ops; ++i) {
          Key k = keys.Next(&rng);
          inserted.push_back(k);
          auto before = ci.net->Snapshot();
          BATON_CHECK(
              ci.ring->Insert(ci.members[rng.NextBelow(ci.members.size())], k)
                  .ok());
          ci_s.Add(static_cast<double>(
              net::Network::Delta(before, ci.net->Snapshot())));
        }
        for (int i = 0; i < ops; ++i) {
          auto before = ci.net->Snapshot();
          BATON_CHECK(ci.ring
                          ->Delete(ci.members[rng.NextBelow(ci.members.size())],
                                   inserted[static_cast<size_t>(i)])
                          .ok());
          cd_s.Add(static_cast<double>(
              net::Network::Delta(before, ci.net->Snapshot())));
        }
      }
      {
        auto mi = BuildMultiway(n, seed, 4, opt.keys_per_node, &keys);
        std::vector<Key> inserted;
        for (int i = 0; i < ops; ++i) {
          Key k = keys.Next(&rng);
          inserted.push_back(k);
          auto before = mi.net->Snapshot();
          BATON_CHECK(
              mi.tree->Insert(mi.members[rng.NextBelow(mi.members.size())], k)
                  .ok());
          mi_s.Add(static_cast<double>(
              net::Network::Delta(before, mi.net->Snapshot())));
        }
        for (int i = 0; i < ops; ++i) {
          auto before = mi.net->Snapshot();
          BATON_CHECK(mi.tree
                          ->Delete(mi.members[rng.NextBelow(mi.members.size())],
                                   inserted[static_cast<size_t>(i)])
                          .ok());
          md_s.Add(static_cast<double>(
              net::Network::Delta(before, mi.net->Snapshot())));
        }
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(bi_s.mean()), TablePrinter::Num(bd_s.mean()),
                  TablePrinter::Num(ci_s.mean()), TablePrinter::Num(cd_s.mean()),
                  TablePrinter::Num(mi_s.mean()),
                  TablePrinter::Num(md_s.mean())});
  }
  Emit("Fig 8(c): avg messages per insert / delete", table, opt.csv);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
