// Figure 8(c): average messages per insert and delete operation vs network
// size, on a data-loaded network. One generic series per backend: insert
// `queries` keys, then delete them, reading each operation's cost straight
// from OpStats::messages.
//
// Expected shape: BATON and Chord both ~log N, BATON slightly above Chord
// (tree height can reach 1.44 log2 N); the multiway tree clearly worse.
#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

void InsertDeleteSeries(Instance* inst, Rng* rng, workload::KeyGenerator* keys,
                        int ops, RunningStat* ins_stat, RunningStat* del_stat) {
  std::vector<Key> inserted;
  for (int i = 0; i < ops; ++i) {
    Key k = keys->Next(rng);
    inserted.push_back(k);
    auto st = inst->overlay->Insert(
        inst->members[rng->NextBelow(inst->members.size())], k);
    BATON_CHECK(st.ok());
    ins_stat->Add(static_cast<double>(st.messages));
  }
  for (int i = 0; i < ops; ++i) {
    auto st = inst->overlay->Delete(
        inst->members[rng->NextBelow(inst->members.size())],
        inserted[static_cast<size_t>(i)]);
    BATON_CHECK(st.ok());
    del_stat->Add(static_cast<double>(st.messages));
  }
}

void Run(const Options& opt) {
  TablePrinter table({"N", "baton_ins", "baton_del", "chord_ins", "chord_del",
                      "multiway_ins", "multiway_del"});
  for (size_t n : opt.sizes) {
    RunningStat bi_s, bd_s, ci_s, cd_s, mi_s, md_s;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8c));
      workload::UniformKeys keys(1, 1000000000);
      int ops = opt.queries;

      {
        auto bi = BuildOverlay("baton", n, seed, BalancedOverlayConfig(),
                               opt.keys_per_node, &keys);
        InsertDeleteSeries(&bi, &rng, &keys, ops, &bi_s, &bd_s);
      }
      {
        auto ci = BuildOverlay("chord", n, seed);
        LoadOverlay(&ci, opt.keys_per_node, &keys, &rng);
        InsertDeleteSeries(&ci, &rng, &keys, ops, &ci_s, &cd_s);
      }
      {
        auto mi = BuildOverlay("multiway", n, seed, {}, opt.keys_per_node,
                               &keys);
        InsertDeleteSeries(&mi, &rng, &keys, ops, &mi_s, &md_s);
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(bi_s.mean()), TablePrinter::Num(bd_s.mean()),
                  TablePrinter::Num(ci_s.mean()), TablePrinter::Num(cd_s.mean()),
                  TablePrinter::Num(mi_s.mean()),
                  TablePrinter::Num(md_s.mean())});
  }
  Emit("Fig 8(c): avg messages per insert / delete", table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
