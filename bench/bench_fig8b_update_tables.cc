// Figure 8(b): average messages to update routing tables after a join or a
// leave, vs network size.
//
// Expected shape: BATON stays O(log N) (the paper's 6 log N join / 8 log N
// leave bounds); Chord pays O(log^2 N) (finger initialisation plus
// update_others) and dominates; the multiway tree is cheapest (it maintains
// almost no routing state -- and pays for it in search cost, Fig 8(d)).
#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

constexpr int kChurnOps = 100;

void Run(const Options& opt) {
  TablePrinter table({"N", "baton_join", "baton_leave", "chord_join",
                      "chord_leave", "multiway_join", "multiway_leave"});
  for (size_t n : opt.sizes) {
    RunningStat bj, bl, cj, cl, mj, ml;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8b));

      workload::UniformKeys keys(1, 1000000000);
      {
        auto bi = BuildBaton(n, seed, BalancedConfig(),
                             opt.keys_per_node, &keys);
        for (int i = 0; i < kChurnOps; ++i) {
          auto before = bi.net->Snapshot();
          auto joined = bi.overlay->Join(
              bi.members[rng.NextBelow(bi.members.size())]);
          BATON_CHECK(joined.ok());
          bi.members.push_back(joined.value());
          auto mid = bi.net->Snapshot();
          bj.Add(static_cast<double>(MaintenanceDelta(before, mid)));

          size_t idx = rng.NextBelow(bi.members.size());
          BATON_CHECK(bi.overlay->Leave(bi.members[idx]).ok());
          bi.members.erase(bi.members.begin() + static_cast<long>(idx));
          auto after = bi.net->Snapshot();
          bl.Add(static_cast<double>(MaintenanceDelta(mid, after)));
        }
      }
      {
        auto ci = BuildChord(n, seed);
        auto update_types = {net::MsgType::kChordJoinInit,
                             net::MsgType::kChordUpdateOthers,
                             net::MsgType::kChordNotify,
                             net::MsgType::kChordKeyMove};
        for (int i = 0; i < kChurnOps; ++i) {
          auto before = ci.net->Snapshot();
          auto joined =
              ci.ring->Join(ci.members[rng.NextBelow(ci.members.size())]);
          BATON_CHECK(joined.ok());
          ci.members.push_back(joined.value());
          auto mid = ci.net->Snapshot();
          cj.Add(static_cast<double>(SumTypes(before, mid, update_types)));

          size_t idx = rng.NextBelow(ci.members.size());
          BATON_CHECK(ci.ring->Leave(ci.members[idx]).ok());
          ci.members.erase(ci.members.begin() + static_cast<long>(idx));
          auto after = ci.net->Snapshot();
          cl.Add(static_cast<double>(SumTypes(mid, after, update_types)));
        }
      }
      {
        auto mi = BuildMultiway(n, seed, 4, opt.keys_per_node, &keys);
        auto update_types = {net::MsgType::kMultiwayLinkUpdate,
                             net::MsgType::kContentTransfer};
        for (int i = 0; i < kChurnOps; ++i) {
          auto before = mi.net->Snapshot();
          auto joined =
              mi.tree->Join(mi.members[rng.NextBelow(mi.members.size())]);
          BATON_CHECK(joined.ok());
          mi.members.push_back(joined.value());
          auto mid = mi.net->Snapshot();
          mj.Add(static_cast<double>(SumTypes(before, mid, update_types)));

          size_t idx = rng.NextBelow(mi.members.size());
          BATON_CHECK(mi.tree->Leave(mi.members[idx]).ok());
          mi.members.erase(mi.members.begin() + static_cast<long>(idx));
          auto after = mi.net->Snapshot();
          ml.Add(static_cast<double>(SumTypes(mid, after, update_types)));
        }
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(bj.mean()), TablePrinter::Num(bl.mean()),
                  TablePrinter::Num(cj.mean()), TablePrinter::Num(cl.mean()),
                  TablePrinter::Num(mj.mean()), TablePrinter::Num(ml.mean())});
  }
  Emit("Fig 8(b): avg messages to update routing tables on join / leave",
       table, opt.csv);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
