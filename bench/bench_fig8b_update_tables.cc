// Figure 8(b): average messages to update routing tables after a join or a
// leave, vs network size.
//
// Expected shape: BATON stays O(log N) (the paper's 6 log N join / 8 log N
// leave bounds); Chord pays O(log^2 N) (finger initialisation plus
// update_others) and dominates; the multiway tree is cheapest (it maintains
// almost no routing state -- and pays for it in search cost, Fig 8(d)).
#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

constexpr int kChurnOps = 100;

/// JoinLeaveChurn with one `cost` mapping a snapshot pair to the
/// table-update message count, applied to both phases.
template <typename CostFn>
void ChurnSeries(Instance* inst, Rng* rng, CostFn&& cost,
                 RunningStat* join_stat, RunningStat* leave_stat) {
  JoinLeaveChurn(inst, rng, kChurnOps, cost, cost, join_stat, leave_stat);
}

void Run(const Options& opt) {
  TablePrinter table({"N", "baton_join", "baton_leave", "chord_join",
                      "chord_leave", "multiway_join", "multiway_leave"});
  for (size_t n : opt.sizes) {
    RunningStat bj, bl, cj, cl, mj, ml;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8b));

      workload::UniformKeys keys(1, 1000000000);
      {
        auto bi = BuildOverlay("baton", n, seed, BalancedOverlayConfig(),
                               opt.keys_per_node, &keys);
        ChurnSeries(
            &bi, &rng,
            [](const auto& a, const auto& b) { return MaintenanceDelta(a, b); },
            &bj, &bl);
      }
      {
        auto ci = BuildOverlay("chord", n, seed);
        auto update_types = {net::MsgType::kChordJoinInit,
                             net::MsgType::kChordUpdateOthers,
                             net::MsgType::kChordNotify,
                             net::MsgType::kChordKeyMove};
        ChurnSeries(
            &ci, &rng,
            [&](const auto& a, const auto& b) {
              return SumTypes(a, b, update_types);
            },
            &cj, &cl);
      }
      {
        auto mi = BuildOverlay("multiway", n, seed, {}, opt.keys_per_node,
                               &keys);
        auto update_types = {net::MsgType::kMultiwayLinkUpdate,
                             net::MsgType::kContentTransfer};
        ChurnSeries(
            &mi, &rng,
            [&](const auto& a, const auto& b) {
              return SumTypes(a, b, update_types);
            },
            &mj, &ml);
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(bj.mean()), TablePrinter::Num(bl.mean()),
                  TablePrinter::Num(cj.mean()), TablePrinter::Num(cl.mean()),
                  TablePrinter::Num(mj.mean()), TablePrinter::Num(ml.mean())});
  }
  Emit("Fig 8(b): avg messages to update routing tables on join / leave",
       table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
