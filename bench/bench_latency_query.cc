// Simulated query latency vs network size, per backend -- the time-based
// comparison the paper could not make (it measured message counts only,
// which "cannot distinguish a sequential 10-hop search from a 10-way
// parallel fan-out").
//
// Per backend and size the bench builds the overlay, attaches the sim/
// event kernel, and measures exact searches plus 0.1%-selectivity range
// queries. Columns:
//   exact_hops / exact_lat   routing hops and critical-path ticks per exact
//                            search (equal under --latency=const:1: exact
//                            routing is purely sequential)
//   range_msgs / range_lat   messages and critical-path ticks per range
//                            query; BATON's scan disseminates through
//                            routing-table delegations, so its latency
//                            grows like O(log N + log X), not O(log N + X)
//   range_par                range_msgs / range_lat: effective parallelism
//                            of the range scan (1.0 = fully sequential)
//
// The latency model defaults to const:1 so ticks read as "sequential hop
// equivalents"; pass --latency=uniform:LO,HI for jittered links. Every
// (backend, N, seed) run is an independent task (own Instance, network and
// sim kernel), so --threads=N runs them on a worker pool; per-query samples
// are aggregated in task order afterwards, keeping the output
// byte-identical to a sequential run.
//
// hops_p50/p99 and lat_p50/p99 report the exact-search tails from
// log-bucket histograms merged across seeds; --trace=PATH / --metrics=PATH
// additionally record per-task causal traces and metrics snapshots.
//
// --key-dist=zipf:THETA skews which keys the exact searches ask for (the
// first --key-dist entry; preloaded data stays uniform, so this isolates
// request skew). Default uniform reproduces the original output exactly.
//
//   ./bench_latency_query --sizes=200 --seeds=1
//   ./bench_latency_query --overlay=baton,d3tree --latency=uniform:5,20
#include <string>
#include <vector>

#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

constexpr Key kDomainHi = 1000000000;

/// Per-query samples from one (backend, N, seed) task.
struct SeedSample {
  std::vector<double> exact_hops, exact_lat;
  std::vector<double> range_msgs, range_lat, range_par;
  bool range_supported = true;
  /// Same exact-search samples as distributions, for the tail columns.
  obs::LogHistogram hops_hist, lat_hist;
  /// Kept alive past the Instance for --trace/--metrics serialization.
  std::unique_ptr<obs::Observer> observer;
};

SeedSample RunSeed(const std::string& name, size_t n, int s,
                   const Options& opt) {
  SeedSample out;
  const Key width = kDomainHi / 1000;  // 0.1% selectivity, as in Fig 8(e)
  uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
  workload::UniformKeys keys(1, kDomainHi);  // preload: stored-data dist
  // Request-key distribution: uniform unless --key-dist says otherwise
  // (uniform draws are identical to the preload generator's, so the default
  // output is byte-identical to the pre-flag bench).
  KeyDistSpec qdist = opt.key_dists.empty() ? KeyDistSpec{} : opt.key_dists[0];
  std::unique_ptr<workload::KeyGenerator> query_keys =
      MakeKeyGenerator(qdist, 1, kDomainHi);

  overlay::Config cfg = BalancedOverlayConfig();
  Instance inst;
  if (overlay::Make(name, cfg)->Supports(overlay::kOrderedGrowth)) {
    inst = BuildOverlay(name, n, seed, cfg, opt.keys_per_node, &keys);
  } else {
    Rng load_rng(Mix64(seed ^ 0x10ad));
    inst = BuildOverlay(name, n, seed, cfg);
    LoadOverlay(&inst, opt.keys_per_node, &keys, &load_rng);
  }
  AttachLatency(&inst, opt.latency, seed);
  if (opt.obs_enabled()) {
    AttachObserver(&inst, /*tracing=*/!opt.trace_path.empty());
  }

  Rng rng(Mix64(seed ^ 0x1a7e));
  for (int q = 0; q < opt.queries; ++q) {
    auto st = inst.overlay->ExactSearch(
        inst.members[rng.NextBelow(inst.members.size())],
        query_keys->Next(&rng));
    BATON_CHECK(st.ok()) << st.status.ToString();
    out.exact_hops.push_back(static_cast<double>(st.hops));
    out.exact_lat.push_back(static_cast<double>(st.latency_ticks));
    out.hops_hist.Add(st.hops > 0 ? static_cast<uint64_t>(st.hops) : 0);
    out.lat_hist.Add(st.latency_ticks);
  }
  if (!inst.overlay->Supports(overlay::kRangeSearch)) {
    out.range_supported = false;
    out.observer = std::move(inst.observer);
    return out;
  }
  for (int q = 0; q < opt.queries; ++q) {
    Key lo = rng.UniformInt(1, kDomainHi - width - 1);
    auto st = inst.overlay->RangeSearch(
        inst.members[rng.NextBelow(inst.members.size())], lo, lo + width);
    BATON_CHECK(st.ok()) << st.status.ToString();
    out.range_msgs.push_back(static_cast<double>(st.messages));
    out.range_lat.push_back(static_cast<double>(st.latency_ticks));
    if (st.latency_ticks > 0) {
      out.range_par.push_back(static_cast<double>(st.messages) /
                              static_cast<double>(st.latency_ticks));
    }
  }
  out.observer = std::move(inst.observer);
  return out;
}

void Run(const Options& opt) {
  const std::vector<std::string> overlays = SelectedOverlays(opt);
  std::vector<SeedTask> tasks = SizeMajorTasks(opt, overlays);
  std::vector<SeedSample> results =
      RunTasks<SeedSample>(tasks, opt.threads, [&](const SeedTask& t) {
        return RunSeed(t.overlay, t.n, t.seed, opt);
      });

  TablePrinter table({"N", "overlay", "exact_hops", "hops_p50", "hops_p99",
                      "exact_lat", "lat_p50", "lat_p99", "range_msgs",
                      "range_lat", "range_par"});
  size_t idx = 0;
  for (size_t n : opt.sizes) {
    for (const std::string& name : overlays) {
      struct {
        RunningStat exact_hops, exact_lat, range_msgs, range_lat, range_par;
        obs::LogHistogram hops_hist, lat_hist;
        bool range_supported = true;
      } st;
      for (int s = 0; s < opt.seeds; ++s) {
        const SeedSample& r = results[idx++];
        for (double v : r.exact_hops) st.exact_hops.Add(v);
        for (double v : r.exact_lat) st.exact_lat.Add(v);
        st.hops_hist.Merge(r.hops_hist);
        st.lat_hist.Merge(r.lat_hist);
        if (!r.range_supported) st.range_supported = false;
        for (double v : r.range_msgs) st.range_msgs.Add(v);
        for (double v : r.range_lat) st.range_lat.Add(v);
        for (double v : r.range_par) st.range_par.Add(v);
      }
      auto p = [](const obs::LogHistogram& h, double q) {
        return TablePrinter::Int(static_cast<int64_t>(h.Quantile(q)));
      };
      table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)), name,
                    TablePrinter::Num(st.exact_hops.mean()),
                    p(st.hops_hist, 0.50), p(st.hops_hist, 0.99),
                    TablePrinter::Num(st.exact_lat.mean()),
                    p(st.lat_hist, 0.50), p(st.lat_hist, 0.99),
                    st.range_supported ? TablePrinter::Num(st.range_msgs.mean())
                                       : "n/a",
                    st.range_supported ? TablePrinter::Num(st.range_lat.mean())
                                       : "n/a",
                    st.range_supported ? TablePrinter::Num(st.range_par.mean())
                                       : "n/a"});
    }
  }
  Emit("Query latency vs network size (ticks, critical path)", table, opt);
  std::vector<const obs::Observer*> observers;
  observers.reserve(results.size());
  for (const SeedSample& r : results) observers.push_back(r.observer.get());
  WriteObsArtifacts(opt, tasks, observers);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Options opt = baton::bench::ParseOptions(argc, argv);
  if (!opt.latency.enabled()) {
    // A latency bench without a latency model would print zeros; default to
    // one tick per hop so ticks read as sequential-hop equivalents.
    opt.latency.kind = baton::bench::LatencySpec::Kind::kConst;
    opt.latency.lo = opt.latency.hi = 1;
  }
  baton::bench::Run(opt);
  return 0;
}
