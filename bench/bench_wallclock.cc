// Wall-clock throughput harness: the first point on the repo's performance
// trajectory. Where every fig8/ablation bench measures *protocol* cost
// (message counts, which must never change), this one measures *simulator*
// cost: how fast the machine actually executes builds, loads, query replays
// and churn, per backend and network size.
//
// Phases per (backend, N, seed):
//   build   Bootstrap + N-1 joins through random contacts   -> joins/sec
//   load    keys-per-node * N uniform inserts               -> inserts/sec
//   replay  --queries exact-match queries via workload::Replay -> queries/sec
//   churn   --queries/2 join+leave pairs                    -> ops/sec
//
// Every row mirrors into BENCH_wallclock.json (or --json=PATH) with the
// schema {backend, N, seed, op, ops, wall_ms, ops_per_sec} so CI can track
// the trajectory across PRs. A scale sweep is just --sizes: e.g.
//   bench_wallclock --overlay=baton --sizes=131072 --seeds=1 --keys=10
//       --phases=build,load,replay
// demonstrates a 131k-node BATON build, 13x the paper's largest experiment.
//
// Each (backend, N, seed) triple is an independent task; --threads=N runs
// them on a worker pool and appends their rows in task order, cutting a
// multi-backend sweep's wall-clock roughly by the thread count. Concurrent
// tasks share the machine, so per-row timings are noisier than a
// sequential run -- keep --threads=1 (the default) when absolute numbers
// matter more than total sweep time.
//
// --phases=a,b,c (default: all four) selects phases. Churn is excluded from
// the 100k+ sweep: a data-less build at that scale leaves width-1 range
// slivers at the in-order boundaries of early internal nodes (a node keeps
// its slice once both children are taken, and later joiners halve the
// neighbouring slivers indefinitely), and the join walk can starve inside a
// cluster of such sliver nodes -- a pre-existing protocol-scale limitation
// recorded in ROADMAP.md, not a wall-clock matter.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common/experiment.h"
#include "workload/replay.h"

namespace baton {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

using Rows = std::vector<std::vector<std::string>>;

void AddPhaseRow(Rows* rows, const std::string& backend, size_t n, int seed,
                 const char* op, uint64_t ops, double wall_ms) {
  double secs = wall_ms / 1000.0;
  double rate = secs > 0 ? static_cast<double>(ops) / secs : 0.0;
  rows->push_back({backend, TablePrinter::Int(static_cast<int64_t>(n)),
                   TablePrinter::Int(seed), op,
                   TablePrinter::Int(static_cast<int64_t>(ops)),
                   TablePrinter::Num(wall_ms, 2), TablePrinter::Num(rate, 1)});
}

struct Phases {
  /// The build always executes (later phases need the overlay); the flag
  /// only controls whether its timing row is reported.
  bool build = true;
  bool load = true;
  bool replay = true;
  bool churn = true;
};

Rows RunOne(const std::string& backend, size_t n, int seed_idx,
            const Options& opt, const Phases& phases) {
  Rows rows;
  uint64_t seed = opt.base_seed + static_cast<uint64_t>(seed_idx);

  // build: same growth loop as every figure bench (BuildOverlay), timed.
  // The join walk's hop-budget safety net defaults to a value calibrated
  // for the paper's N <= 10k; the 100k+ scale sweep needs more detour room
  // for the randomized walk (the budget changes nothing unless the walk
  // would otherwise abort -- protocol decisions and message costs are
  // untouched).
  overlay::Config cfg;
  cfg.baton.max_hops_factor = 64;
  auto t0 = Clock::now();
  Instance inst = BuildOverlay(backend, n, seed, cfg);
  double build_ms = MsSince(t0);
  if (phases.build) {
    AddPhaseRow(&rows, backend, n, seed_idx, "build", n, build_ms);
  }

  Rng rng(Mix64(seed ^ 0x3a11c10c));
  workload::UniformKeys gen(1, 1000000000);

  // load: keys-per-node * N inserts from random origins.
  uint64_t loads = opt.keys_per_node * n;
  if (phases.load && loads > 0) {
    t0 = Clock::now();
    LoadOverlay(&inst, opt.keys_per_node, &gen, &rng);
    AddPhaseRow(&rows, backend, n, seed_idx, "load", loads, MsSince(t0));
  }

  // replay: exact-match queries through the overlay-generic driver.
  if (phases.replay && opt.queries > 0) {
    workload::Trace trace = workload::MakeMixedTrace(
        &rng, &gen, 0, 0, static_cast<size_t>(opt.queries), 0, 0);
    t0 = Clock::now();
    workload::Replay(*inst.overlay, trace, &rng, &inst.members);
    AddPhaseRow(&rows, backend, n, seed_idx, "replay",
                static_cast<uint64_t>(opt.queries), MsSince(t0));
  }

  // churn: join+leave pairs (each pair is two membership ops).
  int pairs = opt.queries / 2;
  if (phases.churn && pairs > 0) {
    t0 = Clock::now();
    for (int i = 0; i < pairs; ++i) {
      auto joined = inst.overlay->Join(
          inst.members[rng.NextBelow(inst.members.size())]);
      BATON_CHECK(joined.ok()) << joined.status.ToString();
      inst.members.push_back(joined.peer);
      size_t idx = rng.NextBelow(inst.members.size());
      auto left = inst.overlay->Leave(inst.members[idx]);
      BATON_CHECK(left.ok()) << left.status.ToString();
      inst.members.erase(inst.members.begin() + static_cast<long>(idx));
    }
    AddPhaseRow(&rows, backend, n, seed_idx, "churn",
                static_cast<uint64_t>(2 * pairs), MsSince(t0));
  }
  return rows;
}

Phases ParsePhases(const char* arg) {
  Phases p;
  p.build = p.load = p.replay = p.churn = false;
  std::string cur;
  auto take = [&]() {
    if (cur.empty()) return;
    if (cur == "build") {
      p.build = true;
    } else if (cur == "load") {
      p.load = true;
    } else if (cur == "replay") {
      p.replay = true;
    } else if (cur == "churn") {
      p.churn = true;
    } else {
      std::fprintf(stderr,
                   "bad --phases value '%s' (want build,load,replay,churn)\n",
                   cur.c_str());
      std::exit(2);
    }
    cur.clear();
  };
  for (const char* c = arg;; ++c) {
    if (*c == ',' || *c == '\0') {
      take();
      if (*c == '\0') break;
    } else {
      cur += *c;
    }
  }
  if (!p.build && !p.load && !p.replay && !p.churn) {
    std::fprintf(stderr, "--phases needs at least one phase\n");
    std::exit(2);
  }
  return p;
}

int Main(int argc, char** argv) {
  // Strip this bench's own --phases flag before the shared option parser
  // (which rejects unknown flags) sees the command line.
  Phases phases;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--phases=", 9) == 0) {
      phases = ParsePhases(argv[i] + 9);
    } else {
      rest.push_back(argv[i]);
    }
  }
  Options opt = ParseOptions(static_cast<int>(rest.size()), rest.data());
  // This bench's JSON table is its primary artifact: default the mirror on.
  if (opt.json_path.empty()) {
    opt.json_path = "BENCH_wallclock.json";
    SetJsonMirror(opt.json_path);
  }

  std::vector<SeedTask> tasks = BackendMajorTasks(opt, SelectedOverlays(opt));
  std::vector<Rows> results =
      RunTasks<Rows>(tasks, opt.threads, [&](const SeedTask& t) {
        return RunOne(t.overlay, t.n, t.seed, opt, phases);
      });

  TablePrinter table({"backend", "N", "seed", "op", "ops", "wall_ms",
                      "ops_per_sec"});
  for (const Rows& rows : results) {
    for (const std::vector<std::string>& row : rows) table.AddRow(row);
  }
  Emit("Wall-clock throughput (simulator execution speed, not messages)",
       table, opt);
  std::printf("JSON rows written to %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) { return baton::bench::Main(argc, argv); }
