// Figure 8(e): average messages per range query vs network size. Chord is
// absent by design: "hashing destroys the ordering of data", so a DHT cannot
// answer range queries without flooding.
//
// Expected shape: BATON ~ O(log N + X) where X is the number of nodes the
// range spans; the multiway tree pays its more expensive routing phase.
#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

constexpr Key kDomainHi = 1000000000;

void Run(const Options& opt) {
  // Queries cover 0.1% of the key space: at N = 10000 that is ~10 nodes.
  const Key width = kDomainHi / 1000;
  TablePrinter table(
      {"N", "baton", "baton_nodes", "multiway", "multiway_nodes", "chord"});
  for (size_t n : opt.sizes) {
    RunningStat b, bn, m, mn;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8e));
      workload::UniformKeys keys(1, kDomainHi);

      {
        auto bi = BuildBaton(n, seed, BalancedConfig(),
                             opt.keys_per_node, &keys);
        for (int i = 0; i < opt.queries; ++i) {
          Key lo = rng.UniformInt(1, kDomainHi - width - 1);
          auto before = bi.net->Snapshot();
          auto res = bi.overlay->RangeSearch(
              bi.members[rng.NextBelow(bi.members.size())], lo, lo + width);
          BATON_CHECK(res.ok());
          b.Add(static_cast<double>(
              net::Network::Delta(before, bi.net->Snapshot())));
          bn.Add(static_cast<double>(res.value().nodes.size()));
        }
      }
      {
        auto mi = BuildMultiway(n, seed, 4, opt.keys_per_node, &keys);
        for (int i = 0; i < opt.queries; ++i) {
          Key lo = rng.UniformInt(1, kDomainHi - width - 1);
          auto before = mi.net->Snapshot();
          auto res = mi.tree->RangeSearch(
              mi.members[rng.NextBelow(mi.members.size())], lo, lo + width);
          BATON_CHECK(res.ok());
          m.Add(static_cast<double>(
              net::Network::Delta(before, mi.net->Snapshot())));
          mn.Add(static_cast<double>(res.value().nodes.size()));
        }
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(b.mean()), TablePrinter::Num(bn.mean()),
                  TablePrinter::Num(m.mean()), TablePrinter::Num(mn.mean()),
                  "n/a"});
  }
  Emit("Fig 8(e): avg messages per range query (0.1% selectivity)", table,
       opt.csv);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
