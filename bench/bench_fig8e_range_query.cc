// Figure 8(e): average messages per range query vs network size. Chord is
// absent by design: "hashing destroys the ordering of data", so a DHT cannot
// answer range queries without flooding (Capability::kRangeSearch is how the
// generic API expresses that).
//
// Expected shape: BATON ~ O(log N + X) where X is the number of nodes the
// range spans; the multiway tree pays its more expensive routing phase.
#include "bench_common/experiment.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

constexpr Key kDomainHi = 1000000000;

void RangeSeries(Instance* inst, Rng* rng, Key width, int queries,
                 RunningStat* msgs, RunningStat* nodes) {
  for (int i = 0; i < queries; ++i) {
    Key lo = rng->UniformInt(1, kDomainHi - width - 1);
    auto st = inst->overlay->RangeSearch(
        inst->members[rng->NextBelow(inst->members.size())], lo, lo + width);
    BATON_CHECK(st.ok());
    msgs->Add(static_cast<double>(st.messages));
    nodes->Add(static_cast<double>(st.nodes));
  }
}

void Run(const Options& opt) {
  // Queries cover 0.1% of the key space: at N = 10000 that is ~10 nodes.
  const Key width = kDomainHi / 1000;
  TablePrinter table(
      {"N", "baton", "baton_nodes", "multiway", "multiway_nodes", "chord"});
  for (size_t n : opt.sizes) {
    RunningStat b, bn, m, mn;
    for (int s = 0; s < opt.seeds; ++s) {
      uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
      Rng rng(Mix64(seed ^ 0x8e));
      workload::UniformKeys keys(1, kDomainHi);

      {
        auto bi = BuildOverlay("baton", n, seed, BalancedOverlayConfig(),
                               opt.keys_per_node, &keys);
        RangeSeries(&bi, &rng, width, opt.queries, &b, &bn);
      }
      {
        auto mi = BuildOverlay("multiway", n, seed, {}, opt.keys_per_node,
                               &keys);
        RangeSeries(&mi, &rng, width, opt.queries, &m, &mn);
      }
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(n)),
                  TablePrinter::Num(b.mean()), TablePrinter::Num(bn.mean()),
                  TablePrinter::Num(m.mean()), TablePrinter::Num(mn.mean()),
                  "n/a"});
  }
  Emit("Fig 8(e): avg messages per range query (0.1% selectivity)", table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
