// Ablation (section IV-D design choice): adjacent-only load balancing vs the
// paper's full two-mode scheme (adjacent + remote leaf recruiting with
// forced restructuring), under a Zipf(1.0) insert stream.
//
// Expected: adjacent-only lets load "ripple through the network" -- the hot
// region stays overloaded and migration traffic grows -- while recruiting
// moves spare capacity into the hot region and caps the maximum load.
#include "bench_common/experiment.h"
#include "overlay/baton_overlay.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

struct Outcome {
  double max_over_avg = 0;   // max node load / average load
  double lb_msgs_per_op = 0; // balancing messages per inserted key
  double lb_ops = 0;
};

Outcome RunOne(size_t n, uint64_t seed, size_t keys_per_node, int scheme) {
  overlay::Config cfg;
  cfg.baton = BalancedConfig();
  cfg.baton.enable_remote_recruit = scheme >= 1;
  cfg.baton.enable_recruit_directory = scheme >= 2;
  workload::UniformKeys preload(1, 1000000000);
  auto bi = BuildOverlay("baton", n, seed, cfg, keys_per_node, &preload);
  const BatonNetwork& tree = overlay::BatonBackend(*bi.overlay);
  Rng rng(Mix64(seed ^ 0xab1));
  workload::ZipfKeys zipf(1, 1000000000, 1.0);

  auto base = bi.net()->Snapshot();
  uint64_t total = keys_per_node * n;
  uint64_t routing = 0;
  for (uint64_t i = 0; i < total; ++i) {
    auto before = bi.net()->Snapshot();
    auto st = bi.overlay->Insert(
        bi.members[rng.NextBelow(bi.members.size())], zipf.Next(&rng));
    BATON_CHECK(st.ok()) << st.status.ToString();
    routing += SumTypes(before, bi.net()->Snapshot(), {net::MsgType::kInsert});
  }
  bi.overlay->CheckInvariants();

  Outcome out;
  size_t max_load = 0;
  for (net::PeerId p : bi.overlay->Members()) {
    max_load = std::max(max_load, tree.node(p).data.size());
  }
  double avg = static_cast<double>(bi.overlay->total_keys()) /
               static_cast<double>(bi.overlay->size());
  out.max_over_avg = static_cast<double>(max_load) / avg;
  out.lb_msgs_per_op =
      static_cast<double>(net::Network::Delta(base, bi.net()->Snapshot()) -
                          routing) /
      static_cast<double>(total);
  out.lb_ops = static_cast<double>(tree.load_balance_ops());
  return out;
}

void Run(const Options& opt) {
  const size_t n = opt.sizes.empty() ? 1000 : opt.sizes.front();
  TablePrinter table({"scheme", "max_load/avg", "lb_msgs_per_insert",
                      "lb_ops"});
  const char* labels[] = {"adjacent-only", "adjacent+recruit (paper)",
                          "recruit+directory ([4], fn.2)"};
  for (int scheme : {0, 1, 2}) {
    RunningStat ratio, msgs, ops;
    for (int s = 0; s < opt.seeds; ++s) {
      Outcome o = RunOne(n, opt.base_seed + static_cast<uint64_t>(s),
                         opt.keys_per_node, scheme);
      ratio.Add(o.max_over_avg);
      msgs.Add(o.lb_msgs_per_op);
      ops.Add(o.lb_ops);
    }
    table.AddRow({labels[scheme], TablePrinter::Num(ratio.mean()),
                  TablePrinter::Num(msgs.mean(), 4),
                  TablePrinter::Num(ops.mean(), 1)});
  }
  Emit("Ablation: load-balancing scheme under Zipf(1.0) (N=" +
           std::to_string(n) + ")",
       table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
