// Serving throughput vs offered load, per backend: the saturation-knee
// bench the serving engine (serve::Engine) exists for.
//
// Per (backend, N, seed, key distribution) the bench:
//  1. builds the overlay (uniform preload, like the query benches) and
//     records a pure exact-search trace drawn from the distribution;
//  2. calibrates capacity with a CLOSED-LOOP engine run on the uniform
//     trace: if the bottleneck node serviced M messages (M * service_ticks
//     busy ticks) while completing C ops, the sustainable rate is
//     lambda* = C / (M * service_ticks) ops/tick -- the rate at which the
//     busiest node's utilization reaches 1;
//  3. sweeps OPEN-LOOP arrival rates f * lambda* for every --load fraction
//     f (default 0.5,0.8,0.95,1.1,1.3, straddling the knee). Crucially the
//     absolute rates come from the UNIFORM calibration for every
//     distribution, so "zipf at load 0.95" offers the same ops/tick as
//     "uniform at load 0.95" -- any extra queueing is pure request skew.
//
// Below the knee achieved throughput tracks offered load and sojourn time
// stays near the no-contention floor; past it throughput pins at capacity
// while p99/p99.9 sojourn (and peak queue depth) diverge -- open-loop
// arrivals keep coming while queues at hot nodes grow without bound (bound
// them with --max-queue to see drop accounting instead; --timeout-ticks
// counts client-side give-ups).
//
// Columns (cross-seed merged; one row per load point and distribution,
// plus a load="closed" calibration row): offered/kt and achieved/kt are
// ops per kilotick; lat_* are sojourn-time quantiles (rank-interpolated,
// obs::LogHistogram::QuantileInterp); done/drop/timeout count ops; peak_q
// is the deepest node backlog any seed saw.
//
//   ./bench_throughput --sizes=200 --seeds=1
//   ./bench_throughput --overlay=baton,chord --load=0.5,1.0,2.0
//       --key-dist=uniform,zipf:0.9 --arrivals=fixed --service-ticks=4
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_common/experiment.h"
#include "serve/engine.h"

namespace baton {
namespace bench {
namespace {

constexpr Key kDomainHi = 1000000000;

/// One engine run's outputs, mergeable across seeds.
struct RunOutcome {
  double offered_rate = 0;  // ops/tick offered (0 for closed loop)
  double steady_rate = 0;   // achieved ops/tick, middle-80% window
  uint64_t completed = 0;
  uint64_t dropped = 0;
  uint64_t timed_out = 0;
  uint64_t peak_queue = 0;
  obs::LogHistogram sojourn;

  void Merge(const RunOutcome& o) {
    // Rates are summed here and divided by the seed count at print time
    // (seeds are independent runs of the same offered load).
    offered_rate += o.offered_rate;
    steady_rate += o.steady_rate;
    completed += o.completed;
    dropped += o.dropped;
    timed_out += o.timed_out;
    if (o.peak_queue > peak_queue) peak_queue = o.peak_queue;
    sojourn.Merge(o.sojourn);
  }
};

/// Achieved throughput as the completion rate over the middle 80% of
/// completions. completed/makespan would fold the ramp-up and the final
/// ops' drain tail into the denominator, under-reporting sub-saturation
/// throughput badly on short traces; the inner window tracks offered load
/// below the knee and pins at capacity above it.
double SteadyRate(const serve::EngineResult& res) {
  const std::vector<sim::Time>& t = res.completions;
  double fallback = res.makespan == 0
                        ? 0.0
                        : static_cast<double>(res.completed) /
                              static_cast<double>(res.makespan);
  if (t.size() < 20) return fallback;
  size_t lo = t.size() / 10;
  size_t hi = t.size() - t.size() / 10 - 1;
  if (t[hi] <= t[lo]) return fallback;  // degenerate burst
  return static_cast<double>(hi - lo) / static_cast<double>(t[hi] - t[lo]);
}

/// Per-(backend, N, seed) task result: one closed-loop calibration row plus
/// one open-loop row per (distribution, load fraction).
struct SeedResult {
  std::vector<RunOutcome> closed;        // [dist]
  std::vector<std::vector<RunOutcome>> open;  // [dist][load]
};

RunOutcome Outcome(const serve::EngineResult& res, double offered) {
  RunOutcome out;
  out.offered_rate = offered;
  out.steady_rate = SteadyRate(res);
  out.completed = res.completed;
  out.dropped = res.dropped;
  out.timed_out = res.timed_out;
  out.peak_queue = res.peak_queue_depth;
  out.sojourn = res.sojourn;
  return out;
}

SeedResult RunSeed(const std::string& name, size_t n, int s,
                   const Options& opt,
                   const std::vector<KeyDistSpec>& dists) {
  uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
  workload::UniformKeys preload(1, kDomainHi);

  overlay::Config cfg = BalancedOverlayConfig();
  Instance inst;
  if (overlay::Make(name, cfg)->Supports(overlay::kOrderedGrowth)) {
    inst = BuildOverlay(name, n, seed, cfg, opt.keys_per_node, &preload);
  } else {
    Rng load_rng(Mix64(seed ^ 0x10ad));
    inst = BuildOverlay(name, n, seed, cfg);
    LoadOverlay(&inst, opt.keys_per_node, &preload, &load_rng);
  }

  // One pure exact-search trace per distribution; queries mutate nothing,
  // so every engine run replays against the identical overlay state, and a
  // fresh equal-seeded op rng per run keeps origin picks identical too --
  // load points differ ONLY in arrival timing.
  std::vector<workload::Trace> traces(dists.size());
  for (size_t d = 0; d < dists.size(); ++d) {
    std::unique_ptr<workload::KeyGenerator> gen =
        MakeKeyGenerator(dists[d], 1, kDomainHi);
    Rng krng(Mix64(seed ^ 0x7a3e));  // same stream per dist: ranks differ
    traces[d].reserve(static_cast<size_t>(opt.queries));
    for (int q = 0; q < opt.queries; ++q) {
      traces[d].push_back({workload::OpType::kExact, gen->Next(&krng), 0});
    }
  }

  serve::EngineConfig ecfg;
  ecfg.service_ticks = opt.service_ticks;
  ecfg.hop_latency = 1;
  ecfg.max_queue = opt.max_queue;
  ecfg.timeout_ticks = opt.timeout_ticks;
  // --stragglers=K:F marks K members (picked deterministically per seed) as
  // F-times-slower servers; the knee then tracks the slowest hot node, not
  // the fleet average.
  if (opt.stragglers > 0) {
    std::vector<net::PeerId> picks = inst.members;
    Rng srng(Mix64(seed ^ 0x57a6));
    srng.Shuffle(&picks);
    size_t k = std::min(opt.stragglers, picks.size());
    uint64_t slow = static_cast<uint64_t>(
        static_cast<double>(opt.service_ticks) * opt.straggler_factor);
    if (slow <= opt.service_ticks) slow = opt.service_ticks + 1;
    for (size_t i = 0; i < k; ++i) {
      ecfg.node_service_overrides.emplace_back(picks[i], slow);
    }
  }
  serve::Engine engine(inst.overlay.get(), &inst.members, ecfg);

  SeedResult out;
  out.closed.resize(dists.size());
  out.open.assign(dists.size(),
                  std::vector<RunOutcome>(opt.loads.size()));

  // Closed-loop calibration runs (also the differential baseline rows).
  std::vector<serve::EngineResult> closed(dists.size());
  for (size_t d = 0; d < dists.size(); ++d) {
    Rng op_rng(Mix64(seed ^ 0x5e7e));
    closed[d] = engine.RunClosedLoop(traces[d], &op_rng);
    out.closed[d] = Outcome(closed[d], 0.0);
  }

  // Capacity from the UNIFORM closed-loop run (dists[0] is pinned to
  // uniform by Run below): the bottleneck node saturates when it is busy
  // every tick.
  const serve::EngineResult& cal = closed[0];
  double capacity =
      cal.max_node_served > 0
          ? static_cast<double>(cal.completed) /
                (static_cast<double>(cal.max_node_served) *
                 static_cast<double>(opt.service_ticks))
          : 1.0 / static_cast<double>(opt.service_ticks);

  for (size_t d = 0; d < dists.size(); ++d) {
    for (size_t l = 0; l < opt.loads.size(); ++l) {
      double rate = opt.loads[l] * capacity;
      uint64_t aseed = Mix64(seed ^ (0xa881 + (d << 8) + l));
      std::unique_ptr<serve::Arrivals> arrivals;
      if (opt.arrivals == "fixed") {
        arrivals = std::make_unique<serve::FixedArrivals>(rate);
      } else {
        arrivals = std::make_unique<serve::PoissonArrivals>(rate, aseed);
      }
      Rng op_rng(Mix64(seed ^ 0x5e7e));  // same op stream as calibration
      serve::EngineResult res = engine.Run(traces[d], arrivals.get(),
                                           &op_rng);
      out.open[d][l] = Outcome(res, rate);
    }
  }
  return out;
}

void Run(const Options& opt) {
  // Distribution series: uniform is always first (it calibrates capacity);
  // default adds zipf:0.9 so skew sensitivity shows up out of the box.
  std::vector<KeyDistSpec> dists;
  if (opt.key_dists.empty()) {
    dists.push_back({});  // uniform
    KeyDistSpec zipf;
    zipf.kind = KeyDistSpec::Kind::kZipf;
    zipf.theta = 0.9;
    dists.push_back(zipf);
  } else {
    dists.push_back({});  // calibration anchor
    for (const KeyDistSpec& d : opt.key_dists) {
      if (d.kind != KeyDistSpec::Kind::kUniform) dists.push_back(d);
    }
  }

  const std::vector<std::string> overlays = SelectedOverlays(opt);
  std::vector<SeedTask> tasks = SizeMajorTasks(opt, overlays);
  std::vector<SeedResult> results =
      RunTasks<SeedResult>(tasks, opt.threads, [&](const SeedTask& t) {
        return RunSeed(t.overlay, t.n, t.seed, opt, dists);
      });

  TablePrinter table({"N", "overlay", "dist", "load", "offered/kt",
                      "achieved/kt", "done", "drop", "timeout", "peak_q",
                      "lat_p50", "lat_p99", "lat_p999"});
  auto quant = [](const obs::LogHistogram& h, double q) {
    return TablePrinter::Int(static_cast<int64_t>(h.QuantileInterp(q)));
  };
  auto add_row = [&](size_t n, const std::string& name,
                     const std::string& dist, const std::string& load,
                     const RunOutcome& m, int seeds) {
    table.AddRow(
        {TablePrinter::Int(static_cast<int64_t>(n)), name, dist, load,
         m.offered_rate == 0
             ? "n/a"
             : TablePrinter::Num(1000.0 * m.offered_rate /
                                 static_cast<double>(seeds)),
         TablePrinter::Num(1000.0 * m.steady_rate /
                           static_cast<double>(seeds)),
         TablePrinter::Int(static_cast<int64_t>(m.completed)),
         TablePrinter::Int(static_cast<int64_t>(m.dropped)),
         TablePrinter::Int(static_cast<int64_t>(m.timed_out)),
         TablePrinter::Int(static_cast<int64_t>(m.peak_queue)),
         quant(m.sojourn, 0.50), quant(m.sojourn, 0.99),
         quant(m.sojourn, 0.999)});
  };

  size_t idx = 0;
  for (size_t n : opt.sizes) {
    for (const std::string& name : overlays) {
      std::vector<RunOutcome> closed(dists.size());
      std::vector<std::vector<RunOutcome>> open(
          dists.size(), std::vector<RunOutcome>(opt.loads.size()));
      for (int s = 0; s < opt.seeds; ++s) {
        const SeedResult& r = results[idx++];
        for (size_t d = 0; d < dists.size(); ++d) {
          closed[d].Merge(r.closed[d]);
          for (size_t l = 0; l < opt.loads.size(); ++l) {
            open[d][l].Merge(r.open[d][l]);
          }
        }
      }
      for (size_t d = 0; d < dists.size(); ++d) {
        std::string dist = dists[d].Label();
        add_row(n, name, dist, "closed", closed[d], opt.seeds);
        for (size_t l = 0; l < opt.loads.size(); ++l) {
          char load[32];
          std::snprintf(load, sizeof load, "%.2f", opt.loads[l]);
          add_row(n, name, dist, load, open[d][l], opt.seeds);
        }
      }
    }
  }
  Emit("Serving throughput vs offered load (open loop)", table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
