// Figure 8(g): cumulative load-balancing messages as inserts arrive, for
// uniformly distributed vs Zipf(1.0)-skewed data.
//
// Expected shape: uniform data almost never triggers load balancing; skewed
// data triggers it regularly, with total cost growing roughly linearly in
// the number of insertions and a very low per-insert overhead (the paper
// reports ~1 message per ~1500 insert/deletes at its scale).
#include "bench_common/experiment.h"
#include "overlay/baton_overlay.h"
#include "util/stats.h"

namespace baton {
namespace bench {
namespace {

uint64_t RunSeries(size_t n, uint64_t seed, int keys_per_node,
                   workload::KeyGenerator* gen,
                   std::vector<std::pair<uint64_t, uint64_t>>* curve) {
  workload::UniformKeys preload(1, 1000000000);
  auto bi = BuildOverlay("baton", n, seed, BalancedOverlayConfig(),
                         static_cast<size_t>(keys_per_node), &preload);
  Rng rng(Mix64(seed ^ 0x90));
  uint64_t total_inserts = static_cast<uint64_t>(keys_per_node) * n;
  uint64_t checkpoint = total_inserts / 10;
  auto base = bi.net()->Snapshot();
  uint64_t insert_routing = 0;
  for (uint64_t i = 1; i <= total_inserts; ++i) {
    auto before = bi.net()->Snapshot();
    auto st = bi.overlay->Insert(
        bi.members[rng.NextBelow(bi.members.size())], gen->Next(&rng));
    BATON_CHECK(st.ok()) << st.status.ToString();
    auto after = bi.net()->Snapshot();
    insert_routing += SumTypes(before, after, {net::MsgType::kInsert});
    if (i % checkpoint == 0) {
      // Load-balancing cost = everything beyond the plain insert routing.
      uint64_t lb = net::Network::Delta(base, after) - insert_routing;
      curve->emplace_back(i, lb);
    }
  }
  bi.overlay->CheckInvariants();
  return overlay::BatonBackend(*bi.overlay).load_balance_ops();
}

void Run(const Options& opt) {
  const size_t n = opt.sizes.empty() ? 1000 : opt.sizes.front();
  TablePrinter table({"inserts", "uniform_lb_msgs", "zipf_lb_msgs",
                      "zipf_msgs_per_insert"});
  std::vector<std::pair<uint64_t, uint64_t>> uni_curve, zipf_curve;
  RunningStat uni_ops, zipf_ops;
  for (int s = 0; s < opt.seeds; ++s) {
    uint64_t seed = opt.base_seed + static_cast<uint64_t>(s);
    workload::UniformKeys uni(1, 1000000000);
    workload::ZipfKeys zipf(1, 1000000000, 1.0);
    std::vector<std::pair<uint64_t, uint64_t>> u, z;
    uni_ops.Add(static_cast<double>(
        RunSeries(n, seed, static_cast<int>(opt.keys_per_node), &uni, &u)));
    zipf_ops.Add(static_cast<double>(
        RunSeries(n, seed, static_cast<int>(opt.keys_per_node), &zipf, &z)));
    if (uni_curve.empty()) {
      uni_curve = u;
      zipf_curve = z;
    } else {
      for (size_t i = 0; i < uni_curve.size(); ++i) {
        uni_curve[i].second += u[i].second;
        zipf_curve[i].second += z[i].second;
      }
    }
  }
  for (size_t i = 0; i < uni_curve.size(); ++i) {
    uint64_t inserts = uni_curve[i].first;
    double uni_avg = static_cast<double>(uni_curve[i].second) / opt.seeds;
    double zipf_avg = static_cast<double>(zipf_curve[i].second) / opt.seeds;
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(inserts)),
                  TablePrinter::Num(uni_avg), TablePrinter::Num(zipf_avg),
                  TablePrinter::Num(zipf_avg / static_cast<double>(inserts),
                                    4)});
  }
  Emit("Fig 8(g): cumulative load-balancing messages, uniform vs Zipf(1.0) "
       "(N=" + std::to_string(n) + ", avg LB ops uniform=" +
           TablePrinter::Num(uni_ops.mean(), 1) + " zipf=" +
           TablePrinter::Num(zipf_ops.mean(), 1) + ")",
       table, opt);
}

}  // namespace
}  // namespace bench
}  // namespace baton

int main(int argc, char** argv) {
  baton::bench::Run(baton::bench::ParseOptions(argc, argv));
  return 0;
}
