// Minimal leveled logger. Off by default so benches stay quiet; tests and
// examples can raise the level.
#ifndef BATON_UTIL_LOGGING_H_
#define BATON_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>

namespace baton {

enum class LogLevel : int { kError = 0, kWarning = 1, kInfo = 2, kDebug = 3 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << LevelTag(level) << " " << file << ":" << line << "] ";
  }
  ~LogMessage() {
    if (static_cast<int>(level_) <= static_cast<int>(GetLogLevel())) {
      std::cerr << stream_.str() << std::endl;
    }
  }
  std::ostream& stream() { return stream_; }

  static const char* LevelTag(LogLevel level) {
    switch (level) {
      case LogLevel::kError: return "E";
      case LogLevel::kWarning: return "W";
      case LogLevel::kInfo: return "I";
      case LogLevel::kDebug: return "D";
    }
    return "?";
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace baton

#define BATON_LOG(level)                                                   \
  ::baton::internal::LogMessage(::baton::LogLevel::k##level, __FILE__, \
                                __LINE__)                                  \
      .stream()

#endif  // BATON_UTIL_LOGGING_H_
