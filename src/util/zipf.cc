#include "util/zipf.h"

#include <cmath>

#include "util/check.h"

namespace baton {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  BATON_CHECK_GE(n, 1u);
  BATON_CHECK_GT(theta, 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

// H(x) = integral of 1/t^theta; the antiderivative, with the theta == 1
// special case handled via log.
double ZipfGenerator::H(double x) const {
  if (theta_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  if (theta_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Sample(Rng* rng) const {
  if (n_ == 1) return 1;
  while (true) {
    double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -theta_)) {
      return k;
    }
  }
}

}  // namespace baton
