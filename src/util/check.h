// Lightweight CHECK macros in the spirit of glog/absl, used throughout the
// library instead of exceptions (databases idiom: fail fast on broken
// invariants, return Status for expected errors).
#ifndef BATON_UTIL_CHECK_H_
#define BATON_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace baton {
namespace internal {

// Collects a streamed message and aborts the process on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace baton

#define BATON_CHECK(cond)                                              \
  if (!(cond))                                                         \
  ::baton::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

#define BATON_CHECK_OP(op, a, b) BATON_CHECK((a)op(b))            \
    << "(" << (a) << " vs " << (b) << ") "

#define BATON_CHECK_EQ(a, b) BATON_CHECK_OP(==, a, b)
#define BATON_CHECK_NE(a, b) BATON_CHECK_OP(!=, a, b)
#define BATON_CHECK_LT(a, b) BATON_CHECK_OP(<, a, b)
#define BATON_CHECK_LE(a, b) BATON_CHECK_OP(<=, a, b)
#define BATON_CHECK_GT(a, b) BATON_CHECK_OP(>, a, b)
#define BATON_CHECK_GE(a, b) BATON_CHECK_OP(>=, a, b)

#ifndef NDEBUG
#define BATON_DCHECK(cond) BATON_CHECK(cond)
#else
// Swallow the stream in release builds without evaluating operands.
#define BATON_DCHECK(cond) \
  if (true)                \
    ;                      \
  else                     \
    ::baton::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()
#endif

#endif  // BATON_UTIL_CHECK_H_
