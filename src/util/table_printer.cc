#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace baton {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  BATON_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(int64_t v) { return std::to_string(v); }

std::string TablePrinter::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) out << ",";
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace baton
