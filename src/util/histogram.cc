#include "util/histogram.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace baton {

void Histogram::Add(int64_t value, uint64_t count) {
  buckets_[value] += count;
  total_count_ += count;
  sum_ += value * static_cast<int64_t>(count);
}

void Histogram::Merge(const Histogram& other) {
  for (const auto& [v, c] : other.buckets_) buckets_[v] += c;
  total_count_ += other.total_count_;
  sum_ += other.sum_;
}

void Histogram::Clear() {
  buckets_.clear();
  total_count_ = 0;
  sum_ = 0;
}

double Histogram::Mean() const {
  if (total_count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(total_count_);
}

int64_t Histogram::Min() const {
  BATON_CHECK(!buckets_.empty());
  return buckets_.begin()->first;
}

int64_t Histogram::Max() const {
  BATON_CHECK(!buckets_.empty());
  return buckets_.rbegin()->first;
}

int64_t Histogram::Percentile(double q) const {
  BATON_CHECK(!buckets_.empty());
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total_count_));
  uint64_t seen = 0;
  for (const auto& [v, c] : buckets_) {
    seen += c;
    if (seen >= target) return v;
  }
  return buckets_.rbegin()->first;
}

uint64_t Histogram::CountAt(int64_t value) const {
  auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

std::vector<std::pair<int64_t, uint64_t>> Histogram::Buckets() const {
  return {buckets_.begin(), buckets_.end()};
}

std::string Histogram::ToString(int max_rows) const {
  std::ostringstream out;
  int rows = 0;
  for (const auto& [v, c] : buckets_) {
    if (rows++ >= max_rows) {
      out << "  ... (" << (buckets_.size() - static_cast<size_t>(max_rows))
          << " more buckets)\n";
      break;
    }
    double frac = total_count_ == 0
                      ? 0.0
                      : static_cast<double>(c) / static_cast<double>(total_count_);
    out << "  " << v << "\t" << c << "\t" << frac << "\n";
  }
  return out.str();
}

}  // namespace baton
