#include "util/rng.h"

namespace baton {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the all-zero state (astronomically unlikely, but cheap to rule out).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  BATON_CHECK_GT(bound, 0u);
  // Lemire's multiply-shift rejection method: unbiased, ~1 multiply.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BATON_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace baton
