// Integer-valued histogram with exact small-value buckets; used for message
// counts, hop counts and restructuring shift sizes (paper Fig. 8(h)).
#ifndef BATON_UTIL_HISTOGRAM_H_
#define BATON_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace baton {

class Histogram {
 public:
  void Add(int64_t value, uint64_t count = 1);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t total_count() const { return total_count_; }
  double Mean() const;
  int64_t Min() const;
  int64_t Max() const;
  /// Value v such that at least q of the mass is <= v; q in [0, 1].
  int64_t Percentile(double q) const;
  /// Number of samples with exactly this value.
  uint64_t CountAt(int64_t value) const;
  /// (value, count) pairs in increasing value order.
  std::vector<std::pair<int64_t, uint64_t>> Buckets() const;

  /// Multi-line "value count fraction" rendering, for bench output.
  std::string ToString(int max_rows = 32) const;

 private:
  std::map<int64_t, uint64_t> buckets_;
  uint64_t total_count_ = 0;
  int64_t sum_ = 0;
};

}  // namespace baton

#endif  // BATON_UTIL_HISTOGRAM_H_
