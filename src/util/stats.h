// Running mean/variance accumulator (Welford) for experiment series.
#ifndef BATON_UTIL_STATS_H_
#define BATON_UTIL_STATS_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace baton {

class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double sum() const { return sum_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace baton

#endif  // BATON_UTIL_STATS_H_
