// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng instances seeded explicitly,
// so every experiment and test is reproducible from its printed seed.
// The generator is xoshiro256**, seeded via SplitMix64 (the recommended
// seeding procedure from the xoshiro authors).
#ifndef BATON_UTIL_RNG_H_
#define BATON_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace baton {

/// SplitMix64 step; also useful as a cheap 64-bit mixing function.
uint64_t SplitMix64(uint64_t* state);

/// Stateless 64-bit finalizer (same avalanche core as SplitMix64).
uint64_t Mix64(uint64_t x);

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound) with Lemire's unbiased method.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial.
  bool NextBool(double p_true);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Pick a uniformly random element (container must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    BATON_CHECK(!v.empty());
    return v[NextBelow(v.size())];
  }

  /// Derive an independent child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace baton

#endif  // BATON_UTIL_RNG_H_
