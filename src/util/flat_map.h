// Cache-friendly open-addressing hash containers for the simulator hot
// paths.
//
// FlatMap64<V> maps uint64_t keys to values; FlatSet64 is the mapless
// variant. Both use linear probing over a power-of-two slot array with a
// separate one-byte control array (empty / full / tombstone), so a probe
// touches a contiguous byte run instead of chasing unordered_map's
// per-node allocations. The position directory probe sits inside every
// routing hop and restructure step, which is what makes this worth having;
// chord's id-collision set, the join/restructure scratch sets and the
// replication directories reuse it.
//
// Deliberate limitations (hot-path trade-offs, asserted where cheap):
//  * keys are uint64_t; hash is Mix64 (already an avalanche finalizer, so
//    no secondary hashing is needed even for dense key patterns),
//  * no iterator stability across mutation; ForEach is the only traversal
//    and must not mutate the container,
//  * erase uses tombstones; slots are reclaimed on the next rehash.
//    Rehashing triggers when full+tombstone slots exceed 7/8 of capacity,
//    so a long erase/insert workload cannot degrade probing unboundedly.
#ifndef BATON_UTIL_FLAT_MAP_H_
#define BATON_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace baton {
namespace util {

/// Stand-alone copy of the SplitMix64 finalizer (kept here so the header is
/// self-contained for templates; identical to baton::Mix64).
inline uint64_t FlatHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename Value>
class FlatMap64 {
 public:
  FlatMap64() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `n` live entries without rehash churn.
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // target load factor <= 0.75
    if (cap > Capacity()) Rehash(cap);
  }

  /// Inserts key -> value. Returns false (and leaves the existing mapping
  /// untouched) when the key is already present.
  bool Insert(uint64_t key, Value value) {
    size_t idx;
    if (FindSlot(key, &idx)) return false;  // probe first: a duplicate
    idx = EnsureInsertSlot(key, idx);       // insert must never rehash
    if (ctrl_[idx] == kTombstone) --tombstones_;
    ctrl_[idx] = kFull;
    keys_[idx] = key;
    values_[idx] = std::move(value);
    ++size_;
    return true;
  }

  /// Pointer to the value mapped at `key`, or nullptr.
  Value* Find(uint64_t key) {
    size_t idx;
    return FindSlot(key, &idx) ? &values_[idx] : nullptr;
  }
  const Value* Find(uint64_t key) const {
    size_t idx;
    return FindSlot(key, &idx) ? &values_[idx] : nullptr;
  }
  bool Contains(uint64_t key) const {
    size_t idx;
    return FindSlot(key, &idx);
  }

  /// Value mapped at `key`, inserting a default-constructed one if absent.
  Value& GetOrInsert(uint64_t key) {
    size_t idx;
    if (!FindSlot(key, &idx)) {
      idx = EnsureInsertSlot(key, idx);
      if (ctrl_[idx] == kTombstone) --tombstones_;
      ctrl_[idx] = kFull;
      keys_[idx] = key;
      values_[idx] = Value{};
      ++size_;
    }
    return values_[idx];
  }

  /// Removes the mapping; returns false if absent. The slot becomes a
  /// tombstone (reclaimed on the next rehash).
  bool Erase(uint64_t key) {
    size_t idx;
    if (!FindSlot(key, &idx)) return false;
    ctrl_[idx] = kTombstone;
    values_[idx] = Value{};  // drop payload eagerly (bags, vectors)
    ++tombstones_;
    --size_;
    return true;
  }

  void Clear() {
    ctrl_.clear();
    keys_.clear();
    values_.clear();
    size_ = 0;
    tombstones_ = 0;
  }

  /// Calls fn(key, value&) for every live entry, in unspecified order. The
  /// callback must not mutate the container.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) fn(keys_[i], const_cast<const Value&>(values_[i]));
    }
  }

  /// Slots currently marked as tombstones (exposed for tests).
  size_t TombstoneCount() const { return tombstones_; }
  size_t Capacity() const { return ctrl_.size(); }

 private:
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kFull = 1;
  static constexpr uint8_t kTombstone = 2;
  static constexpr size_t kMinCapacity = 16;

  /// Finds `key`'s slot. Returns true when the key is present (idx = its
  /// slot); false when absent (idx = the insertion slot: the first tombstone
  /// seen on the probe path, else the terminating empty slot).
  bool FindSlot(uint64_t key, size_t* idx) const {
    if (ctrl_.empty()) {
      *idx = 0;
      return false;
    }
    size_t mask = ctrl_.size() - 1;
    size_t i = FlatHash64(key) & mask;
    size_t insert = SIZE_MAX;
    while (true) {
      uint8_t c = ctrl_[i];
      if (c == kFull && keys_[i] == key) {
        *idx = i;
        return true;
      }
      if (c == kEmpty) {
        *idx = insert != SIZE_MAX ? insert : i;
        return false;
      }
      if (c == kTombstone && insert == SIZE_MAX) insert = i;
      i = (i + 1) & mask;
    }
  }

  /// Called with the insertion slot a failed FindSlot produced, for a key
  /// about to be inserted (lookups of present keys never reach this, so a
  /// hit can never trigger a rehash). Grows/reclaims if the new entry would
  /// push occupancy past the threshold and returns the (possibly re-probed)
  /// slot to write into.
  size_t EnsureInsertSlot(uint64_t key, size_t idx) {
    if (ctrl_.empty()) {
      Rehash(kMinCapacity);
    } else {
      // Rehash when live + tombstone slots would pass 7/8 of capacity: to a
      // larger table when the live load alone passes 3/4, else in place
      // (same capacity) purely to reclaim tombstones.
      size_t cap = ctrl_.size();
      if ((size_ + tombstones_ + 1) * 8 > cap * 7) {
        Rehash((size_ + 1) * 4 > cap * 3 ? cap * 2 : cap);
      } else {
        return idx;  // table unchanged; the probed slot is still right
      }
    }
    bool found = FindSlot(key, &idx);
    BATON_CHECK(!found);
    return idx;
  }

  void Rehash(size_t new_cap) {
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    ctrl_.assign(new_cap, kEmpty);
    keys_.assign(new_cap, 0);
    values_.clear();
    values_.resize(new_cap);
    tombstones_ = 0;
    size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      size_t j = FlatHash64(old_keys[i]) & mask;
      while (ctrl_[j] == kFull) j = (j + 1) & mask;
      ctrl_[j] = kFull;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }

  std::vector<uint8_t> ctrl_;
  std::vector<uint64_t> keys_;
  std::vector<Value> values_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

/// Set of uint64_t keys with the same probing scheme (no per-slot payload).
class FlatSet64 {
 public:
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Reserve(size_t n) { map_.Reserve(n); }
  /// Returns true when the key was newly inserted.
  bool Insert(uint64_t key) { return map_.Insert(key, Unit{}); }
  bool Contains(uint64_t key) const { return map_.Contains(key); }
  bool Erase(uint64_t key) { return map_.Erase(key); }
  void Clear() { map_.Clear(); }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&fn](uint64_t key, const Unit&) { fn(key); });
  }

 private:
  struct Unit {};
  FlatMap64<Unit> map_;
};

}  // namespace util
}  // namespace baton

#endif  // BATON_UTIL_FLAT_MAP_H_
