// Aligned text tables + CSV output for the benchmark harness, so every bench
// binary prints the same rows/series the paper's figures plot.
#ifndef BATON_UTIL_TABLE_PRINTER_H_
#define BATON_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace baton {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);

  /// Render as an aligned text table.
  std::string ToText() const;
  /// Render as CSV (headers + rows).
  std::string ToCsv() const;

  /// Raw cells, for alternative renderers (e.g. the bench harness's JSON
  /// mirror).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace baton

#endif  // BATON_UTIL_TABLE_PRINTER_H_
