// Zipf-distributed sampling over a rank space [1, n].
//
// Implements rejection-inversion sampling (W. Hoermann & G. Derflinger,
// "Rejection-inversion to generate variates from monotone discrete
// distributions", ACM TOMACS 1996), the same algorithm used by Apache
// Commons / YCSB-style workload generators. O(1) per sample for any n,
// which matters because the paper draws from a domain of 10^9 values.
#ifndef BATON_UTIL_ZIPF_H_
#define BATON_UTIL_ZIPF_H_

#include <cstdint>

#include "util/rng.h"

namespace baton {

/// Samples ranks in [1, n] with P(rank = k) proportional to 1 / k^theta.
/// theta = 1.0 reproduces the paper's "Zipfian method with parameter 1.0".
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Draw one rank in [1, n]; rank 1 is the most popular.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace baton

#endif  // BATON_UTIL_ZIPF_H_
