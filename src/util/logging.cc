#include "util/logging.h"

namespace baton {

namespace {
LogLevel g_level = LogLevel::kWarning;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

}  // namespace baton
