// Status / Result<T>: exception-free error propagation for the public API.
#ifndef BATON_UTIL_STATUS_H_
#define BATON_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace baton {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kFailedPrecondition,
  kUnavailable,   // e.g. routing could not complete because of failures
  kExhausted,     // e.g. hop budget exceeded
  kInternal,
};

/// Plain status object carrying a code and a human-readable message.
/// [[nodiscard]] at class level: every function returning a Status by value
/// is a producer whose result must be checked (or explicitly discarded with
/// a (void) cast and a comment saying why the failure mode is acceptable).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Exhausted(std::string m) {
    return Status(StatusCode::kExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kUnavailable: return "UNAVAILABLE";
      case StatusCode::kExhausted: return "EXHAUSTED";
      case StatusCode::kInternal: return "INTERNAL";
    }
    return "UNKNOWN";
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: a value or an error status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}               // NOLINT
  Result(Status status) : status_(std::move(status)) {        // NOLINT
    BATON_CHECK(!status_.ok()) << "OK status requires a value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const {
    BATON_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() {
    BATON_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace baton

#endif  // BATON_UTIL_STATUS_H_
