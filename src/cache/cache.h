// Hot-path caching for overlay lookups (ROADMAP item 3).
//
// The paper charges O(log N) passing messages for *every* exact query, even
// when a Zipf workload hammers a handful of hot keys. Two cooperating,
// backend-neutral layers cut that cost without touching any protocol code:
//
//  * Per-node route cache -- a bounded LRU map of (routing-range -> owning
//    peer) entries learned from completed lookups. The query origin consults
//    its own cache and, on a hit, jumps straight at the remembered owner:
//    one kCacheProbe message, answered iff the owner still owns the key.
//    A stale hit (churn moved the range) wastes exactly that probe, evicts
//    the entry and falls back to the normal protocol walk -- correctness
//    never depends on cache freshness.
//  * Replicated root fast-table -- the top k tree levels (Chord: a 2^k-arc
//    finger prefix of the ring) mirrored at every node and refreshed lazily
//    when a membership change bumps the table version. A cold lookup jumps
//    to the deepest fast-table region containing the key, cutting the first
//    ~k hops off the protocol walk.
//
// Everything lives in routing-coordinate space (uint64): tree backends use
// the key itself, Chord uses HashKey(key), so one Manager serves all four
// backends. Intervals are half-open [lo, hi) with two ring conventions:
// hi == 0 (and lo != 0) means "up to the end of the space", lo == hi == 0
// means "everything" -- which lets a wrapped Chord interval be learned as
// two plain entries and keeps lookups a single binary search.
//
// The Manager attaches per overlay::Overlay instance (AttachCache), same
// lifecycle as the sim/obs/fault attachments: opt-in, non-owning, nullptr
// detaches, and a detached overlay pays one null check with byte-identical
// output. All state is deterministic: no clocks, no randomness -- the same
// operation sequence always produces the same hit/evict sequence.
#ifndef BATON_CACHE_CACHE_H_
#define BATON_CACHE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/network.h"
#include "util/flat_map.h"

namespace baton {
namespace cache {

/// Sizing knobs, set once at construction (bench flag: --cache=SIZE[,k]).
struct Config {
  /// Route-cache entries retained per origin node (LRU beyond this).
  size_t capacity = 256;
  /// Tree levels replicated in the fast-table; 0 disables the fast-table
  /// (the route cache still works).
  int root_levels = 2;
};

/// One learned (routing-range -> owner) fact, plus the hop cost of the
/// lookup that learned it (to report hops_saved on later hits).
struct RouteEntry {
  uint64_t lo = 0;
  uint64_t hi = 0;
  net::PeerId owner = net::kNullPeer;
  int cost = 0;        // hops of the lookup this entry was learned from
  uint64_t stamp = 0;  // per-node LRU recency tick
};

/// One replicated fast-table region: the deepest entry containing a
/// routing coordinate is the jump target for a cold lookup.
struct FastEntry {
  uint64_t lo = 0;
  uint64_t hi = 0;
  net::PeerId peer = net::kNullPeer;
  int depth = 0;
};

/// Monotonic lifetime counters, mirrored into the obs `cache.*` namespace
/// by the measured wrapper (per-op deltas).
struct Stats {
  uint64_t hits = 0;           // verified route-cache hits
  uint64_t misses = 0;         // consults that found no entry
  uint64_t stale = 0;          // hits refuted by the owner (probe wasted)
  uint64_t evictions = 0;      // capacity + staleness evictions
  uint64_t invalidations = 0;  // entries dropped by invalidation hooks
  uint64_t fast_hits = 0;      // cold lookups that took a fast-table jump
  uint64_t refreshes = 0;      // per-node lazy fast-table refreshes
  uint64_t refresh_msgs = 0;   // kCacheRefresh messages those refreshes cost
};

// Metric names under the `cache.` namespace (obs::Registry).
inline constexpr char kMetricHits[] = "cache.hit";
inline constexpr char kMetricMisses[] = "cache.miss";
inline constexpr char kMetricStale[] = "cache.stale";
inline constexpr char kMetricEvictions[] = "cache.evict";
inline constexpr char kMetricInvalidations[] = "cache.invalidate";
inline constexpr char kMetricFastHits[] = "cache.fast_hit";
inline constexpr char kMetricRefreshes[] = "cache.refresh";
/// Lifetime hit rate in percent: 100 * hits / (hits + misses + stale).
inline constexpr char kMetricHitRatePct[] = "cache.hit_rate_pct";

/// Wrap-aware containment for half-open [lo, hi) routing intervals:
/// lo == hi covers the whole space, hi < lo wraps past the end of it.
/// Used to check a learned or hinted interval against a coordinate.
inline bool RangeContains(uint64_t lo, uint64_t hi, uint64_t c) {
  if (lo == hi) return true;
  if (lo < hi) return c >= lo && c < hi;
  return c >= lo || c < hi;
}

/// The caching state for one overlay instance: every member's route cache
/// plus the shared fast-table snapshot and its version clock.
class Manager {
 public:
  explicit Manager(const Config& cfg = Config());

  const Config& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }

  // ---- Per-node route cache ----------------------------------------------
  /// Consults `node`'s cache for the entry covering `rk`. Returns the entry
  /// slot (>= 0, for EvictStale) and fills `*out`, or -1 on miss. A found
  /// entry's recency is bumped; hit/miss/stale accounting is the caller's
  /// (only the caller knows whether the owner verified the hit).
  int Lookup(net::PeerId node, uint64_t rk, RouteEntry* out);
  /// Records that `owner` answered for the interval [lo, hi) after a lookup
  /// of `cost` hops. Wrapped intervals are split; overlapped older entries
  /// are dropped; the LRU entry is evicted at capacity.
  void Learn(net::PeerId node, uint64_t lo, uint64_t hi, net::PeerId owner,
             int cost);
  /// Drops the entry at `slot` of `node`'s cache (a refuted hit).
  void EvictStale(net::PeerId node, int slot);
  /// Drops every entry (any node's cache) pointing at `owner` -- hook for
  /// the leave/fail paths, where the departed peer answers nothing.
  void InvalidatePeer(net::PeerId owner);
  /// Drops every entry intersecting [lo, hi) -- hook for the join/leave/
  /// restructure paths, where ownership of that interval moved.
  void InvalidateRange(uint64_t lo, uint64_t hi);

  void NoteHit() { ++stats_.hits; }
  void NoteMiss() { ++stats_.misses; }
  void NoteStale() { ++stats_.stale; }

  // ---- Replicated root fast-table ----------------------------------------
  bool fast_enabled() const { return cfg_.root_levels > 0; }
  /// A membership change happened: every node's mirror (and the shared
  /// snapshot) is now out of date and will be refreshed lazily.
  void BumpVersion() { ++version_; }
  /// Does `node` need to pull a fresh fast-table before consulting it?
  bool NeedsRefresh(net::PeerId node) const;
  /// Must the overlay rebuild the shared snapshot (CollectFastTable) before
  /// serving refreshes at the current version?
  bool SnapshotStale() const { return snapshot_version_ != version_; }
  void InstallSnapshot(std::vector<FastEntry> entries);
  const std::vector<FastEntry>& fast_entries() const { return fast_; }
  /// Marks `node`'s mirror current and accounts `billed_msgs` refresh
  /// messages (the caller bills them on the network).
  void MarkRefreshed(net::PeerId node, uint64_t billed_msgs);
  void NoteFastHit() { ++stats_.fast_hits; }
  /// Deepest fast-table entry containing `rk`, or nullptr.
  const FastEntry* FastLookup(uint64_t rk) const;

  /// Total live route-cache entries across all nodes (tests/benches).
  size_t TotalEntries() const { return total_entries_; }
  /// Live route-cache entries for one node (capacity-bound tests).
  size_t EntriesFor(net::PeerId node) const;

 private:
  struct NodeCache {
    std::vector<RouteEntry> entries;  // sorted by lo, non-overlapping
    uint64_t tick = 0;                // LRU clock, bumped per touch
    uint64_t refreshed_version = 0;   // fast-table version last mirrored
  };

  /// [lo, hi) contains `rk`, given rk >= lo (the sorted-search invariant);
  /// honours the hi == 0 "end of space" convention.
  static bool SlotContains(const RouteEntry& e, uint64_t rk) {
    return e.hi == 0 || rk < e.hi;
  }
  void InsertEntry(NodeCache* nc, uint64_t lo, uint64_t hi,
                   net::PeerId owner, int cost);

  Config cfg_;
  Stats stats_;
  util::FlatMap64<NodeCache> nodes_;  // keyed by origin PeerId
  size_t total_entries_ = 0;

  std::vector<FastEntry> fast_;
  uint64_t version_ = 1;  // starts dirty: first consult pulls a snapshot
  uint64_t snapshot_version_ = 0;
};

}  // namespace cache
}  // namespace baton

#endif  // BATON_CACHE_CACHE_H_
