#include "cache/cache.h"

#include <algorithm>

namespace baton {
namespace cache {

namespace {

/// Wrap-aware interval intersection under the same [lo, hi) conventions as
/// RangeContains: two intervals meet iff either contains the other's start.
bool Intersects(uint64_t alo, uint64_t ahi, uint64_t blo, uint64_t bhi) {
  return RangeContains(alo, ahi, blo) || RangeContains(blo, bhi, alo);
}

}  // namespace

Manager::Manager(const Config& cfg) : cfg_(cfg) {
  if (cfg_.root_levels < 0) cfg_.root_levels = 0;
  if (cfg_.root_levels > 16) cfg_.root_levels = 16;
}

int Manager::Lookup(net::PeerId node, uint64_t rk, RouteEntry* out) {
  NodeCache* nc = nodes_.Find(node);
  if (nc == nullptr || nc->entries.empty()) return -1;
  std::vector<RouteEntry>& v = nc->entries;
  // Greatest lo <= rk; entries are sorted by lo and non-overlapping, so it
  // is the only candidate that can contain rk.
  auto it = std::upper_bound(
      v.begin(), v.end(), rk,
      [](uint64_t k, const RouteEntry& e) { return k < e.lo; });
  if (it == v.begin()) return -1;
  --it;
  if (!SlotContains(*it, rk)) return -1;
  it->stamp = ++nc->tick;
  *out = *it;
  return static_cast<int>(it - v.begin());
}

void Manager::InsertEntry(NodeCache* nc, uint64_t lo, uint64_t hi,
                          net::PeerId owner, int cost) {
  std::vector<RouteEntry>& v = nc->entries;
  auto at = std::lower_bound(
      v.begin(), v.end(), lo,
      [](const RouteEntry& e, uint64_t k) { return e.lo < k; });
  size_t first = static_cast<size_t>(at - v.begin());
  size_t last = first;
  if (lo == 0 && hi == 0) {  // full-space entry supersedes everything
    first = 0;
    last = v.size();
  } else {
    while (last < v.size() && (hi == 0 || v[last].lo < hi)) ++last;
    // A predecessor reaching past lo is truncated, keeping entries
    // non-overlapping (its shortened tail is the freshly learned fact).
    if (first > 0 && SlotContains(v[first - 1], lo) &&
        !(v[first - 1].lo == 0 && v[first - 1].hi == 0)) {
      v[first - 1].hi = lo;
    }
  }
  total_entries_ -= last - first;
  v.erase(v.begin() + static_cast<long>(first),
          v.begin() + static_cast<long>(last));
  if (v.size() >= cfg_.capacity) {  // LRU eviction at capacity
    size_t victim = 0;
    for (size_t i = 1; i < v.size(); ++i) {
      if (v[i].stamp < v[victim].stamp) victim = i;
    }
    v.erase(v.begin() + static_cast<long>(victim));
    if (victim < first) --first;
    ++stats_.evictions;
    --total_entries_;
  }
  RouteEntry e;
  e.lo = lo;
  e.hi = hi;
  e.owner = owner;
  e.cost = cost;
  e.stamp = ++nc->tick;
  v.insert(v.begin() + static_cast<long>(first), e);
  ++total_entries_;
}

void Manager::Learn(net::PeerId node, uint64_t lo, uint64_t hi,
                    net::PeerId owner, int cost) {
  if (cfg_.capacity == 0 || owner == net::kNullPeer) return;
  NodeCache& nc = nodes_.GetOrInsert(node);
  if (lo == hi) {
    InsertEntry(&nc, 0, 0, owner, cost);  // owner spans the whole space
  } else if (lo < hi) {
    InsertEntry(&nc, lo, hi, owner, cost);
  } else {
    // Wrapped (hash-ring) interval: split at the end of the space so every
    // stored entry searches as a plain sorted range.
    InsertEntry(&nc, lo, 0, owner, cost);
    if (hi > 0) InsertEntry(&nc, 0, hi, owner, cost);
  }
}

void Manager::EvictStale(net::PeerId node, int slot) {
  NodeCache* nc = nodes_.Find(node);
  if (nc == nullptr || slot < 0 ||
      static_cast<size_t>(slot) >= nc->entries.size()) {
    return;
  }
  nc->entries.erase(nc->entries.begin() + slot);
  ++stats_.stale;
  ++stats_.evictions;
  --total_entries_;
}

void Manager::InvalidatePeer(net::PeerId owner) {
  nodes_.ForEach([&](uint64_t, NodeCache& nc) {
    auto dead = std::remove_if(
        nc.entries.begin(), nc.entries.end(),
        [owner](const RouteEntry& e) { return e.owner == owner; });
    size_t removed = static_cast<size_t>(nc.entries.end() - dead);
    nc.entries.erase(dead, nc.entries.end());
    stats_.invalidations += removed;
    total_entries_ -= removed;
  });
}

void Manager::InvalidateRange(uint64_t lo, uint64_t hi) {
  nodes_.ForEach([&](uint64_t, NodeCache& nc) {
    auto dead = std::remove_if(
        nc.entries.begin(), nc.entries.end(), [lo, hi](const RouteEntry& e) {
          return Intersects(e.lo, e.hi, lo, hi);
        });
    size_t removed = static_cast<size_t>(nc.entries.end() - dead);
    nc.entries.erase(dead, nc.entries.end());
    stats_.invalidations += removed;
    total_entries_ -= removed;
  });
}

bool Manager::NeedsRefresh(net::PeerId node) const {
  if (!fast_enabled()) return false;
  const NodeCache* nc = nodes_.Find(node);
  return (nc == nullptr ? 0 : nc->refreshed_version) != version_;
}

void Manager::InstallSnapshot(std::vector<FastEntry> entries) {
  fast_ = std::move(entries);
  snapshot_version_ = version_;
}

void Manager::MarkRefreshed(net::PeerId node, uint64_t billed_msgs) {
  nodes_.GetOrInsert(node).refreshed_version = version_;
  ++stats_.refreshes;
  stats_.refresh_msgs += billed_msgs;
}

const FastEntry* Manager::FastLookup(uint64_t rk) const {
  const FastEntry* best = nullptr;
  for (const FastEntry& e : fast_) {
    if (!RangeContains(e.lo, e.hi, rk)) continue;
    if (best == nullptr || e.depth > best->depth) best = &e;
  }
  return best;
}

size_t Manager::EntriesFor(net::PeerId node) const {
  const NodeCache* nc = nodes_.Find(node);
  return nc == nullptr ? 0 : nc->entries.size();
}

}  // namespace cache
}  // namespace baton
