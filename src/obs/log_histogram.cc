#include "obs/log_histogram.h"

#include <cstdio>

namespace baton {
namespace obs {

int LogHistogram::BucketIndex(uint64_t value) {
  if (value < kExactLimit) return static_cast<int>(value);
  int msb = 63 - __builtin_clzll(value);  // >= kExactBits here
  return static_cast<int>(kExactLimit) + (msb - kExactBits);
}

uint64_t LogHistogram::BucketLow(int i) {
  if (i < static_cast<int>(kExactLimit)) return static_cast<uint64_t>(i);
  return uint64_t{1} << (kExactBits + (i - static_cast<int>(kExactLimit)));
}

void LogHistogram::Add(uint64_t value, uint64_t count) {
  if (count == 0) return;
  buckets_[static_cast<size_t>(BucketIndex(value))] += count;
  count_ += count;
  sum_ += value * count;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void LogHistogram::Clear() { *this = LogHistogram{}; }

double LogHistogram::Mean() const {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the order statistic we estimate (1-based), matching
  // Histogram::Percentile: at least ceil(q * count) samples <= the answer.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  // The extreme order statistics are tracked exactly; answering them from
  // min_/max_ beats any bucket representative (p0 = min, p100 = max).
  if (rank == 1) return min_;
  if (rank == count_) return max_;
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cum += buckets_[static_cast<size_t>(i)];
    if (cum < rank) continue;
    if (i < static_cast<int>(kExactLimit)) return static_cast<uint64_t>(i);
    // Mid-bucket representative, clamped to the observed extremes so
    // saturated tails (every sample in one bucket) report real values.
    uint64_t lo = BucketLow(i);
    uint64_t mid = lo + lo / 2;
    if (mid < min_) mid = min_;
    if (mid > max_) mid = max_;
    return mid;
  }
  return max();  // unreachable: cum reaches count_ >= rank
}

uint64_t LogHistogram::QuantileInterp(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Same rank rule as Quantile(): 1-based rank ceil(q * count) in [1, count].
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  if (rank == 1) return min_;
  if (rank == count_) return max_;
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = buckets_[static_cast<size_t>(i)];
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    if (i < static_cast<int>(kExactLimit)) return static_cast<uint64_t>(i);
    // Place the target rank linearly within the bucket's value range by its
    // offset among the bucket's samples: offset 1 of k maps near lo, offset
    // k near the bucket's top (2*lo - 1). Degenerates to the midpoint for a
    // single-sample bucket. Clamp to the observed extremes like Quantile().
    uint64_t lo = BucketLow(i);
    uint64_t width = lo;  // power-of-two buckets span [lo, 2*lo)
    uint64_t offset = rank - cum;  // 1-based position within the bucket
    double frac = in_bucket <= 1
                      ? 0.5
                      : static_cast<double>(offset - 1) /
                            static_cast<double>(in_bucket - 1);
    uint64_t v = lo + static_cast<uint64_t>(
                          frac * static_cast<double>(width - 1) + 0.5);
    if (v < min_) v = min_;
    if (v > max_) v = max_;
    return v;
  }
  return max();  // unreachable: cum reaches count_ >= rank
}

bool LogHistogram::operator==(const LogHistogram& other) const {
  return buckets_ == other.buckets_ && count_ == other.count_ &&
         sum_ == other.sum_ && min() == other.min() && max() == other.max();
}

std::string LogHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "count=%llu mean=%.2f p50=%llu p90=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Quantile(0.50)),
                static_cast<unsigned long long>(Quantile(0.90)),
                static_cast<unsigned long long>(Quantile(0.99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace obs
}  // namespace baton
