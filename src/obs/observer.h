// obs::Observer: the one object an Instance attaches to make a run
// observable. It implements net::MessageObserver (every counted message
// updates the metrics registry and, when tracing, lands in the trace as a
// child event of the open op span) and receives the overlay wrapper's
// BeginOp/EndOp calls (one span + one set of op histograms per public
// operation).
//
// Attachment mirrors AttachSim: per overlay instance, opt-in, non-owning
// from the network's point of view. With no observer attached every hot
// path is a single null check -- no allocations, byte-identical behaviour.
#ifndef BATON_OBS_OBSERVER_H_
#define BATON_OBS_OBSERVER_H_

#include <memory>

#include "net/message.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace baton {
namespace obs {

class Observer : public net::MessageObserver {
 public:
  /// With `tracing` set the observer also records a full causal trace
  /// (spans + message events); metrics are always collected.
  explicit Observer(bool tracing = false);

  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  /// Null unless constructed with tracing enabled.
  TraceRecorder* trace() { return trace_.get(); }
  const TraceRecorder* trace() const { return trace_.get(); }

  /// Scalar outcome of one public operation (the OpStats fields the
  /// observer records; a plain struct so obs/ stays below overlay/).
  struct OpOutcome {
    bool ok = false;
    uint32_t peer = 0;
    int hops = 0;
    uint64_t messages = 0;
    uint64_t latency_ticks = 0;
  };

  // ---- net::MessageObserver -----------------------------------------------
  void OnMessage(net::PeerId from, net::PeerId to, net::MsgType type,
                 uint64_t send_tick, uint64_t deliver_tick) override;

  // ---- Overlay wrapper hooks ----------------------------------------------
  void BeginOp(const char* name, uint64_t tick);
  void EndOp(const char* name, uint64_t tick, const OpOutcome& out);

 private:
  Registry metrics_;
  std::unique_ptr<TraceRecorder> trace_;

  // Hot-path caches into the registry (references stay valid for the
  // registry's lifetime), so OnMessage does no map lookups.
  uint64_t* msgs_total_;
  uint64_t* by_category_[static_cast<int>(net::MsgCategory::kOther) + 1];
  std::vector<uint64_t>* msgs_in_;
  std::vector<uint64_t>* msgs_out_;
  std::vector<uint64_t>* routing_touch_;
  std::vector<uint64_t>* restructure_;
  std::vector<uint64_t>* replica_msgs_;
};

}  // namespace obs
}  // namespace baton

#endif  // BATON_OBS_OBSERVER_H_
