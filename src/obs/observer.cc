#include "obs/observer.h"

#include <string>

namespace baton {
namespace obs {

namespace {
constexpr int kNumCategories = static_cast<int>(net::MsgCategory::kOther) + 1;
}  // namespace

Observer::Observer(bool tracing) {
  if (tracing) trace_ = std::make_unique<TraceRecorder>();
  msgs_total_ = &metrics_.Counter("net.messages");
  for (int c = 0; c < kNumCategories; ++c) {
    by_category_[c] = &metrics_.Counter(
        std::string("net.msgs.") +
        net::MsgCategoryName(static_cast<net::MsgCategory>(c)));
  }
  msgs_in_ = &metrics_.PerNode("node.msgs_in");
  msgs_out_ = &metrics_.PerNode("node.msgs_out");
  routing_touch_ = &metrics_.PerNode("node.routing_touch");
  restructure_ = &metrics_.PerNode("node.restructure");
  replica_msgs_ = &metrics_.PerNode("node.replica_msgs");
}

void Observer::OnMessage(net::PeerId from, net::PeerId to, net::MsgType type,
                         uint64_t send_tick, uint64_t deliver_tick) {
  ++*msgs_total_;
  net::MsgCategory cat = net::CategoryOf(type);
  ++*by_category_[static_cast<int>(cat)];
  Registry::IncNode(msgs_out_, from);
  Registry::IncNode(msgs_in_, to);
  // Derived per-node views of the message stream: maintenance deliveries
  // are routing-table touches, restructure/redistribute deliveries count
  // position moves, replication-category traffic tracks replica bytes.
  if (cat == net::MsgCategory::kMaintenance) {
    Registry::IncNode(routing_touch_, to);
  } else if (type == net::MsgType::kRestructureShift ||
             type == net::MsgType::kD3Redistribute) {
    Registry::IncNode(restructure_, to);
  } else if (cat == net::MsgCategory::kReplication) {
    Registry::IncNode(replica_msgs_, to);
  }
  if (trace_ != nullptr) {
    trace_->AddMessage(from, to, static_cast<uint16_t>(type), send_tick,
                       deliver_tick);
  }
}

void Observer::BeginOp(const char* name, uint64_t tick) {
  if (trace_ != nullptr) trace_->BeginSpan(name, tick);
}

void Observer::EndOp(const char* name, uint64_t tick, const OpOutcome& out) {
  std::string prefix = std::string("op.") + name;
  ++metrics_.Counter(prefix + ".count");
  if (out.ok) ++metrics_.Counter(prefix + ".ok");
  if (out.hops >= 0) {
    metrics_.Hist(prefix + ".hops").Add(static_cast<uint64_t>(out.hops));
  }
  metrics_.Hist(prefix + ".messages").Add(out.messages);
  metrics_.Hist(prefix + ".latency_ticks").Add(out.latency_ticks);
  if (trace_ != nullptr) {
    trace_->EndSpan(tick, out.ok, out.peer, out.hops, out.messages,
                    out.latency_ticks);
  }
}

}  // namespace obs
}  // namespace baton
