#include "obs/trace.h"

#include "net/message.h"
#include "util/check.h"

namespace baton {
namespace obs {

namespace {

std::string EscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    // Labels are bench-generated ("baton N=200 seed=0"); control characters
    // would be a caller bug, but never corrupt the JSON over it.
    out += static_cast<unsigned char>(c) < 0x20 ? ' ' : c;
  }
  return out;
}

}  // namespace

void TraceRecorder::BeginSpan(const char* name, uint64_t tick) {
  BATON_CHECK(!span_open_) << "op spans do not nest (open: " << open_.name
                           << ", opening: " << name << ")";
  open_ = OpSpan{};
  open_.name = name;
  open_.begin = tick;
  span_open_ = true;
}

void TraceRecorder::EndSpan(uint64_t tick, bool ok, uint32_t peer, int hops,
                            uint64_t messages, uint64_t latency_ticks) {
  BATON_CHECK(span_open_) << "EndSpan without a matching BeginSpan";
  open_.end = tick;
  open_.ok = ok;
  open_.peer = peer;
  open_.hops = hops;
  open_.messages = messages;
  open_.latency_ticks = latency_ticks;
  spans_.push_back(open_);
  span_open_ = false;
}

void TraceRecorder::AddMessage(uint32_t from, uint32_t to, uint16_t type,
                               uint64_t send, uint64_t deliver) {
  msgs_.push_back(MsgEvent{send, deliver, from, to, type});
}

void WriteChromeTrace(std::ostream& out,
                      const std::vector<TraceProcess>& processes) {
  out << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&]() {
    out << (first ? "\n" : ",\n");
    first = false;
  };
  for (size_t pid = 0; pid < processes.size(); ++pid) {
    const TraceProcess& proc = processes[pid];
    sep();
    out << " {\"ph\": \"M\", \"pid\": " << pid
        << ", \"name\": \"process_name\", \"args\": {\"name\": \""
        << EscapeLabel(proc.label) << "\"}}";
    for (const OpSpan& s : proc.recorder->spans()) {
      sep();
      out << " {\"ph\": \"X\", \"pid\": " << pid << ", \"tid\": 0, \"ts\": "
          << s.begin << ", \"dur\": " << (s.end - s.begin) << ", \"cat\": "
          << "\"op\", \"name\": \"" << s.name << "\", \"args\": {\"ok\": "
          << (s.ok ? "true" : "false") << ", \"peer\": " << s.peer
          << ", \"hops\": " << s.hops << ", \"messages\": " << s.messages
          << ", \"latency_ticks\": " << s.latency_ticks << "}}";
    }
    for (const MsgEvent& m : proc.recorder->messages()) {
      sep();
      out << " {\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
          << ", \"tid\": 0, \"ts\": " << m.deliver << ", \"cat\": \"msg\", "
          << "\"name\": \""
          << net::MsgTypeName(static_cast<net::MsgType>(m.type))
          << "\", \"args\": {\"from\": " << m.from << ", \"to\": " << m.to
          << ", \"send\": " << m.send << "}}";
    }
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace obs
}  // namespace baton
