// obs::Registry: named counters, gauges and log-bucketed histograms with a
// global scope plus per-node counter families, so per-node message load,
// routing-table touches, restructure participation and replica traffic are
// queryable after any run. ART (arXiv:1201.2766) and D3-Tree
// (arXiv:1503.07905) argue their case on load distribution and tail
// behavior; the registry is what lets this repo measure those claims on
// every backend instead of reporting means only.
//
// Naming scheme (dots separate scopes, all lowercase):
//   net.messages              global message counter
//   net.msgs.<category>       per MsgCategory counters (maintenance, query..)
//   node.<family>             per-node counter families (msgs_in, msgs_out,
//                             routing_touch, restructure, replica_msgs)
//   op.<name>.count|ok        per-operation counters (exact, range, join...)
//   op.<name>.hops|messages|latency_ticks   per-operation histograms
//   serve.*                   serving-engine outcomes (ops_admitted,
//                             sojourn_ticks, node.served, ...)
//   fault.*                   degraded-service accounting under fault
//                             injection: dropped_msgs, duplicated_msgs,
//                             retries, timeouts, gave_up, degraded --
//                             written by the overlay resilience wrapper
//                             and the serving engine (shared constant
//                             names in fault/fault.h)
//
// Accessors return references that stay valid for the registry's lifetime
// (node-based maps), so hot paths cache them once and update through the
// reference -- no per-event lookups.
#ifndef BATON_OBS_METRICS_H_
#define BATON_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/log_histogram.h"

namespace baton {
namespace obs {

class Registry {
 public:
  /// Named global counter; created at 0 on first access.
  uint64_t& Counter(const std::string& name);
  /// Named gauge (a settable point-in-time value, e.g. overlay size).
  int64_t& Gauge(const std::string& name);
  /// Named histogram; created empty on first access.
  LogHistogram& Hist(const std::string& name);
  /// Named per-node counter family, indexed by PeerId. Grows on demand via
  /// IncNode; absent nodes read as 0.
  std::vector<uint64_t>& PerNode(const std::string& family);

  /// Bumps family[node], growing the vector as new peers register.
  static void IncNode(std::vector<uint64_t>* family, uint32_t node,
                      uint64_t delta = 1) {
    if (node >= family->size()) family->resize(node + 1, 0);
    (*family)[node] += delta;
  }

  // ---- Read-side queries (0 / nullptr when the name was never written) ----
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  const LogHistogram* FindHist(const std::string& name) const;
  const std::vector<uint64_t>* FindPerNode(const std::string& family) const;

  /// Distribution of one per-node family across nodes [0, n) (absent
  /// entries count as 0) -- the load-balance / hot-spot view: its max vs
  /// Mean() is the skew factor, Quantile(0.99) the p99 node load.
  LogHistogram NodeLoad(const std::string& family, size_t n) const;

  /// Additive merge: counters, gauges, histogram buckets and per-node
  /// entries all sum (for combining per-task registries of disjoint runs).
  void Merge(const Registry& other);

  /// Human-readable dump: counters, gauges, histogram summaries, per-node
  /// family summaries. Deterministic (map order).
  std::string ToString() const;

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{name:
  /// {count,mean,p50,p90,p99,max}},"per_node":{family:{nodes,sum,mean,max,
  /// p50,p99}}} -- the metrics-snapshot artifact CI uploads. Deterministic.
  void AppendJson(std::ostream& out) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, LogHistogram> hists_;
  std::map<std::string, std::vector<uint64_t>> per_node_;
};

}  // namespace obs
}  // namespace baton

#endif  // BATON_OBS_METRICS_H_
