// obs::LogHistogram: fixed-footprint value distribution behind every p50/p99
// the repo reports (hop counts, message bills, latency ticks, per-node load).
//
// Values below kExactLimit land in exact unit buckets; larger values fall
// into power-of-two buckets [2^k, 2^(k+1)). Per-bucket counts are exact, so
// a quantile estimate always lies in the same bucket as the true order
// statistic: exact below kExactLimit, within a factor of 2 above it (the
// mid-bucket representative keeps the relative error under 50%). Add() never
// allocates -- the bucket array is inline -- and histograms merge by
// bucket-wise addition, so per-task instances combine across seeds and
// worker threads without losing tail fidelity. (util::Histogram keeps exact
// per-value counts in a std::map; this one trades exactness above
// kExactLimit for O(1) memory and allocation-free updates on hot paths.)
#ifndef BATON_OBS_LOG_HISTOGRAM_H_
#define BATON_OBS_LOG_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace baton {
namespace obs {

class LogHistogram {
 public:
  /// Values in [0, kExactLimit) are counted exactly, one bucket per value.
  static constexpr uint64_t kExactLimit = 128;
  static constexpr int kExactBits = 7;  // log2(kExactLimit)
  /// One bucket per power of two from kExactLimit up to 2^63 (the last
  /// bucket absorbs everything >= 2^63, including UINT64_MAX).
  static constexpr int kNumBuckets =
      static_cast<int>(kExactLimit) + (64 - kExactBits);

  void Add(uint64_t value, uint64_t count = 1);
  /// Bucket-wise addition; associative and commutative.
  void Merge(const LogHistogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Smallest / largest value observed (0 when empty).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  /// Value v such that at least q of the mass is <= v's bucket, q in [0, 1];
  /// the estimate lies in the same bucket as the true order statistic.
  /// Returns 0 when the histogram is empty (zero-op aggregates must never
  /// divide or walk an empty distribution).
  ///
  /// Rank rule (shared with QuantileInterp): the estimated order statistic
  /// is the 1-based rank ceil(q * count), clamped to [1, count] -- i.e. the
  /// smallest sample with at least a q-fraction of the mass at or below it.
  /// Ranks 1 and count answer from the exactly-tracked min/max. Quantile()
  /// represents the winning bucket by its midpoint (lo + lo/2), clamped to
  /// [min, max].
  uint64_t Quantile(double q) const;

  /// Quantile with rank interpolation inside the winning power-of-two
  /// bucket: the estimate places the target rank linearly within the
  /// bucket's [lo, 2*lo) value range by its offset among the bucket's own
  /// samples, instead of answering the fixed midpoint. Far-tail quantiles
  /// (p99.9 and beyond) usually land in one wide bucket together with p99;
  /// interpolation is what keeps them distinguishable and monotone in q.
  /// Exact below kExactLimit; clamped to [min, max]; 0 when empty. Same
  /// rank rule as Quantile().
  uint64_t QuantileInterp(double q) const;

  /// Samples recorded in bucket i (test/introspection access).
  uint64_t bucket_count(int i) const { return buckets_[static_cast<size_t>(i)]; }
  /// Inclusive lower edge of bucket i's value range.
  static uint64_t BucketLow(int i);

  bool operator==(const LogHistogram& other) const;
  bool operator!=(const LogHistogram& other) const { return !(*this == other); }

  /// Compact "count=... mean=... p50=... p90=... p99=... max=..." summary.
  std::string Summary() const;

 private:
  static int BucketIndex(uint64_t value);

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace obs
}  // namespace baton

#endif  // BATON_OBS_LOG_HISTOGRAM_H_
