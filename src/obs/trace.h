// obs::TraceRecorder: causal, message-level operation tracing. The overlay's
// measured wrapper opens one span per public operation; net::Network emits a
// child event per counted message carrying (from, to, type, send tick,
// deliver tick). WriteChromeTrace serializes any number of recorders into
// one Chrome trace-event JSON file (the {"traceEvents": [...]} flavor),
// loadable in Perfetto / chrome://tracing, one "process" per recorder.
//
// Ticks are virtual: with a sim/ kernel attached they are the event queue's
// critical-path clock; without one they fall back to the global message
// index, which still orders every event causally. The writer emits ticks as
// Chrome's microsecond timestamps verbatim and contains no wall-clock or
// pointer values, so the same seed always produces a byte-identical file.
#ifndef BATON_OBS_TRACE_H_
#define BATON_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace baton {
namespace obs {

/// One public overlay operation, bracketed by the measured wrapper.
struct OpSpan {
  const char* name;        // static op name ("exact", "join", ...)
  uint64_t begin = 0;      // tick at operation start
  uint64_t end = 0;        // tick at operation completion
  uint32_t peer = 0;       // operation-specific peer from OpStats
  int hops = 0;
  uint64_t messages = 0;
  uint64_t latency_ticks = 0;
  bool ok = false;
};

/// One counted message, causally inside the span that was open when it was
/// sent.
struct MsgEvent {
  uint64_t send = 0;     // tick the sender dispatched it
  uint64_t deliver = 0;  // tick the receiver saw it
  uint32_t from = 0;
  uint32_t to = 0;
  uint16_t type = 0;     // net::MsgType
};

class TraceRecorder {
 public:
  /// Opens a span; public overlay operations never nest, so at most one
  /// span is open at a time (CHECK-enforced).
  void BeginSpan(const char* name, uint64_t tick);
  void EndSpan(uint64_t tick, bool ok, uint32_t peer, int hops,
               uint64_t messages, uint64_t latency_ticks);
  void AddMessage(uint32_t from, uint32_t to, uint16_t type, uint64_t send,
                  uint64_t deliver);

  /// Completed spans == public operations executed while recording.
  size_t span_count() const { return spans_.size(); }
  size_t message_count() const { return msgs_.size(); }
  const std::vector<OpSpan>& spans() const { return spans_; }
  const std::vector<MsgEvent>& messages() const { return msgs_; }

 private:
  std::vector<OpSpan> spans_;
  std::vector<MsgEvent> msgs_;
  OpSpan open_;
  bool span_open_ = false;
};

/// One trace-viewer "process": a labelled recorder (e.g. "baton N=200
/// seed=0" for one bench task).
struct TraceProcess {
  std::string label;
  const TraceRecorder* recorder;
};

/// Writes all processes into one Chrome trace-event JSON document. Op spans
/// become complete ("ph":"X") events with cat "op" -- their number equals
/// the operations executed -- and messages become instant ("ph":"i") events
/// with cat "msg" at their deliver tick, args carrying from/to/send.
void WriteChromeTrace(std::ostream& out,
                      const std::vector<TraceProcess>& processes);

}  // namespace obs
}  // namespace baton

#endif  // BATON_OBS_TRACE_H_
