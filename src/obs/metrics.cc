#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace baton {
namespace obs {

namespace {

/// Minimal JSON string escape (metric names are plain identifiers, but the
/// writer must never emit invalid JSON whatever the caller named things).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendHistJson(std::ostream& out, const LogHistogram& h) {
  out << "{\"count\": " << h.count() << ", \"mean\": " << h.Mean()
      << ", \"p50\": " << h.Quantile(0.50) << ", \"p90\": " << h.Quantile(0.90)
      << ", \"p99\": " << h.Quantile(0.99) << ", \"max\": " << h.max() << "}";
}

}  // namespace

uint64_t& Registry::Counter(const std::string& name) {
  return counters_[name];
}

int64_t& Registry::Gauge(const std::string& name) { return gauges_[name]; }

LogHistogram& Registry::Hist(const std::string& name) { return hists_[name]; }

std::vector<uint64_t>& Registry::PerNode(const std::string& family) {
  return per_node_[family];
}

uint64_t Registry::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t Registry::GaugeValue(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const LogHistogram* Registry::FindHist(const std::string& name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

const std::vector<uint64_t>* Registry::FindPerNode(
    const std::string& family) const {
  auto it = per_node_.find(family);
  return it == per_node_.end() ? nullptr : &it->second;
}

LogHistogram Registry::NodeLoad(const std::string& family, size_t n) const {
  LogHistogram dist;
  const std::vector<uint64_t>* fam = FindPerNode(family);
  for (size_t i = 0; i < n; ++i) {
    dist.Add(fam != nullptr && i < fam->size() ? (*fam)[i] : 0);
  }
  return dist;
}

void Registry::Merge(const Registry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] += v;
  for (const auto& [name, h] : other.hists_) hists_[name].Merge(h);
  for (const auto& [family, vec] : other.per_node_) {
    std::vector<uint64_t>& mine = per_node_[family];
    if (mine.size() < vec.size()) mine.resize(vec.size(), 0);
    for (size_t i = 0; i < vec.size(); ++i) mine[i] += vec[i];
  }
}

std::string Registry::ToString() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters_) {
    out << name << ": " << v << "\n";
  }
  for (const auto& [name, v] : gauges_) {
    out << name << ": " << v << " (gauge)\n";
  }
  for (const auto& [name, h] : hists_) {
    out << name << ": " << h.Summary() << "\n";
  }
  for (const auto& [family, vec] : per_node_) {
    LogHistogram dist = NodeLoad(family, vec.size());
    out << family << " (" << vec.size() << " nodes): " << dist.Summary()
        << "\n";
  }
  return out.str();
}

void Registry::AppendJson(std::ostream& out) const {
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    out << (first ? "" : ", ") << "\"" << Escape(name) << "\": " << v;
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out << (first ? "" : ", ") << "\"" << Escape(name) << "\": " << v;
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : hists_) {
    out << (first ? "" : ", ") << "\"" << Escape(name) << "\": ";
    AppendHistJson(out, h);
    first = false;
  }
  out << "}, \"per_node\": {";
  first = true;
  for (const auto& [family, vec] : per_node_) {
    LogHistogram dist = NodeLoad(family, vec.size());
    out << (first ? "" : ", ") << "\"" << Escape(family)
        << "\": {\"nodes\": " << vec.size() << ", \"sum\": " << dist.sum()
        << ", \"mean\": " << dist.Mean() << ", \"max\": " << dist.max()
        << ", \"p50\": " << dist.Quantile(0.50)
        << ", \"p99\": " << dist.Quantile(0.99) << "}";
    first = false;
  }
  out << "}}";
}

}  // namespace obs
}  // namespace baton
