#include "baton/key_bag.h"

#include <algorithm>

#include "util/check.h"

namespace baton {

void KeyBag::Flush() const {
  if (pending_.empty()) return;
  std::sort(pending_.begin(), pending_.end());
  std::vector<Key> merged;
  merged.reserve(sorted_.size() + pending_.size());
  std::merge(sorted_.begin(), sorted_.end(), pending_.begin(), pending_.end(),
             std::back_inserter(merged));
  sorted_ = std::move(merged);
  pending_.clear();
}

void KeyBag::Insert(Key k) {
  pending_.push_back(k);
  if (pending_.size() >= kFlushThreshold) Flush();
}

bool KeyBag::Erase(Key k) {
  auto pit = std::find(pending_.begin(), pending_.end(), k);
  if (pit != pending_.end()) {
    pending_.erase(pit);
    return true;
  }
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), k);
  if (it != sorted_.end() && *it == k) {
    sorted_.erase(it);
    return true;
  }
  return false;
}

bool KeyBag::Contains(Key k) const {
  if (std::find(pending_.begin(), pending_.end(), k) != pending_.end()) {
    return true;
  }
  return std::binary_search(sorted_.begin(), sorted_.end(), k);
}

Key KeyBag::Min() const {
  BATON_CHECK(!empty());
  Flush();
  return sorted_.front();
}

Key KeyBag::Max() const {
  BATON_CHECK(!empty());
  Flush();
  return sorted_.back();
}

Key KeyBag::Median() const {
  BATON_CHECK(!empty());
  Flush();
  return sorted_[sorted_.size() / 2];
}

Key KeyBag::Kth(size_t i) const {
  BATON_CHECK_LT(i, size());
  Flush();
  return sorted_[i];
}

size_t KeyBag::CountInRange(Key lo, Key hi) const {
  Flush();
  auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
  auto last = std::lower_bound(sorted_.begin(), sorted_.end(), hi);
  return static_cast<size_t>(last - first);
}

KeyBag KeyBag::ExtractBelow(Key pivot) {
  Flush();
  auto split = std::lower_bound(sorted_.begin(), sorted_.end(), pivot);
  KeyBag out;
  out.sorted_.assign(sorted_.begin(), split);
  sorted_.erase(sorted_.begin(), split);
  return out;
}

KeyBag KeyBag::ExtractAtLeast(Key pivot) {
  Flush();
  auto split = std::lower_bound(sorted_.begin(), sorted_.end(), pivot);
  KeyBag out;
  out.sorted_.assign(split, sorted_.end());
  sorted_.erase(split, sorted_.end());
  return out;
}

KeyBag KeyBag::ExtractLowest(size_t count) {
  Flush();
  count = std::min(count, sorted_.size());
  KeyBag out;
  out.sorted_.assign(sorted_.begin(), sorted_.begin() + count);
  sorted_.erase(sorted_.begin(), sorted_.begin() + count);
  return out;
}

KeyBag KeyBag::ExtractHighest(size_t count) {
  Flush();
  count = std::min(count, sorted_.size());
  KeyBag out;
  out.sorted_.assign(sorted_.end() - count, sorted_.end());
  sorted_.erase(sorted_.end() - count, sorted_.end());
  return out;
}

void KeyBag::Absorb(KeyBag* other) {
  other->Flush();
  for (Key k : other->sorted_) pending_.push_back(k);
  other->sorted_.clear();
  Flush();
}

const std::vector<Key>& KeyBag::SortedKeys() const {
  Flush();
  return sorted_;
}

}  // namespace baton
