#include "baton/key_bag.h"

#include <algorithm>

#include "util/check.h"

namespace baton {

void KeyBag::Flush() const {
  if (pending_.empty()) return;
  std::sort(pending_.begin(), pending_.end());
  std::vector<Key> merged;
  merged.reserve(sorted_.size() + pending_.size());
  std::merge(sorted_.begin(), sorted_.end(), pending_.begin(), pending_.end(),
             std::back_inserter(merged));
  sorted_ = std::move(merged);
  pending_.clear();
}

void KeyBag::Insert(Key k) {
  pending_.push_back(k);
  if (pending_.size() >= kFlushThreshold) Flush();
}

bool KeyBag::Erase(Key k) {
  auto pit = std::find(pending_.begin(), pending_.end(), k);
  if (pit != pending_.end()) {
    pending_.erase(pit);
    return true;
  }
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), k);
  if (it != sorted_.end() && *it == k) {
    sorted_.erase(it);
    return true;
  }
  return false;
}

bool KeyBag::Contains(Key k) const {
  if (std::find(pending_.begin(), pending_.end(), k) != pending_.end()) {
    return true;
  }
  return std::binary_search(sorted_.begin(), sorted_.end(), k);
}

Key KeyBag::Min() const {
  BATON_CHECK(!empty());
  Flush();
  return sorted_.front();
}

Key KeyBag::Max() const {
  BATON_CHECK(!empty());
  Flush();
  return sorted_.back();
}

Key KeyBag::Median() const {
  BATON_CHECK(!empty());
  Flush();
  return sorted_[sorted_.size() / 2];
}

Key KeyBag::Kth(size_t i) const {
  BATON_CHECK_LT(i, size());
  Flush();
  return sorted_[i];
}

size_t KeyBag::CountInRange(Key lo, Key hi) const {
  Flush();
  auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
  auto last = std::lower_bound(sorted_.begin(), sorted_.end(), hi);
  return static_cast<size_t>(last - first);
}

KeyBag KeyBag::ExtractPrefix(size_t count) {
  // Hand the whole vector to the extracted bag and keep a copy of the
  // suffix: one copy of the surviving side, instead of copying the prefix
  // AND shifting the suffix down (erase) as the naive split would.
  KeyBag out;
  if (count == 0) return out;  // keep the empty split an O(1) no-op
  out.sorted_ = std::move(sorted_);
  sorted_.assign(out.sorted_.begin() + static_cast<ptrdiff_t>(count),
                 out.sorted_.end());
  out.sorted_.resize(count);
  return out;
}

KeyBag KeyBag::ExtractSuffix(size_t from) {
  // The suffix moves out, the prefix stays in place: no element shifts.
  KeyBag out;
  if (from == sorted_.size()) return out;  // empty split: O(1) no-op
  out.sorted_.assign(sorted_.begin() + static_cast<ptrdiff_t>(from),
                     sorted_.end());
  sorted_.resize(from);
  return out;
}

KeyBag KeyBag::ExtractBelow(Key pivot) {
  Flush();
  auto split = std::lower_bound(sorted_.begin(), sorted_.end(), pivot);
  return ExtractPrefix(static_cast<size_t>(split - sorted_.begin()));
}

KeyBag KeyBag::ExtractAtLeast(Key pivot) {
  Flush();
  auto split = std::lower_bound(sorted_.begin(), sorted_.end(), pivot);
  return ExtractSuffix(static_cast<size_t>(split - sorted_.begin()));
}

KeyBag KeyBag::ExtractLowest(size_t count) {
  Flush();
  return ExtractPrefix(std::min(count, sorted_.size()));
}

KeyBag KeyBag::ExtractHighest(size_t count) {
  Flush();
  return ExtractSuffix(sorted_.size() - std::min(count, sorted_.size()));
}

void KeyBag::Absorb(KeyBag* other) {
  // Both sides are sorted after their flushes: merge directly instead of
  // dumping `other` into pending_ and re-sorting keys that were already in
  // order (the old path sorted the absorbed keys twice).
  BATON_CHECK(other != this) << "a bag cannot absorb itself";
  Flush();
  other->Flush();
  if (other->sorted_.empty()) return;
  if (sorted_.empty()) {
    sorted_ = std::move(other->sorted_);
  } else {
    std::vector<Key> merged;
    merged.reserve(sorted_.size() + other->sorted_.size());
    std::merge(sorted_.begin(), sorted_.end(), other->sorted_.begin(),
               other->sorted_.end(), std::back_inserter(merged));
    sorted_ = std::move(merged);
  }
  other->sorted_.clear();
}

const std::vector<Key>& KeyBag::SortedKeys() const {
  Flush();
  return sorted_;
}

}  // namespace baton
