// Node failure (section III-C): a failed peer stops responding; messages to
// it are wasted (kDeadProbe) until its parent regenerates its routing state
// ("by contacting children of nodes in its own routing tables") and runs a
// graceful departure on its behalf. In the paper's index the failed node's
// keys are lost (it stores no replicas); with the replication subsystem
// enabled, recovery first restores them from the freshest live replica so
// only the range handover remains lossy-free. Either way the range is
// recovered and the partitioning stays contiguous.
#include <algorithm>
#include <iterator>

#include "baton/baton_network.h"

namespace baton {

void BatonNetwork::Fail(PeerId victim) {
  BATON_CHECK(InOverlay(victim));
  BATON_CHECK(net_->IsAlive(victim)) << "peer already failed";
  net_->MarkDead(victim);
  failed_.push_back(victim);
}

void BatonNetwork::RegenerateFailedState(BatonNode* x, BatonNode* initiator) {
  // The initiator rebuilds x's two routing tables by querying the children
  // of its own sideways neighbours (Theorem 2 puts every neighbour of x one
  // hop below a neighbour of x's parent) and locates x's children the same
  // way. In the simulator x's state object is still current -- the links
  // kept receiving updates -- so regeneration only needs to be *charged*.
  for (const RoutingTable* rt : {&x->left_rt, &x->right_rt}) {
    for (int i = 0; i < rt->size(); ++i) {
      const NodeRef& e = rt->entry(i);
      if (!e.valid()) continue;
      if (!net_->IsAlive(e.peer)) {
        Count(initiator->id, e.peer, net::MsgType::kDeadProbe);
        continue;
      }
      Count(initiator->id, e.peer, net::MsgType::kRecoveryProbe);
      Count(e.peer, initiator->id, net::MsgType::kRecoveryReply);
    }
  }
  for (const NodeRef* child : {&x->left_child, &x->right_child}) {
    if (!child->valid()) continue;
    if (!net_->IsAlive(child->peer)) {
      Count(initiator->id, child->peer, net::MsgType::kDeadProbe);
      continue;
    }
    Count(initiator->id, child->peer, net::MsgType::kRecoveryProbe);
    Count(child->peer, initiator->id, net::MsgType::kRecoveryReply);
  }
}

bool BatonNetwork::TryRestoreContent(BatonNode* x, BatonNode* initiator) {
  if (!repl_->enabled()) return false;
  KeyBag restored;
  if (!repl_->Restore(x->id, initiator->id, &restored)) {
    return false;  // no live holder: the paper's lossy path applies
  }
  // Exact accounting against the simulator's ground truth (x's bag was never
  // physically sent anywhere): victim keys missing from the replica are
  // lost; every replica key re-enters the index. A stale copy may even
  // resurrect keys deleted after its last sync -- real anti-entropy
  // behaviour, visible in the counters.
  size_t at_risk = x->data.size();
  const std::vector<Key>& actual = x->data.SortedKeys();
  const std::vector<Key>& have = restored.SortedKeys();
  std::vector<Key> missing;
  std::set_difference(actual.begin(), actual.end(), have.begin(), have.end(),
                      std::back_inserter(missing));
  lost_keys_ += missing.size();
  recovered_keys_ += have.size();
  total_keys_ = total_keys_ - at_risk + have.size();
  x->data = std::move(restored);
  return true;
}

Status BatonNetwork::RecoverFailure(PeerId failed) {
  auto it = std::find(failed_.begin(), failed_.end(), failed);
  if (it == failed_.end()) {
    return Status::InvalidArgument("peer is not a pending failure");
  }
  BatonNode* x = N(failed);
  BATON_CHECK(x->in_overlay);

  if (size() == 1) {
    RemoveLastNode(x);
    failed_.erase(it);
    return Status::OK();
  }

  // Pick a live initiator: the parent if possible ("These nodes must report
  // this failure to node y, the parent of x"), else a child or adjacent.
  BatonNode* initiator = nullptr;
  for (const NodeRef* cand : {&x->parent, &x->left_child, &x->right_child,
                              &x->left_adj, &x->right_adj}) {
    if (cand->valid() && net_->IsAlive(cand->peer) && InOverlay(cand->peer)) {
      initiator = N(cand->peer);
      break;
    }
  }
  if (initiator == nullptr) {
    return Status::Unavailable("no live neighbour; recover others first");
  }
  Count(initiator->id, initiator->id, net::MsgType::kFailureReport);
  RegenerateFailedState(x, initiator);

  // The restore runs only once recovery is committed (all retriable
  // early-outs passed): the initiator pulls the victim's keys back from the
  // freshest replica, and whoever inherits the range below inherits them
  // through the normal content handover (charged from x's address -- the
  // initiator relays on the dead node's behalf).
  if (SafeToRemove(x)) {
    bool restored = TryRestoreContent(x, initiator);
    SafeLeaveAsLeaf(x, /*transfer_content=*/restored);
    failed_.erase(std::find(failed_.begin(), failed_.end(), failed));
    return Status::OK();
  }
  int hops = 0;
  PeerId zid = FindReplacementStart(x, &hops);
  if (zid == kNullPeer) {
    return Status::Unavailable("replacement search blocked by failures");
  }
  if (!LeaveHandshakeOk(N(zid), /*exempt_dead=*/x->id)) {
    return Status::Unavailable("replacement's parent link in flux; retry");
  }
  bool restored = TryRestoreContent(x, initiator);
  ReplaceNode(x, N(zid), /*content_lost=*/!restored);
  failed_.erase(std::find(failed_.begin(), failed_.end(), failed));
  return Status::OK();
}

Status BatonNetwork::RecoverAllFailures() {
  while (!failed_.empty()) {
    bool progress = false;
    std::vector<PeerId> snapshot = failed_;
    for (PeerId f : snapshot) {
      if (RecoverFailure(f).ok()) progress = true;
    }
    if (!progress) {
      return Status::Unavailable("failure recovery cannot make progress");
    }
  }
  return Status::OK();
}

}  // namespace baton
