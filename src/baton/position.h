// Logical tree positions.
//
// "We associate with each node in the tree a level and a number. The level of
// the root is 0 ... At each level L, nodes are numbered from 1 to 2^L."
// (level, number) fully determines a slot in the infinite binary tree; the
// in-order traversal order of slots gives the key-space ordering.
#ifndef BATON_BATON_POSITION_H_
#define BATON_BATON_POSITION_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "util/check.h"

namespace baton {

struct Position {
  // Levels are bounded by kMaxLevel so in-order keys fit in 64 bits. A
  // balanced tree of 2^48 nodes is far beyond any simulation size.
  static constexpr uint32_t kMaxLevel = 48;

  uint32_t level = 0;
  uint64_t number = 1;  // 1-based within the level, in [1, 2^level]

  static Position Root() { return Position{0, 1}; }

  bool IsRoot() const { return level == 0; }
  /// True if this slot is the left child of its parent (odd number).
  bool IsLeftChild() const { return (number & 1) == 1; }

  Position Parent() const {
    BATON_CHECK(!IsRoot());
    return Position{level - 1, (number + 1) / 2};
  }
  Position LeftChild() const {
    BATON_CHECK_LT(level, kMaxLevel);
    return Position{level + 1, 2 * number - 1};
  }
  Position RightChild() const {
    BATON_CHECK_LT(level, kMaxLevel);
    return Position{level + 1, 2 * number};
  }
  Position Sibling() const {
    BATON_CHECK(!IsRoot());
    return Position{level, IsLeftChild() ? number + 1 : number - 1};
  }

  /// Number of slots on the level: numbers range over [1, 2^level].
  uint64_t LevelWidth() const { return uint64_t{1} << level; }

  /// Key that orders slots by in-order traversal: slot (l, n) sits at the
  /// centre (2n-1)/2^(l+1) of its dyadic interval; scaling by 2^kMaxLevel+1
  /// gives an exact integer comparison key.
  uint64_t InOrderKey() const {
    BATON_CHECK_LE(level, kMaxLevel);
    return (2 * number - 1) << (kMaxLevel - level);
  }

  /// Dense packing for hash maps: level in the top bits.
  uint64_t Packed() const {
    return (static_cast<uint64_t>(level) << 52) | number;
  }

  bool operator==(const Position& o) const {
    return level == o.level && number == o.number;
  }
  bool operator!=(const Position& o) const { return !(*this == o); }

  std::string ToString() const {
    return "(" + std::to_string(level) + "," + std::to_string(number) + ")";
  }
};

inline std::ostream& operator<<(std::ostream& os, const Position& p) {
  return os << p.ToString();
}

/// True if `a` precedes `b` in the in-order traversal of the infinite tree.
inline bool InOrderBefore(const Position& a, const Position& b) {
  return a.InOrderKey() < b.InOrderKey();
}

}  // namespace baton

#endif  // BATON_BATON_POSITION_H_
