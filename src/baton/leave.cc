// Node departure (section III-B): leaf nodes whose absence keeps the tree
// balanced leave directly (content and range go to the parent); everyone else
// finds a replacement leaf with Algorithm 2, which then takes over the
// departing node's position. Message accounting follows the paper's
// 2L1 + 2L2 + 2 (direct leave) and 8 log N (replacement) bounds.
#include "baton/baton_network.h"

namespace baton {

bool BatonNetwork::SafeToRemove(const BatonNode* x) const {
  // Theorem 1: removing x must not leave a node that has a child with a
  // non-full routing table. x must be a leaf, and no sideways neighbour may
  // have children (their tables would lose the entry pointing at x).
  if (!x->IsLeaf()) return false;
  for (const RoutingTable* rt : {&x->left_rt, &x->right_rt}) {
    for (int i = 0; i < rt->size(); ++i) {
      const NodeRef& e = rt->entry(i);
      if (e.valid() && e.HasChild()) return false;
    }
  }
  return true;
}

bool BatonNetwork::LeaveHandshakeOk(const BatonNode* x,
                                    PeerId exempt_dead) const {
  if (x->pos.IsRoot()) return true;  // the root departs via replacement
  if (!x->parent.valid()) return false;
  PeerId actual = OccupantOf(x->pos.Parent());
  if (actual != x->parent.peer) return false;  // stale link: position moved
  return net_->IsAlive(actual) || actual == exempt_dead;
}

Status BatonNetwork::Leave(PeerId leaver) {
  if (!InOverlay(leaver)) {
    return Status::InvalidArgument("peer is not an overlay member");
  }
  BatonNode* x = N(leaver);
  if (size() == 1) {
    RemoveLastNode(x);
    return Status::OK();
  }
  if (SafeToRemove(x)) {
    if (!LeaveHandshakeOk(x)) {
      return Status::Unavailable("parent link in flux; retry the departure");
    }
    SafeLeaveAsLeaf(x, /*transfer_content=*/true);
    return Status::OK();
  }
  int hops = 0;
  PeerId zid = FindReplacementStart(x, &hops);
  if (zid == kNullPeer) {
    return Status::Unavailable("replacement search blocked by failures");
  }
  BatonNode* z = N(zid);
  BATON_CHECK_NE(z->id, x->id);
  if (!LeaveHandshakeOk(z)) {
    return Status::Unavailable("replacement's parent link in flux; retry");
  }
  ReplaceNode(x, z, /*content_lost=*/false);
  return Status::OK();
}

void BatonNetwork::RemoveLastNode(BatonNode* x) {
  // The last member takes its keys with it: no peer remains to hold them
  // (and no peer remains to hand held replicas to).
  total_keys_ -= x->data.size();
  lost_keys_ += x->data.size();
  x->data = KeyBag{};
  ReplicaDropPrimary(x);
  UnindexPosition(x);
  x->in_overlay = false;
  net_->MarkDead(x->id);
  ReplicaPeerGone(x->id, /*graceful=*/false);
  bootstrapped_ = false;  // a fresh Bootstrap may restart the overlay
}

void BatonNetwork::SafeLeaveAsLeaf(BatonNode* x, bool transfer_content,
                                   bool peer_stays_up) {
  BATON_CHECK(x->IsLeaf());
  BATON_CHECK(x->parent.valid()) << "a leaf in a size>1 overlay has a parent";
  BatonNode* p = N(x->parent.peer);
  // Graceful departure vs abrupt-failure cleanup: only a peer that was
  // still up when the departure began can hand off the replicas it holds.
  bool was_alive = net_->IsAlive(x->id);

  // 1. Content and range move to the parent (a leaf's range is contiguous
  //    with its parent's: the leaf is the parent's in-order neighbour).
  if (transfer_content) {
    Count(x->id, p->id, net::MsgType::kContentTransfer);
    p->data.Absorb(&x->data);
  } else {
    // Abrupt failure with no restorable replica: the keys are lost.
    total_keys_ -= x->data.size();
    lost_keys_ += x->data.size();
    x->data = KeyBag{};
  }
  bool was_left = x->pos.IsLeftChild();
  if (was_left) {
    BATON_CHECK_EQ(x->range.hi, p->range.lo);
    p->range.lo = x->range.lo;
    p->left_child.Clear();
  } else {
    BATON_CHECK_EQ(p->range.hi, x->range.lo);
    p->range.hi = x->range.hi;
    p->right_child.Clear();
  }

  // 2. Adjacent links bypass x.
  UnspliceFromAdjacency(x);

  // 3. LEAVE messages null the neighbours' entries pointing at x (<= 2 L2).
  ClearReverseEntriesAt(x->pos, x->id, /*charge=*/true);

  // 4. The parent's range and child bits changed: refresh every link that
  //    caches them (<= 2 L1 sideways plus a constant).
  RefreshInboundRefs(p, net::MsgType::kChildStatusNotify);

  UnindexPosition(x);
  x->in_overlay = false;
  x->left_adj.Clear();
  x->right_adj.Clear();
  ReplicaDropPrimary(x);  // charged only when x is alive to announce it
  net_->MarkDead(x->id);
  // The parent's bag grew by the handover: its replicas must hear about it.
  // When the parent is itself a dead pending failure (the child's recovery
  // ran first), the handover's sender -- x's address, relayed by the
  // recovery initiator -- syncs the parent's replicas on its behalf. Synced
  // before releasing x's held replicas: the full sync already prunes x from
  // p's holder set and recruits the replacement, so the release below has
  // nothing left to re-home for p (saves a redundant bulk sync).
  //
  // In the transient case the caller syncs p instead, after restoring x's
  // liveness: syncing here would prune the only-momentarily-dead x from p's
  // holder set and orphan the copy x still physically holds.
  if (transfer_content && !peer_stays_up) ReplicateFullSync(p, /*via=*/x->id);
  // A transiently departing peer (replacement protocol) keeps the replicas
  // it holds for others -- it never actually goes away.
  if (!peer_stays_up) ReplicaPeerGone(x->id, /*graceful=*/was_alive);
}

void BatonNetwork::DetachLeaf(BatonNode* x) {
  // Load-balancing variant: x's content was already handed to an adjacent
  // node, so only the links and the parent's child bit need fixing. The
  // caller is responsible for rebalancing the vacated slot if necessary.
  BATON_CHECK(x->IsLeaf());
  BATON_CHECK(x->data.empty());
  BATON_CHECK(x->parent.valid());
  BatonNode* p = N(x->parent.peer);
  Count(x->id, p->id, net::MsgType::kParentNotify);
  if (x->pos.IsLeftChild()) {
    p->left_child.Clear();
  } else {
    p->right_child.Clear();
  }
  UnspliceFromAdjacency(x);
  ClearReverseEntriesAt(x->pos, x->id, /*charge=*/true);
  RefreshInboundRefs(p, net::MsgType::kChildStatusNotify);
  UnindexPosition(x);
  x->in_overlay = false;
  x->left_adj.Clear();
  x->right_adj.Clear();
  // x's bag was already handed off (it is about to rejoin elsewhere with new
  // content); its old replica set is obsolete. x stays up, so replicas *it*
  // holds for other primaries remain valid.
  ReplicaDropPrimary(x);
}

PeerId BatonNetwork::FindReplacementStart(BatonNode* x, int* hops) {
  // Hop helper that respects liveness: a dead candidate costs a timed-out
  // probe and is skipped (multiple simultaneous failures, section III-D).
  auto live = [&](PeerId p, PeerId prober) {
    if (net_->IsAlive(p)) return true;
    Count(prober, p, net::MsgType::kDeadProbe);
    return false;
  };
  BatonNode* start = nullptr;
  if (x->IsLeaf()) {
    // A leaf that cannot leave directly has a sideways neighbour with a
    // child: the FINDREPLACEMENT request goes to that child.
    for (const RoutingTable* rt : {&x->left_rt, &x->right_rt}) {
      for (int i = 0; i < rt->size() && start == nullptr; ++i) {
        const NodeRef& e = rt->entry(i);
        if (!e.valid() || !e.HasChild() || !live(e.peer, x->id)) continue;
        BatonNode* nb = N(e.peer);
        Count(x->id, nb->id, net::MsgType::kReplacementForward);
        ++*hops;
        for (const NodeRef* c : {&nb->left_child, &nb->right_child}) {
          if (!c->valid() || !live(c->peer, nb->id)) continue;
          Count(nb->id, c->peer, net::MsgType::kReplacementForward);
          ++*hops;
          start = N(c->peer);
          break;
        }
      }
    }
  } else {
    // Internal node: descend through an adjacent node, "a leaf node, or as
    // deep as possible". Prefer the deeper adjacent.
    std::vector<const NodeRef*> adjs;
    if (x->left_adj.valid() && x->right_adj.valid()) {
      if (x->left_adj.pos.level >= x->right_adj.pos.level) {
        adjs = {&x->left_adj, &x->right_adj};
      } else {
        adjs = {&x->right_adj, &x->left_adj};
      }
    } else if (x->left_adj.valid()) {
      adjs = {&x->left_adj};
    } else if (x->right_adj.valid()) {
      adjs = {&x->right_adj};
    }
    for (const NodeRef* adj : adjs) {
      if (!live(adj->peer, x->id)) continue;
      Count(x->id, adj->peer, net::MsgType::kReplacementForward);
      ++*hops;
      start = N(adj->peer);
      break;
    }
  }
  if (start == nullptr) return kNullPeer;
  return RunFindReplacement(start, hops);
}

PeerId BatonNetwork::RunFindReplacement(BatonNode* start, int* hops) {
  // Algorithm 2: always descend, so at most height-of-tree steps.
  auto live = [&](PeerId p, PeerId prober) {
    if (net_->IsAlive(p)) return true;
    Count(prober, p, net::MsgType::kDeadProbe);
    return false;
  };
  BatonNode* n = start;
  int guard = config_.max_hops_factor * (Height() + 2) + 8;
  while (true) {
    if (--guard < 0) {
      BATON_CHECK(net_->defer_updates()) << "FindReplacement did not terminate";
      return kNullPeer;
    }
    BatonNode* deeper = nullptr;
    for (const NodeRef* c : {&n->left_child, &n->right_child}) {
      if (!c->valid() || !live(c->peer, n->id)) continue;
      Count(n->id, c->peer, net::MsgType::kReplacementForward);
      ++*hops;
      deeper = N(c->peer);
      break;
    }
    if (deeper == nullptr) {
      // n is a (reachable) leaf; a sideways neighbour with children sends us
      // deeper.
      for (const RoutingTable* rt : {&n->left_rt, &n->right_rt}) {
        for (int i = 0; i < rt->size() && deeper == nullptr; ++i) {
          const NodeRef& e = rt->entry(i);
          if (!e.valid() || !e.HasChild() || !live(e.peer, n->id)) continue;
          BatonNode* nb = N(e.peer);
          Count(n->id, nb->id, net::MsgType::kReplacementForward);
          ++*hops;
          for (const NodeRef* c : {&nb->left_child, &nb->right_child}) {
            if (!c->valid() || !live(c->peer, nb->id)) continue;
            Count(nb->id, c->peer, net::MsgType::kReplacementForward);
            ++*hops;
            deeper = N(c->peer);
            break;
          }
        }
      }
    }
    if (deeper == nullptr) {
      // No children anywhere in sight: n itself is the replacement, unless
      // its own departure would be unsafe because a dead neighbour still has
      // children (rare multi-failure corner: give up and let the caller
      // retry after other recoveries).
      return SafeToRemove(n) ? n->id : kNullPeer;
    }
    n = deeper;
  }
}

void BatonNetwork::ReplaceNode(BatonNode* x, BatonNode* z, bool content_lost) {
  BATON_CHECK(z->IsLeaf());
  bool x_was_alive = net_->IsAlive(x->id);  // graceful leave vs failure
  // Under deferred updates stale child bits can make an actually-unsafe leaf
  // look safe; structurally the replacement still works (transient imbalance
  // the network repairs as updates propagate).
  if (!net_->defer_updates()) {
    BATON_CHECK(SafeToRemove(z)) << "Algorithm 2 must return a safe leaf";
  }
  // A failed node's keys are gone (unless the caller already restored them
  // from a replica). Account for them *before* z's departure: if z happens
  // to be x's child, z's own keys transfer into x's (dead) store below and
  // must not be double-counted as lost -- z reclaims them in the handover.
  if (content_lost) {
    total_keys_ -= x->data.size();
    lost_keys_ += x->data.size();
    x->data = KeyBag{};
  }

  // 1. z leaves its own position gracefully (content to its parent). This
  //    also fixes x's own links if z happened to be x's child or adjacent.
  //    The physical peer stays up -- it is about to re-appear at x's
  //    position -- so undo the departure's liveness bookkeeping (and keep
  //    the replicas z holds for other primaries).
  PeerId z_parent = z->parent.peer;  // captured: the departure clears links
  SafeLeaveAsLeaf(z, /*transfer_content=*/true, /*peer_stays_up=*/true);
  net_->MarkAlive(z->id);
  // z's old parent absorbed z's bag; its replicas sync now that z is back
  // up, so z keeps its holder slot instead of being pruned as dead. (When
  // that parent is x itself -- z was x's child -- the sync is skipped: x's
  // bag is about to transfer to z and x's replica set is dropped below.)
  if (z_parent != x->id) ReplicateFullSync(N(z_parent));

  // 2. z assumes x's position, range, data and links (one bulk handover).
  if (!content_lost) {
    Count(x->id, z->id, net::MsgType::kContentTransfer);
  }
  UnindexPosition(x);
  z->SetPosition(x->pos);
  z->in_overlay = true;
  z->range = x->range;
  z->data = KeyBag{};
  z->data.Absorb(&x->data);
  z->parent = x->parent;
  z->left_child = x->left_child;
  z->right_child = x->right_child;
  z->left_adj = x->left_adj;
  z->right_adj = x->right_adj;
  z->left_rt = x->left_rt;
  z->right_rt = x->right_rt;
  IndexPosition(z);

  // 3. "all nodes with links to x must be informed to change the physical
  //    (IP) address of the link to point to y instead of x."
  RefreshInboundRefs(z, net::MsgType::kReplacementNotify);

  x->in_overlay = false;
  x->parent.Clear();
  x->left_child.Clear();
  x->right_child.Clear();
  x->left_adj.Clear();
  x->right_adj.Clear();
  ReplicaDropPrimary(x);  // charged only on a graceful departure (x alive)
  net_->MarkDead(x->id);
  ReplicaPeerGone(x->id, /*graceful=*/x_was_alive);
  // z's inherited bag needs a replica set of its own (z's old set was
  // dropped during its departure above).
  ReplicateFullSync(z);
}

}  // namespace baton
