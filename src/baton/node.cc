#include "baton/node.h"

namespace baton {

int RoutingTable::NumSlots(const Position& pos, bool left) {
  int n = 0;
  if (left) {
    // Slots while number - 2^i >= 1.
    while (pos.number > (uint64_t{1} << n)) ++n;
  } else {
    // Slots while number + 2^i <= 2^level.
    while (pos.number + (uint64_t{1} << n) <= pos.LevelWidth()) ++n;
  }
  return n;
}

void RoutingTable::Reset(const Position& pos, bool left) {
  entries_.assign(static_cast<size_t>(NumSlots(pos, left)), NodeRef{});
}

bool RoutingTable::IsFull() const {
  for (const NodeRef& e : entries_) {
    if (!e.valid()) return false;
  }
  return true;
}

Position RoutingTable::SlotPosition(const Position& pos, bool left, int i) {
  uint64_t d = uint64_t{1} << i;
  if (left) {
    BATON_CHECK_GT(pos.number, d);
    return Position{pos.level, pos.number - d};
  }
  BATON_CHECK_LE(pos.number + d, pos.LevelWidth());
  return Position{pos.level, pos.number + d};
}

int RoutingTable::SlotForDistance(uint64_t d) {
  if (d == 0 || (d & (d - 1)) != 0) return -1;
  int i = 0;
  while ((uint64_t{1} << i) != d) ++i;
  return i;
}

}  // namespace baton
