#include "baton/baton_network.h"

#include <algorithm>

#include "util/logging.h"

namespace baton {

BatonNetwork::BatonNetwork(const BatonConfig& config, net::Network* net,
                           uint64_t seed)
    : config_(config), net_(net), rng_(seed) {
  BATON_CHECK(net != nullptr);
  BATON_CHECK_LT(config.domain_lo, config.domain_hi);
  repl_ = std::make_unique<replication::ReplicationManager>(
      config.replication, net);
}

BatonNode* BatonNetwork::N(PeerId p) {
  BATON_CHECK_LT(p, nodes_.size());
  return nodes_[p].get();
}

const BatonNode* BatonNetwork::N(PeerId p) const {
  BATON_CHECK_LT(p, nodes_.size());
  return nodes_[p].get();
}

BatonNode* BatonNetwork::NodeOrNull(const NodeRef& ref) {
  if (!ref.valid()) return nullptr;
  return N(ref.peer);
}

const BatonNode& BatonNetwork::node(PeerId p) const { return *N(p); }

bool BatonNetwork::InOverlay(PeerId p) const {
  if (p >= nodes_.size()) return false;
  return nodes_[p]->in_overlay;
}

PeerId BatonNetwork::Bootstrap() {
  BATON_CHECK(!bootstrapped_) << "Bootstrap must be called exactly once";
  bootstrapped_ = true;
  auto node = std::make_unique<BatonNode>();
  node->id = net_->Register();
  node->SetPosition(Position::Root());
  node->range = Range{config_.domain_lo, config_.domain_hi};
  node->in_overlay = true;
  PeerId id = node->id;
  nodes_.push_back(std::move(node));
  IndexPosition(N(id));
  return id;
}

void BatonNetwork::IndexPosition(BatonNode* n) {
  bool inserted = pos_index_.Insert(n->pos.Packed(), n->id);
  BATON_CHECK(inserted) << "position " << n->pos << " already occupied by "
                        << OccupantOf(n->pos);
  size_t level = n->pos.level;
  if (level >= level_counts_.size()) level_counts_.resize(level + 1, 0);
  ++level_counts_[level];
  height_ = std::max(height_, static_cast<int>(level));
  if (config_.enable_recruit_directory) {
    recruit_dir_.Insert(n->pos.Packed(), n->id);
  }
}

void BatonNetwork::UnindexPosition(BatonNode* n) {
  const PeerId* occ = pos_index_.Find(n->pos.Packed());
  BATON_CHECK(occ != nullptr);
  BATON_CHECK_EQ(*occ, n->id);
  pos_index_.Erase(n->pos.Packed());
  size_t level = n->pos.level;
  BATON_CHECK_LT(level, level_counts_.size());
  BATON_CHECK_GT(level_counts_[level], 0u);
  --level_counts_[level];
  // The height can only shrink when the bottom level empties; walk up past
  // any (transiently) empty levels. Amortised O(1) over any op sequence.
  while (height_ >= 0 && level_counts_[static_cast<size_t>(height_)] == 0) {
    --height_;
  }
  if (config_.enable_recruit_directory) {
    recruit_dir_.Erase(n->pos.Packed());
  }
}

std::vector<PeerId> BatonNetwork::Members() const {
  // Iterative in-order walk over the directory (the ground truth the
  // invariant checker also validates adjacency against -- deriving the
  // member order from cached adjacent links would make that check
  // circular). Each node costs O(1) probes, so the walk is O(N) with no
  // sort. The size check at the end keeps orphaned subtrees (unreachable
  // from the root) as loud as the old full-directory scan made them.
  std::vector<PeerId> out;
  out.reserve(size());
  if (size() == 0) return out;
  std::vector<std::pair<Position, PeerId>> path;  // stack: depth <= height+1
  path.reserve(static_cast<size_t>(height_ + 2));
  Position cur = Position::Root();
  PeerId occ = OccupantOf(cur);
  while (occ != kNullPeer || !path.empty()) {
    while (occ != kNullPeer) {
      path.emplace_back(cur, occ);
      cur = cur.LeftChild();
      occ = OccupantOf(cur);
    }
    const auto& [pos, id] = path.back();
    out.push_back(id);
    cur = pos.RightChild();
    path.pop_back();
    occ = OccupantOf(cur);
  }
  BATON_CHECK_EQ(out.size(), size())
      << "directory holds entries unreachable from the root (orphan)";
  return out;
}

void BatonNetwork::ApplyRefUpdate(PeerId holder_id, RefKind kind, int slot,
                                  NodeRef payload) {
  if (holder_id >= nodes_.size()) return;
  BatonNode* holder = N(holder_id);
  if (!holder->in_overlay) return;  // the holder left before delivery
  auto set_or_clear = [&](NodeRef* ref, bool pos_must_match) {
    if (!payload.valid()) {
      // Clear only if the ref still points where the sender believed.
      if (ref->valid() && ref->pos == payload.pos) ref->Clear();
      return;
    }
    if (pos_must_match) *ref = payload;
  };
  switch (kind) {
    case RefKind::kParent:
      if (payload.valid() &&
          (holder->pos.IsRoot() || holder->pos.Parent() != payload.pos)) {
        return;  // holder moved; a fresher update will follow
      }
      set_or_clear(&holder->parent, true);
      return;
    case RefKind::kLeftChild:
      if (payload.valid() && holder->pos.LeftChild() != payload.pos) return;
      set_or_clear(&holder->left_child, true);
      return;
    case RefKind::kRightChild:
      if (payload.valid() && holder->pos.RightChild() != payload.pos) return;
      set_or_clear(&holder->right_child, true);
      return;
    case RefKind::kLeftAdj:
      // Adjacency is between nodes, not positions: apply as sent.
      if (!payload.valid()) {
        set_or_clear(&holder->left_adj, false);
      } else {
        holder->left_adj = payload;
      }
      return;
    case RefKind::kRightAdj:
      if (!payload.valid()) {
        set_or_clear(&holder->right_adj, false);
      } else {
        holder->right_adj = payload;
      }
      return;
    case RefKind::kLeftRt:
    case RefKind::kRightRt: {
      bool left = kind == RefKind::kLeftRt;
      RoutingTable& rt = left ? holder->left_rt : holder->right_rt;
      if (slot < 0 || slot >= rt.size()) return;  // holder moved levels
      if (RoutingTable::SlotPosition(holder->pos, left, slot) != payload.pos) {
        return;  // holder's number changed; entry no longer matches
      }
      if (!payload.valid()) {
        rt.entry(slot).Clear();
      } else {
        rt.entry(slot) = payload;
      }
      return;
    }
  }
}

void BatonNetwork::SendRefUpdate(PeerId holder, RefKind kind, int slot,
                                 NodeRef payload) {
  net_->Apply([this, holder, kind, slot, payload]() {
    ApplyRefUpdate(holder, kind, slot, payload);
  });
}

void BatonNetwork::RefreshInboundRefs(BatonNode* x, net::MsgType charge) {
  NodeRef self = x->SelfRef();
  PeerId xid = x->id;
  auto send = [&](PeerId holder, RefKind kind, int slot) {
    Count(xid, holder, charge);
    SendRefUpdate(holder, kind, slot, self);
  };
  if (x->parent.valid()) {
    send(x->parent.peer,
         x->pos.IsLeftChild() ? RefKind::kLeftChild : RefKind::kRightChild, 0);
  }
  if (x->left_child.valid()) send(x->left_child.peer, RefKind::kParent, 0);
  if (x->right_child.valid()) send(x->right_child.peer, RefKind::kParent, 0);
  // x is the right adjacent of its left adjacent, and vice versa.
  if (x->left_adj.valid()) send(x->left_adj.peer, RefKind::kRightAdj, 0);
  if (x->right_adj.valid()) send(x->right_adj.peer, RefKind::kLeftAdj, 0);
  for (int side = 0; side < 2; ++side) {
    bool left = side == 0;
    RoutingTable& rt = left ? x->left_rt : x->right_rt;
    for (int i = 0; i < rt.size(); ++i) {
      if (!rt.entry(i).valid()) continue;
      // A node to x's left holds x in its right table at the same slot.
      send(rt.entry(i).peer, left ? RefKind::kRightRt : RefKind::kLeftRt, i);
    }
  }
}

void BatonNetwork::RefreshInboundRefsUncharged(BatonNode* x) {
  NodeRef self = x->SelfRef();
  ForEachInboundRef(x, [&](BatonNode*, NodeRef* ref) { *ref = self; });
}

void BatonNetwork::RepairAllLinks() {
  BATON_CHECK(!net_->defer_updates()) << "flush before repairing";
  std::vector<PeerId> order = Members();
  for (size_t i = 0; i < order.size(); ++i) {
    BatonNode* n = N(order[i]);
    // Vertical links.
    if (n->pos.IsRoot()) {
      n->parent.Clear();
    } else {
      PeerId pp = OccupantOf(n->pos.Parent());
      BATON_CHECK_NE(pp, kNullPeer) << "orphan at " << n->pos;
      n->parent = N(pp)->SelfRef();
    }
    for (bool left : {true, false}) {
      NodeRef& ref = left ? n->left_child : n->right_child;
      PeerId occ =
          OccupantOf(left ? n->pos.LeftChild() : n->pos.RightChild());
      if (occ == kNullPeer) {
        ref.Clear();
      } else {
        ref = N(occ)->SelfRef();
      }
    }
    // Adjacency from the in-order member sequence.
    if (i == 0) {
      n->left_adj.Clear();
    } else {
      n->left_adj = N(order[i - 1])->SelfRef();
    }
    if (i + 1 == order.size()) {
      n->right_adj.Clear();
    } else {
      n->right_adj = N(order[i + 1])->SelfRef();
    }
    RebuildRoutingTables(n, /*charge=*/false);
  }
  // Second pass: cached metadata (child bits set above may have been copied
  // before the target's own links were repaired).
  for (PeerId id : order) {
    RefreshInboundRefsUncharged(N(id));
  }
}

void BatonNetwork::RebuildRoutingTables(BatonNode* x, bool charge) {
  for (int side = 0; side < 2; ++side) {
    bool left = side == 0;
    RoutingTable& rt = left ? x->left_rt : x->right_rt;
    rt.Reset(x->pos, left);
    for (int i = 0; i < rt.size(); ++i) {
      Position slot = RoutingTable::SlotPosition(x->pos, left, i);
      PeerId occ = OccupantOf(slot);
      if (occ == kNullPeer) continue;
      BatonNode* nb = N(occ);
      // One message informs nb of x's location and returns nb's metadata;
      // nb installs the reverse entry from the same exchange. (The directory
      // lookup stands in for the handover/probe that delivered nb's address;
      // Theorem 2 puts that information one already-charged hop away.)
      if (charge) Count(x->id, nb->id, net::MsgType::kTableUpdate);
      rt.entry(i) = nb->SelfRef();
      SendRefUpdate(occ, left ? RefKind::kRightRt : RefKind::kLeftRt, i,
                    x->SelfRef());
    }
  }
}

void BatonNetwork::ClearReverseEntriesAt(const Position& pos, PeerId notifier,
                                         bool charge) {
  NodeRef cleared;  // peer == kNullPeer: "clear if you still point at pos"
  cleared.pos = pos;
  for (int side = 0; side < 2; ++side) {
    bool left = side == 0;  // looking from `pos` toward its left/right peers
    int slots = RoutingTable::NumSlots(pos, left);
    for (int i = 0; i < slots; ++i) {
      Position nb_pos = RoutingTable::SlotPosition(pos, left, i);
      PeerId occ = OccupantOf(nb_pos);
      if (occ == kNullPeer) continue;
      // nb's entry pointing back at `pos` sits on its opposite side table.
      if (charge) Count(notifier, occ, net::MsgType::kTableUpdate);
      SendRefUpdate(occ, left ? RefKind::kRightRt : RefKind::kLeftRt, i,
                    cleared);
    }
  }
}

}  // namespace baton
