// Replication glue: feeds the overlay's link structure and per-node bags
// into the ReplicationManager (src/replication/). The manager owns the
// replica copies and charges the messages; this file decides *who* can hold
// a replica -- the peers a primary already has links to, so selecting and
// syncing holders never needs extra routing.
#include <algorithm>

#include "baton/baton_network.h"

namespace baton {

std::vector<PeerId> BatonNetwork::ReplicaCandidates(const BatonNode* x) const {
  const replication::ReplicationConfig& rc = config_.replication;
  std::vector<PeerId> out;
  auto add = [&](const NodeRef& ref) {
    if (!ref.valid() || ref.peer == x->id) return;
    if (!net_->IsAlive(ref.peer) || !InOverlay(ref.peer)) return;
    for (PeerId p : out) {
      if (p == ref.peer) return;
    }
    out.push_back(ref.peer);
  };
  if (rc.use_adjacents) {
    add(x->left_adj);
    add(x->right_adj);
  }
  if (rc.use_routing_neighbours) {
    add(x->parent);
    add(x->left_child);
    add(x->right_child);
    // Nearest sideways neighbours first: slot i links at distance 2^i.
    int slots = std::max(x->left_rt.size(), x->right_rt.size());
    for (int i = 0; i < slots; ++i) {
      if (i < x->left_rt.size()) add(x->left_rt.entry(i));
      if (i < x->right_rt.size()) add(x->right_rt.entry(i));
    }
  }
  return out;
}

void BatonNetwork::ReplicateFullSync(BatonNode* x, PeerId via) {
  if (!repl_->enabled()) return;
  if (!x->in_overlay) return;
  if (!net_->IsAlive(x->id)) {
    // x is a pending failure whose bag just changed (recovery handed it the
    // keys of a range it inherited). Only a relaying peer can bring x's
    // replicas up to date; without one they would silently diverge and a
    // later recovery of x would restore a copy missing those keys.
    if (via == kNullPeer) return;
    repl_->FullSync(x->id, x->data, ReplicaCandidates(x), via);
    return;
  }
  repl_->FullSync(x->id, x->data, ReplicaCandidates(x));
}

void BatonNetwork::ReplicateInsert(BatonNode* x, Key k) {
  if (!repl_->enabled()) return;
  repl_->PushInsert(x->id, k);
  // Opportunistic top-up: a node that joined a sparse neighbourhood -- or
  // whose holder just died -- may have fewer than r *live* replicas; its
  // next insert recruits from the links it currently has (anti-entropy
  // covers nodes that never see traffic). Gated on live holders: a dead
  // holder protects nothing, and waiting for its recovery would leave every
  // key inserted in the window unprotected.
  if (repl_->live_replica_count(x->id) <
      static_cast<size_t>(config_.replication.factor)) {
    repl_->TopUp(x->id, x->data, ReplicaCandidates(x));
  }
}

void BatonNetwork::ReplicateErase(BatonNode* x, Key k) {
  if (!repl_->enabled()) return;
  repl_->PushErase(x->id, k);
}

void BatonNetwork::ReplicaPeerGone(PeerId gone, bool graceful) {
  if (!repl_->enabled()) return;
  if (graceful) {
    // The departing holder hands replicas of dead pending failures to fresh
    // holders first -- once released below they would be gone for good.
    for (PeerId primary : repl_->HeldPrimaries(gone)) {
      if (InOverlay(primary) && !net_->IsAlive(primary)) {
        repl_->RelocateReplica(primary, gone, ReplicaCandidates(N(primary)));
      }
    }
  }
  for (PeerId primary : repl_->ReleaseHolder(gone)) {
    if (!InOverlay(primary) || !net_->IsAlive(primary)) continue;
    BatonNode* p = N(primary);
    repl_->TopUp(primary, p->data, ReplicaCandidates(p));
  }
}

void BatonNetwork::ReplicaDropPrimary(BatonNode* x) {
  if (!repl_->enabled()) return;
  repl_->DropPrimary(x->id, x->id, /*charge=*/net_->IsAlive(x->id));
}

replication::RepairStats BatonNetwork::RepairReplicas() {
  replication::RepairStats stats;
  if (!repl_->enabled()) return stats;
  for (PeerId id : Members()) {
    if (!net_->IsAlive(id)) continue;  // pending failure: recover first
    BatonNode* n = N(id);
    stats += repl_->Repair(id, n->data, ReplicaCandidates(n));
  }
  return stats;
}

}  // namespace baton
