// Umbrella header: the BATON library public API.
//
//   #include "baton/baton.h"
//
//   baton::net::Network net;
//   baton::BatonNetwork overlay(baton::BatonConfig{}, &net, /*seed=*/42);
//   auto root = overlay.Bootstrap();
//   auto peer = overlay.Join(root).value();
//   overlay.Insert(peer, 123456);
//   auto hit = overlay.ExactSearch(root, 123456).value();
//   auto range = overlay.RangeSearch(root, 100000, 200000).value();
#ifndef BATON_BATON_BATON_H_
#define BATON_BATON_BATON_H_

#include "baton/baton_network.h"
#include "baton/key_bag.h"
#include "baton/node.h"
#include "baton/position.h"
#include "baton/types.h"
#include "net/message.h"
#include "net/network.h"
#include "util/status.h"

#endif  // BATON_BATON_BATON_H_
