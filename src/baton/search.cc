// Index operations (section IV) and fault-tolerant routing (section III-D).
//
// Every hop decision uses only the local node's range and the ranges cached
// on its links, exactly as the paper's search_exact algorithm prescribes.
#include <algorithm>

#include "baton/baton_network.h"

namespace baton {

PeerId BatonNetwork::NextHop(const BatonNode* at, Key key) const {
  if (at->range.Contains(key)) return kNullPeer;
  if (key >= at->range.hi) {
    // Rightward: the farthest right-table node whose lower bound is <= key.
    for (int i = at->right_rt.size() - 1; i >= 0; --i) {
      const NodeRef& e = at->right_rt.entry(i);
      if (e.valid() && e.range.lo <= key) return e.peer;
    }
    if (at->right_child.valid()) return at->right_child.peer;
    if (at->right_adj.valid()) return at->right_adj.peer;
    return kNullPeer;  // rightmost node: key beyond the domain
  }
  // Leftward mirror: the farthest left-table node whose upper bound is > key.
  for (int i = at->left_rt.size() - 1; i >= 0; --i) {
    const NodeRef& e = at->left_rt.entry(i);
    if (e.valid() && e.range.hi > key) return e.peer;
  }
  if (at->left_child.valid()) return at->left_child.peer;
  if (at->left_adj.valid()) return at->left_adj.peer;
  return kNullPeer;  // leftmost node: key before the domain
}

std::vector<PeerId> BatonNetwork::AlternativeHops(const BatonNode* at,
                                                  Key key) const {
  // Candidates that still make monotone progress toward the key, best
  // (farthest jump) first. Next, same-level entries that fall short of the
  // key (nearest first): lateral moves around the dead region that approach
  // the target from the far side -- the sideways variant of III-D's
  // "neighbour of the parent" repair. The parent is last: it can bounce the
  // route back down, so it is only a final resort.
  std::vector<PeerId> out;
  if (key >= at->range.hi) {
    for (int i = at->right_rt.size() - 1; i >= 0; --i) {
      const NodeRef& e = at->right_rt.entry(i);
      if (e.valid() && e.range.lo <= key) out.push_back(e.peer);
    }
    if (at->right_child.valid()) out.push_back(at->right_child.peer);
    if (at->right_adj.valid()) out.push_back(at->right_adj.peer);
    for (int i = 0; i < at->right_rt.size(); ++i) {
      const NodeRef& e = at->right_rt.entry(i);
      if (e.valid() && e.range.lo > key) out.push_back(e.peer);
    }
  } else {
    for (int i = at->left_rt.size() - 1; i >= 0; --i) {
      const NodeRef& e = at->left_rt.entry(i);
      if (e.valid() && e.range.hi > key) out.push_back(e.peer);
    }
    if (at->left_child.valid()) out.push_back(at->left_child.peer);
    if (at->left_adj.valid()) out.push_back(at->left_adj.peer);
    for (int i = 0; i < at->left_rt.size(); ++i) {
      const NodeRef& e = at->left_rt.entry(i);
      if (e.valid() && e.range.hi <= key) out.push_back(e.peer);
    }
  }
  if (at->parent.valid()) out.push_back(at->parent.peer);
  return out;
}

Result<BatonNetwork::RouteOutcome> BatonNetwork::RouteToKey(
    PeerId from, Key key, net::MsgType hop_type) {
  if (!InOverlay(from)) {
    return Status::InvalidArgument("query origin is not an overlay member");
  }
  const BatonNode* cur = N(from);
  RouteOutcome out;
  int guard = config_.max_hops_factor * (Height() + 2) + 8;
  while (true) {
    if (--guard < 0) {
      return Status::Exhausted("hop budget exceeded routing to key " +
                               std::to_string(key));
    }
    PeerId next = NextHop(cur, key);
    if (next == kNullPeer) {
      out.node = cur->id;
      return out;
    }
    if (!net_->IsAlive(next)) {
      // Timeout on the preferred hop; detour via an alternative (III-D).
      Count(cur->id, next, net::MsgType::kDeadProbe);
      PeerId alt = kNullPeer;
      for (PeerId cand : AlternativeHops(cur, key)) {
        if (cand == next) continue;
        if (net_->IsAlive(cand)) {
          alt = cand;
          break;
        }
        Count(cur->id, cand, net::MsgType::kDeadProbe);
      }
      if (alt == kNullPeer) {
        return Status::Unavailable("no live route toward key " +
                                   std::to_string(key));
      }
      next = alt;
    }
    Count(cur->id, next, hop_type);
    ++out.hops;
    cur = N(next);
  }
}

Result<BatonNetwork::SearchResult> BatonNetwork::ExactSearch(PeerId from,
                                                             Key key) {
  auto routed = RouteToKey(from, key, net::MsgType::kExactQuery);
  if (!routed.ok()) return routed.status();
  SearchResult res;
  res.node = routed.value().node;
  res.hops = routed.value().hops;
  const BatonNode* owner = N(res.node);
  res.found = owner->range.Contains(key) && owner->data.Contains(key);
  return res;
}

Result<BatonNetwork::RangeResult> BatonNetwork::RangeSearch(PeerId from,
                                                            Key lo, Key hi) {
  if (lo >= hi) return Status::InvalidArgument("empty range");
  // Route to the first node intersecting [lo, hi) -- same as routing to lo
  // (clamped into the domain so boundary queries land on the edge node).
  Key target = std::max(lo, config_.domain_lo);
  auto routed = RouteToKey(from, target, net::MsgType::kRangeQuery);
  if (!routed.ok()) return routed.status();

  RangeResult res;
  res.hops = routed.value().hops;
  const BatonNode* cur = N(routed.value().node);
  // "We then proceed ... right to cover the remainder of the searched
  // range": one scan message per additional intersecting node. The scan is
  // disseminated as a delegation tree rather than a pure adjacent-link
  // relay: a node responsible for covering [its range, `bound`) that holds
  // a fresh, live right-routing-table entry e splitting that interval
  // forwards the scan to BOTH e (which then covers [e.lo, bound)) and its
  // right adjacent (now bounded by e.lo). On a live, converged network
  // every intersecting node receives exactly one scan message -- message
  // counts, hop counts and the left-to-right visit order (delegations are
  // processed depth-first, near branch first) are identical to the
  // sequential relay -- but the chain of X nodes is contacted in O(log X)
  // parallel rounds, which is what the sim/ critical-path clock measures.
  // Around failed neighbours the scan falls back to the III-D repair path
  // below, which is best-effort: with delegations outstanding, its cost can
  // differ from the purely sequential scan's repair.
  std::vector<std::pair<const BatonNode*, Key>> pending;
  Key bound = hi;
  int guard = 2 * static_cast<int>(size()) + 16;
  while (true) {
    BATON_CHECK_GE(--guard, 0);
    if (cur->range.Intersects(lo, hi)) {
      res.nodes.push_back(cur->id);
      res.matches += cur->data.CountInRange(lo, hi);
    }
    if (cur->range.hi >= bound || !cur->right_adj.valid()) {
      if (pending.empty()) break;
      cur = pending.back().first;
      bound = pending.back().second;
      pending.pop_back();
      continue;
    }
    PeerId next = cur->right_adj.peer;
    if (!net_->IsAlive(next)) {
      // Skip over the failed neighbour: its keys are unavailable, but the
      // scan can resume at the next live range (repair path of III-D).
      Count(cur->id, next, net::MsgType::kDeadProbe);
      Key resume = cur->right_adj.range.hi;
      if (resume >= bound) {
        if (pending.empty()) break;
        cur = pending.back().first;
        bound = pending.back().second;
        pending.pop_back();
        continue;
      }
      auto rerouted = RouteToKey(cur->id, resume, net::MsgType::kRangeScan);
      if (!rerouted.ok()) break;
      res.hops += rerouted.value().hops;
      cur = N(rerouted.value().node);
      continue;
    }
    // Fan-out: delegate the far part of [cur.range.hi, bound) to the
    // farthest routing-table entry strictly inside it. Only entries whose
    // cached range start matches the target's current range are used -- a
    // stale split point would make the delegated intervals overlap or leave
    // a gap (routing entries are actively refreshed, so staleness is
    // transient and the scan merely falls back to the adjacent relay).
    const NodeRef* jump = nullptr;
    for (int i = cur->right_rt.size() - 1; i >= 0; --i) {
      const NodeRef& e = cur->right_rt.entry(i);
      if (!e.valid() || e.peer == next) continue;
      if (e.range.lo <= cur->range.hi || e.range.lo >= bound) continue;
      if (!InOverlay(e.peer) || !net_->IsAlive(e.peer)) continue;
      if (N(e.peer)->range.lo != e.range.lo) continue;
      jump = &e;
      break;
    }
    if (jump != nullptr) {
      Count(cur->id, jump->peer, net::MsgType::kRangeScan);
      ++res.hops;
      pending.emplace_back(N(jump->peer), bound);
      bound = jump->range.lo;
    }
    Count(cur->id, next, net::MsgType::kRangeScan);
    ++res.hops;
    cur = N(next);
  }
  return res;
}

Status BatonNetwork::Insert(PeerId from, Key key) {
  auto routed = RouteToKey(from, key, net::MsgType::kInsert);
  if (!routed.ok()) return routed.status();
  BatonNode* owner = N(routed.value().node);
  if (!owner->range.Contains(key)) {
    // Domain expansion at the edge nodes (section IV-C): the leftmost or
    // rightmost node widens its range and must refresh the links caching it,
    // "an additional log N step for updating its routing tables".
    if (key < owner->range.lo && !owner->left_adj.valid()) {
      owner->range.lo = key;
    } else if (key >= owner->range.hi && !owner->right_adj.valid()) {
      owner->range.hi = key + 1;
    } else {
      return Status::Internal("routing terminated off-range at node " +
                              owner->pos.ToString());
    }
    RefreshInboundRefs(owner, net::MsgType::kRangeUpdate);
  }
  owner->data.Insert(key);
  ++total_keys_;
  ReplicateInsert(owner, key);
  MaybeLoadBalance(owner);
  return Status::OK();
}

Status BatonNetwork::Delete(PeerId from, Key key) {
  auto routed = RouteToKey(from, key, net::MsgType::kDelete);
  if (!routed.ok()) return routed.status();
  BatonNode* owner = N(routed.value().node);
  if (!owner->data.Erase(key)) {
    return Status::NotFound("key " + std::to_string(key));
  }
  --total_keys_;
  ReplicateErase(owner, key);
  return Status::OK();
}

}  // namespace baton
