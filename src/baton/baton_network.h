// BatonNetwork: the BATON overlay (VLDB 2005) over a simulated physical
// network.
//
// The class owns every peer's state and executes the paper's protocols
// (join, leave, failure recovery, restructuring, exact/range search,
// insert/delete, load balancing) while routing every inter-peer interaction
// through net::Network::Count so benches can reproduce the paper's
// message-count figures.
//
// Protocol code only consults a peer's local state and the metadata cached on
// its links. The position directory (position -> peer) is simulator state:
// protocols use it solely where the paper's protocol would obtain the same
// information through an already-counted message exchange (these sites are
// commented), and the invariant checker uses it freely (it models the
// experimenter, not a peer).
#ifndef BATON_BATON_BATON_NETWORK_H_
#define BATON_BATON_BATON_NETWORK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baton/node.h"
#include "baton/position.h"
#include "baton/types.h"
#include "net/message.h"
#include "net/network.h"
#include "replication/replication.h"
#include "util/flat_map.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/status.h"

namespace baton {

/// Tunables. Defaults reproduce the paper's setup; load balancing is off
/// until a threshold is configured (section IV-D).
struct BatonConfig {
  /// Key domain [domain_lo, domain_hi); the paper uses [1, 10^9).
  Key domain_lo = 1;
  Key domain_hi = 1000000000;

  /// Load balancing (section IV-D). A node is overloaded when it stores more
  /// than the effective threshold; a recruit candidate is "lightly loaded"
  /// when it stores fewer than threshold * underload_fraction keys.
  ///
  /// The threshold is either absolute (overload_threshold) or, when
  /// overload_factor > 0, adaptive: factor x the current network-average
  /// load (a peer would track this with a gossiped estimate; the simulator
  /// reads it directly). Adaptive is what keeps loads tight while the data
  /// volume grows.
  bool enable_load_balance = false;
  size_t overload_threshold = SIZE_MAX;
  double overload_factor = 0.0;
  double underload_fraction = 0.25;
  /// Ablation switch: with remote recruiting off, overloaded leaves fall
  /// back to adjacent-node balancing only ("data migration may ripple
  /// through the network ... and incur high total overhead").
  bool enable_remote_recruit = true;
  /// Extension (paper footnote 2 / reference [4]): when the neighbour tables
  /// hold no lightly loaded leaf -- deep hot-region nodes have no same-level
  /// neighbours in shallow cold regions -- consult a skip-list load
  /// directory to find one globally, at O(log N) extra messages per lookup.
  bool enable_recruit_directory = false;

  /// Safety net: routing aborts (Status::Exhausted) after
  /// max_hops_factor * (tree height + 1) hops. Generous because routing under
  /// churn (Fig 8(i)) may detour around stale links.
  int max_hops_factor = 16;

  /// Replication policy (extension beyond the paper). factor == 0 (default)
  /// keeps the overlay replica-free and reproduces the paper's message counts
  /// exactly; factor == r mirrors every node's keys on r holders so failure
  /// recovery restores them instead of dropping them.
  replication::ReplicationConfig replication;
};

class BatonNetwork {
 public:
  BatonNetwork(const BatonConfig& config, net::Network* net, uint64_t seed);
  BatonNetwork(const BatonNetwork&) = delete;
  BatonNetwork& operator=(const BatonNetwork&) = delete;

  // ------------------------------------------------------------------
  // Membership (section III).
  // ------------------------------------------------------------------

  /// Creates the first node, managing the whole key domain. Must be called
  /// exactly once, before any Join.
  PeerId Bootstrap();

  /// A new peer joins via any existing node (section III-A): locating the
  /// accepting node costs kJoinForward messages; splitting content, fixing
  /// adjacent links and building the new routing tables costs the
  /// maintenance messages the paper bounds by 6 log N.
  Result<PeerId> Join(PeerId contact);

  /// Graceful departure (section III-B): leaves directly when safe, else
  /// finds a replacement leaf (Algorithm 2) which takes over this position.
  Status Leave(PeerId leaver);

  /// Abrupt failure (section III-C): the peer simply stops responding. Its
  /// keys are lost (the paper's index does not replicate data); its range is
  /// recovered by RecoverFailure. Until then routing must detour (III-D).
  void Fail(PeerId victim);

  /// Parent-driven repair of one failed node: regenerates the failed node's
  /// routing state from the parent's own tables and runs a graceful
  /// departure on its behalf.
  Status RecoverFailure(PeerId failed);

  /// Recovers every pending failure (retrying blocked ones until done).
  Status RecoverAllFailures();

  /// Failed-but-not-yet-recovered peers.
  const std::vector<PeerId>& pending_failures() const { return failed_; }

  // ------------------------------------------------------------------
  // Index operations (section IV).
  // ------------------------------------------------------------------

  struct SearchResult {
    PeerId node = kNullPeer;  // node whose range contains the key
    bool found = false;       // true if the key is stored there
    int hops = 0;
  };
  struct RangeResult {
    std::vector<PeerId> nodes;  // nodes intersecting the range, left to right
    uint64_t matches = 0;       // stored keys in [lo, hi)
    int hops = 0;
  };

  /// Exact-match query issued at `from` (section IV-A).
  Result<SearchResult> ExactSearch(PeerId from, Key key);

  /// Range query [lo, hi) issued at `from` (section IV-B): routes to the
  /// first intersecting node, then follows adjacent links.
  Result<RangeResult> RangeSearch(PeerId from, Key lo, Key hi);

  /// Insert/delete (section IV-C). Insert may trigger load balancing when
  /// enabled (section IV-D).
  Status Insert(PeerId from, Key key);
  Status Delete(PeerId from, Key key);

  // ------------------------------------------------------------------
  // Introspection (simulator-side; used by tests, benches, examples).
  // ------------------------------------------------------------------

  /// Number of nodes currently in the overlay.
  size_t size() const { return pos_index_.size(); }
  PeerId root() const { return OccupantOf(Position::Root()); }
  const BatonNode& node(PeerId p) const;
  bool InOverlay(PeerId p) const;
  /// All overlay members in in-order (key-space) order: an O(N) in-order
  /// walk of the position directory (no sort), so it stays correct even
  /// when cached adjacency links are stale under churn.
  std::vector<PeerId> Members() const;
  /// Occupant of a tree position, or kNullPeer.
  PeerId OccupantOf(const Position& pos) const {
    const PeerId* p = pos_index_.Find(pos.Packed());
    return p == nullptr ? kNullPeer : *p;
  }
  /// Height of the tree (root = level 0); -1 when empty. O(1): maintained
  /// incrementally from the per-level occupancy counts (it sits inside the
  /// routing hop budget, so it runs on every search).
  int Height() const { return height_; }
  uint64_t total_keys() const { return total_keys_; }

  /// Validates every structural invariant (balance, Theorem 1/2, adjacency,
  /// range partitioning, link caches); CHECK-fails on violation. O(N log N).
  void CheckInvariants() const;

  /// Anti-entropy pass: every member re-derives its links (parent, children,
  /// adjacents, routing tables) from ground truth. Stands in for the
  /// periodic stabilisation a deployment runs to converge after heavy churn;
  /// uncharged (it models background repair, not a counted operation).
  /// No-op on a consistent overlay.
  void RepairAllLinks();

  /// Distribution of restructuring chain lengths (#nodes that changed
  /// position), one sample per restructure (Fig 8(h)).
  const Histogram& shift_sizes() const { return shift_sizes_; }
  /// Number of completed load-balancing operations.
  uint64_t load_balance_ops() const { return lb_ops_; }

  // ------------------------------------------------------------------
  // Durability (replication subsystem; see src/replication/).
  // ------------------------------------------------------------------

  /// Keys irrecoverably dropped from the index: a failed node's keys that no
  /// live replica could restore (always the full bag when replication is
  /// off), plus the final node's keys when the overlay shuts down.
  uint64_t lost_keys() const { return lost_keys_; }
  /// Keys restored from replicas during failure recovery.
  uint64_t recovered_keys() const { return recovered_keys_; }

  /// Anti-entropy pass: every live member probes its replica holders,
  /// re-syncs stale copies and recreates replicas lost to departed holders
  /// (charged: kReplicaProbe/kReplicaSync per repair). Run it after heavy
  /// churn or restructuring, like RepairAllLinks for data. No-op when
  /// replication is off.
  replication::RepairStats RepairReplicas();

  replication::ReplicationManager& replication_manager() { return *repl_; }
  const replication::ReplicationManager& replication_manager() const {
    return *repl_;
  }

  net::Network* network() { return net_; }
  Rng* rng() { return &rng_; }
  const BatonConfig& config() const { return config_; }

 private:
  friend class InvariantChecker;

  BatonNode* N(PeerId p);
  const BatonNode* N(PeerId p) const;
  BatonNode* NodeOrNull(const NodeRef& ref);

  void Count(PeerId from, PeerId to, net::MsgType type) {
    net_->Count(from, to, type);
  }

  // ---- directory maintenance (simulator state) ----
  void IndexPosition(BatonNode* n);
  void UnindexPosition(BatonNode* n);

  // ---- link bookkeeping ----
  /// Kinds of cached refs a peer holds; identifies the slot a remote update
  /// targets so updates can be applied (or deferred and applied later)
  /// defensively.
  enum class RefKind : uint8_t {
    kParent,
    kLeftChild,
    kRightChild,
    kLeftAdj,
    kRightAdj,
    kLeftRt,   // entry in holder's left routing table
    kRightRt,  // entry in holder's right routing table
  };

  /// Applies one remote cache update at `holder`, dropping it if the
  /// holder's state no longer matches (it moved, left, or the slot is gone).
  /// payload.peer == kNullPeer means "clear the ref if it still points at
  /// payload.pos".
  void ApplyRefUpdate(PeerId holder, RefKind kind, int slot, NodeRef payload);
  /// Runs ApplyRefUpdate now, or queues it while the network defers updates
  /// (propagation delay, Fig 8(i)). The payload is captured by value: it is
  /// the message content at send time.
  void SendRefUpdate(PeerId holder, RefKind kind, int slot, NodeRef payload);

  /// Calls fn(holder, ref) for every link in the overlay pointing at x
  /// (parent's child ref, children's parent refs, adjacents' refs, reverse
  /// routing-table entries), discovered through x's own links. Immediate
  /// mode only (holds raw pointers). Static visitor: runs on every
  /// join/leave/relocation, so the callback must not cost an allocation.
  template <typename Fn>
  void ForEachInboundRef(BatonNode* x, Fn&& fn) {
    // The holders of links to x are exactly the targets of x's own symmetric
    // links: its parent, children, two adjacent nodes, and the same-level
    // nodes in its routing tables (whose opposite-side entry at the same
    // slot points back at x, by construction).
    if (BatonNode* p = NodeOrNull(x->parent)) {
      NodeRef* ref = x->pos.IsLeftChild() ? &p->left_child : &p->right_child;
      fn(p, ref);
    }
    if (BatonNode* c = NodeOrNull(x->left_child)) fn(c, &c->parent);
    if (BatonNode* c = NodeOrNull(x->right_child)) fn(c, &c->parent);
    if (BatonNode* a = NodeOrNull(x->left_adj)) fn(a, &a->right_adj);
    if (BatonNode* a = NodeOrNull(x->right_adj)) fn(a, &a->left_adj);
    for (int side = 0; side < 2; ++side) {
      RoutingTable& rt = side == 0 ? x->left_rt : x->right_rt;
      for (int i = 0; i < rt.size(); ++i) {
        if (!rt.entry(i).valid()) continue;
        BatonNode* nb = N(rt.entry(i).peer);
        RoutingTable& back = side == 0 ? nb->right_rt : nb->left_rt;
        if (i < back.size() && back.entry(i).peer == x->id) {
          fn(nb, &back.entry(i));
        }
      }
    }
  }
  /// Refreshes cached metadata (pos/range/child bits) about x at every
  /// holder, charging one `charge` message per holder.
  void RefreshInboundRefs(BatonNode* x, net::MsgType charge);
  void RefreshInboundRefsUncharged(BatonNode* x);

  /// Re-derives both routing tables of x from the directory, charging one
  /// kTableUpdate per populated entry and installing the reverse entries.
  /// Protocol-equivalent: a relocated/recovering node learns each entry via
  /// the handover/probe message charged here (Theorem 2 guarantees the
  /// information is one hop away).
  void RebuildRoutingTables(BatonNode* x, bool charge);

  /// Null out entries pointing at vacated position `pos` in the tables of its
  /// same-level power-of-two neighbours; one kTableUpdate each, sent by
  /// `notifier` (the departing node or the peer handling its departure).
  void ClearReverseEntriesAt(const Position& pos, PeerId notifier,
                             bool charge);

  // ---- join (join.cc) ----
  PeerId FindJoinNode(PeerId contact, int* hops);
  void AcceptChild(BatonNode* x, BatonNode* y, bool as_left);
  void BuildChildTables(BatonNode* x, BatonNode* y);
  void SpliceIntoAdjacency(BatonNode* y, BatonNode* x, bool before);
  void UnspliceFromAdjacency(BatonNode* x);
  void SplitContent(BatonNode* x, BatonNode* y, bool as_left);

  // ---- leave (leave.cc) ----
  bool SafeToRemove(const BatonNode* x) const;
  /// The departure protocol opens with a parent handshake; under churn the
  /// cached parent link can be stale (the position changed hands), in which
  /// case the attempt aborts (Status::Unavailable) instead of corrupting the
  /// range partition. `exempt_dead` names a peer allowed to be dead (the
  /// node whose failure is being recovered: its state is regenerated at the
  /// initiator, so the handshake succeeds through it). Always true on a
  /// quiescent overlay.
  bool LeaveHandshakeOk(const BatonNode* x,
                        PeerId exempt_dead = kNullPeer) const;
  /// `peer_stays_up` marks a transient departure (the replacement protocol:
  /// the peer re-appears at another position immediately), in which case the
  /// replicas x holds for other primaries remain valid and are kept.
  void SafeLeaveAsLeaf(BatonNode* x, bool transfer_content,
                       bool peer_stays_up = false);
  /// Detaches leaf x whose content was already handed off elsewhere (load
  /// balancing): clears links, notifies neighbours, unindexes.
  void DetachLeaf(BatonNode* x);
  PeerId RunFindReplacement(BatonNode* start, int* hops);
  PeerId FindReplacementStart(BatonNode* x, int* hops);
  void ReplaceNode(BatonNode* x, BatonNode* z, bool content_lost);
  void RemoveLastNode(BatonNode* x);

  // ---- restructuring (restructure.cc) ----
  struct Move {
    BatonNode* node;
    Position to;
  };
  /// Forced join for load balancing: y becomes x's in-order neighbour taking
  /// half of x's content even if x cannot legally accept a child; the
  /// occupants shift along adjacent links until a legal slot absorbs the
  /// chain (section III-E / Fig 4, 7). Returns #nodes that changed position.
  int ForcedJoin(BatonNode* x, BatonNode* y, bool splice_before,
                 bool prefer_right);
  /// Fills the vacancy left by removing leaf position `vacated` by shifting
  /// occupants toward it until a safely removable leaf vacates instead
  /// (section III-E / Fig 5). Returns #nodes that changed position.
  int FillVacancy(const Position& vacated, BatonNode* pred_hint,
                  BatonNode* succ_hint, bool prefer_left);
  /// Applies a chain of relocations and repairs all affected links/tables,
  /// charging O(log N) messages per mover.
  void RelocateNodes(const std::vector<Move>& moves);

  bool TryBuildJoinChain(BatonNode* first_displaced, bool rightward,
                         std::vector<Move>* moves);
  bool TryBuildVacancyChain(const Position& vacated, BatonNode* start,
                            bool leftward, std::vector<Move>* moves);

  // ---- failure (failure.cc) ----
  void RegenerateFailedState(BatonNode* x, BatonNode* initiator);
  /// Replaces x's (dead) bag with the freshest live replica, accounting lost
  /// vs recovered keys. Returns true when a replica was restored; false means
  /// the keys are gone and the caller proceeds with the paper's lossy path.
  bool TryRestoreContent(BatonNode* x, BatonNode* initiator);

  // ---- replication glue (replicate.cc) ----
  /// Holder candidates for x's replicas, in preference order (adjacents,
  /// then parent/children, then routing-table neighbours, per config).
  std::vector<PeerId> ReplicaCandidates(const BatonNode* x) const;
  /// Bulk (re)sync after x's bag changed wholesale; also tops up holders.
  /// `via` names the peer relaying on x's behalf when x itself is a dead
  /// pending failure whose bag recovery just changed (a dead primary cannot
  /// send, but its replicas must not be left diverging from its bag).
  void ReplicateFullSync(BatonNode* x, PeerId via = kNullPeer);
  void ReplicateInsert(BatonNode* x, Key k);
  void ReplicateErase(BatonNode* x, Key k);
  /// Peer `gone` no longer holds replicas (left or died): re-sync every
  /// live primary it held onto fresh holders. `graceful` marks a voluntary
  /// departure, in which case replicas of dead (unrecovered) primaries are
  /// handed off to fresh holders instead of discarded -- the departing peer
  /// may carry the only surviving copy, and the primary cannot re-sync a
  /// replacement itself.
  void ReplicaPeerGone(PeerId gone, bool graceful);
  /// Discards x's replica set; charged (kReplicaDrop per holder) only when x
  /// is still alive to announce its own departure.
  void ReplicaDropPrimary(BatonNode* x);

  // ---- routing (search.cc) ----
  struct RouteOutcome {
    PeerId node = kNullPeer;
    int hops = 0;
  };
  /// Routes from `from` to the node whose range contains `key`, counting one
  /// `hop_type` message per hop; detours around dead peers (III-D), charging
  /// kDeadProbe for each timed-out attempt.
  Result<RouteOutcome> RouteToKey(PeerId from, Key key, net::MsgType hop_type);
  /// Next hop decision of the search_exact algorithm, using only local state.
  /// Returns kNullPeer when `at` already owns the key.
  PeerId NextHop(const BatonNode* at, Key key) const;
  /// Fault-tolerant alternative hops, best first, excluding dead `avoid`.
  std::vector<PeerId> AlternativeHops(const BatonNode* at, Key key) const;

  // ---- load balancing (load_balance.cc) ----
  size_t EffectiveOverloadThreshold() const;
  void MaybeLoadBalance(BatonNode* overloaded);
  bool TryAdjacentBalance(BatonNode* overloaded);
  bool TryRemoteRecruit(BatonNode* overloaded);
  /// Finds the lightest leaf through the simulated load directory (footnote
  /// 2 / [4]) and charges the O(log N) skip-list traversal.
  BatonNode* DirectoryFindLightLeaf(BatonNode* asker, size_t light_cap);
  /// Moves recruit f next to the overloaded node v (steps 2-4 of IV-D).
  bool ExecuteRecruit(BatonNode* v, BatonNode* f);

  // ---- members ----
  BatonConfig config_;
  net::Network* net_;
  Rng rng_;

  std::vector<std::unique_ptr<BatonNode>> nodes_;
  /// Position::Packed -> id. Open-addressing flat map: probed on every
  /// routing hop and restructure step, so it must not chase node pointers.
  util::FlatMap64<PeerId> pos_index_;
  /// Occupied positions per level; level_counts_[l] drives the O(1)
  /// height_ maintenance in IndexPosition/UnindexPosition.
  std::vector<uint32_t> level_counts_;
  int height_ = -1;
  /// Maintained only under config_.enable_recruit_directory (the skip-list
  /// load-directory extension, off by default), keyed by Position::Packed().
  /// The lightest-leaf search breaks ties on the packed position itself, so
  /// its result is independent of this container's enumeration order.
  util::FlatMap64<PeerId> recruit_dir_;
  std::vector<PeerId> failed_;

  uint64_t total_keys_ = 0;
  Histogram shift_sizes_;
  uint64_t lb_ops_ = 0;
  bool bootstrapped_ = false;

  std::unique_ptr<replication::ReplicationManager> repl_;
  uint64_t lost_keys_ = 0;
  uint64_t recovered_keys_ = 0;
};

}  // namespace baton

#endif  // BATON_BATON_BATON_NETWORK_H_
