// Per-node key storage: a sorted vector with a small unsorted insert buffer
// (merged lazily). Nodes hold O(total/N) keys, so O(n) merges are cheap while
// giving the order statistics load balancing needs (medians, range counts,
// prefix extraction) without per-key allocation.
#ifndef BATON_BATON_KEY_BAG_H_
#define BATON_BATON_KEY_BAG_H_

#include <cstddef>
#include <vector>

#include "baton/types.h"

namespace baton {

class KeyBag {
 public:
  void Insert(Key k);
  /// Removes one occurrence; returns false if absent.
  bool Erase(Key k);
  bool Contains(Key k) const;
  size_t size() const { return sorted_.size() + pending_.size(); }
  bool empty() const { return size() == 0; }

  Key Min() const;
  Key Max() const;
  /// Median key (upper median); requires non-empty.
  Key Median() const;
  /// i-th smallest key, 0-based; requires i < size().
  Key Kth(size_t i) const;
  /// Number of keys in [lo, hi).
  size_t CountInRange(Key lo, Key hi) const;

  /// Removes and returns all keys < pivot.
  KeyBag ExtractBelow(Key pivot);
  /// Removes and returns all keys >= pivot.
  KeyBag ExtractAtLeast(Key pivot);
  /// Removes and returns the `count` smallest keys.
  KeyBag ExtractLowest(size_t count);
  /// Removes and returns the `count` largest keys.
  KeyBag ExtractHighest(size_t count);

  /// Moves all keys from `other` into this bag (other becomes empty).
  void Absorb(KeyBag* other);

  /// All keys in sorted order (forces a merge); for tests and scans.
  const std::vector<Key>& SortedKeys() const;

 private:
  void Flush() const;  // merges pending_ into sorted_
  /// Splits a flushed bag at index `count`/`from`; the side that stays is
  /// the only one copied (see key_bag.cc for the asymmetry).
  KeyBag ExtractPrefix(size_t count);
  KeyBag ExtractSuffix(size_t from);

  // Lazily merged; mutable so const readers can flush.
  mutable std::vector<Key> sorted_;
  mutable std::vector<Key> pending_;

  static constexpr size_t kFlushThreshold = 64;
};

}  // namespace baton

#endif  // BATON_BATON_KEY_BAG_H_
