// Core value types for the BATON index: keys and half-open key ranges.
#ifndef BATON_BATON_TYPES_H_
#define BATON_BATON_TYPES_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "util/check.h"

namespace baton {

/// Index keys. The paper's experiments use values in [1, 10^9).
using Key = int64_t;

/// Half-open range [lo, hi) of index values managed by one node.
struct Range {
  Key lo = 0;
  Key hi = 0;

  bool Contains(Key k) const { return lo <= k && k < hi; }
  bool Intersects(Key qlo, Key qhi) const { return lo < qhi && qlo < hi; }
  Key Width() const { return hi - lo; }
  bool Empty() const { return hi <= lo; }
  /// Value-space midpoint (used when a node has too little data to split by
  /// content median).
  Key Mid() const { return lo + (hi - lo) / 2; }

  bool operator==(const Range& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const Range& o) const { return !(*this == o); }

  std::string ToString() const {
    return "[" + std::to_string(lo) + "," + std::to_string(hi) + ")";
  }
};

inline std::ostream& operator<<(std::ostream& os, const Range& r) {
  return os << r.ToString();
}

}  // namespace baton

#endif  // BATON_BATON_TYPES_H_
