// Load balancing (section IV-D).
//
// A non-leaf node balances only with its adjacent nodes (shifting the range
// boundary). An overloaded leaf first tries its adjacents; if they are also
// loaded it recruits a lightly loaded leaf found through its routing tables
// ("our practical experience suggests that the neighbor tables suffice"),
// which hands its content to its own adjacent node, leaves its position, and
// rejoins as the overloaded node's in-order neighbour taking half its
// content -- with forced restructuring when the tree would lose balance.
#include <algorithm>
#include <cmath>

#include "baton/baton_network.h"

namespace baton {

size_t BatonNetwork::EffectiveOverloadThreshold() const {
  if (config_.overload_factor > 0.0) {
    double avg = size() == 0 ? 0.0
                             : static_cast<double>(total_keys_) /
                                   static_cast<double>(size());
    auto adaptive = static_cast<size_t>(config_.overload_factor * avg);
    return std::max<size_t>(16, adaptive);
  }
  return config_.overload_threshold;
}

void BatonNetwork::MaybeLoadBalance(BatonNode* v) {
  if (!config_.enable_load_balance) return;
  if (v->data.size() <= EffectiveOverloadThreshold()) return;
  if (v->data.size() < v->lb_retry_at) return;  // backing off

  if (TryAdjacentBalance(v)) {
    ++lb_ops_;
    v->lb_retry_at = 0;
    return;
  }
  if (config_.enable_remote_recruit && v->IsLeaf() && TryRemoteRecruit(v)) {
    ++lb_ops_;
    v->lb_retry_at = 0;
    return;
  }
  // Nothing helped: back off until the load grows another ~10%.
  v->lb_retry_at = v->data.size() + v->data.size() / 10 + 1;
}

bool BatonNetwork::TryAdjacentBalance(BatonNode* v) {
  // Probe both adjacents for their current load.
  BatonNode* best = nullptr;
  for (const NodeRef* adj : {&v->left_adj, &v->right_adj}) {
    if (!adj->valid() || !net_->IsAlive(adj->peer)) continue;
    Count(v->id, adj->peer, net::MsgType::kLoadProbe);
    Count(adj->peer, v->id, net::MsgType::kLoadProbeReply);
    BatonNode* a = N(adj->peer);
    if (best == nullptr || a->data.size() < best->data.size()) best = a;
  }
  if (best == nullptr) return false;

  // Even out the two loads when the neighbour is meaningfully lighter (at
  // most half this node's load). Even if both sides stay warm, the shed load
  // reaches leaves whose remote recruiting (below) carries it out of the hot
  // region -- that, not pure migration, is what stops the "ripple through
  // the network" the paper warns about.
  size_t total = v->data.size() + best->data.size();
  if (best->data.size() * 2 > v->data.size()) return false;
  size_t give = v->data.size() - total / 2;
  if (give == 0) return false;

  bool to_left = best->id == v->left_adj.peer;
  // The new boundary must be a key value so duplicates never straddle it:
  // pick the first kept key and move everything strictly below (mirrored on
  // the right).
  if (to_left) {
    Key boundary = v->data.Kth(give);
    KeyBag moved = v->data.ExtractBelow(boundary);
    if (moved.empty()) return false;  // all keys equal: cannot split
    Count(v->id, best->id, net::MsgType::kLoadMove);
    BATON_CHECK_EQ(best->range.hi, v->range.lo);
    best->range.hi = boundary;
    v->range.lo = boundary;
    best->data.Absorb(&moved);
  } else {
    Key boundary = v->data.Kth(v->data.size() - give);
    KeyBag moved = v->data.ExtractAtLeast(boundary);
    if (moved.empty() || v->data.empty()) {
      v->data.Absorb(&moved);  // undo: boundary degenerated
      return false;
    }
    Count(v->id, best->id, net::MsgType::kLoadMove);
    BATON_CHECK_EQ(v->range.hi, best->range.lo);
    best->range.lo = boundary;
    v->range.hi = boundary;
    best->data.Absorb(&moved);
  }
  // "Whenever this range changes, the link has to be modified to record the
  // change": both nodes refresh the links caching their ranges, and both
  // re-sync their replicas with the moved keys.
  RefreshInboundRefs(v, net::MsgType::kRangeUpdate);
  RefreshInboundRefs(best, net::MsgType::kRangeUpdate);
  ReplicateFullSync(v);
  ReplicateFullSync(best);
  return true;
}

bool BatonNetwork::TryRemoteRecruit(BatonNode* v) {
  BATON_CHECK(v->IsLeaf());
  // A range too narrow to split cannot shed load to a recruit (the overload
  // is pure duplication of a handful of key values).
  if (v->range.Width() < 2) return false;
  size_t light_cap =
      static_cast<size_t>(static_cast<double>(EffectiveOverloadThreshold()) *
                          config_.underload_fraction);

  // 1. Probe sideways neighbours for a lightly loaded leaf ("our practical
  //    experience suggests that the neighbor tables suffice").
  BatonNode* recruit = nullptr;
  for (const RoutingTable* rt : {&v->left_rt, &v->right_rt}) {
    for (int i = 0; i < rt->size(); ++i) {
      const NodeRef& e = rt->entry(i);
      if (!e.valid() || !net_->IsAlive(e.peer)) continue;
      Count(v->id, e.peer, net::MsgType::kLoadProbe);
      Count(e.peer, v->id, net::MsgType::kLoadProbeReply);
      BatonNode* f = N(e.peer);
      if (!f->IsLeaf()) continue;
      if (f->data.size() >= light_cap) continue;
      if (recruit == nullptr || f->data.size() < recruit->data.size()) {
        recruit = f;
      }
    }
  }
  // Extension ([4], paper footnote 2): deep hot-region leaves often have no
  // same-level neighbours in shallow cold regions at all; a skip-list load
  // directory finds a light leaf globally.
  if (recruit == nullptr && config_.enable_recruit_directory) {
    recruit = DirectoryFindLightLeaf(v, light_cap);
  }
  if (recruit == nullptr) return false;
  return ExecuteRecruit(v, recruit);
}

BatonNode* BatonNetwork::DirectoryFindLightLeaf(BatonNode* asker,
                                                size_t light_cap) {
  // Stand-in for the skip-list structure of [4]: the traversal costs
  // O(log N) probe messages; the simulator answers with the lightest live
  // leaf. Nodes equal to the asker or adjacent to it are excluded (those
  // cases are already covered by adjacent balancing).
  int hops = static_cast<int>(std::log2(static_cast<double>(size()) + 1)) + 1;
  for (int i = 0; i < hops; ++i) {
    Count(asker->id, asker->id, net::MsgType::kLoadProbe);
  }
  // Equally light leaves tie-break on the packed tree position, so the
  // choice is a function of the tree state alone, not of the directory
  // container's enumeration order.
  BATON_CHECK(config_.enable_recruit_directory);
  BatonNode* best = nullptr;
  uint64_t best_pos = 0;
  recruit_dir_.ForEach([&](uint64_t packed, PeerId id) {
    BatonNode* f = N(id);
    if (!f->IsLeaf() || !net_->IsAlive(id) || f->id == asker->id) return;
    if (f->data.size() >= light_cap) return;
    if (best == nullptr || f->data.size() < best->data.size() ||
        (f->data.size() == best->data.size() && packed < best_pos)) {
      best = f;
      best_pos = packed;
    }
  });
  if (best != nullptr) {
    Count(best->id, asker->id, net::MsgType::kLoadProbeReply);
  }
  return best;
}

bool BatonNetwork::ExecuteRecruit(BatonNode* v, BatonNode* f) {
  // 2. f passes its content (and range) to an adjacent node.
  BatonNode* receiver = nullptr;
  bool to_right = false;
  if (f->right_adj.valid() && net_->IsAlive(f->right_adj.peer)) {
    receiver = N(f->right_adj.peer);
    to_right = true;
  } else if (f->left_adj.valid() && net_->IsAlive(f->left_adj.peer)) {
    receiver = N(f->left_adj.peer);
  }
  if (receiver == nullptr || receiver->id == v->id) return false;
  Count(f->id, receiver->id, net::MsgType::kLoadMove);
  receiver->data.Absorb(&f->data);
  if (to_right) {
    BATON_CHECK_EQ(f->range.hi, receiver->range.lo);
    receiver->range.lo = f->range.lo;
  } else {
    BATON_CHECK_EQ(receiver->range.hi, f->range.lo);
    receiver->range.hi = f->range.hi;
  }
  RefreshInboundRefs(receiver, net::MsgType::kRangeUpdate);

  // 3. f leaves its position. Redirection is not permitted here (the whole
  //    point is to move f next to v), so an unsafe departure restructures.
  bool f_left_of_v = InOrderBefore(f->pos, v->pos);
  Position vacated = f->pos;
  BatonNode* pred = NodeOrNull(f->left_adj);
  BatonNode* succ = NodeOrNull(f->right_adj);
  int shifts = 0;
  if (SafeToRemove(f)) {
    DetachLeaf(f);
  } else {
    DetachLeaf(f);
    shifts += FillVacancy(vacated, pred, succ, /*prefer_left=*/true);
  }

  // 4. f rejoins next to v, taking the lower half of v's content; the shift
  //    chain walks toward f's old neighbourhood, where a slot was freed.
  shifts += ForcedJoin(v, f, /*splice_before=*/true,
                       /*prefer_right=*/!f_left_of_v);
  shift_sizes_.Add(shifts);
  // Three bags changed hands: the receiver absorbed f's content, v shed half
  // of its own to f. Each re-syncs its replicas (f recruits a fresh set; its
  // old one was dropped when it detached).
  ReplicateFullSync(receiver);
  ReplicateFullSync(v);
  ReplicateFullSync(f);
  return true;
}

}  // namespace baton
