// Structural invariant checker (simulator-side "experimenter" view).
//
// Verifies, after any sequence of operations:
//  * the occupied positions form a tree (every non-root's parent occupied),
//  * Definition 1 balance at every node + Knuth's 1.44 log2 N height bound,
//  * Theorem 1: every node with a child has both routing tables full,
//  * Theorem 2: linked neighbours' parents are linked (structural corollary),
//  * adjacency links reproduce the in-order traversal exactly,
//  * ranges are contiguous, ordered, cover the bootstrap domain, and every
//    stored key lies in its node's range,
//  * every cached link (parent/child/adjacent/routing entries) carries the
//    target's true position, range and child bits.
#include <algorithm>
#include <cmath>

#include "baton/baton_network.h"

namespace baton {

namespace {

void CheckRefMatches(const NodeRef& ref, const BatonNode& target,
                     const char* what) {
  BATON_CHECK_EQ(ref.peer, target.id) << what;
  BATON_CHECK(ref.pos == target.pos)
      << what << ": cached " << ref.pos << " actual " << target.pos;
  BATON_CHECK(ref.range == target.range)
      << what << " at " << target.pos << ": cached " << ref.range
      << " actual " << target.range;
  BATON_CHECK_EQ(ref.has_left, target.left_child.valid())
      << what << " child bit at " << target.pos;
  BATON_CHECK_EQ(ref.has_right, target.right_child.valid())
      << what << " child bit at " << target.pos;
}

}  // namespace

void BatonNetwork::CheckInvariants() const {
  BATON_CHECK_EQ(net_->deferred_pending(), 0u)
      << "flush deferred updates before checking invariants";
  if (size() == 0) return;
  BATON_CHECK_NE(root(), kNullPeer) << "non-empty overlay must have a root";

  std::vector<PeerId> members = Members();
  BATON_CHECK_EQ(members.size(), size());

  uint64_t keys = 0;
  for (PeerId id : members) {
    const BatonNode& n = *N(id);
    BATON_CHECK(n.in_overlay);
    BATON_CHECK_EQ(OccupantOf(n.pos), id);

    // Vertical links.
    if (n.pos.IsRoot()) {
      BATON_CHECK(!n.parent.valid());
    } else {
      PeerId pp = OccupantOf(n.pos.Parent());
      BATON_CHECK_NE(pp, kNullPeer) << "orphan node at " << n.pos;
      BATON_CHECK(n.parent.valid()) << "missing parent link at " << n.pos;
      CheckRefMatches(n.parent, *N(pp), "parent link");
      const BatonNode& p = *N(pp);
      const NodeRef& back =
          n.pos.IsLeftChild() ? p.left_child : p.right_child;
      BATON_CHECK(back.valid()) << "parent " << p.pos << " missing child link";
      BATON_CHECK_EQ(back.peer, id);
    }
    for (bool left : {true, false}) {
      const NodeRef& c = left ? n.left_child : n.right_child;
      Position cpos = left ? n.pos.LeftChild() : n.pos.RightChild();
      PeerId occ = OccupantOf(cpos);
      if (occ == kNullPeer) {
        BATON_CHECK(!c.valid()) << "stale child link at " << n.pos;
      } else {
        BATON_CHECK(c.valid()) << "missing child link at " << n.pos;
        CheckRefMatches(c, *N(occ), "child link");
      }
    }

    // Routing tables mirror the same-level occupancy exactly.
    for (bool left : {true, false}) {
      const RoutingTable& rt = left ? n.left_rt : n.right_rt;
      BATON_CHECK_EQ(rt.size(), RoutingTable::NumSlots(n.pos, left))
          << "table dimension at " << n.pos;
      for (int i = 0; i < rt.size(); ++i) {
        Position slot = RoutingTable::SlotPosition(n.pos, left, i);
        PeerId occ = OccupantOf(slot);
        const NodeRef& e = rt.entry(i);
        if (occ == kNullPeer) {
          BATON_CHECK(!e.valid())
              << "stale table entry at " << n.pos << " slot " << slot;
        } else {
          BATON_CHECK(e.valid())
              << "missing table entry at " << n.pos << " slot " << slot;
          CheckRefMatches(e, *N(occ), "table entry");
          // Theorem 2: the parents of linked same-level nodes are linked
          // too; structurally their distance must be 0 or a power of two.
          if (!n.pos.IsRoot()) {
            uint64_t pa = n.pos.Parent().number;
            uint64_t pb = slot.Parent().number;
            uint64_t d = pa > pb ? pa - pb : pb - pa;
            BATON_CHECK(d == 0 || RoutingTable::SlotForDistance(d) >= 0)
                << "Theorem 2 violated between " << n.pos << " and " << slot;
          }
        }
      }
    }

    // Theorem 1 invariant.
    if (n.left_child.valid() || n.right_child.valid()) {
      BATON_CHECK(n.TablesFull())
          << "node " << n.pos << " has a child but non-full tables";
    }

    // Data containment.
    BATON_CHECK(n.range.lo < n.range.hi) << "empty range at " << n.pos;
    if (!n.data.empty()) {
      BATON_CHECK(n.range.Contains(n.data.Min()))
          << "key " << n.data.Min() << " outside " << n.range << " at "
          << n.pos;
      BATON_CHECK(n.range.Contains(n.data.Max()))
          << "key " << n.data.Max() << " outside " << n.range << " at "
          << n.pos;
    }
    keys += n.data.size();

    // Replication: every up-to-date replica of this node's bag must match it
    // exactly (stale copies are the anti-entropy pass's responsibility).
    if (repl_->enabled()) {
      repl_->CheckConsistent(id, n.data);
    }
  }
  BATON_CHECK_EQ(keys, total_keys_) << "key accounting drifted";

  // Adjacency = in-order traversal; ranges ordered and contiguous.
  const BatonNode& first = *N(members.front());
  const BatonNode& last = *N(members.back());
  BATON_CHECK(!first.left_adj.valid());
  BATON_CHECK(!last.right_adj.valid());
  BATON_CHECK_LE(first.range.lo, config_.domain_lo);
  BATON_CHECK_GE(last.range.hi, config_.domain_hi);
  for (size_t i = 0; i + 1 < members.size(); ++i) {
    const BatonNode& a = *N(members[i]);
    const BatonNode& b = *N(members[i + 1]);
    BATON_CHECK(a.right_adj.valid())
        << "broken adjacency chain after " << a.pos;
    BATON_CHECK_EQ(a.right_adj.peer, b.id)
        << "right adjacent of " << a.pos << " should be " << b.pos;
    CheckRefMatches(a.right_adj, b, "right adjacent");
    BATON_CHECK(b.left_adj.valid());
    BATON_CHECK_EQ(b.left_adj.peer, a.id);
    CheckRefMatches(b.left_adj, a, "left adjacent");
    BATON_CHECK_EQ(a.range.hi, b.range.lo)
        << "range gap between " << a.pos << " and " << b.pos;
  }

  // Balance (Definition 1) at every node, via heights over positions.
  std::function<int(const Position&)> height = [&](const Position& pos) -> int {
    PeerId occ = OccupantOf(pos);
    if (occ == kNullPeer) return 0;
    int hl = height(pos.LeftChild());
    int hr = height(pos.RightChild());
    BATON_CHECK_LE(std::abs(hl - hr), 1)
        << "tree imbalanced at " << pos << " (" << hl << " vs " << hr << ")";
    return 1 + std::max(hl, hr);
  };
  int h = height(Position::Root());
  double n_nodes = static_cast<double>(size());
  BATON_CHECK_LE(h, static_cast<int>(1.44 * std::log2(n_nodes + 1)) + 2)
      << "height " << h << " exceeds the balanced-tree bound for " << n_nodes
      << " nodes";
}

}  // namespace baton
