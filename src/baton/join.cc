// Node join (section III-A): Algorithm 1 locates an accepting node; the
// acceptance phase splits content, fixes adjacent links and constructs the
// new node's routing tables with the message pattern the paper bounds by
// 2*L1 + 2*L2 + 2*L2 + 1 < 6 log N.
#include "baton/baton_network.h"

namespace baton {

Result<PeerId> BatonNetwork::Join(PeerId contact) {
  BATON_CHECK(bootstrapped_) << "Bootstrap the overlay first";
  if (!InOverlay(contact)) {
    return Status::InvalidArgument("contact is not an overlay member");
  }
  int hops = 0;
  PeerId acceptor_id = FindJoinNode(contact, &hops);
  if (acceptor_id == kNullPeer) {
    return Status::Exhausted("join routing starved (stale state under churn)");
  }
  BatonNode* x = N(acceptor_id);

  auto fresh = std::make_unique<BatonNode>();
  fresh->id = net_->Register();
  PeerId yid = fresh->id;
  nodes_.push_back(std::move(fresh));
  BatonNode* y = N(yid);
  // Pointers into nodes_ may have been invalidated by push_back only if the
  // vector reallocated element storage; elements are unique_ptrs, so the
  // BatonNode objects themselves are stable, but re-derive x defensively.
  x = N(acceptor_id);

  bool as_left = !x->left_child.valid();
  AcceptChild(x, y, as_left);
  return yid;
}

PeerId BatonNetwork::FindJoinNode(PeerId contact, int* hops) {
  BatonNode* n = N(contact);
  int guard = config_.max_hops_factor * (Height() + 2) + 8;
  while (true) {
    if (--guard < 0) {
      // Under deferred updates (network dynamics, Fig 8(i)) stale caches can
      // starve the search; surface it instead of asserting.
      BATON_CHECK(net_->defer_updates()) << "join routing did not terminate";
      return kNullPeer;
    }
    // Accept when both routing tables are full but a child slot is free
    // (Theorem 1 guarantees the addition keeps the tree balanced). A node
    // whose range cannot be split any further (pathological duplicate
    // concentration) must pass the request on instead.
    if (n->TablesFull() && !n->HasBothChildren() && n->range.Width() >= 2) {
      return n->id;
    }

    // Candidate next hops, best first; stale links may point at departed
    // peers (churn), so each dead candidate costs a timed-out probe and the
    // next one is tried.
    std::vector<PeerId> candidates;
    if (!n->TablesFull() && n->parent.valid()) {
      // Incomplete sideways knowledge: the parent can find the parent of a
      // missing neighbour in its own table.
      candidates.push_back(n->parent.peer);
    } else {
      // Tables full and both children present: look for a same-level node
      // that lacks a child.
      std::vector<PeerId> open_slots;
      for (const RoutingTable* rt : {&n->left_rt, &n->right_rt}) {
        for (int i = 0; i < rt->size(); ++i) {
          const NodeRef& e = rt->entry(i);
          if (e.valid() && !(e.has_left && e.has_right)) {
            open_slots.push_back(e.peer);
          }
        }
      }
      if (!open_slots.empty()) {
        rng_.Shuffle(&open_slots);
        candidates = std::move(open_slots);
      } else if (rng_.NextBool(0.5)) {
        // The whole visible neighbourhood is full: half the time, jump
        // laterally through a random far table entry so the walk diffuses
        // across the level toward the sparse region instead of cycling
        // inside one full subtree; the other half descends via an adjacent
        // link (below) to probe deeper levels.
        std::vector<PeerId> lateral;
        for (const RoutingTable* rt : {&n->left_rt, &n->right_rt}) {
          for (int i = 0; i < rt->size(); ++i) {
            if (rt->entry(i).valid()) lateral.push_back(rt->entry(i).peer);
          }
        }
        if (!lateral.empty()) candidates.push_back(rng_.Pick(lateral));
      }
      // Fall back: descend through an adjacent node.
      if (n->left_adj.valid() && n->right_adj.valid()) {
        bool left_first = rng_.NextBool(0.5);
        candidates.push_back(left_first ? n->left_adj.peer
                                        : n->right_adj.peer);
        candidates.push_back(left_first ? n->right_adj.peer
                                        : n->left_adj.peer);
      } else if (n->left_adj.valid()) {
        candidates.push_back(n->left_adj.peer);
      } else if (n->right_adj.valid()) {
        candidates.push_back(n->right_adj.peer);
      }
    }
    PeerId next = kNullPeer;
    for (PeerId cand : candidates) {
      if (net_->IsAlive(cand) && InOverlay(cand)) {
        next = cand;
        break;
      }
      Count(n->id, cand, net::MsgType::kDeadProbe);
    }
    if (next == kNullPeer) {
      BATON_CHECK(net_->defer_updates()) << "join routing hit a dead end";
      return kNullPeer;
    }
    Count(n->id, next, net::MsgType::kJoinForward);
    if (hops != nullptr) ++*hops;
    n = N(next);
  }
}

void BatonNetwork::SplitContent(BatonNode* x, BatonNode* y, bool as_left) {
  BATON_CHECK_GE(x->range.Width(), 2)
      << "node " << x->pos << " range " << x->range
      << " too narrow to split; the key domain must exceed the node count";
  // "it splits half of its content to its child": split at the content
  // median so both halves carry similar load; an empty node splits its value
  // range evenly.
  Key split = x->data.size() >= 2 ? x->data.Median() : x->range.Mid();
  split = std::max(x->range.lo + 1, std::min(split, x->range.hi - 1));
  if (as_left) {
    y->range = Range{x->range.lo, split};
    y->data = x->data.ExtractBelow(split);
    x->range.lo = split;
  } else {
    y->range = Range{split, x->range.hi};
    y->data = x->data.ExtractAtLeast(split);
    x->range.hi = split;
  }
  Count(x->id, y->id, net::MsgType::kContentTransfer);
}

void BatonNetwork::SpliceIntoAdjacency(BatonNode* y, BatonNode* x,
                                       bool before) {
  if (before) {
    y->left_adj = x->left_adj;
    y->right_adj = x->SelfRef();
    if (x->left_adj.valid()) {
      // "y ... notifies z that z should update its right adjacent node with
      // y instead of x".
      Count(y->id, x->left_adj.peer, net::MsgType::kAdjacentUpdate);
      SendRefUpdate(x->left_adj.peer, RefKind::kRightAdj, 0, y->SelfRef());
    }
    x->left_adj = y->SelfRef();
  } else {
    y->right_adj = x->right_adj;
    y->left_adj = x->SelfRef();
    if (x->right_adj.valid()) {
      Count(y->id, x->right_adj.peer, net::MsgType::kAdjacentUpdate);
      SendRefUpdate(x->right_adj.peer, RefKind::kLeftAdj, 0, y->SelfRef());
    }
    x->right_adj = y->SelfRef();
  }
}

void BatonNetwork::UnspliceFromAdjacency(BatonNode* x) {
  // x's neighbours link to each other; payloads are x's current caches.
  if (x->left_adj.valid()) {
    Count(x->id, x->left_adj.peer, net::MsgType::kAdjacentUpdate);
    if (x->right_adj.valid()) {
      SendRefUpdate(x->left_adj.peer, RefKind::kRightAdj, 0, x->right_adj);
    } else {
      NodeRef cleared;
      cleared.pos = x->pos;  // unused for adjacency clears
      SendRefUpdate(x->left_adj.peer, RefKind::kRightAdj, 0, cleared);
    }
  }
  if (x->right_adj.valid()) {
    Count(x->id, x->right_adj.peer, net::MsgType::kAdjacentUpdate);
    if (x->left_adj.valid()) {
      SendRefUpdate(x->right_adj.peer, RefKind::kLeftAdj, 0, x->left_adj);
    } else {
      NodeRef cleared;
      cleared.pos = x->pos;
      SendRefUpdate(x->right_adj.peer, RefKind::kLeftAdj, 0, cleared);
    }
  }
}

void BatonNetwork::AcceptChild(BatonNode* x, BatonNode* y, bool as_left) {
  BATON_CHECK(!(as_left ? x->left_child.valid() : x->right_child.valid()));
  Position child_pos = as_left ? x->pos.LeftChild() : x->pos.RightChild();
  y->SetPosition(child_pos);
  y->in_overlay = true;
  IndexPosition(y);

  SplitContent(x, y, as_left);

  // Parent/child links travel on the acceptance exchange (already counted
  // as the content transfer).
  y->parent = x->SelfRef();
  SpliceIntoAdjacency(y, x, /*before=*/as_left);
  if (as_left) {
    x->left_child = y->SelfRef();
  } else {
    x->right_child = y->SelfRef();
  }
  // Refresh y's own caches of x: the splice snapshotted x before the child
  // link and range split were in place (all part of the same acceptance
  // exchange, no extra messages).
  y->parent = x->SelfRef();
  if (as_left) {
    y->right_adj = x->SelfRef();
  } else {
    y->left_adj = x->SelfRef();
  }

  BuildChildTables(x, y);

  // x's range and child bits changed; its parent, other child and far
  // adjacent still cache the old state (its sideways neighbours were updated
  // during table construction).
  NodeRef self = x->SelfRef();
  if (x->parent.valid()) {
    Count(x->id, x->parent.peer, net::MsgType::kParentNotify);
    SendRefUpdate(x->parent.peer,
                  x->pos.IsLeftChild() ? RefKind::kLeftChild
                                       : RefKind::kRightChild,
                  0, self);
  }
  BatonNode* other_child = as_left ? NodeOrNull(x->right_child)
                                   : NodeOrNull(x->left_child);
  if (other_child != nullptr) {
    Count(x->id, other_child->id, net::MsgType::kRangeUpdate);
    SendRefUpdate(other_child->id, RefKind::kParent, 0, self);
  }
  const NodeRef& far_adj = as_left ? x->right_adj : x->left_adj;
  if (far_adj.valid() && far_adj.peer != y->id) {
    Count(x->id, far_adj.peer, net::MsgType::kRangeUpdate);
    SendRefUpdate(far_adj.peer,
                  as_left ? RefKind::kLeftAdj : RefKind::kRightAdj, 0, self);
  }

  // The split moved half of x's bag to y: x re-syncs its replicas and y
  // recruits its own holders now that its links are in place.
  ReplicateFullSync(x);
  ReplicateFullSync(y);
}

void BatonNetwork::BuildChildTables(BatonNode* x, BatonNode* y) {
  // For each potential sideways neighbour q of y, Theorem 2 places q's
  // parent in x's routing table (or it is x itself). x contacts each such
  // parent once; the parent forwards to its relevant child; the child
  // replies to y, installing the symmetric entries.
  util::FlatSet64 contacted;
  for (int side = 0; side < 2; ++side) {
    bool left = side == 0;
    RoutingTable& rt = left ? y->left_rt : y->right_rt;
    for (int i = 0; i < rt.size(); ++i) {
      Position q = RoutingTable::SlotPosition(y->pos, left, i);
      Position pq = q.Parent();
      BatonNode* q_parent = nullptr;
      if (pq == x->pos) {
        q_parent = x;  // sibling slot: x answers locally
      } else {
        uint64_t d = pq.number > x->pos.number ? pq.number - x->pos.number
                                               : x->pos.number - pq.number;
        int slot = RoutingTable::SlotForDistance(d);
        BATON_CHECK_GE(slot, 0) << "Theorem 2 violated for slot " << q;
        const RoutingTable& xrt =
            pq.number < x->pos.number ? x->left_rt : x->right_rt;
        if (slot >= xrt.size() || !xrt.entry(slot).valid()) {
          continue;  // q's parent absent => q unoccupied (Theorem 2)
        }
        q_parent = N(xrt.entry(slot).peer);
        if (contacted.Insert(q_parent->id)) {
          Count(x->id, q_parent->id, net::MsgType::kTableBuild);
          // Piggyback x's new range/child bits on this contact.
          int back_slot = slot;
          SendRefUpdate(q_parent->id,
                        pq.number < x->pos.number ? RefKind::kRightRt
                                                  : RefKind::kLeftRt,
                        back_slot, x->SelfRef());
        }
      }
      const NodeRef& child_ref = q == pq.LeftChild() ? q_parent->left_child
                                                     : q_parent->right_child;
      if (!child_ref.valid()) continue;
      BatonNode* c = N(child_ref.peer);
      Count(q_parent->id, c->id, net::MsgType::kTableBuildChild);
      Count(c->id, y->id, net::MsgType::kTableBuildReply);
      rt.entry(i) = c->SelfRef();
      // c installs its reverse entry toward y from the same exchange.
      SendRefUpdate(c->id, left ? RefKind::kRightRt : RefKind::kLeftRt, i,
                    y->SelfRef());
    }
  }
}

}  // namespace baton
