// The state one BATON peer maintains, exactly as section III prescribes:
// a link to its parent, its two children, its two adjacent nodes, plus a left
// and right sideways routing table. Every link caches the target's logical
// position, managed range and child-occupancy bits ("a routing table entry
// carries additional information beyond just the target IP address").
#ifndef BATON_BATON_NODE_H_
#define BATON_BATON_NODE_H_

#include <cstdint>
#include <vector>

#include "baton/key_bag.h"
#include "baton/position.h"
#include "baton/types.h"
#include "net/network.h"
#include "util/check.h"

namespace baton {

using net::PeerId;
using net::kNullPeer;

/// A link to another peer with cached remote metadata.
struct NodeRef {
  PeerId peer = kNullPeer;
  Position pos;
  Range range;
  bool has_left = false;
  bool has_right = false;

  bool valid() const { return peer != kNullPeer; }
  bool HasChild() const { return has_left || has_right; }
  void Clear() { *this = NodeRef{}; }
};

/// One sideways routing table (left or right). Entry i links to the node at
/// the same level whose number differs by 2^i. Slots exist only for in-range
/// positions; a slot with peer == kNullPeer is a "null" entry ("If there is
/// no such node, an entry is still made in the routing table, but marked as
/// null").
class RoutingTable {
 public:
  /// Number of representable slots for a node at `pos` looking left/right.
  static int NumSlots(const Position& pos, bool left);

  /// Re-dimension for a (possibly new) position; clears all entries.
  void Reset(const Position& pos, bool left);

  int size() const { return static_cast<int>(entries_.size()); }
  NodeRef& entry(int i) { return entries_[static_cast<size_t>(i)]; }
  const NodeRef& entry(int i) const { return entries_[static_cast<size_t>(i)]; }

  /// "A routing table is considered full if all valid links are not null."
  bool IsFull() const;

  /// Position entry i refers to (same level, number +/- 2^i).
  static Position SlotPosition(const Position& pos, bool left, int i);

  /// Index for a same-level position at distance `d`, or -1 if d is not a
  /// power of two (only powers of two are representable).
  static int SlotForDistance(uint64_t d);

 private:
  std::vector<NodeRef> entries_;
};

/// Full per-peer state. Internal to the library; the public API is
/// BatonNetwork. Members are public because every protocol file manipulates
/// them (this mirrors how the paper describes node state).
struct BatonNode {
  PeerId id = kNullPeer;
  Position pos;
  bool in_overlay = false;  // false once the peer left/failed

  NodeRef parent;
  NodeRef left_child;
  NodeRef right_child;
  NodeRef left_adj;   // in-order predecessor
  NodeRef right_adj;  // in-order successor

  RoutingTable left_rt;
  RoutingTable right_rt;

  Range range;
  KeyBag data;

  /// Load-balancing backoff: skip further attempts until the node's load
  /// reaches this value again (avoids re-probing on every insert when no
  /// lightly loaded recruit exists).
  size_t lb_retry_at = 0;

  bool IsLeaf() const { return !left_child.valid() && !right_child.valid(); }
  bool HasBothChildren() const {
    return left_child.valid() && right_child.valid();
  }
  bool TablesFull() const { return left_rt.IsFull() && right_rt.IsFull(); }

  /// A NodeRef describing this node's current state (to hand to peers).
  NodeRef SelfRef() const {
    return NodeRef{id, pos, range, left_child.valid(), right_child.valid()};
  }

  /// Sets position and re-dimensions both routing tables (entries cleared).
  void SetPosition(const Position& p) {
    pos = p;
    left_rt.Reset(p, /*left=*/true);
    right_rt.Reset(p, /*left=*/false);
  }
};

}  // namespace baton

#endif  // BATON_BATON_NODE_H_
