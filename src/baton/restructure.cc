// Network restructuring (section III-E), "akin to a rotation in an AVL tree".
//
// Forced join: the new node is spliced into the in-order sequence next to the
// overloaded node and occupants shift along adjacent links, each taking the
// next occupied position, until one can drop into a child slot whose creation
// keeps the tree balanced (Theorem 1's local check: the would-be parent's
// routing tables are full). This reproduces the paper's Fig. 4 chain
// (l->h->d->i->b->j->e->k->a->f.left) and, because a freshly vacated slot is
// just an empty child slot on the walk, the unified load-balancing chain of
// Fig. 7.
//
// Vacancy fill (after a forced departure): occupants shift toward the hole
// until the slot vacated last is a safely removable leaf, reproducing Fig. 5
// (c->g, f->c, a->f, k->a).
//
// Nodes carry their ranges and data with them, so no data moves; in-order
// node order -- and hence the range partitioning -- is preserved. Each mover
// pays O(log N) messages to rebuild its routing tables and notify the links
// caching its old coordinates.
#include "baton/baton_network.h"

namespace baton {

int BatonNetwork::ForcedJoin(BatonNode* x, BatonNode* y, bool splice_before,
                             bool prefer_right) {
  BATON_CHECK(!net_->defer_updates())
      << "restructuring requires immediate link updates";
  y->in_overlay = true;
  SplitContent(x, y, /*as_left=*/splice_before);
  SpliceIntoAdjacency(y, x, /*before=*/splice_before);

  // Both directions are locally discoverable; shift the shorter chain.
  std::vector<Move> preferred, other;
  bool ok_pref = TryBuildJoinChain(y, prefer_right, &preferred);
  bool ok_other = TryBuildJoinChain(y, !prefer_right, &other);
  BATON_CHECK(ok_pref || ok_other)
      << "restructuring could not absorb the forced join";
  std::vector<Move>& moves =
      !ok_other || (ok_pref && preferred.size() <= other.size()) ? preferred
                                                                 : other;
  RelocateNodes(moves);
  // x's range was halved by the split; when the chain was absorbed away from
  // x, nobody above has refreshed the links caching x yet.
  RefreshInboundRefs(x, net::MsgType::kRangeUpdate);
  return static_cast<int>(moves.size());
}

bool BatonNetwork::TryBuildJoinChain(BatonNode* y, bool rightward,
                                     std::vector<Move>* moves) {
  moves->clear();
  BatonNode* mover = y;
  bool mover_has_old = false;
  Position mover_old;
  BatonNode* t = rightward ? NodeOrNull(y->right_adj) : NodeOrNull(y->left_adj);
  int guard = static_cast<int>(size()) + 8;
  while (true) {
    BATON_CHECK_GE(--guard, 0) << "join chain exceeded overlay size";
    // (a) The displaced mover can drop into the near child slot of its own
    //     old position (now held by the previous mover): the slot sits
    //     in-order between the old position and its successor, and the old
    //     position's tables being full makes the addition balance-safe.
    if (mover_has_old) {
      if (rightward ? (!mover->right_child.valid() && mover->TablesFull())
                    : (!mover->left_child.valid() && mover->TablesFull())) {
        moves->push_back(Move{mover, rightward ? mover_old.RightChild()
                                               : mover_old.LeftChild()});
        return true;
      }
    }
    if (t == nullptr) return false;  // ran off the end of the level chain
    // (b) The next occupant can absorb the mover as its near-side child
    //     ("z then checks its right adjacent node t to see if its left child
    //      is empty ... and adding a child to t does not affect the balance").
    if (rightward ? (!t->left_child.valid() && t->TablesFull())
                  : (!t->right_child.valid() && t->TablesFull())) {
      moves->push_back(Move{mover, rightward ? t->pos.LeftChild()
                                             : t->pos.RightChild()});
      return true;
    }
    // (c) Otherwise the mover takes t's position and t is displaced.
    moves->push_back(Move{mover, t->pos});
    mover = t;
    mover_has_old = true;
    mover_old = t->pos;
    t = rightward ? NodeOrNull(t->right_adj) : NodeOrNull(t->left_adj);
  }
}

int BatonNetwork::FillVacancy(const Position& vacated, BatonNode* pred_hint,
                              BatonNode* succ_hint, bool prefer_left) {
  BATON_CHECK(!net_->defer_updates())
      << "restructuring requires immediate link updates";
  BatonNode* first = prefer_left ? pred_hint : succ_hint;
  BatonNode* second = prefer_left ? succ_hint : pred_hint;
  std::vector<Move> preferred, other;
  bool ok_pref = TryBuildVacancyChain(vacated, first, prefer_left, &preferred);
  bool ok_other = TryBuildVacancyChain(vacated, second, !prefer_left, &other);
  BATON_CHECK(ok_pref || ok_other)
      << "no safely removable leaf found to absorb the vacancy";
  std::vector<Move>& moves =
      !ok_other || (ok_pref && preferred.size() <= other.size()) ? preferred
                                                                 : other;
  RelocateNodes(moves);
  return static_cast<int>(moves.size());
}

bool BatonNetwork::TryBuildVacancyChain(const Position& vacated,
                                        BatonNode* start, bool leftward,
                                        std::vector<Move>* moves) {
  moves->clear();
  if (start == nullptr) return false;
  Position hole = vacated;
  BatonNode* cur = start;
  int guard = static_cast<int>(size()) + 8;
  while (true) {
    BATON_CHECK_GE(--guard, 0) << "vacancy chain exceeded overlay size";
    moves->push_back(Move{cur, hole});
    // Stop once the slot this mover vacates can be removed without breaking
    // balance (a deepest-level leaf always qualifies, so one direction must
    // eventually succeed).
    if (SafeToRemove(cur)) return true;
    hole = cur->pos;
    BatonNode* next =
        leftward ? NodeOrNull(cur->left_adj) : NodeOrNull(cur->right_adj);
    if (next == nullptr) return false;
    cur = next;
  }
}

void BatonNetwork::RelocateNodes(const std::vector<Move>& moves) {
  BATON_CHECK(!moves.empty());
  // Phase 1: vacate old positions (a fresh joiner holds none yet).
  util::FlatSet64 old_positions;
  for (const Move& m : moves) {
    if (OccupantOf(m.node->pos) == m.node->id) {
      old_positions.Insert(m.node->pos.Packed());
      UnindexPosition(m.node);
    }
  }
  // Phase 2: occupy new positions (tables are re-dimensioned and cleared).
  // Track slots that were empty before the chain: their parents gain a
  // child and must notify their cachers afterwards.
  std::vector<Position> created_positions;
  for (const Move& m : moves) {
    if (!old_positions.Contains(m.to.Packed()) &&
        OccupantOf(m.to) == kNullPeer) {
      created_positions.push_back(m.to);
    }
    m.node->SetPosition(m.to);
    IndexPosition(m.node);
    old_positions.Erase(m.to.Packed());
  }

  // Phase 3: each mover re-binds its vertical links and rebuilds its tables.
  // One kRestructureShift message models the position handover; table
  // entries and link notifications are charged individually (the paper's
  // "adjusting the routing table requires O(log N) effort" per mover).
  for (const Move& m : moves) {
    BatonNode* n = m.node;
    // Children first, so SelfRef carries correct child bits afterwards.
    PeerId lc = OccupantOf(n->pos.LeftChild());
    if (lc != kNullPeer) {
      n->left_child = N(lc)->SelfRef();
      N(lc)->parent = n->SelfRef();
      Count(n->id, lc, net::MsgType::kParentNotify);
    } else {
      n->left_child.Clear();
    }
    PeerId rc = OccupantOf(n->pos.RightChild());
    if (rc != kNullPeer) {
      n->right_child = N(rc)->SelfRef();
      N(rc)->parent = n->SelfRef();
      Count(n->id, rc, net::MsgType::kParentNotify);
    } else {
      n->right_child.Clear();
    }
    if (!n->pos.IsRoot()) {
      PeerId pp = OccupantOf(n->pos.Parent());
      BATON_CHECK_NE(pp, kNullPeer)
          << "relocation left an orphan at " << n->pos;
      BatonNode* parent = N(pp);
      n->parent = parent->SelfRef();
      if (n->pos.IsLeftChild()) {
        parent->left_child = n->SelfRef();
      } else {
        parent->right_child = n->SelfRef();
      }
      Count(n->id, pp, net::MsgType::kRestructureShift);
    } else {
      n->parent.Clear();
      Count(n->id, n->id, net::MsgType::kRestructureShift);
    }
    // Adjacent nodes keep their identity but must learn the new coordinates.
    if (n->left_adj.valid()) {
      Count(n->id, n->left_adj.peer, net::MsgType::kAdjacentUpdate);
    }
    if (n->right_adj.valid()) {
      Count(n->id, n->right_adj.peer, net::MsgType::kAdjacentUpdate);
    }
  }
  for (const Move& m : moves) {
    RebuildRoutingTables(m.node, /*charge=*/true);
  }
  // Phase 4: push final metadata into every link that caches a mover.
  for (const Move& m : moves) {
    RefreshInboundRefsUncharged(m.node);
  }
  // Parents of freshly created slots gained a child: their same-level
  // neighbours (and other cachers) must hear about the new child bit. This
  // is the accept-side child-status notification of section III-A.
  for (const Position& created : created_positions) {
    if (created.IsRoot()) continue;
    PeerId pp = OccupantOf(created.Parent());
    BATON_CHECK_NE(pp, kNullPeer);
    RefreshInboundRefs(N(pp), net::MsgType::kChildStatusNotify);
  }

  // Phase 5: at most one slot was vacated for good (vacancy chains); clear
  // the stale links pointing at it.
  BATON_CHECK_LE(old_positions.size(), 1u);
  old_positions.ForEach([&](uint64_t packed) {
    Position vacated{static_cast<uint32_t>(packed >> 52),
                     packed & ((uint64_t{1} << 52) - 1)};
    PeerId notifier = moves.back().node->id;
    if (!vacated.IsRoot()) {
      PeerId pp = OccupantOf(vacated.Parent());
      if (pp != kNullPeer) {
        BatonNode* parent = N(pp);
        NodeRef* slot = vacated.IsLeftChild() ? &parent->left_child
                                              : &parent->right_child;
        if (slot->valid() && slot->pos == vacated) slot->Clear();
        Count(notifier, pp, net::MsgType::kParentNotify);
        // The parent's child bits changed; its cachers must hear about it.
        RefreshInboundRefs(parent, net::MsgType::kChildStatusNotify);
      }
    }
    ClearReverseEntriesAt(vacated, notifier, /*charge=*/true);
  });
}

}  // namespace baton
