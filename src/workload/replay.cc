#include "workload/replay.h"

#include "util/check.h"

namespace baton {
namespace workload {

void OpAggregate::Accumulate(const overlay::OpStats& st) {
  ++count;
  if (st.ok()) ++ok;
  if (st.found) ++found;
  messages += st.messages;
  // hops is signed and some backends report a negative sentinel on failed
  // ops; a raw cast would wrap to ~2^64 and corrupt the aggregate.
  uint64_t h = st.hops > 0 ? static_cast<uint64_t>(st.hops) : 0;
  hops += h;
  latency += st.latency_ticks;
  retries += static_cast<uint64_t>(st.retries > 0 ? st.retries : 0);
  timeouts += static_cast<uint64_t>(st.timeouts > 0 ? st.timeouts : 0);
  if (st.gave_up) ++gave_up;
  if (st.degraded) ++degraded;
  dropped_msgs += st.dropped_msgs;
  hops_hist.Add(h);
  messages_hist.Add(st.messages);
  latency_hist.Add(st.latency_ticks);
}

void OpAggregate::Merge(const OpAggregate& other) {
  count += other.count;
  ok += other.ok;
  found += other.found;
  skipped += other.skipped;
  unsupported += other.unsupported;
  messages += other.messages;
  hops += other.hops;
  latency += other.latency;
  retries += other.retries;
  timeouts += other.timeouts;
  gave_up += other.gave_up;
  degraded += other.degraded;
  dropped_msgs += other.dropped_msgs;
  hops_hist.Merge(other.hops_hist);
  messages_hist.Merge(other.messages_hist);
  latency_hist.Merge(other.latency_hist);
}

AppliedOp ApplyOp(overlay::Overlay& ov, const Op& op, Rng* rng,
                  std::vector<net::PeerId>* members,
                  const ReplayOptions& opts) {
  AppliedOp out;
  // The one rng draw this op gets, taken before any capability or guard
  // check so every backend consumes an identical random stream.
  size_t idx = rng->NextBelow(members->size());
  net::PeerId peer = (*members)[idx];
  switch (op.type) {
    case OpType::kJoin: {
      out.stats = ov.Join(peer);
      if (out.stats.ok()) members->push_back(out.stats.peer);
      break;
    }
    case OpType::kLeave: {
      if (members->size() <= opts.min_members) {
        out.disposition = AppliedOp::Disposition::kSkipped;
        break;
      }
      out.stats = ov.Leave(peer);
      if (out.stats.ok()) {
        members->erase(members->begin() + static_cast<long>(idx));
      }
      break;
    }
    case OpType::kFail: {
      if (members->size() <= opts.min_members) {
        out.disposition = AppliedOp::Disposition::kSkipped;
        break;
      }
      if (!ov.Supports(overlay::kFailRecovery)) {
        out.disposition = AppliedOp::Disposition::kUnsupported;
        break;
      }
      out.stats = ov.Fail(peer);
      if (out.stats.ok() && opts.recover_failures) {
        overlay::OpStats rec = ov.RecoverAllFailures();
        BATON_CHECK(rec.ok()) << rec.status.ToString();
        out.stats.messages += rec.messages;
        out.stats.latency_ticks += rec.latency_ticks;
      }
      if (out.stats.ok()) {
        members->erase(members->begin() + static_cast<long>(idx));
      }
      break;
    }
    case OpType::kFailRegion: {
      size_t width = static_cast<size_t>(op.key_hi);
      if (width == 0) width = 1;
      if (members->size() <= opts.min_members + width) {
        out.disposition = AppliedOp::Disposition::kSkipped;
        break;
      }
      if (!ov.Supports(overlay::kFailRecovery)) {
        out.disposition = AppliedOp::Disposition::kUnsupported;
        break;
      }
      // The drawn index anchors the outage in the backend's canonical
      // key-space order (not join order): `width` *consecutive* members
      // fail together, modelling one region / subtree extent going dark,
      // then recovery runs once over the whole burst.
      std::vector<net::PeerId> canon = ov.Members();
      BATON_CHECK_EQ(canon.size(), members->size());
      std::vector<net::PeerId> victims;
      victims.reserve(width);
      for (size_t j = 0; j < width; ++j) {
        victims.push_back(canon[(idx + j) % canon.size()]);
      }
      for (net::PeerId v : victims) {
        overlay::OpStats f = ov.Fail(v);
        BATON_CHECK(f.ok()) << f.status.ToString();
        out.stats.messages += f.messages;
        out.stats.latency_ticks += f.latency_ticks;
        out.stats.dropped_msgs += f.dropped_msgs;
        out.stats.degraded = out.stats.degraded || f.degraded;
      }
      if (opts.recover_failures) {
        overlay::OpStats rec = ov.RecoverAllFailures();
        BATON_CHECK(rec.ok()) << rec.status.ToString();
        out.stats.messages += rec.messages;
        out.stats.latency_ticks += rec.latency_ticks;
        out.stats.dropped_msgs += rec.dropped_msgs;
        out.stats.degraded = out.stats.degraded || rec.degraded;
      }
      for (net::PeerId v : victims) {
        for (size_t m = 0; m < members->size(); ++m) {
          if ((*members)[m] == v) {
            members->erase(members->begin() + static_cast<long>(m));
            break;
          }
        }
      }
      break;
    }
    case OpType::kInsert:
      out.stats = ov.Insert(peer, op.key);
      break;
    case OpType::kDelete:
      out.stats = ov.Delete(peer, op.key);
      break;
    case OpType::kExact:
      out.stats = ov.ExactSearch(peer, op.key);
      break;
    case OpType::kRange: {
      if (!ov.Supports(overlay::kRangeSearch)) {
        out.disposition = AppliedOp::Disposition::kUnsupported;
        break;
      }
      out.stats = ov.RangeSearch(peer, op.key, op.key_hi);
      break;
    }
    case OpType::kNumOpTypes:
      BATON_CHECK(false) << "kNumOpTypes is a sentinel, not an op";
  }
  return out;
}

ReplayResult Replay(overlay::Overlay& ov, const Trace& trace, Rng* rng,
                    std::vector<net::PeerId>* members,
                    const ReplayOptions& opts) {
  BATON_CHECK(members != nullptr && !members->empty())
      << "Replay needs a bootstrapped overlay with at least one member";
  ReplayResult res;
  for (const Op& op : trace) {
    OpAggregate* agg = &res.per_op[static_cast<size_t>(op.type)];
    AppliedOp applied = ApplyOp(ov, op, rng, members, opts);
    switch (applied.disposition) {
      case AppliedOp::Disposition::kSkipped:
        ++agg->skipped;
        break;
      case AppliedOp::Disposition::kUnsupported:
        ++agg->unsupported;
        break;
      case AppliedOp::Disposition::kExecuted:
        agg->Accumulate(applied.stats);
        res.total_messages += applied.stats.messages;
        res.total_latency += applied.stats.latency_ticks;
        if (opts.record_answers) {
          if (op.type == OpType::kExact) {
            res.exact_found.push_back(applied.stats.found);
          } else if (op.type == OpType::kRange) {
            res.range_matches.push_back(applied.stats.matches);
          }
        }
        break;
    }
  }
  return res;
}

}  // namespace workload
}  // namespace baton
