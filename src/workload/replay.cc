#include "workload/replay.h"

#include "util/check.h"

namespace baton {
namespace workload {

namespace {

void Accumulate(OpAggregate* agg, const overlay::OpStats& st,
                ReplayResult* res) {
  ++agg->count;
  if (st.ok()) ++agg->ok;
  if (st.found) ++agg->found;
  agg->messages += st.messages;
  // hops is signed and some backends report a negative sentinel on failed
  // ops; a raw cast would wrap to ~2^64 and corrupt the aggregate.
  uint64_t hops = st.hops > 0 ? static_cast<uint64_t>(st.hops) : 0;
  agg->hops += hops;
  agg->latency += st.latency_ticks;
  agg->hops_hist.Add(hops);
  agg->messages_hist.Add(st.messages);
  agg->latency_hist.Add(st.latency_ticks);
  res->total_messages += st.messages;
  res->total_latency += st.latency_ticks;
}

}  // namespace

void OpAggregate::Merge(const OpAggregate& other) {
  count += other.count;
  ok += other.ok;
  found += other.found;
  skipped += other.skipped;
  unsupported += other.unsupported;
  messages += other.messages;
  hops += other.hops;
  latency += other.latency;
  hops_hist.Merge(other.hops_hist);
  messages_hist.Merge(other.messages_hist);
  latency_hist.Merge(other.latency_hist);
}

ReplayResult Replay(overlay::Overlay& ov, const Trace& trace, Rng* rng,
                    std::vector<net::PeerId>* members,
                    const ReplayOptions& opts) {
  BATON_CHECK(members != nullptr && !members->empty())
      << "Replay needs a bootstrapped overlay with at least one member";
  ReplayResult res;
  for (const Op& op : trace) {
    OpAggregate* agg = &res.per_op[static_cast<size_t>(op.type)];
    // The one rng draw this op gets, taken before any capability or guard
    // check so every backend consumes an identical random stream.
    size_t idx = rng->NextBelow(members->size());
    net::PeerId peer = (*members)[idx];
    switch (op.type) {
      case OpType::kJoin: {
        overlay::OpStats st = ov.Join(peer);
        Accumulate(agg, st, &res);
        if (st.ok()) members->push_back(st.peer);
        break;
      }
      case OpType::kLeave: {
        if (members->size() <= opts.min_members) {
          ++agg->skipped;
          break;
        }
        overlay::OpStats st = ov.Leave(peer);
        Accumulate(agg, st, &res);
        if (st.ok()) {
          members->erase(members->begin() + static_cast<long>(idx));
        }
        break;
      }
      case OpType::kFail: {
        if (members->size() <= opts.min_members) {
          ++agg->skipped;
          break;
        }
        if (!ov.Supports(overlay::kFailRecovery)) {
          ++agg->unsupported;
          break;
        }
        overlay::OpStats st = ov.Fail(peer);
        if (st.ok() && opts.recover_failures) {
          overlay::OpStats rec = ov.RecoverAllFailures();
          BATON_CHECK(rec.ok()) << rec.status.ToString();
          st.messages += rec.messages;
          st.latency_ticks += rec.latency_ticks;
        }
        Accumulate(agg, st, &res);
        if (st.ok()) {
          members->erase(members->begin() + static_cast<long>(idx));
        }
        break;
      }
      case OpType::kInsert:
        Accumulate(agg, ov.Insert(peer, op.key), &res);
        break;
      case OpType::kDelete:
        Accumulate(agg, ov.Delete(peer, op.key), &res);
        break;
      case OpType::kExact: {
        overlay::OpStats st = ov.ExactSearch(peer, op.key);
        Accumulate(agg, st, &res);
        if (opts.record_answers) res.exact_found.push_back(st.found);
        break;
      }
      case OpType::kRange: {
        if (!ov.Supports(overlay::kRangeSearch)) {
          ++agg->unsupported;
          break;
        }
        overlay::OpStats st = ov.RangeSearch(peer, op.key, op.key_hi);
        Accumulate(agg, st, &res);
        if (opts.record_answers) res.range_matches.push_back(st.matches);
        break;
      }
      case OpType::kNumOpTypes:
        BATON_CHECK(false) << "kNumOpTypes is a sentinel, not an op";
    }
  }
  return res;
}

}  // namespace workload
}  // namespace baton
