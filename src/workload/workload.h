// Workload generation matching the paper's experimental setup (section V):
// values in [1, 10^9), uniform or Zipfian (theta = 1.0) distributions,
// inserted in batches; exact and range query generators; churn traces.
#ifndef BATON_WORKLOAD_WORKLOAD_H_
#define BATON_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baton/types.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace baton {
namespace workload {

/// Key generator interface.
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  virtual Key Next(Rng* rng) = 0;
};

/// Uniform keys over [lo, hi).
class UniformKeys : public KeyGenerator {
 public:
  UniformKeys(Key lo, Key hi) : lo_(lo), hi_(hi) {}
  Key Next(Rng* rng) override { return rng->UniformInt(lo_, hi_ - 1); }

 private:
  Key lo_;
  Key hi_;
};

/// Zipf-skewed keys: rank r (Zipf-distributed over `ranks` buckets) maps to
/// the r-th bucket of the domain, uniformly within the bucket. Low ranks --
/// the popular mass -- cluster at the bottom of the key space, reproducing
/// the value-skew that stresses a range-partitioned index.
class ZipfKeys : public KeyGenerator {
 public:
  ZipfKeys(Key lo, Key hi, double theta, uint64_t ranks = 1 << 20);
  Key Next(Rng* rng) override;

 private:
  Key lo_;
  Key hi_;
  uint64_t ranks_;
  ZipfGenerator zipf_;
};

/// A recorded operation stream.
enum class OpType : uint8_t {
  kInsert,
  kDelete,
  kExact,
  kRange,
  kJoin,
  kLeave,
  kFail,  // abrupt failure of a random peer (churn traces)
  /// Correlated region outage: `key_hi` consecutive members (canonical
  /// key-space order, anchored at a random member) fail *together* before
  /// recovery runs once -- a subtree / rack going dark, not independent
  /// churn. Requires kFailRecovery.
  kFailRegion,
  kNumOpTypes,  // sentinel
};

inline constexpr int kNumOpTypes = static_cast<int>(OpType::kNumOpTypes);
struct Op {
  OpType type;
  Key key = 0;
  Key key_hi = 0;  // for range queries
};

/// A recorded operation stream, replayable against any overlay backend
/// (see workload/replay.h).
using Trace = std::vector<Op>;

/// Builds a mixed operation trace with the given counts, shuffled.
std::vector<Op> MakeMixedTrace(Rng* rng, KeyGenerator* gen, size_t inserts,
                               size_t deletes, size_t exacts, size_t ranges,
                               Key range_width);

/// Operation mix for a churn trace (the durability experiments).
struct ChurnMix {
  size_t joins = 0;
  size_t leaves = 0;
  size_t failures = 0;  // each kFail op crashes one random live peer
  size_t inserts = 0;
  size_t exacts = 0;
  size_t ranges = 0;       // range queries of width range_width
  Key range_width = 0;
};

/// Builds a shuffled membership-churn trace: joins, graceful leaves, abrupt
/// failures and index traffic interleaved. Key-less ops (join/leave/fail)
/// carry key == 0; the driver picks the affected peer.
std::vector<Op> MakeChurnTrace(Rng* rng, KeyGenerator* gen,
                               const ChurnMix& mix);

/// Operation mix for a correlated-failure trace: like ChurnMix, but the
/// failure events are whole-region outages (kFailRegion) instead of
/// independent single-node crashes -- the scenario ROADMAP item 4 calls
/// "whole subtrees at once, like region outages", and the fault plans'
/// AddOutage windows made measurable at the membership level.
struct CorrelatedFailMix {
  size_t bursts = 0;       // correlated outage events
  size_t burst_width = 4;  // consecutive canonical-order members per event
  size_t joins = 0;
  size_t inserts = 0;
  size_t exacts = 0;
  size_t ranges = 0;  // range queries of width range_width
  Key range_width = 0;
};

/// Builds a shuffled correlated-failure trace (Fig 8-style churn where
/// failures arrive in spatially-correlated bursts). Replayable like any
/// other trace; backends without kFailRecovery count the bursts as
/// unsupported, exactly like kFail.
std::vector<Op> MakeCorrelatedFailTrace(Rng* rng, KeyGenerator* gen,
                                        const CorrelatedFailMix& mix);

}  // namespace workload
}  // namespace baton

#endif  // BATON_WORKLOAD_WORKLOAD_H_
