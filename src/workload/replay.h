// workload::Replay: drive ANY overlay backend through a recorded operation
// trace and aggregate per-operation OpStats. This is the overlay-generic
// driver the comparison benches and the cross-backend differential tests
// are built on: one trace, N backends, comparable numbers.
//
// Replay draws exactly one rng value per trace op (origin / contact /
// victim selection), before any capability check, so two backends replaying
// the same trace with equal-seeded rngs see identical random streams even
// when one of them skips unsupported ops. That is what makes answer sets
// directly comparable across backends.
#ifndef BATON_WORKLOAD_REPLAY_H_
#define BATON_WORKLOAD_REPLAY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "net/network.h"
#include "obs/log_histogram.h"
#include "overlay/overlay.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace baton {
namespace workload {

struct ReplayOptions {
  /// Leaves/failures are skipped while the overlay has at most this many
  /// members (a trace must not shrink the overlay away underneath itself).
  size_t min_members = 4;
  /// Run RecoverAllFailures after every kFail (single-failure traces); the
  /// recovery messages are charged to the kFail aggregate.
  bool recover_failures = true;
  /// Record per-query answers (found bits, range match counts) for
  /// cross-backend differential comparison.
  bool record_answers = false;
};

/// Per-OpType aggregate of the OpStats the overlay reported.
struct OpAggregate {
  uint64_t count = 0;        // ops executed (excluding skipped/unsupported)
  uint64_t ok = 0;           // ops that returned OK
  uint64_t found = 0;        // searches that found stored keys
  uint64_t skipped = 0;      // guarded by min_members
  uint64_t unsupported = 0;  // backend lacks the capability
  uint64_t messages = 0;     // total OpStats::messages
  uint64_t hops = 0;         // total OpStats::hops (negative hops clamp to 0)
  uint64_t latency = 0;      // total OpStats::latency_ticks

  // Resilience outcomes (all zero without a fault plan attached).
  uint64_t retries = 0;       // total OpStats::retries
  uint64_t timeouts = 0;      // total OpStats::timeouts
  uint64_t gave_up = 0;       // ops that exhausted the retry budget
  uint64_t degraded = 0;      // ops that completed by absorbing faults
  uint64_t dropped_msgs = 0;  // total messages lost across ops

  /// Full distributions behind the totals (one sample per executed op), so
  /// replays report tail behaviour -- p50/p90/p99 -- not just means.
  /// Log-bucketed and mergeable across seeds/tasks; empty for an OpType the
  /// trace never executed (quantiles then read 0, like the means).
  obs::LogHistogram hops_hist;
  obs::LogHistogram messages_hist;
  obs::LogHistogram latency_hist;

  /// Folds one executed op's stats into the aggregate (counts, totals and
  /// histograms; negative hops sentinels clamp to 0). Callers that track
  /// trace-wide totals (Replay, the serving engine) add messages/latency to
  /// those themselves.
  void Accumulate(const overlay::OpStats& st);

  /// Combines another aggregate into this one (cross-seed bench rollups).
  void Merge(const OpAggregate& other);

  double MeanMessages() const {
    return count == 0 ? 0.0
                      : static_cast<double>(messages) /
                            static_cast<double>(count);
  }
  double MeanHops() const {
    return count == 0 ? 0.0
                      : static_cast<double>(hops) / static_cast<double>(count);
  }
  /// Mean simulated critical-path ticks per op (0 unless the overlay had a
  /// latency model attached during the replay).
  ///
  /// All Mean*/quantile accessors are total functions: a zero-op aggregate
  /// (e.g. an OpType that was entirely capability-filtered) reads as 0
  /// everywhere, never as a division by zero.
  double MeanLatency() const {
    return count == 0
               ? 0.0
               : static_cast<double>(latency) / static_cast<double>(count);
  }
};

struct ReplayResult {
  std::array<OpAggregate, kNumOpTypes> per_op{};
  uint64_t total_messages = 0;  // sum of OpStats::messages over the trace
  uint64_t total_latency = 0;   // sum of OpStats::latency_ticks

  /// With ReplayOptions::record_answers: one entry per kExact op (was the
  /// key stored?) and per kRange op (stored keys in the range), in trace
  /// order. Two backends holding the same key set must produce identical
  /// vectors -- the differential-test contract.
  std::vector<bool> exact_found;
  std::vector<uint64_t> range_matches;

  const OpAggregate& of(OpType t) const {
    return per_op[static_cast<size_t>(t)];
  }
};

/// Outcome of driving one trace op through an overlay via ApplyOp.
struct AppliedOp {
  /// What happened to the op, mirroring the OpAggregate bookkeeping:
  /// kExecuted ops carry `stats`; kSkipped ops were guarded by
  /// ReplayOptions::min_members; kUnsupported ops hit a capability gate.
  enum class Disposition : uint8_t { kExecuted, kSkipped, kUnsupported };
  Disposition disposition = Disposition::kExecuted;
  overlay::OpStats stats;

  bool executed() const { return disposition == Disposition::kExecuted; }
};

/// Executes ONE trace op against `ov` with Replay's exact semantics: one
/// rng draw before any capability/guard check (cross-backend stream
/// alignment), min_members guards on kLeave/kFail, RecoverAllFailures
/// folded into kFail when opts.recover_failures, and `members` maintained
/// across membership changes. Replay is a loop over this function; the
/// serving engine admits ops through it one event at a time -- sharing the
/// implementation is what makes the engine's closed-loop mode match Replay
/// aggregates exactly, by construction.
AppliedOp ApplyOp(overlay::Overlay& ov, const Op& op, Rng* rng,
                  std::vector<net::PeerId>* members,
                  const ReplayOptions& opts);

/// Replays `trace` against `ov`, picking op origins/contacts/victims from
/// `members` via `rng` and maintaining `members` across membership changes
/// (joiners appended, leavers/victims erased) -- the same bookkeeping every
/// hand-wired bench loop used to carry.
ReplayResult Replay(overlay::Overlay& ov, const Trace& trace, Rng* rng,
                    std::vector<net::PeerId>* members,
                    const ReplayOptions& opts = {});

}  // namespace workload
}  // namespace baton

#endif  // BATON_WORKLOAD_REPLAY_H_
