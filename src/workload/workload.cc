#include "workload/workload.h"

#include <algorithm>

#include "util/check.h"

namespace baton {
namespace workload {

ZipfKeys::ZipfKeys(Key lo, Key hi, double theta, uint64_t ranks)
    : lo_(lo), hi_(hi), ranks_(ranks), zipf_(ranks, theta) {
  BATON_CHECK_LT(lo, hi);
  BATON_CHECK_GE(static_cast<uint64_t>(hi - lo), ranks);
}

Key ZipfKeys::Next(Rng* rng) {
  uint64_t rank = zipf_.Sample(rng) - 1;  // 0-based bucket
  Key bucket_width = (hi_ - lo_) / static_cast<Key>(ranks_);
  Key base = lo_ + static_cast<Key>(rank) * bucket_width;
  return base + rng->UniformInt(0, bucket_width - 1);
}

std::vector<Op> MakeMixedTrace(Rng* rng, KeyGenerator* gen, size_t inserts,
                               size_t deletes, size_t exacts, size_t ranges,
                               Key range_width) {
  std::vector<Op> trace;
  trace.reserve(inserts + deletes + exacts + ranges);
  for (size_t i = 0; i < inserts; ++i) {
    trace.push_back(Op{OpType::kInsert, gen->Next(rng), 0});
  }
  for (size_t i = 0; i < deletes; ++i) {
    trace.push_back(Op{OpType::kDelete, gen->Next(rng), 0});
  }
  for (size_t i = 0; i < exacts; ++i) {
    trace.push_back(Op{OpType::kExact, gen->Next(rng), 0});
  }
  for (size_t i = 0; i < ranges; ++i) {
    Key lo = gen->Next(rng);
    trace.push_back(Op{OpType::kRange, lo, lo + range_width});
  }
  rng->Shuffle(&trace);
  return trace;
}

std::vector<Op> MakeChurnTrace(Rng* rng, KeyGenerator* gen,
                               const ChurnMix& mix) {
  std::vector<Op> trace;
  trace.reserve(mix.joins + mix.leaves + mix.failures + mix.inserts +
                mix.exacts + mix.ranges);
  for (size_t i = 0; i < mix.joins; ++i) {
    trace.push_back(Op{OpType::kJoin, 0, 0});
  }
  for (size_t i = 0; i < mix.leaves; ++i) {
    trace.push_back(Op{OpType::kLeave, 0, 0});
  }
  for (size_t i = 0; i < mix.failures; ++i) {
    trace.push_back(Op{OpType::kFail, 0, 0});
  }
  for (size_t i = 0; i < mix.inserts; ++i) {
    trace.push_back(Op{OpType::kInsert, gen->Next(rng), 0});
  }
  for (size_t i = 0; i < mix.exacts; ++i) {
    trace.push_back(Op{OpType::kExact, gen->Next(rng), 0});
  }
  for (size_t i = 0; i < mix.ranges; ++i) {
    Key lo = gen->Next(rng);
    trace.push_back(Op{OpType::kRange, lo, lo + mix.range_width});
  }
  rng->Shuffle(&trace);
  return trace;
}

std::vector<Op> MakeCorrelatedFailTrace(Rng* rng, KeyGenerator* gen,
                                        const CorrelatedFailMix& mix) {
  BATON_CHECK_GT(mix.burst_width, 0u);
  std::vector<Op> trace;
  trace.reserve(mix.bursts + mix.joins + mix.inserts + mix.exacts +
                mix.ranges);
  for (size_t i = 0; i < mix.bursts; ++i) {
    trace.push_back(
        Op{OpType::kFailRegion, 0, static_cast<Key>(mix.burst_width)});
  }
  for (size_t i = 0; i < mix.joins; ++i) {
    trace.push_back(Op{OpType::kJoin, 0, 0});
  }
  for (size_t i = 0; i < mix.inserts; ++i) {
    trace.push_back(Op{OpType::kInsert, gen->Next(rng), 0});
  }
  for (size_t i = 0; i < mix.exacts; ++i) {
    trace.push_back(Op{OpType::kExact, gen->Next(rng), 0});
  }
  for (size_t i = 0; i < mix.ranges; ++i) {
    Key lo = gen->Next(rng);
    trace.push_back(Op{OpType::kRange, lo, lo + mix.range_width});
  }
  rng->Shuffle(&trace);
  return trace;
}

}  // namespace workload
}  // namespace baton
