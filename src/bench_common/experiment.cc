#include "bench_common/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace baton {
namespace bench {

namespace {

std::vector<size_t> ParseSizes(const char* arg) {
  std::vector<size_t> out;
  size_t cur = 0;
  bool any = false;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      cur = cur * 10 + static_cast<size_t>(*p - '0');
      any = true;
    } else if (*p == ',' || *p == '\0') {
      if (any) out.push_back(cur);
      cur = 0;
      any = false;
      if (*p == '\0') break;
    } else {
      std::fprintf(stderr, "bad --sizes value: %s\n", arg);
      std::exit(2);
    }
  }
  return out;
}

}  // namespace

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--paper_scale") == 0) {
      opt.keys_per_node = 1000;
      opt.seeds = 10;
      opt.sizes = {1000, 2000, 4000, 6000, 8000, 10000};
    } else if (std::strcmp(a, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strncmp(a, "--seeds=", 8) == 0) {
      opt.seeds = std::atoi(a + 8);
    } else if (std::strncmp(a, "--keys=", 7) == 0) {
      opt.keys_per_node = static_cast<size_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      opt.queries = std::atoi(a + 10);
    } else if (std::strncmp(a, "--sizes=", 8) == 0) {
      opt.sizes = ParseSizes(a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      opt.base_seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --paper_scale --csv --seeds=N "
                   "--keys=N --queries=N --sizes=a,b,c --seed=S\n",
                   a);
      std::exit(2);
    }
  }
  return opt;
}

BatonConfig BalancedConfig() {
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_factor = 2.2;
  return cfg;
}

BatonConfig ReplicatedConfig(int r) {
  BatonConfig cfg = BalancedConfig();
  cfg.replication.factor = r;
  return cfg;
}

BatonInstance BuildBaton(size_t n, uint64_t seed, BatonConfig cfg,
                         size_t keys_per_node,
                         workload::KeyGenerator* preload) {
  // "For a network of size N, 1000 x N data values ... are inserted in
  // batches": joins and insert batches interleave, so load balancing (when
  // enabled in cfg) keeps per-node loads -- and therefore ranges -- matched
  // to the data distribution as the overlay grows.
  BatonInstance bi;
  bi.net = std::make_unique<net::Network>();
  bi.overlay = std::make_unique<BatonNetwork>(cfg, bi.net.get(), seed);
  Rng rng(Mix64(seed ^ 0xba70));
  bi.members.push_back(bi.overlay->Bootstrap());
  auto insert_batch = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      net::PeerId from = bi.members[rng.NextBelow(bi.members.size())];
      Status s = bi.overlay->Insert(from, preload->Next(&rng));
      BATON_CHECK(s.ok()) << s.ToString();
    }
  };
  if (preload != nullptr) insert_batch(keys_per_node);
  for (size_t i = 1; i < n; ++i) {
    net::PeerId contact = bi.members[rng.NextBelow(bi.members.size())];
    auto joined = bi.overlay->Join(contact);
    BATON_CHECK(joined.ok()) << joined.status().ToString();
    bi.members.push_back(joined.value());
    if (preload != nullptr) insert_batch(keys_per_node);
  }
  return bi;
}

void LoadBaton(BatonInstance* bi, size_t keys_per_node,
               workload::KeyGenerator* gen, Rng* rng) {
  size_t total = keys_per_node * bi->overlay->size();
  for (size_t i = 0; i < total; ++i) {
    net::PeerId from = bi->members[rng->NextBelow(bi->members.size())];
    Status s = bi->overlay->Insert(from, gen->Next(rng));
    BATON_CHECK(s.ok()) << s.ToString();
  }
}

ChordInstance BuildChord(size_t n, uint64_t seed) {
  ChordInstance ci;
  ci.net = std::make_unique<net::Network>();
  ci.ring = std::make_unique<chord::ChordNetwork>(ci.net.get(), seed);
  Rng rng(Mix64(seed ^ 0xc08d));
  ci.members.push_back(ci.ring->Bootstrap());
  for (size_t i = 1; i < n; ++i) {
    net::PeerId contact = ci.members[rng.NextBelow(ci.members.size())];
    auto joined = ci.ring->Join(contact);
    BATON_CHECK(joined.ok()) << joined.status().ToString();
    ci.members.push_back(joined.value());
  }
  return ci;
}

void LoadChord(ChordInstance* ci, size_t keys_per_node,
               workload::KeyGenerator* gen, Rng* rng) {
  size_t total = keys_per_node * ci->ring->size();
  for (size_t i = 0; i < total; ++i) {
    net::PeerId from = ci->members[rng->NextBelow(ci->members.size())];
    Status s = ci->ring->Insert(from, gen->Next(rng));
    BATON_CHECK(s.ok()) << s.ToString();
  }
}

MultiwayInstance BuildMultiway(size_t n, uint64_t seed, int fanout,
                               size_t keys_per_node,
                               workload::KeyGenerator* preload) {
  MultiwayInstance mi;
  mi.net = std::make_unique<net::Network>();
  multiway::MultiwayConfig cfg;
  cfg.max_fanout = fanout;
  mi.tree = std::make_unique<multiway::MultiwayNetwork>(cfg, mi.net.get(),
                                                        seed);
  Rng rng(Mix64(seed ^ 0x3712));
  mi.members.push_back(mi.tree->Bootstrap());
  auto insert_batch = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      net::PeerId from = mi.members[rng.NextBelow(mi.members.size())];
      Status s = mi.tree->Insert(from, preload->Next(&rng));
      BATON_CHECK(s.ok()) << s.ToString();
    }
  };
  if (preload != nullptr) insert_batch(keys_per_node);
  for (size_t i = 1; i < n; ++i) {
    net::PeerId contact = mi.members[rng.NextBelow(mi.members.size())];
    auto joined = mi.tree->Join(contact);
    BATON_CHECK(joined.ok()) << joined.status().ToString();
    mi.members.push_back(joined.value());
    if (preload != nullptr) insert_batch(keys_per_node);
  }
  return mi;
}

void LoadMultiway(MultiwayInstance* mi, size_t keys_per_node,
                  workload::KeyGenerator* gen, Rng* rng) {
  size_t total = keys_per_node * mi->tree->size();
  for (size_t i = 0; i < total; ++i) {
    net::PeerId from = mi->members[rng->NextBelow(mi->members.size())];
    Status s = mi->tree->Insert(from, gen->Next(rng));
    BATON_CHECK(s.ok()) << s.ToString();
  }
}

uint64_t SumTypes(const net::CounterSnapshot& before,
                  const net::CounterSnapshot& after,
                  std::initializer_list<net::MsgType> types) {
  uint64_t sum = 0;
  for (net::MsgType t : types) {
    sum += net::Network::DeltaOfType(before, after, t);
  }
  return sum;
}

uint64_t MaintenanceDelta(const net::CounterSnapshot& before,
                          const net::CounterSnapshot& after) {
  return CategoryDelta(before, after, net::MsgCategory::kMaintenance);
}

uint64_t CategoryDelta(const net::CounterSnapshot& before,
                       const net::CounterSnapshot& after,
                       net::MsgCategory category) {
  uint64_t sum = 0;
  for (int i = 0; i < net::kNumMsgTypes; ++i) {
    auto t = static_cast<net::MsgType>(i);
    if (net::CategoryOf(t) == category) {
      sum += net::Network::DeltaOfType(before, after, t);
    }
  }
  return sum;
}

void Emit(const std::string& title, const TablePrinter& table, bool csv) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToText().c_str());
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace baton
