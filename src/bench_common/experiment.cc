#include "bench_common/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace baton {
namespace bench {

namespace {

std::vector<size_t> ParseSizes(const char* arg) {
  std::vector<size_t> out;
  size_t cur = 0;
  bool any = false;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      cur = cur * 10 + static_cast<size_t>(*p - '0');
      any = true;
    } else if (*p == ',' || *p == '\0') {
      if (any) out.push_back(cur);
      cur = 0;
      any = false;
      if (*p == '\0') break;
    } else {
      std::fprintf(stderr, "bad --sizes value: %s\n", arg);
      std::exit(2);
    }
  }
  return out;
}

std::vector<std::string> SplitNames(const char* arg) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur += *p;
    }
  }
  return out;
}

std::string JoinedRegisteredNames() {
  std::string joined;
  for (const std::string& name : overlay::RegisteredNames()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s [flags]\n"
      "  --paper_scale         paper setup: N=1000..10000, 1000 keys/node, "
      "10 seeds\n"
      "  --csv                 machine-readable CSV tables\n"
      "  --sizes=a,b,c         network sizes to sweep\n"
      "  --seeds=N             seeds (independent runs) per point\n"
      "  --keys=N              keys per node\n"
      "  --queries=N           queries/operations per point\n"
      "  --seed=S              base RNG seed\n"
      "  --overlay=name[,...]  backends to run (registered: %s)\n"
      "  --latency=MODEL       link latency: const:N or uniform:LO,HI "
      "(ticks);\n"
      "                        enables simulated per-op latency reporting\n"
      "  --help                print this message and exit\n",
      argv0, JoinedRegisteredNames().c_str());
}

}  // namespace

LatencySpec ParseLatencySpec(const char* arg) {
  LatencySpec spec;
  auto bad = [&]() {
    std::fprintf(stderr,
                 "bad --latency value '%s' (want const:N or uniform:LO,HI "
                 "with LO <= HI)\n",
                 arg);
    std::exit(2);
  };
  auto parse_ticks = [&](const char** p) {
    if (**p < '0' || **p > '9') bad();
    sim::Time v = 0;
    while (**p >= '0' && **p <= '9') {
      v = v * 10 + static_cast<sim::Time>(**p - '0');
      ++*p;
    }
    return v;
  };
  const char* p = arg;
  if (std::strncmp(p, "const:", 6) == 0) {
    p += 6;
    spec.kind = LatencySpec::Kind::kConst;
    spec.lo = spec.hi = parse_ticks(&p);
  } else if (std::strncmp(p, "uniform:", 8) == 0) {
    p += 8;
    spec.kind = LatencySpec::Kind::kUniform;
    spec.lo = parse_ticks(&p);
    if (*p != ',') bad();
    ++p;
    spec.hi = parse_ticks(&p);
    if (spec.hi < spec.lo) bad();
  } else {
    bad();
  }
  if (*p != '\0') bad();
  return spec;
}

std::unique_ptr<sim::LatencyModel> MakeLatencyModel(const LatencySpec& spec) {
  switch (spec.kind) {
    case LatencySpec::Kind::kNone:
      return nullptr;
    case LatencySpec::Kind::kConst:
      return std::make_unique<sim::ConstantLatency>(spec.lo);
    case LatencySpec::Kind::kUniform:
      return std::make_unique<sim::UniformLatency>(spec.lo, spec.hi);
  }
  return nullptr;
}

void AttachLatency(Instance* inst, const LatencySpec& spec, uint64_t seed) {
  if (!spec.enabled()) return;
  inst->queue = std::make_unique<sim::EventQueue>();
  inst->latency = MakeLatencyModel(spec);
  inst->overlay->AttachLatency(inst->queue.get(), inst->latency.get(),
                               Mix64(seed ^ 0x11c0));
}

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--paper_scale") == 0) {
      opt.keys_per_node = 1000;
      opt.seeds = 10;
      opt.sizes = {1000, 2000, 4000, 6000, 8000, 10000};
    } else if (std::strcmp(a, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strcmp(a, "--help") == 0) {
      PrintUsage(stdout, argv[0]);
      std::exit(0);
    } else if (std::strncmp(a, "--seeds=", 8) == 0) {
      opt.seeds = std::atoi(a + 8);
    } else if (std::strncmp(a, "--keys=", 7) == 0) {
      opt.keys_per_node = static_cast<size_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      opt.queries = std::atoi(a + 10);
    } else if (std::strncmp(a, "--sizes=", 8) == 0) {
      opt.sizes = ParseSizes(a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      opt.base_seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--latency=", 10) == 0) {
      opt.latency = ParseLatencySpec(a + 10);
    } else if (std::strncmp(a, "--overlay=", 10) == 0) {
      opt.overlays = SplitNames(a + 10);
      if (opt.overlays.empty()) {
        std::fprintf(stderr, "--overlay needs at least one backend name\n");
        std::exit(2);
      }
      for (const std::string& name : opt.overlays) {
        if (!overlay::IsRegistered(name)) {
          std::fprintf(stderr,
                       "unknown overlay backend '%s' (registered: %s)\n",
                       name.c_str(), JoinedRegisteredNames().c_str());
          std::exit(2);
        }
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a);
      PrintUsage(stderr, argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

std::vector<std::string> SelectedOverlays(const Options& opt) {
  return opt.overlays.empty() ? overlay::RegisteredNames() : opt.overlays;
}

BatonConfig BalancedConfig() {
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_factor = 2.2;
  return cfg;
}

BatonConfig ReplicatedConfig(int r) {
  BatonConfig cfg = BalancedConfig();
  cfg.replication.factor = r;
  return cfg;
}

overlay::Config BalancedOverlayConfig() {
  overlay::Config cfg;
  cfg.baton = BalancedConfig();
  return cfg;
}

Instance BuildOverlay(const std::string& name, size_t n, uint64_t seed,
                      const overlay::Config& cfg, size_t keys_per_node,
                      workload::KeyGenerator* preload) {
  // "For a network of size N, 1000 x N data values ... are inserted in
  // batches": joins and insert batches interleave, so order-preserving
  // backends keep per-node loads -- and therefore ranges -- matched to the
  // data distribution as the overlay grows.
  Instance inst;
  overlay::Config seeded = cfg;
  seeded.seed = seed;
  inst.overlay = overlay::Make(name, seeded);
  BATON_CHECK(inst.overlay != nullptr) << "unknown overlay backend " << name;
  Rng rng(Mix64(seed ^ inst.overlay->build_salt()));
  inst.members.push_back(inst.overlay->Bootstrap());
  auto insert_batch = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      net::PeerId from = inst.members[rng.NextBelow(inst.members.size())];
      auto st = inst.overlay->Insert(from, preload->Next(&rng));
      BATON_CHECK(st.ok()) << st.status.ToString();
    }
  };
  if (preload != nullptr) insert_batch(keys_per_node);
  for (size_t i = 1; i < n; ++i) {
    net::PeerId contact = inst.members[rng.NextBelow(inst.members.size())];
    auto joined = inst.overlay->Join(contact);
    BATON_CHECK(joined.ok()) << joined.status.ToString();
    inst.members.push_back(joined.peer);
    if (preload != nullptr) insert_batch(keys_per_node);
  }
  return inst;
}

void LoadOverlay(Instance* inst, size_t keys_per_node,
                 workload::KeyGenerator* gen, Rng* rng) {
  size_t total = keys_per_node * inst->overlay->size();
  for (size_t i = 0; i < total; ++i) {
    net::PeerId from = inst->members[rng->NextBelow(inst->members.size())];
    auto st = inst->overlay->Insert(from, gen->Next(rng));
    BATON_CHECK(st.ok()) << st.status.ToString();
  }
}

uint64_t SumTypes(const net::CounterSnapshot& before,
                  const net::CounterSnapshot& after,
                  std::initializer_list<net::MsgType> types) {
  uint64_t sum = 0;
  for (net::MsgType t : types) {
    sum += net::Network::DeltaOfType(before, after, t);
  }
  return sum;
}

uint64_t MaintenanceDelta(const net::CounterSnapshot& before,
                          const net::CounterSnapshot& after) {
  return CategoryDelta(before, after, net::MsgCategory::kMaintenance);
}

uint64_t CategoryDelta(const net::CounterSnapshot& before,
                       const net::CounterSnapshot& after,
                       net::MsgCategory category) {
  uint64_t sum = 0;
  for (int i = 0; i < net::kNumMsgTypes; ++i) {
    auto t = static_cast<net::MsgType>(i);
    if (net::CategoryOf(t) == category) {
      sum += net::Network::DeltaOfType(before, after, t);
    }
  }
  return sum;
}

void Emit(const std::string& title, const TablePrinter& table, bool csv) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToText().c_str());
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace baton
