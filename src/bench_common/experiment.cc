#include "bench_common/experiment.h"

#include <atomic>
#include <cctype>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "obs/trace.h"

namespace baton {
namespace bench {

namespace {

// ---- JSON mirror (--json=PATH) --------------------------------------------
// One JSON array per process; rows accumulate across Emit calls. The file is
// opened eagerly by SetJsonMirror (a bad path must fail before any bench
// work runs) and is kept VALID JSON after every flush: each mirror call
// seeks back over the closing "]" it wrote last time, appends its rows, and
// re-terminates the array. A CHECK abort mid-bench (which skips atexit
// handlers) therefore leaves a parseable artifact holding every row
// emitted so far.

struct JsonMirror {
  std::string path;
  std::FILE* file = nullptr;
  bool any_rows = false;
  long body_end = 0;  // offset just past the last row (before "\n]\n")
};
JsonMirror g_json;

void CloseJsonMirror() {
  if (g_json.file == nullptr) return;
  // The array terminator is already on disk; just release the handle.
  std::fclose(g_json.file);
  g_json.file = nullptr;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// True when the cell can be emitted as a JSON number verbatim (the strict
/// JSON grammar: optional minus, integer part, optional fraction/exponent).
bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
    return false;
  }
  // JSON forbids leading zeros ("007"); such cells must stay quoted or the
  // whole mirror file becomes unparseable.
  if (s[i] == '0' && i + 1 < s.size() &&
      std::isdigit(static_cast<unsigned char>(s[i + 1]))) {
    return false;
  }
  bool seen_dot = false, seen_exp = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) continue;
    if (c == '.' && !seen_dot && !seen_exp) {
      seen_dot = true;
      if (i + 1 == s.size()) return false;  // "1." is not JSON
      continue;
    }
    if ((c == 'e' || c == 'E') && !seen_exp && i + 1 < s.size()) {
      seen_exp = true;
      if (s[i + 1] == '+' || s[i + 1] == '-') ++i;
      if (i + 1 == s.size()) return false;
      continue;
    }
    return false;
  }
  return true;
}

void MirrorTableToJson(const std::string& title, const TablePrinter& table) {
  if (g_json.file == nullptr) return;
  std::fseek(g_json.file, g_json.body_end, SEEK_SET);
  const auto& headers = table.headers();
  for (const auto& row : table.rows()) {
    std::fprintf(g_json.file, "%s\n  {\"schema\": %d, \"table\": \"%s\"",
                 g_json.any_rows ? "," : "", kBenchJsonSchema,
                 JsonEscape(title).c_str());
    g_json.any_rows = true;
    for (size_t c = 0; c < headers.size() && c < row.size(); ++c) {
      if (LooksNumeric(row[c])) {
        std::fprintf(g_json.file, ", \"%s\": %s",
                     JsonEscape(headers[c]).c_str(), row[c].c_str());
      } else {
        std::fprintf(g_json.file, ", \"%s\": \"%s\"",
                     JsonEscape(headers[c]).c_str(),
                     JsonEscape(row[c]).c_str());
      }
    }
    std::fprintf(g_json.file, "}");
  }
  g_json.body_end = std::ftell(g_json.file);
  std::fprintf(g_json.file, "\n]\n");
  std::fflush(g_json.file);
}

std::vector<std::string> SplitNames(const char* arg) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur += *p;
    }
  }
  return out;
}

std::string JoinedRegisteredNames() {
  std::string joined;
  for (const std::string& name : overlay::RegisteredNames()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s [flags]\n"
      "  --paper_scale         paper setup: N=1000..10000, 1000 keys/node, "
      "10 seeds\n"
      "  --csv                 machine-readable CSV tables\n"
      "  --sizes=a,b,c         network sizes to sweep\n"
      "  --seeds=N             seeds (independent runs) per point\n"
      "  --keys=N              keys per node\n"
      "  --queries=N           queries/operations per point\n"
      "  --seed=S              base RNG seed\n"
      "  --overlay=name[,...]  backends to run (registered: %s)\n"
      "  --threads=N           worker threads for per-(backend,N,seed) "
      "tasks\n"
      "                        (default 1; 0 = hardware concurrency)\n"
      "  --list-overlays       print the registered backend names and exit\n"
      "  --latency=MODEL       link latency: const:N or uniform:LO,HI "
      "(ticks);\n"
      "                        enables simulated per-op latency reporting\n"
      "  --key-dist=D[,...]    request-key distribution(s): uniform or\n"
      "                        zipf:THETA (THETA > 0, e.g. zipf:0.9); "
      "benches\n"
      "                        that honour it run one series per entry\n"
      "  --load=f1,f2,...      offered-load sweep for bench_throughput, as\n"
      "                        fractions of calibrated capacity (default\n"
      "                        0.5,0.8,0.95,1.1,1.3)\n"
      "  --arrivals=KIND       open-loop arrival process: poisson (default)\n"
      "                        or fixed\n"
      "  --service-ticks=N     per-message node service time in ticks "
      "(>= 1;\n"
      "                        default 1; serving-engine benches)\n"
      "  --max-queue=N         per-node queue bound, arrivals past it drop\n"
      "                        the op (default 0 = unbounded)\n"
      "  --timeout-ticks=N     sojourns past N ticks count as timed out\n"
      "                        (default 0 = no deadline)\n"
      "  --stragglers=K:F      mark K nodes as stragglers with F x the\n"
      "                        global service time (serving-engine benches;\n"
      "                        default 0 = homogeneous fleet)\n"
      "  --drop=p1,p2,...      per-message drop probabilities to sweep\n"
      "                        (bench_faults; default 0.01,0.05,0.10)\n"
      "  --dup=P               per-message duplicate-delivery probability\n"
      "                        (bench_faults; default 0)\n"
      "  --retries=r1,r2,...   retry budgets to sweep (bench_faults;\n"
      "                        default 0,1,3)\n"
      "  --cache=SIZE[,k]      attach a hot-path cache: per-node route cache\n"
      "                        of SIZE entries plus a replicated fast-table\n"
      "                        of the top k tree levels (default k=2; SIZE 0\n"
      "                        leaves the cache detached; cache-aware "
      "benches)\n"
      "  --json=PATH           mirror every table into PATH as JSON rows\n"
      "  --trace=PATH          write a Chrome trace-event JSON (open in\n"
      "                        Perfetto) of every replayed op + message\n"
      "                        (observability-aware benches only)\n"
      "  --metrics=PATH        write per-task obs metrics snapshots as "
      "JSON\n"
      "                        (observability-aware benches only)\n"
      "  --help                print this message and exit\n",
      argv0, JoinedRegisteredNames().c_str());
}

/// Strict base-10 parse for numeric flags: the whole value must be digits
/// (no sign, no trailing junk), must not overflow uint64, and must land in
/// [min_value, max_value]. Anything else prints a diagnostic plus the usage
/// and exits 2 -- atoi-style parsing silently turned "--threads=-2" into a
/// negative and "--seeds=2x" into 2.
uint64_t ParseFlagUint(const char* argv0, const char* flag, const char* val,
                       uint64_t min_value, uint64_t max_value = UINT64_MAX) {
  uint64_t v = 0;
  bool ok = *val != '\0';
  for (const char* p = val; ok && *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      ok = false;
      break;
    }
    uint64_t d = static_cast<uint64_t>(*p - '0');
    if (v > (UINT64_MAX - d) / 10) {
      ok = false;  // overflow
      break;
    }
    v = v * 10 + d;
  }
  if (!ok || v < min_value || v > max_value) {
    std::fprintf(stderr,
                 "bad %s value '%s' (need an integer in [%llu, %llu])\n",
                 flag, val, static_cast<unsigned long long>(min_value),
                 static_cast<unsigned long long>(max_value));
    PrintUsage(stderr, argv0);
    std::exit(2);
  }
  return v;
}

/// Strict double parse: the whole value must be a finite number > 0.
double ParseFlagPositiveDouble(const char* argv0, const char* flag,
                               const char* val) {
  char* end = nullptr;
  double v = std::strtod(val, &end);
  if (end == val || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
    std::fprintf(stderr, "bad %s value '%s' (need a finite number > 0)\n",
                 flag, val);
    PrintUsage(stderr, argv0);
    std::exit(2);
  }
  return v;
}

std::vector<size_t> ParseSizes(const char* argv0, const char* arg) {
  std::vector<size_t> out;
  for (const std::string& piece : SplitNames(arg)) {
    out.push_back(static_cast<size_t>(
        ParseFlagUint(argv0, "--sizes", piece.c_str(), 1)));
  }
  if (out.empty()) {
    std::fprintf(stderr, "--sizes needs at least one network size\n");
    PrintUsage(stderr, argv0);
    std::exit(2);
  }
  return out;
}

std::vector<double> ParseLoads(const char* argv0, const char* arg) {
  std::vector<double> out;
  for (const std::string& piece : SplitNames(arg)) {
    out.push_back(ParseFlagPositiveDouble(argv0, "--load", piece.c_str()));
  }
  if (out.empty()) {
    std::fprintf(stderr, "--load needs at least one load fraction\n");
    PrintUsage(stderr, argv0);
    std::exit(2);
  }
  return out;
}

/// Strict probability parse: a finite number in (0, 1].
double ParseFlagProb(const char* argv0, const char* flag, const char* val) {
  double v = ParseFlagPositiveDouble(argv0, flag, val);
  if (v > 1.0) {
    std::fprintf(stderr, "bad %s value '%s' (need a probability in (0, 1])\n",
                 flag, val);
    PrintUsage(stderr, argv0);
    std::exit(2);
  }
  return v;
}

std::vector<double> ParseDropRates(const char* argv0, const char* arg) {
  std::vector<double> out;
  for (const std::string& piece : SplitNames(arg)) {
    out.push_back(ParseFlagProb(argv0, "--drop", piece.c_str()));
  }
  if (out.empty()) {
    std::fprintf(stderr, "--drop needs at least one drop probability\n");
    PrintUsage(stderr, argv0);
    std::exit(2);
  }
  return out;
}

std::vector<int> ParseRetryBudgets(const char* argv0, const char* arg) {
  std::vector<int> out;
  for (const std::string& piece : SplitNames(arg)) {
    out.push_back(static_cast<int>(
        ParseFlagUint(argv0, "--retries", piece.c_str(), 0, 64)));
  }
  if (out.empty()) {
    std::fprintf(stderr, "--retries needs at least one retry budget\n");
    PrintUsage(stderr, argv0);
    std::exit(2);
  }
  return out;
}

/// Parses --cache=SIZE[,k] (route-cache capacity, optional fast-table
/// levels) into opt.cache_capacity / opt.cache_levels.
void ParseCacheSpec(const char* argv0, const char* arg, Options* opt) {
  const char* comma = std::strchr(arg, ',');
  if (comma == nullptr) {
    opt->cache_capacity =
        static_cast<size_t>(ParseFlagUint(argv0, "--cache", arg, 0));
    return;
  }
  std::string size(arg, static_cast<size_t>(comma - arg));
  opt->cache_capacity = static_cast<size_t>(
      ParseFlagUint(argv0, "--cache", size.c_str(), 0));
  opt->cache_levels = static_cast<int>(
      ParseFlagUint(argv0, "--cache", comma + 1, 0, 16));
}

/// Parses --stragglers=K:FACTOR (K >= 0 straggler nodes, FACTOR > 1
/// service-time multiplier) into opt.stragglers / opt.straggler_factor.
void ParseStragglers(const char* argv0, const char* arg, Options* opt) {
  const char* colon = std::strchr(arg, ':');
  if (colon == nullptr) {
    std::fprintf(stderr,
                 "bad --stragglers value '%s' (want K:FACTOR, e.g. 4:8)\n",
                 arg);
    PrintUsage(stderr, argv0);
    std::exit(2);
  }
  std::string k(arg, static_cast<size_t>(colon - arg));
  opt->stragglers = static_cast<size_t>(
      ParseFlagUint(argv0, "--stragglers", k.c_str(), 0));
  opt->straggler_factor =
      ParseFlagPositiveDouble(argv0, "--stragglers", colon + 1);
  if (opt->straggler_factor <= 1.0) {
    std::fprintf(stderr,
                 "bad --stragglers factor '%s' (need a multiplier > 1)\n",
                 colon + 1);
    PrintUsage(stderr, argv0);
    std::exit(2);
  }
}

}  // namespace

LatencySpec ParseLatencySpec(const char* arg) {
  LatencySpec spec;
  auto bad = [&]() {
    std::fprintf(stderr,
                 "bad --latency value '%s' (want const:N or uniform:LO,HI "
                 "with LO <= HI)\n",
                 arg);
    std::exit(2);
  };
  auto parse_ticks = [&](const char** p) {
    if (**p < '0' || **p > '9') bad();
    sim::Time v = 0;
    while (**p >= '0' && **p <= '9') {
      v = v * 10 + static_cast<sim::Time>(**p - '0');
      ++*p;
    }
    return v;
  };
  const char* p = arg;
  if (std::strncmp(p, "const:", 6) == 0) {
    p += 6;
    spec.kind = LatencySpec::Kind::kConst;
    spec.lo = spec.hi = parse_ticks(&p);
  } else if (std::strncmp(p, "uniform:", 8) == 0) {
    p += 8;
    spec.kind = LatencySpec::Kind::kUniform;
    spec.lo = parse_ticks(&p);
    if (*p != ',') bad();
    ++p;
    spec.hi = parse_ticks(&p);
    if (spec.hi < spec.lo) bad();
  } else {
    bad();
  }
  if (*p != '\0') bad();
  return spec;
}

std::unique_ptr<sim::LatencyModel> MakeLatencyModel(const LatencySpec& spec) {
  switch (spec.kind) {
    case LatencySpec::Kind::kNone:
      return nullptr;
    case LatencySpec::Kind::kConst:
      return std::make_unique<sim::ConstantLatency>(spec.lo);
    case LatencySpec::Kind::kUniform:
      return std::make_unique<sim::UniformLatency>(spec.lo, spec.hi);
  }
  return nullptr;
}

std::string KeyDistSpec::Label() const {
  if (kind == Kind::kUniform) return "uniform";
  char buf[32];
  std::snprintf(buf, sizeof buf, "zipf:%.2g", theta);
  return buf;
}

std::vector<KeyDistSpec> ParseKeyDists(const char* arg) {
  auto bad = [&]() {
    std::fprintf(stderr,
                 "bad --key-dist value '%s' (want a comma list of uniform "
                 "or zipf:THETA with THETA > 0)\n",
                 arg);
    std::exit(2);
  };
  std::vector<KeyDistSpec> out;
  for (const std::string& name : SplitNames(arg)) {
    KeyDistSpec spec;
    if (name == "uniform") {
      // defaults
    } else if (name.rfind("zipf:", 0) == 0) {
      spec.kind = KeyDistSpec::Kind::kZipf;
      const char* t = name.c_str() + 5;
      char* end = nullptr;
      spec.theta = std::strtod(t, &end);
      if (end == t || *end != '\0' || !std::isfinite(spec.theta) ||
          spec.theta <= 0.0) {
        bad();
      }
    } else {
      bad();
    }
    out.push_back(spec);
  }
  if (out.empty()) bad();
  return out;
}

std::unique_ptr<workload::KeyGenerator> MakeKeyGenerator(
    const KeyDistSpec& spec, Key lo, Key hi) {
  switch (spec.kind) {
    case KeyDistSpec::Kind::kUniform:
      return std::make_unique<workload::UniformKeys>(lo, hi);
    case KeyDistSpec::Kind::kZipf:
      return std::make_unique<workload::ZipfKeys>(lo, hi, spec.theta);
  }
  return nullptr;
}

void AttachLatency(Instance* inst, const LatencySpec& spec, uint64_t seed) {
  if (!spec.enabled()) return;
  inst->queue = std::make_unique<sim::EventQueue>();
  inst->latency = MakeLatencyModel(spec);
  inst->overlay->AttachLatency(inst->queue.get(), inst->latency.get(),
                               Mix64(seed ^ 0x11c0));
}

void AttachObserver(Instance* inst, bool tracing) {
  inst->observer = std::make_unique<obs::Observer>(tracing);
  inst->overlay->AttachObserver(inst->observer.get());
}

void AttachCache(Instance* inst, const cache::Config& cfg) {
  if (cfg.capacity == 0) return;
  inst->cache = std::make_unique<cache::Manager>(cfg);
  inst->overlay->AttachCache(inst->cache.get());
}

void WriteObsArtifacts(const Options& opt, const std::vector<SeedTask>& tasks,
                       const std::vector<const obs::Observer*>& observers) {
  BATON_CHECK(tasks.size() == observers.size())
      << "observers must align with tasks";
  auto label = [&](size_t i) {
    return tasks[i].overlay + " N=" + std::to_string(tasks[i].n) +
           " seed=" + std::to_string(tasks[i].seed);
  };
  if (!opt.trace_path.empty()) {
    std::vector<obs::TraceProcess> procs;
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (observers[i] == nullptr || observers[i]->trace() == nullptr) {
        continue;
      }
      procs.push_back({label(i), observers[i]->trace()});
    }
    std::ofstream out(opt.trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot open --trace file %s\n",
                   opt.trace_path.c_str());
      std::exit(2);
    }
    obs::WriteChromeTrace(out, procs);
    std::printf("wrote trace (%zu processes) to %s\n", procs.size(),
                opt.trace_path.c_str());
  }
  if (!opt.metrics_path.empty()) {
    std::ofstream out(opt.metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open --metrics file %s\n",
                   opt.metrics_path.c_str());
      std::exit(2);
    }
    out << "[";
    bool any = false;
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (observers[i] == nullptr) continue;
      out << (any ? "," : "") << "\n  {\"schema\": " << kBenchJsonSchema
          << ", \"overlay\": \"" << JsonEscape(tasks[i].overlay)
          << "\", \"N\": " << tasks[i].n << ", \"seed\": " << tasks[i].seed
          << ", \"metrics\": ";
      observers[i]->metrics().AppendJson(out);
      out << "}";
      any = true;
    }
    out << "\n]\n";
    std::printf("wrote metrics snapshots to %s\n", opt.metrics_path.c_str());
  }
}

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--paper_scale") == 0) {
      opt.keys_per_node = 1000;
      opt.seeds = 10;
      opt.sizes = {1000, 2000, 4000, 6000, 8000, 10000};
    } else if (std::strcmp(a, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strcmp(a, "--help") == 0) {
      PrintUsage(stdout, argv[0]);
      std::exit(0);
    } else if (std::strcmp(a, "--list-overlays") == 0) {
      for (const std::string& name : overlay::RegisteredNames()) {
        std::printf("%s\n", name.c_str());
      }
      std::exit(0);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      opt.threads = static_cast<int>(
          ParseFlagUint(argv[0], "--threads", a + 10, 0, INT_MAX));
    } else if (std::strncmp(a, "--seeds=", 8) == 0) {
      opt.seeds = static_cast<int>(
          ParseFlagUint(argv[0], "--seeds", a + 8, 1, INT_MAX));
    } else if (std::strncmp(a, "--keys=", 7) == 0) {
      opt.keys_per_node =
          static_cast<size_t>(ParseFlagUint(argv[0], "--keys", a + 7, 0));
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      opt.queries = static_cast<int>(
          ParseFlagUint(argv[0], "--queries", a + 10, 0, INT_MAX));
    } else if (std::strncmp(a, "--sizes=", 8) == 0) {
      opt.sizes = ParseSizes(argv[0], a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      opt.base_seed = ParseFlagUint(argv[0], "--seed", a + 7, 0);
    } else if (std::strncmp(a, "--latency=", 10) == 0) {
      opt.latency = ParseLatencySpec(a + 10);
    } else if (std::strncmp(a, "--key-dist=", 11) == 0) {
      opt.key_dists = ParseKeyDists(a + 11);
    } else if (std::strncmp(a, "--load=", 7) == 0) {
      opt.loads = ParseLoads(argv[0], a + 7);
    } else if (std::strncmp(a, "--arrivals=", 11) == 0) {
      opt.arrivals = a + 11;
      if (opt.arrivals != "poisson" && opt.arrivals != "fixed") {
        std::fprintf(stderr,
                     "bad --arrivals value '%s' (want poisson or fixed)\n",
                     opt.arrivals.c_str());
        std::exit(2);
      }
    } else if (std::strncmp(a, "--service-ticks=", 16) == 0) {
      opt.service_ticks =
          ParseFlagUint(argv[0], "--service-ticks", a + 16, 1);
    } else if (std::strncmp(a, "--max-queue=", 12) == 0) {
      opt.max_queue = ParseFlagUint(argv[0], "--max-queue", a + 12, 0);
    } else if (std::strncmp(a, "--timeout-ticks=", 16) == 0) {
      opt.timeout_ticks =
          ParseFlagUint(argv[0], "--timeout-ticks", a + 16, 0);
    } else if (std::strncmp(a, "--stragglers=", 13) == 0) {
      ParseStragglers(argv[0], a + 13, &opt);
    } else if (std::strncmp(a, "--drop=", 7) == 0) {
      opt.drop_rates = ParseDropRates(argv[0], a + 7);
    } else if (std::strncmp(a, "--dup=", 6) == 0) {
      opt.dup_rate = ParseFlagProb(argv[0], "--dup", a + 6);
    } else if (std::strncmp(a, "--retries=", 10) == 0) {
      opt.retry_budgets = ParseRetryBudgets(argv[0], a + 10);
    } else if (std::strncmp(a, "--cache=", 8) == 0) {
      ParseCacheSpec(argv[0], a + 8, &opt);
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      opt.trace_path = a + 8;
      if (opt.trace_path.empty()) {
        std::fprintf(stderr, "--trace needs a file path\n");
        std::exit(2);
      }
    } else if (std::strncmp(a, "--metrics=", 10) == 0) {
      opt.metrics_path = a + 10;
      if (opt.metrics_path.empty()) {
        std::fprintf(stderr, "--metrics needs a file path\n");
        std::exit(2);
      }
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      // Last occurrence wins, like every other repeatable flag; the mirror
      // is opened once, after the loop.
      opt.json_path = a + 7;
      if (opt.json_path.empty()) {
        std::fprintf(stderr, "--json needs a file path\n");
        std::exit(2);
      }
    } else if (std::strncmp(a, "--overlay=", 10) == 0) {
      opt.overlays = SplitNames(a + 10);
      if (opt.overlays.empty()) {
        std::fprintf(stderr, "--overlay needs at least one backend name\n");
        std::exit(2);
      }
      for (const std::string& name : opt.overlays) {
        if (!overlay::IsRegistered(name)) {
          std::fprintf(stderr,
                       "unknown overlay backend '%s' (registered: %s)\n",
                       name.c_str(), JoinedRegisteredNames().c_str());
          std::exit(2);
        }
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a);
      PrintUsage(stderr, argv[0]);
      std::exit(2);
    }
  }
  if (!opt.json_path.empty()) SetJsonMirror(opt.json_path);
  return opt;
}

std::vector<std::string> SelectedOverlays(const Options& opt) {
  return opt.overlays.empty() ? overlay::RegisteredNames() : opt.overlays;
}

std::vector<SeedTask> SizeMajorTasks(
    const Options& opt, const std::vector<std::string>& overlays) {
  std::vector<SeedTask> tasks;
  tasks.reserve(opt.sizes.size() * overlays.size() *
                static_cast<size_t>(opt.seeds));
  for (size_t n : opt.sizes) {
    for (const std::string& name : overlays) {
      for (int s = 0; s < opt.seeds; ++s) tasks.push_back({name, n, s});
    }
  }
  return tasks;
}

std::vector<SeedTask> BackendMajorTasks(
    const Options& opt, const std::vector<std::string>& overlays) {
  std::vector<SeedTask> tasks;
  tasks.reserve(opt.sizes.size() * overlays.size() *
                static_cast<size_t>(opt.seeds));
  for (const std::string& name : overlays) {
    for (size_t n : opt.sizes) {
      for (int s = 0; s < opt.seeds; ++s) tasks.push_back({name, n, s});
    }
  }
  return tasks;
}

void ParallelFor(size_t count, int threads,
                 const std::function<void(size_t)>& fn) {
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  size_t workers = std::min(count, static_cast<size_t>(std::max(threads, 1)));
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Atomic work cursor instead of static partitioning: tasks (per-seed
  // overlay builds + replays) have wildly different costs across backends
  // and sizes, so early-finishing workers steal the tail.
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&next, count, &fn]() {
      for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

BatonConfig BalancedConfig() {
  BatonConfig cfg;
  cfg.enable_load_balance = true;
  cfg.overload_factor = 2.2;
  return cfg;
}

BatonConfig ReplicatedConfig(int r) {
  BatonConfig cfg = BalancedConfig();
  cfg.replication.factor = r;
  return cfg;
}

overlay::Config BalancedOverlayConfig() {
  overlay::Config cfg;
  cfg.baton = BalancedConfig();
  return cfg;
}

Instance BuildOverlay(const std::string& name, size_t n, uint64_t seed,
                      const overlay::Config& cfg, size_t keys_per_node,
                      workload::KeyGenerator* preload) {
  // "For a network of size N, 1000 x N data values ... are inserted in
  // batches": joins and insert batches interleave, so order-preserving
  // backends keep per-node loads -- and therefore ranges -- matched to the
  // data distribution as the overlay grows.
  Instance inst;
  overlay::Config seeded = cfg;
  seeded.seed = seed;
  inst.overlay = overlay::Make(name, seeded);
  BATON_CHECK(inst.overlay != nullptr) << "unknown overlay backend " << name;
  Rng rng(Mix64(seed ^ inst.overlay->build_salt()));
  inst.members.push_back(inst.overlay->Bootstrap());
  auto insert_batch = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      net::PeerId from = inst.members[rng.NextBelow(inst.members.size())];
      auto st = inst.overlay->Insert(from, preload->Next(&rng));
      BATON_CHECK(st.ok()) << st.status.ToString();
    }
  };
  if (preload != nullptr) insert_batch(keys_per_node);
  for (size_t i = 1; i < n; ++i) {
    net::PeerId contact = inst.members[rng.NextBelow(inst.members.size())];
    auto joined = inst.overlay->Join(contact);
    BATON_CHECK(joined.ok()) << joined.status.ToString();
    inst.members.push_back(joined.peer);
    if (preload != nullptr) insert_batch(keys_per_node);
  }
  return inst;
}

void LoadOverlay(Instance* inst, size_t keys_per_node,
                 workload::KeyGenerator* gen, Rng* rng) {
  size_t total = keys_per_node * inst->overlay->size();
  for (size_t i = 0; i < total; ++i) {
    net::PeerId from = inst->members[rng->NextBelow(inst->members.size())];
    auto st = inst->overlay->Insert(from, gen->Next(rng));
    BATON_CHECK(st.ok()) << st.status.ToString();
  }
}

uint64_t SumTypes(const net::CounterSnapshot& before,
                  const net::CounterSnapshot& after,
                  std::initializer_list<net::MsgType> types) {
  uint64_t sum = 0;
  for (net::MsgType t : types) {
    sum += net::Network::DeltaOfType(before, after, t);
  }
  return sum;
}

uint64_t MaintenanceDelta(const net::CounterSnapshot& before,
                          const net::CounterSnapshot& after) {
  return CategoryDelta(before, after, net::MsgCategory::kMaintenance);
}

uint64_t CategoryDelta(const net::CounterSnapshot& before,
                       const net::CounterSnapshot& after,
                       net::MsgCategory category) {
  uint64_t sum = 0;
  for (int i = 0; i < net::kNumMsgTypes; ++i) {
    auto t = static_cast<net::MsgType>(i);
    if (net::CategoryOf(t) == category) {
      sum += net::Network::DeltaOfType(before, after, t);
    }
  }
  return sum;
}

void SetJsonMirror(const std::string& path) {
  BATON_CHECK(g_json.file == nullptr)
      << "JSON mirror cannot be re-pointed once open";
  // Open eagerly: an unwritable path must fail at flag-parse time, not
  // after a multi-minute sweep has already run.
  g_json.path = path;
  g_json.file = std::fopen(path.c_str(), "w");
  if (g_json.file == nullptr) {
    std::fprintf(stderr, "cannot open --json file %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(g_json.file, "[");
  g_json.body_end = std::ftell(g_json.file);
  std::fprintf(g_json.file, "\n]\n");  // valid (empty) array from the start
  std::fflush(g_json.file);
  std::atexit(CloseJsonMirror);
}

void Emit(const std::string& title, const TablePrinter& table, bool csv) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToText().c_str());
  std::fflush(stdout);
}

void Emit(const std::string& title, const TablePrinter& table,
          const Options& opt) {
  Emit(title, table, opt.csv);
  if (!opt.json_path.empty()) MirrorTableToJson(title, table);
}

}  // namespace bench
}  // namespace baton
