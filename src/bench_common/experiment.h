// Shared harness for the figure benches: network builders, data loaders,
// option parsing and table output. Each bench binary reproduces one panel of
// the paper's Figure 8 and prints the series the paper plots.
//
// Default scale (N up to 8000, 100 keys/node, 2 seeds) keeps every binary
// fast; pass --paper_scale for the paper's setup (N = 1000..10000, 1000
// keys/node, 10 seeds).
#ifndef BATON_BENCH_COMMON_EXPERIMENT_H_
#define BATON_BENCH_COMMON_EXPERIMENT_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "baton/baton.h"
#include "chord/chord_network.h"
#include "multiway/multiway_network.h"
#include "util/table_printer.h"
#include "workload/workload.h"

namespace baton {
namespace bench {

struct Options {
  std::vector<size_t> sizes = {1000, 2000, 4000, 8000};
  size_t keys_per_node = 100;
  int queries = 1000;
  int seeds = 2;
  uint64_t base_seed = 20260608;
  bool csv = false;
};

/// Recognised flags: --paper_scale, --csv, --seeds=N, --keys=N, --queries=N,
/// --sizes=a,b,c. Unknown flags abort with usage.
Options ParseOptions(int argc, char** argv);

/// Standard experiment configuration: load balancing on with an adaptive
/// threshold (overloaded = 2.2x the current network-average load, so
/// uniform workloads trip it only on outliers). Section IV-D's machinery is
/// what keeps node loads -- and thus ranges -- matched to the data
/// distribution.
BatonConfig BalancedConfig();

/// BalancedConfig plus replication at factor r (0 = off): each node's keys
/// mirrored on r holders, restored on failure. The durability bench sweeps r.
BatonConfig ReplicatedConfig(int r);

struct BatonInstance {
  std::unique_ptr<net::Network> net;
  std::unique_ptr<BatonNetwork> overlay;
  std::vector<net::PeerId> members;
};
/// Builds an overlay of n nodes joined via random contacts. When `preload`
/// is non-null, keys_per_node * n keys are loaded before growth (the paper
/// inserts its data "in batches" as the network forms): every join then
/// splits ranges at the content median, so node ranges stay proportional to
/// the data distribution -- the property the load figures depend on.
BatonInstance BuildBaton(size_t n, uint64_t seed, BatonConfig cfg = {},
                         size_t keys_per_node = 0,
                         workload::KeyGenerator* preload = nullptr);
/// Inserts keys_per_node * n additional keys from random origins.
void LoadBaton(BatonInstance* bi, size_t keys_per_node,
               workload::KeyGenerator* gen, Rng* rng);

struct ChordInstance {
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNetwork> ring;
  std::vector<net::PeerId> members;
};
ChordInstance BuildChord(size_t n, uint64_t seed);
void LoadChord(ChordInstance* ci, size_t keys_per_node,
               workload::KeyGenerator* gen, Rng* rng);

struct MultiwayInstance {
  std::unique_ptr<net::Network> net;
  std::unique_ptr<multiway::MultiwayNetwork> tree;
  std::vector<net::PeerId> members;
};
/// Same preload-then-grow scheme as BuildBaton (the multiway tree also
/// splits at the content median).
MultiwayInstance BuildMultiway(size_t n, uint64_t seed, int fanout = 4,
                               size_t keys_per_node = 0,
                               workload::KeyGenerator* preload = nullptr);
void LoadMultiway(MultiwayInstance* mi, size_t keys_per_node,
                  workload::KeyGenerator* gen, Rng* rng);

/// Sum of per-type deltas between two counter snapshots.
uint64_t SumTypes(const net::CounterSnapshot& before,
                  const net::CounterSnapshot& after,
                  std::initializer_list<net::MsgType> types);

/// Messages in the maintenance category (routing-table/link updates).
uint64_t MaintenanceDelta(const net::CounterSnapshot& before,
                          const net::CounterSnapshot& after);

/// Sum of per-type deltas over every type in `category` (derived from
/// net::CategoryOf, so new message types are picked up automatically).
uint64_t CategoryDelta(const net::CounterSnapshot& before,
                       const net::CounterSnapshot& after,
                       net::MsgCategory category);

/// Prints a titled table (text or CSV per options).
void Emit(const std::string& title, const TablePrinter& table, bool csv);

}  // namespace bench
}  // namespace baton

#endif  // BATON_BENCH_COMMON_EXPERIMENT_H_
