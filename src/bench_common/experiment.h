// Shared harness for the figure benches: one overlay-generic Instance
// builder/loader (any registered backend, via overlay::Make), option
// parsing and table output. Each bench binary reproduces one panel of the
// paper's Figure 8 and prints the series the paper plots.
//
// Default scale (N up to 8000, 100 keys/node, 2 seeds) keeps every binary
// fast; pass --paper_scale for the paper's setup (N = 1000..10000, 1000
// keys/node, 10 seeds). --overlay=name[,name...] restricts multi-backend
// benches to a subset of the registered backends.
#ifndef BATON_BENCH_COMMON_EXPERIMENT_H_
#define BATON_BENCH_COMMON_EXPERIMENT_H_

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "baton/baton.h"
#include "cache/cache.h"
#include "obs/observer.h"
#include "overlay/registry.h"
#include "sim/latency.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "workload/workload.h"

namespace baton {
namespace bench {

/// Link-latency model selected with --latency=const:N|uniform:LO,HI. With
/// Kind::kNone no sim kernel is attached at all: OpStats::latency_ticks
/// stays 0 and every bench table is byte-identical to a build without sim
/// support.
struct LatencySpec {
  enum class Kind { kNone, kConst, kUniform };
  Kind kind = Kind::kNone;
  sim::Time lo = 0;
  sim::Time hi = 0;

  bool enabled() const { return kind != Kind::kNone; }
};

/// Parses "const:N" or "uniform:LO,HI"; prints a diagnostic and exits 2 on
/// malformed input (including uniform bounds with HI < LO).
LatencySpec ParseLatencySpec(const char* arg);

/// Builds the latency model `spec` describes, or nullptr for Kind::kNone.
std::unique_ptr<sim::LatencyModel> MakeLatencyModel(const LatencySpec& spec);

/// Request-key distribution selected with --key-dist=uniform|zipf:THETA.
/// Uniform is the paper's setup; zipf:THETA concentrates queries on the
/// popular low end of the key space (util::ZipfGenerator), the access skew
/// that turns a range-partitioned overlay's key owners into hot spots.
struct KeyDistSpec {
  enum class Kind { kUniform, kZipf };
  Kind kind = Kind::kUniform;
  double theta = 0.0;  // Zipf exponent; unused for kUniform

  /// Table/column label: "uniform" or "zipf:<theta>".
  std::string Label() const;
};

/// Parses a comma list of "uniform" / "zipf:THETA" (THETA > 0) entries;
/// prints a diagnostic and exits 2 on malformed input.
std::vector<KeyDistSpec> ParseKeyDists(const char* arg);

/// Builds the request-key generator `spec` describes over [lo, hi).
std::unique_ptr<workload::KeyGenerator> MakeKeyGenerator(
    const KeyDistSpec& spec, Key lo, Key hi);

struct Options {
  std::vector<size_t> sizes = {1000, 2000, 4000, 8000};
  size_t keys_per_node = 100;
  int queries = 1000;
  int seeds = 2;
  uint64_t base_seed = 20260608;
  bool csv = false;
  /// Worker threads for per-(backend, N, seed) task execution in the
  /// multi-backend benches (--threads=N; 0 = hardware concurrency).
  /// Defaults to 1: results are deterministic regardless (tasks only write
  /// their own slot and aggregation is sequential), but concurrent tasks
  /// share the machine, so leave wall-clock *timing* benches sequential
  /// unless throughput matters more than timing fidelity.
  int threads = 1;
  /// Backends selected with --overlay=...; empty means "all registered".
  std::vector<std::string> overlays;
  /// Link latency model from --latency=...; Kind::kNone leaves the sim
  /// kernel detached.
  LatencySpec latency;
  /// --json=PATH: mirror every Emit'd table into PATH as a JSON array of
  /// row objects (see SetJsonMirror). Empty = no mirror.
  std::string json_path;
  /// --trace=PATH: record a causal op/message trace per bench task and
  /// write one merged Chrome trace-event JSON file (open in Perfetto).
  /// Honoured by the observability-aware benches (bench_compare_overlays,
  /// bench_latency_query). Empty = tracing off.
  std::string trace_path;
  /// --metrics=PATH: write one obs::Registry JSON snapshot per bench task
  /// (an array of {overlay, N, seed, metrics} objects). Empty = off.
  std::string metrics_path;

  /// Request-key distributions from --key-dist=...; empty means the bench's
  /// default (uniform). Benches that honour this run one series per entry.
  std::vector<KeyDistSpec> key_dists;

  // ---- Serving-engine flags (bench_throughput) ---------------------------
  /// --load=f1,f2,...: offered-load sweep points, as fractions of each
  /// (backend, N, seed)'s calibrated closed-loop capacity. The default
  /// straddles the saturation knee from either side.
  std::vector<double> loads = {0.5, 0.8, 0.95, 1.1, 1.3};
  /// --arrivals=poisson|fixed: the open-loop arrival process.
  std::string arrivals = "poisson";
  /// --service-ticks=N: per-message node service time (serve::NodeModel).
  uint64_t service_ticks = 1;
  /// --max-queue=N: per-node queue bound; arrivals past it drop the owning
  /// op (0 = unbounded queues).
  uint64_t max_queue = 0;
  /// --timeout-ticks=N: sojourns past this count as timed out (client gave
  /// up; the op still completes and is measured). 0 = no deadline.
  uint64_t timeout_ticks = 0;
  /// --stragglers=K:FACTOR: the first K members (deterministically chosen
  /// per seed) service messages FACTOR times slower than --service-ticks --
  /// the heterogeneous-fleet / tail-at-scale knob of the serving benches.
  /// K = 0 (the default) keeps the fleet homogeneous.
  size_t stragglers = 0;
  double straggler_factor = 8.0;

  // ---- Fault-injection flags (bench_faults) ------------------------------
  /// --drop=p1,p2,...: per-message drop probabilities to sweep (each value
  /// becomes one fault::Plan column group).
  std::vector<double> drop_rates = {0.01, 0.05, 0.10};
  /// --dup=p: per-message duplicate probability applied in every faulted
  /// cell (0 disables duplication).
  double dup_rate = 0.0;
  /// --retries=r1,r2,...: resilience retry budgets to sweep
  /// (fault::Policy::max_retries per cell).
  std::vector<int> retry_budgets = {0, 1, 3};

  // ---- Hot-path cache flags (bench_cache) --------------------------------
  /// --cache=SIZE[,k]: per-node route-cache capacity and replicated
  /// fast-table levels for cache-aware benches (see src/cache/cache.h).
  /// SIZE 0 leaves the cache detached (the byte-identical default); k
  /// defaults to 2 and 0 disables only the fast-table.
  size_t cache_capacity = 0;
  int cache_levels = 2;

  /// Observability is wanted when either artifact path is set.
  bool obs_enabled() const {
    return !trace_path.empty() || !metrics_path.empty();
  }

  bool cache_enabled() const { return cache_capacity > 0; }
};

/// Schema version stamped into every JSON row/snapshot the bench harness
/// writes (the "schema" field), so BENCH trajectory artifacts stay
/// self-describing across PRs. Bump when a JSON shape changes:
///   1  PR 4's bare row objects (no schema field)
///   2  adds the schema field itself, obs artifacts, percentile columns
inline constexpr int kBenchJsonSchema = 2;

/// Recognised flags: --paper_scale, --csv, --seeds=N, --keys=N, --queries=N,
/// --sizes=a,b,c, --seed=S, --overlay=name[,name...], --threads=N,
/// --latency=const:N|uniform:LO,HI, --key-dist=uniform|zipf:THETA[,...],
/// --load=f1,f2,..., --arrivals=poisson|fixed, --service-ticks=N,
/// --max-queue=N, --stragglers=K:FACTOR, --drop=p1,p2,..., --dup=P,
/// --retries=r1,r2,..., --json=PATH, --trace=PATH, --metrics=PATH,
/// --list-overlays (prints overlay::RegisteredNames() one per line, exits
/// 0), --help (prints usage, exits 0). Unknown flags print the usage and
/// exit 2; usage and the --overlay rejection message both list the
/// registered backends from the registry, so new backends appear without
/// touching this file. Numeric flags are parsed strictly: a value that is
/// not entirely a base-10 number in the flag's valid range (e.g.
/// --threads=-2, --seeds=2x) prints a diagnostic plus the usage and exits 2
/// instead of silently truncating or wrapping.
Options ParseOptions(int argc, char** argv);

/// Runs fn(i) for every i in [0, count) on up to `threads` worker threads
/// (1 = inline sequential execution, 0 = hardware concurrency). Tasks are
/// handed out in index order through an atomic cursor. Each task must touch
/// only its own result slot; emit tables/JSON only after the call returns
/// (the seed-parallel bench pattern: build per-task results concurrently,
/// then aggregate sequentially in task order so output is byte-identical to
/// a sequential run).
void ParallelFor(size_t count, int threads,
                 const std::function<void(size_t)>& fn);

/// One (overlay, N, seed) unit of bench work; built by the task builders
/// below and executed through RunTasks.
struct SeedTask {
  std::string overlay;
  size_t n = 0;
  int seed = 0;
};

/// Tasks in sizes-major order (opt.sizes × overlays × opt.seeds) -- the row
/// nesting of the per-size comparison tables (bench_compare_overlays,
/// bench_latency_query).
std::vector<SeedTask> SizeMajorTasks(const Options& opt,
                                     const std::vector<std::string>& overlays);
/// Tasks in backend-major order (overlays × opt.sizes × opt.seeds) -- the
/// row nesting of bench_wallclock.
std::vector<SeedTask> BackendMajorTasks(
    const Options& opt, const std::vector<std::string>& overlays);

/// Runs fn(task) for every task on `threads` workers (via ParallelFor) and
/// returns the results aligned with `tasks`. This pins the ordering
/// contract in one place: a bench aggregates by replaying the same loop
/// nest its task builder used (or by iterating `tasks` directly), so its
/// output is byte-identical to a sequential run regardless of thread count.
template <typename Result, typename Fn>
std::vector<Result> RunTasks(const std::vector<SeedTask>& tasks, int threads,
                             Fn&& fn) {
  std::vector<Result> results(tasks.size());
  ParallelFor(tasks.size(), threads,
              [&](size_t i) { results[i] = fn(tasks[i]); });
  return results;
}

/// Routes every subsequent Emit into a JSON mirror at `path` (in addition
/// to stdout): the file holds one JSON array whose elements are row objects
/// {"table": <title>, "<header>": <cell>, ...}; numeric-looking cells are
/// emitted as JSON numbers. The file is created immediately (so a bad path
/// fails fast, before any bench work runs) and the array is closed at
/// process exit. Called by ParseOptions for --json=PATH; benches with a
/// canonical output file (bench_wallclock) call it directly with their
/// default path.
void SetJsonMirror(const std::string& path);

/// The backends a multi-backend bench should run: opt.overlays when given,
/// otherwise every registered backend.
std::vector<std::string> SelectedOverlays(const Options& opt);

/// Standard experiment configuration: load balancing on with an adaptive
/// threshold (overloaded = 2.2x the current network-average load, so
/// uniform workloads trip it only on outliers). Section IV-D's machinery is
/// what keeps node loads -- and thus ranges -- matched to the data
/// distribution.
BatonConfig BalancedConfig();

/// BalancedConfig plus replication at factor r (0 = off): each node's keys
/// mirrored on r holders, restored on failure. The durability bench sweeps r.
BatonConfig ReplicatedConfig(int r);

/// overlay::Config carrying BalancedConfig for the BATON backend (other
/// backends use their defaults) -- the standard setup of the Fig. 8 benches.
overlay::Config BalancedOverlayConfig();

/// A built overlay of any backend plus the member list benches sample
/// operation origins from (join order; erased on departure).
struct Instance {
  std::unique_ptr<overlay::Overlay> overlay;
  std::vector<net::PeerId> members;

  /// Sim kernel driving OpStats::latency_ticks; set by AttachLatency (null
  /// until then, and the overlay runs untimed).
  std::unique_ptr<sim::EventQueue> queue;
  std::unique_ptr<sim::LatencyModel> latency;

  /// Observability collector; set by AttachObserver (null until then, and
  /// the overlay runs unobserved -- the zero-overhead default).
  std::unique_ptr<obs::Observer> observer;

  /// Hot-path cache manager; set by AttachCache (null until then, and the
  /// overlay routes every lookup through the full protocol walk).
  std::unique_ptr<cache::Manager> cache;

  net::Network* net() { return overlay->network(); }
};

/// Attaches a sim/ event kernel built from `spec` to the instance (no-op
/// for Kind::kNone): subsequent operations fill OpStats::latency_ticks.
/// The sampling rng is seeded from `seed` independently of every protocol
/// rng, so message counts and protocol decisions are unaffected.
void AttachLatency(Instance* inst, const LatencySpec& spec, uint64_t seed);

/// Attaches an obs::Observer owned by the instance (metrics always;
/// a causal trace too when `tracing`). Subsequent operations open spans and
/// feed the registry. The attachment mirrors AttachLatency: per instance,
/// opt-in, and a no-op for benches that never call it.
void AttachObserver(Instance* inst, bool tracing);

/// Attaches a cache::Manager owned by the instance (capacity 0 detaches
/// instead). Subsequent exact searches consult/learn routes and membership
/// changes invalidate them. Same contract as the other attachments: per
/// instance, opt-in, and a no-op for benches that never call it.
void AttachCache(Instance* inst, const cache::Config& cfg);

/// Writes the observability artifacts opt.trace_path / opt.metrics_path
/// request, from per-task observers aligned with `tasks` (null entries --
/// tasks that ran unobserved -- are skipped). The trace file holds one
/// Chrome trace "process" per task, labelled "<overlay> N=<n> seed=<s>";
/// the metrics file holds a JSON array of per-task registry snapshots.
/// Prints a one-line note per file written.
void WriteObsArtifacts(const Options& opt, const std::vector<SeedTask>& tasks,
                       const std::vector<const obs::Observer*>& observers);

/// Builds an overlay of n `name`-backend nodes joined via random contacts.
/// When `preload` is non-null, keys_per_node * n keys are loaded before
/// growth (the paper inserts its data "in batches" as the network forms):
/// order-preserving backends (Capability::kOrderedGrowth) then split ranges
/// at the content median on every join, so node ranges stay proportional to
/// the data distribution -- the property the load figures depend on.
Instance BuildOverlay(const std::string& name, size_t n, uint64_t seed,
                      const overlay::Config& cfg = {},
                      size_t keys_per_node = 0,
                      workload::KeyGenerator* preload = nullptr);

/// Inserts keys_per_node * size() additional keys from random origins.
void LoadOverlay(Instance* inst, size_t keys_per_node,
                 workload::KeyGenerator* gen, Rng* rng);

/// Joins a random contact then removes a random member, `ops` times, on any
/// backend; each phase's message cost -- `join_cost(before, after)` /
/// `leave_cost(before, after)` over the counter snapshots bracketing it --
/// is accumulated into the corresponding stat. The churn loop of the
/// join/leave figure benches (Fig 8(a), 8(b)).
template <typename JoinCost, typename LeaveCost>
void JoinLeaveChurn(Instance* inst, Rng* rng, int ops, JoinCost&& join_cost,
                    LeaveCost&& leave_cost, RunningStat* join_stat,
                    RunningStat* leave_stat) {
  for (int i = 0; i < ops; ++i) {
    auto before = inst->net()->Snapshot();
    auto joined = inst->overlay->Join(
        inst->members[rng->NextBelow(inst->members.size())]);
    BATON_CHECK(joined.ok()) << joined.status.ToString();
    inst->members.push_back(joined.peer);
    auto mid = inst->net()->Snapshot();
    join_stat->Add(static_cast<double>(join_cost(before, mid)));

    size_t idx = rng->NextBelow(inst->members.size());
    auto left = inst->overlay->Leave(inst->members[idx]);
    BATON_CHECK(left.ok()) << left.status.ToString();
    inst->members.erase(inst->members.begin() + static_cast<long>(idx));
    auto after = inst->net()->Snapshot();
    leave_stat->Add(static_cast<double>(leave_cost(mid, after)));
  }
}

/// Sum of per-type deltas between two counter snapshots.
uint64_t SumTypes(const net::CounterSnapshot& before,
                  const net::CounterSnapshot& after,
                  std::initializer_list<net::MsgType> types);

/// Messages in the maintenance category (routing-table/link updates).
uint64_t MaintenanceDelta(const net::CounterSnapshot& before,
                          const net::CounterSnapshot& after);

/// Sum of per-type deltas over every type in `category` (derived from
/// net::CategoryOf, so new message types are picked up automatically).
uint64_t CategoryDelta(const net::CounterSnapshot& before,
                       const net::CounterSnapshot& after,
                       net::MsgCategory category);

/// Prints a titled table (text or CSV per options).
void Emit(const std::string& title, const TablePrinter& table, bool csv);

/// Prints a titled table and, when opt.json_path is set (--json=PATH, or
/// a bench default installed via SetJsonMirror), mirrors its rows into the
/// JSON file. The bool overload never mirrors; use it for tables that must
/// stay out of the machine-readable artifact.
void Emit(const std::string& title, const TablePrinter& table,
          const Options& opt);

}  // namespace bench
}  // namespace baton

#endif  // BATON_BENCH_COMMON_EXPERIMENT_H_
