// The simulated physical network: a peer registry plus message accounting.
//
// Protocol implementations (BATON, Chord, multiway tree) must route every
// inter-peer interaction through Network::Count(from, to, type); this is the
// instrument behind every figure in the paper ("We use number of passing
// messages to measure the performance of the system").
//
// The network also provides:
//  * liveness tracking (peers can fail; sending to a dead peer is a wasted
//    message that the caller must detect and recover from),
//  * a deferred-update facility modelling update-propagation delay for the
//    network-dynamics experiment (Fig. 8(i)),
//  * an optional attachment to the sim/ discrete-event kernel: with an
//    EventQueue + LatencyModel attached, Count() also schedules the
//    message's delivery event and maintains a per-peer "message available
//    at" frontier, so an operation's critical-path time (sequential hops
//    add, parallel fan-out takes the max over branches) can be read out per
//    measurement window. Message counters are unaffected, and no protocol
//    rng is touched: with no model attached, behaviour is bit-for-bit
//    identical to a build without sim support.
#ifndef BATON_NET_NETWORK_H_
#define BATON_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/message.h"
#include "sim/event_queue.h"
#include "util/check.h"
#include "util/rng.h"

namespace baton {
namespace sim {
class LatencyModel;
}  // namespace sim

namespace net {

using PeerId = uint32_t;
inline constexpr PeerId kNullPeer = static_cast<PeerId>(-1);

/// Observability hook: one callback per counted message. Implemented by
/// obs::Observer; net/ only sees this interface so the layering stays
/// net <- obs <- overlay. `send_tick`/`deliver_tick` are virtual times on
/// the sim/ kernel's clock when one is attached; otherwise both equal the
/// global message index, which still orders every event causally.
class MessageObserver {
 public:
  virtual ~MessageObserver() = default;
  virtual void OnMessage(PeerId from, PeerId to, MsgType type,
                         uint64_t send_tick, uint64_t deliver_tick) = 0;
};

/// Fault-injection hook: consulted once per counted message, before any
/// delivery bookkeeping. Implemented by fault::Plan; net/ only sees this
/// interface so the layering stays net <- fault <- overlay. With no
/// injector attached (the default, see AttachFaults) the counting path
/// pays one null check and behaviour is byte-identical to a build without
/// fault support.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// What the network does to one message.
  struct Decision {
    /// Lost in transit: the message is still paid for by the sender (it
    /// occupies the wire), but the receiver never processes it and its
    /// arrival advances no availability frontier.
    bool drop = false;
    /// Extra identical copies delivered -- each is a real message: counted,
    /// processed by the receiver, timed.
    uint32_t duplicates = 0;
    /// Added to the link's sampled latency (gray failure / congestion).
    /// Only observable with a sim/ kernel attached.
    sim::Time extra_delay = 0;
  };
  virtual Decision OnMessage(PeerId from, PeerId to, MsgType type) = 0;

  /// Advances the injector's deterministic operation clock. Fault windows
  /// (stalls, correlated outages) are scheduled in operations, not wall
  /// time, so they work without a sim attachment; the overlay measured
  /// wrapper calls this exactly once per public operation (not per retry).
  virtual void OnOpBegin() = 0;
};

/// Cheap value snapshot of the counters; diff two snapshots to get the cost
/// of one operation.
struct CounterSnapshot {
  uint64_t total = 0;
  std::array<uint64_t, kNumMsgTypes> by_type{};
};

class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ---- Peer registry -------------------------------------------------------
  /// Registers a new peer and returns its id. Ids are never reused.
  PeerId Register();
  void MarkDead(PeerId p);
  void MarkAlive(PeerId p);
  bool IsAlive(PeerId p) const {
    BATON_CHECK_LT(p, alive_.size());
    return alive_[p];
  }
  size_t num_registered() const { return alive_.size(); }
  size_t num_alive() const { return num_alive_; }

  // ---- Message accounting --------------------------------------------------
  /// Records one message from -> to. `to` may be dead (the message is still
  /// paid for; callers use IsAlive to model timeout detection).
  void Count(PeerId from, PeerId to, MsgType type);

  uint64_t total_messages() const { return snapshot_.total; }
  uint64_t MessagesOfType(MsgType t) const {
    return snapshot_.by_type[static_cast<size_t>(t)];
  }
  /// Messages *processed by* (i.e. delivered to) a peer, for the access-load
  /// experiment (Fig. 8(f)). Indexed by category.
  uint64_t ProcessedBy(PeerId p, MsgCategory c) const;

  CounterSnapshot Snapshot() const { return snapshot_; }
  static uint64_t Delta(const CounterSnapshot& before,
                        const CounterSnapshot& after) {
    return after.total - before.total;
  }
  static uint64_t DeltaOfType(const CounterSnapshot& before,
                              const CounterSnapshot& after, MsgType t) {
    size_t i = static_cast<size_t>(t);
    return after.by_type[i] - before.by_type[i];
  }

  void ResetCounters();
  /// Reset only the per-peer processed counts (keeps global totals).
  void ResetPerPeerCounters();

  std::string CounterReport() const;

  // ---- Simulated latency (sim/ event-kernel attachment) --------------------
  /// Attaches the discrete-event kernel: every subsequent Count() samples a
  /// link latency, schedules the message's delivery event on `queue`, and
  /// advances the receiver's availability frontier. `queue` and `latency`
  /// are non-owning and must outlive the attachment; pass nullptr for both
  /// to detach. `seed` seeds the latency-sampling rng, which is independent
  /// of every protocol rng (message counts and protocol decisions are
  /// byte-identical with or without an attachment).
  void AttachSim(sim::EventQueue* queue, sim::LatencyModel* latency,
                 uint64_t seed);
  bool sim_attached() const { return sim_queue_ != nullptr; }
  /// The attached kernel's queue (nullptr when detached). Exposed so higher
  /// layers that run their own event loops (the serving engine) can refuse
  /// to share a queue with the per-op critical-path machinery, whose
  /// EndOpWindow drains the queue mid-operation.
  sim::EventQueue* sim_queue() const { return sim_queue_; }

  /// Opens a measurement window: the per-peer frontier resets (every peer
  /// is immediately available) and critical-path accounting restarts. O(1).
  void BeginOpWindow();
  /// Drains the window's delivery events (advancing the queue clock to the
  /// operation's completion time) and returns the window's critical-path
  /// length in ticks: max over all messages of their arrival time, where a
  /// message departs when its sender last became available. Returns 0 when
  /// no kernel is attached.
  sim::Time EndOpWindow();
  /// Delivery events processed since AttachSim (one per counted message).
  uint64_t sim_delivered() const { return sim_delivered_; }

  // ---- Observability (obs/ attachment) -------------------------------------
  /// Attaches a message observer: every subsequent Count() reports the
  /// message (with its virtual send/deliver ticks) to `obs`. Non-owning;
  /// pass nullptr to detach. Opt-in like AttachSim: with no observer
  /// attached the counting path is untouched -- no allocations, identical
  /// behaviour.
  void AttachObserver(MessageObserver* obs) { observer_ = obs; }
  MessageObserver* observer() const { return observer_; }

  /// The clock observability events are stamped with: the sim/ kernel's
  /// virtual time when attached, otherwise the global message index.
  uint64_t ObsClock() const {
    return sim_queue_ != nullptr ? sim_queue_->now() : snapshot_.total;
  }

  // ---- Fault injection (fault/ attachment) ---------------------------------
  /// Attaches a fault injector: every subsequent Count() first asks `f`
  /// whether the message is dropped, duplicated, or delayed. Non-owning;
  /// pass nullptr to detach. Opt-in like AttachSim/AttachObserver: detached
  /// (the default) the counting path is one null check and all output is
  /// byte-identical to a build without fault support.
  void AttachFaults(FaultInjector* f) {
    faults_ = f;
    window_dropped_ = 0;
    window_duplicated_ = 0;
  }
  FaultInjector* faults() const { return faults_; }

  /// Ticks the attached injector's op clock (no-op when detached). The
  /// overlay measured wrapper calls this once per public operation so
  /// windowed faults advance even across retries.
  void FaultOpTick() {
    if (faults_ != nullptr) faults_->OnOpBegin();
  }

  /// Messages dropped / duplicated since the last BeginOpWindow. Always 0
  /// with no injector attached; the overlay resilience policy reads these
  /// per attempt to decide whether an operation's answer can be trusted.
  uint64_t window_dropped() const { return window_dropped_; }
  uint64_t window_duplicated() const { return window_duplicated_; }

  // ---- Deferred updates (network dynamics, Fig. 8(i)) ----------------------
  /// While deferring, Apply() queues the closure instead of running it.
  /// This models "it takes some time for the network to update knowledge of
  /// joining or leaving nodes".
  void SetDeferUpdates(bool defer) { defer_updates_ = defer; }
  bool defer_updates() const { return defer_updates_; }
  /// Run `fn` now, or queue it if updates are deferred. Immediate mode (the
  /// overwhelmingly common path: deferral is only on during the Fig. 8(i)
  /// dynamics windows) invokes the closure in place -- no std::function is
  /// constructed, so the call never allocates. Only the deferred path pays
  /// for type erasure; its queue semantics are unchanged.
  template <typename Fn>
  void Apply(Fn&& fn) {
    if (defer_updates_) {
      deferred_.emplace_back(std::forward<Fn>(fn));
    } else {
      fn();
    }
  }
  /// Deliver all queued updates (in order); returns how many ran.
  size_t FlushDeferred();
  size_t deferred_pending() const { return deferred_.size(); }

 private:
  std::vector<bool> alive_;
  size_t num_alive_ = 0;

  CounterSnapshot snapshot_;
  // per-peer processed messages, by coarse category. Derived from the enum's
  // last entry so adding a category can never desync the array dimension.
  static constexpr int kNumCategories = static_cast<int>(MsgCategory::kOther) + 1;
  std::vector<std::array<uint64_t, kNumCategories>> processed_;

  bool defer_updates_ = false;
  std::deque<std::function<void()>> deferred_;

  MessageObserver* observer_ = nullptr;

  // ---- fault attachment state ----
  /// Counts one message (plus bookkeeping) with an already-made fault
  /// decision; Count() splits delivery from decision so duplicate copies
  /// reuse the same path.
  void CountOne(PeerId from, PeerId to, MsgType type, bool dropped,
                sim::Time extra_delay);

  FaultInjector* faults_ = nullptr;
  uint64_t window_dropped_ = 0;
  uint64_t window_duplicated_ = 0;

  // ---- sim attachment state ----
  /// "Message available at" frontier entry: the virtual time (relative to
  /// the current window's start) at which the peer received its latest
  /// message. Epoch-stamped so BeginOpWindow resets all peers in O(1).
  struct Frontier {
    uint64_t epoch = 0;
    sim::Time at = 0;
  };
  sim::Time FrontierAt(PeerId p) const {
    const Frontier& f = frontier_[p];
    return f.epoch == window_epoch_ ? f.at : 0;
  }

  sim::EventQueue* sim_queue_ = nullptr;
  sim::LatencyModel* sim_latency_ = nullptr;
  Rng sim_rng_{0};
  std::vector<Frontier> frontier_;
  uint64_t window_epoch_ = 0;
  sim::Time window_start_ = 0;  // queue time when the window opened
  sim::Time horizon_ = 0;       // critical path of the current window
  uint64_t sim_delivered_ = 0;
};

}  // namespace net
}  // namespace baton

#endif  // BATON_NET_NETWORK_H_
