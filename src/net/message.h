// Message taxonomy shared by every overlay in the repo (BATON, Chord,
// multiway tree). The paper's only performance metric is "number of passing
// messages"; tagging each hop with a type lets benches aggregate exactly the
// categories each figure plots.
#ifndef BATON_NET_MESSAGE_H_
#define BATON_NET_MESSAGE_H_

#include <cstdint>

namespace baton {
namespace net {

enum class MsgType : uint16_t {
  // --- Overlay maintenance: locating where to join / who replaces a leaver.
  kJoinForward = 0,       // JOIN request hops (Algorithm 1)
  kReplacementForward,    // FINDREPLACEMENT hops (Algorithm 2)

  // --- Overlay maintenance: updating state after a join/leave.
  kContentTransfer,       // range/data handover (split on join, merge on leave)
  kAdjacentUpdate,        // fixing left/right adjacent links
  kTableBuild,            // parent -> its neighbours: "inform your children"
  kTableBuildChild,       // neighbour -> its child
  kTableBuildReply,       // child -> new node (also installs reverse entry)
  kTableUpdate,           // point update of one routing-table entry
  kChildStatusNotify,     // child-occupancy bits changed at same-level peers
  kParentNotify,          // child -> parent or parent -> child link updates
  kReplacementNotify,     // "address of position P is now peer Q"
  kRangeUpdate,           // range-of-link refresh after a range change

  // --- Failure handling.
  kFailureReport,         // someone tells the parent its child is unreachable
  kRecoveryProbe,         // parent -> its neighbours' children (regenerate)
  kRecoveryReply,
  kDeadProbe,             // a message sent to a dead peer (wasted, counted)

  // --- Index operations.
  kExactQuery,            // exact-match routing hop
  kRangeQuery,            // range-query routing hop (to first intersection)
  kRangeScan,             // adjacent-link hop collecting the rest of a range
  kInsert,                // insert routing hop
  kDelete,                // delete routing hop
  kAnswer,                // answer returned to the query node

  // --- Load balancing (section IV-D).
  kLoadProbe,             // asking a neighbour for its load
  kLoadProbeReply,
  kLoadMove,              // bulk key movement between adjacent nodes
  kRestructureShift,      // one node handing its position to the next

  // --- Replication (extension beyond the paper: durable keys under churn).
  kReplicaPush,           // single-key update, primary -> holder
  kReplicaSync,           // bulk replica (re)synchronisation, primary -> holder
  kReplicaDrop,           // departing primary tells a holder to discard
  kReplicaProbe,          // anti-entropy freshness check (version exchange)
  kReplicaProbeReply,
  kReplicaRestore,        // recovery request for a failed primary's replica
  kReplicaRestoreReply,   // holder returns the replica contents

  // --- Chord baseline.
  kChordLookup,           // find_successor hop
  kChordJoinInit,         // building the joiner's finger table
  kChordUpdateOthers,     // fixing other nodes' fingers after join/leave
  kChordNotify,           // predecessor/successor pointer updates
  kChordKeyMove,

  // --- Multiway-tree baseline.
  kMultiwayJoinForward,
  kMultiwayChildPoll,     // leaver polling its children
  kMultiwayLinkUpdate,
  kMultiwaySearch,
  kMultiwayProbe,         // child probe during descent

  // --- D3-Tree backend (bucket clusters over a weight-balanced backbone;
  // see src/d3tree/). Generic types (kContentTransfer, kInsert, kDelete,
  // kDeadProbe, kFailureReport) are shared; these cover the protocol's own
  // traffic.
  kD3JoinForward,         // join request: contact -> cluster representative
  kD3Search,              // exact/range routing hop over the backbone
  kD3RangeScan,           // adjacent-link hop collecting the rest of a range
  kD3BucketUpdate,        // intra-cluster state: member tables, adjacency
  kD3BackboneUpdate,      // backbone links: parent/child/rep address changes
  kD3WeightUpdate,        // subtree-weight delta propagating toward the root
  kD3Redistribute,        // deterministic rebuild: peer reassigned to a bucket

  // --- Hot-path caching (src/cache/): backend-neutral, emitted by the
  // overlay measured wrapper rather than by backend protocol code.
  kCacheProbe,            // origin jumps straight at a remembered owner
  kCacheRefresh,          // fast-table entry shipped on lazy refresh

  kNumTypes,              // sentinel
};

inline constexpr int kNumMsgTypes = static_cast<int>(MsgType::kNumTypes);

/// Human-readable tag, for diagnostics and bench output.
const char* MsgTypeName(MsgType t);

/// Coarse categories used by the figure benches and the overlay-generic
/// comparison harness. Backend-neutral: every backend's types map into the
/// same buckets so category aggregates are comparable across overlays.
enum class MsgCategory : uint8_t {
  kJoinSearch,     // Fig 8(a), join series
  kLeaveSearch,    // Fig 8(a), leave series
  kMaintenance,    // Fig 8(b): routing-table update traffic
  kFailure,
  kQuery,          // Fig 8(d,e)
  kData,           // Fig 8(c)
  kLoadBalance,    // Fig 8(g,h)
  kReplication,    // replica push/sync/restore traffic (durability benches)
  kOther,
};

MsgCategory CategoryOf(MsgType t);

/// Lowercase category tag ("maintenance", "query", ...), for metric names
/// and bench output.
const char* MsgCategoryName(MsgCategory c);

}  // namespace net
}  // namespace baton

#endif  // BATON_NET_MESSAGE_H_
