#include "net/network.h"

#include <algorithm>
#include <sstream>

#include "sim/latency.h"

namespace baton {
namespace net {

PeerId Network::Register() {
  PeerId id = static_cast<PeerId>(alive_.size());
  alive_.push_back(true);
  processed_.push_back({});
  frontier_.push_back({});
  ++num_alive_;
  return id;
}

void Network::MarkDead(PeerId p) {
  BATON_CHECK_LT(p, alive_.size());
  if (alive_[p]) {
    alive_[p] = false;
    --num_alive_;
  }
}

void Network::MarkAlive(PeerId p) {
  BATON_CHECK_LT(p, alive_.size());
  if (!alive_[p]) {
    alive_[p] = true;
    ++num_alive_;
  }
}

void Network::Count(PeerId from, PeerId to, MsgType type) {
  BATON_CHECK_LT(from, alive_.size());
  BATON_CHECK_LT(to, alive_.size());
  if (faults_ == nullptr) {
    CountOne(from, to, type, /*dropped=*/false, /*extra_delay=*/0);
    return;
  }
  FaultInjector::Decision d = faults_->OnMessage(from, to, type);
  if (d.drop) ++window_dropped_;
  window_duplicated_ += d.duplicates;
  CountOne(from, to, type, d.drop, d.extra_delay);
  // Duplicate copies: the fault is extra delivery, not loss, and each copy
  // is a real message -- counted, processed, timed.
  for (uint32_t i = 0; i < d.duplicates; ++i) {
    CountOne(from, to, type, /*dropped=*/false, d.extra_delay);
  }
}

void Network::CountOne(PeerId from, PeerId to, MsgType type, bool dropped,
                       sim::Time extra_delay) {
  ++snapshot_.total;
  ++snapshot_.by_type[static_cast<size_t>(type)];
  // A message is "processed by" its receiver; dead receivers process nothing
  // (the sender's timeout is what costs, and it was already counted above).
  // A dropped message likewise never reaches the receiver.
  if (alive_[to] && !dropped) {
    ++processed_[to][static_cast<size_t>(CategoryOf(type))];
  }
  // Observability event ticks: virtual times on the sim clock when a kernel
  // is attached, otherwise the (just-incremented) global message index --
  // either way causally ordered and fully deterministic.
  uint64_t send_tick = snapshot_.total;
  uint64_t deliver_tick = snapshot_.total;
  if (sim_queue_ != nullptr) {
    // Critical-path timing: the message departs when its sender last became
    // available in this window (a fresh origin departs at 0), and arrives
    // one latency sample later. Receivers take the max over everything in
    // flight toward them, so parallel fan-out from one sender costs a
    // single latency while sequential relays accumulate.
    sim::Time departs = FrontierAt(from);
    sim::Time arrives = departs + sim_latency_->Sample(&sim_rng_) + extra_delay;
    if (!dropped) {
      // A dropped message advances nothing: the receiver never becomes
      // "available with the answer", so the loss is invisible to the
      // latency accounting until a timeout or retry pays for it above.
      Frontier& f = frontier_[to];
      if (f.epoch != window_epoch_ || arrives > f.at) {
        f = Frontier{window_epoch_, arrives};
      }
      horizon_ = std::max(horizon_, arrives);
    }
    // The delivery event: running the queue (EndOpWindow) advances the
    // virtual clock to the operation's completion time. Counts issued
    // outside any window share the clock position of the last window.
    sim::Time base = std::max(window_start_, sim_queue_->now());
    if (!dropped) {
      sim_queue_->ScheduleAt(base + arrives, [this] { ++sim_delivered_; });
    }
    send_tick = base + departs;
    deliver_tick = base + arrives;
  }
  if (observer_ != nullptr) {
    observer_->OnMessage(from, to, type, send_tick, deliver_tick);
  }
}

void Network::AttachSim(sim::EventQueue* queue, sim::LatencyModel* latency,
                        uint64_t seed) {
  BATON_CHECK_EQ(queue == nullptr, latency == nullptr)
      << "queue and latency model must be attached together";
  sim_queue_ = queue;
  sim_latency_ = latency;
  sim_rng_ = Rng(seed);
  window_epoch_ = 0;
  window_start_ = queue != nullptr ? queue->now() : 0;
  horizon_ = 0;
  sim_delivered_ = 0;
  for (Frontier& f : frontier_) f = Frontier{};
}

void Network::BeginOpWindow() {
  if (faults_ != nullptr) {
    window_dropped_ = 0;
    window_duplicated_ = 0;
  }
  if (sim_queue_ == nullptr) return;
  ++window_epoch_;
  window_start_ = sim_queue_->now();
  horizon_ = 0;
}

sim::Time Network::EndOpWindow() {
  if (sim_queue_ == nullptr) return 0;
  sim_queue_->RunUntilIdle();
  sim::Time h = horizon_;
  // Close the window: stray Counts issued before the next BeginOpWindow
  // start from a fresh frontier anchored at the advanced clock, instead of
  // re-applying this window's elapsed time on top of it.
  ++window_epoch_;
  window_start_ = sim_queue_->now();
  horizon_ = 0;
  return h;
}

uint64_t Network::ProcessedBy(PeerId p, MsgCategory c) const {
  BATON_CHECK_LT(p, processed_.size());
  return processed_[p][static_cast<size_t>(c)];
}

void Network::ResetCounters() {
  snapshot_ = CounterSnapshot{};
  ResetPerPeerCounters();
}

void Network::ResetPerPeerCounters() {
  for (auto& row : processed_) row.fill(0);
}

std::string Network::CounterReport() const {
  std::ostringstream out;
  out << "total messages: " << snapshot_.total << "\n";
  for (int i = 0; i < kNumMsgTypes; ++i) {
    uint64_t c = snapshot_.by_type[static_cast<size_t>(i)];
    if (c == 0) continue;
    out << "  " << MsgTypeName(static_cast<MsgType>(i)) << ": " << c << "\n";
  }
  return out.str();
}

size_t Network::FlushDeferred() {
  size_t n = 0;
  // Updates queued while flushing run too (they model follow-on repairs).
  while (!deferred_.empty()) {
    auto fn = std::move(deferred_.front());
    deferred_.pop_front();
    fn();
    ++n;
  }
  return n;
}

}  // namespace net
}  // namespace baton
