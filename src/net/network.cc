#include "net/network.h"

#include <sstream>

namespace baton {
namespace net {

PeerId Network::Register() {
  PeerId id = static_cast<PeerId>(alive_.size());
  alive_.push_back(true);
  processed_.push_back({});
  ++num_alive_;
  return id;
}

void Network::MarkDead(PeerId p) {
  BATON_CHECK_LT(p, alive_.size());
  if (alive_[p]) {
    alive_[p] = false;
    --num_alive_;
  }
}

void Network::MarkAlive(PeerId p) {
  BATON_CHECK_LT(p, alive_.size());
  if (!alive_[p]) {
    alive_[p] = true;
    ++num_alive_;
  }
}

void Network::Count(PeerId from, PeerId to, MsgType type) {
  BATON_CHECK_LT(from, alive_.size());
  BATON_CHECK_LT(to, alive_.size());
  ++snapshot_.total;
  ++snapshot_.by_type[static_cast<size_t>(type)];
  // A message is "processed by" its receiver; dead receivers process nothing
  // (the sender's timeout is what costs, and it was already counted above).
  if (alive_[to]) {
    ++processed_[to][static_cast<size_t>(CategoryOf(type))];
  }
}

uint64_t Network::ProcessedBy(PeerId p, MsgCategory c) const {
  BATON_CHECK_LT(p, processed_.size());
  return processed_[p][static_cast<size_t>(c)];
}

void Network::ResetCounters() {
  snapshot_ = CounterSnapshot{};
  ResetPerPeerCounters();
}

void Network::ResetPerPeerCounters() {
  for (auto& row : processed_) row.fill(0);
}

std::string Network::CounterReport() const {
  std::ostringstream out;
  out << "total messages: " << snapshot_.total << "\n";
  for (int i = 0; i < kNumMsgTypes; ++i) {
    uint64_t c = snapshot_.by_type[static_cast<size_t>(i)];
    if (c == 0) continue;
    out << "  " << MsgTypeName(static_cast<MsgType>(i)) << ": " << c << "\n";
  }
  return out.str();
}

void Network::Apply(std::function<void()> fn) {
  if (defer_updates_) {
    deferred_.push_back(std::move(fn));
  } else {
    fn();
  }
}

size_t Network::FlushDeferred() {
  size_t n = 0;
  // Updates queued while flushing run too (they model follow-on repairs).
  while (!deferred_.empty()) {
    auto fn = std::move(deferred_.front());
    deferred_.pop_front();
    fn();
    ++n;
  }
  return n;
}

}  // namespace net
}  // namespace baton
