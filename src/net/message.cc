#include "net/message.h"

namespace baton {
namespace net {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kJoinForward: return "JoinForward";
    case MsgType::kReplacementForward: return "ReplacementForward";
    case MsgType::kContentTransfer: return "ContentTransfer";
    case MsgType::kAdjacentUpdate: return "AdjacentUpdate";
    case MsgType::kTableBuild: return "TableBuild";
    case MsgType::kTableBuildChild: return "TableBuildChild";
    case MsgType::kTableBuildReply: return "TableBuildReply";
    case MsgType::kTableUpdate: return "TableUpdate";
    case MsgType::kChildStatusNotify: return "ChildStatusNotify";
    case MsgType::kParentNotify: return "ParentNotify";
    case MsgType::kReplacementNotify: return "ReplacementNotify";
    case MsgType::kRangeUpdate: return "RangeUpdate";
    case MsgType::kFailureReport: return "FailureReport";
    case MsgType::kRecoveryProbe: return "RecoveryProbe";
    case MsgType::kRecoveryReply: return "RecoveryReply";
    case MsgType::kDeadProbe: return "DeadProbe";
    case MsgType::kExactQuery: return "ExactQuery";
    case MsgType::kRangeQuery: return "RangeQuery";
    case MsgType::kRangeScan: return "RangeScan";
    case MsgType::kInsert: return "Insert";
    case MsgType::kDelete: return "Delete";
    case MsgType::kAnswer: return "Answer";
    case MsgType::kLoadProbe: return "LoadProbe";
    case MsgType::kLoadProbeReply: return "LoadProbeReply";
    case MsgType::kLoadMove: return "LoadMove";
    case MsgType::kRestructureShift: return "RestructureShift";
    case MsgType::kReplicaPush: return "ReplicaPush";
    case MsgType::kReplicaSync: return "ReplicaSync";
    case MsgType::kReplicaDrop: return "ReplicaDrop";
    case MsgType::kReplicaProbe: return "ReplicaProbe";
    case MsgType::kReplicaProbeReply: return "ReplicaProbeReply";
    case MsgType::kReplicaRestore: return "ReplicaRestore";
    case MsgType::kReplicaRestoreReply: return "ReplicaRestoreReply";
    case MsgType::kChordLookup: return "ChordLookup";
    case MsgType::kChordJoinInit: return "ChordJoinInit";
    case MsgType::kChordUpdateOthers: return "ChordUpdateOthers";
    case MsgType::kChordNotify: return "ChordNotify";
    case MsgType::kChordKeyMove: return "ChordKeyMove";
    case MsgType::kMultiwayJoinForward: return "MultiwayJoinForward";
    case MsgType::kMultiwayChildPoll: return "MultiwayChildPoll";
    case MsgType::kMultiwayLinkUpdate: return "MultiwayLinkUpdate";
    case MsgType::kMultiwaySearch: return "MultiwaySearch";
    case MsgType::kMultiwayProbe: return "MultiwayProbe";
    case MsgType::kD3JoinForward: return "D3JoinForward";
    case MsgType::kD3Search: return "D3Search";
    case MsgType::kD3RangeScan: return "D3RangeScan";
    case MsgType::kD3BucketUpdate: return "D3BucketUpdate";
    case MsgType::kD3BackboneUpdate: return "D3BackboneUpdate";
    case MsgType::kD3WeightUpdate: return "D3WeightUpdate";
    case MsgType::kD3Redistribute: return "D3Redistribute";
    case MsgType::kCacheProbe: return "CacheProbe";
    case MsgType::kCacheRefresh: return "CacheRefresh";
    case MsgType::kNumTypes: break;
  }
  return "Unknown";
}

MsgCategory CategoryOf(MsgType t) {
  switch (t) {
    case MsgType::kJoinForward:
      return MsgCategory::kJoinSearch;
    case MsgType::kReplacementForward:
      return MsgCategory::kLeaveSearch;
    case MsgType::kContentTransfer:
    case MsgType::kAdjacentUpdate:
    case MsgType::kTableBuild:
    case MsgType::kTableBuildChild:
    case MsgType::kTableBuildReply:
    case MsgType::kTableUpdate:
    case MsgType::kChildStatusNotify:
    case MsgType::kParentNotify:
    case MsgType::kReplacementNotify:
    case MsgType::kRangeUpdate:
      return MsgCategory::kMaintenance;
    case MsgType::kFailureReport:
    case MsgType::kRecoveryProbe:
    case MsgType::kRecoveryReply:
    case MsgType::kDeadProbe:
      return MsgCategory::kFailure;
    case MsgType::kExactQuery:
    case MsgType::kRangeQuery:
    case MsgType::kRangeScan:
    case MsgType::kAnswer:
      return MsgCategory::kQuery;
    case MsgType::kInsert:
    case MsgType::kDelete:
      return MsgCategory::kData;
    case MsgType::kLoadProbe:
    case MsgType::kLoadProbeReply:
    case MsgType::kLoadMove:
    case MsgType::kRestructureShift:
      return MsgCategory::kLoadBalance;
    case MsgType::kReplicaPush:
    case MsgType::kReplicaSync:
    case MsgType::kReplicaDrop:
    case MsgType::kReplicaProbe:
    case MsgType::kReplicaProbeReply:
    case MsgType::kReplicaRestore:
    case MsgType::kReplicaRestoreReply:
      return MsgCategory::kReplication;
    // Baseline backends map into the same buckets as BATON so category
    // aggregates (e.g. MaintenanceDelta) are comparable across overlays.
    case MsgType::kChordLookup:
      return MsgCategory::kQuery;  // find_successor serves queries & joins
    case MsgType::kChordJoinInit:
    case MsgType::kChordUpdateOthers:
    case MsgType::kChordNotify:
    case MsgType::kChordKeyMove:
    case MsgType::kMultiwayLinkUpdate:
      return MsgCategory::kMaintenance;
    case MsgType::kMultiwayJoinForward:
    case MsgType::kMultiwayProbe:
      return MsgCategory::kJoinSearch;
    case MsgType::kMultiwayChildPoll:
      return MsgCategory::kLeaveSearch;
    case MsgType::kMultiwaySearch:
      return MsgCategory::kQuery;
    case MsgType::kD3JoinForward:
      return MsgCategory::kJoinSearch;
    case MsgType::kD3Search:
    case MsgType::kD3RangeScan:
      return MsgCategory::kQuery;
    case MsgType::kD3BucketUpdate:
    case MsgType::kD3BackboneUpdate:
    case MsgType::kD3WeightUpdate:
      return MsgCategory::kMaintenance;
    case MsgType::kD3Redistribute:
      return MsgCategory::kLoadBalance;
    // A cache probe is a query hop (it replaces the protocol walk); the
    // fast-table refresh is routing-state upkeep, billed to maintenance.
    case MsgType::kCacheProbe:
      return MsgCategory::kQuery;
    case MsgType::kCacheRefresh:
      return MsgCategory::kMaintenance;
    case MsgType::kNumTypes:
      break;
  }
  return MsgCategory::kOther;
}

const char* MsgCategoryName(MsgCategory c) {
  switch (c) {
    case MsgCategory::kJoinSearch: return "join_search";
    case MsgCategory::kLeaveSearch: return "leave_search";
    case MsgCategory::kMaintenance: return "maintenance";
    case MsgCategory::kFailure: return "failure";
    case MsgCategory::kQuery: return "query";
    case MsgCategory::kData: return "data";
    case MsgCategory::kLoadBalance: return "load_balance";
    case MsgCategory::kReplication: return "replication";
    case MsgCategory::kOther: return "other";
  }
  return "other";
}

}  // namespace net
}  // namespace baton
