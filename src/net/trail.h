// net::MessageTrail: a MessageObserver that records the (from, to, type)
// sequence of every counted message, optionally forwarding each event to a
// previously attached observer so instrumentation stacks instead of
// displacing each other.
//
// The serving engine uses one of these to decompose a synchronously
// executed overlay operation into its hop sequence: the protocol code runs
// unchanged, and the recorded trail -- in exact Count() order, which is the
// causal send order -- becomes the per-hop event schedule.
#ifndef BATON_NET_TRAIL_H_
#define BATON_NET_TRAIL_H_

#include <vector>

#include "net/message.h"
#include "net/network.h"

namespace baton {
namespace net {

class MessageTrail : public MessageObserver {
 public:
  struct Hop {
    PeerId from;
    PeerId to;
    MsgType type;
  };

  /// Forward every event to `chained` after recording it (nullptr = none).
  explicit MessageTrail(MessageObserver* chained = nullptr)
      : chained_(chained) {}

  void OnMessage(PeerId from, PeerId to, MsgType type, uint64_t send_tick,
                 uint64_t deliver_tick) override {
    hops_.push_back({from, to, type});
    if (chained_ != nullptr) {
      chained_->OnMessage(from, to, type, send_tick, deliver_tick);
    }
  }

  const std::vector<Hop>& hops() const { return hops_; }
  void Clear() { hops_.clear(); }
  MessageObserver* chained() const { return chained_; }

 private:
  std::vector<Hop> hops_;
  MessageObserver* chained_;
};

}  // namespace net
}  // namespace baton

#endif  // BATON_NET_TRAIL_H_
