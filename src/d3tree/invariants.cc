// Structural validation for the D3-Tree. The checker models the
// experimenter, not a peer: it walks the whole backbone and every cluster,
// cross-checking the in-order range partition against the adjacency chain,
// the maintained subtree weights against a recount, and the protocol's
// deterministic balance guarantees.
//
// The balance bounds are checked with slack: the adaptive bucket target
// (log2 N) drifts as the overlay grows or shrinks, and a bucket untouched
// since the target moved can legitimately sit outside the tight
// [target/2, 2*target] window until the next operation on its path
// triggers a rebuild. The tight window is asserted in the tests, which pin
// the target; here the hard bounds are 4x-with-slack so a CHECK failure
// always means protocol breakage, never target drift.
#include <algorithm>

#include "d3tree/d3tree_network.h"
#include "util/check.h"
#include "util/flat_map.h"

namespace baton {
namespace d3tree {

void D3TreeNetwork::CheckInvariants() const {
  if (live_count_ == 0) {
    BATON_CHECK_EQ(root_, kNullBucket);
    BATON_CHECK_EQ(bucket_count_, 0u);
    return;
  }
  BATON_CHECK_NE(root_, kNullBucket);
  BATON_CHECK_EQ(B(root_)->parent, kNullBucket);
  BATON_CHECK_EQ(B(root_)->weight, live_count_);

  const size_t target = EffectiveTarget();
  std::vector<BucketId> order = BucketsInOrder();
  BATON_CHECK_EQ(order.size(), bucket_count_);

  std::vector<PeerId> members;
  members.reserve(live_count_);
  util::FlatSet64 seen;
  seen.Reserve(live_count_);
  uint64_t keys = 0;

  for (BucketId bid : order) {
    const D3Bucket* bk = B(bid);
    BATON_CHECK(!bk->members.empty()) << "empty bucket " << bid;
    BATON_CHECK_LE(bk->members.size(), 4 * target + 8)
        << "bucket " << bid << " overflowed";

    // Backbone link symmetry and subtree weights.
    uint64_t w = bk->members.size();
    uint64_t wl = 0;
    uint64_t wr = 0;
    if (bk->left != kNullBucket) {
      BATON_CHECK_EQ(B(bk->left)->parent, bid);
      wl = B(bk->left)->weight;
    }
    if (bk->right != kNullBucket) {
      BATON_CHECK_EQ(B(bk->right)->parent, bid);
      wr = B(bk->right)->weight;
    }
    BATON_CHECK_EQ(bk->weight, w + wl + wr)
        << "weight drift at bucket " << bid;
    if (wl != 0 || wr != 0) {
      BATON_CHECK_LE(std::max(wl, wr),
                     4 * std::min(wl, wr) + 8 * target + 8)
          << "backbone weight imbalance at bucket " << bid;
    }

    // The bucket range is the contiguous concatenation of member ranges.
    const D3Node* first = N(bk->members.front());
    const D3Node* last = N(bk->members.back());
    BATON_CHECK_EQ(bk->range.lo, first->range.lo);
    BATON_CHECK_EQ(bk->range.hi, last->range.hi);
    for (size_t i = 0; i < bk->members.size(); ++i) {
      const D3Node* m = N(bk->members[i]);
      BATON_CHECK(m->in_overlay);
      BATON_CHECK_EQ(m->bucket, bid);
      BATON_CHECK(m->range.lo < m->range.hi);
      BATON_CHECK(seen.Insert(m->id)) << "peer in two buckets";
      if (i > 0) {
        BATON_CHECK_EQ(N(bk->members[i - 1])->range.hi, m->range.lo);
      }
      if (!m->data.empty()) {
        BATON_CHECK(m->range.Contains(m->data.Min()));
        BATON_CHECK(m->range.Contains(m->data.Max()));
      }
      keys += m->data.size();
      members.push_back(m->id);
    }

    // Extent: left extent, bucket range and right extent tile contiguously.
    Range e = bk->range;
    if (bk->left != kNullBucket) {
      BATON_CHECK_EQ(B(bk->left)->extent.hi, bk->range.lo)
          << "left gap at bucket " << bid;
      e.lo = B(bk->left)->extent.lo;
    }
    if (bk->right != kNullBucket) {
      BATON_CHECK_EQ(B(bk->right)->extent.lo, bk->range.hi)
          << "right gap at bucket " << bid;
      e.hi = B(bk->right)->extent.hi;
    }
    BATON_CHECK(e == bk->extent) << "extent drift at bucket " << bid;
  }

  BATON_CHECK_EQ(members.size(), live_count_);
  BATON_CHECK_EQ(keys, total_keys_);
  BATON_CHECK(B(root_)->extent ==
              (Range{config_.domain_lo, config_.domain_hi}));

  // The global adjacency chain is exactly the in-order member sequence.
  BATON_CHECK_EQ(N(members.front())->left_adj, kNullPeer);
  BATON_CHECK_EQ(N(members.back())->right_adj, kNullPeer);
  BATON_CHECK_EQ(N(members.front())->range.lo, config_.domain_lo);
  BATON_CHECK_EQ(N(members.back())->range.hi, config_.domain_hi);
  for (size_t i = 0; i + 1 < members.size(); ++i) {
    const D3Node* a = N(members[i]);
    const D3Node* b = N(members[i + 1]);
    BATON_CHECK_EQ(a->right_adj, b->id);
    BATON_CHECK_EQ(b->left_adj, a->id);
    BATON_CHECK_EQ(a->range.hi, b->range.lo);
  }

  // Pending failures are still positioned members, just unresponsive.
  for (PeerId f : failed_) {
    BATON_CHECK(N(f)->in_overlay);
    BATON_CHECK(!net_->IsAlive(f));
  }
}

}  // namespace d3tree
}  // namespace baton
