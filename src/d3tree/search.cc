// D3-Tree routing: BST-style over the backbone. A query forwards to the
// origin's cluster representative, climbs while the key lies outside the
// subtree extent, descends by bucket-range comparison, and takes one final
// hop from the representative to the owning member (the representative's
// member table knows every member's range). Range queries then collect the
// remaining intersecting peers along the global in-order adjacency chain.
#include <algorithm>

#include "d3tree/d3tree_network.h"
#include "util/check.h"

namespace baton {
namespace d3tree {

PeerId D3TreeNetwork::OwnerInBucket(const D3Bucket* b, Key key) const {
  const std::vector<PeerId>& ms = b->members;
  // First member whose range starts above the key; the owner precedes it.
  size_t lo = 0;
  size_t hi = ms.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (N(ms[mid])->range.lo <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  BATON_CHECK_GT(lo, 0u) << "key below the bucket range";
  PeerId owner = ms[lo - 1];
  BATON_CHECK(N(owner)->range.Contains(key));
  return owner;
}

Result<D3TreeNetwork::RouteOutcome> D3TreeNetwork::RouteToKey(
    PeerId from, Key key, net::MsgType hop_type) {
  if (from >= nodes_.size() || !N(from)->in_overlay) {
    return Status::InvalidArgument("query origin is not an overlay member");
  }
  Key k = std::clamp(key, config_.domain_lo, config_.domain_hi - 1);
  RouteOutcome res;
  if (N(from)->range.Contains(k)) {
    res.node = from;
    return res;
  }
  int guard = config_.max_hops_factor * (CeilLog2Size() + 4);

  BucketId cur = N(from)->bucket;
  PeerId at = from;
  if (at != RepOf(cur)) {
    Count(at, RepOf(cur), hop_type);
    ++res.hops;
    at = RepOf(cur);
  }
  // Climb to the subtree whose extent covers the key.
  while (!B(cur)->extent.Contains(k)) {
    if (--guard < 0) return Status::Exhausted("d3tree routing hop budget");
    BucketId p = B(cur)->parent;
    BATON_CHECK_NE(p, kNullBucket) << "root extent must cover the domain";
    Count(at, RepOf(p), hop_type);
    ++res.hops;
    cur = p;
    at = RepOf(p);
  }
  // Descend by bucket-range comparison.
  while (!B(cur)->range.Contains(k)) {
    if (--guard < 0) return Status::Exhausted("d3tree routing hop budget");
    BucketId next = k < B(cur)->range.lo ? B(cur)->left : B(cur)->right;
    BATON_CHECK_NE(next, kNullBucket)
        << "extent of bucket " << cur << " does not partition";
    Count(at, RepOf(next), hop_type);
    ++res.hops;
    cur = next;
    at = RepOf(next);
  }
  // The representative hands the query to the owning member.
  PeerId owner = OwnerInBucket(B(cur), k);
  if (owner != at) {
    Count(at, owner, hop_type);
    ++res.hops;
  }
  res.node = owner;
  return res;
}

Result<D3TreeNetwork::SearchResult> D3TreeNetwork::ExactSearch(PeerId from,
                                                               Key key) {
  auto routed = RouteToKey(from, key, net::MsgType::kD3Search);
  if (!routed.ok()) return routed.status();
  SearchResult res;
  res.node = routed.value().node;
  res.hops = routed.value().hops;
  const D3Node* owner = N(res.node);
  res.found = owner->range.Contains(key) && owner->data.Contains(key);
  return res;
}

Result<D3TreeNetwork::RangeResult> D3TreeNetwork::RangeSearch(PeerId from,
                                                              Key lo,
                                                              Key hi) {
  if (lo >= hi) return Status::InvalidArgument("empty range");
  auto routed = RouteToKey(from, lo, net::MsgType::kD3Search);
  if (!routed.ok()) return routed.status();
  RangeResult res;
  res.hops = routed.value().hops;
  const D3Node* cur = N(routed.value().node);
  int guard = static_cast<int>(live_count_) + 8;
  while (true) {
    BATON_CHECK_GE(--guard, 0);
    if (cur->range.Intersects(lo, hi)) {
      res.nodes.push_back(cur->id);
      res.matches += cur->data.CountInRange(lo, hi);
    }
    if (cur->range.hi >= hi || cur->right_adj == kNullPeer) break;
    Count(cur->id, cur->right_adj, net::MsgType::kD3RangeScan);
    ++res.hops;
    cur = N(cur->right_adj);
  }
  return res;
}

Status D3TreeNetwork::Insert(PeerId from, Key key) {
  if (key < config_.domain_lo || key >= config_.domain_hi) {
    return Status::InvalidArgument("key outside the domain");
  }
  auto routed = RouteToKey(from, key, net::MsgType::kInsert);
  if (!routed.ok()) return routed.status();
  N(routed.value().node)->data.Insert(key);
  ++total_keys_;
  return Status::OK();
}

Status D3TreeNetwork::Delete(PeerId from, Key key) {
  auto routed = RouteToKey(from, key, net::MsgType::kDelete);
  if (!routed.ok()) return routed.status();
  if (!N(routed.value().node)->data.Erase(key)) {
    return Status::NotFound("key " + std::to_string(key));
  }
  --total_keys_;
  return Status::OK();
}

}  // namespace d3tree
}  // namespace baton
