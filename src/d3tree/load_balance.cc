// The D3-Tree's deterministic load balancer. Joins and leaves only touch
// one cluster; this file decides -- deterministically, with no probing and
// no randomness -- when that cheap local work has accumulated into a
// structural problem, and fixes the smallest offending subtree in one
// *rebuild*: collect the subtree's peers in order, erect a freshly balanced
// backbone of max(1, P/target) buckets over them, and deal the peers out
// evenly. Peers keep their ranges and data (redistribution moves cluster
// membership, not keys), so a rebuild is pure link traffic: one
// kD3Redistribute per reassigned peer plus one kD3BackboneUpdate per
// backbone link built.
//
// Triggers, checked on the changed bucket's path to the root after every
// membership change:
//  * weight violation -- a node's child subtree weights drift past
//    max > 2*min + 2*target (rebuilt at the *highest* violating ancestor,
//    so one rebuild restores the whole path);
//  * bucket overflow  -- size > 2*target (the cluster split of the paper);
//  * bucket underflow -- size < target/2 (rebuilt at the lowest ancestor
//    heavy enough to refill every resulting bucket to >= target).
// Every rebuild with more than one resulting bucket yields bucket sizes in
// [target, 2*target], which is what makes the bounds self-sustaining.
#include <algorithm>

#include "d3tree/d3tree_network.h"
#include "util/check.h"

namespace baton {
namespace d3tree {

bool D3TreeNetwork::Overflowed(const D3Bucket* b, size_t target) const {
  return b->members.size() > 2 * target;
}

bool D3TreeNetwork::Underflowed(const D3Bucket* b, size_t target) const {
  return b->members.size() < std::max<size_t>(1, target / 2);
}

bool D3TreeNetwork::WeightViolated(const D3Bucket* b, size_t target) const {
  uint64_t wl = b->left != kNullBucket ? B(b->left)->weight : 0;
  uint64_t wr = b->right != kNullBucket ? B(b->right)->weight : 0;
  if (wl == 0 && wr == 0) return false;
  uint64_t lo = std::min(wl, wr);
  uint64_t hi = std::max(wl, wr);
  return hi > 2 * lo + 2 * static_cast<uint64_t>(target);
}

void D3TreeNetwork::RebalanceAfterChange(BucketId b) {
  size_t target = EffectiveTarget();
  BucketId v = kNullBucket;
  for (BucketId cur = b; cur != kNullBucket; cur = B(cur)->parent) {
    if (WeightViolated(B(cur), target)) v = cur;  // keep the highest
  }
  if (v == kNullBucket) {
    const D3Bucket* bk = B(b);
    if (Overflowed(bk, target)) {
      v = b;
    } else if (Underflowed(bk, target)) {
      // Climb until the subtree is heavy enough that every bucket of the
      // rebuild reaches the target size (or give the whole overlay one
      // bucket when even the root is lighter than that).
      v = b;
      while (B(v)->weight < target && B(v)->parent != kNullBucket) {
        v = B(v)->parent;
      }
    }
  }
  if (v != kNullBucket) RebuildSubtree(v);
}

void D3TreeNetwork::RebuildSubtree(BucketId v) {
  // Capture the subtree's attachment point and its content in order.
  BucketId parent = B(v)->parent;
  bool is_left = parent != kNullBucket && B(parent)->left == v;

  std::vector<BucketId> old_buckets;
  std::vector<PeerId> peers;
  std::vector<BucketId> old_assignment;
  {
    std::vector<std::pair<BucketId, bool>> stack{{v, false}};
    while (!stack.empty()) {
      auto [bid, visited] = stack.back();
      stack.pop_back();
      const D3Bucket* bk = B(bid);
      if (visited) {
        old_buckets.push_back(bid);
        for (PeerId m : bk->members) {
          peers.push_back(m);
          old_assignment.push_back(bid);
        }
        if (bk->right != kNullBucket) stack.emplace_back(bk->right, false);
      } else {
        stack.emplace_back(bid, true);
        if (bk->left != kNullBucket) stack.emplace_back(bk->left, false);
      }
    }
  }
  size_t total = peers.size();
  BATON_CHECK_GT(total, 0u) << "rebuilding an empty subtree";

  size_t target = EffectiveTarget();
  size_t k = std::max<size_t>(1, total / target);

  // Fresh buckets are allocated before the old ones are freed so ids never
  // collide within one rebuild (old_assignment comparisons stay meaningful);
  // the free list still recycles them across rebuilds.
  std::vector<BucketId> fresh(k);
  for (size_t i = 0; i < k; ++i) fresh[i] = AllocBucket();

  // Deal the peers out in order: base peers per bucket, the first
  // total % k buckets taking one extra.
  size_t base = total / k;
  size_t rem = total % k;
  std::vector<size_t> offset(k + 1, 0);
  for (size_t i = 0; i < k; ++i) {
    offset[i + 1] = offset[i] + base + (i < rem ? 1 : 0);
  }

  // Build a balanced backbone over the bucket sequence (median split), in
  // pre-order so each bucket's representative exists before its children
  // charge their uplink messages.
  struct Builder {
    D3TreeNetwork* self;
    const std::vector<PeerId>& peers;
    const std::vector<BucketId>& old_assignment;
    const std::vector<BucketId>& fresh;
    const std::vector<size_t>& offset;

    BucketId Build(size_t lo, size_t hi, BucketId par) {  // [lo, hi)
      if (lo >= hi) return kNullBucket;
      size_t mid = lo + (hi - lo) / 2;
      BucketId id = fresh[mid];
      D3Bucket* bk = &self->buckets_[id];
      bk->parent = par;
      bk->members.assign(peers.begin() + static_cast<long>(offset[mid]),
                         peers.begin() + static_cast<long>(offset[mid + 1]));
      PeerId rep = bk->members.front();
      for (size_t i = offset[mid]; i < offset[mid + 1]; ++i) {
        PeerId m = peers[i];
        self->nodes_[m].bucket = id;
        if (old_assignment[i] != id) {
          ++self->rebuild_moves_;
          if (m != rep) {
            self->Count(rep, m, net::MsgType::kD3Redistribute);
          }
        }
      }
      if (par != kNullBucket) {
        self->Count(rep, self->RepOf(par), net::MsgType::kD3BackboneUpdate);
      }
      bk->left = Build(lo, mid, id);
      bk->right = Build(mid + 1, hi, id);
      // Children are fully built: derive weight, range and extent bottom-up
      // (the bk pointer stays valid -- every bucket was allocated up front).
      bk->weight = bk->members.size();
      bk->range = Range{self->nodes_[bk->members.front()].range.lo,
                        self->nodes_[bk->members.back()].range.hi};
      bk->extent = bk->range;
      if (bk->left != kNullBucket) {
        const D3Bucket* l = &self->buckets_[bk->left];
        bk->weight += l->weight;
        bk->extent.lo = l->extent.lo;
      }
      if (bk->right != kNullBucket) {
        const D3Bucket* r = &self->buckets_[bk->right];
        bk->weight += r->weight;
        bk->extent.hi = r->extent.hi;
      }
      return id;
    }
  };
  Builder builder{this, peers, old_assignment, fresh, offset};
  BucketId new_root = builder.Build(0, k, parent);
  for (BucketId bid : old_buckets) FreeBucket(bid);

  if (parent == kNullBucket) {
    root_ = new_root;
  } else if (is_left) {
    buckets_[parent].left = new_root;
  } else {
    buckets_[parent].right = new_root;
  }
  // The subtree holds the same peers over the same key span, so ancestor
  // extents and weights are untouched.
  ++rebuild_ops_;
}

}  // namespace d3tree
}  // namespace baton
