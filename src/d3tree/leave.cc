// D3-Tree departures and failures: cluster-local removal. The leaver (or,
// for a failed peer, the live cluster member that detected it) hands its
// range -- and on a graceful leave its keys -- to an in-order adjacent
// peer, the bucket splices it out, the weight decrement propagates to the
// root, and underflow / weight rebalancing is deferred to one deterministic
// subtree rebuild (load_balance.cc). No replacement search: the bucket
// absorbs the hole, which is exactly the restructuring-cost saving over
// BATON's FINDREPLACEMENT protocol.
#include <algorithm>

#include "d3tree/d3tree_network.h"
#include "util/check.h"

namespace baton {
namespace d3tree {

void D3TreeNetwork::RemoveLastNode(D3Node* x) {
  total_keys_ -= x->data.size();
  FreeBucket(x->bucket);
  root_ = kNullBucket;
  PeerId id = x->id;
  *x = D3Node{};
  x->id = id;
  --live_count_;
  net_->MarkDead(id);
}

void D3TreeNetwork::RemoveMember(D3Node* x, PeerId coordinator,
                                 bool content_lost) {
  BATON_CHECK_GE(live_count_, 2u);
  BucketId b = x->bucket;
  D3Bucket* bk = B(b);

  // Receiver of x's range: prefer an adjacent peer inside the same bucket
  // (no bucket-boundary shift), else either in-order neighbour -- but a
  // live receiver always beats a dead one: handing a graceful leaver's keys
  // to a pending (unrecovered) failure would silently lose them when that
  // failure is recovered.
  PeerId prefs[4];
  int ncand = 0;
  if (x->right_adj != kNullPeer && N(x->right_adj)->bucket == b) {
    prefs[ncand++] = x->right_adj;
  }
  if (x->left_adj != kNullPeer && N(x->left_adj)->bucket == b) {
    prefs[ncand++] = x->left_adj;
  }
  if (x->right_adj != kNullPeer) prefs[ncand++] = x->right_adj;
  if (x->left_adj != kNullPeer) prefs[ncand++] = x->left_adj;
  BATON_CHECK_GT(ncand, 0);
  PeerId recv_id = kNullPeer;
  for (int i = 0; i < ncand && recv_id == kNullPeer; ++i) {
    if (net_->IsAlive(prefs[i])) recv_id = prefs[i];
  }
  // Every adjacent is a pending failure: the range must still go somewhere;
  // the next recovery pass inherits it (and the keys are already lost or
  // about to be, depending on who dies first).
  if (recv_id == kNullPeer) recv_id = prefs[0];
  D3Node* recv = N(recv_id);

  if (content_lost) {
    // Failure path: the keys died with the peer; the receiver only learns
    // the new range boundary.
    lost_keys_ += x->data.size();
    total_keys_ -= x->data.size();
    x->data = KeyBag{};
    Count(coordinator, recv_id, net::MsgType::kD3BucketUpdate);
  } else {
    Count(x->id, recv_id, net::MsgType::kContentTransfer);
    recv->data.Absorb(&x->data);
  }
  if (recv_id == x->right_adj) {
    BATON_CHECK_EQ(x->range.hi, recv->range.lo);
    recv->range.lo = x->range.lo;
  } else {
    BATON_CHECK_EQ(recv->range.hi, x->range.lo);
    recv->range.hi = x->range.hi;
  }

  // Unsplice the adjacency chain.
  if (x->left_adj != kNullPeer) {
    Count(coordinator, x->left_adj, net::MsgType::kD3BucketUpdate);
    N(x->left_adj)->right_adj = x->right_adj;
  }
  if (x->right_adj != kNullPeer) {
    Count(coordinator, x->right_adj, net::MsgType::kD3BucketUpdate);
    N(x->right_adj)->left_adj = x->left_adj;
  }

  // Splice out of the bucket. Losing the first member promotes a new
  // representative, which re-homes the backbone links (parent and children
  // address the representative) and refreshes the member table.
  bool was_rep = bk->members.front() == x->id;
  bk->members.erase(std::find(bk->members.begin(), bk->members.end(), x->id));
  if (was_rep && !bk->members.empty()) {
    PeerId new_rep = bk->members.front();
    if (bk->parent != kNullBucket) {
      Count(new_rep, RepOf(bk->parent), net::MsgType::kD3BackboneUpdate);
    }
    if (bk->left != kNullBucket) {
      Count(new_rep, RepOf(bk->left), net::MsgType::kD3BackboneUpdate);
    }
    if (bk->right != kNullBucket) {
      Count(new_rep, RepOf(bk->right), net::MsgType::kD3BackboneUpdate);
    }
    for (size_t i = 1; i < bk->members.size(); ++i) {
      Count(new_rep, bk->members[i], net::MsgType::kD3BucketUpdate);
    }
  } else if (!was_rep) {
    Count(coordinator, RepOf(b), net::MsgType::kD3BucketUpdate);
  }

  PeerId xid = x->id;
  *x = D3Node{};
  x->id = xid;
  --live_count_;
  net_->MarkDead(xid);

  PropagateWeight(b, -1);

  if (bk->members.empty() && bk->left == kNullBucket &&
      bk->right == kNullBucket) {
    // An emptied leaf just disappears from the backbone.
    BucketId parent = bk->parent;
    BATON_CHECK_NE(parent, kNullBucket);  // an empty root means live_count_==0
    D3Bucket* pb = B(parent);
    Count(coordinator, RepOf(parent), net::MsgType::kD3BackboneUpdate);
    if (pb->left == b) {
      pb->left = kNullBucket;
    } else {
      BATON_CHECK_EQ(pb->right, b);
      pb->right = kNullBucket;
    }
    FreeBucket(b);
    if (recv->bucket != parent) {
      RefreshRangesUpward(recv->bucket, coordinator);
    }
    RefreshRangesUpward(parent, coordinator);
    RebalanceAfterChange(parent);
  } else {
    // Emptied internal buckets survive until the rebalance pass rebuilds
    // their subtree (Underflowed treats size 0 as maximal underflow).
    if (recv->bucket != b) RefreshRangesUpward(recv->bucket, coordinator);
    RefreshRangesUpward(b, coordinator);
    RebalanceAfterChange(b);
  }
}

Status D3TreeNetwork::Leave(PeerId leaver) {
  if (leaver >= nodes_.size() || !N(leaver)->in_overlay) {
    return Status::InvalidArgument("peer is not an overlay member");
  }
  D3Node* x = N(leaver);
  if (live_count_ == 1) {
    RemoveLastNode(x);
    return Status::OK();
  }
  RemoveMember(x, leaver, /*content_lost=*/false);
  return Status::OK();
}

void D3TreeNetwork::Fail(PeerId victim) {
  BATON_CHECK_LT(victim, nodes_.size());
  BATON_CHECK(N(victim)->in_overlay) << "victim is not an overlay member";
  BATON_CHECK(net_->IsAlive(victim)) << "victim already failed";
  net_->MarkDead(victim);
  failed_.push_back(victim);
}

Status D3TreeNetwork::RecoverAllFailures() {
  while (!failed_.empty()) {
    PeerId xid = failed_.front();
    failed_.erase(failed_.begin());
    D3Node* x = N(xid);
    if (!x->in_overlay) continue;
    BATON_CHECK_GE(live_count_, 2u) << "cannot recover the only member";

    // Detection is cluster-local: a live bucket member's keep-alive probe
    // times out; it reports the death up the backbone.
    BucketId b = x->bucket;
    PeerId reporter = kNullPeer;
    for (PeerId m : B(b)->members) {
      if (m != xid && net_->IsAlive(m)) {
        reporter = m;
        break;
      }
    }
    for (PeerId side : {x->right_adj, x->left_adj}) {
      if (reporter != kNullPeer) break;
      PeerId cur = side;
      while (cur != kNullPeer && !net_->IsAlive(cur)) {
        cur = side == x->right_adj ? N(cur)->right_adj : N(cur)->left_adj;
      }
      reporter = cur;
    }
    BATON_CHECK_NE(reporter, kNullPeer) << "no live peer left to recover";
    Count(reporter, xid, net::MsgType::kDeadProbe);
    if (B(b)->parent != kNullBucket) {
      Count(reporter, RepOf(B(b)->parent), net::MsgType::kFailureReport);
    }
    RemoveMember(x, reporter, /*content_lost=*/true);
  }
  return Status::OK();
}

}  // namespace d3tree
}  // namespace baton
