// D3-Tree overlay (arXiv:1503.07905, with the deterministic-bounds
// machinery of D²-Tree, arXiv:1009.3134), instrumented with the same
// message counters as BATON.
//
// Where BATON makes every peer a tree node and rebalances by probing and
// shifting occupants along adjacent links, the D3-Tree groups peers into
// virtual-node clusters ("buckets") hanging off a weight-balanced backbone
// tree. Each bucket manages a contiguous slice of the key space,
// partitioned in order across its members; the bucket's first member is the
// cluster *representative* and carries the backbone links. Joins and leaves
// are cluster-local (splice into / out of a bucket, O(1) structural work
// plus an O(backbone height) weight notification); restructuring is
// deferred until a bucket over/underflows or a backbone subtree's weight
// goes out of balance, at which point the protocol *deterministically*
// rebuilds the smallest offending subtree -- peers are redistributed evenly
// over a freshly balanced backbone, no probe-and-shift, no randomness. The
// protocol draws no random numbers at all: identical op sequences produce
// identical trees and identical message counts.
//
// Search routes over the backbone like a BST (climb to the subtree whose
// extent covers the key, descend by bucket-range comparison, final hop from
// the representative to the owning member); range queries scan the global
// in-order adjacency chain. Every inter-peer interaction is charged through
// net::Network::Count with the kD3* message types.
#ifndef BATON_D3TREE_D3TREE_NETWORK_H_
#define BATON_D3TREE_D3TREE_NETWORK_H_

#include <cstdint>
#include <vector>

#include "baton/key_bag.h"
#include "baton/types.h"
#include "net/network.h"
#include "util/status.h"

namespace baton {
namespace d3tree {

using net::PeerId;
using net::kNullPeer;

/// Index of a backbone node (a virtual node owning one bucket of peers).
using BucketId = uint32_t;
inline constexpr BucketId kNullBucket = static_cast<BucketId>(-1);

struct D3Config {
  Key domain_lo = 1;
  Key domain_hi = 1000000000;

  /// Target cluster size. 0 (default) adapts it to max(2, floor(log2 N)+1)
  /// -- the paper keeps buckets at Theta(log N) so the backbone stays
  /// exponentially smaller than the overlay. A peer would track N with a
  /// gossiped estimate; the simulator reads it directly (same convention as
  /// BATON's adaptive overload threshold).
  size_t bucket_target = 0;

  /// Safety net: routing aborts (Status::Exhausted) after
  /// max_hops_factor * (ceil(log2 N) + 4) hops.
  int max_hops_factor = 16;
};

/// One peer. Peers own a contiguous key range and link only to their two
/// in-order adjacent peers plus their cluster (bucket / representative);
/// all long-distance routing state lives on the backbone.
struct D3Node {
  PeerId id = kNullPeer;
  bool in_overlay = false;
  BucketId bucket = kNullBucket;

  PeerId left_adj = kNullPeer;   // global in-order adjacency chain
  PeerId right_adj = kNullPeer;

  Range range;  // keys managed directly
  KeyBag data;
};

/// One backbone node: a bucket of peers plus the backbone tree links its
/// representative maintains. In-order semantics: extent(left subtree) <
/// member ranges < extent(right subtree).
struct D3Bucket {
  bool live = false;
  BucketId parent = kNullBucket;
  BucketId left = kNullBucket;
  BucketId right = kNullBucket;

  /// Members in range order; members.front() is the representative (it
  /// holds the backbone links and the member table routing consults).
  std::vector<PeerId> members;

  /// Peers in this backbone node's subtree (bucket + both child subtrees).
  uint64_t weight = 0;

  Range range;   // union of member ranges (contiguous)
  Range extent;  // range ∪ children extents (contiguous by construction)
};

class D3TreeNetwork {
 public:
  D3TreeNetwork(const D3Config& config, net::Network* net);
  D3TreeNetwork(const D3TreeNetwork&) = delete;
  D3TreeNetwork& operator=(const D3TreeNetwork&) = delete;

  // ---- Membership ----------------------------------------------------------
  PeerId Bootstrap();
  /// Cluster-local join: the contact forwards the joiner to its bucket's
  /// representative, the joiner takes the upper half of the contact's range
  /// (content median when possible) and splices in as its in-order
  /// successor. Overflow / weight rebalancing is deferred to the end of the
  /// operation and handled by deterministic subtree rebuilds.
  Result<PeerId> Join(PeerId contact);
  /// Graceful departure: content and range merge into an in-order adjacent
  /// peer, the bucket splices the leaver out, and underflow / weight
  /// rebalancing runs the same deterministic machinery as Join.
  Status Leave(PeerId leaver);

  /// Abrupt failure: the peer stops responding. Its keys are lost (the
  /// D3-Tree does not replicate data); its range is reclaimed by
  /// RecoverAllFailures via the cluster-local repair path.
  void Fail(PeerId victim);
  /// Repairs every pending failure: a live cluster member detects the dead
  /// peer (timed-out probe), reports it, and the cluster removes it like a
  /// leave whose content is lost.
  Status RecoverAllFailures();
  const std::vector<PeerId>& pending_failures() const { return failed_; }

  // ---- Index operations ----------------------------------------------------
  struct SearchResult {
    PeerId node = kNullPeer;
    bool found = false;
    int hops = 0;
  };
  Result<SearchResult> ExactSearch(PeerId from, Key key);

  struct RangeResult {
    std::vector<PeerId> nodes;
    uint64_t matches = 0;
    int hops = 0;
  };
  Result<RangeResult> RangeSearch(PeerId from, Key lo, Key hi);

  Status Insert(PeerId from, Key key);
  Status Delete(PeerId from, Key key);

  // ---- Introspection -------------------------------------------------------
  size_t size() const { return live_count_; }
  const D3Node& node(PeerId p) const;
  std::vector<PeerId> Members() const;  // in-order (key-space) order
  uint64_t total_keys() const { return total_keys_; }
  /// Keys irrecoverably dropped by failure recovery (no replication).
  uint64_t lost_keys() const { return lost_keys_; }

  BucketId root_bucket() const { return root_; }
  const D3Bucket& bucket(BucketId b) const;
  size_t bucket_count() const { return bucket_count_; }
  /// Live bucket ids in in-order (key-space) order.
  std::vector<BucketId> BucketsInOrder() const;
  /// Current target cluster size (config, or the adaptive log2 N default).
  size_t EffectiveTarget() const;
  /// Backbone tree height (single bucket = 0); -1 when empty. O(#buckets).
  int BackboneHeight() const;
  /// Completed deterministic subtree rebuilds (the restructuring unit).
  uint64_t rebuild_ops() const { return rebuild_ops_; }
  /// Peers reassigned to a different bucket across all rebuilds.
  uint64_t rebuild_moves() const { return rebuild_moves_; }

  /// Validates the structural invariants: backbone link symmetry, correct
  /// subtree weights, contiguous in-order range partition matching the
  /// adjacency chain, members inside their bucket range, rep-first member
  /// order, data inside ranges, and the protocol's balance guarantees
  /// (bucket size bounds, backbone weight balance) with slack for the
  /// adaptive target drifting between rebuilds. CHECK-fails on violation.
  void CheckInvariants() const;

  net::Network* network() { return net_; }
  const D3Config& config() const { return config_; }

 private:
  D3Node* N(PeerId p);
  const D3Node* N(PeerId p) const;
  D3Bucket* B(BucketId b);
  const D3Bucket* B(BucketId b) const;
  PeerId RepOf(BucketId b) const;

  void Count(PeerId from, PeerId to, net::MsgType type) {
    net_->Count(from, to, type);
  }

  // ---- backbone bookkeeping (d3tree_network.cc) ----
  BucketId AllocBucket();
  void FreeBucket(BucketId b);
  /// Recomputes b's bucket range from its members and re-derives extents
  /// upward until they stabilise, charging one kD3BackboneUpdate per level
  /// whose extent changed (the boundary notification the paper's clusters
  /// exchange).
  void RefreshRangesUpward(BucketId b, PeerId notifier);
  /// Adds `delta` to every weight on the path b -> root, charging one
  /// kD3WeightUpdate per backbone edge traversed.
  void PropagateWeight(BucketId b, int64_t delta);
  int CeilLog2Size() const;

  // ---- join (join.cc) ----
  /// Picks the member of `b` that donates half its range to a joiner: the
  /// contact itself when splittable, else the bucket's widest member (the
  /// representative's member table knows the widths), else a walk along the
  /// adjacency chain. Charges the forward hops. Returns kNullPeer when the
  /// whole domain is saturated (every peer manages a single value), in
  /// which case Join refuses with Status::Exhausted.
  PeerId FindSplitDonor(BucketId b, PeerId contact, int* hops);

  // ---- leave / failure (leave.cc) ----
  /// Removes x from the overlay: hands its range (and, unless
  /// `content_lost`, its keys) to an in-order adjacent peer, splices the
  /// adjacency chain and the bucket, fixes the representative, propagates
  /// the weight decrement and runs the deterministic rebalance.
  /// `coordinator` is the peer charged for the removal's messages (x itself
  /// on a graceful leave, the failure reporter during recovery).
  void RemoveMember(D3Node* x, PeerId coordinator, bool content_lost);
  void RemoveLastNode(D3Node* x);

  // ---- deterministic load balance (load_balance.cc) ----
  bool Overflowed(const D3Bucket* b, size_t target) const;
  bool Underflowed(const D3Bucket* b, size_t target) const;
  /// max(wl, wr) > 2*min(wl, wr) + 2*target over the child subtree weights:
  /// the deterministic trigger for a subtree rebuild.
  bool WeightViolated(const D3Bucket* b, size_t target) const;
  /// Runs after any membership change in bucket b: finds the highest
  /// ancestor with a weight violation (or b itself on bucket
  /// over/underflow) and rebuilds that subtree. At most one rebuild per
  /// operation -- the deferral that makes joins/leaves cluster-local.
  void RebalanceAfterChange(BucketId b);
  /// Deterministic redistribution: collects the subtree's peers in order,
  /// rebuilds a balanced backbone of max(1, P/target) buckets over them and
  /// reassigns peers evenly, charging one kD3Redistribute per reassigned
  /// peer and one kD3BackboneUpdate per backbone link built.
  void RebuildSubtree(BucketId v);

  // ---- routing (search.cc) ----
  struct RouteOutcome {
    PeerId node = kNullPeer;
    int hops = 0;
  };
  /// Routes from `from` to the member whose range contains `key`: forward
  /// to the representative, climb the backbone while the key is outside the
  /// subtree extent, descend by bucket-range comparison, then one hop from
  /// the representative to the owning member.
  Result<RouteOutcome> RouteToKey(PeerId from, Key key, net::MsgType hop_type);
  /// Member of b owning `key` (b's range must contain it).
  PeerId OwnerInBucket(const D3Bucket* b, Key key) const;

  // ---- members ----
  D3Config config_;
  net::Network* net_;

  std::vector<D3Node> nodes_;      // indexed by PeerId
  std::vector<D3Bucket> buckets_;  // indexed by BucketId
  std::vector<BucketId> free_buckets_;
  BucketId root_ = kNullBucket;
  size_t bucket_count_ = 0;
  size_t live_count_ = 0;

  std::vector<PeerId> failed_;
  uint64_t total_keys_ = 0;
  uint64_t lost_keys_ = 0;
  uint64_t rebuild_ops_ = 0;
  uint64_t rebuild_moves_ = 0;
};

}  // namespace d3tree
}  // namespace baton

#endif  // BATON_D3TREE_D3TREE_NETWORK_H_
