#include "d3tree/d3tree_network.h"

#include <algorithm>

#include "util/check.h"

namespace baton {
namespace d3tree {

D3TreeNetwork::D3TreeNetwork(const D3Config& config, net::Network* net)
    : config_(config), net_(net) {
  BATON_CHECK(net != nullptr);
  BATON_CHECK_LT(config.domain_lo, config.domain_hi);
  BATON_CHECK_GE(config.max_hops_factor, 1);
}

D3Node* D3TreeNetwork::N(PeerId p) {
  BATON_CHECK_LT(p, nodes_.size());
  return &nodes_[p];
}

const D3Node* D3TreeNetwork::N(PeerId p) const {
  BATON_CHECK_LT(p, nodes_.size());
  return &nodes_[p];
}

const D3Node& D3TreeNetwork::node(PeerId p) const { return *N(p); }

D3Bucket* D3TreeNetwork::B(BucketId b) {
  BATON_CHECK_LT(b, buckets_.size());
  BATON_CHECK(buckets_[b].live);
  return &buckets_[b];
}

const D3Bucket* D3TreeNetwork::B(BucketId b) const {
  BATON_CHECK_LT(b, buckets_.size());
  BATON_CHECK(buckets_[b].live);
  return &buckets_[b];
}

const D3Bucket& D3TreeNetwork::bucket(BucketId b) const { return *B(b); }

PeerId D3TreeNetwork::RepOf(BucketId b) const {
  const D3Bucket* bk = B(b);
  BATON_CHECK(!bk->members.empty());
  return bk->members.front();
}

size_t D3TreeNetwork::EffectiveTarget() const {
  if (config_.bucket_target > 0) return config_.bucket_target;
  size_t t = 0;
  for (size_t n = live_count_; n > 1; n >>= 1) ++t;  // floor(log2 N)
  return std::max<size_t>(2, t + 1);
}

int D3TreeNetwork::CeilLog2Size() const {
  int l = 0;
  while ((1ull << l) < live_count_) ++l;
  return l;
}

BucketId D3TreeNetwork::AllocBucket() {
  BucketId id;
  if (!free_buckets_.empty()) {
    id = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    id = static_cast<BucketId>(buckets_.size());
    buckets_.emplace_back();
  }
  buckets_[id] = D3Bucket{};
  buckets_[id].live = true;
  ++bucket_count_;
  return id;
}

void D3TreeNetwork::FreeBucket(BucketId b) {
  BATON_CHECK(buckets_[b].live);
  buckets_[b] = D3Bucket{};
  free_buckets_.push_back(b);
  --bucket_count_;
}

void D3TreeNetwork::RefreshRangesUpward(BucketId b, PeerId notifier) {
  D3Bucket* bk = B(b);
  if (!bk->members.empty()) {
    bk->range = Range{N(bk->members.front())->range.lo,
                      N(bk->members.back())->range.hi};
  }
  BucketId cur = b;
  while (cur != kNullBucket) {
    D3Bucket* c = B(cur);
    Range e = c->range;
    if (c->left != kNullBucket) e.lo = B(c->left)->extent.lo;
    if (c->right != kNullBucket) e.hi = B(c->right)->extent.hi;
    if (c->members.empty()) {
      // Transient mid-operation state (the bucket is about to be rebuilt):
      // the extent is carried by the children alone.
      if (c->left != kNullBucket) {
        e = B(c->left)->extent;
        if (c->right != kNullBucket) e.hi = B(c->right)->extent.hi;
      } else if (c->right != kNullBucket) {
        e = B(c->right)->extent;
      }
    }
    if (e == c->extent) break;
    c->extent = e;
    // A parent emptied by the in-flight removal has no representative to
    // notify; the rebalance pass that follows rebuilds it anyway.
    if (c->parent != kNullBucket && !B(c->parent)->members.empty()) {
      Count(notifier, RepOf(c->parent), net::MsgType::kD3BackboneUpdate);
    }
    cur = c->parent;
  }
}

void D3TreeNetwork::PropagateWeight(BucketId b, int64_t delta) {
  BucketId cur = b;
  while (cur != kNullBucket) {
    D3Bucket* c = B(cur);
    c->weight = static_cast<uint64_t>(static_cast<int64_t>(c->weight) + delta);
    if (c->parent != kNullBucket && !c->members.empty()) {
      Count(RepOf(cur), RepOf(c->parent), net::MsgType::kD3WeightUpdate);
    }
    cur = c->parent;
  }
}

std::vector<BucketId> D3TreeNetwork::BucketsInOrder() const {
  std::vector<BucketId> out;
  if (root_ == kNullBucket) return out;
  out.reserve(bucket_count_);
  // Iterative in-order walk: (bucket, descend-phase) stack.
  std::vector<std::pair<BucketId, bool>> stack;
  stack.emplace_back(root_, false);
  while (!stack.empty()) {
    auto [b, visited] = stack.back();
    stack.pop_back();
    const D3Bucket* bk = B(b);
    if (visited) {
      out.push_back(b);
      if (bk->right != kNullBucket) stack.emplace_back(bk->right, false);
    } else {
      stack.emplace_back(b, true);
      if (bk->left != kNullBucket) stack.emplace_back(bk->left, false);
    }
  }
  return out;
}

std::vector<PeerId> D3TreeNetwork::Members() const {
  std::vector<PeerId> out;
  out.reserve(live_count_);
  for (BucketId b : BucketsInOrder()) {
    const D3Bucket* bk = B(b);
    out.insert(out.end(), bk->members.begin(), bk->members.end());
  }
  return out;
}

int D3TreeNetwork::BackboneHeight() const {
  if (root_ == kNullBucket) return -1;
  int best = 0;
  std::vector<std::pair<BucketId, int>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto [b, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const D3Bucket* bk = B(b);
    if (bk->left != kNullBucket) stack.emplace_back(bk->left, d + 1);
    if (bk->right != kNullBucket) stack.emplace_back(bk->right, d + 1);
  }
  return best;
}

}  // namespace d3tree
}  // namespace baton
