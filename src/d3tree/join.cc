// D3-Tree join: cluster-local, deterministic. The contact forwards the
// joiner to its bucket's representative; the joiner splits the contact's
// range at the content median (value midpoint when the bag is too small)
// and splices in as the contact's in-order successor. No restructuring
// happens here -- the representative's overflow / weight checks at the end
// of the operation defer all rebalancing to a single deterministic subtree
// rebuild (load_balance.cc).
#include <algorithm>

#include "d3tree/d3tree_network.h"
#include "util/check.h"

namespace baton {
namespace d3tree {

PeerId D3TreeNetwork::Bootstrap() {
  BATON_CHECK_EQ(live_count_, 0u);
  BATON_CHECK_EQ(root_, kNullBucket);
  PeerId id = net_->Register();
  if (id >= nodes_.size()) nodes_.resize(id + 1);
  D3Node* n = &nodes_[id];
  *n = D3Node{};
  n->id = id;
  n->in_overlay = true;
  n->range = Range{config_.domain_lo, config_.domain_hi};

  root_ = AllocBucket();
  D3Bucket* rb = &buckets_[root_];
  rb->members.push_back(id);
  rb->weight = 1;
  rb->range = n->range;
  rb->extent = n->range;
  n->bucket = root_;
  ++live_count_;
  return id;
}

PeerId D3TreeNetwork::FindSplitDonor(BucketId b, PeerId contact, int* hops) {
  if (N(contact)->range.Width() >= 2) return contact;
  // The representative's member table knows every member's range: pick the
  // widest member (deterministic tie-break: first in order), one hop away.
  const D3Bucket* bk = B(b);
  PeerId widest = kNullPeer;
  Key best = 0;
  for (PeerId m : bk->members) {
    Key w = N(m)->range.Width();
    if (w > best) {
      best = w;
      widest = m;
    }
  }
  if (best >= 2) {
    if (widest != RepOf(b)) {
      Count(RepOf(b), widest, net::MsgType::kD3JoinForward);
      ++*hops;
    }
    return widest;
  }
  // Whole bucket is width-1 slivers (only possible when the domain is
  // nearly saturated): scan the adjacency chain rightward to its end, then
  // leftward from the bucket's low boundary, for a splittable peer. Returns
  // kNullPeer when every peer in the overlay is a width-1 sliver (the
  // domain is fully saturated and the join must be refused).
  int guard = 2 * static_cast<int>(live_count_) + 4;
  PeerId cur = bk->members.back();
  while (cur != kNullPeer && N(cur)->range.Width() < 2) {
    BATON_CHECK_GE(--guard, 0);
    PeerId next = N(cur)->right_adj;
    if (next != kNullPeer) {
      Count(cur, next, net::MsgType::kD3JoinForward);
      ++*hops;
    }
    cur = next;
  }
  if (cur == kNullPeer) {
    cur = bk->members.front();
    while (cur != kNullPeer && N(cur)->range.Width() < 2) {
      BATON_CHECK_GE(--guard, 0);
      PeerId next = N(cur)->left_adj;
      if (next != kNullPeer) {
        Count(cur, next, net::MsgType::kD3JoinForward);
        ++*hops;
      }
      cur = next;
    }
  }
  return cur;
}

Result<PeerId> D3TreeNetwork::Join(PeerId contact) {
  if (contact >= nodes_.size() || !N(contact)->in_overlay) {
    return Status::InvalidArgument("contact is not an overlay member");
  }
  BucketId b = N(contact)->bucket;
  int hops = 0;
  // The join request is registered at the cluster's representative (it
  // maintains the member table and the backbone links).
  if (contact != RepOf(b)) {
    Count(contact, RepOf(b), net::MsgType::kD3JoinForward);
    ++hops;
  }
  PeerId donor_id = FindSplitDonor(b, contact, &hops);
  if (donor_id == kNullPeer) {
    return Status::Exhausted("key domain saturated: every peer manages a "
                             "single value, no range left to split");
  }
  b = N(donor_id)->bucket;  // the sliver walk may leave the bucket

  PeerId yid = net_->Register();
  if (yid >= nodes_.size()) nodes_.resize(yid + 1);
  D3Node* donor = N(donor_id);  // re-derive after resize
  D3Node* y = &nodes_[yid];
  *y = D3Node{};
  y->id = yid;
  y->in_overlay = true;
  y->bucket = b;

  // y takes the upper half of the donor's range (content median when the
  // donor holds enough keys) and becomes its in-order successor -- the
  // donor keeps its own position, so the representative never changes on a
  // join.
  Key split = donor->data.size() >= 2 ? donor->data.Median()
                                      : donor->range.Mid();
  split = std::max(donor->range.lo + 1,
                   std::min(split, donor->range.hi - 1));
  y->range = Range{split, donor->range.hi};
  y->data = donor->data.ExtractAtLeast(split);
  donor->range.hi = split;
  Count(donor_id, yid, net::MsgType::kContentTransfer);

  // Splice into the adjacency chain just right of the donor.
  y->left_adj = donor_id;
  y->right_adj = donor->right_adj;
  if (donor->right_adj != kNullPeer) {
    Count(yid, donor->right_adj, net::MsgType::kD3BucketUpdate);
    N(donor->right_adj)->left_adj = yid;
  }
  donor->right_adj = yid;

  // Splice into the bucket just after the donor; the representative's
  // member table learns the new member.
  D3Bucket* bk = B(b);
  auto it = std::find(bk->members.begin(), bk->members.end(), donor_id);
  BATON_CHECK(it != bk->members.end());
  bk->members.insert(it + 1, yid);
  if (donor_id != RepOf(b)) {
    Count(donor_id, RepOf(b), net::MsgType::kD3BucketUpdate);
  }
  ++live_count_;

  // The split moved no bucket boundary (y sits inside b's range), but the
  // subtree weights along the path to the root each grew by one.
  PropagateWeight(b, +1);
  RebalanceAfterChange(b);
  return yid;
}

}  // namespace d3tree
}  // namespace baton
