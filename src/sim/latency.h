// Link latency models for the discrete-event kernel.
#ifndef BATON_SIM_LATENCY_H_
#define BATON_SIM_LATENCY_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "util/check.h"
#include "util/rng.h"

namespace baton {
namespace sim {

/// Latency model interface: ticks a message spends in flight.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Time Sample(Rng* rng) = 0;
};

/// Every message takes exactly `ticks`.
class ConstantLatency : public LatencyModel {
 public:
  explicit ConstantLatency(Time ticks) : ticks_(ticks) {}
  Time Sample(Rng*) override { return ticks_; }

 private:
  Time ticks_;
};

/// Uniform in [lo, hi] — models jitter between peers.
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(Time lo, Time hi) : lo_(lo), hi_(hi) {
    // Inverted bounds would underflow hi - lo + 1 in Sample() and draw from
    // an astronomically large range; reject them up front.
    BATON_CHECK_LE(lo, hi) << "UniformLatency bounds are inverted";
  }
  Time Sample(Rng* rng) override {
    return lo_ + rng->NextBelow(hi_ - lo_ + 1);
  }

 private:
  Time lo_;
  Time hi_;
};

}  // namespace sim
}  // namespace baton

#endif  // BATON_SIM_LATENCY_H_
