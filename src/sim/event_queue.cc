#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace baton {
namespace sim {

void EventQueue::ScheduleAt(Time at, std::function<void()> fn) {
  BATON_CHECK_GE(at, now_) << "cannot schedule into the past";
  queue_.push_back(Event{at, next_seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void EventQueue::ScheduleAfter(Time delay, std::function<void()> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::Step() {
  if (queue_.empty()) return false;
  // pop_heap moves the min-(at, seq) event into the back slot, from which
  // the handler can be MOVED out -- no std::function copy per event. The
  // event must leave the vector before it runs: handlers routinely schedule
  // more events, reallocating the heap under us.
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  now_ = ev.at;
  ++processed_;
  ev.fn();
  return true;
}

uint64_t EventQueue::RunUntilIdle(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

uint64_t EventQueue::RunUntil(Time t_end) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.front().at <= t_end && Step()) ++n;
  // The clock must land on the deadline itself, not on the last processed
  // event: a subsequent ScheduleAfter(d) fires at t_end + d. Never move
  // backwards (t_end may already be in the past).
  if (t_end > now_) now_ = t_end;
  return n;
}

}  // namespace sim
}  // namespace baton
