#include "sim/event_queue.h"

#include <utility>

#include "util/check.h"

namespace baton {
namespace sim {

void EventQueue::ScheduleAt(Time at, std::function<void()> fn) {
  BATON_CHECK_GE(at, now_) << "cannot schedule into the past";
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(Time delay, std::function<void()> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-prone,
  // so copy the function object (events are small).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++processed_;
  ev.fn();
  return true;
}

uint64_t EventQueue::RunUntilIdle(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

uint64_t EventQueue::RunUntil(Time t_end) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= t_end && Step()) ++n;
  // The clock must land on the deadline itself, not on the last processed
  // event: a subsequent ScheduleAfter(d) fires at t_end + d. Never move
  // backwards (t_end may already be in the past).
  if (t_end > now_) now_ = t_end;
  return n;
}

}  // namespace sim
}  // namespace baton
