// Discrete-event simulation kernel: a virtual clock plus a priority queue of
// scheduled callbacks. Deterministic: ties in time are broken by insertion
// sequence number.
#ifndef BATON_SIM_EVENT_QUEUE_H_
#define BATON_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace baton {
namespace sim {

using Time = uint64_t;

class EventQueue {
 public:
  /// Schedule `fn` to run at absolute virtual time `at` (>= now).
  void ScheduleAt(Time at, std::function<void()> fn);
  /// Schedule `fn` to run `delay` ticks from now.
  void ScheduleAfter(Time delay, std::function<void()> fn);

  /// Run the next event; returns false if the queue is empty.
  bool Step();
  /// Run events until the queue is empty or `max_events` were processed.
  /// Returns the number of events processed.
  uint64_t RunUntilIdle(uint64_t max_events = UINT64_MAX);
  /// Run all events with time <= t_end, then advance the clock to t_end
  /// (even if the last event fired earlier), so ScheduleAfter(d) afterwards
  /// fires at t_end + d. The clock never moves backwards.
  uint64_t RunUntil(Time t_end);

  Time now() const { return now_; }
  size_t pending() const { return queue_.size(); }
  uint64_t processed() const { return processed_; }

 private:
  struct Event {
    Time at;
    uint64_t seq;
    std::function<void()> fn;
  };
  /// Max-heap comparator inverted into a min-heap on (at, seq): earlier time
  /// first, insertion order breaking ties -- the determinism contract.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// A raw heap (push_heap/pop_heap over a vector) instead of
  /// std::priority_queue: pop_heap leaves the extracted event in the back
  /// slot as a mutable element, so Step() can MOVE the std::function out
  /// instead of copying it. With tens of thousands of in-flight serving
  /// continuations (each capturing state), the per-event copy was the
  /// kernel's dominant cost.
  std::vector<Event> queue_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace sim
}  // namespace baton

#endif  // BATON_SIM_EVENT_QUEUE_H_
