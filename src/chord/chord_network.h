// Chord baseline (Stoica et al., SIGCOMM 2001), instrumented with the same
// message counters as BATON so Fig. 8(a)-(d) can compare them directly.
//
// Implements the aggressive join/leave protocol of the original paper
// (find_successor routing, finger-table initialisation, update_others), on a
// 32-bit identifier ring. Exact queries hash the key and route to its
// successor in O(log N) hops; joins/leaves pay O(log^2 N) messages to fix
// finger tables -- the cost BATON's section V-A highlights. Range queries are
// not supported: "hashing destroys the ordering of data".
#ifndef BATON_CHORD_CHORD_NETWORK_H_
#define BATON_CHORD_CHORD_NETWORK_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "baton/key_bag.h"
#include "baton/types.h"
#include "net/network.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/status.h"

namespace baton {
namespace chord {

using net::PeerId;
using net::kNullPeer;

/// Ring identifiers are kBits-bit integers.
using ChordId = uint32_t;
inline constexpr int kBits = 32;

struct ChordNode {
  PeerId id = kNullPeer;
  ChordId chord_id = 0;
  bool in_ring = false;

  PeerId successor = kNullPeer;
  PeerId predecessor = kNullPeer;
  /// fingers[i] = successor of (chord_id + 2^i) mod 2^kBits.
  std::array<PeerId, kBits> fingers{};

  KeyBag keys;  // stores the *hashed* key identifiers
};

class ChordNetwork {
 public:
  ChordNetwork(net::Network* net, uint64_t seed);
  ChordNetwork(const ChordNetwork&) = delete;
  ChordNetwork& operator=(const ChordNetwork&) = delete;

  /// Creates the first node of the ring.
  PeerId Bootstrap();

  /// Joins via `contact`: one find_successor for the joiner's position, the
  /// finger-table initialisation, and update_others.
  Result<PeerId> Join(PeerId contact);

  /// Leaves: keys to the successor, pointer fixes, and the O(log^2 N)
  /// update of fingers pointing at the leaver.
  Status Leave(PeerId leaver);

  struct LookupResult {
    PeerId node = kNullPeer;
    bool found = false;
    int hops = 0;
  };
  /// Exact-match query for an (unhashed) key.
  Result<LookupResult> Lookup(PeerId from, Key key);

  Status Insert(PeerId from, Key key);
  Status Delete(PeerId from, Key key);

  size_t size() const { return members_.size(); }
  const std::vector<PeerId>& members() const { return members_; }
  const ChordNode& node(PeerId p) const;
  uint64_t total_keys() const { return total_keys_; }

  /// Validates ring order, successor/predecessor symmetry, finger
  /// correctness and key placement. CHECK-fails on violation.
  void CheckInvariants() const;

  static ChordId HashKey(Key k);
  static ChordId HashPeer(PeerId p, uint64_t salt);

 private:
  ChordNode* N(PeerId p);
  const ChordNode* N(PeerId p) const;

  /// True if x lies in the ring interval (a, b] (half-open from a).
  static bool InIntervalOpenClosed(ChordId x, ChordId a, ChordId b);
  /// True if x lies in the ring interval (a, b) (open).
  static bool InIntervalOpen(ChordId x, ChordId a, ChordId b);

  PeerId ClosestPrecedingFinger(const ChordNode* n, ChordId id) const;
  /// Iterative find_predecessor(id); every forwarding hop counts one message
  /// of type `hop_type`.
  PeerId FindPredecessor(PeerId from, ChordId id, net::MsgType hop_type,
                         int* hops);
  PeerId FindSuccessor(PeerId from, ChordId id, net::MsgType hop_type,
                       int* hops);

  void InitFingerTable(ChordNode* n, PeerId contact);
  void UpdateOthersOnJoin(ChordNode* n);
  void UpdateOthersOnLeave(ChordNode* n);

  net::Network* net_;
  Rng rng_;
  uint64_t salt_;
  std::vector<std::unique_ptr<ChordNode>> nodes_;
  std::vector<PeerId> members_;  // kept sorted by chord_id
  util::FlatSet64 used_ids_;  // collision re-hash (never reused)
  uint64_t total_keys_ = 0;
};

}  // namespace chord
}  // namespace baton

#endif  // BATON_CHORD_CHORD_NETWORK_H_
