#include "chord/chord_network.h"

#include <algorithm>

#include "util/check.h"

namespace baton {
namespace chord {

ChordNetwork::ChordNetwork(net::Network* net, uint64_t seed)
    : net_(net), rng_(seed), salt_(Mix64(seed ^ 0xc0ffee)) {
  BATON_CHECK(net != nullptr);
}

ChordId ChordNetwork::HashKey(Key k) {
  return static_cast<ChordId>(Mix64(static_cast<uint64_t>(k)) >> (64 - kBits));
}

ChordId ChordNetwork::HashPeer(PeerId p, uint64_t salt) {
  return static_cast<ChordId>(Mix64(p ^ salt) >> (64 - kBits));
}

ChordNode* ChordNetwork::N(PeerId p) {
  BATON_CHECK_LT(p, nodes_.size());
  return nodes_[p].get();
}

const ChordNode* ChordNetwork::N(PeerId p) const {
  BATON_CHECK_LT(p, nodes_.size());
  return nodes_[p].get();
}

const ChordNode& ChordNetwork::node(PeerId p) const { return *N(p); }

bool ChordNetwork::InIntervalOpenClosed(ChordId x, ChordId a, ChordId b) {
  if (a == b) return true;  // the full ring
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped
}

bool ChordNetwork::InIntervalOpen(ChordId x, ChordId a, ChordId b) {
  if (a == b) return x != a;  // full ring minus the endpoint
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

PeerId ChordNetwork::Bootstrap() {
  BATON_CHECK(members_.empty());
  auto node = std::make_unique<ChordNode>();
  node->id = net_->Register();
  node->chord_id = HashPeer(node->id, salt_);
  used_ids_.Insert(node->chord_id);
  node->in_ring = true;
  node->successor = node->id;
  node->predecessor = node->id;
  node->fingers.fill(node->id);
  PeerId id = node->id;
  nodes_.push_back(std::move(node));
  members_.push_back(id);
  return id;
}

PeerId ChordNetwork::ClosestPrecedingFinger(const ChordNode* n,
                                            ChordId id) const {
  for (int i = kBits - 1; i >= 0; --i) {
    PeerId f = n->fingers[static_cast<size_t>(i)];
    if (f == kNullPeer) continue;
    if (InIntervalOpen(N(f)->chord_id, n->chord_id, id)) return f;
  }
  return n->id;
}

PeerId ChordNetwork::FindPredecessor(PeerId from, ChordId id,
                                     net::MsgType hop_type, int* hops) {
  const ChordNode* n = N(from);
  int guard = 4 * kBits + static_cast<int>(size());
  while (!InIntervalOpenClosed(id, n->chord_id, N(n->successor)->chord_id)) {
    BATON_CHECK_GE(--guard, 0) << "chord routing did not terminate";
    PeerId next = ClosestPrecedingFinger(n, id);
    if (next == n->id) {
      // Fingers give no progress (small rings): fall back to the successor.
      next = n->successor;
    }
    net_->Count(n->id, next, hop_type);
    if (hops != nullptr) ++*hops;
    n = N(next);
  }
  return n->id;
}

PeerId ChordNetwork::FindSuccessor(PeerId from, ChordId id,
                                   net::MsgType hop_type, int* hops) {
  PeerId pred = FindPredecessor(from, id, hop_type, hops);
  PeerId succ = N(pred)->successor;
  // One message to learn the predecessor's successor.
  net_->Count(pred, succ, hop_type);
  if (hops != nullptr) ++*hops;
  return succ;
}

Result<PeerId> ChordNetwork::Join(PeerId contact) {
  BATON_CHECK(!members_.empty()) << "Bootstrap the ring first";
  if (!N(contact)->in_ring) {
    return Status::InvalidArgument("contact is not a ring member");
  }
  auto fresh = std::make_unique<ChordNode>();
  fresh->id = net_->Register();
  fresh->fingers.fill(kNullPeer);
  PeerId nid = fresh->id;
  nodes_.push_back(std::move(fresh));
  ChordNode* n = N(nid);
  n->in_ring = true;

  // 32-bit identifiers collide with non-negligible probability at 10^4
  // peers (birthday bound); a colliding joiner re-hashes with a nonce, as a
  // real deployment would re-derive its identifier.
  uint64_t nonce = 0;
  do {
    n->chord_id = HashPeer(nid, salt_ ^ Mix64(nonce++));
  } while (used_ids_.Contains(n->chord_id));
  used_ids_.Insert(n->chord_id);

  // Locate n's successor (counted as the join's search phase).
  int hops = 0;
  PeerId succ = FindSuccessor(contact, n->chord_id, net::MsgType::kChordLookup,
                              &hops);
  ChordNode* s = N(succ);
  PeerId pred = s->predecessor;
  n->successor = succ;
  n->predecessor = pred;
  N(pred)->successor = nid;
  s->predecessor = nid;
  net_->Count(nid, pred, net::MsgType::kChordNotify);
  net_->Count(nid, succ, net::MsgType::kChordNotify);

  // Keys in (pred, n] move from the successor.
  net_->Count(succ, nid, net::MsgType::kChordKeyMove);
  {
    // Extract the hashed keys that now belong to n. KeyBag stores the hashed
    // ids as signed keys; ring intervals may wrap, so split the extraction.
    ChordId lo = N(pred)->chord_id;
    ChordId hi = n->chord_id;
    KeyBag moved;
    if (lo < hi) {
      KeyBag part = s->keys.ExtractAtLeast(static_cast<Key>(lo) + 1);
      KeyBag keep = part.ExtractAtLeast(static_cast<Key>(hi) + 1);
      moved.Absorb(&part);
      s->keys.Absorb(&keep);
    } else {
      KeyBag low = s->keys.ExtractBelow(static_cast<Key>(hi) + 1);
      KeyBag high = s->keys.ExtractAtLeast(static_cast<Key>(lo) + 1);
      moved.Absorb(&low);
      moved.Absorb(&high);
    }
    n->keys.Absorb(&moved);
  }

  InitFingerTable(n, contact);
  UpdateOthersOnJoin(n);

  members_.insert(std::upper_bound(members_.begin(), members_.end(), nid,
                                   [this](PeerId a, PeerId b) {
                                     return N(a)->chord_id < N(b)->chord_id;
                                   }),
                  nid);
  return nid;
}

void ChordNetwork::InitFingerTable(ChordNode* n, PeerId contact) {
  // Original optimisation: when finger[i].start still precedes finger[i-1]'s
  // node, the same node covers it and no lookup is needed.
  n->fingers[0] = n->successor;
  for (int i = 1; i < kBits; ++i) {
    ChordId start =
        n->chord_id + (static_cast<ChordId>(1) << i);  // wraps mod 2^kBits
    PeerId prev = n->fingers[static_cast<size_t>(i - 1)];
    ChordId prev_id = N(prev)->chord_id;
    // start in [n, prev_id) on the ring.
    if (start == n->chord_id || InIntervalOpen(start, n->chord_id, prev_id)) {
      n->fingers[static_cast<size_t>(i)] = prev;
      continue;
    }
    n->fingers[static_cast<size_t>(i)] =
        FindSuccessor(contact, start, net::MsgType::kChordJoinInit, nullptr);
  }
}

void ChordNetwork::UpdateOthersOnJoin(ChordNode* n) {
  // Node q must re-point its i-th finger at n iff successor(q + 2^i) == n,
  // i.e. q + 2^i lies in (pred(n), n]. Candidates are found by walking
  // predecessors from the last node at or before n - 2^i (the classic
  // pseudo-code's find_predecessor(n - 2^i) with the +1 fix).
  ChordId pred_id = N(n->predecessor)->chord_id;
  for (int i = 0; i < kBits; ++i) {
    ChordId span = static_cast<ChordId>(1) << i;
    ChordId target = n->chord_id - span;
    PeerId pid = FindPredecessor(n->id, static_cast<ChordId>(target + 1),
                                 net::MsgType::kChordUpdateOthers, nullptr);
    int guard = static_cast<int>(size()) + 2;
    while (guard-- > 0) {
      ChordNode* p = N(pid);
      if (p->id == n->id) {  // the new node's own fingers were just built
        pid = p->predecessor;
        continue;
      }
      ChordId start = p->chord_id + span;
      if (!InIntervalOpenClosed(start, pred_id, n->chord_id)) break;
      if (p->fingers[static_cast<size_t>(i)] != n->id) {
        net_->Count(n->id, pid, net::MsgType::kChordUpdateOthers);
        p->fingers[static_cast<size_t>(i)] = n->id;
      }
      pid = p->predecessor;
    }
  }
}

void ChordNetwork::UpdateOthersOnLeave(ChordNode* n) {
  // Fingers pointing at n belong to nodes q with q + 2^i in (pred(n), n];
  // they are redirected to n's successor. Runs while n is still linked, so
  // routing during the walks behaves normally.
  ChordId pred_id = N(n->predecessor)->chord_id;
  for (int i = 0; i < kBits; ++i) {
    ChordId span = static_cast<ChordId>(1) << i;
    ChordId target = n->chord_id - span;
    PeerId pid = FindPredecessor(n->successor, static_cast<ChordId>(target + 1),
                                 net::MsgType::kChordUpdateOthers, nullptr);
    int guard = static_cast<int>(size()) + 2;
    while (guard-- > 0) {
      ChordNode* p = N(pid);
      if (p->id == n->id) {
        pid = p->predecessor;
        continue;
      }
      ChordId start = p->chord_id + span;
      if (!InIntervalOpenClosed(start, pred_id, n->chord_id)) break;
      if (p->fingers[static_cast<size_t>(i)] == n->id) {
        net_->Count(n->id, pid, net::MsgType::kChordUpdateOthers);
        p->fingers[static_cast<size_t>(i)] = n->successor;
      }
      pid = p->predecessor;
    }
  }
}

Status ChordNetwork::Leave(PeerId leaver) {
  ChordNode* n = N(leaver);
  if (!n->in_ring) return Status::InvalidArgument("not a ring member");
  if (size() == 1) {
    total_keys_ -= n->keys.size();
    n->keys = KeyBag{};
    n->in_ring = false;
    members_.clear();
    net_->MarkDead(leaver);
    return Status::OK();
  }
  // Redirect fingers first (routing still works while n is linked), then
  // move keys and unlink the ring pointers.
  UpdateOthersOnLeave(n);
  net_->Count(n->id, n->successor, net::MsgType::kChordKeyMove);
  N(n->successor)->keys.Absorb(&n->keys);
  N(n->predecessor)->successor = n->successor;
  N(n->successor)->predecessor = n->predecessor;
  net_->Count(n->id, n->predecessor, net::MsgType::kChordNotify);
  net_->Count(n->id, n->successor, net::MsgType::kChordNotify);

  members_.erase(std::find(members_.begin(), members_.end(), leaver));
  n->in_ring = false;
  net_->MarkDead(leaver);
  return Status::OK();
}

Result<ChordNetwork::LookupResult> ChordNetwork::Lookup(PeerId from, Key key) {
  if (!N(from)->in_ring) {
    return Status::InvalidArgument("query origin not in the ring");
  }
  LookupResult res;
  ChordId id = HashKey(key);
  res.node = FindSuccessor(from, id, net::MsgType::kExactQuery, &res.hops);
  res.found = N(res.node)->keys.Contains(static_cast<Key>(id));
  return res;
}

Status ChordNetwork::Insert(PeerId from, Key key) {
  if (!N(from)->in_ring) {
    return Status::InvalidArgument("origin not in the ring");
  }
  ChordId id = HashKey(key);
  int hops = 0;
  PeerId owner = FindSuccessor(from, id, net::MsgType::kInsert, &hops);
  N(owner)->keys.Insert(static_cast<Key>(id));
  ++total_keys_;
  return Status::OK();
}

Status ChordNetwork::Delete(PeerId from, Key key) {
  if (!N(from)->in_ring) {
    return Status::InvalidArgument("origin not in the ring");
  }
  ChordId id = HashKey(key);
  int hops = 0;
  PeerId owner = FindSuccessor(from, id, net::MsgType::kDelete, &hops);
  if (!N(owner)->keys.Erase(static_cast<Key>(id))) {
    return Status::NotFound("key " + std::to_string(key));
  }
  --total_keys_;
  return Status::OK();
}

void ChordNetwork::CheckInvariants() const {
  if (members_.empty()) return;
  // members_ sorted by chord id.
  for (size_t i = 0; i + 1 < members_.size(); ++i) {
    BATON_CHECK_LT(N(members_[i])->chord_id, N(members_[i + 1])->chord_id);
  }
  uint64_t keys = 0;
  for (size_t i = 0; i < members_.size(); ++i) {
    const ChordNode* n = N(members_[i]);
    const ChordNode* succ = N(members_[(i + 1) % members_.size()]);
    const ChordNode* pred =
        N(members_[(i + members_.size() - 1) % members_.size()]);
    BATON_CHECK(n->in_ring);
    BATON_CHECK_EQ(n->successor, succ->id);
    BATON_CHECK_EQ(n->predecessor, pred->id);
    // Fingers: fingers[i] is the first live node at or after chord_id + 2^i.
    for (int b = 0; b < kBits; ++b) {
      ChordId start = n->chord_id + (static_cast<ChordId>(1) << b);
      PeerId expect = kNullPeer;
      // Find successor of start by scanning the sorted ring.
      auto it = std::lower_bound(members_.begin(), members_.end(), start,
                                 [this](PeerId a, ChordId v) {
                                   return N(a)->chord_id < v;
                                 });
      expect = it == members_.end() ? members_.front() : *it;
      BATON_CHECK_EQ(n->fingers[static_cast<size_t>(b)], expect)
          << "finger " << b << " of node " << n->id;
    }
    // Keys: every stored hashed id belongs to (pred, n].
    for (Key hk : n->keys.SortedKeys()) {
      BATON_CHECK(InIntervalOpenClosed(static_cast<ChordId>(hk),
                                       pred->chord_id, n->chord_id))
          << "key " << hk << " misplaced at node " << n->id;
    }
    keys += n->keys.size();
  }
  BATON_CHECK_EQ(keys, total_keys_);
}

}  // namespace chord
}  // namespace baton
