// Replication subsystem: durable key storage under churn.
//
// The paper's index stores no replicas -- a failed peer's routing state is
// regenerated but its keys are simply lost (section III-C). This subsystem
// mirrors every node's KeyBag on a configurable set of r replica holders so
// failure recovery can restore the victim's keys from the freshest copy
// instead of dropping them.
//
// The manager is overlay-agnostic: it stores replica copies keyed by the
// primary's PeerId and charges every replica interaction through
// net::Network::Count (kReplicaPush / kReplicaSync / kReplicaRestore / ...),
// so the durability benches can plot replication overhead exactly like the
// paper plots maintenance traffic. The overlay supplies holder candidates
// from its own links (adjacent nodes and/or routing-table neighbours, per
// ReplicationConfig) -- the peers a primary can reach without extra routing.
//
// factor == 0 disables the subsystem entirely: no state, no messages, and
// every existing experiment reproduces its pre-replication counters.
#ifndef BATON_REPLICATION_REPLICATION_H_
#define BATON_REPLICATION_REPLICATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "baton/key_bag.h"
#include "baton/types.h"
#include "net/message.h"
#include "net/network.h"
#include "util/flat_map.h"

namespace baton {
namespace replication {

/// Tunables for one overlay's replication policy.
struct ReplicationConfig {
  /// Number of replica holders per node (r). 0 disables replication.
  int factor = 0;
  /// Draw holders from the primary's adjacent (in-order neighbour) links
  /// first: their ranges border the primary's, so a restored range stays
  /// local to the region that inherits it.
  bool use_adjacents = true;
  /// Also draw from vertical links and sideways routing-table neighbours
  /// (needed to reach factor > 2, and when adjacents are dead).
  bool use_routing_neighbours = true;
  /// Push every single-key mutation to all live holders immediately (one
  /// kReplicaPush per holder per mutation). When false, mutations only bump
  /// the primary's version and replicas go stale until the next bulk sync or
  /// anti-entropy pass -- a cheap-but-lossy mode (exercised by the lazy-mode
  /// replication tests) that loses exactly the unsynced keys on failure.
  bool eager_push = true;
};

/// One mirrored copy of a primary's KeyBag at a holder peer.
struct ReplicaRecord {
  net::PeerId holder = net::kNullPeer;
  KeyBag keys;
  uint64_t version = 0;  // primary version this copy reflects
};

/// Aggregate result of one anti-entropy pass over a primary.
struct RepairStats {
  size_t probed = 0;   // freshness probes sent
  size_t healed = 0;   // stale replicas re-synced
  size_t rehomed = 0;  // replicas recreated on a new holder

  RepairStats& operator+=(const RepairStats& o) {
    probed += o.probed;
    healed += o.healed;
    rehomed += o.rehomed;
    return *this;
  }
};

class ReplicationManager {
 public:
  ReplicationManager(const ReplicationConfig& config, net::Network* net);
  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  bool enabled() const { return config_.factor > 0; }
  const ReplicationConfig& config() const { return config_; }

  // ------------------------------------------------------------------
  // Mutation hooks (called by the overlay as the primary's bag changes).
  // ------------------------------------------------------------------

  /// The primary's bag changed in bulk (join split, departure absorb, load
  /// move). Re-selects up to `factor` live holders from `candidates` (in
  /// order, skipping the primary and dead peers) and pushes a full copy to
  /// every missing or stale holder, one kReplicaSync each. `sender` defaults
  /// to the primary itself; failure recovery passes the relaying peer's
  /// address when it updates a still-dead primary's bag on its behalf.
  void FullSync(net::PeerId primary, const KeyBag& data,
                const std::vector<net::PeerId>& candidates,
                net::PeerId sender = net::kNullPeer);

  /// Single-key mutations. With eager_push, one kReplicaPush per live
  /// holder; a dead holder is skipped and its copy goes stale (the primary
  /// learns of the death through the overlay's own failure handling, not a
  /// per-push timeout).
  void PushInsert(net::PeerId primary, Key k);
  void PushErase(net::PeerId primary, Key k);

  // ------------------------------------------------------------------
  // Membership hooks.
  // ------------------------------------------------------------------

  /// The primary left the overlay; its replica set is discarded. When
  /// `charge` is set (graceful departure), `notifier` sends one kReplicaDrop
  /// per live holder; a failed primary's holders discard silently when they
  /// learn of the recovery.
  void DropPrimary(net::PeerId primary, net::PeerId notifier, bool charge);

  /// `holder` is gone (left or died): removes every replica it held and
  /// returns the affected primaries so the overlay can re-sync them onto
  /// fresh holders.
  std::vector<net::PeerId> ReleaseHolder(net::PeerId holder);

  /// Primaries whose replica `holder` currently holds (inspection before a
  /// departure decides which replicas need a hand-off).
  std::vector<net::PeerId> HeldPrimaries(net::PeerId holder) const;

  /// A gracefully departing holder hands its copy of `primary`'s replica to
  /// a fresh live candidate, preserving contents and version (one
  /// kReplicaSync charged from `from`). Used when the primary is a dead
  /// pending failure that cannot re-sync a replacement itself -- the
  /// departing holder may be carrying the only surviving copy. Returns
  /// false (and drops the record) when no destination exists.
  bool RelocateReplica(net::PeerId primary, net::PeerId from,
                       const std::vector<net::PeerId>& candidates);

  /// Recreates missing replicas (up to factor) on fresh candidates without
  /// touching up-to-date copies: the repair step after a holder departs.
  /// Returns #replicas created (one kReplicaSync each).
  size_t TopUp(net::PeerId primary, const KeyBag& data,
               const std::vector<net::PeerId>& candidates);

  // ------------------------------------------------------------------
  // Recovery and anti-entropy.
  // ------------------------------------------------------------------

  /// Restores the freshest live replica of `failed` into `*out`. Charges one
  /// kReplicaRestore request plus the kReplicaRestoreReply carrying the
  /// contents. Returns false when no live holder remains (keys are lost).
  bool Restore(net::PeerId failed, net::PeerId initiator, KeyBag* out);

  /// Anti-entropy pass over one primary: probes every holder's version
  /// (kReplicaProbe / kReplicaProbeReply), re-syncs stale copies, drops dead
  /// holders and recreates their replicas on fresh candidates.
  RepairStats Repair(net::PeerId primary, const KeyBag& data,
                     const std::vector<net::PeerId>& candidates);

  // ------------------------------------------------------------------
  // Introspection (tests, benches, invariant checks).
  // ------------------------------------------------------------------

  size_t replica_count(net::PeerId primary) const;
  /// Replicas whose holder is currently alive (the ones that actually
  /// protect the primary right now).
  size_t live_replica_count(net::PeerId primary) const;
  uint64_t version_of(net::PeerId primary) const;
  std::vector<net::PeerId> HoldersOf(net::PeerId primary) const;
  const KeyBag* ReplicaAt(net::PeerId primary, net::PeerId holder) const;
  /// Total keys held in replicas across all primaries (storage overhead).
  uint64_t total_replica_keys() const;

  /// CHECK-fails unless every up-to-date replica of `primary` matches `data`
  /// exactly (stale copies -- version behind, e.g. holder was dead during a
  /// push -- are exempt; anti-entropy is responsible for them).
  void CheckConsistent(net::PeerId primary, const KeyBag& data) const;

 private:
  struct PrimaryState {
    uint64_t version = 0;  // bumped on every mutation of the primary's bag
    std::vector<ReplicaRecord> replicas;
  };

  /// Adds holders from `candidates` until `factor` are present; each new
  /// holder receives a full copy (kReplicaSync charged from `sender`).
  /// Returns #added.
  size_t TopUpHolders(net::PeerId primary, net::PeerId sender,
                      PrimaryState* st, const KeyBag& data,
                      const std::vector<net::PeerId>& candidates);
  /// Removes records whose holder is dead. Uncharged: nothing can be sent to
  /// a dead peer, and the primary hears of the death through the overlay.
  void PruneDeadHolders(net::PeerId primary, PrimaryState* st);
  void SyncRecord(net::PeerId sender, const PrimaryState& st,
                  ReplicaRecord* rec, const KeyBag& data);

  /// Reverse-index bookkeeping: every replica add/remove goes through these
  /// so ReleaseHolder stays O(replicas held) instead of scanning the map.
  void IndexHolder(net::PeerId holder, net::PeerId primary);
  void UnindexHolder(net::PeerId holder, net::PeerId primary);

  ReplicationConfig config_;
  net::Network* net_;
  /// Keyed by primary peer id. Flat open-addressing maps (util/flat_map.h):
  /// probed on every insert/erase push when replication is on, and never
  /// iterated in an order-sensitive way (the only traversal is an
  /// order-independent sum), so the container swap cannot perturb message
  /// counts.
  util::FlatMap64<PrimaryState> primaries_;
  // holder -> primaries whose replica it currently holds.
  util::FlatMap64<std::vector<net::PeerId>> held_for_;
};

}  // namespace replication
}  // namespace baton

#endif  // BATON_REPLICATION_REPLICATION_H_
