#include "replication/replication.h"

#include <algorithm>

#include "util/check.h"

namespace baton {
namespace replication {

ReplicationManager::ReplicationManager(const ReplicationConfig& config,
                                       net::Network* net)
    : config_(config), net_(net) {
  BATON_CHECK(net != nullptr);
  BATON_CHECK_GE(config.factor, 0);
}

void ReplicationManager::SyncRecord(net::PeerId sender,
                                    const PrimaryState& st, ReplicaRecord* rec,
                                    const KeyBag& data) {
  net_->Count(sender, rec->holder, net::MsgType::kReplicaSync);
  rec->keys = data;
  rec->version = st.version;
}

void ReplicationManager::IndexHolder(net::PeerId holder, net::PeerId primary) {
  held_for_.GetOrInsert(holder).push_back(primary);
}

void ReplicationManager::UnindexHolder(net::PeerId holder,
                                       net::PeerId primary) {
  std::vector<net::PeerId>* v = held_for_.Find(holder);
  if (v == nullptr) return;
  for (size_t i = 0; i < v->size(); ++i) {
    if ((*v)[i] == primary) {
      (*v)[i] = v->back();
      v->pop_back();
      break;
    }
  }
  if (v->empty()) held_for_.Erase(holder);
}

void ReplicationManager::PruneDeadHolders(net::PeerId primary,
                                          PrimaryState* st) {
  auto dead = [&](const ReplicaRecord& r) { return !net_->IsAlive(r.holder); };
  for (const ReplicaRecord& r : st->replicas) {
    if (dead(r)) UnindexHolder(r.holder, primary);
  }
  st->replicas.erase(
      std::remove_if(st->replicas.begin(), st->replicas.end(), dead),
      st->replicas.end());
}

size_t ReplicationManager::TopUpHolders(
    net::PeerId primary, net::PeerId sender, PrimaryState* st,
    const KeyBag& data, const std::vector<net::PeerId>& candidates) {
  size_t added = 0;
  for (net::PeerId cand : candidates) {
    if (st->replicas.size() >= static_cast<size_t>(config_.factor)) break;
    if (cand == primary || !net_->IsAlive(cand)) continue;
    bool already = false;
    for (const ReplicaRecord& r : st->replicas) {
      if (r.holder == cand) already = true;
    }
    if (already) continue;
    ReplicaRecord rec;
    rec.holder = cand;
    st->replicas.push_back(std::move(rec));
    SyncRecord(sender, *st, &st->replicas.back(), data);
    IndexHolder(cand, primary);
    ++added;
  }
  return added;
}

void ReplicationManager::FullSync(net::PeerId primary, const KeyBag& data,
                                  const std::vector<net::PeerId>& candidates,
                                  net::PeerId sender) {
  if (!enabled()) return;
  if (sender == net::kNullPeer) sender = primary;
  PrimaryState& st = primaries_.GetOrInsert(primary);
  ++st.version;  // the bag changed in bulk: every copy is now stale
  PruneDeadHolders(primary, &st);
  for (ReplicaRecord& rec : st.replicas) {
    SyncRecord(sender, st, &rec, data);
  }
  TopUpHolders(primary, sender, &st, data, candidates);
}

void ReplicationManager::PushInsert(net::PeerId primary, Key k) {
  if (!enabled()) return;
  PrimaryState& st = primaries_.GetOrInsert(primary);
  ++st.version;
  if (!config_.eager_push) return;
  for (ReplicaRecord& rec : st.replicas) {
    if (!net_->IsAlive(rec.holder)) continue;  // goes stale; repaired later
    net_->Count(primary, rec.holder, net::MsgType::kReplicaPush);
    rec.keys.Insert(k);
    rec.version = st.version;
  }
}

void ReplicationManager::PushErase(net::PeerId primary, Key k) {
  if (!enabled()) return;
  PrimaryState& st = primaries_.GetOrInsert(primary);
  ++st.version;
  if (!config_.eager_push) return;
  for (ReplicaRecord& rec : st.replicas) {
    if (!net_->IsAlive(rec.holder)) continue;
    net_->Count(primary, rec.holder, net::MsgType::kReplicaPush);
    rec.keys.Erase(k);
    rec.version = st.version;
  }
}

void ReplicationManager::DropPrimary(net::PeerId primary, net::PeerId notifier,
                                     bool charge) {
  if (!enabled()) return;
  PrimaryState* st = primaries_.Find(primary);
  if (st == nullptr) return;
  for (const ReplicaRecord& rec : st->replicas) {
    if (charge && net_->IsAlive(rec.holder)) {
      net_->Count(notifier, rec.holder, net::MsgType::kReplicaDrop);
    }
    UnindexHolder(rec.holder, primary);
  }
  primaries_.Erase(primary);
}

std::vector<net::PeerId> ReplicationManager::ReleaseHolder(
    net::PeerId holder) {
  std::vector<net::PeerId> affected;
  if (!enabled()) return affected;
  std::vector<net::PeerId>* held_list = held_for_.Find(holder);
  if (held_list == nullptr) return affected;
  affected = std::move(*held_list);
  held_for_.Erase(holder);
  for (net::PeerId primary : affected) {
    PrimaryState* pst = primaries_.Find(primary);
    if (pst == nullptr) continue;
    auto held = [&](const ReplicaRecord& r) { return r.holder == holder; };
    std::vector<ReplicaRecord>& reps = pst->replicas;
    reps.erase(std::remove_if(reps.begin(), reps.end(), held), reps.end());
  }
  return affected;
}

std::vector<net::PeerId> ReplicationManager::HeldPrimaries(
    net::PeerId holder) const {
  const std::vector<net::PeerId>* v = held_for_.Find(holder);
  return v == nullptr ? std::vector<net::PeerId>{} : *v;
}

bool ReplicationManager::RelocateReplica(
    net::PeerId primary, net::PeerId from,
    const std::vector<net::PeerId>& candidates) {
  if (!enabled()) return false;
  PrimaryState* pst = primaries_.Find(primary);
  if (pst == nullptr) return false;
  ReplicaRecord* rec = nullptr;
  for (ReplicaRecord& r : pst->replicas) {
    if (r.holder == from) rec = &r;
  }
  if (rec == nullptr) return false;
  net::PeerId dest = net::kNullPeer;
  for (net::PeerId cand : candidates) {
    if (cand == primary || cand == from || !net_->IsAlive(cand)) continue;
    bool already = false;
    for (const ReplicaRecord& r : pst->replicas) {
      if (r.holder == cand) already = true;
    }
    if (!already) {
      dest = cand;
      break;
    }
  }
  UnindexHolder(from, primary);
  if (dest == net::kNullPeer) {
    // Nowhere to hand off: the copy leaves with the holder.
    auto held = [&](const ReplicaRecord& r) { return r.holder == from; };
    std::vector<ReplicaRecord>& reps = pst->replicas;
    reps.erase(std::remove_if(reps.begin(), reps.end(), held), reps.end());
    return false;
  }
  net_->Count(from, dest, net::MsgType::kReplicaSync);
  rec->holder = dest;  // contents and version travel with the copy
  IndexHolder(dest, primary);
  return true;
}

size_t ReplicationManager::TopUp(net::PeerId primary, const KeyBag& data,
                                 const std::vector<net::PeerId>& candidates) {
  if (!enabled()) return 0;
  PrimaryState& st = primaries_.GetOrInsert(primary);
  PruneDeadHolders(primary, &st);
  return TopUpHolders(primary, primary, &st, data, candidates);
}

bool ReplicationManager::Restore(net::PeerId failed, net::PeerId initiator,
                                 KeyBag* out) {
  if (!enabled()) return false;
  const PrimaryState* st = primaries_.Find(failed);
  if (st == nullptr) return false;
  const ReplicaRecord* best = nullptr;
  for (const ReplicaRecord& rec : st->replicas) {
    if (!net_->IsAlive(rec.holder)) continue;
    if (best == nullptr || rec.version > best->version) best = &rec;
  }
  if (best == nullptr) return false;
  net_->Count(initiator, best->holder, net::MsgType::kReplicaRestore);
  net_->Count(best->holder, initiator, net::MsgType::kReplicaRestoreReply);
  *out = best->keys;
  return true;
}

RepairStats ReplicationManager::Repair(
    net::PeerId primary, const KeyBag& data,
    const std::vector<net::PeerId>& candidates) {
  RepairStats stats;
  if (!enabled()) return stats;
  PrimaryState& st = primaries_.GetOrInsert(primary);
  PruneDeadHolders(primary, &st);
  for (ReplicaRecord& rec : st.replicas) {
    net_->Count(primary, rec.holder, net::MsgType::kReplicaProbe);
    net_->Count(rec.holder, primary, net::MsgType::kReplicaProbeReply);
    ++stats.probed;
    if (rec.version != st.version) {
      SyncRecord(primary, st, &rec, data);
      ++stats.healed;
    }
  }
  stats.rehomed = TopUpHolders(primary, primary, &st, data, candidates);
  return stats;
}

size_t ReplicationManager::replica_count(net::PeerId primary) const {
  const PrimaryState* st = primaries_.Find(primary);
  return st == nullptr ? 0 : st->replicas.size();
}

size_t ReplicationManager::live_replica_count(net::PeerId primary) const {
  const PrimaryState* st = primaries_.Find(primary);
  if (st == nullptr) return 0;
  size_t live = 0;
  for (const ReplicaRecord& rec : st->replicas) {
    if (net_->IsAlive(rec.holder)) ++live;
  }
  return live;
}

uint64_t ReplicationManager::version_of(net::PeerId primary) const {
  const PrimaryState* st = primaries_.Find(primary);
  return st == nullptr ? 0 : st->version;
}

std::vector<net::PeerId> ReplicationManager::HoldersOf(
    net::PeerId primary) const {
  std::vector<net::PeerId> out;
  const PrimaryState* st = primaries_.Find(primary);
  if (st == nullptr) return out;
  for (const ReplicaRecord& rec : st->replicas) {
    out.push_back(rec.holder);
  }
  return out;
}

const KeyBag* ReplicationManager::ReplicaAt(net::PeerId primary,
                                            net::PeerId holder) const {
  const PrimaryState* st = primaries_.Find(primary);
  if (st == nullptr) return nullptr;
  for (const ReplicaRecord& rec : st->replicas) {
    if (rec.holder == holder) return &rec.keys;
  }
  return nullptr;
}

uint64_t ReplicationManager::total_replica_keys() const {
  uint64_t total = 0;
  primaries_.ForEach([&total](uint64_t, const PrimaryState& st) {
    for (const ReplicaRecord& rec : st.replicas) {
      total += rec.keys.size();
    }
  });
  return total;
}

void ReplicationManager::CheckConsistent(net::PeerId primary,
                                         const KeyBag& data) const {
  const PrimaryState* stp = primaries_.Find(primary);
  if (stp == nullptr) return;
  const PrimaryState& st = *stp;
  for (const ReplicaRecord& rec : st.replicas) {
    BATON_CHECK_LE(rec.version, st.version)
        << "replica of " << primary << " at " << rec.holder
        << " is from the future";
    if (rec.version != st.version) continue;  // stale copy: anti-entropy's job
    BATON_CHECK(rec.keys.SortedKeys() == data.SortedKeys())
        << "up-to-date replica of " << primary << " at " << rec.holder
        << " diverged: " << rec.keys.size() << " keys vs primary's "
        << data.size();
  }
}

}  // namespace replication
}  // namespace baton
