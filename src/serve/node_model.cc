#include "serve/node_model.h"

namespace baton {
namespace serve {

void NodeModel::SetNodeServiceTicks(uint32_t node, uint64_t ticks) {
  if (node >= overrides_.size()) overrides_.resize(node + 1, 0);
  overrides_[node] = ticks;
}

NodeModel::Admission NodeModel::Admit(uint32_t node, sim::Time t,
                                      uint64_t max_queue) {
  if (node >= nodes_.size()) nodes_.resize(node + 1);
  Node& n = nodes_[node];
  const uint64_t ticks = node_service_ticks(node);

  Admission adm;
  adm.start = n.next_free > t ? n.next_free : t;
  if (ticks > 0 && n.next_free > t) {
    // Fixed per-node service times make the backlog exact: everything
    // between now and next_free is earlier messages' remaining service, in
    // whole-or-partial units of this node's own rate.
    adm.ahead = (n.next_free - t + ticks - 1) / ticks;
  }
  if (max_queue > 0 && adm.ahead >= max_queue) {
    adm.accepted = false;
    return adm;
  }
  adm.done = adm.start + ticks;
  n.next_free = adm.done;
  ++n.served;
  if (adm.ahead > n.peak_depth) n.peak_depth = adm.ahead;
  if (n.served > max_served_) max_served_ = n.served;
  if (n.peak_depth > max_peak_depth_) max_peak_depth_ = n.peak_depth;
  total_busy_ += ticks;
  ++total_served_;
  return adm;
}

}  // namespace serve
}  // namespace baton
