// serve::NodeModel: per-node FIFO request queues with a configurable
// service rate -- the contention model of the serving engine.
//
// Every message an operation routes through a peer occupies that peer for
// `service_ticks` of CPU time, and a peer services messages one at a time
// in arrival order. Because service times are fixed and the queue is FIFO,
// a message's waiting time follows directly from the Lindley recursion:
//
//   start(m)      = max(arrival(m), next_free(node))
//   next_free'    = start(m) + service_ticks
//
// so admission is O(1) -- no per-queue-slot events -- while still modelling
// exactly the quantity that matters for serving: time spent waiting behind
// other requests at a busy node. Hop counts never see this; two protocols
// with identical message bills diverge sharply once a Zipf workload drives
// one node's utilization toward 1 (ART, arXiv:1201.2766, makes the same
// point against pure hop-count evaluations).
//
// Queue depth at admission is derived from the backlog: with fixed service
// times, ceil((next_free - arrival) / service_ticks) messages are still
// unserviced ahead of the new arrival (the one in service counts until its
// completion). `max_queue` bounds that backlog: an arrival that would find
// max_queue or more messages ahead is refused, and the engine records the
// owning operation as dropped -- the overload-shedding behaviour of a real
// serving stack.
#ifndef BATON_SERVE_NODE_MODEL_H_
#define BATON_SERVE_NODE_MODEL_H_

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace baton {
namespace serve {

class NodeModel {
 public:
  /// `service_ticks` is the per-message occupancy; 0 models infinitely fast
  /// servers (no queueing at all -- useful as a null model).
  explicit NodeModel(uint64_t service_ticks)
      : service_ticks_(service_ticks) {}

  struct Admission {
    sim::Time start = 0;     // when service begins (>= arrival)
    sim::Time done = 0;      // when service completes
    uint64_t ahead = 0;      // unserviced messages ahead at arrival
    bool accepted = true;    // false: queue bound hit, message refused
  };

  /// Admits one message to `node`'s FIFO at time `t`. With `max_queue` > 0
  /// the admission is refused (state untouched) when `max_queue` or more
  /// messages are still unserviced at the node.
  Admission Admit(uint32_t node, sim::Time t, uint64_t max_queue);

  /// Overrides one node's per-message occupancy (heterogeneous fleets:
  /// stragglers, slow racks, gray-failing peers). 0 restores the global
  /// rate. Backlog and busy-tick accounting use the node's own rate, so a
  /// straggler's queue grows while equally-loaded fast peers stay idle --
  /// the tail-at-scale effect the serving papers measure.
  void SetNodeServiceTicks(uint32_t node, uint64_t ticks);
  /// The occupancy `node` charges per message (the global rate unless
  /// overridden).
  uint64_t node_service_ticks(uint32_t node) const {
    return node < overrides_.size() && overrides_[node] != 0
               ? overrides_[node]
               : service_ticks_;
  }

  uint64_t service_ticks() const { return service_ticks_; }
  /// Messages serviced by `node` so far (0 for never-touched nodes).
  uint64_t served(uint32_t node) const {
    return node < nodes_.size() ? nodes_[node].served : 0;
  }
  /// Peak backlog observed at `node` (unserviced messages at an admission).
  uint64_t peak_depth(uint32_t node) const {
    return node < nodes_.size() ? nodes_[node].peak_depth : 0;
  }
  /// Highest node index ever admitted to, plus one.
  size_t num_nodes() const { return nodes_.size(); }

  /// Busiest node by serviced-message count: the bottleneck whose
  /// utilization bounds system capacity.
  uint64_t max_served() const { return max_served_; }
  /// Peak backlog across all nodes -- the headline queue-growth indicator.
  uint64_t max_peak_depth() const { return max_peak_depth_; }
  /// Total service ticks consumed across all nodes.
  uint64_t total_busy_ticks() const { return total_busy_; }
  /// Total messages serviced (admissions accepted).
  uint64_t total_served() const { return total_served_; }

 private:
  struct Node {
    sim::Time next_free = 0;
    uint64_t served = 0;
    uint64_t peak_depth = 0;
  };

  uint64_t service_ticks_;
  std::vector<uint64_t> overrides_;  // per-node rate; 0 = global rate
  std::vector<Node> nodes_;
  uint64_t max_served_ = 0;
  uint64_t max_peak_depth_ = 0;
  uint64_t total_busy_ = 0;
  uint64_t total_served_ = 0;
};

}  // namespace serve
}  // namespace baton

#endif  // BATON_SERVE_NODE_MODEL_H_
