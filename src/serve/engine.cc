#include "serve/engine.h"

#include <functional>
#include <utility>

#include "fault/fault.h"
#include "net/trail.h"
#include "util/check.h"

namespace baton {
namespace serve {

using workload::AppliedOp;
using workload::Op;
using workload::OpType;

/// One admitted operation's serving state: its arrival tick and the
/// receiver sequence its captured message trail prescribes. `next_hop`
/// walks the chain as service completions release successive hops.
struct Engine::InFlight {
  sim::Time arrival = 0;
  std::vector<net::PeerId> path;
  size_t next_hop = 0;
};

/// Whole-run state shared by the event continuations. Lives on
/// RunInternal's stack; no event outlives the run (RunUntilIdle drains the
/// queue before RunState is destroyed), and every run owns its own state --
/// concurrent engines on a bench worker pool never share anything.
struct Engine::RunState {
  sim::EventQueue queue;
  NodeModel nodes{1};
  EngineResult res;
  std::vector<InFlight> ops;
  const workload::Trace* trace = nullptr;
  const EngineConfig* cfg = nullptr;
  net::MessageTrail* trail = nullptr;
  Rng* op_rng = nullptr;
  bool closed_loop = false;
  size_t next_admission = 0;  // closed loop: next trace index to admit
  /// Called when op `idx`'s chain finishes (completed) or is shed (dropped);
  /// in closed-loop mode it also resumes admission.
  std::function<void(size_t idx, bool completed)> on_done;

  /// Schedules hop `ops[idx].next_hop` for delivery one hop latency after
  /// `departs`.
  void Send(size_t idx, sim::Time departs);
  /// Hop arrival at its receiver: join the node's FIFO (or be shed at the
  /// queue bound), and on service completion release the next hop -- or
  /// finish the op.
  void Deliver(size_t idx);
};

void Engine::RunState::Send(size_t idx, sim::Time departs) {
  queue.ScheduleAt(departs + cfg->hop_latency,
                   [this, idx] { Deliver(idx); });
}

void Engine::RunState::Deliver(size_t idx) {
  InFlight& op = ops[idx];
  net::PeerId node = op.path[op.next_hop];
  NodeModel::Admission adm = nodes.Admit(node, queue.now(), cfg->max_queue);
  if (!adm.accepted) {
    ++res.dropped;
    op.path.clear();  // abandon the remaining chain
    on_done(idx, /*completed=*/false);
    return;
  }
  res.queue_wait.Add(adm.start - queue.now());
  res.queue_depth.Add(adm.ahead);
  queue.ScheduleAt(adm.done, [this, idx] {
    InFlight& o = ops[idx];
    ++o.next_hop;
    if (o.next_hop < o.path.size()) {
      Send(idx, queue.now());
      return;
    }
    o.path.clear();
    on_done(idx, /*completed=*/true);
  });
}

Engine::Engine(overlay::Overlay* ov, std::vector<net::PeerId>* members,
               const EngineConfig& cfg, obs::Registry* registry)
    : ov_(ov), members_(members), cfg_(cfg), registry_(registry) {
  BATON_CHECK(ov != nullptr);
  BATON_CHECK(members != nullptr);
}

EngineResult Engine::Run(const workload::Trace& trace, Arrivals* arrivals,
                         Rng* op_rng) {
  BATON_CHECK(arrivals != nullptr);
  return RunInternal(trace, arrivals, op_rng, /*closed_loop=*/false);
}

EngineResult Engine::RunClosedLoop(const workload::Trace& trace,
                                   Rng* op_rng) {
  return RunInternal(trace, /*arrivals=*/nullptr, op_rng,
                     /*closed_loop=*/true);
}

EngineResult Engine::RunInternal(const workload::Trace& trace,
                                 Arrivals* arrivals, Rng* op_rng,
                                 bool closed_loop) {
  BATON_CHECK(!members_->empty())
      << "Engine needs a bootstrapped overlay with at least one member";
  RunState st;
  st.trace = &trace;
  st.cfg = &cfg_;
  st.op_rng = op_rng;
  st.closed_loop = closed_loop;
  st.nodes = NodeModel(cfg_.service_ticks);
  for (const auto& [node, ticks] : cfg_.node_service_overrides) {
    st.nodes.SetNodeServiceTicks(node, ticks);
  }
  st.ops.resize(trace.size());

  // Capture every message the overlay sends during an admission, chaining
  // to whatever observer (obs::Observer, usually) was already attached so
  // instrumentation keeps working underneath the engine. The engine's own
  // queue is private by construction, so a sim/ kernel attached to the
  // network (AttachLatency) keeps timing individual ops on its separate
  // queue without ever draining engine events mid-operation.
  net::Network* net = ov_->network();
  net::MessageTrail trail(net->observer());
  st.trail = &trail;
  net->AttachObserver(&trail);

  // Admits trace op `i` at the current queue time: the overlay executes it
  // synchronously (Replay semantics via ApplyOp), then the captured trail
  // becomes the op's hop chain. Returns true when a chain is now in flight.
  auto admit = [this, &st](size_t i) -> bool {
    const Op& op = (*st.trace)[i];
    workload::OpAggregate* agg =
        &st.res.replay.per_op[static_cast<size_t>(op.type)];
    st.trail->Clear();
    AppliedOp applied =
        workload::ApplyOp(*ov_, op, st.op_rng, members_, cfg_.replay);
    switch (applied.disposition) {
      case AppliedOp::Disposition::kSkipped:
        ++agg->skipped;
        return false;
      case AppliedOp::Disposition::kUnsupported:
        ++agg->unsupported;
        return false;
      case AppliedOp::Disposition::kExecuted:
        break;
    }
    agg->Accumulate(applied.stats);
    st.res.replay.total_messages += applied.stats.messages;
    st.res.replay.total_latency += applied.stats.latency_ticks;
    if (cfg_.replay.record_answers) {
      if (op.type == OpType::kExact) {
        st.res.replay.exact_found.push_back(applied.stats.found);
      } else if (op.type == OpType::kRange) {
        st.res.replay.range_matches.push_back(applied.stats.matches);
      }
    }
    ++st.res.admitted;

    InFlight& fl = st.ops[i];
    fl.arrival = st.queue.now();
    fl.path.reserve(st.trail->hops().size());
    for (const net::MessageTrail::Hop& h : st.trail->hops()) {
      fl.path.push_back(h.to);
    }
    if (fl.path.empty()) {
      // Origin answered locally: no messages, no service demand.
      ++st.res.local_ops;
      ++st.res.completed;
      st.res.sojourn.Add(0);
      st.res.completions.push_back(st.queue.now());
      return false;
    }
    st.Send(i, st.queue.now());
    return true;
  };

  // Closed loop: walk the trace from `from`, admitting until one op puts a
  // chain in flight (its completion resumes the walk) or the trace ends.
  auto admit_closed_from = [&st, &admit](size_t from) {
    for (size_t i = from; i < st.trace->size(); ++i) {
      if (admit(i)) {
        st.next_admission = i + 1;
        return;
      }
    }
    st.next_admission = st.trace->size();
  };

  st.on_done = [this, &st, &admit_closed_from](size_t idx, bool completed) {
    if (completed) {
      sim::Time sojourn = st.queue.now() - st.ops[idx].arrival;
      ++st.res.completed;
      st.res.sojourn.Add(sojourn);
      st.res.completions.push_back(st.queue.now());
      if (cfg_.timeout_ticks > 0 && sojourn > cfg_.timeout_ticks) {
        ++st.res.timed_out;
      }
    }
    if (st.closed_loop) admit_closed_from(st.next_admission);
  };

  if (closed_loop) {
    admit_closed_from(0);
  } else {
    sim::Time prev = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
      sim::Time t = arrivals->Next();
      BATON_CHECK_GE(t, prev) << "arrival times must be non-decreasing";
      prev = t;
      st.queue.ScheduleAt(t, [&admit, i] { admit(i); });
    }
  }
  st.queue.RunUntilIdle();

  st.res.makespan = st.queue.now();
  st.res.max_node_served = st.nodes.max_served();
  st.res.peak_queue_depth = st.nodes.max_peak_depth();
  st.res.total_service_ticks = st.nodes.total_busy_ticks();

  // Restore the observer chain the engine spliced itself into.
  net->AttachObserver(trail.chained());

  if (registry_ != nullptr) {
    obs::Registry& reg = *registry_;
    reg.Counter("serve.ops_admitted") += st.res.admitted;
    reg.Counter("serve.ops_completed") += st.res.completed;
    reg.Counter("serve.ops_dropped") += st.res.dropped;
    reg.Counter("serve.ops_timed_out") += st.res.timed_out;
    // Unified degraded-service accounting: client give-ups land in the
    // same fault.* namespace the overlay resilience wrapper writes, so
    // "how often did users see degraded service" is one query no matter
    // which layer absorbed the fault.
    if (st.res.timed_out > 0) {
      reg.Counter(fault::kMetricTimeouts) += st.res.timed_out;
    }
    reg.Counter("serve.msgs_serviced") += st.nodes.total_served();
    reg.Counter("serve.service_ticks") += st.res.total_service_ticks;
    reg.Gauge("serve.makespan_ticks") = static_cast<int64_t>(st.res.makespan);
    reg.Hist("serve.sojourn_ticks").Merge(st.res.sojourn);
    reg.Hist("serve.queue_wait_ticks").Merge(st.res.queue_wait);
    reg.Hist("serve.queue_depth").Merge(st.res.queue_depth);
    std::vector<uint64_t>* served = &reg.PerNode("serve.node.served");
    std::vector<uint64_t>* peak = &reg.PerNode("serve.node.queue_peak");
    for (uint32_t n = 0; n < st.nodes.num_nodes(); ++n) {
      if (st.nodes.served(n) > 0) {
        obs::Registry::IncNode(served, n, st.nodes.served(n));
      }
      if (st.nodes.peak_depth(n) > 0) {
        obs::Registry::IncNode(peak, n, st.nodes.peak_depth(n));
      }
    }
  }
  return st.res;
}

}  // namespace serve
}  // namespace baton
