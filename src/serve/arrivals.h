// serve::Arrivals: open-loop arrival processes for the serving engine.
//
// An arrival process decides WHEN each request enters the system,
// independently of how fast the system drains them -- the defining property
// of open-loop load generation. Closed-loop measurement (one op at a time,
// the next admitted when the previous completes) hides overload entirely:
// the generator slows down with the system, so queues never build. The
// paper's Fig 8 numbers are all closed-loop in this sense. Open-loop
// arrival at a fixed offered load is what exposes the saturation knee,
// queue growth and tail-latency divergence the serving engine exists to
// measure.
//
// Each process owns its rng (seeded at construction), so arrival timing is
// deterministic per seed and never perturbs the operation rng stream the
// engine shares with workload::Replay -- the same trail of overlay ops is
// replayed whatever the arrival pattern.
#ifndef BATON_SERVE_ARRIVALS_H_
#define BATON_SERVE_ARRIVALS_H_

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "util/check.h"
#include "util/rng.h"

namespace baton {
namespace serve {

/// Arrival-time source: Next() returns the absolute virtual tick of the
/// next request, non-decreasing across calls.
class Arrivals {
 public:
  virtual ~Arrivals() = default;
  virtual sim::Time Next() = 0;
};

/// Deterministic fixed-rate arrivals: one request every `1/rate_per_tick`
/// ticks (tracked in double precision so fractional gaps accumulate without
/// drift; emitted times round to the containing tick).
class FixedArrivals : public Arrivals {
 public:
  explicit FixedArrivals(double rate_per_tick) : gap_(1.0 / rate_per_tick) {
    BATON_CHECK_GT(rate_per_tick, 0.0);
  }
  sim::Time Next() override {
    sim::Time t = static_cast<sim::Time>(next_);
    next_ += gap_;
    return t;
  }

 private:
  double gap_;
  double next_ = 0.0;
};

/// Poisson process at `rate_per_tick`: exponential interarrival gaps, the
/// standard memoryless model of many independent clients. Burstier than
/// FixedArrivals at the same offered load, so queues form earlier.
class PoissonArrivals : public Arrivals {
 public:
  PoissonArrivals(double rate_per_tick, uint64_t seed);
  sim::Time Next() override;

 private:
  double mean_gap_;
  double next_ = 0.0;
  Rng rng_;
};

/// Replays an explicit arrival-time schedule (e.g. recorded from a
/// production log). Times must be non-decreasing; requests beyond the
/// schedule's length reuse the final gap, so a short recorded burst can
/// drive an arbitrarily long trace.
class TraceArrivals : public Arrivals {
 public:
  explicit TraceArrivals(std::vector<sim::Time> times);
  sim::Time Next() override;

 private:
  std::vector<sim::Time> times_;
  size_t idx_ = 0;
  sim::Time last_ = 0;
  sim::Time tail_gap_ = 0;
};

}  // namespace serve
}  // namespace baton

#endif  // BATON_SERVE_ARRIVALS_H_
