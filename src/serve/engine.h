// serve::Engine: batched, pipelined query execution over any overlay
// backend -- the subsystem that turns the simulator from a cost model into
// a serving model.
//
// workload::Replay runs each operation to completion alone: it measures
// what one isolated request costs, which is exactly the paper's Fig 8
// methodology and exactly NOT what serving millions of concurrent users
// looks like. The engine instead accepts a whole trace of operations with
// an arrival time each (serve::Arrivals, open loop) and interleaves their
// hop-by-hop progress through one sim::EventQueue:
//
//  1. At its arrival event, an op is admitted: the overlay executes it
//     through the same workload::ApplyOp the sequential Replay uses (same
//     rng draw discipline, same member bookkeeping, same OpStats), while a
//     net::MessageTrail captures the operation's message sequence at the
//     measured-wrapper boundary.
//  2. The trail then becomes the op's continuation schedule: hop k is
//     delivered to its receiver one hop_latency after hop k-1 finished
//     service, waits in that node's FIFO queue (serve::NodeModel) behind
//     every other in-flight op's messages, is serviced for service_ticks,
//     and only then releases hop k+1. Ops race each other at hot nodes:
//     queueing delay -- not hop count -- is what separates backends under
//     skewed load.
//  3. When an op's last hop completes service, its sojourn time
//     (completion - arrival) lands in a log-bucketed histogram; drops
//     (queue bound exceeded) and timeouts (sojourn past a deadline) are
//     counted as first-class overload outcomes.
//
// Hops are serviced in trail (causal send) order, one service chain per op:
// fan-out bursts serialize at their receivers rather than racing in
// parallel. That is deliberate -- every message occupies its receiver for
// service_ticks of CPU no matter how parallel the wire is, and it is the
// receiver occupancy that saturates first. The sim/ critical-path
// attachment (OpStats::latency_ticks) remains the fan-out-aware wire-time
// model; the two compose because they run on separate queues (the engine
// refuses to share its queue with the network's AttachSim).
//
// Closed-loop mode (RunClosedLoop) admits op i+1 only when op i has fully
// drained -- today's one-at-a-time semantics on the serving timeline. Its
// per-op aggregates match workload::Replay exactly BY CONSTRUCTION (shared
// ApplyOp, same rng stream), which is the differential-testing anchor: the
// engine provably adds a queueing model without changing what the overlay
// does.
//
// Determinism: one op rng stream (caller-provided, Replay-compatible),
// arrival processes own their rng, the event queue breaks time ties by
// insertion order. Identical inputs give identical timelines, drops and
// histograms on every run and thread count.
#ifndef BATON_SERVE_ENGINE_H_
#define BATON_SERVE_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/log_histogram.h"
#include "obs/metrics.h"
#include "overlay/overlay.h"
#include "serve/arrivals.h"
#include "serve/node_model.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "workload/replay.h"

namespace baton {
namespace serve {

struct EngineConfig {
  /// Ticks a node spends servicing each message (see serve::NodeModel).
  uint64_t service_ticks = 1;
  /// In-flight ticks per hop (link latency between service completions).
  sim::Time hop_latency = 1;
  /// Max unserviced messages at a node before arrivals are refused and the
  /// owning op is dropped; 0 = unbounded queues.
  uint64_t max_queue = 0;
  /// Ops whose sojourn exceeds this count as timed out (they still complete
  /// and are measured -- the timeout models a client giving up, not the
  /// system aborting work). 0 = no deadline.
  sim::Time timeout_ticks = 0;
  /// Replay semantics shared with workload::Replay (min_members guard,
  /// failure recovery, answer recording).
  workload::ReplayOptions replay;
  /// Per-node service-rate overrides (node id -> occupancy ticks), applied
  /// to every run's NodeModel: a heterogeneous fleet where the listed
  /// nodes are slower (stragglers) or faster than cfg.service_ticks. See
  /// NodeModel::SetNodeServiceTicks.
  std::vector<std::pair<uint32_t, uint64_t>> node_service_overrides;
};

struct EngineResult {
  /// Per-op aggregates with workload::Replay's exact semantics (counts,
  /// message bills, hop totals, histograms). In closed-loop mode this is
  /// bit-identical to what Replay would have produced on the same inputs.
  workload::ReplayResult replay;

  // ---- Serving outcomes ----------------------------------------------------
  uint64_t admitted = 0;   // ops the overlay executed
  uint64_t completed = 0;  // ops whose full hop chain drained
  uint64_t dropped = 0;    // ops shed at an over-bound node queue
  uint64_t timed_out = 0;  // completed ops whose sojourn exceeded the deadline
  uint64_t local_ops = 0;  // zero-message ops (completed at admission)

  /// Virtual time at which the last hop drained -- the run's horizon; the
  /// denominator of achieved throughput.
  sim::Time makespan = 0;

  /// Per-completed-op sojourn time (completion - arrival), the serving
  /// latency distribution behind the p50/p99/p99.9 columns.
  obs::LogHistogram sojourn;
  /// Completion tick of every completed op, in completion (= time) order.
  /// completed/makespan under-reports steady-state throughput on short runs
  /// (the makespan includes the final ops' drain tail); a rate taken over
  /// an inner completion window -- e.g. the middle 80% -- converges much
  /// faster, and this vector is what benches compute it from.
  std::vector<sim::Time> completions;
  /// Per-message waiting time in node queues (service start - arrival).
  obs::LogHistogram queue_wait;
  /// Per-message backlog found at admission (unserviced messages ahead).
  obs::LogHistogram queue_depth;

  // ---- Bottleneck view (from the NodeModel) --------------------------------
  uint64_t max_node_served = 0;   // busiest node's serviced-message count
  uint64_t peak_queue_depth = 0;  // deepest backlog any node ever reached
  uint64_t total_service_ticks = 0;

  /// Completed ops per 1000 virtual ticks (0 for an empty run).
  double ThroughputPerKilotick() const {
    return makespan == 0 ? 0.0
                         : 1000.0 * static_cast<double>(completed) /
                               static_cast<double>(makespan);
  }
};

class Engine {
 public:
  /// `ov` and `members` follow workload::Replay's contract (bootstrapped
  /// overlay, non-empty member list, joiners appended / leavers erased).
  /// With `registry` non-null the run additionally publishes serve.*
  /// counters/histograms and per-node serve.node.* families into it (the
  /// obs naming scheme; see obs/metrics.h). All pointers are non-owning.
  Engine(overlay::Overlay* ov, std::vector<net::PeerId>* members,
         const EngineConfig& cfg, obs::Registry* registry = nullptr);

  /// Open-loop run: op i is admitted at `arrivals`' i-th arrival time,
  /// whether or not earlier ops have drained. `op_rng` is the Replay-
  /// compatible operation stream (origins/contacts/victims).
  EngineResult Run(const workload::Trace& trace, Arrivals* arrivals,
                   Rng* op_rng);

  /// Closed-loop run: op i+1 is admitted when op i's hop chain has fully
  /// drained -- the differential-testing mode whose replay aggregates match
  /// workload::Replay exactly.
  EngineResult RunClosedLoop(const workload::Trace& trace, Rng* op_rng);

 private:
  struct InFlight;
  struct RunState;

  EngineResult RunInternal(const workload::Trace& trace, Arrivals* arrivals,
                           Rng* op_rng, bool closed_loop);

  overlay::Overlay* ov_;
  std::vector<net::PeerId>* members_;
  EngineConfig cfg_;
  obs::Registry* registry_;
};

}  // namespace serve
}  // namespace baton

#endif  // BATON_SERVE_ENGINE_H_
