#include "serve/arrivals.h"

#include <cmath>

namespace baton {
namespace serve {

PoissonArrivals::PoissonArrivals(double rate_per_tick, uint64_t seed)
    : mean_gap_(1.0 / rate_per_tick), rng_(seed) {
  BATON_CHECK_GT(rate_per_tick, 0.0);
}

sim::Time PoissonArrivals::Next() {
  sim::Time t = static_cast<sim::Time>(next_);
  // Exponential interarrival via inversion; 1 - U keeps the argument of log
  // strictly positive (NextDouble() is in [0, 1)).
  next_ += -std::log(1.0 - rng_.NextDouble()) * mean_gap_;
  return t;
}

TraceArrivals::TraceArrivals(std::vector<sim::Time> times)
    : times_(std::move(times)) {
  for (size_t i = 1; i < times_.size(); ++i) {
    BATON_CHECK_GE(times_[i], times_[i - 1])
        << "arrival schedule must be non-decreasing";
  }
  if (times_.size() >= 2) {
    tail_gap_ = times_.back() - times_[times_.size() - 2];
  }
}

sim::Time TraceArrivals::Next() {
  if (idx_ < times_.size()) {
    last_ = times_[idx_++];
  } else {
    last_ += tail_gap_;
  }
  return last_;
}

}  // namespace serve
}  // namespace baton
