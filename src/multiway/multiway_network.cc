#include "multiway/multiway_network.h"

#include <algorithm>

#include "util/check.h"

namespace baton {
namespace multiway {

MultiwayNetwork::MultiwayNetwork(const MultiwayConfig& config,
                                 net::Network* net, uint64_t seed)
    : config_(config), net_(net), rng_(seed) {
  BATON_CHECK(net != nullptr);
  BATON_CHECK_GE(config.max_fanout, 1);
  BATON_CHECK_LT(config.domain_lo, config.domain_hi);
}

MultiwayNode* MultiwayNetwork::N(PeerId p) {
  BATON_CHECK_LT(p, nodes_.size());
  return nodes_[p].get();
}

const MultiwayNode* MultiwayNetwork::N(PeerId p) const {
  BATON_CHECK_LT(p, nodes_.size());
  return nodes_[p].get();
}

const MultiwayNode& MultiwayNetwork::node(PeerId p) const { return *N(p); }

PeerId MultiwayNetwork::Bootstrap() {
  BATON_CHECK_EQ(live_count_, 0u);
  auto n = std::make_unique<MultiwayNode>();
  n->id = net_->Register();
  n->in_overlay = true;
  n->range = Range{config_.domain_lo, config_.domain_hi};
  n->extent = n->range;
  root_ = n->id;
  nodes_.push_back(std::move(n));
  ++live_count_;
  return root_;
}

Result<PeerId> MultiwayNetwork::Join(PeerId contact) {
  if (contact >= nodes_.size() || !N(contact)->in_overlay) {
    return Status::InvalidArgument("contact is not an overlay member");
  }
  // Placement is data-driven: the join request is first routed to the owner
  // of a random point of the key space (sharing load where the data lives),
  // then descends to the first node with a free child slot, choosing a
  // random branch below full nodes (the structure imposes no balance). A
  // node whose range is too narrow to split -- deep in a degenerated chain
  // -- bounces the request to a neighbour; these wasted hops are all part of
  // the baseline's join cost.
  Key target = rng_.UniformInt(config_.domain_lo, config_.domain_hi - 1);
  auto routed = Route(contact, target, net::MsgType::kMultiwayJoinForward);
  if (!routed.ok()) return routed.status();
  MultiwayNode* x = N(routed.value().node);
  int guard = 4 * static_cast<int>(size()) + 64;
  while (static_cast<int>(x->children.size()) >= config_.max_fanout ||
         x->range.Width() < 2) {
    BATON_CHECK_GE(--guard, 0) << "multiway join did not find a spot";
    PeerId next = kNullPeer;
    if (static_cast<int>(x->children.size()) >= config_.max_fanout) {
      next = x->children[rng_.NextBelow(x->children.size())];
    } else if (x->right_nb != kNullPeer &&
               (x->left_nb == kNullPeer || rng_.NextBool(0.5))) {
      next = x->right_nb;
    } else {
      next = x->left_nb;
    }
    BATON_CHECK_NE(next, kNullPeer);
    net_->Count(x->id, next, net::MsgType::kMultiwayJoinForward);
    x = N(next);
  }

  auto fresh = std::make_unique<MultiwayNode>();
  fresh->id = net_->Register();
  PeerId yid = fresh->id;
  nodes_.push_back(std::move(fresh));
  x = N(x->id);  // re-derive after push_back
  MultiwayNode* y = N(yid);
  y->in_overlay = true;
  y->parent = x->id;
  y->depth = x->depth + 1;
  ++live_count_;

  // Split the lower half of x's direct range (content median when possible).
  Key split = x->data.size() >= 2 ? x->data.Median() : x->range.Mid();
  split = std::max(x->range.lo + 1, std::min(split, x->range.hi - 1));
  y->range = Range{x->range.lo, split};
  y->extent = y->range;
  y->data = x->data.ExtractBelow(split);
  x->range.lo = split;
  net_->Count(x->id, yid, net::MsgType::kContentTransfer);

  x->children.push_back(yid);
  // Splice y into the neighbour chain just left of x.
  y->right_nb = x->id;
  y->left_nb = x->left_nb;
  if (x->left_nb != kNullPeer) {
    net_->Count(yid, x->left_nb, net::MsgType::kMultiwayLinkUpdate);
    N(x->left_nb)->right_nb = yid;
  }
  x->left_nb = yid;
  net_->Count(x->id, yid, net::MsgType::kMultiwayLinkUpdate);
  return yid;
}

Result<MultiwayNetwork::SearchResult> MultiwayNetwork::Route(
    PeerId from, Key key, net::MsgType hop_type) {
  if (from >= nodes_.size() || !N(from)->in_overlay) {
    return Status::InvalidArgument("query origin is not an overlay member");
  }
  Key k = std::clamp(key, config_.domain_lo, config_.domain_hi - 1);
  MultiwayNode* n = N(from);
  SearchResult res;
  int guard = 4 * (Depth() + 2) * std::max(1, config_.max_fanout) +
              static_cast<int>(size());
  while (!n->range.Contains(k)) {
    BATON_CHECK_GE(--guard, 0) << "multiway routing did not terminate";
    if (n->extent.Contains(k)) {
      // Descend: probe children one at a time until one claims the key.
      PeerId next = kNullPeer;
      for (PeerId c : n->children) {
        net_->Count(n->id, c, net::MsgType::kMultiwayProbe);
        ++res.hops;
        if (N(c)->extent.Contains(k)) {
          next = c;
          break;
        }
      }
      BATON_CHECK_NE(next, kNullPeer)
          << "extent of node " << n->id << " does not partition";
      net_->Count(n->id, next, hop_type);
      ++res.hops;
      n = N(next);
    } else {
      BATON_CHECK_NE(n->parent, kNullPeer)
          << "root extent must cover the domain";
      net_->Count(n->id, n->parent, hop_type);
      ++res.hops;
      n = N(n->parent);
    }
  }
  res.node = n->id;
  return res;
}

Result<MultiwayNetwork::SearchResult> MultiwayNetwork::ExactSearch(PeerId from,
                                                                   Key key) {
  auto routed = Route(from, key, net::MsgType::kMultiwaySearch);
  if (!routed.ok()) return routed.status();
  SearchResult res = routed.value();
  const MultiwayNode* owner = N(res.node);
  res.found = owner->range.Contains(key) && owner->data.Contains(key);
  return res;
}

Result<MultiwayNetwork::RangeResult> MultiwayNetwork::RangeSearch(PeerId from,
                                                                  Key lo,
                                                                  Key hi) {
  if (lo >= hi) return Status::InvalidArgument("empty range");
  auto routed = Route(from, lo, net::MsgType::kMultiwaySearch);
  if (!routed.ok()) return routed.status();
  RangeResult res;
  res.hops = routed.value().hops;
  MultiwayNode* cur = N(routed.value().node);
  int guard = static_cast<int>(size()) + 8;
  while (true) {
    BATON_CHECK_GE(--guard, 0);
    if (cur->range.Intersects(lo, hi)) {
      res.nodes.push_back(cur->id);
      res.matches += cur->data.CountInRange(lo, hi);
    }
    if (cur->range.hi >= hi || cur->right_nb == kNullPeer) break;
    net_->Count(cur->id, cur->right_nb, net::MsgType::kMultiwaySearch);
    ++res.hops;
    cur = N(cur->right_nb);
  }
  return res;
}

Status MultiwayNetwork::Insert(PeerId from, Key key) {
  if (key < config_.domain_lo || key >= config_.domain_hi) {
    return Status::InvalidArgument("key outside the domain");
  }
  auto routed = Route(from, key, net::MsgType::kInsert);
  if (!routed.ok()) return routed.status();
  N(routed.value().node)->data.Insert(key);
  ++total_keys_;
  return Status::OK();
}

Status MultiwayNetwork::Delete(PeerId from, Key key) {
  auto routed = Route(from, key, net::MsgType::kDelete);
  if (!routed.ok()) return routed.status();
  if (!N(routed.value().node)->data.Erase(key)) {
    return Status::NotFound("key " + std::to_string(key));
  }
  --total_keys_;
  return Status::OK();
}

void MultiwayNetwork::DetachLeafNode(MultiwayNode* leaf) {
  BATON_CHECK(leaf->children.empty());
  // Merge the leaf's range and content into a range-adjacent neighbour.
  PeerId recv_id = leaf->right_nb != kNullPeer ? leaf->right_nb : leaf->left_nb;
  BATON_CHECK_NE(recv_id, kNullPeer);
  MultiwayNode* recv = N(recv_id);
  net_->Count(leaf->id, recv_id, net::MsgType::kContentTransfer);
  recv->data.Absorb(&leaf->data);
  if (recv_id == leaf->right_nb) {
    BATON_CHECK_EQ(leaf->range.hi, recv->range.lo);
    recv->range.lo = leaf->range.lo;
  } else {
    BATON_CHECK_EQ(recv->range.hi, leaf->range.lo);
    recv->range.hi = leaf->range.hi;
  }

  // Unsplice the neighbour chain.
  if (leaf->left_nb != kNullPeer) {
    net_->Count(leaf->id, leaf->left_nb, net::MsgType::kMultiwayLinkUpdate);
    N(leaf->left_nb)->right_nb = leaf->right_nb;
  }
  if (leaf->right_nb != kNullPeer) {
    net_->Count(leaf->id, leaf->right_nb, net::MsgType::kMultiwayLinkUpdate);
    N(leaf->right_nb)->left_nb = leaf->left_nb;
  }

  // Remove from the parent.
  if (leaf->parent != kNullPeer) {
    MultiwayNode* p = N(leaf->parent);
    net_->Count(leaf->id, p->id, net::MsgType::kMultiwayLinkUpdate);
    p->children.erase(
        std::find(p->children.begin(), p->children.end(), leaf->id));
  }

  // Extents along both ancestor paths shifted: propagate boundary updates
  // upward until they stabilise (one message per level touched).
  for (PeerId walk : {leaf->parent, recv_id}) {
    PeerId cur = walk;
    while (cur != kNullPeer) {
      MultiwayNode* c = N(cur);
      Range e = c->range;
      for (PeerId ch : c->children) {
        e.lo = std::min(e.lo, N(ch)->extent.lo);
        e.hi = std::max(e.hi, N(ch)->extent.hi);
      }
      if (e == c->extent) break;
      c->extent = e;
      if (c->parent != kNullPeer) {
        net_->Count(c->id, c->parent, net::MsgType::kMultiwayLinkUpdate);
      }
      cur = c->parent;
    }
  }

  leaf->in_overlay = false;
  leaf->left_nb = kNullPeer;
  leaf->right_nb = kNullPeer;
  leaf->parent = kNullPeer;
  --live_count_;
  net_->MarkDead(leaf->id);
}

PeerId MultiwayNetwork::FindLeafInSubtree(MultiwayNode* x, int* msgs) {
  // "a departing node needs to get information from all of its children to
  // select a replacement node": poll every child at each level, then recurse
  // into one that is not a leaf-free subtree.
  MultiwayNode* n = x;
  int guard = static_cast<int>(size()) + 8;
  while (true) {
    BATON_CHECK_GE(--guard, 0);
    if (n->children.empty()) return n->id;
    PeerId pick = kNullPeer;
    for (PeerId c : n->children) {
      net_->Count(n->id, c, net::MsgType::kMultiwayChildPoll);
      ++*msgs;
      // Prefer a child that is itself a leaf (cheapest replacement).
      if (N(c)->children.empty()) pick = c;
    }
    if (pick == kNullPeer) pick = n->children.front();
    if (N(pick)->children.empty()) return pick;
    n = N(pick);
  }
}

Status MultiwayNetwork::Leave(PeerId leaver) {
  if (leaver >= nodes_.size() || !N(leaver)->in_overlay) {
    return Status::InvalidArgument("peer is not an overlay member");
  }
  MultiwayNode* x = N(leaver);
  if (size() == 1) {
    total_keys_ -= x->data.size();
    x->data = KeyBag{};
    x->in_overlay = false;
    root_ = kNullPeer;
    --live_count_;
    net_->MarkDead(leaver);
    return Status::OK();
  }
  if (x->children.empty()) {
    DetachLeafNode(x);
    return Status::OK();
  }
  // Internal node: recruit a leaf from the subtree as replacement.
  int msgs = 0;
  PeerId rid = FindLeafInSubtree(x, &msgs);
  MultiwayNode* r = N(rid);
  DetachLeafNode(r);
  net_->MarkAlive(rid);  // the physical peer relocates, it did not leave
  r->in_overlay = true;
  ++live_count_;

  // r assumes x's role: range, data, extent, children, parent, neighbours.
  net_->Count(x->id, rid, net::MsgType::kContentTransfer);
  r->range = x->range;
  r->extent = x->extent;
  r->depth = x->depth;
  r->data = KeyBag{};
  r->data.Absorb(&x->data);
  r->parent = x->parent;
  r->children = x->children;
  r->left_nb = x->left_nb;
  r->right_nb = x->right_nb;
  for (PeerId c : r->children) {
    net_->Count(rid, c, net::MsgType::kMultiwayLinkUpdate);
    N(c)->parent = rid;
  }
  if (r->parent != kNullPeer) {
    MultiwayNode* p = N(r->parent);
    net_->Count(rid, r->parent, net::MsgType::kMultiwayLinkUpdate);
    *std::find(p->children.begin(), p->children.end(), x->id) = rid;
  } else {
    root_ = rid;
  }
  if (r->left_nb != kNullPeer) {
    net_->Count(rid, r->left_nb, net::MsgType::kMultiwayLinkUpdate);
    N(r->left_nb)->right_nb = rid;
  }
  if (r->right_nb != kNullPeer) {
    net_->Count(rid, r->right_nb, net::MsgType::kMultiwayLinkUpdate);
    N(r->right_nb)->left_nb = rid;
  }

  x->in_overlay = false;
  x->children.clear();
  x->parent = kNullPeer;
  x->left_nb = kNullPeer;
  x->right_nb = kNullPeer;
  --live_count_;
  net_->MarkDead(leaver);
  return Status::OK();
}

std::vector<PeerId> MultiwayNetwork::Members() const {
  std::vector<std::pair<Key, PeerId>> order;
  for (const auto& n : nodes_) {
    if (n->in_overlay) order.emplace_back(n->range.lo, n->id);
  }
  std::sort(order.begin(), order.end());
  std::vector<PeerId> out;
  out.reserve(order.size());
  for (const auto& [k, id] : order) out.push_back(id);
  return out;
}

int MultiwayNetwork::Depth() const {
  int d = 0;
  for (const auto& n : nodes_) {
    if (n->in_overlay) d = std::max(d, n->depth);
  }
  return d;
}

void MultiwayNetwork::CheckInvariants() const {
  if (size() == 0) return;
  BATON_CHECK_NE(root_, kNullPeer);
  std::vector<PeerId> members = Members();
  BATON_CHECK_EQ(members.size(), size());

  // Neighbour chain sorted, contiguous, covering the domain.
  const MultiwayNode* first = N(members.front());
  const MultiwayNode* last = N(members.back());
  BATON_CHECK_EQ(first->left_nb, kNullPeer);
  BATON_CHECK_EQ(last->right_nb, kNullPeer);
  BATON_CHECK_EQ(first->range.lo, config_.domain_lo);
  BATON_CHECK_EQ(last->range.hi, config_.domain_hi);
  for (size_t i = 0; i + 1 < members.size(); ++i) {
    const MultiwayNode* a = N(members[i]);
    const MultiwayNode* b = N(members[i + 1]);
    BATON_CHECK_EQ(a->right_nb, b->id);
    BATON_CHECK_EQ(b->left_nb, a->id);
    BATON_CHECK_EQ(a->range.hi, b->range.lo);
  }

  uint64_t keys = 0;
  for (PeerId id : members) {
    const MultiwayNode* n = N(id);
    BATON_CHECK(n->range.lo < n->range.hi);
    if (!n->data.empty()) {
      BATON_CHECK(n->range.Contains(n->data.Min()));
      BATON_CHECK(n->range.Contains(n->data.Max()));
    }
    keys += n->data.size();
    BATON_CHECK_LE(static_cast<int>(n->children.size()), config_.max_fanout);
    // Extent: own range plus children extents, which partition it exactly.
    Key width = n->range.Width();
    Key lo = n->range.lo;
    Key hi = n->range.hi;
    for (PeerId c : n->children) {
      const MultiwayNode* ch = N(c);
      BATON_CHECK(ch->in_overlay);
      BATON_CHECK_EQ(ch->parent, id);
      BATON_CHECK_EQ(ch->depth, n->depth + 1);
      width += ch->extent.Width();
      lo = std::min(lo, ch->extent.lo);
      hi = std::max(hi, ch->extent.hi);
    }
    BATON_CHECK_EQ(n->extent.lo, lo) << "extent drift at node " << id;
    BATON_CHECK_EQ(n->extent.hi, hi) << "extent drift at node " << id;
    BATON_CHECK_EQ(width, n->extent.Width())
        << "extent of node " << id << " is not partitioned by its subtree";
    if (n->parent == kNullPeer) {
      BATON_CHECK_EQ(id, root_);
      BATON_CHECK_EQ(n->depth, 0);
    }
  }
  BATON_CHECK_EQ(keys, total_keys_);
}

}  // namespace multiway
}  // namespace baton
