// Multiway-tree baseline ([10]: Liau, Ng, Shu, Tan, Bressan, DBISP2P 2004),
// instrumented with the same message counters as BATON.
//
// Each peer is a tree node holding a direct key range; it links only to its
// parent, its (unbounded, configurable fan-out) children, and its two
// range-adjacent neighbours -- no sideways routing tables. Searching "entails
// hopping from the query node to the node containing the answer by following
// the links, one by one": up to the subtree containing the key, then down,
// probing children one at a time. Joins are cheap (descend to a node with a
// free child slot); leaves are expensive (the leaver polls all children to
// arrange a replacement) -- exactly the trade-off section V-A describes. The
// tree is not balanced: skewed join orders degrade it, and a single link
// failure partitions the structure (section III-D's "brittleness" contrast).
#ifndef BATON_MULTIWAY_MULTIWAY_NETWORK_H_
#define BATON_MULTIWAY_MULTIWAY_NETWORK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baton/key_bag.h"
#include "baton/types.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/status.h"

namespace baton {
namespace multiway {

using net::PeerId;
using net::kNullPeer;

struct MultiwayConfig {
  Key domain_lo = 1;
  Key domain_hi = 1000000000;
  /// Maximum children per node. The paper notes both extremes hurt: small
  /// fan-out deepens the tree (costly joins/searches), large fan-out makes
  /// leaves expensive.
  int max_fanout = 4;
};

struct MultiwayNode {
  PeerId id = kNullPeer;
  bool in_overlay = false;
  int depth = 0;

  PeerId parent = kNullPeer;
  std::vector<PeerId> children;  // unordered; probed one by one
  PeerId left_nb = kNullPeer;    // range-adjacent neighbours
  PeerId right_nb = kNullPeer;

  Range range;    // keys managed directly
  Range extent;   // range ∪ all descendant ranges (contiguous by design)
  KeyBag data;
};

class MultiwayNetwork {
 public:
  MultiwayNetwork(const MultiwayConfig& config, net::Network* net,
                  uint64_t seed);
  MultiwayNetwork(const MultiwayNetwork&) = delete;
  MultiwayNetwork& operator=(const MultiwayNetwork&) = delete;

  PeerId Bootstrap();
  /// Join: descend from the contact to the first node with a free child
  /// slot (random branch below full nodes), which splits half its direct
  /// range to the joiner.
  Result<PeerId> Join(PeerId contact);
  /// Leave: a leaf merges its range into a neighbour; an internal node polls
  /// its children and recruits a leaf from its subtree as replacement.
  Status Leave(PeerId leaver);

  struct SearchResult {
    PeerId node = kNullPeer;
    bool found = false;
    int hops = 0;
  };
  Result<SearchResult> ExactSearch(PeerId from, Key key);
  struct RangeResult {
    std::vector<PeerId> nodes;
    uint64_t matches = 0;
    int hops = 0;
  };
  Result<RangeResult> RangeSearch(PeerId from, Key lo, Key hi);
  Status Insert(PeerId from, Key key);
  Status Delete(PeerId from, Key key);

  size_t size() const { return live_count_; }
  const MultiwayNode& node(PeerId p) const;
  std::vector<PeerId> Members() const;  // in range order
  int Depth() const;                    // max node depth
  uint64_t total_keys() const { return total_keys_; }
  void CheckInvariants() const;

 private:
  MultiwayNode* N(PeerId p);
  const MultiwayNode* N(PeerId p) const;

  /// Routing core: returns the node whose direct range contains the key.
  Result<SearchResult> Route(PeerId from, Key key, net::MsgType hop_type);
  /// Replacement search for internal leavers: poll children, descend to a
  /// leaf of the subtree (counting every poll).
  PeerId FindLeafInSubtree(MultiwayNode* x, int* msgs);
  void DetachLeafNode(MultiwayNode* leaf);

  MultiwayConfig config_;
  net::Network* net_;
  Rng rng_;
  std::vector<std::unique_ptr<MultiwayNode>> nodes_;
  size_t live_count_ = 0;
  PeerId root_ = kNullPeer;
  uint64_t total_keys_ = 0;
};

}  // namespace multiway
}  // namespace baton

#endif  // BATON_MULTIWAY_MULTIWAY_NETWORK_H_
