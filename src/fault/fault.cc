#include "fault/fault.h"

#include <algorithm>

#include "util/check.h"

namespace baton {
namespace fault {

namespace {
constexpr int kNumCategories = static_cast<int>(net::MsgCategory::kOther) + 1;
}  // namespace

Plan::Plan(const PlanConfig& cfg)
    : cfg_(cfg),
      by_category_(kNumCategories),
      has_category_(kNumCategories, false),
      rng_(Mix64(cfg.seed ^ 0xfa017135eedULL)) {
  BATON_CHECK(cfg.all.drop >= 0 && cfg.all.drop <= 1.0);
  BATON_CHECK(cfg.all.duplicate >= 0 && cfg.all.duplicate <= 1.0);
  BATON_CHECK(cfg.all.delay >= 0 && cfg.all.delay <= 1.0);
}

void Plan::SetCategoryFaults(net::MsgCategory c, const LinkFaults& f) {
  size_t i = static_cast<size_t>(c);
  BATON_CHECK_LT(i, by_category_.size());
  by_category_[i] = f;
  has_category_[i] = true;
}

void Plan::SetPeerFaults(net::PeerId p, const LinkFaults& f) {
  per_peer_.GetOrInsert(p) = f;
}

void Plan::AddStall(net::PeerId p, uint64_t begin_op, uint64_t end_op) {
  BATON_CHECK_LT(begin_op, end_op);
  stalls_.GetOrInsert(p).push_back(Window{begin_op, end_op});
  windowed_ = true;
}

void Plan::AddOutage(const std::vector<net::PeerId>& peers, uint64_t begin_op,
                     uint64_t end_op) {
  BATON_CHECK_LT(begin_op, end_op);
  BATON_CHECK(!peers.empty());
  Outage o;
  o.window = Window{begin_op, end_op};
  o.peers = peers;
  std::sort(o.peers.begin(), o.peers.end());
  outages_.push_back(std::move(o));
  windowed_ = true;
}

const LinkFaults& Plan::FaultsFor(net::PeerId from, net::PeerId to,
                                  net::MsgCategory cat) const {
  if (!per_peer_.empty()) {
    // Either endpoint's override claims the message; `to` wins when both
    // have one (fixed order keeps the schedule deterministic).
    if (const LinkFaults* f = per_peer_.Find(to)) return *f;
    if (const LinkFaults* f = per_peer_.Find(from)) return *f;
  }
  size_t c = static_cast<size_t>(cat);
  if (has_category_[c]) return by_category_[c];
  return cfg_.all;
}

bool Plan::Stalled(net::PeerId p) const {
  const std::vector<Window>* w = stalls_.Find(p);
  if (w == nullptr) return false;
  for (const Window& win : *w) {
    if (win.Active(current_op())) return true;
  }
  return false;
}

bool Plan::InOutage(net::PeerId p) const {
  for (const Outage& o : outages_) {
    if (!o.window.Active(current_op())) continue;
    if (std::binary_search(o.peers.begin(), o.peers.end(), p)) return true;
  }
  return false;
}

net::FaultInjector::Decision Plan::OnMessage(net::PeerId from, net::PeerId to,
                                             net::MsgType type) {
  Decision d;
  const LinkFaults& lf = FaultsFor(from, to, net::CategoryOf(type));
  // Coins are drawn lazily (a zero probability consumes no rng state), so
  // an all-zero plan leaves the schedule empty; determinism only requires
  // identical config + seed + message sequence, which callers guarantee.
  if (lf.drop > 0 && rng_.NextBool(lf.drop)) {
    d.drop = true;
    ++dropped_;
  }
  if (lf.duplicate > 0 && rng_.NextBool(lf.duplicate)) {
    d.duplicates = 1;
    ++duplicated_;
  }
  if (lf.delay > 0 && rng_.NextBool(lf.delay)) {
    d.extra_delay += lf.delay_ticks;
    ++delayed_;
  }
  if (windowed_) {
    if (Stalled(from) || Stalled(to)) {
      d.extra_delay += cfg_.stall_delay_ticks;
      ++stall_delays_;
    }
    if (InOutage(from) || InOutage(to)) {
      if (!d.drop) {
        d.drop = true;
        ++dropped_;
      }
      ++outage_drops_;
    }
  }
  return d;
}

}  // namespace fault
}  // namespace baton
