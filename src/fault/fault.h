// Deterministic fault injection for the simulated network, plus the
// resilience budget the overlay layer uses to absorb it.
//
// BATON's whole claim (VLDB 2005) is tolerating "frequent node joins and
// departures" -- but the paper's network delivers every message perfectly.
// A fault::Plan attaches at the net::Network message boundary
// (Network::AttachFaults) and decides, per counted message, whether it is
// dropped, duplicated, or delayed: baseline probabilities for every
// message, per-category overrides (e.g. lose only query traffic), per-peer
// overrides (one flaky node's links), plus *windowed* whole-peer faults --
// gray-failure stalls (everything touching the peer slows down) and
// correlated region outages (everything touching a peer set is dropped,
// modelling a subtree or rack going dark at once). Windows are scheduled
// on a deterministic operation clock (Network::FaultOpTick), so they work
// with or without a sim/ latency attachment.
//
// Everything is driven by one seeded rng: the same plan config, seed and
// message sequence produce the identical fault schedule, so every fault
// experiment reproduces byte-for-byte.
//
// fault::Policy is the recovery half: the bounded-retry / timeout /
// backoff budget the overlay measured wrapper enforces on read operations
// (see overlay::Overlay::SetResilience). Keeping both halves in one layer
// lets benches sweep injection rate against retry budget symmetrically.
#ifndef BATON_FAULT_FAULT_H_
#define BATON_FAULT_FAULT_H_

#include <cstdint>
#include <vector>

#include "net/message.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace baton {
namespace fault {

/// Per-message fault probabilities for one class of links. Probabilities
/// are independent coins: a message can be both duplicated and delayed.
struct LinkFaults {
  double drop = 0.0;       // P(message lost in transit)
  double duplicate = 0.0;  // P(one extra copy delivered)
  double delay = 0.0;      // P(message held up by delay_ticks)
  sim::Time delay_ticks = 0;

  bool any() const { return drop > 0 || duplicate > 0 || delay > 0; }
};

/// Static configuration of a fault plan.
struct PlanConfig {
  uint64_t seed = 0;
  /// Baseline faults applied to every message (per-category and per-peer
  /// overrides replace it for their matches; see Plan::SetCategoryFaults).
  LinkFaults all;
  /// Extra delay added to every message touching a stalled peer
  /// (gray failure: the node is up but everything near it is slow).
  sim::Time stall_delay_ticks = 100;
};

/// Metric names shared by the layers that account for degraded service
/// (the overlay resilience wrapper and the serving engine), so "how often
/// did we time out / give up" reads out of one obs::Registry namespace no
/// matter which layer absorbed the fault.
inline constexpr char kMetricDrops[] = "fault.dropped_msgs";
inline constexpr char kMetricDups[] = "fault.duplicated_msgs";
inline constexpr char kMetricRetries[] = "fault.retries";
inline constexpr char kMetricTimeouts[] = "fault.timeouts";
inline constexpr char kMetricGaveUp[] = "fault.gave_up";
inline constexpr char kMetricDegraded[] = "fault.degraded";

/// A deterministic, seeded fault schedule. Attach with
/// overlay->AttachFaults(&plan) (or net->AttachFaults directly); detach
/// before destroying the plan. Not thread-safe: one plan per instance,
/// like the sim and obs attachments.
class Plan : public net::FaultInjector {
 public:
  explicit Plan(const PlanConfig& cfg);

  /// Replaces the baseline faults for one message category (e.g. drop only
  /// kQuery traffic so overlay construction is unaffected).
  void SetCategoryFaults(net::MsgCategory c, const LinkFaults& f);
  /// Replaces the baseline for every message touching `p` (either
  /// endpoint). Peer overrides win over category overrides.
  void SetPeerFaults(net::PeerId p, const LinkFaults& f);

  /// Gray-failure window: ops in [begin_op, end_op) add
  /// stall_delay_ticks to every message touching `p`. Windows index ops
  /// 0-based in start order after attachment (the first public operation
  /// is op 0).
  void AddStall(net::PeerId p, uint64_t begin_op, uint64_t end_op);
  /// Correlated outage window: ops in [begin_op, end_op) drop every
  /// message touching any peer in `peers` (a subtree / region going dark).
  /// Same 0-based op indexing as AddStall.
  void AddOutage(const std::vector<net::PeerId>& peers, uint64_t begin_op,
                 uint64_t end_op);

  // net::FaultInjector implementation.
  Decision OnMessage(net::PeerId from, net::PeerId to,
                     net::MsgType type) override;
  void OnOpBegin() override { ++op_clock_; }

  /// Operations started since attachment (the window clock).
  uint64_t op_clock() const { return op_clock_; }

  // Cumulative accounting, for reports and tests.
  uint64_t dropped() const { return dropped_; }
  uint64_t duplicated() const { return duplicated_; }
  uint64_t delayed() const { return delayed_; }
  uint64_t outage_drops() const { return outage_drops_; }
  uint64_t stall_delays() const { return stall_delays_; }

 private:
  struct Window {
    uint64_t begin_op = 0;
    uint64_t end_op = 0;
    bool Active(uint64_t op) const { return op >= begin_op && op < end_op; }
  };
  struct Outage {
    Window window;
    std::vector<net::PeerId> peers;  // sorted, for binary_search
  };

  /// The fault class governing one message (peer > category > baseline).
  const LinkFaults& FaultsFor(net::PeerId from, net::PeerId to,
                              net::MsgCategory cat) const;
  /// 0-based index of the op in progress (OnOpBegin increments before the
  /// op body runs; messages sent outside any op count as op 0).
  uint64_t current_op() const { return op_clock_ == 0 ? 0 : op_clock_ - 1; }
  bool Stalled(net::PeerId p) const;
  bool InOutage(net::PeerId p) const;

  PlanConfig cfg_;
  std::vector<LinkFaults> by_category_;  // indexed by MsgCategory
  std::vector<bool> has_category_;
  util::FlatMap64<LinkFaults> per_peer_;            // keyed by PeerId
  util::FlatMap64<std::vector<Window>> stalls_;     // keyed by PeerId
  std::vector<Outage> outages_;
  bool windowed_ = false;  // any stall/outage registered

  Rng rng_;
  uint64_t op_clock_ = 0;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t delayed_ = 0;
  uint64_t outage_drops_ = 0;
  uint64_t stall_delays_ = 0;
};

/// Resilience budget enforced by the overlay measured wrapper when a fault
/// plan is attached. Read operations (exact/range search) whose attempt
/// lost a message -- or overran the timeout -- are retried up to
/// max_retries times with deterministic exponential backoff, optionally
/// re-originating from a neighbour of the stale origin
/// (Overlay::RetryOrigin); an exhausted budget returns
/// Status::Unavailable with OpStats::gave_up set. Mutating operations are
/// never retried (the protocols repair state through their own recovery
/// paths); their absorbed faults set OpStats::degraded instead.
struct Policy {
  int max_retries = 0;
  /// Per-attempt critical-path budget in ticks; 0 disables the timeout
  /// check (drops alone then drive retries). Only meaningful with a
  /// latency model attached -- without one every attempt measures 0 ticks.
  sim::Time timeout_ticks = 0;
  /// Backoff charged to latency before retry k (1-based):
  /// backoff_ticks << (k-1).
  sim::Time backoff_ticks = 0;
  /// Re-resolve the origin via the backend's parent/adjacent links on each
  /// retry instead of re-asking the same (possibly stale/partitioned)
  /// origin.
  bool reroute = true;

  sim::Time BackoffFor(int attempt) const {
    if (backoff_ticks == 0 || attempt <= 0) return 0;
    int shift = attempt - 1;
    if (shift > 32) shift = 32;  // deterministic clamp; budgets are small
    return backoff_ticks << shift;
  }
};

}  // namespace fault
}  // namespace baton

#endif  // BATON_FAULT_FAULT_H_
