// overlay::Overlay: one interface over every P2P backend (BATON, Chord,
// multiway tree, and whatever comes next).
//
// The paper's evaluation is a head-to-head comparison, so the repo needs a
// single API that any bench, test, or workload replay can drive against any
// backend. Each operation returns a uniform OpStats whose `messages` field
// is the exact net::Network counter delta for that operation -- callers
// never diff snapshots by hand. Backends differ in what they support
// (Chord cannot answer range queries: "hashing destroys the ordering of
// data"); capabilities() declares the differences and unsupported
// operations fail with Status::FailedPrecondition instead of crashing.
//
// Backends register themselves by name in overlay/registry.h; construct one
// with overlay::Make("baton", cfg) and drive it generically, e.g. through
// workload::Replay.
#ifndef BATON_OVERLAY_OVERLAY_H_
#define BATON_OVERLAY_OVERLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baton/types.h"
#include "cache/cache.h"
#include "fault/fault.h"
#include "net/network.h"
#include "obs/observer.h"
#include "util/status.h"

namespace baton {
namespace overlay {

using net::PeerId;
using net::kNullPeer;

/// Optional features a backend may support beyond the universal core
/// (join/leave, insert/delete, exact search). Queried via capabilities();
/// calling an unsupported operation returns Status::FailedPrecondition.
enum Capability : uint32_t {
  /// Order-preserving range queries (RangeSearch).
  kRangeSearch = 1u << 0,
  /// Abrupt failure + recovery protocol (Fail / RecoverAllFailures).
  kFailRecovery = 1u << 1,
  /// Content-driven load balancing.
  kLoadBalance = 1u << 2,
  /// Replica-based durability.
  kReplication = 1u << 3,
  /// Joins split ranges at the content median, so preloading data while the
  /// overlay grows keeps node ranges matched to the data distribution
  /// (hash-partitioned backends are insensitive to load order).
  kOrderedGrowth = 1u << 4,
};

/// Human-readable "range,fail,..." summary of a capability bitmask.
std::string CapabilitiesToString(uint32_t caps);

/// Uniform per-operation outcome. Every field is filled by the backend
/// except `messages` and `latency_ticks`, which the Overlay base class
/// computes: `messages` as the raw net::Network counter delta across the
/// operation, `latency_ticks` as the operation's simulated critical-path
/// time when a sim/ event kernel is attached (see AttachLatency).
/// [[nodiscard]]: dropping an OpStats drops its Status -- a failed Join in
/// a churn loop would silently desynchronise the member list from the
/// overlay. Sites that really only care about the side effect discard
/// explicitly with (void) and a reason.
struct [[nodiscard]] OpStats {
  Status status = Status::OK();
  /// Operation-specific peer: the accepted joiner (Join) or the node whose
  /// range contains the key (ExactSearch).
  PeerId peer = kNullPeer;
  bool found = false;     // exact search: key is stored at `peer`
  uint64_t matches = 0;   // range search: stored keys in [lo, hi)
  uint64_t nodes = 0;     // range search: nodes intersecting the range
  int hops = 0;           // routing hops reported by the backend
  uint64_t messages = 0;  // total message delta for the whole operation
  /// Simulated wall-clock cost of the operation in ticks: sequential hops
  /// add, parallel fan-out takes the max over branches. Always 0 when no
  /// latency model is attached. Under a fault plan this spans every
  /// attempt, backoff included.
  uint64_t latency_ticks = 0;

  // ---- Resilience outcome (fault injection). All zero/false when no
  // fault plan is attached (see Overlay::AttachFaults). --------------------
  int retries = 0;    // extra attempts the resilience policy ran
  int timeouts = 0;   // attempts discarded for overrunning the hop budget
  /// The retry budget ran out with every attempt still losing messages or
  /// timing out; status is Unavailable and the answer fields are unset.
  bool gave_up = false;
  /// The operation completed, but only by absorbing faults: it lost or
  /// duplicated messages, or needed retries. Mutating ops that lost
  /// messages report degraded service instead of failing (the protocols'
  /// own recovery paths repair state).
  bool degraded = false;
  uint64_t dropped_msgs = 0;  // messages lost across all attempts

  // ---- Hot-path caching outcome. All zero when no cache manager is
  // attached (see Overlay::AttachCache). ------------------------------------
  /// Attempts answered by a verified route-cache jump (one probe message).
  int cache_hits = 0;
  /// Attempts whose cached owner no longer held the key: the probe was
  /// wasted, the entry evicted, and the normal protocol walk ran instead.
  int cache_stale = 0;
  /// Hops the cache saved vs. the walk that originally learned the route.
  int hops_saved = 0;

  bool ok() const { return status.ok(); }
};

/// Abstract overlay backend. Public operations are non-virtual wrappers
/// that snapshot the network counters around the protected Do* hooks, so
/// OpStats::messages is identical across backends by construction.
class Overlay {
 public:
  virtual ~Overlay() = default;
  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  /// Registry name of the backend ("baton", "chord", "multiway", ...).
  virtual const std::string& name() const = 0;
  /// Bitmask of Capability values.
  virtual uint32_t capabilities() const = 0;
  bool Supports(Capability c) const { return (capabilities() & c) != 0; }

  /// The simulated physical network the backend is wired to (owned by the
  /// backend). Exposed for liveness queries, per-peer counters, deferred
  /// updates and type-filtered message accounting.
  virtual net::Network* network() = 0;
  virtual const net::Network* network() const = 0;

  /// Attaches the sim/ discrete-event kernel to the backend's network so
  /// every subsequent operation reports its simulated critical-path time in
  /// OpStats::latency_ticks (see net::Network::AttachSim). Works on every
  /// backend: the timing is derived from the Count() stream, not from
  /// backend code. `queue` and `latency` are non-owning and must outlive
  /// the attachment.
  void AttachLatency(sim::EventQueue* queue, sim::LatencyModel* latency,
                     uint64_t seed) {
    network()->AttachSim(queue, latency, seed);
  }

  /// Attaches an observability collector (same lifecycle contract as
  /// AttachLatency: per instance, opt-in, non-owning, must outlive the
  /// attachment; pass nullptr to detach). The measured wrapper then opens a
  /// causal span per public operation and feeds its outcome into the
  /// observer's metrics registry, while the network reports every counted
  /// message into the open span. With no observer attached (the default)
  /// the hot paths gain nothing but a null check -- no allocations, and all
  /// bench output stays byte-identical.
  void AttachObserver(obs::Observer* obs) {
    obs_ = obs;
    network()->AttachObserver(obs);
  }
  obs::Observer* observer() const { return obs_; }

  /// Attaches a fault-injection plan to the backend's network (same
  /// lifecycle contract as the sim and obs attachments: per instance,
  /// opt-in, non-owning, nullptr detaches). While attached, the measured
  /// wrapper runs read operations under the resilience() policy -- per-
  /// attempt loss/timeout detection, bounded retry with deterministic
  /// backoff, RetryOrigin rerouting -- and fills the OpStats resilience
  /// fields; with an observer also attached, fault.* metrics accumulate in
  /// its registry. Detached (the default) every hot path pays one null
  /// check and output is byte-identical to a fault-free build.
  void AttachFaults(net::FaultInjector* f) { network()->AttachFaults(f); }

  /// Attaches the hot-path caching manager (same lifecycle contract as the
  /// other attachments: per instance, opt-in, non-owning, nullptr
  /// detaches). While attached, exact searches consult the origin's route
  /// cache and the replicated fast-table before walking the protocol, learn
  /// completed routes, and membership operations invalidate what they move
  /// (see src/cache/cache.h). Detached (the default) every operation pays
  /// one null check and all output is byte-identical to a cache-free build.
  void AttachCache(cache::Manager* c) { cache_ = c; }
  cache::Manager* route_cache() const { return cache_; }

  /// Resilience budget applied while a fault plan is attached. The default
  /// policy (no retries, no timeout) makes every message loss in a read
  /// operation fatal to it -- the honest baseline benches compare against.
  void SetResilience(const fault::Policy& p) { resilience_ = p; }
  const fault::Policy& resilience() const { return resilience_; }

  /// Fallback origin for retry `attempt` (1-based) of a read operation
  /// that started at `origin`: backends override this to re-resolve via
  /// the stale route's neighbours (parent / adjacent / successor links),
  /// cycling deterministically through the candidates. The base returns
  /// `origin` (retry in place). Must return a current member.
  virtual PeerId RetryOrigin(PeerId origin, int attempt) const;

  // ---- Cache support surface (per-backend). --------------------------------
  /// Routing coordinate of `key`: the space cache intervals live in. Tree
  /// backends route on the key itself (the default); Chord overrides this
  /// with HashKey, because its ownership intervals exist in hash space.
  virtual uint64_t RouteCoordOf(Key key) const;
  /// Current ownership interval of `peer` in routing-coordinate space,
  /// half-open [lo, hi) with cache::RangeContains conventions (Chord wraps).
  /// Returns false when the peer is not a live member. This is both the
  /// fact the route cache learns and the owner-side verification of a hit.
  virtual bool RouteHint(PeerId peer, uint64_t* lo, uint64_t* hi) const;
  /// Snapshot of the top `levels` tree levels (Chord: a 2^levels-arc finger
  /// prefix of the ring) as fast-table regions. Deeper entries win lookups.
  virtual void CollectFastTable(int levels,
                                std::vector<cache::FastEntry>* out) const;
  /// Answers `key` directly at `owner` -- already verified (RouteHint) to
  /// own the key's routing coordinate -- filling st->peer/st->found and
  /// returning true. The base returns false: the wrapper then runs a
  /// protocol search from `owner`, which tree backends resolve in zero
  /// hops. Chord overrides this because its successor walk from the owner
  /// would circle the ring to rediscover what the probe just verified.
  virtual bool CacheLocalAnswer(PeerId owner, Key key, OpStats* st);

  // ---- Membership ----------------------------------------------------------
  /// Creates the first node. Must be called exactly once, before any Join.
  PeerId Bootstrap();
  /// New peer joins via `contact`; OpStats::peer is the joiner's id.
  OpStats Join(PeerId contact);
  /// Graceful departure.
  OpStats Leave(PeerId leaver);
  /// Abrupt failure (requires kFailRecovery): the peer stops responding.
  OpStats Fail(PeerId victim);
  /// Repairs every pending failure (requires kFailRecovery).
  OpStats RecoverAllFailures();

  // ---- Index operations ----------------------------------------------------
  OpStats Insert(PeerId from, Key key);
  OpStats Delete(PeerId from, Key key);
  OpStats ExactSearch(PeerId from, Key key);
  /// Range query [lo, hi) (requires kRangeSearch).
  OpStats RangeSearch(PeerId from, Key lo, Key hi);

  // ---- Introspection -------------------------------------------------------
  virtual size_t size() const = 0;
  /// All members, in the backend's canonical (key-space) order.
  virtual std::vector<PeerId> Members() const = 0;
  virtual uint64_t total_keys() const = 0;
  /// Validates the backend's structural invariants; CHECK-fails on
  /// violation.
  virtual void CheckInvariants() const = 0;

  /// Salt the generic builder mixes into its rng seed. Each backend keeps
  /// the value its historical hand-wired builder used, so bench tables stay
  /// byte-identical across the unification.
  virtual uint64_t build_salt() const = 0;

 protected:
  Overlay() = default;

  virtual PeerId DoBootstrap() = 0;
  virtual void DoJoin(PeerId contact, OpStats* st) = 0;
  virtual void DoLeave(PeerId leaver, OpStats* st) = 0;
  virtual void DoFail(PeerId victim, OpStats* st);
  virtual void DoRecoverAllFailures(OpStats* st);
  virtual void DoInsert(PeerId from, Key key, OpStats* st) = 0;
  virtual void DoDelete(PeerId from, Key key, OpStats* st) = 0;
  virtual void DoExactSearch(PeerId from, Key key, OpStats* st) = 0;
  virtual void DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st);

  /// Shared FailedPrecondition status for operations the backend opted out
  /// of via capabilities().
  Status Unsupported(const char* op) const;

  // Invalidation hooks for the backends' membership paths: a leave/fail
  // drops every route pointing at the departed peer; a join/leave/
  // restructure that moved ownership of an interval drops the routes
  // covering it. No-ops when no cache is attached.
  void CacheInvalidatePeer(PeerId owner);
  void CacheInvalidateRange(uint64_t lo, uint64_t hi);

 private:
  /// The measured wrapper: counter snapshots, sim window, obs span, fault
  /// op tick, and -- with a fault plan attached -- the resilience loop.
  /// `retryable` marks read operations (safe to re-issue); `origin` is the
  /// peer the operation starts from (kNullPeer for membership repair ops
  /// with no caller-chosen origin).
  template <typename Fn>
  OpStats Measured(const char* op, PeerId origin, bool retryable, Fn&& fn);
  /// The fault-path body of Measured: one attempt per loop iteration.
  template <typename Fn>
  void RunResilient(net::Network* net, PeerId origin, bool retryable,
                    Fn&& fn, OpStats* st);
  /// The cache-aware exact-search body: consult the origin's route cache
  /// (verified jump / stale fallback), then the fast-table (lazy refresh +
  /// cold jump), then the protocol walk; learn the completed route. With no
  /// cache attached this is exactly DoExactSearch.
  void CacheAwareExact(PeerId from, Key key, OpStats* st);
  /// Mirrors the per-op cache Stats delta into the observer's `cache.*`
  /// metrics and refreshes the hit-rate gauge.
  void PublishCacheMetrics(const cache::Stats& before);

  obs::Observer* obs_ = nullptr;
  cache::Manager* cache_ = nullptr;
  fault::Policy resilience_;
};

}  // namespace overlay
}  // namespace baton

#endif  // BATON_OVERLAY_OVERLAY_H_
