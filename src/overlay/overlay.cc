#include "overlay/overlay.h"

namespace baton {
namespace overlay {

/// Runs `fn(origin, &st)` with counter snapshots and a sim measurement
/// window around it, so st.messages is the exact message cost of the
/// operation and st.latency_ticks its simulated critical-path time (0 with
/// no latency model attached), whatever the backend did inside. With an
/// observer attached the whole operation is additionally bracketed as one
/// causal span named `op`, and its outcome feeds the per-op metrics. With
/// a fault plan attached the body runs under the resilience policy
/// (RunResilient); detached, this is the historical single-attempt wrapper
/// plus two null checks.
template <typename Fn>
OpStats Overlay::Measured(const char* op, PeerId origin, bool retryable,
                          Fn&& fn) {
  net::Network* net = network();
  OpStats st;
  net::CounterSnapshot before = net->Snapshot();
  const bool cache_metrics = cache_ != nullptr && obs_ != nullptr;
  cache::Stats cache_before;
  if (cache_metrics) cache_before = cache_->stats();
  if (obs_ != nullptr) obs_->BeginOp(op, net->ObsClock());
  net->FaultOpTick();
  if (net->faults() == nullptr) {
    net->BeginOpWindow();
    fn(origin, &st);
    st.latency_ticks = net->EndOpWindow();
  } else {
    RunResilient(net, origin, retryable, fn, &st);
  }
  st.messages = net::Network::Delta(before, net->Snapshot());
  if (obs_ != nullptr) {
    obs_->EndOp(op, net->ObsClock(),
                {st.ok(), st.peer, st.hops, st.messages, st.latency_ticks});
    if (net->faults() != nullptr) {
      obs::Registry& reg = obs_->metrics();
      if (st.dropped_msgs > 0) {
        reg.Counter(fault::kMetricDrops) += st.dropped_msgs;
      }
      if (st.retries > 0) {
        reg.Counter(fault::kMetricRetries) +=
            static_cast<uint64_t>(st.retries);
      }
      if (st.timeouts > 0) {
        reg.Counter(fault::kMetricTimeouts) +=
            static_cast<uint64_t>(st.timeouts);
      }
      if (st.gave_up) ++reg.Counter(fault::kMetricGaveUp);
      if (st.degraded) ++reg.Counter(fault::kMetricDegraded);
    }
    if (cache_metrics) PublishCacheMetrics(cache_before);
  }
  return st;
}

/// One resilience-policy run: attempts until the answer is trustworthy
/// (no message of the attempt was dropped, and it beat the timeout) or the
/// retry budget runs out. Mutating operations (`retryable == false`) take
/// exactly one attempt and report absorbed faults as degraded service --
/// re-issuing a join or insert could double-apply state, and the protocols
/// repair damage through their own recovery paths instead.
template <typename Fn>
void Overlay::RunResilient(net::Network* net, PeerId origin, bool retryable,
                           Fn&& fn, OpStats* st) {
  const fault::Policy& pol = resilience_;
  const int attempts = 1 + (retryable ? pol.max_retries : 0);
  uint64_t total_latency = 0;
  uint64_t dup_msgs = 0;
  PeerId from = origin;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++st->retries;
      total_latency += pol.BackoffFor(attempt);
      if (pol.reroute && origin != kNullPeer) {
        from = RetryOrigin(origin, attempt);
      }
    }
    OpStats att;
    net->BeginOpWindow();
    fn(from, &att);
    att.latency_ticks = net->EndOpWindow();
    total_latency += att.latency_ticks;
    uint64_t drops = net->window_dropped();
    dup_msgs += net->window_duplicated();
    st->dropped_msgs += drops;
    // Cache interactions are real (and billed) whether or not the attempt
    // is accepted, so they accumulate across attempts.
    st->cache_hits += att.cache_hits;
    st->cache_stale += att.cache_stale;
    st->hops_saved += att.hops_saved;
    // An attempt that lost any message cannot prove its answer reached
    // anyone (the loss may have been the reply); one that overran the
    // timeout is discarded by the impatient caller. Either way: retry.
    bool lost = retryable && drops > 0;
    bool late = retryable && pol.timeout_ticks > 0 &&
                att.latency_ticks > pol.timeout_ticks;
    if (late) ++st->timeouts;
    if (!lost && !late) {
      st->status = att.status;
      st->peer = att.peer;
      st->found = att.found;
      st->matches = att.matches;
      st->nodes = att.nodes;
      st->hops = att.hops;
      st->latency_ticks = total_latency;
      st->degraded = st->retries > 0 || st->dropped_msgs > 0 || dup_msgs > 0;
      return;
    }
  }
  st->gave_up = true;
  st->degraded = true;
  st->latency_ticks = total_latency;
  st->status = Status::Unavailable(
      "retry budget exhausted under fault injection");
}

std::string CapabilitiesToString(uint32_t caps) {
  static constexpr struct {
    Capability bit;
    const char* name;
  } kNames[] = {
      {kRangeSearch, "range"},   {kFailRecovery, "fail"},
      {kLoadBalance, "balance"}, {kReplication, "replicate"},
      {kOrderedGrowth, "ordered"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if ((caps & bit) == 0) continue;
    if (!out.empty()) out += ",";
    out += name;
  }
  return out.empty() ? "-" : out;
}

PeerId Overlay::Bootstrap() { return DoBootstrap(); }

PeerId Overlay::RetryOrigin(PeerId origin, int attempt) const {
  (void)attempt;
  return origin;
}

OpStats Overlay::Join(PeerId contact) {
  OpStats st = Measured("join", contact, /*retryable=*/false,
                        [&](PeerId c, OpStats* s) { DoJoin(c, s); });
  // Any membership change outdates the replicated fast-table; every node's
  // mirror refreshes lazily on its next cold lookup.
  if (cache_ != nullptr && st.ok()) cache_->BumpVersion();
  return st;
}

OpStats Overlay::Leave(PeerId leaver) {
  OpStats st = Measured("leave", kNullPeer, /*retryable=*/false,
                        [&](PeerId, OpStats* s) { DoLeave(leaver, s); });
  if (cache_ != nullptr && st.ok()) cache_->BumpVersion();
  return st;
}

OpStats Overlay::Fail(PeerId victim) {
  OpStats st = Measured("fail", kNullPeer, /*retryable=*/false,
                        [&](PeerId, OpStats* s) { DoFail(victim, s); });
  if (cache_ != nullptr && st.ok()) cache_->BumpVersion();
  return st;
}

OpStats Overlay::RecoverAllFailures() {
  OpStats st = Measured("recover", kNullPeer, /*retryable=*/false,
                        [&](PeerId, OpStats* s) { DoRecoverAllFailures(s); });
  if (cache_ != nullptr && st.ok()) cache_->BumpVersion();
  return st;
}

OpStats Overlay::Insert(PeerId from, Key key) {
  return Measured("insert", from, /*retryable=*/false,
                  [&](PeerId f, OpStats* st) { DoInsert(f, key, st); });
}

OpStats Overlay::Delete(PeerId from, Key key) {
  return Measured("delete", from, /*retryable=*/false,
                  [&](PeerId f, OpStats* st) { DoDelete(f, key, st); });
}

OpStats Overlay::ExactSearch(PeerId from, Key key) {
  return Measured("exact", from, /*retryable=*/true,
                  [&](PeerId f, OpStats* st) { CacheAwareExact(f, key, st); });
}

OpStats Overlay::RangeSearch(PeerId from, Key lo, Key hi) {
  return Measured("range", from, /*retryable=*/true,
                  [&](PeerId f, OpStats* st) { DoRangeSearch(f, lo, hi, st); });
}

void Overlay::DoFail(PeerId victim, OpStats* st) {
  (void)victim;
  st->status = Unsupported("Fail");
}

void Overlay::DoRecoverAllFailures(OpStats* st) {
  st->status = Unsupported("RecoverAllFailures");
}

void Overlay::DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) {
  (void)from;
  (void)lo;
  (void)hi;
  st->status = Unsupported("RangeSearch");
}

Status Overlay::Unsupported(const char* op) const {
  return Status::FailedPrecondition(name() + " does not support " + op);
}

uint64_t Overlay::RouteCoordOf(Key key) const {
  return static_cast<uint64_t>(key);
}

bool Overlay::RouteHint(PeerId peer, uint64_t* lo, uint64_t* hi) const {
  (void)peer;
  (void)lo;
  (void)hi;
  return false;
}

void Overlay::CollectFastTable(int levels,
                               std::vector<cache::FastEntry>* out) const {
  (void)levels;
  (void)out;
}

bool Overlay::CacheLocalAnswer(PeerId owner, Key key, OpStats* st) {
  (void)owner;
  (void)key;
  (void)st;
  return false;
}

void Overlay::CacheInvalidatePeer(PeerId owner) {
  if (cache_ != nullptr) cache_->InvalidatePeer(owner);
}

void Overlay::CacheInvalidateRange(uint64_t lo, uint64_t hi) {
  if (cache_ != nullptr) cache_->InvalidateRange(lo, hi);
}

void Overlay::CacheAwareExact(PeerId from, Key key, OpStats* st) {
  cache::Manager* c = cache_;
  if (c == nullptr) {
    DoExactSearch(from, key, st);
    return;
  }
  net::Network* net = network();
  const uint64_t rk = RouteCoordOf(key);
  // Route cache first: on a hit, one probe message jumps straight at the
  // remembered owner, who answers iff it still owns rk. A refuted hit has
  // already paid the probe (honest accounting), evicts the entry, and runs
  // the normal walk below.
  cache::RouteEntry hint;
  int slot = c->Lookup(from, rk, &hint);
  if (slot >= 0 && hint.owner != from) {
    net->Count(from, hint.owner, net::MsgType::kCacheProbe);
    uint64_t lo = 0;
    uint64_t hi = 0;
    if (net->IsAlive(hint.owner) && RouteHint(hint.owner, &lo, &hi) &&
        cache::RangeContains(lo, hi, rk)) {
      if (!CacheLocalAnswer(hint.owner, key, st)) {
        DoExactSearch(hint.owner, key, st);
      }
      st->hops += 1;  // the verified jump
      st->cache_hits += 1;
      if (hint.cost > st->hops) st->hops_saved += hint.cost - st->hops;
      c->NoteHit();
      return;
    }
    c->EvictStale(from, slot);
    st->cache_stale += 1;
  } else if (slot < 0) {
    c->NoteMiss();
  }
  PeerId start = from;
  int jump = 0;
  if (c->fast_enabled()) {
    if (c->NeedsRefresh(from)) {
      if (c->SnapshotStale()) {
        std::vector<cache::FastEntry> snap;
        CollectFastTable(c->config().root_levels, &snap);
        c->InstallSnapshot(std::move(snap));
      }
      // Lazy refresh: each live fast-table node ships its region to the
      // consulting node, billed as maintenance traffic inside this op.
      uint64_t billed = 0;
      for (const cache::FastEntry& fe : c->fast_entries()) {
        if (fe.peer == from || !net->IsAlive(fe.peer)) continue;
        net->Count(fe.peer, from, net::MsgType::kCacheRefresh);
        ++billed;
      }
      c->MarkRefreshed(from, billed);
    }
    const cache::FastEntry* fe = c->FastLookup(rk);
    if (fe != nullptr && fe->peer != from && net->IsAlive(fe->peer)) {
      net->Count(from, fe->peer, net::MsgType::kCacheProbe);
      start = fe->peer;
      jump = 1;
      c->NoteFastHit();
    }
  }
  DoExactSearch(start, key, st);
  st->hops += jump;
  // Learn the completed route at the origin: the owner's current interval
  // is the fact a later lookup can jump on. Zero-hop answers (the origin
  // already owned the key) teach nothing a jump could improve.
  if (st->ok() && st->peer != kNullPeer && st->peer != from) {
    uint64_t lo = 0;
    uint64_t hi = 0;
    if (RouteHint(st->peer, &lo, &hi) && cache::RangeContains(lo, hi, rk)) {
      c->Learn(from, lo, hi, st->peer, st->hops);
    }
  }
}

void Overlay::PublishCacheMetrics(const cache::Stats& before) {
  const cache::Stats& now = cache_->stats();
  obs::Registry& reg = obs_->metrics();
  const auto bump = [&reg](const char* name, uint64_t delta) {
    if (delta > 0) reg.Counter(name) += delta;
  };
  bump(cache::kMetricHits, now.hits - before.hits);
  bump(cache::kMetricMisses, now.misses - before.misses);
  bump(cache::kMetricStale, now.stale - before.stale);
  bump(cache::kMetricEvictions, now.evictions - before.evictions);
  bump(cache::kMetricInvalidations, now.invalidations - before.invalidations);
  bump(cache::kMetricFastHits, now.fast_hits - before.fast_hits);
  bump(cache::kMetricRefreshes, now.refreshes - before.refreshes);
  const uint64_t consults = now.hits + now.misses + now.stale;
  if (consults > 0) {
    reg.Gauge(cache::kMetricHitRatePct) =
        static_cast<int64_t>(100 * now.hits / consults);
  }
}

}  // namespace overlay
}  // namespace baton
