#include "overlay/overlay.h"

namespace baton {
namespace overlay {

namespace {

/// Runs `fn(&st)` with counter snapshots and a sim measurement window
/// around it, so st.messages is the exact message cost of the operation and
/// st.latency_ticks its simulated critical-path time (0 with no latency
/// model attached), whatever the backend did inside. With an observer
/// attached the whole operation is additionally bracketed as one causal
/// span named `op`, and its outcome feeds the per-op metrics.
template <typename Fn>
OpStats Measured(net::Network* net, obs::Observer* obs, const char* op,
                 Fn&& fn) {
  OpStats st;
  net::CounterSnapshot before = net->Snapshot();
  if (obs != nullptr) obs->BeginOp(op, net->ObsClock());
  net->BeginOpWindow();
  fn(&st);
  st.latency_ticks = net->EndOpWindow();
  st.messages = net::Network::Delta(before, net->Snapshot());
  if (obs != nullptr) {
    obs->EndOp(op, net->ObsClock(),
               {st.ok(), st.peer, st.hops, st.messages, st.latency_ticks});
  }
  return st;
}

}  // namespace

std::string CapabilitiesToString(uint32_t caps) {
  static constexpr struct {
    Capability bit;
    const char* name;
  } kNames[] = {
      {kRangeSearch, "range"},   {kFailRecovery, "fail"},
      {kLoadBalance, "balance"}, {kReplication, "replicate"},
      {kOrderedGrowth, "ordered"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if ((caps & bit) == 0) continue;
    if (!out.empty()) out += ",";
    out += name;
  }
  return out.empty() ? "-" : out;
}

PeerId Overlay::Bootstrap() { return DoBootstrap(); }

OpStats Overlay::Join(PeerId contact) {
  return Measured(network(), observer(), "join",
                  [&](OpStats* st) { DoJoin(contact, st); });
}

OpStats Overlay::Leave(PeerId leaver) {
  return Measured(network(), observer(), "leave",
                  [&](OpStats* st) { DoLeave(leaver, st); });
}

OpStats Overlay::Fail(PeerId victim) {
  return Measured(network(), observer(), "fail",
                  [&](OpStats* st) { DoFail(victim, st); });
}

OpStats Overlay::RecoverAllFailures() {
  return Measured(network(), observer(), "recover",
                  [&](OpStats* st) { DoRecoverAllFailures(st); });
}

OpStats Overlay::Insert(PeerId from, Key key) {
  return Measured(network(), observer(), "insert",
                  [&](OpStats* st) { DoInsert(from, key, st); });
}

OpStats Overlay::Delete(PeerId from, Key key) {
  return Measured(network(), observer(), "delete",
                  [&](OpStats* st) { DoDelete(from, key, st); });
}

OpStats Overlay::ExactSearch(PeerId from, Key key) {
  return Measured(network(), observer(), "exact",
                  [&](OpStats* st) { DoExactSearch(from, key, st); });
}

OpStats Overlay::RangeSearch(PeerId from, Key lo, Key hi) {
  return Measured(network(), observer(), "range",
                  [&](OpStats* st) { DoRangeSearch(from, lo, hi, st); });
}

void Overlay::DoFail(PeerId victim, OpStats* st) {
  (void)victim;
  st->status = Unsupported("Fail");
}

void Overlay::DoRecoverAllFailures(OpStats* st) {
  st->status = Unsupported("RecoverAllFailures");
}

void Overlay::DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) {
  (void)from;
  (void)lo;
  (void)hi;
  st->status = Unsupported("RangeSearch");
}

Status Overlay::Unsupported(const char* op) const {
  return Status::FailedPrecondition(name() + " does not support " + op);
}

}  // namespace overlay
}  // namespace baton
