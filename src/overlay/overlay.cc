#include "overlay/overlay.h"

namespace baton {
namespace overlay {

/// Runs `fn(origin, &st)` with counter snapshots and a sim measurement
/// window around it, so st.messages is the exact message cost of the
/// operation and st.latency_ticks its simulated critical-path time (0 with
/// no latency model attached), whatever the backend did inside. With an
/// observer attached the whole operation is additionally bracketed as one
/// causal span named `op`, and its outcome feeds the per-op metrics. With
/// a fault plan attached the body runs under the resilience policy
/// (RunResilient); detached, this is the historical single-attempt wrapper
/// plus two null checks.
template <typename Fn>
OpStats Overlay::Measured(const char* op, PeerId origin, bool retryable,
                          Fn&& fn) {
  net::Network* net = network();
  OpStats st;
  net::CounterSnapshot before = net->Snapshot();
  if (obs_ != nullptr) obs_->BeginOp(op, net->ObsClock());
  net->FaultOpTick();
  if (net->faults() == nullptr) {
    net->BeginOpWindow();
    fn(origin, &st);
    st.latency_ticks = net->EndOpWindow();
  } else {
    RunResilient(net, origin, retryable, fn, &st);
  }
  st.messages = net::Network::Delta(before, net->Snapshot());
  if (obs_ != nullptr) {
    obs_->EndOp(op, net->ObsClock(),
                {st.ok(), st.peer, st.hops, st.messages, st.latency_ticks});
    if (net->faults() != nullptr) {
      obs::Registry& reg = obs_->metrics();
      if (st.dropped_msgs > 0) {
        reg.Counter(fault::kMetricDrops) += st.dropped_msgs;
      }
      if (st.retries > 0) {
        reg.Counter(fault::kMetricRetries) +=
            static_cast<uint64_t>(st.retries);
      }
      if (st.timeouts > 0) {
        reg.Counter(fault::kMetricTimeouts) +=
            static_cast<uint64_t>(st.timeouts);
      }
      if (st.gave_up) ++reg.Counter(fault::kMetricGaveUp);
      if (st.degraded) ++reg.Counter(fault::kMetricDegraded);
    }
  }
  return st;
}

/// One resilience-policy run: attempts until the answer is trustworthy
/// (no message of the attempt was dropped, and it beat the timeout) or the
/// retry budget runs out. Mutating operations (`retryable == false`) take
/// exactly one attempt and report absorbed faults as degraded service --
/// re-issuing a join or insert could double-apply state, and the protocols
/// repair damage through their own recovery paths instead.
template <typename Fn>
void Overlay::RunResilient(net::Network* net, PeerId origin, bool retryable,
                           Fn&& fn, OpStats* st) {
  const fault::Policy& pol = resilience_;
  const int attempts = 1 + (retryable ? pol.max_retries : 0);
  uint64_t total_latency = 0;
  uint64_t dup_msgs = 0;
  PeerId from = origin;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++st->retries;
      total_latency += pol.BackoffFor(attempt);
      if (pol.reroute && origin != kNullPeer) {
        from = RetryOrigin(origin, attempt);
      }
    }
    OpStats att;
    net->BeginOpWindow();
    fn(from, &att);
    att.latency_ticks = net->EndOpWindow();
    total_latency += att.latency_ticks;
    uint64_t drops = net->window_dropped();
    dup_msgs += net->window_duplicated();
    st->dropped_msgs += drops;
    // An attempt that lost any message cannot prove its answer reached
    // anyone (the loss may have been the reply); one that overran the
    // timeout is discarded by the impatient caller. Either way: retry.
    bool lost = retryable && drops > 0;
    bool late = retryable && pol.timeout_ticks > 0 &&
                att.latency_ticks > pol.timeout_ticks;
    if (late) ++st->timeouts;
    if (!lost && !late) {
      st->status = att.status;
      st->peer = att.peer;
      st->found = att.found;
      st->matches = att.matches;
      st->nodes = att.nodes;
      st->hops = att.hops;
      st->latency_ticks = total_latency;
      st->degraded = st->retries > 0 || st->dropped_msgs > 0 || dup_msgs > 0;
      return;
    }
  }
  st->gave_up = true;
  st->degraded = true;
  st->latency_ticks = total_latency;
  st->status = Status::Unavailable(
      "retry budget exhausted under fault injection");
}

std::string CapabilitiesToString(uint32_t caps) {
  static constexpr struct {
    Capability bit;
    const char* name;
  } kNames[] = {
      {kRangeSearch, "range"},   {kFailRecovery, "fail"},
      {kLoadBalance, "balance"}, {kReplication, "replicate"},
      {kOrderedGrowth, "ordered"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if ((caps & bit) == 0) continue;
    if (!out.empty()) out += ",";
    out += name;
  }
  return out.empty() ? "-" : out;
}

PeerId Overlay::Bootstrap() { return DoBootstrap(); }

PeerId Overlay::RetryOrigin(PeerId origin, int attempt) const {
  (void)attempt;
  return origin;
}

OpStats Overlay::Join(PeerId contact) {
  return Measured("join", contact, /*retryable=*/false,
                  [&](PeerId c, OpStats* st) { DoJoin(c, st); });
}

OpStats Overlay::Leave(PeerId leaver) {
  return Measured("leave", kNullPeer, /*retryable=*/false,
                  [&](PeerId, OpStats* st) { DoLeave(leaver, st); });
}

OpStats Overlay::Fail(PeerId victim) {
  return Measured("fail", kNullPeer, /*retryable=*/false,
                  [&](PeerId, OpStats* st) { DoFail(victim, st); });
}

OpStats Overlay::RecoverAllFailures() {
  return Measured("recover", kNullPeer, /*retryable=*/false,
                  [&](PeerId, OpStats* st) { DoRecoverAllFailures(st); });
}

OpStats Overlay::Insert(PeerId from, Key key) {
  return Measured("insert", from, /*retryable=*/false,
                  [&](PeerId f, OpStats* st) { DoInsert(f, key, st); });
}

OpStats Overlay::Delete(PeerId from, Key key) {
  return Measured("delete", from, /*retryable=*/false,
                  [&](PeerId f, OpStats* st) { DoDelete(f, key, st); });
}

OpStats Overlay::ExactSearch(PeerId from, Key key) {
  return Measured("exact", from, /*retryable=*/true,
                  [&](PeerId f, OpStats* st) { DoExactSearch(f, key, st); });
}

OpStats Overlay::RangeSearch(PeerId from, Key lo, Key hi) {
  return Measured("range", from, /*retryable=*/true,
                  [&](PeerId f, OpStats* st) { DoRangeSearch(f, lo, hi, st); });
}

void Overlay::DoFail(PeerId victim, OpStats* st) {
  (void)victim;
  st->status = Unsupported("Fail");
}

void Overlay::DoRecoverAllFailures(OpStats* st) {
  st->status = Unsupported("RecoverAllFailures");
}

void Overlay::DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) {
  (void)from;
  (void)lo;
  (void)hi;
  st->status = Unsupported("RangeSearch");
}

Status Overlay::Unsupported(const char* op) const {
  return Status::FailedPrecondition(name() + " does not support " + op);
}

}  // namespace overlay
}  // namespace baton
