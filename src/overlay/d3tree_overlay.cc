#include "overlay/d3tree_overlay.h"

#include "util/check.h"

namespace baton {
namespace overlay {

D3TreeOverlay::D3TreeOverlay(const d3tree::D3Config& cfg, uint64_t seed)
    : tree_(std::make_unique<d3tree::D3TreeNetwork>(cfg, &net_)) {
  // The D3-Tree protocol is fully deterministic -- no rng to seed. The
  // parameter keeps the factory signature uniform across backends.
  (void)seed;
}

const std::string& D3TreeOverlay::name() const {
  static const std::string kName = "d3tree";
  return kName;
}

PeerId D3TreeOverlay::RetryOrigin(PeerId origin, int attempt) const {
  const d3tree::D3Node& n = tree_->node(origin);
  if (!n.in_overlay) return origin;
  PeerId cand[2];
  int cnt = 0;
  for (PeerId p : {n.left_adj, n.right_adj}) {
    if (p != kNullPeer && tree_->node(p).in_overlay && net_.IsAlive(p)) {
      cand[cnt++] = p;
    }
  }
  if (cnt == 0) return origin;
  return cand[(attempt - 1) % cnt];
}

PeerId D3TreeOverlay::DoBootstrap() { return tree_->Bootstrap(); }

void D3TreeOverlay::DoJoin(PeerId contact, OpStats* st) {
  Result<PeerId> r = tree_->Join(contact);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value();
}

void D3TreeOverlay::DoLeave(PeerId leaver, OpStats* st) {
  st->status = tree_->Leave(leaver);
}

void D3TreeOverlay::DoFail(PeerId victim, OpStats* st) {
  (void)st;
  tree_->Fail(victim);
}

void D3TreeOverlay::DoRecoverAllFailures(OpStats* st) {
  st->status = tree_->RecoverAllFailures();
}

void D3TreeOverlay::DoInsert(PeerId from, Key key, OpStats* st) {
  st->status = tree_->Insert(from, key);
}

void D3TreeOverlay::DoDelete(PeerId from, Key key, OpStats* st) {
  st->status = tree_->Delete(from, key);
}

void D3TreeOverlay::DoExactSearch(PeerId from, Key key, OpStats* st) {
  auto r = tree_->ExactSearch(from, key);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value().node;
  st->found = r.value().found;
  st->hops = r.value().hops;
}

void D3TreeOverlay::DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) {
  auto r = tree_->RangeSearch(from, lo, hi);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->nodes = r.value().nodes.size();
  st->matches = r.value().matches;
  st->hops = r.value().hops;
  st->found = r.value().matches > 0;
}

d3tree::D3TreeNetwork& D3TreeBackend(Overlay& ov) {
  auto* adapter = dynamic_cast<D3TreeOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the d3tree backend";
  return adapter->d3tree();
}

const d3tree::D3TreeNetwork& D3TreeBackend(const Overlay& ov) {
  const auto* adapter = dynamic_cast<const D3TreeOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the d3tree backend";
  return adapter->d3tree();
}

}  // namespace overlay
}  // namespace baton
