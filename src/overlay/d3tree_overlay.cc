#include "overlay/d3tree_overlay.h"

#include "util/check.h"

namespace baton {
namespace overlay {

D3TreeOverlay::D3TreeOverlay(const d3tree::D3Config& cfg, uint64_t seed)
    : tree_(std::make_unique<d3tree::D3TreeNetwork>(cfg, &net_)) {
  // The D3-Tree protocol is fully deterministic -- no rng to seed. The
  // parameter keeps the factory signature uniform across backends.
  (void)seed;
}

const std::string& D3TreeOverlay::name() const {
  static const std::string kName = "d3tree";
  return kName;
}

PeerId D3TreeOverlay::RetryOrigin(PeerId origin, int attempt) const {
  const d3tree::D3Node& n = tree_->node(origin);
  if (!n.in_overlay) return origin;
  PeerId cand[2];
  int cnt = 0;
  for (PeerId p : {n.left_adj, n.right_adj}) {
    if (p != kNullPeer && tree_->node(p).in_overlay && net_.IsAlive(p)) {
      cand[cnt++] = p;
    }
  }
  if (cnt == 0) return origin;
  return cand[(attempt - 1) % cnt];
}

bool D3TreeOverlay::RouteHint(PeerId peer, uint64_t* lo,
                              uint64_t* hi) const {
  const d3tree::D3Node& n = tree_->node(peer);
  if (!n.in_overlay || n.range.lo >= n.range.hi) return false;
  *lo = static_cast<uint64_t>(n.range.lo);
  *hi = static_cast<uint64_t>(n.range.hi);
  return true;
}

namespace {

/// The backbone already maintains subtree extents per bucket; a fast-table
/// entry jumps to the bucket representative, which holds the routing state.
void CollectD3Subtree(const d3tree::D3TreeNetwork& d3, d3tree::BucketId b,
                      int depth, int levels,
                      std::vector<cache::FastEntry>* out) {
  if (b == d3tree::kNullBucket) return;
  const d3tree::D3Bucket& bk = d3.bucket(b);
  if (!bk.live || bk.members.empty()) return;
  if (bk.extent.lo < bk.extent.hi) {
    out->push_back({static_cast<uint64_t>(bk.extent.lo),
                    static_cast<uint64_t>(bk.extent.hi), bk.members.front(),
                    depth});
  }
  if (depth + 1 >= levels) return;
  CollectD3Subtree(d3, bk.left, depth + 1, levels, out);
  CollectD3Subtree(d3, bk.right, depth + 1, levels, out);
}

}  // namespace

void D3TreeOverlay::CollectFastTable(int levels,
                                     std::vector<cache::FastEntry>* out) const {
  if (levels <= 0 || tree_->size() == 0) return;
  CollectD3Subtree(*tree_, tree_->root_bucket(), 0, levels, out);
}

PeerId D3TreeOverlay::DoBootstrap() { return tree_->Bootstrap(); }

void D3TreeOverlay::DoJoin(PeerId contact, OpStats* st) {
  Result<PeerId> r = tree_->Join(contact);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value();
  // The joiner's range was carved out of its bucket's partition: routes
  // covering it now point at the wrong peer.
  uint64_t lo = 0;
  uint64_t hi = 0;
  if (route_cache() != nullptr && RouteHint(st->peer, &lo, &hi)) {
    CacheInvalidateRange(lo, hi);
  }
}

void D3TreeOverlay::DoLeave(PeerId leaver, OpStats* st) {
  uint64_t lo = 0;
  uint64_t hi = 0;
  const bool hinted =
      route_cache() != nullptr && RouteHint(leaver, &lo, &hi);
  st->status = tree_->Leave(leaver);
  if (st->ok()) {
    if (hinted) CacheInvalidateRange(lo, hi);
    CacheInvalidatePeer(leaver);
  }
}

void D3TreeOverlay::DoFail(PeerId victim, OpStats* st) {
  (void)st;
  uint64_t lo = 0;
  uint64_t hi = 0;
  const bool hinted =
      route_cache() != nullptr && RouteHint(victim, &lo, &hi);
  tree_->Fail(victim);
  if (hinted) CacheInvalidateRange(lo, hi);
  CacheInvalidatePeer(victim);
}

void D3TreeOverlay::DoRecoverAllFailures(OpStats* st) {
  st->status = tree_->RecoverAllFailures();
}

void D3TreeOverlay::DoInsert(PeerId from, Key key, OpStats* st) {
  st->status = tree_->Insert(from, key);
}

void D3TreeOverlay::DoDelete(PeerId from, Key key, OpStats* st) {
  st->status = tree_->Delete(from, key);
}

void D3TreeOverlay::DoExactSearch(PeerId from, Key key, OpStats* st) {
  auto r = tree_->ExactSearch(from, key);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value().node;
  st->found = r.value().found;
  st->hops = r.value().hops;
}

void D3TreeOverlay::DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) {
  auto r = tree_->RangeSearch(from, lo, hi);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->nodes = r.value().nodes.size();
  st->matches = r.value().matches;
  st->hops = r.value().hops;
  st->found = r.value().matches > 0;
}

d3tree::D3TreeNetwork& D3TreeBackend(Overlay& ov) {
  auto* adapter = dynamic_cast<D3TreeOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the d3tree backend";
  return adapter->d3tree();
}

const d3tree::D3TreeNetwork& D3TreeBackend(const Overlay& ov) {
  const auto* adapter = dynamic_cast<const D3TreeOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the d3tree backend";
  return adapter->d3tree();
}

}  // namespace overlay
}  // namespace baton
