#include "overlay/chord_overlay.h"

#include "util/check.h"

namespace baton {
namespace overlay {

ChordOverlay::ChordOverlay(uint64_t seed)
    : ring_(std::make_unique<chord::ChordNetwork>(&net_, seed)) {}

const std::string& ChordOverlay::name() const {
  static const std::string kName = "chord";
  return kName;
}

PeerId ChordOverlay::RetryOrigin(PeerId origin, int attempt) const {
  const chord::ChordNode& n = ring_->node(origin);
  if (!n.in_ring) return origin;
  PeerId cand[2];
  int cnt = 0;
  for (PeerId p : {n.successor, n.predecessor}) {
    if (p != kNullPeer && p != origin && ring_->node(p).in_ring &&
        net_.IsAlive(p)) {
      cand[cnt++] = p;
    }
  }
  if (cnt == 0) return origin;
  return cand[(attempt - 1) % cnt];
}

PeerId ChordOverlay::DoBootstrap() { return ring_->Bootstrap(); }

void ChordOverlay::DoJoin(PeerId contact, OpStats* st) {
  Result<PeerId> r = ring_->Join(contact);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value();
}

void ChordOverlay::DoLeave(PeerId leaver, OpStats* st) {
  st->status = ring_->Leave(leaver);
}

void ChordOverlay::DoInsert(PeerId from, Key key, OpStats* st) {
  st->status = ring_->Insert(from, key);
}

void ChordOverlay::DoDelete(PeerId from, Key key, OpStats* st) {
  st->status = ring_->Delete(from, key);
}

void ChordOverlay::DoExactSearch(PeerId from, Key key, OpStats* st) {
  auto r = ring_->Lookup(from, key);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value().node;
  st->found = r.value().found;
  st->hops = r.value().hops;
}

chord::ChordNetwork& ChordBackend(Overlay& ov) {
  auto* adapter = dynamic_cast<ChordOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the chord backend";
  return adapter->chord();
}

const chord::ChordNetwork& ChordBackend(const Overlay& ov) {
  const auto* adapter = dynamic_cast<const ChordOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the chord backend";
  return adapter->chord();
}

}  // namespace overlay
}  // namespace baton
