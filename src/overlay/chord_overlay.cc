#include "overlay/chord_overlay.h"

#include "util/check.h"

namespace baton {
namespace overlay {

ChordOverlay::ChordOverlay(uint64_t seed)
    : ring_(std::make_unique<chord::ChordNetwork>(&net_, seed)) {}

const std::string& ChordOverlay::name() const {
  static const std::string kName = "chord";
  return kName;
}

PeerId ChordOverlay::RetryOrigin(PeerId origin, int attempt) const {
  const chord::ChordNode& n = ring_->node(origin);
  if (!n.in_ring) return origin;
  PeerId cand[2];
  int cnt = 0;
  for (PeerId p : {n.successor, n.predecessor}) {
    if (p != kNullPeer && p != origin && ring_->node(p).in_ring &&
        net_.IsAlive(p)) {
      cand[cnt++] = p;
    }
  }
  if (cnt == 0) return origin;
  return cand[(attempt - 1) % cnt];
}

uint64_t ChordOverlay::RouteCoordOf(Key key) const {
  return static_cast<uint64_t>(chord::ChordNetwork::HashKey(key));
}

bool ChordOverlay::RouteHint(PeerId peer, uint64_t* lo, uint64_t* hi) const {
  const chord::ChordNode& n = ring_->node(peer);
  if (!n.in_ring || n.predecessor == kNullPeer) return false;
  const uint64_t self = ring_->node(peer).chord_id;
  const uint64_t pred = ring_->node(n.predecessor).chord_id;
  // Ownership arc (pred, self] as a half-open interval. pred == self is the
  // single-node ring: lo == hi, which RangeContains reads as "everything".
  *lo = (pred + 1) & 0xffffffffull;
  *hi = (self + 1) & 0xffffffffull;
  return true;
}

bool ChordOverlay::CacheLocalAnswer(PeerId owner, Key key, OpStats* st) {
  const chord::ChordNode& n = ring_->node(owner);
  if (!n.in_ring) return false;
  // The probe verified `owner` holds the key's arc; a FindSuccessor from
  // the owner would walk the whole ring back to its own predecessor.
  st->peer = owner;
  st->found = n.keys.Contains(
      static_cast<Key>(chord::ChordNetwork::HashKey(key)));
  return true;
}

void ChordOverlay::CollectFastTable(int levels,
                                    std::vector<cache::FastEntry>* out) const {
  if (levels <= 0 || ring_->size() == 0) return;
  const std::vector<PeerId>& members = ring_->members();  // sorted by id
  const int arcs_log = levels < chord::kBits ? levels : chord::kBits;
  const uint64_t step = (1ull << chord::kBits) >> arcs_log;
  size_t cursor = 0;  // members and arc starts advance together
  for (uint64_t a = 0; a < (1ull << chord::kBits); a += step) {
    while (cursor < members.size() &&
           ring_->node(members[cursor]).chord_id < a) {
      ++cursor;
    }
    // successor(a): first id >= a, wrapping to the lowest id past the top.
    PeerId owner =
        cursor < members.size() ? members[cursor] : members.front();
    out->push_back({a, a + step, owner, levels});
  }
}

PeerId ChordOverlay::DoBootstrap() { return ring_->Bootstrap(); }

void ChordOverlay::DoJoin(PeerId contact, OpStats* st) {
  Result<PeerId> r = ring_->Join(contact);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value();
  // The joiner captured part of its successor's arc: routes covering the
  // new arc now point at the wrong peer.
  uint64_t lo = 0;
  uint64_t hi = 0;
  if (route_cache() != nullptr && RouteHint(st->peer, &lo, &hi)) {
    CacheInvalidateRange(lo, hi);
  }
}

void ChordOverlay::DoLeave(PeerId leaver, OpStats* st) {
  uint64_t lo = 0;
  uint64_t hi = 0;
  const bool hinted =
      route_cache() != nullptr && RouteHint(leaver, &lo, &hi);
  st->status = ring_->Leave(leaver);
  if (st->ok()) {
    if (hinted) CacheInvalidateRange(lo, hi);
    CacheInvalidatePeer(leaver);
  }
}

void ChordOverlay::DoInsert(PeerId from, Key key, OpStats* st) {
  st->status = ring_->Insert(from, key);
}

void ChordOverlay::DoDelete(PeerId from, Key key, OpStats* st) {
  st->status = ring_->Delete(from, key);
}

void ChordOverlay::DoExactSearch(PeerId from, Key key, OpStats* st) {
  auto r = ring_->Lookup(from, key);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value().node;
  st->found = r.value().found;
  st->hops = r.value().hops;
}

chord::ChordNetwork& ChordBackend(Overlay& ov) {
  auto* adapter = dynamic_cast<ChordOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the chord backend";
  return adapter->chord();
}

const chord::ChordNetwork& ChordBackend(const Overlay& ov) {
  const auto* adapter = dynamic_cast<const ChordOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the chord backend";
  return adapter->chord();
}

}  // namespace overlay
}  // namespace baton
