#include "overlay/baton_overlay.h"

#include "util/check.h"

namespace baton {
namespace overlay {

BatonOverlay::BatonOverlay(const BatonConfig& cfg, uint64_t seed)
    : baton_(std::make_unique<BatonNetwork>(cfg, &net_, seed)) {}

const std::string& BatonOverlay::name() const {
  static const std::string kName = "baton";
  return kName;
}

uint32_t BatonOverlay::capabilities() const {
  uint32_t caps =
      kRangeSearch | kFailRecovery | kLoadBalance | kOrderedGrowth;
  if (baton_->config().replication.factor > 0) caps |= kReplication;
  return caps;
}

PeerId BatonOverlay::RetryOrigin(PeerId origin, int attempt) const {
  if (!baton_->InOverlay(origin)) return origin;
  const BatonNode& n = baton_->node(origin);
  PeerId cand[3];
  int cnt = 0;
  for (const NodeRef* r : {&n.left_adj, &n.right_adj, &n.parent}) {
    if (r->valid() && baton_->InOverlay(r->peer) && net_.IsAlive(r->peer)) {
      cand[cnt++] = r->peer;
    }
  }
  if (cnt == 0) return origin;
  return cand[(attempt - 1) % cnt];
}

PeerId BatonOverlay::DoBootstrap() { return baton_->Bootstrap(); }

void BatonOverlay::DoJoin(PeerId contact, OpStats* st) {
  Result<PeerId> r = baton_->Join(contact);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value();
}

void BatonOverlay::DoLeave(PeerId leaver, OpStats* st) {
  st->status = baton_->Leave(leaver);
}

void BatonOverlay::DoFail(PeerId victim, OpStats* st) {
  (void)st;
  baton_->Fail(victim);
}

void BatonOverlay::DoRecoverAllFailures(OpStats* st) {
  st->status = baton_->RecoverAllFailures();
}

void BatonOverlay::DoInsert(PeerId from, Key key, OpStats* st) {
  st->status = baton_->Insert(from, key);
}

void BatonOverlay::DoDelete(PeerId from, Key key, OpStats* st) {
  st->status = baton_->Delete(from, key);
}

void BatonOverlay::DoExactSearch(PeerId from, Key key, OpStats* st) {
  auto r = baton_->ExactSearch(from, key);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value().node;
  st->found = r.value().found;
  st->hops = r.value().hops;
}

void BatonOverlay::DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) {
  auto r = baton_->RangeSearch(from, lo, hi);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->nodes = r.value().nodes.size();
  st->matches = r.value().matches;
  st->hops = r.value().hops;
  st->found = r.value().matches > 0;
}

BatonNetwork& BatonBackend(Overlay& ov) {
  auto* adapter = dynamic_cast<BatonOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the baton backend";
  return adapter->baton();
}

const BatonNetwork& BatonBackend(const Overlay& ov) {
  const auto* adapter = dynamic_cast<const BatonOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the baton backend";
  return adapter->baton();
}

}  // namespace overlay
}  // namespace baton
