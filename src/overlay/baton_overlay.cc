#include "overlay/baton_overlay.h"

#include "util/check.h"

namespace baton {
namespace overlay {

BatonOverlay::BatonOverlay(const BatonConfig& cfg, uint64_t seed)
    : baton_(std::make_unique<BatonNetwork>(cfg, &net_, seed)) {}

const std::string& BatonOverlay::name() const {
  static const std::string kName = "baton";
  return kName;
}

uint32_t BatonOverlay::capabilities() const {
  uint32_t caps =
      kRangeSearch | kFailRecovery | kLoadBalance | kOrderedGrowth;
  if (baton_->config().replication.factor > 0) caps |= kReplication;
  return caps;
}

PeerId BatonOverlay::RetryOrigin(PeerId origin, int attempt) const {
  if (!baton_->InOverlay(origin)) return origin;
  const BatonNode& n = baton_->node(origin);
  PeerId cand[3];
  int cnt = 0;
  for (const NodeRef* r : {&n.left_adj, &n.right_adj, &n.parent}) {
    if (r->valid() && baton_->InOverlay(r->peer) && net_.IsAlive(r->peer)) {
      cand[cnt++] = r->peer;
    }
  }
  if (cnt == 0) return origin;
  return cand[(attempt - 1) % cnt];
}

bool BatonOverlay::RouteHint(PeerId peer, uint64_t* lo, uint64_t* hi) const {
  if (!baton_->InOverlay(peer)) return false;
  const Range& r = baton_->node(peer).range;
  if (r.lo >= r.hi) return false;  // empty ranges must not hint
  *lo = static_cast<uint64_t>(r.lo);
  *hi = static_cast<uint64_t>(r.hi);
  return true;
}

namespace {

PeerId LeftmostOf(const BatonNetwork& bn, PeerId p) {
  while (bn.node(p).left_child.valid()) p = bn.node(p).left_child.peer;
  return p;
}

PeerId RightmostOf(const BatonNetwork& bn, PeerId p) {
  while (bn.node(p).right_child.valid()) p = bn.node(p).right_child.peer;
  return p;
}

/// One fast-table entry per tree node above `levels`, spanning the node's
/// whole subtree: a jump lands inside the subtree that owns the key, so the
/// remaining walk is bounded by the subtree height.
void CollectBatonSubtree(const BatonNetwork& bn, PeerId p, int depth,
                         int levels, std::vector<cache::FastEntry>* out) {
  const BatonNode& n = bn.node(p);
  const Key lo = bn.node(LeftmostOf(bn, p)).range.lo;
  const Key hi = bn.node(RightmostOf(bn, p)).range.hi;
  if (lo < hi) {
    out->push_back({static_cast<uint64_t>(lo), static_cast<uint64_t>(hi), p,
                    depth});
  }
  if (depth + 1 >= levels) return;
  if (n.left_child.valid()) {
    CollectBatonSubtree(bn, n.left_child.peer, depth + 1, levels, out);
  }
  if (n.right_child.valid()) {
    CollectBatonSubtree(bn, n.right_child.peer, depth + 1, levels, out);
  }
}

}  // namespace

void BatonOverlay::CollectFastTable(int levels,
                                    std::vector<cache::FastEntry>* out) const {
  if (levels <= 0) return;
  PeerId root = baton_->root();
  if (root == kNullPeer) return;
  CollectBatonSubtree(*baton_, root, 0, levels, out);
}

PeerId BatonOverlay::DoBootstrap() { return baton_->Bootstrap(); }

void BatonOverlay::DoJoin(PeerId contact, OpStats* st) {
  Result<PeerId> r = baton_->Join(contact);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value();
  // The joiner's range was split off an existing member: routes covering it
  // now point at the wrong peer.
  uint64_t lo = 0;
  uint64_t hi = 0;
  if (route_cache() != nullptr && RouteHint(st->peer, &lo, &hi)) {
    CacheInvalidateRange(lo, hi);
  }
}

void BatonOverlay::DoLeave(PeerId leaver, OpStats* st) {
  uint64_t lo = 0;
  uint64_t hi = 0;
  const bool hinted =
      route_cache() != nullptr && RouteHint(leaver, &lo, &hi);
  st->status = baton_->Leave(leaver);
  if (st->ok()) {
    if (hinted) CacheInvalidateRange(lo, hi);
    CacheInvalidatePeer(leaver);
  }
}

void BatonOverlay::DoFail(PeerId victim, OpStats* st) {
  (void)st;
  uint64_t lo = 0;
  uint64_t hi = 0;
  const bool hinted =
      route_cache() != nullptr && RouteHint(victim, &lo, &hi);
  baton_->Fail(victim);
  if (hinted) CacheInvalidateRange(lo, hi);
  CacheInvalidatePeer(victim);
}

void BatonOverlay::DoRecoverAllFailures(OpStats* st) {
  st->status = baton_->RecoverAllFailures();
}

void BatonOverlay::DoInsert(PeerId from, Key key, OpStats* st) {
  st->status = baton_->Insert(from, key);
}

void BatonOverlay::DoDelete(PeerId from, Key key, OpStats* st) {
  st->status = baton_->Delete(from, key);
}

void BatonOverlay::DoExactSearch(PeerId from, Key key, OpStats* st) {
  auto r = baton_->ExactSearch(from, key);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->peer = r.value().node;
  st->found = r.value().found;
  st->hops = r.value().hops;
}

void BatonOverlay::DoRangeSearch(PeerId from, Key lo, Key hi, OpStats* st) {
  auto r = baton_->RangeSearch(from, lo, hi);
  if (!r.ok()) {
    st->status = r.status();
    return;
  }
  st->nodes = r.value().nodes.size();
  st->matches = r.value().matches;
  st->hops = r.value().hops;
  st->found = r.value().matches > 0;
}

BatonNetwork& BatonBackend(Overlay& ov) {
  auto* adapter = dynamic_cast<BatonOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the baton backend";
  return adapter->baton();
}

const BatonNetwork& BatonBackend(const Overlay& ov) {
  const auto* adapter = dynamic_cast<const BatonOverlay*>(&ov);
  BATON_CHECK(adapter != nullptr)
      << "overlay '" << ov.name() << "' is not the baton backend";
  return adapter->baton();
}

}  // namespace overlay
}  // namespace baton
